#!/usr/bin/env bash
# Aggregates RESULT,<exp>,<task>,<method>,<metric>,<value> rows emitted by
# the bench binaries into a per-(task, method, metric) mean table —
# averaging across seeds — for pasting into EXPERIMENTS.md.
#
# Usage:  for b in build/bench/*; do $b; done | scripts/summarize_results.sh
#    or:  scripts/summarize_results.sh < bench_output.txt

awk -F, '
/^RESULT,/ {
  # Strip the _seedN suffix so seeds aggregate.
  e = $2;
  sub(/_seed[0-9]+/, "", e);
  key = e "," $3 "," $4 "," $5;
  sum[key] += $6;
  count[key] += 1;
}
END {
  for (key in sum) {
    split(key, parts, ",");
    printf "%-40s %-16s %-28s %-24s %.4f\n", parts[1], parts[2], parts[3],
           parts[4], sum[key] / count[key];
  }
}' "$@" | sort
