#!/usr/bin/env bash
# Runs every experiment binary in DESIGN.md §4 order and captures raw
# output. Usage: scripts/run_all_benches.sh [build-dir] [output-file]
set -uo pipefail

BUILD="${1:-build}"
OUT="${2:-bench_output.txt}"

BENCHES=(
  bench_classification
  bench_clustering
  bench_forecasting
  bench_anomaly
  bench_imputation
  bench_partial_labeling
  bench_domain_shift
  bench_efficiency
  bench_fusion_ablation
  bench_hpo
  bench_micro
)

: > "$OUT"
for bench in "${BENCHES[@]}"; do
  echo "### $bench" | tee -a "$OUT"
  "$BUILD/bench/$bench" 2>&1 | tee -a "$OUT"
  echo "### exit=$?" | tee -a "$OUT"
done

echo
echo "== aggregated means =="
"$(dirname "$0")/summarize_results.sh" < "$OUT"
