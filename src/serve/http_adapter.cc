#include "serve/http_adapter.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "json/json.h"

namespace units::serve {

namespace {

/// Lowercases ASCII in place (header names and values are case-insensitive
/// where we compare them).
std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

}  // namespace

bool SniffHttp(const std::string& prefix, bool* decided) {
  // NDJSON requests are JSON objects (or garbage we answer with a JSON
  // error); HTTP requests start with "METHOD ". Decide on the longest
  // method prefix we accept — 8 bytes covers "OPTIONS ".
  static const char* kMethods[] = {"GET ",    "POST ",   "PUT ",
                                   "HEAD ",   "DELETE ", "OPTIONS ",
                                   "PATCH "};
  for (const char* method : kMethods) {
    const size_t len = std::char_traits<char>::length(method);
    if (prefix.compare(0, std::min(prefix.size(), len), method, 0,
                       std::min(prefix.size(), len)) == 0) {
      if (prefix.size() >= len) {
        *decided = true;
        return true;
      }
      *decided = false;  // still a possible method prefix: wait for bytes
      return false;
    }
  }
  *decided = true;
  return false;
}

HttpRequestParser::Outcome HttpRequestParser::Fail(int status,
                                                   const std::string& msg) {
  status_ = status;
  error_ = msg;
  return Outcome::kError;
}

HttpRequestParser::Outcome HttpRequestParser::Next(std::string* buffer,
                                                   HttpRequest* request) {
  // RFC 9112 §2.2: robustly skip CRLF padding between requests.
  size_t start = 0;
  while (start < buffer->size() &&
         ((*buffer)[start] == '\r' || (*buffer)[start] == '\n')) {
    ++start;
  }
  const size_t head_end = buffer->find("\r\n\r\n", start);
  if (head_end == std::string::npos) {
    if (buffer->size() - start > limits_.max_header_bytes) {
      return Fail(400, "request headers exceed " +
                           std::to_string(limits_.max_header_bytes) +
                           " bytes");
    }
    return Outcome::kNeedMore;
  }
  if (head_end - start > limits_.max_header_bytes) {
    return Fail(400, "request headers exceed " +
                         std::to_string(limits_.max_header_bytes) + " bytes");
  }

  // Request line: METHOD SP TARGET SP HTTP/1.x
  const size_t line_end = buffer->find("\r\n", start);
  const std::string line = buffer->substr(start, line_end - start);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return Fail(400, "malformed request line");
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Fail(400, "unsupported protocol version '" + version + "'");
  }
  const size_t query = target.find('?');
  if (query != std::string::npos) {
    target.erase(query);
  }
  if (target.empty() || target[0] != '/') {
    return Fail(400, "malformed request target");
  }

  // Headers.
  bool keep_alive = version == "HTTP/1.1";  // 1.1 default; 1.0 opt-in
  bool have_length = false;
  size_t content_length = 0;
  bool chunked = false;
  size_t pos = line_end + 2;
  while (pos < head_end) {
    const size_t eol = buffer->find("\r\n", pos);
    const std::string header = buffer->substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = header.find(':');
    if (colon == std::string::npos) {
      return Fail(400, "malformed header line");
    }
    const std::string name = ToLower(Trim(header.substr(0, colon)));
    const std::string value = Trim(header.substr(colon + 1));
    if (name == "connection") {
      const std::string v = ToLower(value);
      if (v.find("close") != std::string::npos) {
        keep_alive = false;
      } else if (v.find("keep-alive") != std::string::npos) {
        keep_alive = true;
      }
    } else if (name == "content-length") {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Fail(400, "malformed Content-Length");
      }
      have_length = true;
      content_length = static_cast<size_t>(n);
    } else if (name == "transfer-encoding") {
      if (ToLower(value).find("chunked") != std::string::npos) {
        chunked = true;
      }
    }
  }
  if (chunked) {
    return Fail(501, "chunked transfer encoding is not supported");
  }
  const bool wants_body = method == "POST" || method == "PUT" ||
                          method == "PATCH";
  if (wants_body && !have_length) {
    return Fail(411, "POST requires Content-Length");
  }
  if (content_length > limits_.max_body_bytes) {
    return Fail(413, "request body exceeds " +
                         std::to_string(limits_.max_body_bytes) + " bytes");
  }
  const size_t body_start = head_end + 4;
  if (buffer->size() - body_start < content_length) {
    return Outcome::kNeedMore;
  }

  request->method = method;
  request->target = std::move(target);
  request->body = buffer->substr(body_start, content_length);
  request->keep_alive = keep_alive;
  buffer->erase(0, body_start + content_length);
  return Outcome::kRequest;
}

Result<std::string> HttpRequestToLine(const HttpRequest& request) {
  if (request.target == "/v1/predict") {
    if (request.method != "POST") {
      return Status::InvalidArgument("405 /v1/predict requires POST");
    }
    auto body = json::Parse(request.body);
    if (!body.ok()) {
      return Status::InvalidArgument("400 request body: " +
                                     body.status().message());
    }
    if (!body->is_object()) {
      return Status::InvalidArgument("400 request body must be a JSON object");
    }
    json::JsonValue line = json::JsonValue::Object();
    line.Set("op", json::JsonValue::String("predict"));
    for (const auto& [key, value] : body->items()) {
      if (key != "op") {
        line.Set(key, value);
      }
    }
    return line.Dump();
  }
  if (request.method != "GET" && request.method != "POST") {
    return Status::InvalidArgument("405 method not allowed for '" +
                                   request.target + "'");
  }
  if (request.target == "/v1/stats") {
    return std::string("{\"op\":\"stats\"}");
  }
  if (request.target == "/v1/healthz") {
    return std::string("{\"op\":\"ping\"}");
  }
  if (request.target == "/v1/models") {
    return std::string("{\"op\":\"list\"}");
  }
  return Status::InvalidArgument("404 unknown path '" + request.target + "'");
}

int HttpStatusForLine(const std::string& response_line) {
  auto parsed = json::Parse(response_line);
  if (!parsed.ok() || !parsed->is_object()) {
    return 200;  // pass opaque payloads through rather than masking them
  }
  if (parsed->Contains("ok") && parsed->at("ok").is_bool() &&
      parsed->at("ok").AsBool()) {
    return 200;
  }
  std::string error;
  if (parsed->Contains("error") && parsed->at("error").is_string()) {
    error = parsed->at("error").AsString();
  }
  if (error.find("overloaded") != std::string::npos ||
      error.find("unavailable") != std::string::npos) {
    return 503;  // transient capacity signals a load balancer retries on
  }
  if (error.find("not found") != std::string::npos ||
      error.find("NotFound") != std::string::npos) {
    return 404;
  }
  return 400;
}

std::string RenderHttpResponse(int status, const std::string& body,
                               bool keep_alive) {
  if (status <= 0) {
    status = HttpStatusForLine(body);
  }
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    ReasonPhrase(status) + "\r\n";
  out += "Content-Type: application/json\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

}  // namespace units::serve
