#include "serve/model_registry.h"

#include <utility>

#include "base/logging.h"

namespace units::serve {

ServableModel::ServableModel(std::string name, std::string path,
                             std::unique_ptr<core::UnitsPipeline> pipeline)
    : name_(std::move(name)),
      path_(std::move(path)),
      pipeline_(std::move(pipeline)) {
  if (pipeline_->task() != nullptr) {
    task_ = pipeline_->task()->name();
  }
}

Result<core::TaskResult> ServableModel::Predict(const Tensor& x) {
  if (x.ndim() != 3) {
    return Status::InvalidArgument("Predict expects [N, D, T], got " +
                                   ShapeToString(x.shape()));
  }
  if (x.dim(1) != pipeline_->input_channels()) {
    return Status::InvalidArgument(
        "model '" + name_ + "' expects " +
        std::to_string(pipeline_->input_channels()) + " channels, got " +
        std::to_string(x.dim(1)));
  }
  std::lock_guard<std::mutex> lk(predict_mu_);
  return pipeline_->Predict(x);
}

Result<int64_t> ServableModel::Quantize() {
  std::lock_guard<std::mutex> lk(predict_mu_);
  const int64_t quantized = pipeline_->QuantizeInt8();
  if (quantized == 0) {
    return Status::FailedPrecondition(
        "model '" + name_ + "' has no quantizable layers");
  }
  UNITS_LOG(Info) << "registry: quantized '" << name_ << "' (" << quantized
                  << " layers)";
  return quantized;
}

std::string ServableModel::precision() const {
  std::lock_guard<std::mutex> lk(predict_mu_);
  return pipeline_->precision();
}

Result<std::shared_ptr<ServableModel>> ModelRegistry::LoadFromFile(
    const std::string& name, const std::string& path) {
  UNITS_ASSIGN_OR_RETURN(std::unique_ptr<core::UnitsPipeline> pipeline,
                         core::UnitsPipeline::LoadJson(path));
  UNITS_RETURN_IF_ERROR(pipeline->EnsureReadyForServing());
  return std::make_shared<ServableModel>(name, path, std::move(pipeline));
}

Status ModelRegistry::Load(const std::string& name, const std::string& path) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  UNITS_ASSIGN_OR_RETURN(std::shared_ptr<ServableModel> model,
                         LoadFromFile(name, path));
  std::lock_guard<std::mutex> lk(mu_);
  models_[name] = std::move(model);
  UNITS_LOG(Info) << "registry: loaded '" << name << "' from " << path;
  return Status::Ok();
}

Status ModelRegistry::Add(const std::string& name,
                          std::unique_ptr<core::UnitsPipeline> pipeline,
                          const std::string& path) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  if (pipeline == nullptr) {
    return Status::InvalidArgument("null pipeline");
  }
  UNITS_RETURN_IF_ERROR(pipeline->EnsureReadyForServing());
  auto model =
      std::make_shared<ServableModel>(name, path, std::move(pipeline));
  std::lock_guard<std::mutex> lk(mu_);
  models_[name] = std::move(model);
  return Status::Ok();
}

Status ModelRegistry::Unload(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' is not loaded");
  }
  models_.erase(it);
  return Status::Ok();
}

Status ModelRegistry::Reload(const std::string& name) {
  std::string path;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = models_.find(name);
    if (it == models_.end()) {
      return Status::NotFound("model '" + name + "' is not loaded");
    }
    path = it->second->path();
  }
  if (path.empty()) {
    return Status::FailedPrecondition("model '" + name +
                                      "' has no source path to reload from");
  }
  // Parse outside the lock: a large model file should not stall lookups.
  UNITS_ASSIGN_OR_RETURN(std::shared_ptr<ServableModel> model,
                         LoadFromFile(name, path));
  std::lock_guard<std::mutex> lk(mu_);
  models_[name] = std::move(model);
  return Status::Ok();
}

Status ModelRegistry::Quantize(const std::string& name) {
  std::shared_ptr<ServableModel> model;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = models_.find(name);
    if (it == models_.end()) {
      return Status::NotFound("model '" + name + "' is not loaded");
    }
    model = it->second;
  }
  // Quantize outside the registry lock — it serializes with Predict via
  // the model's own mutex, and lookups of other models must not stall.
  return model->Quantize().status();
}

Result<std::shared_ptr<ServableModel>> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' is not loaded");
  }
  return it->second;
}

std::vector<std::string> ModelRegistry::List() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, model] : models_) {
    names.push_back(name);
  }
  return names;  // std::map iterates in sorted order
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return models_.size();
}

}  // namespace units::serve
