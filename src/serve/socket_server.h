#ifndef UNITS_SERVE_SOCKET_SERVER_H_
#define UNITS_SERVE_SOCKET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <string>

#include "serve/admission.h"
#include "serve/batcher.h"
#include "serve/http_adapter.h"
#include "serve/model_registry.h"
#include "serve/serve_stats.h"
#include "serve/server.h"

namespace units::serve {

/// TCP front end for the newline-delimited JSON protocol: one poll()-based
/// event-loop thread multiplexes every client connection, while predict
/// execution happens on the shared micro-batcher scheduler + worker pool.
/// Request handling is RequestSession — byte-for-byte the same protocol the
/// stdin transport speaks, so `printf ... | units_serve` scripts port to
/// `... | nc host port` unchanged.
///
/// Each connection's protocol is sniffed from its first bytes: an HTTP
/// method ("POST /v1/predict HTTP/1.1" ...) selects the HTTP/1.1 adapter
/// (serve/http_adapter.h) — requests are translated onto the same
/// RequestSession and responses wrapped back, with keep-alive and
/// per-request status mapping — anything else is NDJSON. curl and a
/// netcat script can share one port.
///
/// Per connection the server keeps a read buffer (lines are reassembled
/// across reads; an unterminated line longer than `session.max_line_bytes`
/// is answered with a structured error and discarded up to the next
/// newline) and a write buffer with backpressure: once a slow reader's
/// unsent responses exceed `max_write_buffer_bytes`, the server stops
/// reading — and stops harvesting completed responses — for that
/// connection until the client catches up. Admission control bounds the
/// server-wide queue; shed requests get {"ok": false, "error":
/// "overloaded"} immediately.
///
/// Half-closed connections (client shutdown(SHUT_WR)) still receive every
/// response for requests already sent. A connection that disconnects
/// mid-request is torn down without leaking its fd or its in-flight
/// futures (the batcher fulfils the promises; the results are dropped).
///
/// Graceful drain: Shutdown()/RequestDrain() (async-signal-safe, so a
/// SIGTERM handler may call it) closes the listener, stops reading,
/// answers everything already queued, flushes, then closes connections
/// and returns from Run(). Connections whose peer stops reading are
/// force-closed after `drain_timeout_s`.
class SocketServer {
 public:
  struct Options {
    /// Port to listen on; 0 binds an ephemeral port (see bound_port()).
    int port = 0;
    /// Listen address; loopback by default.
    std::string bind_address = "127.0.0.1";
    int backlog = 128;
    /// Close a connection with no outstanding work after this long
    /// without traffic. 0 disables idle timeouts.
    double idle_timeout_s = 0.0;
    /// Force-close lingering connections this long after drain starts.
    double drain_timeout_s = 5.0;
    /// Unsent-response cap per connection before reads pause.
    size_t max_write_buffer_bytes = 4u << 20;
    MicroBatcher::Options batcher;      // on_resolve is overwritten
    AdmissionController::Options admission;
    RequestSession::Options session;
    StreamingLimits streaming;
  };

  /// `registry` must outlive the server. Option validation (batcher and
  /// admission constructors) aborts on out-of-range values.
  SocketServer(ModelRegistry* registry, Options options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds and listens (and creates the wake pipe). After an OK return,
  /// bound_port() is final and clients may connect even before Run().
  Status Start();

  /// The actual listening port (resolves port 0).
  int bound_port() const { return bound_port_; }

  /// Serves until a drain is requested and completes. Returns a process
  /// exit code (0 on orderly shutdown). Call Start() first.
  int Run();

  /// Requests a graceful drain and returns immediately; Run() finishes
  /// the outstanding work and returns. Async-signal-safe.
  void RequestDrain();

  /// Alias for RequestDrain(); kept for symmetry with the batcher API.
  void Shutdown() { RequestDrain(); }

  ServeStats* stats() { return &stats_; }
  AdmissionController* admission() { return &admission_; }
  MicroBatcher* batcher() { return &batcher_; }
  const Options& options() const { return options_; }

 private:
  struct Connection {
    int fd = -1;
    std::string rbuf;
    std::string wbuf;
    std::unique_ptr<RequestSession> session;
    std::chrono::steady_clock::time_point last_activity;
    bool read_closed = false;     // EOF, quit, or drain: no more requests
    bool discarding_line = false; // oversized unterminated line: skip to \n
    enum class Proto { kUnknown, kNdjson, kHttp };
    Proto proto = Proto::kUnknown;
    std::unique_ptr<HttpConnState> http;  // set once sniffed as HTTP
  };

  void AcceptNew(std::chrono::steady_clock::time_point now);
  /// Reads once; feeds complete lines to the session. False = tear down.
  bool ReadFrom(Connection* conn, std::chrono::steady_clock::time_point now);
  /// Consumes complete NDJSON lines / HTTP requests from conn->rbuf.
  void ConsumeNdjson(Connection* conn);
  void ConsumeHttp(Connection* conn);
  /// Moves ready responses into wbuf (bounded) and writes what it can.
  /// False = tear down.
  bool FlushTo(Connection* conn, std::chrono::steady_clock::time_point now);
  void CloseConnection(int fd);
  void DrainWakePipe();

  ModelRegistry* registry_;
  Options options_;
  ServeStats stats_;
  StreamGate streams_gate_;        // must follow stats_ (points to it)
  AdmissionController admission_;  // must follow stats_ (points to it)
  MicroBatcher batcher_;           // must follow both (points to both)

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // [0] read end (polled), [1] write end
  /// The write end again, as an atomic: batcher worker threads and signal
  /// handlers read it while the poll thread owns the plain fds.
  std::atomic<int> wake_write_fd_{-1};
  int bound_port_ = 0;
  std::atomic<bool> drain_requested_{false};
  std::map<int, std::unique_ptr<Connection>> connections_;
};

}  // namespace units::serve

#endif  // UNITS_SERVE_SOCKET_SERVER_H_
