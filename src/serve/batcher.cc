#include "serve/batcher.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "base/check.h"
#include "base/profile.h"
#include "tensor/tensor_ops.h"

namespace units::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Extracts row `i` of an [N, ...] batched TaskResult as the TaskResult a
/// single-row Predict would have produced. Row-major layouts make every
/// per-row field a contiguous stride.
Result<core::TaskResult> SliceRow(const core::TaskResult& full, int64_t n,
                                  int64_t i) {
  core::TaskResult out;
  if (!full.labels.empty()) {
    if (full.labels.size() % static_cast<size_t>(n) != 0) {
      return Status::Internal("batched labels not divisible by batch size");
    }
    const size_t stride = full.labels.size() / static_cast<size_t>(n);
    out.labels.assign(
        full.labels.begin() + static_cast<int64_t>(stride) * i,
        full.labels.begin() + static_cast<int64_t>(stride) * (i + 1));
  }
  if (full.predictions.numel() > 0) {
    if (full.predictions.ndim() < 1 || full.predictions.dim(0) != n) {
      return Status::Internal("batched predictions lost the batch axis");
    }
    out.predictions = ops::Slice(full.predictions, 0, i, 1);
  }
  if (full.scores.numel() > 0) {
    if (full.scores.ndim() < 1 || full.scores.dim(0) != n) {
      return Status::Internal("batched scores lost the batch axis");
    }
    out.scores = ops::Slice(full.scores, 0, i, 1);
  }
  return out;
}

}  // namespace

MicroBatcher::MicroBatcher(ModelRegistry* registry, Options options,
                           ServeStats* stats, AdmissionController* admission)
    : registry_(registry),
      options_(std::move(options)),
      stats_(stats),
      admission_(admission) {
  // max_batch_size = 0 would form empty batches forever (busy-spin) and
  // never drain a queue; a negative or non-finite delay would turn the
  // timed flush into either a hot loop or a never-flush. These are
  // configuration bugs, so they abort instead of being silently clamped.
  UNITS_CHECK_GE(options_.max_batch_size, 1);
  UNITS_CHECK(std::isfinite(options_.max_delay_ms));
  UNITS_CHECK_GE(options_.max_delay_ms, 0.0);
  UNITS_CHECK_GE(options_.num_workers, 1);
  max_delay_ = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(options_.max_delay_ms));
  scheduler_ = std::thread([this] { SchedulerLoop(); });
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MicroBatcher::~MicroBatcher() { Shutdown(); }

void MicroBatcher::Resolve(Request* req, Result<core::TaskResult> result) {
  // Release the admission slot before fulfilling the promise so a caller
  // woken by the future can immediately be admitted again.
  if (req->admitted && admission_ != nullptr) {
    admission_->Release(req->plan_bytes);
  }
  req->promise.set_value(std::move(result));
  if (options_.on_resolve) {
    options_.on_resolve();
  }
}

std::future<Result<core::TaskResult>> MicroBatcher::Submit(
    const std::string& model, const Tensor& x) {
  std::promise<Result<core::TaskResult>> promise;
  std::future<Result<core::TaskResult>> future = promise.get_future();
  auto fail = [&](Status status) {
    promise.set_value(std::move(status));
    if (options_.on_resolve) {
      options_.on_resolve();
    }
    return std::move(future);
  };

  Tensor row;
  if (x.ndim() == 2) {
    row = x.Reshape({1, x.dim(0), x.dim(1)});
  } else if (x.ndim() == 3 && x.dim(0) == 1) {
    row = x;
  } else {
    return fail(Status::InvalidArgument(
        "Submit expects one series [D, T] or [1, D, T], got " +
        ShapeToString(x.shape())));
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) {
      return fail(Status::FailedPrecondition("batcher is shut down"));
    }
    auto it = queues_.find(model);
    if (it == queues_.end()) {
      // Fail fast on unknown models instead of queueing forever.
      if (!registry_->Get(model).ok()) {
        return fail(Status::NotFound("model '" + model + "' is not loaded"));
      }
      it = queues_.emplace(model, ModelQueue{}).first;
    }
    int64_t plan_bytes = 0;
    if (admission_ != nullptr) {
      // Charge the model's current worst-case plan arena. The first
      // requests admit at cost 0 (no plan captured yet); the gauge becomes
      // accurate as soon as serving reaches its steady state.
      auto handle = registry_->Get(model);
      if (handle.ok()) {
        plan_bytes = (*handle)->plan_arena_bytes();
      }
      const Status admitted = admission_->TryAdmit(plan_bytes);
      if (!admitted.ok()) {
        return fail(admitted);
      }
    }
    Request req;
    req.x = row;
    req.enqueued = Clock::now();
    req.admitted = admission_ != nullptr;
    req.plan_bytes = plan_bytes;
    if (admission_ != nullptr) {
      req.deadline = admission_->DeadlineFor(req.enqueued);
    }
    req.promise = std::move(promise);
    it->second.queue.push_back(std::move(req));
  }
  sched_cv_.notify_one();
  return future;
}

void MicroBatcher::SchedulerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    auto now = Clock::now();

    // 1) Answer requests that out-waited their deadline. Within a queue
    // enqueue times are monotone and all requests share one timeout, so
    // expiry is always front-first.
    for (auto& [name, q] : queues_) {
      while (!q.queue.empty() && q.queue.front().deadline.has_value() &&
             *q.queue.front().deadline <= now) {
        Request req = std::move(q.queue.front());
        q.queue.pop_front();
        if (stats_ != nullptr) {
          stats_->RecordTimedOut();
        }
        Resolve(&req, Status::DeadlineExceeded(
                          "request timed out after waiting " +
                          std::to_string(static_cast<int64_t>(
                              admission_->options().request_timeout_ms)) +
                          " ms in queue"));
      }
    }

    // 2) Flush the readiest model: among queues with no batch in flight
    // whose batch is full, whose oldest request hit max_delay, or during
    // shutdown drain, pick the one that has waited longest.
    ModelQueue* best = nullptr;
    const std::string* best_name = nullptr;
    for (auto& [name, q] : queues_) {
      if (q.in_flight || q.queue.empty()) {
        continue;
      }
      const bool ready =
          shutdown_ ||
          static_cast<int64_t>(q.queue.size()) >= options_.max_batch_size ||
          q.queue.front().enqueued + max_delay_ <= now;
      if (!ready) {
        continue;
      }
      if (best == nullptr ||
          q.queue.front().enqueued < best->queue.front().enqueued) {
        best = &q;
        best_name = &name;
      }
    }
    if (best != nullptr) {
      // The longest prefix of same-shaped requests, capped at
      // max_batch_size. A shape change ends the batch (requests stay FIFO).
      Batch batch;
      batch.model = *best_name;
      const Shape row_shape = best->queue.front().x.shape();
      while (!best->queue.empty() &&
             static_cast<int64_t>(batch.requests.size()) <
                 options_.max_batch_size &&
             SameShape(best->queue.front().x.shape(), row_shape)) {
        batch.requests.push_back(std::move(best->queue.front()));
        best->queue.pop_front();
      }
      best->in_flight = true;
      ready_.push_back(std::move(batch));
      work_cv_.notify_one();
      continue;  // keep flushing while other models are ready
    }

    // 3) Nothing flushable. Exit once shutdown has fully drained.
    if (shutdown_) {
      bool drained = ready_.empty() && executing_ == 0;
      for (const auto& [name, q] : queues_) {
        drained = drained && q.queue.empty();
      }
      if (drained) {
        return;
      }
    }

    // 4) Sleep until the next flush deadline, request deadline, Submit,
    // or batch completion — whichever comes first.
    std::optional<Clock::time_point> next;
    for (const auto& [name, q] : queues_) {
      if (q.queue.empty()) {
        continue;
      }
      if (!q.in_flight) {
        const auto flush_at = q.queue.front().enqueued + max_delay_;
        next = next.has_value() ? std::min(*next, flush_at) : flush_at;
      }
      if (q.queue.front().deadline.has_value()) {
        next = next.has_value() ? std::min(*next, *q.queue.front().deadline)
                                : *q.queue.front().deadline;
      }
    }
    if (next.has_value()) {
      sched_cv_.wait_until(lk, *next);
    } else {
      sched_cv_.wait(lk);
    }
  }
}

void MicroBatcher::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return workers_exit_ || !ready_.empty(); });
    if (ready_.empty()) {
      if (workers_exit_) {
        return;
      }
      continue;
    }
    Batch batch = std::move(ready_.front());
    ready_.pop_front();
    executing_ += 1;
    lk.unlock();
    ExecuteBatch(batch.model, &batch.requests);
    lk.lock();
    executing_ -= 1;
    queues_[batch.model].in_flight = false;
    // Wake the scheduler: this model may have queued more requests, and
    // the shutdown drain waits for executing_ to reach zero.
    sched_cv_.notify_one();
  }
}

void MicroBatcher::ExecuteBatch(const std::string& model,
                                std::vector<Request>* batch) {
  UNITS_PROFILE_SCOPE("serve.batch");
  const int64_t n = static_cast<int64_t>(batch->size());

  auto fail_all = [&](const Status& status) {
    for (Request& req : *batch) {
      Resolve(&req, status);
    }
  };

  auto handle_or = registry_->Get(model);
  if (!handle_or.ok()) {
    fail_all(handle_or.status());
    return;
  }
  std::shared_ptr<ServableModel> handle = std::move(handle_or).value();

  Tensor stacked;
  if (n == 1) {
    stacked = (*batch)[0].x;
  } else {
    std::vector<Tensor> rows;
    rows.reserve(batch->size());
    for (const Request& req : *batch) {
      rows.push_back(req.x);
    }
    stacked = ops::Concat(rows, /*axis=*/0);
  }

  Result<core::TaskResult> result = handle->Predict(stacked);
  if (stats_ != nullptr) {
    stats_->RecordBatch(model, n);
  }
  if (!result.ok()) {
    fail_all(result.status());
    return;
  }
  const core::TaskResult& full = result.value();
  const auto now = Clock::now();
  for (int64_t i = 0; i < n; ++i) {
    Request& req = (*batch)[static_cast<size_t>(i)];
    if (stats_ != nullptr) {
      stats_->RecordRequest(
          model, std::chrono::duration<double, std::milli>(now - req.enqueued)
                     .count());
    }
    if (n == 1) {
      Resolve(&req, std::move(result));
      return;
    }
    Resolve(&req, SliceRow(full, n, i));
  }
}

void MicroBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) {
      // A second caller must still wait for the drain to finish, but the
      // joins below are single-owner; the destructor is the only repeat
      // caller in practice and the threads are already joined then.
      return;
    }
    shutdown_ = true;
  }
  sched_cv_.notify_all();
  work_cv_.notify_all();
  if (scheduler_.joinable()) {
    scheduler_.join();  // returns only once every queue has drained
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    workers_exit_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
}

}  // namespace units::serve
