#include "serve/batcher.h"

#include <algorithm>
#include <utility>

#include "base/profile.h"
#include "tensor/tensor_ops.h"

namespace units::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Extracts row `i` of an [N, ...] batched TaskResult as the TaskResult a
/// single-row Predict would have produced. Row-major layouts make every
/// per-row field a contiguous stride.
Result<core::TaskResult> SliceRow(const core::TaskResult& full, int64_t n,
                                  int64_t i) {
  core::TaskResult out;
  if (!full.labels.empty()) {
    if (full.labels.size() % static_cast<size_t>(n) != 0) {
      return Status::Internal("batched labels not divisible by batch size");
    }
    const size_t stride = full.labels.size() / static_cast<size_t>(n);
    out.labels.assign(
        full.labels.begin() + static_cast<int64_t>(stride) * i,
        full.labels.begin() + static_cast<int64_t>(stride) * (i + 1));
  }
  if (full.predictions.numel() > 0) {
    if (full.predictions.ndim() < 1 || full.predictions.dim(0) != n) {
      return Status::Internal("batched predictions lost the batch axis");
    }
    out.predictions = ops::Slice(full.predictions, 0, i, 1);
  }
  if (full.scores.numel() > 0) {
    if (full.scores.ndim() < 1 || full.scores.dim(0) != n) {
      return Status::Internal("batched scores lost the batch axis");
    }
    out.scores = ops::Slice(full.scores, 0, i, 1);
  }
  return out;
}

}  // namespace

MicroBatcher::MicroBatcher(ModelRegistry* registry, Options options,
                           ServeStats* stats)
    : registry_(registry), options_(options), stats_(stats) {
  options_.max_batch_size = std::max<int64_t>(1, options_.max_batch_size);
  options_.max_delay_ms = std::max(0.0, options_.max_delay_ms);
}

MicroBatcher::~MicroBatcher() { Shutdown(); }

std::future<Result<core::TaskResult>> MicroBatcher::Submit(
    const std::string& model, const Tensor& x) {
  std::promise<Result<core::TaskResult>> promise;
  std::future<Result<core::TaskResult>> future = promise.get_future();

  Tensor row;
  if (x.ndim() == 2) {
    row = x.Reshape({1, x.dim(0), x.dim(1)});
  } else if (x.ndim() == 3 && x.dim(0) == 1) {
    row = x;
  } else {
    promise.set_value(Status::InvalidArgument(
        "Submit expects one series [D, T] or [1, D, T], got " +
        ShapeToString(x.shape())));
    return future;
  }

  ModelQueue* q = nullptr;
  {
    std::lock_guard<std::mutex> lk(map_mu_);
    if (shutdown_) {
      promise.set_value(
          Status::FailedPrecondition("batcher is shut down"));
      return future;
    }
    auto it = queues_.find(model);
    if (it == queues_.end()) {
      // Fail fast on unknown models instead of queueing forever.
      if (!registry_->Get(model).ok()) {
        promise.set_value(
            Status::NotFound("model '" + model + "' is not loaded"));
        return future;
      }
      auto created = std::make_unique<ModelQueue>();
      created->worker = std::thread(
          [this, model, queue = created.get()] { WorkerLoop(model, queue); });
      it = queues_.emplace(model, std::move(created)).first;
    }
    q = it->second.get();
  }

  {
    std::lock_guard<std::mutex> lk(q->mu);
    Request req;
    req.x = row;
    req.promise = std::move(promise);
    req.enqueued = Clock::now();
    q->queue.push_back(std::move(req));
  }
  q->cv.notify_one();
  return future;
}

void MicroBatcher::WorkerLoop(const std::string& model, ModelQueue* q) {
  const auto max_delay = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(options_.max_delay_ms));
  std::unique_lock<std::mutex> lk(q->mu);
  for (;;) {
    if (q->queue.empty()) {
      if (q->stop) {
        return;
      }
      q->cv.wait(lk, [&] { return q->stop || !q->queue.empty(); });
      continue;
    }
    const auto deadline = q->queue.front().enqueued + max_delay;
    if (!q->stop &&
        static_cast<int64_t>(q->queue.size()) < options_.max_batch_size &&
        Clock::now() < deadline) {
      q->cv.wait_until(lk, deadline);
      continue;  // re-evaluate: batch full, deadline hit, or spurious wake
    }
    // Flush: the longest prefix of same-shaped requests, capped at
    // max_batch_size. A shape change ends the batch (requests stay FIFO).
    const Shape row_shape = q->queue.front().x.shape();
    std::vector<Request> batch;
    while (!q->queue.empty() &&
           static_cast<int64_t>(batch.size()) < options_.max_batch_size &&
           SameShape(q->queue.front().x.shape(), row_shape)) {
      batch.push_back(std::move(q->queue.front()));
      q->queue.pop_front();
    }
    lk.unlock();
    ExecuteBatch(model, &batch);
    lk.lock();
  }
}

void MicroBatcher::ExecuteBatch(const std::string& model,
                                std::vector<Request>* batch) {
  UNITS_PROFILE_SCOPE("serve.batch");
  const int64_t n = static_cast<int64_t>(batch->size());

  auto fail_all = [&](const Status& status) {
    for (Request& req : *batch) {
      req.promise.set_value(status);
    }
  };

  auto handle_or = registry_->Get(model);
  if (!handle_or.ok()) {
    fail_all(handle_or.status());
    return;
  }
  std::shared_ptr<ServableModel> handle = std::move(handle_or).value();

  Tensor stacked;
  if (n == 1) {
    stacked = (*batch)[0].x;
  } else {
    std::vector<Tensor> rows;
    rows.reserve(batch->size());
    for (const Request& req : *batch) {
      rows.push_back(req.x);
    }
    stacked = ops::Concat(rows, /*axis=*/0);
  }

  Result<core::TaskResult> result = handle->Predict(stacked);
  if (stats_ != nullptr) {
    stats_->RecordBatch(model, n);
  }
  if (!result.ok()) {
    fail_all(result.status());
    return;
  }
  const core::TaskResult& full = result.value();
  const auto now = Clock::now();
  for (int64_t i = 0; i < n; ++i) {
    Request& req = (*batch)[static_cast<size_t>(i)];
    if (stats_ != nullptr) {
      stats_->RecordRequest(
          model, std::chrono::duration<double, std::milli>(now - req.enqueued)
                     .count());
    }
    if (n == 1) {
      req.promise.set_value(std::move(result));
      return;
    }
    req.promise.set_value(SliceRow(full, n, i));
  }
}

void MicroBatcher::Shutdown() {
  std::vector<ModelQueue*> queues;
  {
    std::lock_guard<std::mutex> lk(map_mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
    for (auto& [name, q] : queues_) {
      queues.push_back(q.get());
    }
  }
  for (ModelQueue* q : queues) {
    {
      std::lock_guard<std::mutex> lk(q->mu);
      q->stop = true;
    }
    q->cv.notify_all();
  }
  for (ModelQueue* q : queues) {
    if (q->worker.joinable()) {
      q->worker.join();
    }
  }
}

}  // namespace units::serve
