#ifndef UNITS_SERVE_ADMISSION_H_
#define UNITS_SERVE_ADMISSION_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>

#include "base/status.h"
#include "serve/serve_stats.h"

namespace units::serve {

/// Bounded request admission: at most `max_queue` requests may be admitted
/// and not yet answered at any moment. A request beyond that is shed
/// immediately with ResourceExhausted("overloaded") instead of queueing
/// unboundedly — the serving layer turns that into a structured
/// {"ok": false, "error": "overloaded"} reply. Admitted requests may also
/// carry a deadline (`request_timeout_ms`); the batcher answers requests
/// that are still queued past their deadline with DeadlineExceeded.
///
/// Accepted / shed / timed-out outcomes are counted in ServeStats (the
/// controller owns accepted and shed; the batcher reports timeouts).
class AdmissionController {
 public:
  struct Options {
    /// Capacity of the admitted-but-unanswered window. Must be >= 1.
    int64_t max_queue = 256;
    /// Queue-wait deadline per admitted request, in milliseconds.
    /// 0 disables deadlines. Must be finite and >= 0.
    double request_timeout_ms = 0.0;
    /// Cap on the summed plan-arena bytes of admitted requests (each
    /// request's cost is its model's largest captured-plan arena, see
    /// ServableModel::plan_arena_bytes). 0 disables the cap. A request
    /// that would exceed it is shed — unless nothing is in flight, so an
    /// oversized model still makes progress. Must be >= 0.
    int64_t max_plan_bytes_in_flight = 0;
  };

  /// Aborts (UNITS_CHECK) on out-of-range options; `stats` may be null.
  explicit AdmissionController(Options options, ServeStats* stats = nullptr);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Admits one request (OK) or sheds it (ResourceExhausted, message
  /// "overloaded"). `plan_bytes` is the request's plan-arena memory cost,
  /// counted against max_plan_bytes_in_flight while admitted. Every OK
  /// must be paired with exactly one Release() carrying the same cost.
  Status TryAdmit(int64_t plan_bytes = 0);

  /// Returns the slot of a previously admitted request. Called by the
  /// batcher when the request's promise is fulfilled — on success, error,
  /// timeout, or shutdown drain alike.
  void Release(int64_t plan_bytes = 0);

  /// Deadline for a request admitted at `now`, or nullopt when deadlines
  /// are disabled.
  std::optional<std::chrono::steady_clock::time_point> DeadlineFor(
      std::chrono::steady_clock::time_point now) const;

  /// Admitted-and-unanswered request count right now.
  int64_t in_flight() const;

  /// Summed plan-arena bytes of admitted-and-unanswered requests.
  int64_t plan_bytes_in_flight() const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  ServeStats* stats_;
  mutable std::mutex mu_;
  int64_t in_flight_ = 0;
  int64_t plan_bytes_in_flight_ = 0;
};

}  // namespace units::serve

#endif  // UNITS_SERVE_ADMISSION_H_
