#ifndef UNITS_SERVE_STREAMING_H_
#define UNITS_SERVE_STREAMING_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "data/normalize.h"
#include "serve/serve_stats.h"
#include "tensor/tensor.h"

namespace units::serve {

/// Bounds shared by every streaming session on a transport. Sessions over
/// the limit are shed with a structured "overloaded" error, mirroring the
/// predict path's admission control.
struct StreamingLimits {
  /// Open streams allowed across all connections of one server.
  int64_t max_sessions = 64;
  /// Largest window length a stream_open may request.
  int64_t max_window = 4096;
  /// Most points (per channel) a single stream_feed may carry; bounds the
  /// per-line work and, together with the line-size cap, per-session
  /// buffered bytes.
  int64_t max_feed_points = 16384;
  /// Anomaly scores retained for rolling threshold recalibration.
  int64_t score_window = 4096;
  /// Streams idle longer than this are reaped (0 disables reaping).
  double idle_timeout_s = 0.0;
};

/// Server-wide admission gate for streaming sessions: a bounded count of
/// concurrently open streams shared by every connection. Thread-safe (the
/// socket transport opens streams from its event loop while tests inspect
/// counts from other threads).
class StreamGate {
 public:
  /// `stats` may be null; it must outlive the gate otherwise.
  StreamGate(const StreamingLimits& limits, ServeStats* stats);

  /// Claims a stream slot. Returns false — and counts a shed — when every
  /// slot is taken; the caller answers "overloaded".
  bool TryOpen();

  /// How a slot is being released: an orderly stream_close (or connection
  /// teardown) vs the idle-timeout reaper.
  enum class Release { kClosed, kReaped };
  void Close(Release kind);

  int64_t active() const;
  const StreamingLimits& limits() const { return limits_; }

 private:
  StreamingLimits limits_;
  ServeStats* stats_;
  mutable std::mutex mu_;
  int64_t active_ = 0;
};

/// One open streaming session: a per-channel ring of not-yet-emitted
/// points, rolling Welford statistics over everything ever fed, and a
/// bounded ring of recent anomaly scores for online threshold
/// recalibration. Owned by a RequestSession (single-threaded); kept in a
/// shared_ptr so queued feed responses outlive a close or reap.
class StreamState {
 public:
  struct Config {
    std::string model;
    int64_t channels = 0;
    int64_t window = 0;
    int64_t stride = 0;   // 1 <= stride <= window
    bool normalize = true;
    /// > 0 enables rolling anomaly-threshold recalibration at this score
    /// quantile; only ever set for anomaly-detection models.
    double quantile = 0.0;
    int64_t score_window = 4096;
  };

  explicit StreamState(Config config);

  struct CompletedWindow {
    int64_t index = 0;  // 0-based count of windows emitted by this stream
    Tensor values;      // [1, D, W], normalized when config.normalize
  };

  /// Feeds `points` ([D, P], time-major per channel) into the stream:
  /// updates the rolling statistics point by point, then emits every
  /// window that completed. Window k is normalized with the statistics of
  /// all points up to and including its last point — the contract that
  /// makes streamed outputs bitwise identical to an offline replay.
  std::vector<CompletedWindow> Feed(const Tensor& points);

  /// Rolling threshold recalibration for one window's anomaly scores:
  /// computes the configured quantile over the score ring (prior windows
  /// only), rewrites `labels` as score > threshold, then folds `scores`
  /// into the ring. Returns the threshold, or nullopt when the ring is
  /// still empty (the model's fitted threshold stands). No-op unless
  /// config.quantile > 0.
  std::optional<float> RecalibrateLabels(const Tensor& scores,
                                         std::vector<int64_t>* labels);

  const Config& config() const { return config_; }
  int64_t points() const { return points_; }
  int64_t windows() const { return windows_; }
  const data::RollingNormalizer& normalizer() const { return norm_; }

  /// Set by stream_close / the reaper the moment the request is accepted;
  /// later feeds on this id fail even though teardown is deferred.
  bool closed = false;
  /// Whether this stream's StreamGate slot has been released — teardown
  /// can race between deferred close, reap and session destruction.
  bool released = false;
  std::chrono::steady_clock::time_point last_feed{};

 private:
  Config config_;
  data::RollingNormalizer norm_;
  std::vector<float> buffer_;  // [D, W] row-major; first buffered_ columns live
  int64_t buffered_ = 0;
  int64_t points_ = 0;
  int64_t windows_ = 0;
  std::vector<float> score_ring_;
  size_t next_score_ = 0;  // ring write cursor
};

}  // namespace units::serve

#endif  // UNITS_SERVE_STREAMING_H_
