#include "serve/server.h"

#include <istream>
#include <ostream>
#include <utility>

#include "base/profile.h"
#include "core/serialize.h"

namespace units::serve {

namespace {

/// {"ok": false, "error": msg} (+ id when present).
json::JsonValue ErrorResponse(const json::JsonValue& id,
                              const std::string& message) {
  json::JsonValue resp = json::JsonValue::Object();
  if (!id.is_null()) {
    resp.Set("id", id);
  }
  resp.Set("ok", json::JsonValue::Bool(false));
  resp.Set("error", json::JsonValue::String(message));
  return resp;
}

json::JsonValue OkResponse(const std::string& op) {
  json::JsonValue resp = json::JsonValue::Object();
  resp.Set("ok", json::JsonValue::Bool(true));
  resp.Set("op", json::JsonValue::String(op));
  return resp;
}

/// Fallible string-field lookup on an untrusted request object.
Result<std::string> GetStringField(const json::JsonValue& req,
                                   const std::string& key) {
  UNITS_ASSIGN_OR_RETURN(const json::JsonValue* v, req.Find(key));
  if (!v->is_string()) {
    return Status::InvalidArgument("field '" + key + "' must be a string");
  }
  return v->AsString();
}

/// Parses the "values" payload into one series [D, T]. Accepts [D][T]
/// nested arrays or a flat [T] array (D = 1).
Result<Tensor> ValuesToSeries(const json::JsonValue& values) {
  if (!values.is_array() || values.size() == 0) {
    return Status::InvalidArgument("'values' must be a non-empty array");
  }
  std::vector<float> flat;
  int64_t channels = 0;
  int64_t length = 0;
  if (values[0].is_array()) {
    channels = static_cast<int64_t>(values.size());
    length = static_cast<int64_t>(values[0].size());
    if (length == 0) {
      return Status::InvalidArgument("'values' channels must be non-empty");
    }
    flat.reserve(static_cast<size_t>(channels * length));
    for (size_t d = 0; d < values.size(); ++d) {
      const json::JsonValue& row = values[d];
      if (!row.is_array() ||
          static_cast<int64_t>(row.size()) != length) {
        return Status::InvalidArgument(
            "'values' channels must be equal-length arrays");
      }
      for (size_t t = 0; t < row.size(); ++t) {
        if (!row[t].is_number()) {
          return Status::InvalidArgument("'values' entries must be numbers");
        }
        flat.push_back(static_cast<float>(row[t].AsNumber()));
      }
    }
  } else {
    channels = 1;
    length = static_cast<int64_t>(values.size());
    flat.reserve(static_cast<size_t>(length));
    for (size_t t = 0; t < values.size(); ++t) {
      if (!values[t].is_number()) {
        return Status::InvalidArgument("'values' entries must be numbers");
      }
      flat.push_back(static_cast<float>(values[t].AsNumber()));
    }
  }
  return Tensor::FromVector({channels, length}, std::move(flat));
}

/// Renders a completed prediction as a response line. Admission sheds and
/// queue timeouts keep their terse messages ("overloaded", "request timed
/// out ...") so clients can match on them.
json::JsonValue PredictResponse(const json::JsonValue& id,
                                const std::string& model,
                                const Result<core::TaskResult>& result) {
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kResourceExhausted ||
        result.status().code() == StatusCode::kDeadlineExceeded) {
      return ErrorResponse(id, result.status().message());
    }
    return ErrorResponse(id, result.status().ToString());
  }
  json::JsonValue resp = json::JsonValue::Object();
  resp.Set("id", id);
  resp.Set("ok", json::JsonValue::Bool(true));
  resp.Set("model", json::JsonValue::String(model));
  const core::TaskResult& r = result.value();
  if (!r.labels.empty()) {
    resp.Set("labels", json::JsonValue::FromInts(r.labels));
  }
  if (r.predictions.numel() > 0) {
    resp.Set("predictions", core::TensorToJson(r.predictions));
  }
  if (r.scores.numel() > 0) {
    resp.Set("scores", core::TensorToJson(r.scores));
  }
  return resp;
}

}  // namespace

// --- RequestSession --------------------------------------------------------

RequestSession::RequestSession(ModelRegistry* registry, MicroBatcher* batcher,
                               ServeStats* stats, Options options)
    : registry_(registry),
      batcher_(batcher),
      stats_(stats),
      options_(options) {}

void RequestSession::PushError(const std::string& message) {
  Entry entry;
  entry.ready = true;
  entry.line = ErrorResponse(json::JsonValue(), message).Dump() + "\n";
  entries_.push_back(std::move(entry));
}

RequestSession::LineKind RequestSession::ProcessLine(const std::string& line) {
  if (line.size() > options_.max_line_bytes) {
    PushError("request line exceeds " +
              std::to_string(options_.max_line_bytes) + " bytes");
    return LineKind::kBarrier;
  }
  auto parsed = json::Parse(line);
  if (!parsed.ok() || !parsed->is_object() || !parsed->Contains("op") ||
      !parsed->at("op").is_string()) {
    PushError(parsed.ok() ? "request needs a string 'op' field"
                          : parsed.status().ToString());
    return LineKind::kBarrier;
  }
  const json::JsonValue& request = *parsed;
  const std::string op = request.at("op").AsString();

  if (op == "predict") {
    json::JsonValue id = request.Contains("id") ? request.at("id")
                                                : json::JsonValue::Int(next_id_);
    ++next_id_;
    auto model = GetStringField(request, "model");
    if (!model.ok()) {
      Entry entry;
      entry.ready = true;
      entry.line = ErrorResponse(id, model.status().ToString()).Dump() + "\n";
      entries_.push_back(std::move(entry));
      return LineKind::kBarrier;
    }
    auto values = request.Find("values");
    Result<Tensor> series = values.ok() ? ValuesToSeries(**values)
                                        : Result<Tensor>(values.status());
    if (!series.ok()) {
      Entry entry;
      entry.ready = true;
      entry.line = ErrorResponse(id, series.status().ToString()).Dump() + "\n";
      entries_.push_back(std::move(entry));
      return LineKind::kBarrier;
    }
    Entry entry;
    entry.is_predict = true;
    entry.id = std::move(id);
    entry.model = *model;
    entry.future = batcher_->Submit(*model, *series);
    entries_.push_back(std::move(entry));
    return LineKind::kPending;
  }

  if (op == "quit") {
    quit_ = true;
    Entry entry;
    entry.ready = true;
    entry.line = OkResponse(op).Dump() + "\n";
    entries_.push_back(std::move(entry));
    return LineKind::kQuit;
  }

  // Control ops are evaluated when they reach the front of the response
  // queue, i.e. after every earlier predict has been answered — the
  // barrier semantics "stats"/"list"/"unload" rely on.
  Entry entry;
  entry.deferred = [this, request]() { return HandleControl(request); };
  entries_.push_back(std::move(entry));
  return LineKind::kBarrier;
}

json::JsonValue RequestSession::HandleControl(const json::JsonValue& request) {
  const std::string op = request.at("op").AsString();
  if (op == "load") {
    auto model = GetStringField(request, "model");
    auto path = GetStringField(request, "path");
    if (!model.ok()) {
      return ErrorResponse(json::JsonValue(), model.status().ToString());
    }
    if (!path.ok()) {
      return ErrorResponse(json::JsonValue(), path.status().ToString());
    }
    const Status status = registry_->Load(*model, *path);
    if (!status.ok()) {
      return ErrorResponse(json::JsonValue(), status.ToString());
    }
    json::JsonValue resp = OkResponse(op);
    resp.Set("model", json::JsonValue::String(*model));
    auto handle = registry_->Get(*model);
    if (handle.ok()) {
      resp.Set("task", json::JsonValue::String((*handle)->task()));
    }
    return resp;
  }
  if (op == "unload" || op == "reload") {
    auto model = GetStringField(request, "model");
    if (!model.ok()) {
      return ErrorResponse(json::JsonValue(), model.status().ToString());
    }
    const Status status = op == "unload" ? registry_->Unload(*model)
                                         : registry_->Reload(*model);
    if (!status.ok()) {
      return ErrorResponse(json::JsonValue(), status.ToString());
    }
    json::JsonValue resp = OkResponse(op);
    resp.Set("model", json::JsonValue::String(*model));
    return resp;
  }
  if (op == "list") {
    json::JsonValue models = json::JsonValue::Array();
    for (const std::string& name : registry_->List()) {
      auto handle = registry_->Get(name);
      if (!handle.ok()) {
        continue;  // unloaded between List and Get
      }
      json::JsonValue entry = json::JsonValue::Object();
      entry.Set("name", json::JsonValue::String(name));
      entry.Set("task", json::JsonValue::String((*handle)->task()));
      entry.Set("path", json::JsonValue::String((*handle)->path()));
      entry.Set("input_channels",
                json::JsonValue::Int((*handle)->input_channels()));
      models.Append(std::move(entry));
    }
    json::JsonValue resp = OkResponse(op);
    resp.Set("models", std::move(models));
    return resp;
  }
  if (op == "stats") {
    json::JsonValue resp = OkResponse(op);
    resp.Set("stats", stats_ != nullptr ? stats_->ToJson()
                                        : json::JsonValue::Object());
    if (base::OpStatsRegistry::Enabled()) {
      auto parsed = json::Parse(base::OpStatsRegistry::Global()->DumpJson());
      if (parsed.ok()) {
        resp.Set("op_stats", std::move(parsed).value());
      }
    }
    return resp;
  }
  return ErrorResponse(json::JsonValue(), "unknown op '" + op + "'");
}

void RequestSession::Render(Entry* entry) {
  if (entry->ready) {
    return;
  }
  if (entry->is_predict) {
    const Result<core::TaskResult> result = entry->future.get();
    entry->line =
        PredictResponse(entry->id, entry->model, result).Dump() + "\n";
  } else {
    entry->line = entry->deferred().Dump() + "\n";
  }
  entry->ready = true;
}

bool RequestSession::PopReady(std::string* out) {
  if (entries_.empty()) {
    return false;
  }
  Entry& front = entries_.front();
  if (!front.ready && front.is_predict &&
      front.future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
    return false;
  }
  Render(&front);
  *out = std::move(front.line);
  entries_.pop_front();
  return true;
}

bool RequestSession::PopBlocking(std::string* out) {
  if (entries_.empty()) {
    return false;
  }
  Render(&entries_.front());  // future.get() blocks as needed
  *out = std::move(entries_.front().line);
  entries_.pop_front();
  return true;
}

// --- JsonLineServer --------------------------------------------------------

JsonLineServer::JsonLineServer(ModelRegistry* registry, Options options)
    : options_(std::move(options)),
      registry_(registry),
      admission_(options_.admission, &stats_),
      batcher_(registry, options_.batcher, &stats_, &admission_) {}

int JsonLineServer::Run(std::istream& in, std::ostream& out) {
  RequestSession session(registry_, &batcher_, &stats_, options_.session);
  std::string line;
  std::string response;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // blank line
    }
    const RequestSession::LineKind kind = session.ProcessLine(line);
    if (kind == RequestSession::LineKind::kPending) {
      // Opportunistically flush responses that are already complete, but
      // never block — later predict lines may still coalesce into the
      // same batch.
      while (session.PopReady(&response)) {
        out << response;
      }
      out.flush();
      continue;
    }
    // Control ops and errors act as barriers: drain everything queued so
    // far (the barrier's own response last).
    while (session.PopBlocking(&response)) {
      out << response;
    }
    out.flush();
    if (session.quit_requested()) {
      return 0;
    }
  }
  while (session.PopBlocking(&response)) {
    out << response;
  }
  out.flush();
  return 0;
}

}  // namespace units::serve
