#include "serve/server.h"

#include <istream>
#include <ostream>
#include <utility>

#include "base/profile.h"
#include "core/serialize.h"

namespace units::serve {

namespace {

/// {"ok": false, "error": msg} (+ id when present).
json::JsonValue ErrorResponse(const json::JsonValue& id,
                              const std::string& message) {
  json::JsonValue resp = json::JsonValue::Object();
  if (!id.is_null()) {
    resp.Set("id", id);
  }
  resp.Set("ok", json::JsonValue::Bool(false));
  resp.Set("error", json::JsonValue::String(message));
  return resp;
}

json::JsonValue OkResponse(const std::string& op) {
  json::JsonValue resp = json::JsonValue::Object();
  resp.Set("ok", json::JsonValue::Bool(true));
  resp.Set("op", json::JsonValue::String(op));
  return resp;
}

/// Fallible string-field lookup on an untrusted request object.
Result<std::string> GetStringField(const json::JsonValue& req,
                                   const std::string& key) {
  UNITS_ASSIGN_OR_RETURN(const json::JsonValue* v, req.Find(key));
  if (!v->is_string()) {
    return Status::InvalidArgument("field '" + key + "' must be a string");
  }
  return v->AsString();
}

/// Fallible integer-field lookup; rejects non-integral numbers.
Result<int64_t> GetIntField(const json::JsonValue& req,
                            const std::string& key) {
  UNITS_ASSIGN_OR_RETURN(const json::JsonValue* v, req.Find(key));
  if (!v->is_number() ||
      v->AsNumber() != static_cast<double>(v->AsInt())) {
    return Status::InvalidArgument("field '" + key + "' must be an integer");
  }
  return v->AsInt();
}

/// Parses the "values" payload into one series [D, T]. Accepts [D][T]
/// nested arrays or a flat [T] array (D = 1).
Result<Tensor> ValuesToSeries(const json::JsonValue& values) {
  if (!values.is_array() || values.size() == 0) {
    return Status::InvalidArgument("'values' must be a non-empty array");
  }
  std::vector<float> flat;
  int64_t channels = 0;
  int64_t length = 0;
  if (values[0].is_array()) {
    channels = static_cast<int64_t>(values.size());
    length = static_cast<int64_t>(values[0].size());
    if (length == 0) {
      return Status::InvalidArgument("'values' channels must be non-empty");
    }
    flat.reserve(static_cast<size_t>(channels * length));
    for (size_t d = 0; d < values.size(); ++d) {
      const json::JsonValue& row = values[d];
      if (!row.is_array() ||
          static_cast<int64_t>(row.size()) != length) {
        return Status::InvalidArgument(
            "'values' channels must be equal-length arrays");
      }
      for (size_t t = 0; t < row.size(); ++t) {
        if (!row[t].is_number()) {
          return Status::InvalidArgument("'values' entries must be numbers");
        }
        flat.push_back(static_cast<float>(row[t].AsNumber()));
      }
    }
  } else {
    channels = 1;
    length = static_cast<int64_t>(values.size());
    flat.reserve(static_cast<size_t>(length));
    for (size_t t = 0; t < values.size(); ++t) {
      if (!values[t].is_number()) {
        return Status::InvalidArgument("'values' entries must be numbers");
      }
      flat.push_back(static_cast<float>(values[t].AsNumber()));
    }
  }
  return Tensor::FromVector({channels, length}, std::move(flat));
}

/// Renders a completed prediction as a response line. Admission sheds and
/// queue timeouts keep their terse messages ("overloaded", "request timed
/// out ...") so clients can match on them.
json::JsonValue PredictResponse(const json::JsonValue& id,
                                const std::string& model,
                                const Result<core::TaskResult>& result) {
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kResourceExhausted ||
        result.status().code() == StatusCode::kDeadlineExceeded) {
      return ErrorResponse(id, result.status().message());
    }
    return ErrorResponse(id, result.status().ToString());
  }
  json::JsonValue resp = json::JsonValue::Object();
  resp.Set("id", id);
  resp.Set("ok", json::JsonValue::Bool(true));
  resp.Set("model", json::JsonValue::String(model));
  const core::TaskResult& r = result.value();
  if (!r.labels.empty()) {
    resp.Set("labels", json::JsonValue::FromInts(r.labels));
  }
  if (r.predictions.numel() > 0) {
    resp.Set("predictions", core::TensorToJson(r.predictions));
  }
  if (r.scores.numel() > 0) {
    resp.Set("scores", core::TensorToJson(r.scores));
  }
  return resp;
}

}  // namespace

// --- RequestSession --------------------------------------------------------

RequestSession::RequestSession(ModelRegistry* registry, MicroBatcher* batcher,
                               ServeStats* stats, Options options,
                               StreamGate* streams)
    : registry_(registry),
      batcher_(batcher),
      stats_(stats),
      options_(options),
      streams_gate_(streams) {}

RequestSession::~RequestSession() {
  // A dropped connection releases its stream slots; any still-pending feed
  // futures are abandoned (the batcher fulfils promises independently).
  for (auto& [sid, state] : streams_) {
    if (streams_gate_ != nullptr && !state->released) {
      state->released = true;
      streams_gate_->Close(StreamGate::Release::kClosed);
    }
  }
}

void RequestSession::PushReady(const json::JsonValue& response) {
  Entry entry;
  entry.ready = true;
  entry.line = response.Dump() + "\n";
  entries_.push_back(std::move(entry));
}

void RequestSession::PushError(const std::string& message) {
  Entry entry;
  entry.ready = true;
  entry.line = ErrorResponse(json::JsonValue(), message).Dump() + "\n";
  entries_.push_back(std::move(entry));
}

RequestSession::LineKind RequestSession::ProcessLine(const std::string& line) {
  if (line.size() > options_.max_line_bytes) {
    PushError("request line exceeds " +
              std::to_string(options_.max_line_bytes) + " bytes");
    return LineKind::kBarrier;
  }
  auto parsed = json::Parse(line);
  if (!parsed.ok() || !parsed->is_object() || !parsed->Contains("op") ||
      !parsed->at("op").is_string()) {
    PushError(parsed.ok() ? "request needs a string 'op' field"
                          : parsed.status().ToString());
    return LineKind::kBarrier;
  }
  const json::JsonValue& request = *parsed;
  const std::string op = request.at("op").AsString();

  if (op == "predict") {
    json::JsonValue id = request.Contains("id") ? request.at("id")
                                                : json::JsonValue::Int(next_id_);
    ++next_id_;
    auto model = GetStringField(request, "model");
    if (!model.ok()) {
      Entry entry;
      entry.ready = true;
      entry.line = ErrorResponse(id, model.status().ToString()).Dump() + "\n";
      entries_.push_back(std::move(entry));
      return LineKind::kBarrier;
    }
    auto values = request.Find("values");
    Result<Tensor> series = values.ok() ? ValuesToSeries(**values)
                                        : Result<Tensor>(values.status());
    if (!series.ok()) {
      Entry entry;
      entry.ready = true;
      entry.line = ErrorResponse(id, series.status().ToString()).Dump() + "\n";
      entries_.push_back(std::move(entry));
      return LineKind::kBarrier;
    }
    Entry entry;
    entry.is_predict = true;
    entry.id = std::move(id);
    entry.model = *model;
    entry.future = batcher_->Submit(*model, *series);
    entries_.push_back(std::move(entry));
    return LineKind::kPending;
  }

  if (op == "stream_open" || op == "stream_feed" || op == "stream_close") {
    const json::JsonValue id =
        request.Contains("id") ? request.at("id") : json::JsonValue();
    if (op == "stream_open") {
      HandleStreamOpen(request, id);
      return LineKind::kBarrier;
    }
    if (op == "stream_feed") {
      return HandleStreamFeed(request, id);
    }
    return HandleStreamClose(request, id);
  }

  if (op == "ping") {
    // Liveness probe: answered as soon as it is processed (not deferred),
    // so a dedicated health-check connection — the router keeps one per
    // shard — gets a pong without waiting behind queued predicts. On a
    // shared connection FIFO response order still applies.
    json::JsonValue resp = OkResponse(op);
    if (request.Contains("id")) {
      resp.Set("id", request.at("id"));
    }
    PushReady(resp);
    return LineKind::kBarrier;
  }

  if (op == "quit") {
    quit_ = true;
    Entry entry;
    entry.ready = true;
    entry.line = OkResponse(op).Dump() + "\n";
    entries_.push_back(std::move(entry));
    return LineKind::kQuit;
  }

  // Control ops are evaluated when they reach the front of the response
  // queue, i.e. after every earlier predict has been answered — the
  // barrier semantics "stats"/"list"/"unload" rely on.
  Entry entry;
  entry.deferred = [this, request]() { return HandleControl(request); };
  entries_.push_back(std::move(entry));
  return LineKind::kBarrier;
}

json::JsonValue RequestSession::HandleControl(const json::JsonValue& request) {
  const std::string op = request.at("op").AsString();
  if (op == "load") {
    auto model = GetStringField(request, "model");
    auto path = GetStringField(request, "path");
    if (!model.ok()) {
      return ErrorResponse(json::JsonValue(), model.status().ToString());
    }
    if (!path.ok()) {
      return ErrorResponse(json::JsonValue(), path.status().ToString());
    }
    const Status status = registry_->Load(*model, *path);
    if (!status.ok()) {
      return ErrorResponse(json::JsonValue(), status.ToString());
    }
    json::JsonValue resp = OkResponse(op);
    resp.Set("model", json::JsonValue::String(*model));
    auto handle = registry_->Get(*model);
    if (handle.ok()) {
      resp.Set("task", json::JsonValue::String((*handle)->task()));
    }
    return resp;
  }
  if (op == "unload" || op == "reload" || op == "quantize") {
    auto model = GetStringField(request, "model");
    if (!model.ok()) {
      return ErrorResponse(json::JsonValue(), model.status().ToString());
    }
    // quantize shares the control-op barrier: every predict queued before
    // it is answered from the fp32 weights, every one after from int8.
    const Status status = op == "unload"   ? registry_->Unload(*model)
                          : op == "reload" ? registry_->Reload(*model)
                                           : registry_->Quantize(*model);
    if (!status.ok()) {
      return ErrorResponse(json::JsonValue(), status.ToString());
    }
    json::JsonValue resp = OkResponse(op);
    resp.Set("model", json::JsonValue::String(*model));
    if (op == "quantize") {
      auto handle = registry_->Get(*model);
      if (handle.ok()) {
        resp.Set("precision", json::JsonValue::String((*handle)->precision()));
      }
    }
    return resp;
  }
  if (op == "list") {
    json::JsonValue models = json::JsonValue::Array();
    for (const std::string& name : registry_->List()) {
      auto handle = registry_->Get(name);
      if (!handle.ok()) {
        continue;  // unloaded between List and Get
      }
      json::JsonValue entry = json::JsonValue::Object();
      entry.Set("name", json::JsonValue::String(name));
      entry.Set("task", json::JsonValue::String((*handle)->task()));
      entry.Set("path", json::JsonValue::String((*handle)->path()));
      entry.Set("input_channels",
                json::JsonValue::Int((*handle)->input_channels()));
      entry.Set("precision", json::JsonValue::String((*handle)->precision()));
      models.Append(std::move(entry));
    }
    json::JsonValue resp = OkResponse(op);
    resp.Set("models", std::move(models));
    return resp;
  }
  if (op == "stats") {
    json::JsonValue resp = OkResponse(op);
    resp.Set("stats", stats_ != nullptr ? stats_->ToJson()
                                        : json::JsonValue::Object());
    // Captured-plan summary: per-model cache counters plus the admission
    // controller's plan-memory gauge.
    json::JsonValue plan = json::JsonValue::Object();
    json::JsonValue per_model = json::JsonValue::Object();
    for (const std::string& name : registry_->List()) {
      auto handle = registry_->Get(name);
      if (!handle.ok()) {
        continue;
      }
      const plan::PlanCacheStats s =
          (*handle)->pipeline()->GetPlanCacheStats();
      json::JsonValue m = json::JsonValue::Object();
      m.Set("precision", json::JsonValue::String((*handle)->precision()));
      m.Set("plans", json::JsonValue::Int(s.plans));
      m.Set("unplannable", json::JsonValue::Int(s.unplannable));
      m.Set("plan_arena_bytes", json::JsonValue::Int(s.arena_bytes_max));
      m.Set("fused_sweeps", json::JsonValue::Int(s.fused_sweeps));
      m.Set("planned_chunks", json::JsonValue::Int(s.planned_chunks));
      m.Set("dynamic_chunks", json::JsonValue::Int(s.dynamic_chunks));
      per_model.Set(name, std::move(m));
    }
    plan.Set("models", std::move(per_model));
    if (batcher_ != nullptr && batcher_->admission() != nullptr) {
      plan.Set("bytes_in_flight",
               json::JsonValue::Int(
                   batcher_->admission()->plan_bytes_in_flight()));
      plan.Set("max_bytes_in_flight",
               json::JsonValue::Int(batcher_->admission()
                                        ->options()
                                        .max_plan_bytes_in_flight));
    }
    resp.Set("plan", std::move(plan));
    if (base::OpStatsRegistry::Enabled()) {
      auto parsed = json::Parse(base::OpStatsRegistry::Global()->DumpJson());
      if (parsed.ok()) {
        resp.Set("op_stats", std::move(parsed).value());
      }
    }
    return resp;
  }
  return ErrorResponse(json::JsonValue(), "unknown op '" + op + "'");
}

void RequestSession::HandleStreamOpen(const json::JsonValue& request,
                                      const json::JsonValue& id) {
  if (streams_gate_ == nullptr) {
    PushReady(ErrorResponse(id, "streaming is not enabled on this transport"));
    return;
  }
  auto model = GetStringField(request, "model");
  if (!model.ok()) {
    PushReady(ErrorResponse(id, model.status().ToString()));
    return;
  }
  auto handle = registry_->Get(*model);
  if (!handle.ok()) {
    PushReady(ErrorResponse(id, handle.status().ToString()));
    return;
  }
  const StreamingLimits& limits = streams_gate_->limits();
  auto window = GetIntField(request, "window");
  if (!window.ok()) {
    PushReady(ErrorResponse(id, window.status().ToString()));
    return;
  }
  if (*window < 1 || *window > limits.max_window) {
    PushReady(ErrorResponse(id, "'window' must be in [1, " +
                                    std::to_string(limits.max_window) + "]"));
    return;
  }
  int64_t stride = *window;
  if (request.Contains("stride")) {
    auto s = GetIntField(request, "stride");
    if (!s.ok()) {
      PushReady(ErrorResponse(id, s.status().ToString()));
      return;
    }
    if (*s < 1 || *s > *window) {
      PushReady(ErrorResponse(id, "'stride' must be in [1, window]"));
      return;
    }
    stride = *s;
  }
  bool normalize = true;
  if (request.Contains("normalize")) {
    if (!request.at("normalize").is_bool()) {
      PushReady(ErrorResponse(id, "'normalize' must be a boolean"));
      return;
    }
    normalize = request.at("normalize").AsBool();
  }
  const std::string task = (*handle)->task();
  double quantile = task == "anomaly_detection" ? 0.995 : 0.0;
  if (request.Contains("quantile")) {
    const json::JsonValue& q = request.at("quantile");
    if (!q.is_number() || q.AsNumber() < 0.0 || q.AsNumber() >= 1.0) {
      PushReady(ErrorResponse(id, "'quantile' must be a number in [0, 1)"));
      return;
    }
    if (q.AsNumber() > 0.0 && task != "anomaly_detection") {
      PushReady(ErrorResponse(
          id, "'quantile' recalibration requires an anomaly detection model"));
      return;
    }
    quantile = q.AsNumber();
  }
  if (!streams_gate_->TryOpen()) {
    PushReady(ErrorResponse(id, "overloaded"));
    return;
  }
  StreamState::Config config;
  config.model = *model;
  config.channels = (*handle)->input_channels();
  config.window = *window;
  config.stride = stride;
  config.normalize = normalize;
  config.quantile = quantile;
  config.score_window = limits.score_window;
  auto state = std::make_shared<StreamState>(std::move(config));
  state->last_feed = std::chrono::steady_clock::now();
  const int64_t sid = next_stream_;
  next_stream_ += 1;
  streams_[sid] = state;
  json::JsonValue resp = OkResponse("stream_open");
  if (!id.is_null()) {
    resp.Set("id", id);
  }
  resp.Set("stream", json::JsonValue::Int(sid));
  resp.Set("model", json::JsonValue::String(*model));
  resp.Set("task", json::JsonValue::String(task));
  resp.Set("window", json::JsonValue::Int(*window));
  resp.Set("stride", json::JsonValue::Int(stride));
  PushReady(resp);
}

RequestSession::LineKind RequestSession::HandleStreamFeed(
    const json::JsonValue& request, const json::JsonValue& id) {
  auto fail = [&](const std::string& message) {
    PushReady(ErrorResponse(id, message));
    return LineKind::kBarrier;
  };
  if (streams_gate_ == nullptr) {
    return fail("streaming is not enabled on this transport");
  }
  auto sid = GetIntField(request, "stream");
  if (!sid.ok()) {
    return fail(sid.status().ToString());
  }
  auto it = streams_.find(*sid);
  if (it == streams_.end() || it->second->closed) {
    return fail("unknown or closed stream " + std::to_string(*sid));
  }
  std::shared_ptr<StreamState> state = it->second;
  auto values = request.Find("values");
  Result<Tensor> series = values.ok() ? ValuesToSeries(**values)
                                      : Result<Tensor>(values.status());
  if (!series.ok()) {
    return fail(series.status().ToString());
  }
  if (series->dim(0) != state->config().channels) {
    return fail("stream expects " +
                std::to_string(state->config().channels) + " channels, got " +
                std::to_string(series->dim(0)));
  }
  if (series->dim(1) > streams_gate_->limits().max_feed_points) {
    return fail("feed exceeds " +
                std::to_string(streams_gate_->limits().max_feed_points) +
                " points");
  }
  state->last_feed = std::chrono::steady_clock::now();
  std::vector<StreamState::CompletedWindow> completed = state->Feed(*series);
  if (stats_ != nullptr) {
    stats_->RecordStreamActivity(static_cast<int64_t>(completed.size()),
                                 series->dim(1));
  }
  Entry entry;
  entry.is_feed = true;
  entry.id = id;
  entry.stream_id = *sid;
  entry.stream_points = state->points();
  entry.stream = state;
  for (StreamState::CompletedWindow& window : completed) {
    entry.window_indices.push_back(window.index);
    entry.window_futures.push_back(
        batcher_->Submit(state->config().model, window.values));
  }
  entries_.push_back(std::move(entry));
  return LineKind::kPending;
}

RequestSession::LineKind RequestSession::HandleStreamClose(
    const json::JsonValue& request, const json::JsonValue& id) {
  auto fail = [&](const std::string& message) {
    PushReady(ErrorResponse(id, message));
    return LineKind::kBarrier;
  };
  if (streams_gate_ == nullptr) {
    return fail("streaming is not enabled on this transport");
  }
  auto sid = GetIntField(request, "stream");
  if (!sid.ok()) {
    return fail(sid.status().ToString());
  }
  auto it = streams_.find(*sid);
  if (it == streams_.end() || it->second->closed) {
    return fail("unknown or closed stream " + std::to_string(*sid));
  }
  std::shared_ptr<StreamState> state = it->second;
  // Later feeds on this id fail immediately; teardown and the counter
  // response wait until every earlier feed has been answered.
  state->closed = true;
  const int64_t stream_id = *sid;
  Entry entry;
  entry.deferred = [this, id, stream_id, state]() {
    streams_.erase(stream_id);
    if (!state->released) {
      state->released = true;
      streams_gate_->Close(StreamGate::Release::kClosed);
    }
    json::JsonValue resp = OkResponse("stream_close");
    if (!id.is_null()) {
      resp.Set("id", id);
    }
    resp.Set("stream", json::JsonValue::Int(stream_id));
    resp.Set("windows", json::JsonValue::Int(state->windows()));
    resp.Set("points", json::JsonValue::Int(state->points()));
    return resp;
  };
  entries_.push_back(std::move(entry));
  return LineKind::kBarrier;
}

void RequestSession::ReapIdleStreams(
    std::chrono::steady_clock::time_point now) {
  if (streams_.empty() || streams_gate_ == nullptr) {
    return;
  }
  const double timeout_s = streams_gate_->limits().idle_timeout_s;
  if (timeout_s <= 0.0) {
    return;
  }
  const auto timeout = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(timeout_s));
  for (auto it = streams_.begin(); it != streams_.end();) {
    std::shared_ptr<StreamState>& state = it->second;
    if (!state->closed && now - state->last_feed > timeout) {
      state->closed = true;
      state->released = true;
      streams_gate_->Close(StreamGate::Release::kReaped);
      it = streams_.erase(it);
    } else {
      ++it;
    }
  }
}

json::JsonValue RequestSession::RenderFeed(Entry* entry) {
  json::JsonValue resp = OkResponse("stream_feed");
  if (!entry->id.is_null()) {
    resp.Set("id", entry->id);
  }
  resp.Set("stream", json::JsonValue::Int(entry->stream_id));
  const StreamState::Config& config = entry->stream->config();
  json::JsonValue windows = json::JsonValue::Array();
  for (size_t k = 0; k < entry->window_futures.size(); ++k) {
    const Result<core::TaskResult> result = entry->window_futures[k].get();
    json::JsonValue w = json::JsonValue::Object();
    w.Set("index", json::JsonValue::Int(entry->window_indices[k]));
    if (!result.ok()) {
      const bool terse =
          result.status().code() == StatusCode::kResourceExhausted ||
          result.status().code() == StatusCode::kDeadlineExceeded;
      w.Set("ok", json::JsonValue::Bool(false));
      w.Set("error", json::JsonValue::String(
                         terse ? result.status().message()
                               : result.status().ToString()));
    } else {
      w.Set("ok", json::JsonValue::Bool(true));
      const core::TaskResult& r = result.value();
      std::vector<int64_t> labels = r.labels;
      if (config.quantile > 0.0 && r.scores.numel() > 0) {
        // Feed entries render in FIFO order, so the score ring sees
        // windows in emission order — the rolling threshold is
        // deterministic for a given input sequence.
        std::optional<float> threshold =
            entry->stream->RecalibrateLabels(r.scores, &labels);
        if (threshold.has_value()) {
          w.Set("threshold", json::JsonValue::Number(*threshold));
        }
      }
      if (!labels.empty()) {
        w.Set("labels", json::JsonValue::FromInts(labels));
      }
      if (r.predictions.numel() > 0) {
        w.Set("predictions", core::TensorToJson(r.predictions));
      }
      if (r.scores.numel() > 0) {
        w.Set("scores", core::TensorToJson(r.scores));
      }
    }
    windows.Append(std::move(w));
  }
  resp.Set("windows", std::move(windows));
  resp.Set("points", json::JsonValue::Int(entry->stream_points));
  return resp;
}

void RequestSession::Render(Entry* entry) {
  if (entry->ready) {
    return;
  }
  if (entry->is_predict) {
    const Result<core::TaskResult> result = entry->future.get();
    entry->line =
        PredictResponse(entry->id, entry->model, result).Dump() + "\n";
  } else if (entry->is_feed) {
    entry->line = RenderFeed(entry).Dump() + "\n";
  } else {
    entry->line = entry->deferred().Dump() + "\n";
  }
  entry->ready = true;
}

bool RequestSession::PopReady(std::string* out) {
  if (entries_.empty()) {
    return false;
  }
  Entry& front = entries_.front();
  if (!front.ready && front.is_predict &&
      front.future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
    return false;
  }
  if (!front.ready && front.is_feed) {
    for (const auto& future : front.window_futures) {
      if (future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        return false;
      }
    }
  }
  Render(&front);
  *out = std::move(front.line);
  entries_.pop_front();
  return true;
}

bool RequestSession::PopBlocking(std::string* out) {
  if (entries_.empty()) {
    return false;
  }
  Render(&entries_.front());  // future.get() blocks as needed
  *out = std::move(entries_.front().line);
  entries_.pop_front();
  return true;
}

// --- JsonLineServer --------------------------------------------------------

JsonLineServer::JsonLineServer(ModelRegistry* registry, Options options)
    : options_(std::move(options)),
      registry_(registry),
      streams_gate_(options_.streaming, &stats_),
      admission_(options_.admission, &stats_),
      batcher_(registry, options_.batcher, &stats_, &admission_) {}

int JsonLineServer::Run(std::istream& in, std::ostream& out) {
  RequestSession session(registry_, &batcher_, &stats_, options_.session,
                         &streams_gate_);
  std::string line;
  std::string response;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // blank line
    }
    // Blocking reads mean idle streams are reaped lazily, when the next
    // request arrives; the socket transport reaps on its event loop.
    session.ReapIdleStreams(std::chrono::steady_clock::now());
    const RequestSession::LineKind kind = session.ProcessLine(line);
    if (kind == RequestSession::LineKind::kPending) {
      // Opportunistically flush responses that are already complete, but
      // never block — later predict lines may still coalesce into the
      // same batch.
      while (session.PopReady(&response)) {
        out << response;
      }
      out.flush();
      continue;
    }
    // Control ops and errors act as barriers: drain everything queued so
    // far (the barrier's own response last).
    while (session.PopBlocking(&response)) {
      out << response;
    }
    out.flush();
    if (session.quit_requested()) {
      return 0;
    }
  }
  while (session.PopBlocking(&response)) {
    out << response;
  }
  out.flush();
  return 0;
}

}  // namespace units::serve
