#ifndef UNITS_SERVE_BATCHER_H_
#define UNITS_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/status.h"
#include "serve/model_registry.h"
#include "serve/serve_stats.h"

namespace units::serve {

/// Dynamic micro-batcher: coalesces concurrent single-series Predict
/// requests for the same model into one [N, D, T] forward.
///
/// Each model gets a FIFO queue and one dispatcher thread. The dispatcher
/// flushes a batch as soon as `max_batch_size` requests are waiting or the
/// oldest request has waited `max_delay_ms`, whichever comes first, then
/// scatters the per-row results back to the callers' futures. Intra-batch
/// compute parallelism comes from the kernels' shared ThreadPool (see
/// base/parallel.h), which is safe for concurrent dispatchers.
///
/// Determinism: batching never changes answers. Every kernel in the
/// forward path computes each output row independently of its batch
/// neighbours (DESIGN.md §9), so a request's result is bitwise identical
/// whether it rode in a batch of 1 or of `max_batch_size`, at any thread
/// count.
class MicroBatcher {
 public:
  struct Options {
    int64_t max_batch_size = 16;
    double max_delay_ms = 2.0;
  };

  /// `registry` must outlive the batcher; `stats` may be null.
  MicroBatcher(ModelRegistry* registry, Options options,
               ServeStats* stats = nullptr);

  /// Drains all pending requests, then joins the dispatchers.
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues one series for `model` and returns a future for its result.
  /// `x` is a single series [D, T] (or [1, D, T]). The future carries the
  /// same Result a direct ServableModel::Predict on [1, D, T] would.
  std::future<Result<core::TaskResult>> Submit(const std::string& model,
                                               const Tensor& x);

  /// Flushes outstanding requests and stops the dispatchers. Subsequent
  /// Submit calls fail with FailedPrecondition. Idempotent.
  void Shutdown();

  const Options& options() const { return options_; }

 private:
  struct Request {
    Tensor x;  // always [1, D, T]
    std::promise<Result<core::TaskResult>> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  struct ModelQueue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Request> queue;
    std::thread worker;
    bool stop = false;
  };

  void WorkerLoop(const std::string& model, ModelQueue* q);
  void ExecuteBatch(const std::string& model, std::vector<Request>* batch);

  ModelRegistry* registry_;
  Options options_;
  ServeStats* stats_;

  std::mutex map_mu_;
  std::map<std::string, std::unique_ptr<ModelQueue>> queues_;
  bool shutdown_ = false;
};

}  // namespace units::serve

#endif  // UNITS_SERVE_BATCHER_H_
