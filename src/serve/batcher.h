#ifndef UNITS_SERVE_BATCHER_H_
#define UNITS_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "base/status.h"
#include "serve/admission.h"
#include "serve/model_registry.h"
#include "serve/serve_stats.h"

namespace units::serve {

/// Dynamic micro-batcher: coalesces concurrent single-series Predict
/// requests for the same model into one [N, D, T] forward.
///
/// Each model gets a FIFO queue, but — unlike the original thread-per-model
/// design — all queues are serviced by ONE scheduler thread plus a small
/// worker pool (`num_workers`), so the thread count is fixed no matter how
/// many models are resident. The scheduler flushes a model's queue as soon
/// as `max_batch_size` requests are waiting or the oldest request has
/// waited `max_delay_ms`, whichever comes first. When several models are
/// ready at once, the one whose oldest request has waited longest flushes
/// first (deadline-ordered, per-model-fair); at most one batch per model is
/// in flight at a time, so batch formation stays FIFO per model and a hot
/// model cannot occupy more than one worker.
///
/// With an AdmissionController attached, Submit sheds requests beyond the
/// admission capacity (ResourceExhausted "overloaded") and the scheduler
/// answers requests that out-wait their deadline with DeadlineExceeded;
/// both outcomes are counted in ServeStats.
///
/// Determinism: batching never changes answers. Every kernel in the
/// forward path computes each output row independently of its batch
/// neighbours (DESIGN.md §9), so a request's result is bitwise identical
/// whether it rode in a batch of 1 or of `max_batch_size`, at any thread
/// count — and regardless of which worker executed it.
class MicroBatcher {
 public:
  struct Options {
    /// Largest coalesced forward. Must be >= 1 (0 would never form a
    /// batch and spin the scheduler; validated in the constructor).
    int64_t max_batch_size = 16;
    /// Longest time the oldest queued request may wait before a partial
    /// batch is flushed. Must be finite and >= 0 (0 = flush immediately).
    double max_delay_ms = 2.0;
    /// Worker threads executing flushed batches. Must be >= 1. Total
    /// batcher threads = num_workers + 1 (the scheduler), independent of
    /// the number of resident models.
    int num_workers = 2;
    /// Invoked after every request resolution (success, error, shed, or
    /// timeout) from whichever thread resolved it. The socket transport
    /// uses this to wake its poll loop; must be cheap and non-blocking.
    std::function<void()> on_resolve;
  };

  /// `registry` must outlive the batcher; `stats` and `admission` may be
  /// null. Aborts (UNITS_CHECK) on out-of-range options.
  MicroBatcher(ModelRegistry* registry, Options options,
               ServeStats* stats = nullptr,
               AdmissionController* admission = nullptr);

  /// Drains all pending requests, then joins scheduler and workers.
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues one series for `model` and returns a future for its result.
  /// `x` is a single series [D, T] (or [1, D, T]). The future carries the
  /// same Result a direct ServableModel::Predict on [1, D, T] would, or
  /// ResourceExhausted("overloaded") when admission sheds the request, or
  /// DeadlineExceeded when it expires in the queue.
  std::future<Result<core::TaskResult>> Submit(const std::string& model,
                                               const Tensor& x);

  /// Flushes outstanding requests and stops the scheduler and workers.
  /// Subsequent Submit calls fail with FailedPrecondition. Idempotent.
  void Shutdown();

  const Options& options() const { return options_; }

  /// The attached admission controller (null when none was given).
  AdmissionController* admission() const { return admission_; }

 private:
  struct Request {
    Tensor x;  // always [1, D, T]
    std::promise<Result<core::TaskResult>> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    bool admitted = false;
    /// Plan-arena cost charged at admission; released with the request.
    int64_t plan_bytes = 0;
  };

  struct ModelQueue {
    std::deque<Request> queue;
    bool in_flight = false;  // a batch of this model is queued or executing
  };

  struct Batch {
    std::string model;
    std::vector<Request> requests;
  };

  void SchedulerLoop();
  void WorkerLoop();
  void ExecuteBatch(const std::string& model, std::vector<Request>* batch);
  /// Fulfils one request: releases its admission slot, sets the promise,
  /// fires on_resolve. The single exit point for every queued request.
  void Resolve(Request* req, Result<core::TaskResult> result);

  ModelRegistry* registry_;
  Options options_;
  ServeStats* stats_;
  AdmissionController* admission_;
  std::chrono::steady_clock::duration max_delay_{};

  std::mutex mu_;
  std::condition_variable sched_cv_;  // wakes the scheduler
  std::condition_variable work_cv_;   // wakes workers
  std::map<std::string, ModelQueue> queues_;
  std::deque<Batch> ready_;  // formed batches awaiting a worker
  int executing_ = 0;        // batches currently running on workers
  bool shutdown_ = false;    // no further Submits; drain everything
  bool workers_exit_ = false;  // set after the scheduler has drained

  std::thread scheduler_;
  std::vector<std::thread> workers_;
};

}  // namespace units::serve

#endif  // UNITS_SERVE_BATCHER_H_
