#include "serve/socket_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "base/logging.h"
#include "serve/net_util.h"

namespace units::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kReadChunk = 64 * 1024;

Clock::duration SecondsToDuration(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

}  // namespace

SocketServer::SocketServer(ModelRegistry* registry, Options options)
    : registry_(registry),
      options_(std::move(options)),
      streams_gate_(options_.streaming, &stats_),
      admission_(options_.admission, &stats_),
      batcher_(registry,
               [this] {
                 // A request resolving on a batcher thread wakes the poll
                 // loop so its response is written promptly.
                 MicroBatcher::Options b = options_.batcher;
                 b.on_resolve = [this] {
                   const int fd = wake_write_fd_.load(std::memory_order_relaxed);
                   if (fd >= 0) {
                     const char byte = 1;
                     // Best-effort: EAGAIN means the pipe already holds a
                     // wakeup, which is all we need.
                     (void)!::write(fd, &byte, 1);
                   }
                 };
                 return b;
               }(),
               &stats_, &admission_) {}

SocketServer::~SocketServer() {
  for (auto& [fd, conn] : connections_) {
    ::close(fd);
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
  }
  if (wake_fds_[0] >= 0) {
    ::close(wake_fds_[0]);
  }
  const int wake_write = wake_write_fd_.exchange(-1);
  if (wake_write >= 0) {
    ::close(wake_write);
  }
}

Status SocketServer::Start() {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("socket server already started");
  }
  if (::pipe2(wake_fds_, O_NONBLOCK | O_CLOEXEC) != 0) {
    return Status::IoError(std::string("pipe2: ") + std::strerror(errno));
  }
  wake_write_fd_.store(wake_fds_[1], std::memory_order_relaxed);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::IoError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  bound_port_ = static_cast<int>(ntohs(addr.sin_port));
  UNITS_LOG(Info) << "socket server listening on " << options_.bind_address
                  << ":" << bound_port_;
  return Status::Ok();
}

void SocketServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  const int fd = wake_write_fd_.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    (void)!::write(fd, &byte, 1);
  }
}

void SocketServer::DrainWakePipe() {
  char buf[256];
  while (ReadRetry(wake_fds_[0], buf, sizeof(buf)) > 0) {
  }
}

void SocketServer::AcceptNew(Clock::time_point now) {
  for (;;) {
    const int fd = Accept4Retry(listen_fd_, nullptr, nullptr,
                                SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      return;  // EAGAIN (no more pending) or a transient error
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->session = std::make_unique<RequestSession>(
        registry_, &batcher_, &stats_, options_.session, &streams_gate_);
    conn->last_activity = now;
    connections_.emplace(fd, std::move(conn));
  }
}

bool SocketServer::ReadFrom(Connection* conn, Clock::time_point now) {
  char buf[kReadChunk];
  const ssize_t n = ReadRetry(conn->fd, buf, sizeof(buf));
  if (n == 0) {
    // Half-close: the client is done sending; answer what it already
    // asked, then close once the write buffer drains.
    conn->read_closed = true;
    return true;
  }
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return true;
    }
    return false;  // reset mid-line or otherwise gone: tear down
  }
  conn->last_activity = now;
  conn->rbuf.append(buf, static_cast<size_t>(n));

  if (conn->proto == Connection::Proto::kUnknown) {
    bool decided = false;
    const bool is_http = SniffHttp(conn->rbuf, &decided);
    if (!decided) {
      return true;  // method-shaped prefix; wait for more bytes
    }
    if (is_http) {
      conn->proto = Connection::Proto::kHttp;
      HttpRequestParser::Limits limits;
      limits.max_body_bytes = options_.session.max_line_bytes;
      conn->http = std::make_unique<HttpConnState>(limits);
    } else {
      conn->proto = Connection::Proto::kNdjson;
    }
  }
  if (conn->proto == Connection::Proto::kHttp) {
    ConsumeHttp(conn);
  } else {
    ConsumeNdjson(conn);
  }
  return true;
}

void SocketServer::ConsumeNdjson(Connection* conn) {
  size_t start = 0;
  size_t pos;
  while (!conn->read_closed &&
         (pos = conn->rbuf.find('\n', start)) != std::string::npos) {
    std::string line = conn->rbuf.substr(start, pos - start);
    start = pos + 1;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (conn->discarding_line) {
      // Tail of an oversized line already answered with an error.
      conn->discarding_line = false;
      continue;
    }
    if (line.find_first_not_of(" \t") == std::string::npos) {
      continue;  // blank line
    }
    const RequestSession::LineKind kind = conn->session->ProcessLine(line);
    if (kind == RequestSession::LineKind::kQuit) {
      // No further requests from this client; remaining input is dropped
      // and the connection closes after the responses flush.
      conn->read_closed = true;
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
  conn->rbuf.erase(0, start);
  if (!conn->discarding_line &&
      conn->rbuf.size() > options_.session.max_line_bytes) {
    // Unterminated oversized line: answer now, skip input to the next
    // newline so the connection can resynchronize.
    conn->session->PushError("request line exceeds " +
                             std::to_string(options_.session.max_line_bytes) +
                             " bytes");
    conn->discarding_line = true;
    conn->rbuf.clear();
  }
}

void SocketServer::ConsumeHttp(Connection* conn) {
  // Every request (well-formed or not) pushes exactly one session entry
  // and one meta record, so FlushTo can wrap responses FIFO.
  while (!conn->read_closed) {
    HttpRequest request;
    const HttpRequestParser::Outcome outcome =
        conn->http->parser.Next(&conn->rbuf, &request);
    if (outcome == HttpRequestParser::Outcome::kNeedMore) {
      return;
    }
    if (outcome == HttpRequestParser::Outcome::kError) {
      // Framing is broken; no way to find the next request boundary.
      conn->session->PushError(conn->http->parser.error());
      conn->http->meta.push_back({false, conn->http->parser.status()});
      conn->read_closed = true;
      ::shutdown(conn->fd, SHUT_RD);
      return;
    }
    auto line = HttpRequestToLine(request);
    if (!line.ok()) {
      // Routing errors ("404 ...", "405 ...") keep the connection usable.
      const std::string& message = line.status().message();
      const size_t space = message.find(' ');
      const int status = std::atoi(message.c_str());
      conn->session->PushError(space == std::string::npos
                                   ? message
                                   : message.substr(space + 1));
      conn->http->meta.push_back(
          {request.keep_alive, status > 0 ? status : 400});
    } else {
      conn->http->meta.push_back({request.keep_alive, 0});
      conn->session->ProcessLine(*line);
    }
    if (!request.keep_alive) {
      conn->read_closed = true;
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
}

bool SocketServer::FlushTo(Connection* conn, Clock::time_point now) {
  // Backpressure: harvest completed responses only while the unsent
  // buffer is under the cap; a slow reader blocks its own harvest (and,
  // via the POLLIN gate in Run, its own reads) but nobody else's.
  std::string response;
  while (conn->wbuf.size() < options_.max_write_buffer_bytes &&
         conn->session->PopReady(&response)) {
    if (conn->proto == Connection::Proto::kHttp) {
      // FIFO responses match the FIFO request metadata 1:1 (ConsumeHttp
      // pushes exactly one meta per session entry).
      HttpResponseMeta meta{false, 500};
      if (!conn->http->meta.empty()) {
        meta = conn->http->meta.front();
        conn->http->meta.pop_front();
      }
      // The response line keeps its trailing '\n' as the body terminator.
      conn->wbuf += RenderHttpResponse(meta.status, response, meta.keep_alive);
    } else {
      conn->wbuf += response;
    }
  }
  while (!conn->wbuf.empty()) {
    const ssize_t n = SendRetry(conn->fd, conn->wbuf.data(), conn->wbuf.size(),
                                MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return true;
      }
      return false;  // EPIPE etc.: reader is gone
    }
    conn->wbuf.erase(0, static_cast<size_t>(n));
    conn->last_activity = now;
  }
  return true;
}

void SocketServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) {
    return;
  }
  ::close(fd);
  // Dropping the session abandons any still-pending futures; the batcher
  // fulfils their promises and the results evaporate with the shared
  // state — no leak, no dangling pointer.
  connections_.erase(it);
}

int SocketServer::Run() {
  if (listen_fd_ < 0) {
    UNITS_LOG(Error) << "SocketServer::Run called before Start";
    return 1;
  }
  bool draining = false;
  Clock::time_point drain_started{};
  const bool idle_enabled = options_.idle_timeout_s > 0.0;
  const auto idle_timeout = SecondsToDuration(options_.idle_timeout_s);
  const auto drain_timeout = SecondsToDuration(options_.drain_timeout_s);

  std::vector<pollfd> fds;
  std::vector<int> conn_fds;
  for (;;) {
    const auto now = Clock::now();
    if (drain_requested_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      drain_started = now;
      ::close(listen_fd_);
      listen_fd_ = -1;
      for (auto& [fd, conn] : connections_) {
        conn->read_closed = true;  // answer what's queued, take no more
      }
    }

    fds.clear();
    conn_fds.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    if (!draining) {
      fds.push_back({listen_fd_, POLLIN, 0});
    }
    for (auto& [fd, conn] : connections_) {
      short events = 0;
      if (!conn->read_closed &&
          conn->wbuf.size() < options_.max_write_buffer_bytes) {
        events |= POLLIN;
      }
      if (!conn->wbuf.empty()) {
        events |= POLLOUT;
      }
      fds.push_back({fd, events, 0});
      conn_fds.push_back(fd);
    }

    // 100 ms cap so idle/drain timeouts fire without a dedicated timer;
    // request completions wake the loop immediately through the pipe.
    (void)PollRetry(fds.data(), fds.size(), 100);
    const auto after = Clock::now();

    size_t idx = 0;
    if (fds[idx].revents & POLLIN) {
      DrainWakePipe();
    }
    ++idx;
    if (!draining) {
      if (fds[idx].revents & POLLIN) {
        AcceptNew(after);
      }
      ++idx;
    }

    for (size_t i = 0; i < conn_fds.size(); ++i) {
      auto it = connections_.find(conn_fds[i]);
      if (it == connections_.end()) {
        continue;
      }
      Connection* conn = it->second.get();
      conn->session->ReapIdleStreams(after);
      const short revents = fds[idx + i].revents;
      bool alive = true;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        alive = ReadFrom(conn, after);
      }
      // Harvest + write every pass: completions arrive via the wake pipe,
      // not as poll events on the connection.
      alive = alive && FlushTo(conn, after);
      if (!alive) {
        CloseConnection(conn->fd);
        continue;
      }
      const bool quiescent =
          conn->session->pending() == 0 && conn->wbuf.empty();
      if (conn->read_closed && quiescent) {
        CloseConnection(conn->fd);
        continue;
      }
      if (idle_enabled && !conn->read_closed && quiescent &&
          after - conn->last_activity > idle_timeout) {
        CloseConnection(conn->fd);
        continue;
      }
      if (draining && after - drain_started > drain_timeout) {
        CloseConnection(conn->fd);  // peer stopped reading; give up
        continue;
      }
    }

    if (draining && connections_.empty()) {
      return 0;
    }
  }
}

}  // namespace units::serve
