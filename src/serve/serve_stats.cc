#include "serve/serve_stats.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>

#include "metrics/metrics.h"

namespace units::serve {

namespace {

/// Captured when the library image is initialized — close enough to
/// process start for an uptime counter.
const std::chrono::steady_clock::time_point kProcessStart =
    std::chrono::steady_clock::now();

/// Nearest-rank percentile of a sorted sample; 0.0 for an empty window.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  return metrics::NearestRankQuantile(sorted, q);
}

}  // namespace

int64_t CurrentRssBytes() {
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::ifstream statm("/proc/self/statm");
  int64_t size_pages = 0;
  int64_t resident_pages = 0;
  if (!(statm >> size_pages >> resident_pages)) {
    return 0;
  }
  return resident_pages * static_cast<int64_t>(::sysconf(_SC_PAGESIZE));
}

double ProcessUptimeSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       kProcessStart)
      .count();
}

void ServeStats::RecordRequest(const std::string& model, double latency_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  PerModel& m = models_[model];
  m.requests += 1;
  if (m.latencies_ms.size() < kLatencyWindow) {
    m.latencies_ms.push_back(latency_ms);
  } else {
    m.latencies_ms[m.next_latency % kLatencyWindow] = latency_ms;
  }
  m.next_latency += 1;
}

void ServeStats::RecordBatch(const std::string& model, int64_t batch_size) {
  std::lock_guard<std::mutex> lk(mu_);
  PerModel& m = models_[model];
  m.batches += 1;
  m.batch_histogram[batch_size] += 1;
}

void ServeStats::RecordAccepted() {
  std::lock_guard<std::mutex> lk(mu_);
  admission_.accepted += 1;
}

void ServeStats::RecordShed() {
  std::lock_guard<std::mutex> lk(mu_);
  admission_.shed += 1;
}

void ServeStats::RecordTimedOut() {
  std::lock_guard<std::mutex> lk(mu_);
  admission_.timed_out += 1;
}

ServeStats::AdmissionSnapshot ServeStats::Admission() const {
  std::lock_guard<std::mutex> lk(mu_);
  return admission_;
}

void ServeStats::RecordStreamOpened() {
  std::lock_guard<std::mutex> lk(mu_);
  streams_.opened += 1;
}

void ServeStats::RecordStreamShed() {
  std::lock_guard<std::mutex> lk(mu_);
  streams_.shed += 1;
}

void ServeStats::RecordStreamClosed() {
  std::lock_guard<std::mutex> lk(mu_);
  streams_.closed += 1;
}

void ServeStats::RecordStreamReaped() {
  std::lock_guard<std::mutex> lk(mu_);
  streams_.reaped += 1;
}

void ServeStats::RecordStreamActivity(int64_t windows, int64_t points) {
  std::lock_guard<std::mutex> lk(mu_);
  streams_.windows += windows;
  streams_.points += points;
}

ServeStats::StreamsSnapshot ServeStats::Streams() const {
  std::lock_guard<std::mutex> lk(mu_);
  return streams_;
}

ServeStats::ModelSnapshot ServeStats::MakeSnapshot(const PerModel& m) {
  ModelSnapshot snap;
  snap.requests = m.requests;
  snap.batches = m.batches;
  snap.batch_histogram = m.batch_histogram;
  int64_t batched_requests = 0;
  for (const auto& [size, count] : m.batch_histogram) {
    batched_requests += size * count;
  }
  snap.mean_batch_size =
      m.batches == 0 ? 0.0
                     : static_cast<double>(batched_requests) /
                           static_cast<double>(m.batches);
  std::vector<double> sorted = m.latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  snap.p50_ms = Percentile(sorted, 0.50);
  snap.p95_ms = Percentile(sorted, 0.95);
  snap.p99_ms = Percentile(sorted, 0.99);
  return snap;
}

ServeStats::ModelSnapshot ServeStats::Snapshot(
    const std::string& model) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = models_.find(model);
  if (it == models_.end()) {
    return ModelSnapshot{};
  }
  return MakeSnapshot(it->second);
}

json::JsonValue ServeStats::ToJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  json::JsonValue root = json::JsonValue::Object();
  int64_t total_requests = 0;
  int64_t total_batches = 0;
  for (const auto& [name, m] : models_) {
    const ModelSnapshot snap = MakeSnapshot(m);
    total_requests += snap.requests;
    total_batches += snap.batches;
    json::JsonValue entry = json::JsonValue::Object();
    entry.Set("requests", json::JsonValue::Int(snap.requests));
    entry.Set("batches", json::JsonValue::Int(snap.batches));
    entry.Set("mean_batch_size", json::JsonValue::Number(snap.mean_batch_size));
    json::JsonValue hist = json::JsonValue::Object();
    for (const auto& [size, count] : snap.batch_histogram) {
      hist.Set(std::to_string(size), json::JsonValue::Int(count));
    }
    entry.Set("batch_histogram", std::move(hist));
    json::JsonValue latency = json::JsonValue::Object();
    latency.Set("p50", json::JsonValue::Number(snap.p50_ms));
    latency.Set("p95", json::JsonValue::Number(snap.p95_ms));
    latency.Set("p99", json::JsonValue::Number(snap.p99_ms));
    entry.Set("latency_ms", std::move(latency));
    root.Set(name, std::move(entry));
  }
  json::JsonValue totals = json::JsonValue::Object();
  totals.Set("requests", json::JsonValue::Int(total_requests));
  totals.Set("batches", json::JsonValue::Int(total_batches));
  root.Set("totals", std::move(totals));
  json::JsonValue admission = json::JsonValue::Object();
  admission.Set("accepted", json::JsonValue::Int(admission_.accepted));
  admission.Set("shed", json::JsonValue::Int(admission_.shed));
  admission.Set("timed_out", json::JsonValue::Int(admission_.timed_out));
  root.Set("admission", std::move(admission));
  json::JsonValue streams = json::JsonValue::Object();
  streams.Set("opened", json::JsonValue::Int(streams_.opened));
  streams.Set("shed", json::JsonValue::Int(streams_.shed));
  streams.Set("closed", json::JsonValue::Int(streams_.closed));
  streams.Set("reaped", json::JsonValue::Int(streams_.reaped));
  streams.Set("active", json::JsonValue::Int(streams_.active()));
  streams.Set("windows", json::JsonValue::Int(streams_.windows));
  streams.Set("points", json::JsonValue::Int(streams_.points));
  root.Set("streams", std::move(streams));
  json::JsonValue server = json::JsonValue::Object();
  server.Set("uptime_s", json::JsonValue::Number(ProcessUptimeSeconds()));
  server.Set("rss_bytes", json::JsonValue::Int(CurrentRssBytes()));
  server.Set("pid", json::JsonValue::Int(static_cast<int64_t>(::getpid())));
  root.Set("server", std::move(server));
  return root;
}

void ServeStats::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  models_.clear();
  admission_ = AdmissionSnapshot{};
  streams_ = StreamsSnapshot{};
}

}  // namespace units::serve
