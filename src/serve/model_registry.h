#ifndef UNITS_SERVE_MODEL_REGISTRY_H_
#define UNITS_SERVE_MODEL_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/pipeline.h"

namespace units::serve {

/// A resident fitted pipeline. Handles are shared_ptrs, so an in-flight
/// request keeps its model alive even if the registry unloads or reloads
/// the name concurrently — the old instance is destroyed when the last
/// request holding it completes.
class ServableModel {
 public:
  ServableModel(std::string name, std::string path,
                std::unique_ptr<core::UnitsPipeline> pipeline);

  const std::string& name() const { return name_; }
  /// Source file; empty for models adopted from memory (tests, benches).
  const std::string& path() const { return path_; }
  /// Task name, e.g. "classification"; empty when no task is configured.
  const std::string& task() const { return task_; }
  int64_t input_channels() const { return pipeline_->input_channels(); }

  /// Runs inference on x [N, D, T]. Forwards for one model are serialized
  /// by a per-model mutex: the batcher already funnels each model through
  /// one worker, and direct callers get the same guarantee. Distinct
  /// models run concurrently (they share only the intra-op thread pool).
  Result<core::TaskResult> Predict(const Tensor& x);

  /// Quantizes this model's pipeline to int8 in place (DESIGN.md §17).
  /// Takes the predict mutex, so it acts as a barrier: forwards issued
  /// after it returns run the quantized path. Returns the number of
  /// layers quantized.
  Result<int64_t> Quantize();

  /// "fp32", or "int8" after Quantize (or when loaded from a file saved
  /// with int8 precision).
  std::string precision() const;

  core::UnitsPipeline* pipeline() { return pipeline_.get(); }

  /// Largest per-execution arena any of this model's captured eval plans
  /// needs, in bytes (0 until the first plan is captured). Admission
  /// control charges each admitted request this cost, bounding the total
  /// plan memory the serving process can have in flight.
  int64_t plan_arena_bytes() const {
    return pipeline_->GetPlanCacheStats().arena_bytes_max;
  }

 private:
  std::string name_;
  std::string path_;
  std::string task_;
  std::unique_ptr<core::UnitsPipeline> pipeline_;
  mutable std::mutex predict_mu_;
};

/// Thread-safe named collection of resident models: the serving layer's
/// source of truth. Loading goes through core/serialize's pipeline JSON
/// format, after which the pipeline is switched to its mutation-free
/// eval steady state (UnitsPipeline::EnsureReadyForServing).
class ModelRegistry {
 public:
  /// Loads a serialized pipeline from `path` and makes it available under
  /// `name`. Replaces any model already registered under that name.
  Status Load(const std::string& name, const std::string& path);

  /// Adopts an already-constructed fitted pipeline (no file round-trip);
  /// used by tests and benches. Reload is unavailable for such models
  /// unless `path` is given.
  Status Add(const std::string& name,
             std::unique_ptr<core::UnitsPipeline> pipeline,
             const std::string& path = "");

  /// Removes `name`. In-flight requests holding the handle finish
  /// normally; the pipeline is freed when the last handle drops.
  Status Unload(const std::string& name);

  /// Re-loads `name` from its recorded path (picking up a re-fitted model
  /// file in place). Fails for adopted models without a path.
  Status Reload(const std::string& name);

  /// Quantizes the resident model `name` to int8 in place. The fp32 and
  /// int8 precisions coexist in the registry: other models are untouched,
  /// and a later Reload restores this one to its file's precision.
  Status Quantize(const std::string& name);

  /// Handle lookup; NotFound if the name is not registered.
  Result<std::shared_ptr<ServableModel>> Get(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> List() const;

  size_t size() const;

 private:
  static Result<std::shared_ptr<ServableModel>> LoadFromFile(
      const std::string& name, const std::string& path);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<ServableModel>> models_;
};

}  // namespace units::serve

#endif  // UNITS_SERVE_MODEL_REGISTRY_H_
