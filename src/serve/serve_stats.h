#ifndef UNITS_SERVE_SERVE_STATS_H_
#define UNITS_SERVE_SERVE_STATS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "json/json.h"

namespace units::serve {

/// Resident set size of this process in bytes (from /proc/self/statm);
/// 0 where procfs is unavailable. Surfaced in the stats op so the router
/// can aggregate worker memory into one document.
int64_t CurrentRssBytes();

/// Seconds since this process (strictly: this library image) started.
double ProcessUptimeSeconds();

/// Thread-safe per-model serving statistics: request count, executed batch
/// count, a batch-size histogram, and request latency quantiles
/// (p50/p95/p99 over a bounded ring of recent observations). Dumped as
/// JSON by the server's "stats" op and by bench_serve.
class ServeStats {
 public:
  /// Latency observations kept per model (a ring buffer; older entries are
  /// overwritten once the window is full).
  static constexpr size_t kLatencyWindow = 1 << 16;

  /// Records one completed request with its end-to-end latency
  /// (enqueue to response ready).
  void RecordRequest(const std::string& model, double latency_ms);

  /// Records one executed batch of the given size.
  void RecordBatch(const std::string& model, int64_t batch_size);

  /// Admission-control outcomes (server-wide, across models): a request is
  /// counted exactly once as accepted or shed; accepted requests that
  /// expire in the queue are additionally counted as timed out.
  void RecordAccepted();
  void RecordShed();
  void RecordTimedOut();

  struct AdmissionSnapshot {
    int64_t accepted = 0;
    int64_t shed = 0;
    int64_t timed_out = 0;
  };
  AdmissionSnapshot Admission() const;

  /// Streaming-session outcomes (server-wide): every stream_open is counted
  /// once as opened or shed; every opened stream is eventually counted once
  /// as closed (orderly close or connection teardown) or reaped (idle
  /// timeout). Windows/points accumulate over all feeds.
  void RecordStreamOpened();
  void RecordStreamShed();
  void RecordStreamClosed();
  void RecordStreamReaped();
  void RecordStreamActivity(int64_t windows, int64_t points);

  struct StreamsSnapshot {
    int64_t opened = 0;
    int64_t shed = 0;
    int64_t closed = 0;
    int64_t reaped = 0;
    int64_t windows = 0;
    int64_t points = 0;
    int64_t active() const { return opened - closed - reaped; }
  };
  StreamsSnapshot Streams() const;

  /// Per-model snapshot used by tests and the JSON dump.
  struct ModelSnapshot {
    int64_t requests = 0;
    int64_t batches = 0;
    std::map<int64_t, int64_t> batch_histogram;  // size -> count
    double mean_batch_size = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
  };
  ModelSnapshot Snapshot(const std::string& model) const;

  /// {"<model>": {"requests": N, "batches": M, "mean_batch_size": X,
  ///              "batch_histogram": {"1": n1, ...},
  ///              "latency_ms": {"p50": ..., "p95": ..., "p99": ...}},
  ///  "totals": {"requests": sum, "batches": sum},
  ///  "admission": {"accepted": A, "shed": S, "timed_out": T},
  ///  "streams": {"opened": ..., "shed": ..., "closed": ..., "reaped": ...,
  ///              "active": ..., "windows": ..., "points": ...},
  ///  "server": {"uptime_s": ..., "rss_bytes": ..., "pid": ...}}
  /// The cross-model "totals" rollup and the "server" process block exist
  /// so the router tier can fold many workers' stats into one coherent
  /// document without knowing every model name.
  json::JsonValue ToJson() const;

  void Reset();

 private:
  struct PerModel {
    int64_t requests = 0;
    int64_t batches = 0;
    std::map<int64_t, int64_t> batch_histogram;
    std::vector<double> latencies_ms;  // ring buffer
    size_t next_latency = 0;           // ring write cursor
  };

  static ModelSnapshot MakeSnapshot(const PerModel& m);

  mutable std::mutex mu_;
  std::map<std::string, PerModel> models_;
  AdmissionSnapshot admission_;
  StreamsSnapshot streams_;
};

}  // namespace units::serve

#endif  // UNITS_SERVE_SERVE_STATS_H_
