#ifndef UNITS_SERVE_HTTP_ADAPTER_H_
#define UNITS_SERVE_HTTP_ADAPTER_H_

#include <cstddef>
#include <deque>
#include <string>

#include "base/status.h"

namespace units::serve {

/// Minimal HTTP/1.1 adapter layered over the newline-delimited JSON
/// protocol, so standard load balancers and curl can hit a worker or the
/// router without speaking NDJSON. The adapter is a pure translator — it
/// turns an HTTP request into one protocol request line and one protocol
/// response line back into an HTTP response — which lets the worker
/// transport (SocketServer + RequestSession) and the router front tier
/// share it byte for byte.
///
/// Routes:
///   POST /v1/predict   body = {"model": "m", "values": [...], "id": any}
///                      -> {"op": "predict", ...}
///   GET  /v1/stats     -> {"op": "stats"}
///   GET  /v1/healthz   -> {"op": "ping"}
///   GET  /v1/models    -> {"op": "list"}
///
/// Bodies require Content-Length (411 without one; chunked transfer
/// encoding is answered 501). Responses carry the protocol's JSON line as
/// an application/json body; the status code is derived from it: 200 for
/// {"ok": true}, 503 for "overloaded"/"unavailable" (load shedding and
/// shard outages, the signals load balancers act on), 404 for unknown
/// models, 400 for everything else. HTTP/1.1 connections are keep-alive by
/// default and honor "Connection: close"; HTTP/1.0 closes unless
/// "Connection: keep-alive" is sent. Malformed framing (bad request line,
/// oversized headers or body) produces a 400/413 and closes the
/// connection, since resynchronization inside a corrupt HTTP stream is
/// guesswork.

/// One parsed request, ready for translation.
struct HttpRequest {
  std::string method;   // uppercase, e.g. "GET"
  std::string target;   // path only; the query string is stripped
  std::string body;
  bool keep_alive = true;
};

/// Incremental HTTP/1.1 request parser: feed it the connection's read
/// buffer; it consumes complete requests and leaves partial ones in place.
class HttpRequestParser {
 public:
  struct Limits {
    size_t max_header_bytes = 16 * 1024;
    size_t max_body_bytes = 1 << 20;
  };

  enum class Outcome {
    kNeedMore,  // no complete request in the buffer yet
    kRequest,   // *request filled; its bytes were consumed from *buffer
    kError,     // framing error: status()/error() describe it; stop reading
  };

  explicit HttpRequestParser(Limits limits) : limits_(limits) {}
  HttpRequestParser() : HttpRequestParser(Limits{}) {}

  /// Consumes leading CRLF padding, then at most one complete request from
  /// the front of *buffer.
  Outcome Next(std::string* buffer, HttpRequest* request);

  /// After kError: the HTTP status to answer (400 or 413) and a message.
  int status() const { return status_; }
  const std::string& error() const { return error_; }

 private:
  Outcome Fail(int status, const std::string& message);

  Limits limits_;
  int status_ = 0;
  std::string error_;
};

/// True when the first bytes of a connection look like an HTTP request
/// rather than an NDJSON line. Needs at most 8 bytes to decide; returns
/// false with *decided=false when the prefix is still ambiguous.
bool SniffHttp(const std::string& prefix, bool* decided);

/// Translates a parsed request into one NDJSON protocol line (no trailing
/// newline). On failure the status carries the HTTP code to answer in its
/// message prefix "<code> <reason>", e.g. "404 unknown path '/x'".
Result<std::string> HttpRequestToLine(const HttpRequest& request);

/// HTTP status for a protocol response line (see the mapping table above).
int HttpStatusForLine(const std::string& response_line);

/// Renders a full HTTP response. `body` is the protocol response line
/// (trailing newline kept — curl output stays line-terminated);
/// `status` <= 0 derives the code from the body via HttpStatusForLine.
std::string RenderHttpResponse(int status, const std::string& body,
                               bool keep_alive);

/// Per-request bookkeeping a transport keeps between translating a request
/// and rendering its response (response order is FIFO, so a deque of these
/// runs parallel to the session's entry queue).
struct HttpResponseMeta {
  bool keep_alive = true;
  int status = 0;  // forced status for translation errors; 0 = derive
};

/// Connection-level HTTP state for a transport: the parser plus the FIFO
/// of per-request response metadata.
struct HttpConnState {
  explicit HttpConnState(HttpRequestParser::Limits limits)
      : parser(limits) {}
  HttpConnState() = default;
  HttpRequestParser parser;
  std::deque<HttpResponseMeta> meta;
};

}  // namespace units::serve

#endif  // UNITS_SERVE_HTTP_ADAPTER_H_
