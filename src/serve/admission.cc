#include "serve/admission.h"

#include <cmath>

#include "base/check.h"

namespace units::serve {

AdmissionController::AdmissionController(Options options, ServeStats* stats)
    : options_(options), stats_(stats) {
  // max_queue = 0 would shed every request; negative capacity and
  // non-finite or negative timeouts are configuration bugs, not load
  // conditions, so they abort rather than degrade.
  UNITS_CHECK_GE(options_.max_queue, 1);
  UNITS_CHECK(std::isfinite(options_.request_timeout_ms));
  UNITS_CHECK_GE(options_.request_timeout_ms, 0.0);
}

Status AdmissionController::TryAdmit() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (in_flight_ >= options_.max_queue) {
      if (stats_ != nullptr) {
        stats_->RecordShed();
      }
      return Status::ResourceExhausted("overloaded");
    }
    in_flight_ += 1;
  }
  if (stats_ != nullptr) {
    stats_->RecordAccepted();
  }
  return Status::Ok();
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lk(mu_);
  UNITS_CHECK_GE(in_flight_, 1);
  in_flight_ -= 1;
}

std::optional<std::chrono::steady_clock::time_point>
AdmissionController::DeadlineFor(
    std::chrono::steady_clock::time_point now) const {
  if (options_.request_timeout_ms <= 0.0) {
    return std::nullopt;
  }
  return now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::milli>(
                       options_.request_timeout_ms));
}

int64_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return in_flight_;
}

}  // namespace units::serve
