#include "serve/admission.h"

#include <cmath>

#include "base/check.h"

namespace units::serve {

AdmissionController::AdmissionController(Options options, ServeStats* stats)
    : options_(options), stats_(stats) {
  // max_queue = 0 would shed every request; negative capacity and
  // non-finite or negative timeouts are configuration bugs, not load
  // conditions, so they abort rather than degrade.
  UNITS_CHECK_GE(options_.max_queue, 1);
  UNITS_CHECK(std::isfinite(options_.request_timeout_ms));
  UNITS_CHECK_GE(options_.request_timeout_ms, 0.0);
  UNITS_CHECK_GE(options_.max_plan_bytes_in_flight, 0);
}

Status AdmissionController::TryAdmit(int64_t plan_bytes) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (in_flight_ >= options_.max_queue) {
      if (stats_ != nullptr) {
        stats_->RecordShed();
      }
      return Status::ResourceExhausted("overloaded");
    }
    // Plan-memory backpressure: keep the summed arena footprint of
    // admitted work under the cap. A lone oversized request is still
    // admitted (in_flight_ == 0), so progress is guaranteed.
    if (options_.max_plan_bytes_in_flight > 0 && in_flight_ > 0 &&
        plan_bytes_in_flight_ + plan_bytes >
            options_.max_plan_bytes_in_flight) {
      if (stats_ != nullptr) {
        stats_->RecordShed();
      }
      return Status::ResourceExhausted("overloaded");
    }
    in_flight_ += 1;
    plan_bytes_in_flight_ += plan_bytes;
  }
  if (stats_ != nullptr) {
    stats_->RecordAccepted();
  }
  return Status::Ok();
}

void AdmissionController::Release(int64_t plan_bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  UNITS_CHECK_GE(in_flight_, 1);
  UNITS_CHECK_GE(plan_bytes_in_flight_, plan_bytes);
  in_flight_ -= 1;
  plan_bytes_in_flight_ -= plan_bytes;
}

std::optional<std::chrono::steady_clock::time_point>
AdmissionController::DeadlineFor(
    std::chrono::steady_clock::time_point now) const {
  if (options_.request_timeout_ms <= 0.0) {
    return std::nullopt;
  }
  return now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::milli>(
                       options_.request_timeout_ms));
}

int64_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return in_flight_;
}

int64_t AdmissionController::plan_bytes_in_flight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return plan_bytes_in_flight_;
}

}  // namespace units::serve
