#include "serve/streaming.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "base/check.h"
#include "data/window.h"
#include "metrics/metrics.h"

namespace units::serve {

// --- StreamGate ------------------------------------------------------------

StreamGate::StreamGate(const StreamingLimits& limits, ServeStats* stats)
    : limits_(limits), stats_(stats) {
  UNITS_CHECK_GE(limits_.max_sessions, 1);
  UNITS_CHECK_GE(limits_.max_window, 1);
  UNITS_CHECK_GE(limits_.max_feed_points, 1);
  UNITS_CHECK_GE(limits_.score_window, 1);
}

bool StreamGate::TryOpen() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (active_ >= limits_.max_sessions) {
      if (stats_ != nullptr) {
        stats_->RecordStreamShed();
      }
      return false;
    }
    active_ += 1;
  }
  if (stats_ != nullptr) {
    stats_->RecordStreamOpened();
  }
  return true;
}

void StreamGate::Close(Release kind) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    UNITS_CHECK_GE(active_, 1);
    active_ -= 1;
  }
  if (stats_ != nullptr) {
    if (kind == Release::kReaped) {
      stats_->RecordStreamReaped();
    } else {
      stats_->RecordStreamClosed();
    }
  }
}

int64_t StreamGate::active() const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_;
}

// --- StreamState -----------------------------------------------------------

StreamState::StreamState(Config config)
    : config_(std::move(config)), norm_(config_.channels) {
  UNITS_CHECK_GE(config_.window, 1);
  UNITS_CHECK_GE(config_.stride, 1);
  UNITS_CHECK_LE(config_.stride, config_.window);
  UNITS_CHECK_GE(config_.score_window, 1);
  buffer_.assign(static_cast<size_t>(config_.channels * config_.window), 0.0f);
}

std::vector<StreamState::CompletedWindow> StreamState::Feed(
    const Tensor& points) {
  UNITS_CHECK_EQ(points.ndim(), 2);
  UNITS_CHECK_EQ(points.dim(0), config_.channels);
  const int64_t d = config_.channels;
  const int64_t w = config_.window;
  const int64_t p = points.dim(1);
  const float* src = points.data();
  std::vector<CompletedWindow> out;
  for (int64_t j = 0; j < p; ++j) {
    // buffer_ is [D, W] row-major: channel c's pending points occupy the
    // first buffered_ slots of row c, so a full buffer IS the series.
    for (int64_t c = 0; c < d; ++c) {
      buffer_[static_cast<size_t>(c * w + buffered_)] = src[c * p + j];
    }
    buffered_ += 1;
    norm_.Update(src + j, p);
    points_ += 1;
    if (buffered_ < w) {
      continue;
    }
    Tensor series = Tensor::FromVector({d, w}, buffer_);
    // SlidingWindows reshapes the full buffer into the batcher's expected
    // [1, D, W] — one window, stride irrelevant at this length.
    Tensor window = data::SlidingWindows(series, w, w);
    if (config_.normalize) {
      // Snapshot includes every point through this window's last point.
      window = norm_.Snapshot().Transform(window);
    }
    CompletedWindow completed;
    completed.index = windows_;
    completed.values = std::move(window);
    out.push_back(std::move(completed));
    windows_ += 1;
    const int64_t keep = w - config_.stride;
    for (int64_t c = 0; c < d; ++c) {
      float* row = buffer_.data() + c * w;
      std::memmove(row, row + config_.stride,
                   static_cast<size_t>(keep) * sizeof(float));
    }
    buffered_ = keep;
  }
  return out;
}

std::optional<float> StreamState::RecalibrateLabels(
    const Tensor& scores, std::vector<int64_t>* labels) {
  if (config_.quantile <= 0.0) {
    return std::nullopt;
  }
  const int64_t n = scores.numel();
  std::optional<float> threshold;
  if (!score_ring_.empty()) {
    std::vector<float> sorted = score_ring_;
    std::sort(sorted.begin(), sorted.end());
    const float thr = metrics::NearestRankQuantile(sorted, config_.quantile);
    threshold = thr;
    labels->resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      (*labels)[static_cast<size_t>(i)] = scores.data()[i] > thr ? 1 : 0;
    }
  }
  const size_t cap = static_cast<size_t>(config_.score_window);
  for (int64_t i = 0; i < n; ++i) {
    const float s = scores.data()[i];
    if (score_ring_.size() < cap) {
      score_ring_.push_back(s);
    } else {
      score_ring_[next_score_ % cap] = s;
    }
    next_score_ += 1;
  }
  return threshold;
}

}  // namespace units::serve
