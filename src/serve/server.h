#ifndef UNITS_SERVE_SERVER_H_
#define UNITS_SERVE_SERVER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/serve_stats.h"

namespace units::serve {

/// Newline-delimited JSON request/response loop — the transport behind the
/// `units_serve` tool. One request per line on the input stream, one
/// response per line on the output stream, in request order.
///
/// Requests ({"op": ..., ...}):
///   {"op": "load", "model": "m", "path": "fitted.json"}
///   {"op": "unload", "model": "m"}
///   {"op": "reload", "model": "m"}
///   {"op": "list"}
///   {"op": "predict", "model": "m", "values": [[...], ...], "id": any}
///       values: one series as [D][T] nested arrays (or a flat [T] array
///       for single-channel models); id is echoed back (default: request
///       sequence number).
///   {"op": "stats"}
///   {"op": "quit"}
///
/// Predict requests are submitted to the micro-batcher without waiting, so
/// a burst of predict lines coalesces into batched forwards; any other op
/// acts as a barrier that first drains pending predictions (responses stay
/// in request order). Responses are {"id": ..., "ok": true, ...} or
/// {"id": ..., "ok": false, "error": "..."}; malformed lines produce an
/// error response and the loop continues.
class JsonLineServer {
 public:
  struct Options {
    MicroBatcher::Options batcher;
  };

  /// `registry` must outlive the server.
  JsonLineServer(ModelRegistry* registry, Options options);

  /// Serves until "quit" or end of input. Returns a process exit code
  /// (0 on orderly shutdown).
  int Run(std::istream& in, std::ostream& out);

  ServeStats* stats() { return &stats_; }

 private:
  struct Pending {
    json::JsonValue id;
    std::string model;
    std::future<Result<core::TaskResult>> future;
  };

  void Drain(std::vector<Pending>* pending, std::ostream& out);
  json::JsonValue HandleControl(const json::JsonValue& request);

  ModelRegistry* registry_;
  ServeStats stats_;
  MicroBatcher batcher_;  // must follow stats_ (holds a pointer to it)
};

}  // namespace units::serve

#endif  // UNITS_SERVE_SERVER_H_
