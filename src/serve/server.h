#ifndef UNITS_SERVE_SERVER_H_
#define UNITS_SERVE_SERVER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/admission.h"
#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/serve_stats.h"
#include "serve/streaming.h"

namespace units::serve {

/// Per-client protocol state for the newline-delimited JSON protocol,
/// shared by the stdin transport (JsonLineServer) and the TCP transport
/// (SocketServer). One request per input line, one response per line, in
/// request order.
///
/// Requests ({"op": ..., ...}):
///   {"op": "load", "model": "m", "path": "fitted.json"}
///   {"op": "unload", "model": "m"}
///   {"op": "reload", "model": "m"}
///   {"op": "list"}
///   {"op": "predict", "model": "m", "values": [[...], ...], "id": any}
///       values: one series as [D][T] nested arrays (or a flat [T] array
///       for single-channel models); id is echoed back (default: request
///       sequence number).
///   {"op": "stats"}
///   {"op": "ping"}
///       liveness probe -> {"ok": true, "op": "ping"} (+ echoed "id").
///       Answered when processed, without barrier-draining earlier
///       predicts; the router's per-shard health checks ride on it.
///   {"op": "quit"}
///   {"op": "stream_open", "model": "m", "window": W, "stride": S,
///    "normalize": true, "quantile": 0.995, "id": any}
///       opens a streaming session: -> {"ok": true, "op": "stream_open",
///       "stream": sid, ...}. stride defaults to W (tumbling windows);
///       normalize (default true) applies rolling per-channel z-scores;
///       quantile (anomaly models only; default 0.995, 0 disables) drives
///       online threshold recalibration from recent window scores.
///   {"op": "stream_feed", "stream": sid, "values": [[...], ...]}
///       appends points ([D][P] nested, or flat [P] for single-channel
///       models); -> one response carrying every window the feed
///       completed: {"ok": true, "op": "stream_feed", "stream": sid,
///       "windows": [{"index": k, "ok": true, labels/predictions/scores,
///       "threshold": t?}, ...], "points": total}.
///   {"op": "stream_close", "stream": sid}
///       -> {"ok": true, "op": "stream_close", "stream": sid,
///       "windows": N, "points": P}.
///
/// Predict requests are submitted to the micro-batcher without waiting, so
/// a burst of predict lines coalesces into batched forwards. Responses are
/// queued strictly in request order; control ops are evaluated lazily when
/// they reach the front of the queue, i.e. only after every earlier
/// predict has been answered — which preserves the barrier semantics of
/// the original stdin loop ("stats" sees all prior requests). Responses
/// are {"id": ..., "ok": true, ...} or {"id": ..., "ok": false,
/// "error": "..."}; malformed lines produce an error response and the
/// session continues. Requests shed by admission control are answered
/// with {"ok": false, "error": "overloaded"}.
///
/// Not thread-safe: each transport drives one session per client from one
/// thread (the futures inside resolve on batcher threads, which is safe).
class RequestSession {
 public:
  struct Options {
    /// Longest accepted request line, in bytes; longer lines are answered
    /// with a structured error instead of being parsed.
    size_t max_line_bytes = 1 << 20;
  };

  /// What a processed line was — transports use this to decide when to
  /// flush synchronously (stdin) or keep pumping the event loop (socket).
  enum class LineKind {
    kPending,  // predict submitted; response arrives via the batcher
    kBarrier,  // control op or error: response is queued (maybe deferred)
    kQuit,     // orderly end of this client's session
  };

  /// All pointers must outlive the session; `batcher` and `registry` are
  /// shared across sessions, `stats` may be null. `streams` (the
  /// transport-wide stream gate) may be null, in which case streaming ops
  /// answer a structured error.
  RequestSession(ModelRegistry* registry, MicroBatcher* batcher,
                 ServeStats* stats, Options options,
                 StreamGate* streams = nullptr);

  /// Releases this session's open stream slots back to the gate (a dropped
  /// connection must not pin streaming capacity).
  ~RequestSession();

  RequestSession(const RequestSession&) = delete;
  RequestSession& operator=(const RequestSession&) = delete;

  /// Parses and executes one input line (without its newline), appending
  /// its response to the ordered queue.
  LineKind ProcessLine(const std::string& line);

  /// Closes streams idle longer than the gate's idle_timeout_s (counted as
  /// reaped); later feeds on a reaped id answer "unknown or closed
  /// stream". No-op when streaming is disabled or the timeout is 0.
  void ReapIdleStreams(std::chrono::steady_clock::time_point now);

  /// Appends an error response for a condition detected by the transport
  /// itself (e.g. an oversized unterminated line on the socket path).
  void PushError(const std::string& message);

  /// If the oldest unanswered response is ready, serializes it (with a
  /// trailing '\n') into *out and returns true. Never blocks.
  bool PopReady(std::string* out);

  /// Like PopReady but waits for the oldest response; returns false only
  /// when nothing is pending.
  bool PopBlocking(std::string* out);

  /// Responses queued (ready or not).
  size_t pending() const { return entries_.size(); }

  bool quit_requested() const { return quit_; }

 private:
  struct Entry {
    bool ready = false;
    std::string line;  // serialized response when ready
    // Pending predict:
    bool is_predict = false;
    json::JsonValue id;
    std::string model;
    std::future<Result<core::TaskResult>> future;
    // Pending stream_feed: rendered once every window future resolved. The
    // shared state keeps recalibration alive across a close or reap that
    // lands while this feed is still in the queue.
    bool is_feed = false;
    int64_t stream_id = -1;
    int64_t stream_points = 0;  // cumulative points at feed time
    std::shared_ptr<StreamState> stream;
    std::vector<int64_t> window_indices;
    std::vector<std::future<Result<core::TaskResult>>> window_futures;
    // Deferred control op, evaluated at the front of the queue:
    std::function<json::JsonValue()> deferred;
  };

  json::JsonValue HandleControl(const json::JsonValue& request);
  void PushReady(const json::JsonValue& response);
  void HandleStreamOpen(const json::JsonValue& request,
                        const json::JsonValue& id);
  LineKind HandleStreamFeed(const json::JsonValue& request,
                            const json::JsonValue& id);
  LineKind HandleStreamClose(const json::JsonValue& request,
                             const json::JsonValue& id);
  json::JsonValue RenderFeed(Entry* entry);
  void Render(Entry* entry);  // resolves a due entry into `line`

  ModelRegistry* registry_;
  MicroBatcher* batcher_;
  ServeStats* stats_;
  Options options_;
  StreamGate* streams_gate_;
  std::deque<Entry> entries_;
  std::map<int64_t, std::shared_ptr<StreamState>> streams_;
  int64_t next_stream_ = 0;
  int64_t next_id_ = 0;
  bool quit_ = false;
};

/// Newline-delimited JSON request/response loop over std streams — the
/// default (stdin/stdout) transport behind the `units_serve` tool. See
/// RequestSession for the protocol. Predict responses are written as soon
/// as they are ready; any other op acts as a barrier that drains every
/// outstanding response first (responses always stay in request order).
class JsonLineServer {
 public:
  struct Options {
    MicroBatcher::Options batcher;
    AdmissionController::Options admission;
    RequestSession::Options session;
    StreamingLimits streaming;
  };

  /// `registry` must outlive the server.
  JsonLineServer(ModelRegistry* registry, Options options);

  /// Serves until "quit" or end of input. Returns a process exit code
  /// (0 on orderly shutdown).
  int Run(std::istream& in, std::ostream& out);

  ServeStats* stats() { return &stats_; }
  MicroBatcher* batcher() { return &batcher_; }
  AdmissionController* admission() { return &admission_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  ModelRegistry* registry_;
  ServeStats stats_;
  StreamGate streams_gate_;        // must follow stats_ (points to it)
  AdmissionController admission_;  // must follow stats_ (points to it)
  MicroBatcher batcher_;           // must follow both (points to both)
};

}  // namespace units::serve

#endif  // UNITS_SERVE_SERVER_H_
