#ifndef UNITS_SERVE_NET_UTIL_H_
#define UNITS_SERVE_NET_UTIL_H_

// Retry-on-EINTR wrappers for the raw syscalls the serving transports and
// the router tier sit on. A signal landing mid-transfer (SIGCHLD from a
// reaped worker, a profiling signal, a debugger attach) must never be
// mistaken for an I/O error or a lost byte, so every blocking call the
// event loops make goes through these helpers instead of the bare syscall.
// All of them are async-signal-tolerant, not async-signal-safe: call them
// from ordinary threads, not from signal handlers.

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <string>

namespace units::serve {

/// read(2), retried while it fails with EINTR. Every other outcome
/// (including EAGAIN on a non-blocking fd) is returned unchanged.
inline ssize_t ReadRetry(int fd, void* buf, size_t count) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, count);
    if (n >= 0 || errno != EINTR) {
      return n;
    }
  }
}

/// write(2), retried while it fails with EINTR. Short writes are returned
/// as-is; callers that need the full buffer use WriteAllRetry/SendAllRetry.
inline ssize_t WriteRetry(int fd, const void* buf, size_t count) {
  for (;;) {
    const ssize_t n = ::write(fd, buf, count);
    if (n >= 0 || errno != EINTR) {
      return n;
    }
  }
}

/// send(2), retried while it fails with EINTR.
inline ssize_t SendRetry(int fd, const void* buf, size_t count, int flags) {
  for (;;) {
    const ssize_t n = ::send(fd, buf, count, flags);
    if (n >= 0 || errno != EINTR) {
      return n;
    }
  }
}

/// accept4(2), retried while it fails with EINTR.
inline int Accept4Retry(int fd, sockaddr* addr, socklen_t* addrlen,
                        int flags) {
  for (;;) {
    const int client = ::accept4(fd, addr, addrlen, flags);
    if (client >= 0 || errno != EINTR) {
      return client;
    }
  }
}

/// poll(2), retried while it fails with EINTR. The retry does not recompute
/// the timeout — under a signal storm the call may wait longer than
/// `timeout_ms` in total, which every caller here tolerates (their loops
/// re-check deadlines against a monotonic clock each pass).
inline int PollRetry(pollfd* fds, nfds_t nfds, int timeout_ms) {
  for (;;) {
    const int n = ::poll(fds, nfds, timeout_ms);
    if (n >= 0 || errno != EINTR) {
      return n;
    }
  }
}

/// Sends the whole buffer on a blocking socket, absorbing EINTR and short
/// writes. False on any real error (EPIPE, ECONNRESET, ...).
inline bool SendAllRetry(int fd, const std::string& bytes, int flags) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        SendRetry(fd, bytes.data() + sent, bytes.size() - sent, flags);
    if (n < 0) {
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace units::serve

#endif  // UNITS_SERVE_NET_UTIL_H_
