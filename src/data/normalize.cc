#include "data/normalize.h"

#include <cmath>
#include <limits>

#include "base/check.h"

namespace units::data {

Status ZScoreNormalizer::Fit(const Tensor& values) {
  if (values.ndim() != 3) {
    return Status::InvalidArgument("ZScoreNormalizer expects [N, D, T]");
  }
  const int64_t n = values.dim(0);
  const int64_t d = values.dim(1);
  const int64_t t = values.dim(2);
  if (n * t == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  // Welford accumulation (RollingNormalizer) instead of E[x^2] - E[x]^2:
  // for a channel with mean ~1e6 and stddev ~1 the latter cancels almost
  // every significant bit and collapses the stddev to the kMinStddev
  // floor. Sharing the accumulator also makes a batch Fit bitwise
  // identical to feeding the same points through a streaming session.
  RollingNormalizer acc(d);
  const float* p = values.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < t; ++j) {
      acc.Update(p + i * d * t + j, t);
    }
  }
  mean_ = acc.Mean();
  stddev_ = acc.Stddev();
  fitted_ = true;
  return Status::Ok();
}

Tensor ZScoreNormalizer::Transform(const Tensor& values) const {
  UNITS_CHECK_MSG(fitted_, "Transform before Fit");
  UNITS_CHECK_EQ(values.ndim(), 3);
  UNITS_CHECK_EQ(values.dim(1), static_cast<int64_t>(mean_.size()));
  Tensor out = values.Clone();
  const int64_t n = out.dim(0);
  const int64_t d = out.dim(1);
  const int64_t t = out.dim(2);
  float* p = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < d; ++c) {
      float* row = p + (i * d + c) * t;
      const float mu = mean_[static_cast<size_t>(c)];
      const float inv = 1.0f / stddev_[static_cast<size_t>(c)];
      for (int64_t j = 0; j < t; ++j) {
        row[j] = (row[j] - mu) * inv;
      }
    }
  }
  return out;
}

Tensor ZScoreNormalizer::InverseTransform(const Tensor& values) const {
  UNITS_CHECK_MSG(fitted_, "InverseTransform before Fit");
  UNITS_CHECK_EQ(values.ndim(), 3);
  UNITS_CHECK_EQ(values.dim(1), static_cast<int64_t>(mean_.size()));
  Tensor out = values.Clone();
  const int64_t n = out.dim(0);
  const int64_t d = out.dim(1);
  const int64_t t = out.dim(2);
  float* p = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < d; ++c) {
      float* row = p + (i * d + c) * t;
      const float mu = mean_[static_cast<size_t>(c)];
      const float sd = stddev_[static_cast<size_t>(c)];
      for (int64_t j = 0; j < t; ++j) {
        row[j] = row[j] * sd + mu;
      }
    }
  }
  return out;
}

ZScoreNormalizer ZScoreNormalizer::FromStats(std::vector<float> mean,
                                             std::vector<float> stddev) {
  UNITS_CHECK_EQ(mean.size(), stddev.size());
  ZScoreNormalizer n;
  n.mean_ = std::move(mean);
  n.stddev_ = std::move(stddev);
  n.fitted_ = true;
  return n;
}

RollingNormalizer::RollingNormalizer(int64_t channels) {
  UNITS_CHECK_GE(channels, 1);
  mean_.assign(static_cast<size_t>(channels), 0.0);
  m2_.assign(static_cast<size_t>(channels), 0.0);
}

void RollingNormalizer::Update(const float* values, int64_t stride) {
  count_ += 1;
  const double n = static_cast<double>(count_);
  for (size_t c = 0; c < mean_.size(); ++c) {
    const double x = values[static_cast<int64_t>(c) * stride];
    const double delta = x - mean_[c];
    mean_[c] += delta / n;
    m2_[c] += delta * (x - mean_[c]);
  }
}

void RollingNormalizer::UpdateSeries(const Tensor& series) {
  UNITS_CHECK_EQ(series.ndim(), 2);
  UNITS_CHECK_EQ(series.dim(0), channels());
  const int64_t p = series.dim(1);
  for (int64_t j = 0; j < p; ++j) {
    Update(series.data() + j, p);
  }
}

std::vector<float> RollingNormalizer::Mean() const {
  std::vector<float> out(mean_.size());
  for (size_t c = 0; c < mean_.size(); ++c) {
    out[c] = static_cast<float>(mean_[c]);
  }
  return out;
}

std::vector<float> RollingNormalizer::Stddev() const {
  std::vector<float> out(m2_.size(), kMinStddev);
  if (count_ == 0) {
    return out;
  }
  for (size_t c = 0; c < m2_.size(); ++c) {
    const double var = std::max(0.0, m2_[c] / static_cast<double>(count_));
    out[c] = std::max(kMinStddev, static_cast<float>(std::sqrt(var)));
  }
  return out;
}

ZScoreNormalizer RollingNormalizer::Snapshot() const {
  return ZScoreNormalizer::FromStats(Mean(), Stddev());
}

Status MinMaxNormalizer::Fit(const Tensor& values) {
  if (values.ndim() != 3) {
    return Status::InvalidArgument("MinMaxNormalizer expects [N, D, T]");
  }
  const int64_t n = values.dim(0);
  const int64_t d = values.dim(1);
  const int64_t t = values.dim(2);
  if (n * t == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  min_.assign(static_cast<size_t>(d), std::numeric_limits<float>::max());
  max_.assign(static_cast<size_t>(d), std::numeric_limits<float>::lowest());
  const float* p = values.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < d; ++c) {
      const float* row = p + (i * d + c) * t;
      for (int64_t j = 0; j < t; ++j) {
        min_[static_cast<size_t>(c)] = std::min(min_[static_cast<size_t>(c)], row[j]);
        max_[static_cast<size_t>(c)] = std::max(max_[static_cast<size_t>(c)], row[j]);
      }
    }
  }
  fitted_ = true;
  return Status::Ok();
}

Tensor MinMaxNormalizer::Transform(const Tensor& values) const {
  UNITS_CHECK_MSG(fitted_, "Transform before Fit");
  UNITS_CHECK_EQ(values.ndim(), 3);
  UNITS_CHECK_EQ(values.dim(1), static_cast<int64_t>(min_.size()));
  Tensor out = values.Clone();
  const int64_t n = out.dim(0);
  const int64_t d = out.dim(1);
  const int64_t t = out.dim(2);
  float* p = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < d; ++c) {
      float* row = p + (i * d + c) * t;
      const float lo = min_[static_cast<size_t>(c)];
      const float span = std::max(kMinStddev, max_[static_cast<size_t>(c)] - lo);
      for (int64_t j = 0; j < t; ++j) {
        row[j] = (row[j] - lo) / span;
      }
    }
  }
  return out;
}

Tensor MinMaxNormalizer::InverseTransform(const Tensor& values) const {
  UNITS_CHECK_MSG(fitted_, "InverseTransform before Fit");
  UNITS_CHECK_EQ(values.ndim(), 3);
  UNITS_CHECK_EQ(values.dim(1), static_cast<int64_t>(min_.size()));
  Tensor out = values.Clone();
  const int64_t n = out.dim(0);
  const int64_t d = out.dim(1);
  const int64_t t = out.dim(2);
  float* p = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < d; ++c) {
      float* row = p + (i * d + c) * t;
      const float lo = min_[static_cast<size_t>(c)];
      const float span = std::max(kMinStddev, max_[static_cast<size_t>(c)] - lo);
      for (int64_t j = 0; j < t; ++j) {
        row[j] = row[j] * span + lo;
      }
    }
  }
  return out;
}

}  // namespace units::data
