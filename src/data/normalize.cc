#include "data/normalize.h"

#include <cmath>
#include <limits>

#include "base/check.h"

namespace units::data {

namespace {
constexpr float kMinStddev = 1e-6f;
}  // namespace

Status ZScoreNormalizer::Fit(const Tensor& values) {
  if (values.ndim() != 3) {
    return Status::InvalidArgument("ZScoreNormalizer expects [N, D, T]");
  }
  const int64_t n = values.dim(0);
  const int64_t d = values.dim(1);
  const int64_t t = values.dim(2);
  if (n * t == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  mean_.assign(static_cast<size_t>(d), 0.0f);
  stddev_.assign(static_cast<size_t>(d), 0.0f);
  const float* p = values.data();
  for (int64_t c = 0; c < d; ++c) {
    double sum = 0.0;
    double sq = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const float* row = p + (i * d + c) * t;
      for (int64_t j = 0; j < t; ++j) {
        sum += row[j];
        sq += static_cast<double>(row[j]) * row[j];
      }
    }
    const double count = static_cast<double>(n * t);
    const double mu = sum / count;
    const double var = std::max(0.0, sq / count - mu * mu);
    mean_[static_cast<size_t>(c)] = static_cast<float>(mu);
    stddev_[static_cast<size_t>(c)] =
        std::max(kMinStddev, static_cast<float>(std::sqrt(var)));
  }
  fitted_ = true;
  return Status::Ok();
}

Tensor ZScoreNormalizer::Transform(const Tensor& values) const {
  UNITS_CHECK_MSG(fitted_, "Transform before Fit");
  UNITS_CHECK_EQ(values.ndim(), 3);
  UNITS_CHECK_EQ(values.dim(1), static_cast<int64_t>(mean_.size()));
  Tensor out = values.Clone();
  const int64_t n = out.dim(0);
  const int64_t d = out.dim(1);
  const int64_t t = out.dim(2);
  float* p = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < d; ++c) {
      float* row = p + (i * d + c) * t;
      const float mu = mean_[static_cast<size_t>(c)];
      const float inv = 1.0f / stddev_[static_cast<size_t>(c)];
      for (int64_t j = 0; j < t; ++j) {
        row[j] = (row[j] - mu) * inv;
      }
    }
  }
  return out;
}

Tensor ZScoreNormalizer::InverseTransform(const Tensor& values) const {
  UNITS_CHECK_MSG(fitted_, "InverseTransform before Fit");
  UNITS_CHECK_EQ(values.ndim(), 3);
  Tensor out = values.Clone();
  const int64_t n = out.dim(0);
  const int64_t d = out.dim(1);
  const int64_t t = out.dim(2);
  float* p = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < d; ++c) {
      float* row = p + (i * d + c) * t;
      const float mu = mean_[static_cast<size_t>(c)];
      const float sd = stddev_[static_cast<size_t>(c)];
      for (int64_t j = 0; j < t; ++j) {
        row[j] = row[j] * sd + mu;
      }
    }
  }
  return out;
}

ZScoreNormalizer ZScoreNormalizer::FromStats(std::vector<float> mean,
                                             std::vector<float> stddev) {
  UNITS_CHECK_EQ(mean.size(), stddev.size());
  ZScoreNormalizer n;
  n.mean_ = std::move(mean);
  n.stddev_ = std::move(stddev);
  n.fitted_ = true;
  return n;
}

Status MinMaxNormalizer::Fit(const Tensor& values) {
  if (values.ndim() != 3) {
    return Status::InvalidArgument("MinMaxNormalizer expects [N, D, T]");
  }
  const int64_t n = values.dim(0);
  const int64_t d = values.dim(1);
  const int64_t t = values.dim(2);
  if (n * t == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  min_.assign(static_cast<size_t>(d), std::numeric_limits<float>::max());
  max_.assign(static_cast<size_t>(d), std::numeric_limits<float>::lowest());
  const float* p = values.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < d; ++c) {
      const float* row = p + (i * d + c) * t;
      for (int64_t j = 0; j < t; ++j) {
        min_[static_cast<size_t>(c)] = std::min(min_[static_cast<size_t>(c)], row[j]);
        max_[static_cast<size_t>(c)] = std::max(max_[static_cast<size_t>(c)], row[j]);
      }
    }
  }
  fitted_ = true;
  return Status::Ok();
}

Tensor MinMaxNormalizer::Transform(const Tensor& values) const {
  UNITS_CHECK_MSG(fitted_, "Transform before Fit");
  UNITS_CHECK_EQ(values.ndim(), 3);
  Tensor out = values.Clone();
  const int64_t n = out.dim(0);
  const int64_t d = out.dim(1);
  const int64_t t = out.dim(2);
  float* p = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < d; ++c) {
      float* row = p + (i * d + c) * t;
      const float lo = min_[static_cast<size_t>(c)];
      const float span = std::max(kMinStddev, max_[static_cast<size_t>(c)] - lo);
      for (int64_t j = 0; j < t; ++j) {
        row[j] = (row[j] - lo) / span;
      }
    }
  }
  return out;
}

Tensor MinMaxNormalizer::InverseTransform(const Tensor& values) const {
  UNITS_CHECK_MSG(fitted_, "InverseTransform before Fit");
  UNITS_CHECK_EQ(values.ndim(), 3);
  Tensor out = values.Clone();
  const int64_t n = out.dim(0);
  const int64_t d = out.dim(1);
  const int64_t t = out.dim(2);
  float* p = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < d; ++c) {
      float* row = p + (i * d + c) * t;
      const float lo = min_[static_cast<size_t>(c)];
      const float span = std::max(kMinStddev, max_[static_cast<size_t>(c)] - lo);
      for (int64_t j = 0; j < t; ++j) {
        row[j] = row[j] * span + lo;
      }
    }
  }
  return out;
}

}  // namespace units::data
