#include "data/csv.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "base/string_util.h"

namespace units::data {

namespace {

Result<std::vector<float>> ParseFloatRow(const std::string& line,
                                         char delimiter, int64_t line_no) {
  std::vector<float> row;
  for (const std::string& cell : StrSplit(line, delimiter)) {
    const std::string trimmed = StrStrip(cell);
    if (trimmed.empty()) {
      continue;
    }
    char* end = nullptr;
    const float v = std::strtof(trimmed.c_str(), &end);
    if (end == trimmed.c_str() || *end != '\0') {
      return Status::InvalidArgument(
          StrFormat("line %lld: cannot parse '%s' as float",
                    static_cast<long long>(line_no), trimmed.c_str()));
    }
    row.push_back(v);
  }
  return row;
}

}  // namespace

Result<Tensor> LoadCsvSeries(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::string line;
  int64_t line_no = 0;
  if (has_header && std::getline(in, line)) {
    ++line_no;
  }
  std::vector<std::vector<float>> rows;  // [T][D]
  while (std::getline(in, line)) {
    ++line_no;
    if (StrStrip(line).empty()) {
      continue;
    }
    UNITS_ASSIGN_OR_RETURN(std::vector<float> row,
                           ParseFloatRow(line, ',', line_no));
    if (!rows.empty() && row.size() != rows[0].size()) {
      return Status::InvalidArgument(
          StrFormat("line %lld: expected %zu columns, got %zu",
                    static_cast<long long>(line_no), rows[0].size(),
                    row.size()));
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("no data rows in " + path);
  }
  const int64_t t = static_cast<int64_t>(rows.size());
  const int64_t d = static_cast<int64_t>(rows[0].size());
  Tensor out = Tensor::Zeros({d, t});
  float* p = out.data();
  for (int64_t ti = 0; ti < t; ++ti) {
    for (int64_t di = 0; di < d; ++di) {
      p[di * t + ti] = rows[static_cast<size_t>(ti)][static_cast<size_t>(di)];
    }
  }
  return out;
}

Status SaveCsvSeries(const std::string& path, const Tensor& series,
                     const std::vector<std::string>& channel_names) {
  if (series.ndim() != 2) {
    return Status::InvalidArgument("SaveCsvSeries expects [D, T]");
  }
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  const int64_t d = series.dim(0);
  const int64_t t = series.dim(1);
  if (!channel_names.empty()) {
    if (static_cast<int64_t>(channel_names.size()) != d) {
      return Status::InvalidArgument("channel_names size mismatch");
    }
    out << StrJoin(channel_names, ",") << "\n";
  }
  const float* p = series.data();
  for (int64_t ti = 0; ti < t; ++ti) {
    for (int64_t di = 0; di < d; ++di) {
      if (di > 0) {
        out << ",";
      }
      out << p[di * t + ti];
    }
    out << "\n";
  }
  return out.good() ? Status::Ok() : Status::IoError("write failed: " + path);
}

Result<TimeSeriesDataset> LoadUcrStyleCsv(const std::string& path,
                                          char delimiter) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::vector<std::vector<float>> rows;
  std::vector<int64_t> raw_labels;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (StrStrip(line).empty()) {
      continue;
    }
    UNITS_ASSIGN_OR_RETURN(std::vector<float> row,
                           ParseFloatRow(line, delimiter, line_no));
    if (row.size() < 2) {
      return Status::InvalidArgument(
          StrFormat("line %lld: need label plus at least one value",
                    static_cast<long long>(line_no)));
    }
    raw_labels.push_back(static_cast<int64_t>(row[0]));
    row.erase(row.begin());
    if (!rows.empty() && row.size() != rows[0].size()) {
      return Status::InvalidArgument(
          StrFormat("line %lld: inconsistent series length",
                    static_cast<long long>(line_no)));
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("no data rows in " + path);
  }
  // Remap labels to contiguous ids in order of first appearance.
  std::map<int64_t, int64_t> remap;
  std::vector<int64_t> labels;
  labels.reserve(raw_labels.size());
  for (int64_t raw : raw_labels) {
    auto [it, inserted] =
        remap.emplace(raw, static_cast<int64_t>(remap.size()));
    labels.push_back(it->second);
  }
  const int64_t n = static_cast<int64_t>(rows.size());
  const int64_t t = static_cast<int64_t>(rows[0].size());
  Tensor values = Tensor::Zeros({n, 1, t});
  float* p = values.data();
  for (int64_t i = 0; i < n; ++i) {
    std::copy(rows[static_cast<size_t>(i)].begin(),
              rows[static_cast<size_t>(i)].end(), p + i * t);
  }
  return TimeSeriesDataset(std::move(values), std::move(labels));
}

Status SaveUcrStyleCsv(const std::string& path,
                       const TimeSeriesDataset& dataset) {
  if (dataset.num_channels() != 1) {
    return Status::InvalidArgument("UCR format is univariate");
  }
  if (!dataset.has_labels()) {
    return Status::InvalidArgument("dataset has no labels");
  }
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  const int64_t n = dataset.num_samples();
  const int64_t t = dataset.length();
  const float* p = dataset.values().data();
  for (int64_t i = 0; i < n; ++i) {
    out << dataset.labels()[static_cast<size_t>(i)];
    for (int64_t j = 0; j < t; ++j) {
      out << "," << p[i * t + j];
    }
    out << "\n";
  }
  return out.good() ? Status::Ok() : Status::IoError("write failed: " + path);
}

}  // namespace units::data
