#ifndef UNITS_DATA_SYNTHETIC_H_
#define UNITS_DATA_SYNTHETIC_H_

#include <cstdint>
#include <utility>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace units::data {

// Synthetic workload generators substituting for the paper's real datasets
// (human action recognition, fault detection, server monitoring). Each
// generator is deterministic given its seed and exposes the statistical
// structure the corresponding self-supervised objective exploits:
// class-discriminative waveforms and motifs, temporal redundancy, seasonal
// structure, and cross-domain invariants. See DESIGN.md §2.

/// Options for the HAR-like classification generator.
struct ClassificationOpts {
  int64_t num_samples = 240;
  int64_t num_classes = 4;
  int64_t num_channels = 3;
  int64_t length = 128;
  float noise = 0.3f;           // additive Gaussian sigma
  float amp_jitter = 0.2f;      // per-instance amplitude jitter (fraction)
  float phase_jitter = 1.0f;    // per-instance phase offset scale (radians)
  float time_warp = 0.0f;       // per-instance smooth time-warp strength
  float freq_separation = 0.35f;  // shift of each class's frequency band;
                                  // 0 = fully shared band (hardest)
  bool add_motifs = true;       // class-specific localized motifs
  uint64_t seed = 1;
};

/// Class-structured multivariate series (HAR-like). Each class owns a set
/// of per-channel base waveforms plus a localized motif; instances vary by
/// phase, amplitude and noise, so class identity lives in shape, not scale.
TimeSeriesDataset MakeClassificationDataset(const ClassificationOpts& opts);

/// Domain transform applied on top of the class structure (amplitude and
/// frequency scaling, baseline drift, extra noise) to model deployment
/// shift between e.g. two sensor installations.
struct DomainShift {
  float amp_scale = 1.6f;
  float freq_scale = 1.15f;
  float drift_amp = 0.8f;    // slow sinusoidal baseline drift amplitude
  float noise_mult = 1.8f;
  // Rotates channels by this many positions (sensor d reports what sensor
  // d+rotation reported in the source installation). This makes the
  // *class-conditional* distribution shift: models that memorized which
  // channel carries which pattern are actively misled in the target
  // domain, the regime where pooled source+target training breaks down.
  int64_t channel_rotation = 0;
};

/// Generates a (source, target) pair that share class semantics but differ
/// by `shift`. Both datasets are labeled.
std::pair<TimeSeriesDataset, TimeSeriesDataset> MakeDomainShiftPair(
    const ClassificationOpts& opts, const DomainShift& shift);

/// Options for the long forecasting series (energy / server-load-like).
struct ForecastSeriesOpts {
  int64_t num_channels = 2;
  int64_t total_length = 2000;
  float trend_slope = 0.0005f;
  float daily_period = 48.0f;    // primary seasonality
  float weekly_period = 336.0f;  // secondary seasonality
  float noise = 0.2f;
  float ar_coeff = 0.7f;         // AR(1) coefficient of the noise process
  uint64_t seed = 2;
};

/// Long series [D, T_long] with trend + two seasonalities + AR(1) noise.
Tensor MakeForecastSeries(const ForecastSeriesOpts& opts);

/// Windowed forecasting dataset built from MakeForecastSeries: X [N, D,
/// input_len], targets [N, D, horizon]; chronological order preserved.
TimeSeriesDataset MakeForecastDataset(const ForecastSeriesOpts& opts,
                                      int64_t input_len, int64_t horizon,
                                      int64_t stride);

/// Anomaly types injected by the server-monitoring-like generator.
enum class AnomalyType { kSpike, kLevelShift, kNoiseBurst, kFlatline };

/// Options for the anomaly detection generator.
struct AnomalyOpts {
  int64_t num_channels = 2;
  int64_t total_length = 4000;
  float base_period = 50.0f;
  float noise = 0.15f;
  int64_t num_anomalies = 24;
  uint64_t seed = 3;
};

/// A long series with injected anomalies and per-timestep 0/1 labels.
struct AnomalySeries {
  Tensor series;  // [D, T_long]
  Tensor labels;  // [T_long], values in {0, 1}
};

/// Clean periodic series (no anomalies) for training reconstruction models.
Tensor MakeCleanSeries(const AnomalyOpts& opts);

/// Series with `num_anomalies` injected events cycling through all four
/// anomaly types.
AnomalySeries MakeAnomalySeries(const AnomalyOpts& opts);

/// Random missing mask over `shape`: entries are 1 (observed) or 0
/// (missing). Missing runs have geometric length with the given mean, and
/// the overall missing rate approaches `missing_rate`.
Tensor MakeMissingMask(const Shape& shape, float missing_rate,
                       float mean_block_len, Rng* rng);

/// Options for the drifting server-monitoring stream generator.
struct DriftingStreamOpts {
  int64_t num_channels = 2;
  int64_t total_length = 2048;
  float base_level = 1.0e6f;   // large-mean counter baseline (per channel,
                               // scaled by channel index)
  float base_period = 64.0f;   // request-rate seasonality
  float season_amp = 50.0f;
  float noise = 5.0f;
  float level_drift = 0.25f;   // mean drift per step (deployment creep)
  float scale_drift = 1.5f;    // amplitude multiplier reached by the end
  int64_t num_anomalies = 8;   // injected spike/level-shift events
  uint64_t seed = 17;
};

/// Continuous monitoring stream [D, T_long] whose mean and amplitude drift
/// over time, with per-timestep 0/1 anomaly labels. The drift defeats any
/// statistics frozen at deployment: rolling normalization and online
/// threshold recalibration (the serving layer's streaming sessions) are
/// exactly what this series exists to exercise. The large base level also
/// stresses variance accumulators against catastrophic cancellation.
AnomalySeries MakeDriftingStream(const DriftingStreamOpts& opts);

}  // namespace units::data

#endif  // UNITS_DATA_SYNTHETIC_H_
