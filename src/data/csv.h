#ifndef UNITS_DATA_CSV_H_
#define UNITS_DATA_CSV_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "data/dataset.h"
#include "tensor/tensor.h"

namespace units::data {

/// Loads a long-format CSV (rows = timesteps, columns = channels) into a
/// [D, T] tensor. Set has_header to skip the first line.
Result<Tensor> LoadCsvSeries(const std::string& path, bool has_header);

/// Writes a [D, T] series as long-format CSV with optional column names.
Status SaveCsvSeries(const std::string& path, const Tensor& series,
                     const std::vector<std::string>& channel_names = {});

/// Loads a UCR-style delimited file: each row is `label, v_1, ..., v_T`
/// (univariate). Returns a labeled dataset of shape [N, 1, T]. Labels are
/// remapped to contiguous 0..C-1 in order of first appearance.
Result<TimeSeriesDataset> LoadUcrStyleCsv(const std::string& path,
                                          char delimiter = ',');

/// Writes a labeled univariate dataset back in UCR style.
Status SaveUcrStyleCsv(const std::string& path,
                       const TimeSeriesDataset& dataset);

}  // namespace units::data

#endif  // UNITS_DATA_CSV_H_
