#include "data/window.h"

#include "base/check.h"

namespace units::data {

Tensor SlidingWindows(const Tensor& series, int64_t window, int64_t stride) {
  UNITS_CHECK_EQ(series.ndim(), 2);
  UNITS_CHECK_GE(window, 1);
  UNITS_CHECK_GE(stride, 1);
  const int64_t d = series.dim(0);
  const int64_t t_long = series.dim(1);
  UNITS_CHECK_GE(t_long, window);
  const int64_t n = (t_long - window) / stride + 1;
  Tensor out = Tensor::Zeros({n, d, window});
  const float* ps = series.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t start = i * stride;
    for (int64_t c = 0; c < d; ++c) {
      const float* src = ps + c * t_long + start;
      float* dst = po + (i * d + c) * window;
      std::copy(src, src + window, dst);
    }
  }
  return out;
}

std::pair<Tensor, Tensor> ForecastWindows(const Tensor& series,
                                          int64_t input_len, int64_t horizon,
                                          int64_t stride) {
  UNITS_CHECK_EQ(series.ndim(), 2);
  UNITS_CHECK_GE(input_len, 1);
  UNITS_CHECK_GE(horizon, 1);
  UNITS_CHECK_GE(stride, 1);
  const int64_t d = series.dim(0);
  const int64_t t_long = series.dim(1);
  const int64_t total = input_len + horizon;
  UNITS_CHECK_GE(t_long, total);
  const int64_t n = (t_long - total) / stride + 1;
  Tensor x = Tensor::Zeros({n, d, input_len});
  Tensor y = Tensor::Zeros({n, d, horizon});
  const float* ps = series.data();
  float* px = x.data();
  float* py = y.data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t start = i * stride;
    for (int64_t c = 0; c < d; ++c) {
      const float* src = ps + c * t_long + start;
      std::copy(src, src + input_len, px + (i * d + c) * input_len);
      std::copy(src + input_len, src + total, py + (i * d + c) * horizon);
    }
  }
  return {x, y};
}

Tensor SlidingLabelWindows(const Tensor& labels, int64_t window,
                           int64_t stride) {
  UNITS_CHECK_EQ(labels.ndim(), 1);
  // Same guards as SlidingWindows: stride = 0 would divide by zero below,
  // and window < 1 would produce a negative window extent.
  UNITS_CHECK_GE(window, 1);
  UNITS_CHECK_GE(stride, 1);
  const int64_t t_long = labels.dim(0);
  UNITS_CHECK_GE(t_long, window);
  const int64_t n = (t_long - window) / stride + 1;
  Tensor out = Tensor::Zeros({n, window});
  const float* ps = labels.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* src = ps + i * stride;
    std::copy(src, src + window, po + i * window);
  }
  return out;
}

}  // namespace units::data
