#include "data/dataset.h"

#include <algorithm>
#include <map>

#include "base/check.h"
#include "base/string_util.h"
#include "tensor/tensor_ops.h"

namespace units::data {

TimeSeriesDataset::TimeSeriesDataset(Tensor values)
    : values_(std::move(values)) {
  UNITS_CHECK_EQ(values_.ndim(), 3);
}

TimeSeriesDataset::TimeSeriesDataset(Tensor values,
                                     std::vector<int64_t> labels)
    : values_(std::move(values)), labels_(std::move(labels)) {
  UNITS_CHECK_EQ(values_.ndim(), 3);
  UNITS_CHECK_EQ(static_cast<int64_t>(labels_.size()), num_samples());
}

void TimeSeriesDataset::set_labels(std::vector<int64_t> labels) {
  UNITS_CHECK_EQ(static_cast<int64_t>(labels.size()), num_samples());
  labels_ = std::move(labels);
}

void TimeSeriesDataset::set_targets(Tensor targets) {
  UNITS_CHECK_EQ(targets.ndim(), 3);
  UNITS_CHECK_EQ(targets.dim(0), num_samples());
  targets_ = std::move(targets);
}

void TimeSeriesDataset::set_point_labels(Tensor point_labels) {
  UNITS_CHECK_EQ(point_labels.ndim(), 2);
  UNITS_CHECK_EQ(point_labels.dim(0), num_samples());
  UNITS_CHECK_EQ(point_labels.dim(1), length());
  point_labels_ = std::move(point_labels);
}

int64_t TimeSeriesDataset::NumClasses() const {
  if (labels_.empty()) {
    return 0;
  }
  const int64_t max_label = *std::max_element(labels_.begin(), labels_.end());
  return max_label + 1;
}

TimeSeriesDataset TimeSeriesDataset::Subset(
    const std::vector<int64_t>& indices) const {
  TimeSeriesDataset out;
  out.values_ = ops::GatherRows(values_, indices);
  if (has_labels()) {
    out.labels_.reserve(indices.size());
    for (int64_t i : indices) {
      UNITS_CHECK(i >= 0 && i < num_samples());
      out.labels_.push_back(labels_[static_cast<size_t>(i)]);
    }
  }
  if (has_targets()) {
    out.targets_ = ops::GatherRows(targets_, indices);
  }
  if (has_point_labels()) {
    out.point_labels_ = ops::GatherRows(point_labels_, indices);
  }
  return out;
}

namespace {

/// Groups sample indices by class (single group when unlabeled).
std::map<int64_t, std::vector<int64_t>> GroupByClass(
    const std::vector<int64_t>& labels, int64_t n) {
  std::map<int64_t, std::vector<int64_t>> groups;
  if (labels.empty()) {
    for (int64_t i = 0; i < n; ++i) {
      groups[0].push_back(i);
    }
  } else {
    for (int64_t i = 0; i < n; ++i) {
      groups[labels[static_cast<size_t>(i)]].push_back(i);
    }
  }
  return groups;
}

}  // namespace

std::pair<TimeSeriesDataset, TimeSeriesDataset>
TimeSeriesDataset::TrainTestSplit(double train_fraction, Rng* rng) const {
  UNITS_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  std::vector<int64_t> train_idx;
  std::vector<int64_t> test_idx;
  for (auto& [cls, members] : GroupByClass(labels_, num_samples())) {
    std::vector<int64_t> shuffled = members;
    rng->Shuffle(&shuffled);
    // At least one sample on each side of the split per class.
    int64_t n_train = static_cast<int64_t>(
        train_fraction * static_cast<double>(shuffled.size()) + 0.5);
    n_train = std::clamp<int64_t>(n_train, 1,
                                  static_cast<int64_t>(shuffled.size()) - 1);
    for (size_t i = 0; i < shuffled.size(); ++i) {
      (static_cast<int64_t>(i) < n_train ? train_idx : test_idx)
          .push_back(shuffled[i]);
    }
  }
  std::sort(train_idx.begin(), train_idx.end());
  std::sort(test_idx.begin(), test_idx.end());
  return {Subset(train_idx), Subset(test_idx)};
}

std::pair<TimeSeriesDataset, TimeSeriesDataset>
TimeSeriesDataset::PartialLabelSplit(double labeled_fraction,
                                     Rng* rng) const {
  UNITS_CHECK(labeled_fraction > 0.0 && labeled_fraction <= 1.0);
  UNITS_CHECK(has_labels());
  std::vector<int64_t> labeled_idx;
  for (auto& [cls, members] : GroupByClass(labels_, num_samples())) {
    std::vector<int64_t> shuffled = members;
    rng->Shuffle(&shuffled);
    int64_t n_keep = static_cast<int64_t>(
        labeled_fraction * static_cast<double>(shuffled.size()) + 0.5);
    n_keep = std::max<int64_t>(n_keep, 1);
    for (int64_t i = 0; i < n_keep; ++i) {
      labeled_idx.push_back(shuffled[static_cast<size_t>(i)]);
    }
  }
  std::sort(labeled_idx.begin(), labeled_idx.end());

  TimeSeriesDataset unlabeled;
  unlabeled.values_ = values_;  // shares storage; labels dropped
  return {Subset(labeled_idx), unlabeled};
}

std::string TimeSeriesDataset::Description() const {
  std::string out =
      StrFormat("TimeSeriesDataset(N=%lld, D=%lld, T=%lld",
                static_cast<long long>(num_samples()),
                static_cast<long long>(num_channels()),
                static_cast<long long>(length()));
  if (has_labels()) {
    out += StrFormat(", classes=%lld", static_cast<long long>(NumClasses()));
  }
  if (has_targets()) {
    out += StrFormat(", horizon=%lld", static_cast<long long>(targets_.dim(2)));
  }
  if (has_point_labels()) {
    out += ", point-labeled";
  }
  out += ")";
  return out;
}

}  // namespace units::data
