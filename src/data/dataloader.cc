#include "data/dataloader.h"

#include <algorithm>

#include "base/check.h"
#include "tensor/tensor_ops.h"

namespace units::data {

DataLoader::DataLoader(const TimeSeriesDataset* dataset, int64_t batch_size,
                       bool shuffle, Rng* rng)
    : dataset_(dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(rng->Fork()) {
  UNITS_CHECK(dataset != nullptr);
  UNITS_CHECK_GE(batch_size, 1);
  Reset();
}

void DataLoader::Reset() {
  const int64_t n = dataset_->num_samples();
  order_.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    order_[static_cast<size_t>(i)] = i;
  }
  if (shuffle_) {
    rng_.Shuffle(&order_);
  }
  cursor_ = 0;
}

bool DataLoader::Next(Batch* batch) {
  const int64_t n = dataset_->num_samples();
  if (cursor_ >= n) {
    return false;
  }
  const int64_t end = std::min(cursor_ + batch_size_, n);
  std::vector<int64_t> idx(order_.begin() + cursor_, order_.begin() + end);
  cursor_ = end;

  batch->indices = idx;
  batch->values = ops::GatherRows(dataset_->values(), idx);
  batch->labels.clear();
  if (dataset_->has_labels()) {
    batch->labels.reserve(idx.size());
    for (int64_t i : idx) {
      batch->labels.push_back(dataset_->labels()[static_cast<size_t>(i)]);
    }
  }
  if (dataset_->has_targets()) {
    batch->targets = ops::GatherRows(dataset_->targets(), idx);
  } else {
    batch->targets = Tensor();
  }
  if (dataset_->has_point_labels()) {
    batch->point_labels = ops::GatherRows(dataset_->point_labels(), idx);
  } else {
    batch->point_labels = Tensor();
  }
  return true;
}

int64_t DataLoader::NumBatches() const {
  const int64_t n = dataset_->num_samples();
  return (n + batch_size_ - 1) / batch_size_;
}

}  // namespace units::data
