#include "data/dataloader.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

#include "base/check.h"
#include "tensor/tensor_ops.h"

namespace units::data {

namespace {

/// UNITS_PREFETCH=0 / off is a global kill switch (escape hatch for
/// debugging and for the synchronous parity oracle in tests). Re-read per
/// loader construction so tests can flip it with setenv.
bool PrefetchEnabledByEnv() {
  const char* e = std::getenv("UNITS_PREFETCH");
  if (e == nullptr) {
    return true;
  }
  const std::string s(e);
  return !(s == "0" || s == "off");
}

/// Gathers one minibatch. Pure function of (dataset, idx), so it runs the
/// same whether called by the consumer or the prefetch worker.
void MaterializeBatch(const TimeSeriesDataset& dataset,
                      std::vector<int64_t> idx, Batch* batch) {
  batch->values = ops::GatherRows(dataset.values(), idx);
  batch->labels.clear();
  if (dataset.has_labels()) {
    batch->labels.reserve(idx.size());
    for (int64_t i : idx) {
      batch->labels.push_back(dataset.labels()[static_cast<size_t>(i)]);
    }
  }
  if (dataset.has_targets()) {
    batch->targets = ops::GatherRows(dataset.targets(), idx);
  } else {
    batch->targets = Tensor();
  }
  if (dataset.has_point_labels()) {
    batch->point_labels = ops::GatherRows(dataset.point_labels(), idx);
  } else {
    batch->point_labels = Tensor();
  }
  batch->indices = std::move(idx);
}

}  // namespace

Rng DataLoader::ForkAfterGuards(const TimeSeriesDataset* dataset,
                                int64_t batch_size, Rng* rng) {
  UNITS_CHECK(dataset != nullptr);
  UNITS_CHECK_GE(batch_size, 1);
  UNITS_CHECK(rng != nullptr);
  return rng->Fork();
}

DataLoader::DataLoader(const TimeSeriesDataset* dataset, int64_t batch_size,
                       bool shuffle, Rng* rng, bool prefetch)
    : dataset_(dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(ForkAfterGuards(dataset, batch_size, rng)) {
  Reset();
  if (prefetch && PrefetchEnabledByEnv()) {
    worker_ = std::thread(&DataLoader::WorkerLoop, this);
  }
}

DataLoader::~DataLoader() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }
}

void DataLoader::ResetLocked() {
  const int64_t n = dataset_->num_samples();
  order_.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    order_[static_cast<size_t>(i)] = i;
  }
  if (shuffle_) {
    // Always on the caller's thread: the rng draw sequence is identical to
    // the synchronous loader's, so the epoch order is bitwise reproducible.
    rng_.Shuffle(&order_);
  }
  cursor_ = 0;
  produce_cursor_ = 0;
  slot_full_ = false;
  slot_ = Batch();
  slot_end_ = 0;
}

void DataLoader::Reset() {
  if (!worker_.joinable()) {
    ResetLocked();  // no worker yet (or prefetch off): no locking needed
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++epoch_;  // a batch the worker is currently building is now stale
    ResetLocked();
  }
  cv_.notify_all();
}

void DataLoader::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] {
      return shutdown_ ||
             (!slot_full_ && produce_cursor_ < dataset_->num_samples());
    });
    if (shutdown_) {
      return;
    }
    const int64_t epoch = epoch_;
    const int64_t begin = produce_cursor_;
    const int64_t end =
        std::min(begin + batch_size_, dataset_->num_samples());
    std::vector<int64_t> idx(order_.begin() + begin, order_.begin() + end);
    produce_cursor_ = end;

    lock.unlock();
    Batch batch;
    MaterializeBatch(*dataset_, std::move(idx), &batch);
    lock.lock();

    if (epoch == epoch_ && !shutdown_) {
      slot_ = std::move(batch);
      slot_end_ = end;
      slot_full_ = true;
      cv_.notify_all();
    }
    // Epoch changed mid-materialize: drop the stale batch and loop; the
    // predicate re-reads the (reset) produce cursor.
  }
}

bool DataLoader::Next(Batch* batch) {
  const int64_t n = dataset_->num_samples();
  if (!worker_.joinable()) {
    if (cursor_ >= n) {
      return false;
    }
    const int64_t end = std::min(cursor_ + batch_size_, n);
    std::vector<int64_t> idx(order_.begin() + cursor_,
                             order_.begin() + end);
    cursor_ = end;
    MaterializeBatch(*dataset_, std::move(idx), batch);
    return true;
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (cursor_ >= n) {
    return false;
  }
  // cursor_ < n implies the worker has claimed or will claim the next
  // slice, so the slot always fills eventually.
  cv_.wait(lock, [this] { return slot_full_; });
  *batch = std::move(slot_);
  slot_ = Batch();
  slot_full_ = false;
  cursor_ = slot_end_;
  lock.unlock();
  cv_.notify_all();  // wake the worker to start on batch k+1
  return true;
}

int64_t DataLoader::NumBatches() const {
  const int64_t n = dataset_->num_samples();
  return (n + batch_size_ - 1) / batch_size_;
}

}  // namespace units::data
