#ifndef UNITS_DATA_NORMALIZE_H_
#define UNITS_DATA_NORMALIZE_H_

#include <vector>

#include "base/status.h"
#include "tensor/tensor.h"

namespace units::data {

/// Per-channel z-score normalizer with the sklearn-style Fit/Transform
/// contract. Statistics are computed over all samples and timesteps of each
/// channel of an [N, D, T] tensor.
class ZScoreNormalizer {
 public:
  /// Computes per-channel mean and standard deviation.
  Status Fit(const Tensor& values);

  /// (x - mean) / std, channel-wise. Requires Fit first.
  Tensor Transform(const Tensor& values) const;

  /// x * std + mean.
  Tensor InverseTransform(const Tensor& values) const;

  bool fitted() const { return fitted_; }
  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& stddev() const { return stddev_; }

  /// Restores a fitted normalizer from saved statistics.
  static ZScoreNormalizer FromStats(std::vector<float> mean,
                                    std::vector<float> stddev);

 private:
  bool fitted_ = false;
  std::vector<float> mean_;
  std::vector<float> stddev_;
};

/// Per-channel min-max scaler to [0, 1].
class MinMaxNormalizer {
 public:
  Status Fit(const Tensor& values);
  Tensor Transform(const Tensor& values) const;
  Tensor InverseTransform(const Tensor& values) const;

  bool fitted() const { return fitted_; }
  const std::vector<float>& min() const { return min_; }
  const std::vector<float>& max() const { return max_; }

 private:
  bool fitted_ = false;
  std::vector<float> min_;
  std::vector<float> max_;
};

}  // namespace units::data

#endif  // UNITS_DATA_NORMALIZE_H_
