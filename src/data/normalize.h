#ifndef UNITS_DATA_NORMALIZE_H_
#define UNITS_DATA_NORMALIZE_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "tensor/tensor.h"

namespace units::data {

/// Smallest standard deviation (or min-max span) a normalizer will divide
/// by; constant channels scale by 1/kMinStddev instead of exploding.
inline constexpr float kMinStddev = 1e-6f;

/// Per-channel z-score normalizer with the sklearn-style Fit/Transform
/// contract. Statistics are computed over all samples and timesteps of each
/// channel of an [N, D, T] tensor.
class ZScoreNormalizer {
 public:
  /// Computes per-channel mean and standard deviation.
  Status Fit(const Tensor& values);

  /// (x - mean) / std, channel-wise. Requires Fit first.
  Tensor Transform(const Tensor& values) const;

  /// x * std + mean.
  Tensor InverseTransform(const Tensor& values) const;

  bool fitted() const { return fitted_; }
  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& stddev() const { return stddev_; }

  /// Restores a fitted normalizer from saved statistics.
  static ZScoreNormalizer FromStats(std::vector<float> mean,
                                    std::vector<float> stddev);

 private:
  bool fitted_ = false;
  std::vector<float> mean_;
  std::vector<float> stddev_;
};

/// Incremental per-channel mean/variance over a stream of multivariate
/// samples, using Welford's update so large-mean series (e.g. monitoring
/// counters around 1e6) do not lose their variance to catastrophic
/// cancellation the way an E[x^2] - E[x]^2 accumulator does.
/// ZScoreNormalizer::Fit and the serving layer's streaming sessions share
/// this accumulator, so rolling statistics computed point-by-point online
/// are bitwise identical to a batch Fit over the same points in the same
/// order.
class RollingNormalizer {
 public:
  explicit RollingNormalizer(int64_t channels);

  /// Folds in one multivariate sample (one timestep): channel c reads
  /// values[c * stride]. Channels update independently, so only the
  /// per-channel arrival order matters for determinism.
  void Update(const float* values, int64_t stride = 1);

  /// Folds in every timestep of a [D, P] series in time order.
  void UpdateSeries(const Tensor& series);

  /// Samples folded in so far.
  int64_t count() const { return count_; }
  int64_t channels() const { return static_cast<int64_t>(mean_.size()); }

  /// Current per-channel statistics (population variance, like Fit).
  /// Stddev is floored at kMinStddev; with no samples it is all-floor.
  std::vector<float> Mean() const;
  std::vector<float> Stddev() const;

  /// A fitted ZScoreNormalizer frozen at the current statistics.
  ZScoreNormalizer Snapshot() const;

 private:
  int64_t count_ = 0;
  std::vector<double> mean_;
  std::vector<double> m2_;  // sum of squared deviations from the mean
};

/// Per-channel min-max scaler to [0, 1].
class MinMaxNormalizer {
 public:
  Status Fit(const Tensor& values);
  Tensor Transform(const Tensor& values) const;
  Tensor InverseTransform(const Tensor& values) const;

  bool fitted() const { return fitted_; }
  const std::vector<float>& min() const { return min_; }
  const std::vector<float>& max() const { return max_; }

 private:
  bool fitted_ = false;
  std::vector<float> min_;
  std::vector<float> max_;
};

}  // namespace units::data

#endif  // UNITS_DATA_NORMALIZE_H_
