#ifndef UNITS_DATA_DATALOADER_H_
#define UNITS_DATA_DATALOADER_H_

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "data/dataset.h"

namespace units::data {

/// One minibatch drawn from a TimeSeriesDataset.
struct Batch {
  Tensor values;                  // [B, D, T]
  std::vector<int64_t> labels;    // per-sample labels (may be empty)
  Tensor targets;                 // [B, D, H] when the dataset has targets
  Tensor point_labels;            // [B, T] when present
  std::vector<int64_t> indices;   // source row of each batch element
};

/// Iterates a dataset in minibatches; reshuffles each epoch when shuffle is
/// on. The final short batch is emitted (no drop-last).
///
/// With `prefetch` on (the default), a single background worker materializes
/// batch k+1 (GatherRows of values/labels/targets/point-labels) into a
/// one-slot double buffer while the trainer consumes batch k, so windowing
/// overlaps compute. The batch *sequence* is bitwise identical to the
/// synchronous path: the epoch shuffle still runs on the calling thread in
/// Reset() (same rng stream, same draw count), batch boundaries are
/// unchanged, and GatherRows partitions work independently of the calling
/// thread. Setting the UNITS_PREFETCH environment variable to "0" or "off"
/// disables prefetching globally regardless of the constructor flag.
class DataLoader {
 public:
  /// `dataset` must outlive the loader; `rng` must be non-null (it is only
  /// used to fork a private stream during construction).
  DataLoader(const TimeSeriesDataset* dataset, int64_t batch_size,
             bool shuffle, Rng* rng, bool prefetch = true);
  ~DataLoader();

  DataLoader(const DataLoader&) = delete;
  DataLoader& operator=(const DataLoader&) = delete;

  /// Starts a new epoch. Any batch the worker is materializing for the old
  /// epoch is cancelled (never observed by Next()).
  void Reset();

  /// Fills `batch` with the next minibatch; false at epoch end.
  bool Next(Batch* batch);

  /// Batches per epoch.
  int64_t NumBatches() const;

  /// Whether a background prefetch worker is running.
  bool prefetching() const { return worker_.joinable(); }

 private:
  /// Runs the constructor guards (null dataset / null rng / bad batch size
  /// must fail the UNITS_CHECK, not segfault) before `rng` is dereferenced.
  static Rng ForkAfterGuards(const TimeSeriesDataset* dataset,
                             int64_t batch_size, Rng* rng);

  void ResetLocked();
  void WorkerLoop();

  const TimeSeriesDataset* dataset_;
  int64_t batch_size_;
  bool shuffle_;
  Rng rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;  // first row the consumer has not received yet

  // Prefetch state. All fields below are guarded by mu_; the worker copies
  // the index slice under the lock and materializes outside it, so Reset()
  // can reshuffle order_ concurrently (the stale batch is dropped via the
  // epoch generation check on install).
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread worker_;
  int64_t produce_cursor_ = 0;  // first row the worker has not claimed yet
  int64_t epoch_ = 0;           // bumped by Reset() to cancel stale batches
  bool slot_full_ = false;
  bool shutdown_ = false;
  Batch slot_;
  int64_t slot_end_ = 0;  // consumer cursor after slot_ is consumed
};

}  // namespace units::data

#endif  // UNITS_DATA_DATALOADER_H_
