#ifndef UNITS_DATA_DATALOADER_H_
#define UNITS_DATA_DATALOADER_H_

#include <vector>

#include "base/rng.h"
#include "data/dataset.h"

namespace units::data {

/// One minibatch drawn from a TimeSeriesDataset.
struct Batch {
  Tensor values;                  // [B, D, T]
  std::vector<int64_t> labels;    // per-sample labels (may be empty)
  Tensor targets;                 // [B, D, H] when the dataset has targets
  Tensor point_labels;            // [B, T] when present
  std::vector<int64_t> indices;   // source row of each batch element
};

/// Iterates a dataset in minibatches; reshuffles each epoch when shuffle is
/// on. The final short batch is emitted (no drop-last).
class DataLoader {
 public:
  /// `dataset` must outlive the loader.
  DataLoader(const TimeSeriesDataset* dataset, int64_t batch_size,
             bool shuffle, Rng* rng);

  /// Starts a new epoch.
  void Reset();

  /// Fills `batch` with the next minibatch; false at epoch end.
  bool Next(Batch* batch);

  /// Batches per epoch.
  int64_t NumBatches() const;

 private:
  const TimeSeriesDataset* dataset_;
  int64_t batch_size_;
  bool shuffle_;
  Rng rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
};

}  // namespace units::data

#endif  // UNITS_DATA_DATALOADER_H_
