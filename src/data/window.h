#ifndef UNITS_DATA_WINDOW_H_
#define UNITS_DATA_WINDOW_H_

#include <utility>

#include "tensor/tensor.h"

namespace units::data {

/// Slices a long multivariate series [D, T_long] into overlapping windows
/// [N, D, window]; stride controls the hop between window starts.
Tensor SlidingWindows(const Tensor& series, int64_t window, int64_t stride);

/// Splits a long series [D, T_long] into (input, target) pairs for
/// forecasting: X [N, D, input_len] immediately followed by Y [N, D,
/// horizon], hopping by `stride`.
std::pair<Tensor, Tensor> ForecastWindows(const Tensor& series,
                                          int64_t input_len, int64_t horizon,
                                          int64_t stride);

/// Windows a per-timestep label vector [T_long] in lockstep with
/// SlidingWindows: returns [N, window].
Tensor SlidingLabelWindows(const Tensor& labels, int64_t window,
                           int64_t stride);

}  // namespace units::data

#endif  // UNITS_DATA_WINDOW_H_
