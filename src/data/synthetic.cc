#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "augment/augment.h"
#include "base/check.h"
#include "data/window.h"

namespace units::data {

namespace {

/// Base waveform families used to give classes distinct shapes.
enum class Waveform { kSine, kSquare, kSawtooth, kChirp, kTriangle };

float EvalWaveform(Waveform w, float phase_cycles) {
  // phase_cycles counts full periods; fractional part is position in period.
  const float frac = phase_cycles - std::floor(phase_cycles);
  switch (w) {
    case Waveform::kSine:
      return std::sin(2.0f * static_cast<float>(M_PI) * phase_cycles);
    case Waveform::kSquare:
      return frac < 0.5f ? 1.0f : -1.0f;
    case Waveform::kSawtooth:
      return 2.0f * frac - 1.0f;
    case Waveform::kChirp:
      // Frequency rises through the window: sin(2π (p + 0.5 p^2 / P)).
      return std::sin(2.0f * static_cast<float>(M_PI) *
                      (phase_cycles + 0.15f * phase_cycles * phase_cycles));
    case Waveform::kTriangle:
      return frac < 0.5f ? 4.0f * frac - 1.0f : 3.0f - 4.0f * frac;
  }
  return 0.0f;
}

/// Per-(class, channel) waveform parameters.
struct ChannelSpec {
  Waveform wave = Waveform::kSine;
  float freq = 2.0f;   // cycles per window
  float amp = 1.0f;
  float phase = 0.0f;  // base phase in cycles
};

/// Per-class structure: one waveform per channel plus a localized motif.
struct ClassSpec {
  std::vector<ChannelSpec> channels;
  std::vector<float> motif;  // short shape inserted at a random position
  int64_t motif_channel = 0;
};

std::vector<ClassSpec> DrawClassSpecs(const ClassificationOpts& opts,
                                      Rng* rng) {
  std::vector<ClassSpec> specs(static_cast<size_t>(opts.num_classes));
  constexpr Waveform kWaves[] = {Waveform::kSine, Waveform::kSquare,
                                 Waveform::kSawtooth, Waveform::kChirp,
                                 Waveform::kTriangle};
  for (int64_t c = 0; c < opts.num_classes; ++c) {
    ClassSpec& spec = specs[static_cast<size_t>(c)];
    spec.channels.resize(static_cast<size_t>(opts.num_channels));
    for (int64_t d = 0; d < opts.num_channels; ++d) {
      ChannelSpec& ch = spec.channels[static_cast<size_t>(d)];
      // All classes share the same frequency band and draw their waveform
      // families at random: class identity lives in the *combination* of
      // shapes across channels plus the motif below, not in any single
      // scalar cue a tiny labeled set could pin down.
      ch.wave = kWaves[rng->UniformInt(5)];
      const double band_lo =
          1.8 + static_cast<double>(opts.freq_separation) *
                    static_cast<double>(c);
      ch.freq = static_cast<float>(rng->Uniform(band_lo, band_lo + 1.2));
      ch.amp = static_cast<float>(rng->Uniform(0.7, 1.3));
      ch.phase = static_cast<float>(rng->Uniform(0.0, 1.0));
    }
    if (opts.add_motifs) {
      // Clamp so short series (tests, toy configs) still fit the motif.
      const int64_t motif_len = std::clamp<int64_t>(
          rng->UniformInt(12, 18), 4, std::max<int64_t>(4, opts.length / 2));
      spec.motif.resize(static_cast<size_t>(motif_len));
      // Class-specific random smooth shape: random harmonics under a
      // half-sine envelope, normalized to a fixed peak amplitude.
      const float f1 = static_cast<float>(rng->Uniform(0.5, 2.5));
      const float f2 = static_cast<float>(rng->Uniform(2.5, 5.0));
      const float w2 = static_cast<float>(rng->Uniform(-0.8, 0.8));
      const float phase = static_cast<float>(rng->Uniform(0.0, 2.0 * M_PI));
      float peak = 1e-6f;
      for (int64_t j = 0; j < motif_len; ++j) {
        const float u = static_cast<float>(j) /
                        static_cast<float>(motif_len - 1);
        const float envelope = std::sin(static_cast<float>(M_PI) * u);
        const float body =
            std::sin(2.0f * static_cast<float>(M_PI) * f1 * u + phase) +
            w2 * std::sin(2.0f * static_cast<float>(M_PI) * f2 * u);
        spec.motif[static_cast<size_t>(j)] = envelope * body;
        peak = std::max(peak, std::fabs(spec.motif[static_cast<size_t>(j)]));
      }
      for (float& v : spec.motif) {
        v *= 2.2f / peak;
      }
      spec.motif_channel =
          static_cast<int64_t>(rng->UniformInt(
              static_cast<uint64_t>(opts.num_channels)));
    }
  }
  return specs;
}

/// Renders one instance of class `spec` into `out` (D x T block).
void RenderInstance(const ClassSpec& spec, const ClassificationOpts& opts,
                    const DomainShift* shift, Rng* rng, float* out) {
  const int64_t d = opts.num_channels;
  const int64_t t = opts.length;
  const float amp_scale = shift != nullptr ? shift->amp_scale : 1.0f;
  const float freq_scale = shift != nullptr ? shift->freq_scale : 1.0f;
  const float noise =
      opts.noise * (shift != nullptr ? shift->noise_mult : 1.0f);

  // Instance-level nuisance parameters (shared across channels so channel
  // correlations stay intact).
  const float inst_amp = 1.0f + opts.amp_jitter *
                                    static_cast<float>(rng->Uniform(-1.0, 1.0));
  const float inst_phase = opts.phase_jitter *
                           static_cast<float>(rng->Uniform(0.0, 1.0));
  const float drift_phase = static_cast<float>(rng->Uniform(0.0, 2.0 * M_PI));

  for (int64_t di = 0; di < d; ++di) {
    const ChannelSpec& ch = spec.channels[static_cast<size_t>(di)];
    float* row = out + di * t;
    for (int64_t ti = 0; ti < t; ++ti) {
      const float pos = static_cast<float>(ti) / static_cast<float>(t);
      const float cycles =
          ch.freq * freq_scale * pos + ch.phase + inst_phase;
      float v = inst_amp * amp_scale * ch.amp * EvalWaveform(ch.wave, cycles);
      if (shift != nullptr) {
        // Slow baseline drift: one sinusoid cycle across the window.
        v += shift->drift_amp *
             std::sin(2.0f * static_cast<float>(M_PI) * pos + drift_phase);
      }
      v += noise * static_cast<float>(rng->Normal());
      row[ti] = v;
    }
  }

  // Insert the class motif at a random position (translation invariance is
  // part of what pre-training must learn).
  if (!spec.motif.empty()) {
    const int64_t mlen = static_cast<int64_t>(spec.motif.size());
    const int64_t start =
        static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(t - mlen)));
    float* row = out + spec.motif_channel * t;
    for (int64_t j = 0; j < mlen; ++j) {
      row[start + j] += inst_amp * amp_scale *
                        spec.motif[static_cast<size_t>(j)];
    }
  }
}

TimeSeriesDataset GenerateClassification(const ClassificationOpts& opts,
                                         const DomainShift* shift,
                                         Rng* spec_rng, Rng* inst_rng) {
  UNITS_CHECK_GE(opts.num_classes, 2);
  UNITS_CHECK_GE(opts.num_samples, opts.num_classes);
  const std::vector<ClassSpec> specs = DrawClassSpecs(opts, spec_rng);

  Tensor values = Tensor::Zeros(
      {opts.num_samples, opts.num_channels, opts.length});
  std::vector<int64_t> labels(static_cast<size_t>(opts.num_samples));
  float* p = values.data();
  for (int64_t i = 0; i < opts.num_samples; ++i) {
    const int64_t cls = i % opts.num_classes;  // balanced classes
    labels[static_cast<size_t>(i)] = cls;
    RenderInstance(specs[static_cast<size_t>(cls)], opts, shift, inst_rng,
                   p + i * opts.num_channels * opts.length);
  }
  if (opts.time_warp > 0.0f) {
    // A per-instance smooth warp is a nuisance no small label budget can
    // cover; representation learning must absorb it from unlabeled data.
    values = augment::TimeWarp(values, opts.time_warp, 6, inst_rng);
  }
  return TimeSeriesDataset(std::move(values), std::move(labels));
}

}  // namespace

TimeSeriesDataset MakeClassificationDataset(const ClassificationOpts& opts) {
  Rng spec_rng(opts.seed);
  Rng inst_rng(opts.seed ^ 0xABCDEF12345ULL);
  return GenerateClassification(opts, /*shift=*/nullptr, &spec_rng,
                                &inst_rng);
}

std::pair<TimeSeriesDataset, TimeSeriesDataset> MakeDomainShiftPair(
    const ClassificationOpts& opts, const DomainShift& shift) {
  // Both domains share class specs (same spec seed) but draw independent
  // instances; the target additionally applies the domain transform.
  Rng spec_rng_a(opts.seed);
  Rng inst_rng_a(opts.seed ^ 0x1111ULL);
  TimeSeriesDataset source =
      GenerateClassification(opts, nullptr, &spec_rng_a, &inst_rng_a);

  Rng spec_rng_b(opts.seed);  // identical class structure
  Rng inst_rng_b(opts.seed ^ 0x2222ULL);
  TimeSeriesDataset target =
      GenerateClassification(opts, &shift, &spec_rng_b, &inst_rng_b);

  if (shift.channel_rotation % opts.num_channels != 0) {
    const int64_t rot =
        ((shift.channel_rotation % opts.num_channels) + opts.num_channels) %
        opts.num_channels;
    Tensor rotated = Tensor::Zeros(target.values().shape());
    const int64_t d = opts.num_channels;
    const int64_t t = opts.length;
    const float* src = target.values().data();
    float* dst = rotated.data();
    for (int64_t i = 0; i < target.num_samples(); ++i) {
      for (int64_t c = 0; c < d; ++c) {
        const int64_t from = (c + rot) % d;
        std::copy(src + (i * d + from) * t, src + (i * d + from + 1) * t,
                  dst + (i * d + c) * t);
      }
    }
    target = TimeSeriesDataset(std::move(rotated),
                               std::vector<int64_t>(target.labels()));
  }
  return {std::move(source), std::move(target)};
}

Tensor MakeForecastSeries(const ForecastSeriesOpts& opts) {
  Rng rng(opts.seed);
  Tensor out = Tensor::Zeros({opts.num_channels, opts.total_length});
  float* p = out.data();
  for (int64_t d = 0; d < opts.num_channels; ++d) {
    const float daily_amp = static_cast<float>(rng.Uniform(0.8, 1.2));
    const float weekly_amp = static_cast<float>(rng.Uniform(0.3, 0.6));
    const float daily_phase = static_cast<float>(rng.Uniform(0.0, 2.0 * M_PI));
    const float weekly_phase = static_cast<float>(rng.Uniform(0.0, 2.0 * M_PI));
    float ar_state = 0.0f;
    float* row = p + d * opts.total_length;
    for (int64_t t = 0; t < opts.total_length; ++t) {
      const float tf = static_cast<float>(t);
      ar_state = opts.ar_coeff * ar_state +
                 opts.noise * static_cast<float>(rng.Normal());
      row[t] = opts.trend_slope * tf +
               daily_amp * std::sin(2.0f * static_cast<float>(M_PI) * tf /
                                        opts.daily_period +
                                    daily_phase) +
               weekly_amp * std::sin(2.0f * static_cast<float>(M_PI) * tf /
                                         opts.weekly_period +
                                     weekly_phase) +
               ar_state;
    }
  }
  return out;
}

TimeSeriesDataset MakeForecastDataset(const ForecastSeriesOpts& opts,
                                      int64_t input_len, int64_t horizon,
                                      int64_t stride) {
  const Tensor series = MakeForecastSeries(opts);
  auto [x, y] = ForecastWindows(series, input_len, horizon, stride);
  TimeSeriesDataset dataset(std::move(x));
  dataset.set_targets(std::move(y));
  return dataset;
}

Tensor MakeCleanSeries(const AnomalyOpts& opts) {
  Rng rng(opts.seed);
  Tensor out = Tensor::Zeros({opts.num_channels, opts.total_length});
  float* p = out.data();
  for (int64_t d = 0; d < opts.num_channels; ++d) {
    const float amp = static_cast<float>(rng.Uniform(0.9, 1.1));
    const float phase = static_cast<float>(rng.Uniform(0.0, 2.0 * M_PI));
    const float harmonic_amp = static_cast<float>(rng.Uniform(0.2, 0.4));
    float* row = p + d * opts.total_length;
    for (int64_t t = 0; t < opts.total_length; ++t) {
      const float angle =
          2.0f * static_cast<float>(M_PI) * static_cast<float>(t) /
          opts.base_period;
      row[t] = amp * std::sin(angle + phase) +
               harmonic_amp * std::sin(2.0f * angle + phase) +
               opts.noise * static_cast<float>(rng.Normal());
    }
  }
  return out;
}

AnomalySeries MakeAnomalySeries(const AnomalyOpts& opts) {
  AnomalySeries out;
  out.series = MakeCleanSeries(opts);
  out.labels = Tensor::Zeros({opts.total_length});
  Rng rng(opts.seed ^ 0xA45ULL);
  float* p = out.series.data();
  float* lab = out.labels.data();
  const int64_t t_long = opts.total_length;
  const int64_t d = opts.num_channels;
  for (int64_t k = 0; k < opts.num_anomalies; ++k) {
    const auto type = static_cast<AnomalyType>(k % 4);
    const int64_t channel =
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(d)));
    float* row = p + channel * t_long;
    switch (type) {
      case AnomalyType::kSpike: {
        const int64_t len = rng.UniformInt(1, 3);
        const int64_t start = rng.UniformInt(0, t_long - len - 1);
        const float sign = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
        for (int64_t j = 0; j < len; ++j) {
          row[start + j] += sign * static_cast<float>(rng.Uniform(4.0, 6.0));
          lab[start + j] = 1.0f;
        }
        break;
      }
      case AnomalyType::kLevelShift: {
        const int64_t len = rng.UniformInt(20, 40);
        const int64_t start = rng.UniformInt(0, t_long - len - 1);
        const float shift =
            (rng.Bernoulli(0.5) ? 1.0f : -1.0f) *
            static_cast<float>(rng.Uniform(1.5, 2.5));
        for (int64_t j = 0; j < len; ++j) {
          row[start + j] += shift;
          lab[start + j] = 1.0f;
        }
        break;
      }
      case AnomalyType::kNoiseBurst: {
        const int64_t len = rng.UniformInt(15, 30);
        const int64_t start = rng.UniformInt(0, t_long - len - 1);
        for (int64_t j = 0; j < len; ++j) {
          row[start + j] += 4.0f * opts.noise * 6.0f *
                            static_cast<float>(rng.Normal());
          lab[start + j] = 1.0f;
        }
        break;
      }
      case AnomalyType::kFlatline: {
        const int64_t len = rng.UniformInt(20, 35);
        const int64_t start = rng.UniformInt(0, t_long - len - 1);
        const float level = row[start];
        for (int64_t j = 0; j < len; ++j) {
          row[start + j] = level;
          lab[start + j] = 1.0f;
        }
        break;
      }
    }
  }
  return out;
}

Tensor MakeMissingMask(const Shape& shape, float missing_rate,
                       float mean_block_len, Rng* rng) {
  UNITS_CHECK(missing_rate >= 0.0f && missing_rate < 1.0f);
  UNITS_CHECK_GE(mean_block_len, 1.0f);
  Tensor mask = Tensor::Ones(shape);
  if (missing_rate == 0.0f) {
    return mask;
  }
  float* m = mask.data();
  const int64_t n = mask.numel();
  // Two-state Markov chain over the last axis: P(observed -> missing) tuned
  // so the stationary missing rate matches `missing_rate`.
  const float p_leave_missing = 1.0f / mean_block_len;
  const float p_enter_missing =
      missing_rate * p_leave_missing / std::max(1e-6f, 1.0f - missing_rate);
  const int64_t inner = shape.empty() ? n : shape.back();
  for (int64_t start = 0; start < n; start += inner) {
    bool missing = rng->Bernoulli(missing_rate);
    for (int64_t j = 0; j < inner; ++j) {
      m[start + j] = missing ? 0.0f : 1.0f;
      const float p_flip = missing ? p_leave_missing : p_enter_missing;
      if (rng->Bernoulli(p_flip)) {
        missing = !missing;
      }
    }
  }
  return mask;
}

AnomalySeries MakeDriftingStream(const DriftingStreamOpts& opts) {
  UNITS_CHECK_GE(opts.num_channels, 1);
  UNITS_CHECK_GE(opts.total_length, 1);
  AnomalySeries out;
  out.series = Tensor::Zeros({opts.num_channels, opts.total_length});
  out.labels = Tensor::Zeros({opts.total_length});
  Rng rng(opts.seed);
  float* p = out.series.data();
  const int64_t t_long = opts.total_length;
  for (int64_t d = 0; d < opts.num_channels; ++d) {
    // Distinct baselines per channel keep the per-channel statistics (and
    // hence rolling normalization) genuinely multivariate.
    const float level0 =
        opts.base_level * (1.0f + 0.5f * static_cast<float>(d));
    const float phase = static_cast<float>(rng.Uniform(0.0, 2.0 * M_PI));
    float* row = p + d * t_long;
    for (int64_t t = 0; t < t_long; ++t) {
      const float progress =
          static_cast<float>(t) / static_cast<float>(t_long);
      // Amplitude grows from 1x to scale_drift x across the stream.
      const float scale = 1.0f + (opts.scale_drift - 1.0f) * progress;
      const float angle =
          2.0f * static_cast<float>(M_PI) * static_cast<float>(t) /
          opts.base_period;
      row[t] = level0 + opts.level_drift * static_cast<float>(t) +
               scale * (opts.season_amp * std::sin(angle + phase) +
                        opts.noise * static_cast<float>(rng.Normal()));
    }
  }
  // Inject alternating spikes and short level shifts, labeled per step.
  Rng anomaly_rng(opts.seed ^ 0xD81FULL);
  float* lab = out.labels.data();
  for (int64_t k = 0; k < opts.num_anomalies; ++k) {
    const int64_t channel = static_cast<int64_t>(
        anomaly_rng.UniformInt(static_cast<uint64_t>(opts.num_channels)));
    float* row = p + channel * t_long;
    const bool spike = (k % 2 == 0);
    const int64_t len = spike ? anomaly_rng.UniformInt(1, 3)
                              : anomaly_rng.UniformInt(10, 20);
    if (t_long <= len + 1) {
      continue;
    }
    const int64_t start = anomaly_rng.UniformInt(0, t_long - len - 1);
    const float magnitude =
        (anomaly_rng.Bernoulli(0.5) ? 1.0f : -1.0f) *
        static_cast<float>(anomaly_rng.Uniform(6.0, 10.0)) *
        (opts.season_amp + opts.noise);
    for (int64_t j = 0; j < len; ++j) {
      row[start + j] += magnitude;
      lab[start + j] = 1.0f;
    }
  }
  return out;
}

}  // namespace units::data
