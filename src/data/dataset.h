#ifndef UNITS_DATA_DATASET_H_
#define UNITS_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "tensor/tensor.h"

namespace units::data {

/// A collection of fixed-length multivariate time series, following the
/// paper's formulation X in R^{N x D x T}, with optional integer labels
/// (classification / clustering), optional forecast targets Y in
/// R^{N x D x H}, and optional per-timestep anomaly labels in {0,1}^{N x T}.
class TimeSeriesDataset {
 public:
  TimeSeriesDataset() = default;

  /// Dataset of series only (unlabeled).
  explicit TimeSeriesDataset(Tensor values);

  /// Labeled dataset (labels.size() must equal N).
  TimeSeriesDataset(Tensor values, std::vector<int64_t> labels);

  int64_t num_samples() const { return values_.ndim() == 3 ? values_.dim(0) : 0; }
  int64_t num_channels() const { return values_.ndim() == 3 ? values_.dim(1) : 0; }
  int64_t length() const { return values_.ndim() == 3 ? values_.dim(2) : 0; }

  const Tensor& values() const { return values_; }
  Tensor& mutable_values() { return values_; }

  bool has_labels() const { return !labels_.empty(); }
  const std::vector<int64_t>& labels() const { return labels_; }
  void set_labels(std::vector<int64_t> labels);

  bool has_targets() const { return targets_.numel() > 0; }
  const Tensor& targets() const { return targets_; }
  void set_targets(Tensor targets);

  bool has_point_labels() const { return point_labels_.numel() > 0; }
  const Tensor& point_labels() const { return point_labels_; }
  void set_point_labels(Tensor point_labels);

  /// Number of distinct labels (0 when unlabeled).
  int64_t NumClasses() const;

  /// Sub-dataset of the given sample indices (copies data; carries labels,
  /// targets, and point labels when present).
  TimeSeriesDataset Subset(const std::vector<int64_t>& indices) const;

  /// Random train/test split. When the dataset is labeled the split is
  /// stratified per class so small label budgets keep all classes.
  std::pair<TimeSeriesDataset, TimeSeriesDataset> TrainTestSplit(
      double train_fraction, Rng* rng) const;

  /// Keeps labels on a random `labeled_fraction` of samples and returns
  /// {labeled subset, full unlabeled copy}; used for the partial-labeling
  /// experiments. Stratified; keeps at least one sample per class.
  std::pair<TimeSeriesDataset, TimeSeriesDataset> PartialLabelSplit(
      double labeled_fraction, Rng* rng) const;

  /// One-line summary for logs.
  std::string Description() const;

 private:
  Tensor values_;        // [N, D, T]
  std::vector<int64_t> labels_;
  Tensor targets_;       // [N, D, H] when present
  Tensor point_labels_;  // [N, T] when present
};

}  // namespace units::data

#endif  // UNITS_DATA_DATASET_H_
