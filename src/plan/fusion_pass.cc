#include "plan/fusion_pass.h"

#include <algorithm>
#include <utility>

#include "base/check.h"
#include "base/parallel.h"
#include "tensor/scalar_fns.h"

namespace units::plan {

namespace {

/// Same grain as the dynamic elementwise kernels in tensor_ops.cc, so a
/// fused sweep partitions work across threads exactly like the ops it
/// replaces (and stays thread-count invariant).
constexpr int64_t kSweepGrain = 1 << 15;

/// Marks `id` and its whole alias chain in `flags`.
void MarkChain(const Graph& g, int id, std::vector<char>* flags) {
  for (int v = id; v >= 0; v = g.values[static_cast<size_t>(v)].alias_of) {
    (*flags)[static_cast<size_t>(v)] = 1;
  }
}

/// Drops nodes whose outputs can never reach a graph output.
void RemoveDeadNodes(Graph* g) {
  std::vector<char> needed(g->values.size(), 0);
  for (int id : g->outputs) {
    MarkChain(*g, id, &needed);
  }
  std::vector<Node> kept;
  kept.reserve(g->nodes.size());
  for (auto it = g->nodes.rbegin(); it != g->nodes.rend(); ++it) {
    if (!needed[static_cast<size_t>(it->output)]) {
      continue;
    }
    for (int in : it->inputs) {
      MarkChain(*g, in, &needed);
    }
    kept.push_back(std::move(*it));
  }
  std::reverse(kept.begin(), kept.end());
  g->nodes = std::move(kept);
}

/// Compiles per-leaf broadcast strides against the sweep's output shape.
void CompileSweepLeaves(const Graph& g, Node* n) {
  const Shape& os = g.values[static_cast<size_t>(n->output)].shape;
  const int nd = static_cast<int>(os.size());
  n->out_dims.assign(os.begin(), os.end());
  n->leaf_strides.clear();
  n->leaf_contiguous.clear();
  for (int leaf : n->inputs) {
    const Shape& ls = g.values[static_cast<size_t>(leaf)].shape;
    n->leaf_contiguous.push_back(ls == os);
    // Right-aligned broadcast: missing leading dims and size-1 dims read
    // with stride 0.
    const int lnd = static_cast<int>(ls.size());
    UNITS_CHECK_LE(lnd, nd);
    std::vector<int64_t> lstr(static_cast<size_t>(lnd));
    int64_t acc = 1;
    for (int d = lnd - 1; d >= 0; --d) {
      lstr[static_cast<size_t>(d)] = acc;
      acc *= ls[static_cast<size_t>(d)];
    }
    std::vector<int64_t> strides(static_cast<size_t>(nd), 0);
    const int off = nd - lnd;
    for (int d = off; d < nd; ++d) {
      const int64_t ldim = ls[static_cast<size_t>(d - off)];
      if (ldim == os[static_cast<size_t>(d)]) {
        strides[static_cast<size_t>(d)] = lstr[static_cast<size_t>(d - off)];
      } else {
        UNITS_CHECK_EQ(ldim, 1);  // broadcast dim
        strides[static_cast<size_t>(d)] = 0;
      }
    }
    n->leaf_strides.push_back(std::move(strides));
  }
}

}  // namespace

void FusePass(Graph* g) {
  RemoveDeadNodes(g);

  // Consumer counts and output flags, attributed through alias chains: a
  // use (or output) of a reshaped view pins the root buffer too.
  std::vector<int> consumers(g->values.size(), 0);
  std::vector<char> is_output(g->values.size(), 0);
  for (const Node& n : g->nodes) {
    for (int in : n.inputs) {
      for (int v = in; v >= 0; v = g->values[static_cast<size_t>(v)].alias_of) {
        ++consumers[static_cast<size_t>(v)];
      }
    }
  }
  for (int id : g->outputs) {
    MarkChain(*g, id, &is_output);
    for (int v = id; v >= 0; v = g->values[static_cast<size_t>(v)].alias_of) {
      ++consumers[static_cast<size_t>(v)];
    }
  }

  std::vector<Node> out_nodes;
  out_nodes.reserve(g->nodes.size());
  // Value id -> index in out_nodes of the live sweep producing it.
  std::vector<int> group_of(g->values.size(), -1);
  std::vector<char> absorbed(g->nodes.size(), 0);  // indexed like out_nodes

  for (Node& n : g->nodes) {
    if (!IsElementwise(n.kind)) {
      out_nodes.push_back(std::move(n));
      absorbed[out_nodes.size() - 1] = 0;
      continue;
    }
    // Pick at most one producer to absorb (the chain is linear): the first
    // input that is a live sweep feeding only us, not an output, with our
    // exact output shape.
    int absorb_idx = -1;
    int absorb_operand = -1;
    for (int oi = 0; oi < static_cast<int>(n.inputs.size()); ++oi) {
      const int vid = n.inputs[static_cast<size_t>(oi)];
      const int gi = group_of[static_cast<size_t>(vid)];
      if (gi < 0) {
        continue;
      }
      if (consumers[static_cast<size_t>(vid)] != 1 ||
          is_output[static_cast<size_t>(vid)]) {
        continue;
      }
      if (g->values[static_cast<size_t>(vid)].shape !=
          g->values[static_cast<size_t>(n.output)].shape) {
        continue;
      }
      absorb_idx = gi;
      absorb_operand = oi;
      break;
    }

    Node sweep;
    sweep.kind = OpKind::kFusedSweep;
    sweep.output = n.output;
    if (absorb_idx >= 0) {
      Node& prod = out_nodes[static_cast<size_t>(absorb_idx)];
      sweep.sweep = std::move(prod.sweep);
      sweep.inputs = std::move(prod.inputs);
      absorbed[static_cast<size_t>(absorb_idx)] = 1;
      group_of[static_cast<size_t>(prod.output)] = -1;
    }
    auto leaf_index = [&sweep](int vid) {
      for (size_t i = 0; i < sweep.inputs.size(); ++i) {
        if (sweep.inputs[i] == vid) {
          return static_cast<int>(i);
        }
      }
      sweep.inputs.push_back(vid);
      return static_cast<int>(sweep.inputs.size() - 1);
    };
    SweepStep st;
    st.kind = n.kind;
    st.scalar = n.scalar;
    st.a = absorb_operand == 0 ? -1 : leaf_index(n.inputs[0]);
    if (n.inputs.size() > 1) {
      st.b = absorb_operand == 1 ? -1 : leaf_index(n.inputs[1]);
    }
    sweep.sweep.push_back(st);
    group_of[static_cast<size_t>(n.output)] =
        static_cast<int>(out_nodes.size());
    out_nodes.push_back(std::move(sweep));
    absorbed[out_nodes.size() - 1] = 0;
  }

  std::vector<Node> compacted;
  compacted.reserve(out_nodes.size());
  for (size_t i = 0; i < out_nodes.size(); ++i) {
    if (!absorbed[i]) {
      compacted.push_back(std::move(out_nodes[i]));
    }
  }
  for (Node& n : compacted) {
    if (n.kind == OpKind::kFusedSweep) {
      CompileSweepLeaves(*g, &n);
    }
  }
  g->nodes = std::move(compacted);
}

namespace {

/// Elements per L1-resident tile of the contiguous sweep path. 4096 floats
/// = 16 KiB: half a typical L1d, leaving room for one leaf stream.
constexpr int64_t kSweepTile = 4096;

/// Applies one sweep step over `len` contiguous elements. The switch runs
/// once per (step, tile) instead of once per element, and every case is a
/// tight loop the compiler can vectorize — this is what makes a fused
/// sweep beat the chain of dynamic kernels it replaced instead of losing
/// to interpretation overhead. Uses the same scalar:: functions as the
/// dynamic kernels, in the same per-element order, so results stay
/// bitwise identical. In-place (`dst` == `a` or `b`) is fine: element i
/// reads only index i before writing it.
void ApplyStepSpan(const SweepStep& s, const float* a, const float* b,
                   float* dst, int64_t len) {
  switch (s.kind) {
    case OpKind::kAdd:
      for (int64_t i = 0; i < len; ++i) dst[i] = scalar::Add(a[i], b[i]);
      break;
    case OpKind::kSub:
      for (int64_t i = 0; i < len; ++i) dst[i] = scalar::Sub(a[i], b[i]);
      break;
    case OpKind::kMul:
      for (int64_t i = 0; i < len; ++i) dst[i] = scalar::Mul(a[i], b[i]);
      break;
    case OpKind::kDiv:
      for (int64_t i = 0; i < len; ++i) dst[i] = scalar::Div(a[i], b[i]);
      break;
    case OpKind::kNeg:
      for (int64_t i = 0; i < len; ++i) dst[i] = scalar::Neg(a[i]);
      break;
    case OpKind::kAddScalar:
      for (int64_t i = 0; i < len; ++i) {
        dst[i] = scalar::AddScalar(a[i], s.scalar);
      }
      break;
    case OpKind::kMulScalar:
      for (int64_t i = 0; i < len; ++i) {
        dst[i] = scalar::MulScalar(a[i], s.scalar);
      }
      break;
    case OpKind::kPowScalar:
      for (int64_t i = 0; i < len; ++i) {
        dst[i] = scalar::PowScalar(a[i], s.scalar);
      }
      break;
    case OpKind::kRelu:
      for (int64_t i = 0; i < len; ++i) dst[i] = scalar::Relu(a[i]);
      break;
    case OpKind::kLeakyRelu:
      for (int64_t i = 0; i < len; ++i) {
        dst[i] = scalar::LeakyRelu(a[i], s.scalar);
      }
      break;
    case OpKind::kGelu:
      for (int64_t i = 0; i < len; ++i) dst[i] = scalar::Gelu(a[i]);
      break;
    case OpKind::kTanh:
      for (int64_t i = 0; i < len; ++i) dst[i] = scalar::Tanh(a[i]);
      break;
    case OpKind::kSigmoid:
      for (int64_t i = 0; i < len; ++i) dst[i] = scalar::Sigmoid(a[i]);
      break;
    case OpKind::kExp:
      for (int64_t i = 0; i < len; ++i) dst[i] = scalar::Exp(a[i]);
      break;
    case OpKind::kLog:
      for (int64_t i = 0; i < len; ++i) dst[i] = scalar::Log(a[i]);
      break;
    case OpKind::kSqrt:
      for (int64_t i = 0; i < len; ++i) dst[i] = scalar::Sqrt(a[i]);
      break;
    case OpKind::kSquare:
      for (int64_t i = 0; i < len; ++i) dst[i] = scalar::Square(a[i]);
      break;
    case OpKind::kAbs:
      for (int64_t i = 0; i < len; ++i) dst[i] = scalar::Abs(a[i]);
      break;
    default:
      UNITS_CHECK_MSG(false, "non-elementwise op in sweep");
  }
}

}  // namespace

void ExecuteSweep(const Node& node, const std::vector<const float*>& leaf_data,
                  float* out, int64_t numel) {
  UNITS_CHECK_EQ(static_cast<int64_t>(leaf_data.size()),
                 static_cast<int64_t>(node.inputs.size()));
  const std::vector<SweepStep>& steps = node.sweep;
  bool all_contig = true;
  for (bool c : node.leaf_contiguous) {
    all_contig = all_contig && c;
  }

  if (all_contig) {
    // Tile the range so intermediate chain values live in one stack buffer
    // (one pass of memory traffic per leaf + output, however long the
    // chain), with each step a vectorized span. The last step writes the
    // output range directly. Partitioning is ParallelFor over the same
    // grain as the dynamic kernels; tiling within a partition does not
    // change per-element results, so this stays thread-count invariant.
    const size_t nsteps = steps.size();
    base::ParallelFor(0, numel, kSweepGrain, [&](int64_t lo, int64_t hi) {
      alignas(64) float acc[kSweepTile];
      for (int64_t t0 = lo; t0 < hi; t0 += kSweepTile) {
        const int64_t len = std::min<int64_t>(kSweepTile, hi - t0);
        for (size_t si = 0; si < nsteps; ++si) {
          const SweepStep& s = steps[si];
          const float* a =
              s.a < 0 ? acc : leaf_data[static_cast<size_t>(s.a)] + t0;
          const float* b =
              s.b < 0 ? acc : leaf_data[static_cast<size_t>(s.b)] + t0;
          float* dst = si + 1 == nsteps ? out + t0 : acc;
          ApplyStepSpan(s, a, b, dst, len);
        }
      }
    });
    return;
  }

  // Broadcast path: every leaf's innermost-dim stride is 1 (dense) or 0
  // (broadcast), so runs along the innermost output dimension execute as
  // the same vectorized spans as the contiguous path — a broadcast operand
  // is constant over a run and gets splatted into an L1-resident buffer
  // first. The odometer only advances between runs, not per element.
  const std::vector<int64_t>* strides = node.leaf_strides.data();
  const size_t nleaf = leaf_data.size();
  const size_t nd = node.out_dims.size();
  const int64_t inner = nd == 0 ? 1 : node.out_dims[nd - 1];
  const size_t nsteps = steps.size();
  base::ParallelFor(0, numel, kSweepGrain, [&](int64_t lo, int64_t hi) {
    std::vector<int64_t> digits(nd, 0);
    std::vector<int64_t> offs(nleaf, 0);
    // Initialize digits and per-leaf offsets from flat index `lo`.
    {
      int64_t rem = lo;
      for (size_t d = nd; d-- > 0;) {
        const int64_t dim = node.out_dims[d];
        digits[d] = dim == 0 ? 0 : rem % dim;
        rem = dim == 0 ? 0 : rem / dim;
      }
      for (size_t l = 0; l < nleaf; ++l) {
        int64_t o = 0;
        for (size_t d = 0; d < nd; ++d) {
          o += digits[d] * strides[l][d];
        }
        offs[l] = o;
      }
    }
    alignas(64) float acc[kSweepTile];
    alignas(64) float splat_a[kSweepTile];
    alignas(64) float splat_b[kSweepTile];
    int64_t i = lo;
    while (i < hi) {
      // Run to the end of the inner row, the partition, or the tile cap.
      const int64_t inner_pos = nd == 0 ? 0 : digits[nd - 1];
      const int64_t len =
          std::min({inner - inner_pos, hi - i, kSweepTile});
      for (size_t si = 0; si < nsteps; ++si) {
        const SweepStep& s = steps[si];
        const float* a = acc;
        if (s.a >= 0) {
          const size_t l = static_cast<size_t>(s.a);
          const float* base = leaf_data[l] + offs[l];
          if (nd > 0 && strides[l][nd - 1] == 0) {
            std::fill(splat_a, splat_a + len, *base);
            a = splat_a;
          } else {
            a = base;
          }
        }
        const float* b = acc;
        if (s.b >= 0) {
          const size_t l = static_cast<size_t>(s.b);
          const float* base = leaf_data[l] + offs[l];
          if (nd > 0 && strides[l][nd - 1] == 0) {
            std::fill(splat_b, splat_b + len, *base);
            b = splat_b;
          } else {
            b = base;
          }
        }
        float* dst = si + 1 == nsteps ? out + i : acc;
        ApplyStepSpan(s, a, b, dst, len);
      }
      i += len;
      if (i >= hi) {
        break;
      }
      // Advance the odometer by `len` along the inner dim, with carries.
      digits[nd - 1] += len;
      for (size_t l = 0; l < nleaf; ++l) {
        offs[l] += len * strides[l][nd - 1];
      }
      for (size_t d = nd; d-- > 0;) {
        if (digits[d] < node.out_dims[d]) {
          break;
        }
        // Carry: reset this digit, roll offsets back, bump the next digit.
        for (size_t l = 0; l < nleaf; ++l) {
          offs[l] -= node.out_dims[d] * strides[l][d];
        }
        digits[d] = 0;
        if (d == 0) {
          break;
        }
        ++digits[d - 1];
        for (size_t l = 0; l < nleaf; ++l) {
          offs[l] += strides[l][d - 1];
        }
      }
    }
  });
}

}  // namespace units::plan
