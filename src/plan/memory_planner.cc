#include "plan/memory_planner.h"

#include <algorithm>

#include "base/check.h"

namespace units::plan {

namespace {

/// 64-byte alignment, in floats.
constexpr int64_t kAlignFloats = 16;

int64_t AlignUp(int64_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

/// First-fit free-list allocator over an open-ended arena. Blocks are kept
/// sorted by offset and coalesced on free.
class Arena {
 public:
  int64_t Alloc(int64_t size) {
    size = AlignUp(size);
    if (size == 0) {
      return 0;
    }
    for (size_t i = 0; i < blocks_.size(); ++i) {
      if (blocks_[i].size >= size) {
        const int64_t off = blocks_[i].offset;
        blocks_[i].offset += size;
        blocks_[i].size -= size;
        if (blocks_[i].size == 0) {
          blocks_.erase(blocks_.begin() + static_cast<int64_t>(i));
        }
        return off;
      }
    }
    const int64_t off = end_;
    end_ += size;
    return off;
  }

  void Free(int64_t offset, int64_t size) {
    size = AlignUp(size);
    if (size == 0) {
      return;
    }
    Block b{offset, size};
    auto it = std::lower_bound(
        blocks_.begin(), blocks_.end(), b,
        [](const Block& x, const Block& y) { return x.offset < y.offset; });
    it = blocks_.insert(it, b);
    // Coalesce with the next block, then with the previous one.
    const size_t i = static_cast<size_t>(it - blocks_.begin());
    if (i + 1 < blocks_.size() &&
        blocks_[i].offset + blocks_[i].size == blocks_[i + 1].offset) {
      blocks_[i].size += blocks_[i + 1].size;
      blocks_.erase(blocks_.begin() + static_cast<int64_t>(i) + 1);
    }
    if (i > 0 &&
        blocks_[i - 1].offset + blocks_[i - 1].size == blocks_[i].offset) {
      blocks_[i - 1].size += blocks_[i].size;
      blocks_.erase(blocks_.begin() + static_cast<int64_t>(i));
    }
  }

  int64_t end() const { return end_; }

 private:
  struct Block {
    int64_t offset;
    int64_t size;
  };
  std::vector<Block> blocks_;
  int64_t end_ = 0;
};

}  // namespace

MemoryPlan PlanMemory(Graph* g) {
  const int num_steps = static_cast<int>(g->nodes.size());

  // Materialize workspaces as values that live only during their step.
  for (int s = 0; s < num_steps; ++s) {
    Node& n = g->nodes[static_cast<size_t>(s)];
    n.workspace_ids.clear();
    for (const Shape& ws : n.workspaces) {
      Value v;
      v.id = static_cast<int>(g->values.size());
      v.shape = ws;
      g->values.push_back(v);
      n.workspace_ids.push_back(g->values.back().id);
    }
  }

  const size_t nv = g->values.size();
  // def[v]: step whose node writes root value v (-1 for the input, which is
  // staged before step 0). last_use[v]: last step reading v; graph outputs
  // are read after the schedule finishes (step num_steps).
  std::vector<int> def(nv, -2);  // -2 = not materialized (const/alias/dead)
  std::vector<int> last_use(nv, -2);

  const int input_root = g->input_id;
  def[static_cast<size_t>(input_root)] = -1;

  auto touch = [&](int id, int step) {
    const int root = g->ResolveRoot(id);
    if (g->values[static_cast<size_t>(root)].is_const) {
      return;
    }
    last_use[static_cast<size_t>(root)] =
        std::max(last_use[static_cast<size_t>(root)], step);
  };

  for (int s = 0; s < num_steps; ++s) {
    const Node& n = g->nodes[static_cast<size_t>(s)];
    for (int in : n.inputs) {
      touch(in, s);
    }
    const int out_root = g->ResolveRoot(n.output);
    UNITS_CHECK(!g->values[static_cast<size_t>(out_root)].is_const);
    def[static_cast<size_t>(out_root)] = s;
    for (int ws : n.workspace_ids) {
      def[static_cast<size_t>(ws)] = s;
      last_use[static_cast<size_t>(ws)] = s;
    }
  }
  for (int id : g->outputs) {
    touch(id, num_steps);
  }
  // The staged input must stay live through its last reader even if the
  // forward never touches it (degenerate constant programs).
  if (last_use[static_cast<size_t>(input_root)] < -1) {
    last_use[static_cast<size_t>(input_root)] = -1;
  }

  // expire_at[s]: roots to free right before step s allocates. A value last
  // read at step t is freed at step t+1, so step t's own outputs can never
  // land on top of its inputs.
  std::vector<std::vector<int>> expire_at(static_cast<size_t>(num_steps) + 1);
  for (size_t v = 0; v < nv; ++v) {
    if (def[v] == -2) {
      continue;
    }
    const int lu = std::max(last_use[v], def[v]);
    if (lu + 1 <= num_steps) {
      expire_at[static_cast<size_t>(lu + 1)].push_back(static_cast<int>(v));
    }
  }

  MemoryPlan plan;
  plan.offsets.assign(nv, -1);
  Arena arena;

  auto numel_of = [&](size_t v) { return NumElements(g->values[v].shape); };

  plan.offsets[static_cast<size_t>(input_root)] =
      arena.Alloc(numel_of(static_cast<size_t>(input_root)));

  for (int s = 0; s < num_steps; ++s) {
    for (int v : expire_at[static_cast<size_t>(s)]) {
      arena.Free(plan.offsets[static_cast<size_t>(v)],
                 numel_of(static_cast<size_t>(v)));
    }
    const Node& n = g->nodes[static_cast<size_t>(s)];
    const int out_root = g->ResolveRoot(n.output);
    plan.offsets[static_cast<size_t>(out_root)] =
        arena.Alloc(numel_of(static_cast<size_t>(out_root)));
    for (int ws : n.workspace_ids) {
      plan.offsets[static_cast<size_t>(ws)] =
          arena.Alloc(numel_of(static_cast<size_t>(ws)));
    }
  }

  // Resolve alias offsets to their roots so execution can bind every value
  // without chasing chains.
  for (size_t v = 0; v < nv; ++v) {
    const Value& val = g->values[v];
    if (val.is_const || val.alias_of < 0) {
      continue;
    }
    const int root = g->ResolveRoot(static_cast<int>(v));
    plan.offsets[v] = plan.offsets[static_cast<size_t>(root)];
  }

  plan.arena_floats = arena.end();
  return plan;
}

}  // namespace units::plan
