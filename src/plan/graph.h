#ifndef UNITS_PLAN_GRAPH_H_
#define UNITS_PLAN_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/quant.h"
#include "tensor/tensor.h"

namespace units::plan {

/// Operation kinds a captured eval graph can contain. The set mirrors the
/// autograd ops that appear in UniTS eval forwards; anything else poisons
/// the trace and the pipeline falls back to the dynamic walk (the parity
/// oracle) for that program.
enum class OpKind {
  // Elementwise — fusable into kFusedSweep chains.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNeg,
  kAddScalar,
  kMulScalar,
  kPowScalar,
  kRelu,
  kLeakyRelu,
  kGelu,
  kTanh,
  kSigmoid,
  kExp,
  kLog,
  kSqrt,
  kSquare,
  kAbs,
  // Structured kernels.
  kMatMul,
  kBatchedMatMul,
  kTranspose,
  kReshape,  // pure alias: output shares the input's buffer
  kSoftmax,
  kLogSoftmax,
  kAttention,    // fused streaming attention; workspace [B, hd, T]
  kSum,          // axis reduction
  kMaxPool,      // MaxPoolOverTime values: max over axis 2
  kSlice,
  kConcat,
  kConv1dCore,   // im2col + GEMM + unpack (bias is traced as a kAdd after)
  kQuantLinear,  // int8 quantized Linear incl. fused bias (DESIGN.md §17)
  // Produced by the fusion pass only, never traced directly.
  kFusedSweep,
};

const char* OpKindName(OpKind k);

/// True for ops that compute out[i] = f(in...[i]) pointwise — the candidates
/// the fusion pass may merge into a single memory sweep.
bool IsElementwise(OpKind k);

/// SSA value in a captured graph. Exactly one of three storage classes:
/// constants (weights / eval statistics, captured at trace time and shared
/// with the module parameters), the chunk input, or arena-resident
/// intermediates (everything else). Reshape outputs alias their input's
/// buffer via `alias_of`.
struct Value {
  int id = -1;
  Shape shape;
  bool is_const = false;
  Tensor const_tensor;  // defined iff is_const
  bool is_input = false;
  int alias_of = -1;  // value id this is a reshaped view of (-1 = none)
};

/// One scalar step of a fused elementwise sweep. Operand encoding: -1 means
/// the running chain value (the previous step's result); >= 0 indexes into
/// the node's `inputs` (an outside leaf, possibly broadcast). Unary kinds
/// read only `a`; scalar kinds (kAddScalar, kMulScalar, kPowScalar,
/// kLeakyRelu) read `a` and `scalar`.
struct SweepStep {
  OpKind kind = OpKind::kAdd;
  int a = -1;
  int b = -1;
  float scalar = 0.0f;
};

/// One scheduled op of a captured graph.
struct Node {
  OpKind kind = OpKind::kAdd;
  std::vector<int> inputs;  // value ids (leaf ids for kFusedSweep)
  int output = -1;          // value id

  // Attributes (meaning depends on kind).
  int axis0 = 0;
  int axis1 = 0;
  bool keepdim = false;
  float scalar = 0.0f;  // AddScalar/MulScalar/PowScalar/LeakyRelu slope,
                        // attention scale
  int64_t i0 = 0;       // slice start / conv kernel
  int64_t i1 = 0;       // slice length / conv dilation
  int64_t i2 = 0;       // conv pad_left
  int64_t i3 = 0;       // conv pad_right
  Tensor tensor_attr;   // conv reshaped weight [Cout, Cin*k] /
                        // attention dropout mask (empty in eval)

  /// kQuantLinear only: the layer's packed int8 weights + scales + bias,
  /// shared with the owning nn::Linear (immutable after quantization; a
  /// re-quantize attaches a fresh object and invalidates cached plans).
  std::shared_ptr<const quant::QuantizedLinearWeights> qlinear;

  /// Scratch buffers this node needs while executing (attention's K^T
  /// panel, conv's column/GEMM planes). The memory planner materializes
  /// them as arena values live only during this step.
  std::vector<Shape> workspaces;
  std::vector<int> workspace_ids;  // filled by the planner

  // kFusedSweep only: the chain program plus per-leaf read strides against
  // the output shape (stride 0 on broadcast dims). `leaf_contiguous[i]` is
  // true when leaf i has exactly the output shape (flat-index fast path);
  // `out_dims` is the output shape the strides were compiled against (the
  // odometer dims of the broadcast path).
  std::vector<SweepStep> sweep;
  std::vector<std::vector<int64_t>> leaf_strides;
  std::vector<bool> leaf_contiguous;
  std::vector<int64_t> out_dims;
};

/// A captured eval program: flat schedule over SSA values, one designated
/// chunk input, and the ordered output values. `captured_outputs` holds the
/// tensors the traced forward actually produced — the oracle the plan is
/// validated against bit for bit before it is ever used.
struct Graph {
  std::vector<Value> values;
  std::vector<Node> nodes;
  int input_id = -1;
  std::vector<int> outputs;
  std::vector<Tensor> captured_outputs;

  /// Follows alias links to the storage root of `id`.
  int ResolveRoot(int id) const {
    while (values[static_cast<size_t>(id)].alias_of >= 0) {
      id = values[static_cast<size_t>(id)].alias_of;
    }
    return id;
  }
};

}  // namespace units::plan

#endif  // UNITS_PLAN_GRAPH_H_
