#ifndef UNITS_PLAN_FUSION_PASS_H_
#define UNITS_PLAN_FUSION_PASS_H_

#include <cstdint>
#include <vector>

#include "plan/graph.h"

namespace units::plan {

/// Rewrites the captured graph in place:
///   1. Dead-code elimination (ops whose results never reach an output).
///   2. Greedy linear-chain fusion: every elementwise node becomes a
///      kFusedSweep; a sweep absorbs its producer when the producer is
///      itself elementwise, feeds only this node, is not a graph output,
///      and has exactly the consumer's output shape — the same legality
///      rule torch's graph fuser applies to pointwise chains. Absorbed
///      intermediates are never materialized: one memory sweep evaluates
///      the whole chain (bias→GELU, residual-add→LayerNorm-normalize,
///      scale→tanh, ...).
/// Leaf read strides (broadcast-aware) are compiled into each sweep node.
void FusePass(Graph* graph);

/// Executes a compiled kFusedSweep node. `leaf_data[i]` is the buffer of
/// node.inputs[i]; `out` has `numel` elements of shape
/// graph.values[node.output].shape. Chunk partitioning matches the dynamic
/// elementwise kernels (grain 1<<15, thread-count invariant).
void ExecuteSweep(const Node& node, const std::vector<const float*>& leaf_data,
                  float* out, int64_t numel);

}  // namespace units::plan

#endif  // UNITS_PLAN_FUSION_PASS_H_
