#ifndef UNITS_PLAN_PLAN_H_
#define UNITS_PLAN_PLAN_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "autograd/variable.h"
#include "plan/graph.h"
#include "plan/memory_planner.h"

namespace units::plan {

/// Execution mode, read from the UNITS_PLAN environment variable on every
/// program run (so tests can flip it at runtime):
///   unset / "planned"          -> captured plans (default)
///   "dynamic" / "off" / "0"    -> always the dynamic autograd walk
///   "verify"                   -> run both, abort on any bitwise mismatch
enum class Mode { kPlanned, kDynamic, kVerify };
Mode ActiveMode();

/// A captured, fused, arena-scheduled eval program for one exact input
/// shape. Built by Capture(): trace one real forward, fuse elementwise
/// chains, plan buffer reuse, then replay against the traced outputs and
/// refuse to exist on any bitwise deviation. Thereafter Run() executes the
/// flat schedule with zero tensor allocations in steady state (execution
/// states are pooled; concurrent Run()s each get their own arena).
class EvalPlan {
 public:
  using EvalFn =
      std::function<std::vector<autograd::Variable>(const autograd::Variable&)>;

  /// Traces `fn` on `x_chunk` and compiles. Returns nullptr (with *error
  /// set) when the forward used an untraceable op or the validation replay
  /// was not bitwise identical to the traced forward.
  static std::shared_ptr<EvalPlan> Capture(const EvalFn& fn,
                                           const Tensor& x_chunk,
                                           std::string* error);

  /// Executes on `x` (shape must equal the captured input shape). Calls
  /// `sink(i, out_i)` for each program output while the backing arena is
  /// held; the views are invalid after Run returns, so sinks must copy.
  void Run(const Tensor& x,
           const std::function<void(int, const Tensor&)>& sink);

  const Shape& input_shape() const { return input_shape_; }
  const std::vector<Shape>& output_shapes() const { return output_shapes_; }
  /// Per-execution arena footprint in bytes (one per concurrent Run).
  int64_t arena_bytes() const {
    return mem_.arena_floats * static_cast<int64_t>(sizeof(float));
  }
  int num_nodes() const { return static_cast<int>(graph_.nodes.size()); }
  /// Number of kFusedSweep nodes / those covering 2+ original ops.
  int num_sweeps() const;
  int num_multi_step_sweeps() const;
  int max_sweep_len() const;

 private:
  /// Everything one in-flight execution needs: the arena plus per-value
  /// tensor bindings (views into the arena, or the captured constants).
  struct ExecState {
    Tensor arena;
    std::vector<Tensor> bound;  // per value id
  };

  explicit EvalPlan(Graph graph);
  std::unique_ptr<ExecState> NewState() const;
  std::unique_ptr<ExecState> AcquireState();
  void ReleaseState(std::unique_ptr<ExecState> state);
  void Execute(ExecState* state) const;
  bool Validate(const Tensor& x_chunk, std::string* error);

  Graph graph_;
  MemoryPlan mem_;
  Shape input_shape_;
  std::vector<Shape> output_shapes_;
  std::mutex pool_mu_;
  std::vector<std::unique_ptr<ExecState>> pool_;
};

/// Aggregate counters for a pipeline's plan cache, surfaced through the
/// serving stats op and consumed by admission control.
struct PlanCacheStats {
  int64_t plans = 0;              // compiled plans resident
  int64_t unplannable = 0;        // (key, shape) pairs pinned to dynamic
  int64_t arena_bytes_max = 0;    // largest single-execution arena
  int64_t fused_sweeps = 0;       // multi-step sweeps across all plans
  int64_t planned_chunks = 0;     // chunk executions served by plans
  int64_t dynamic_chunks = 0;     // chunk executions on the dynamic walk
};

/// Thread-safe map from (program key, input shape) to compiled plan. A
/// present-but-null entry records a known-unplannable program so capture is
/// not retried every batch.
class PlanCache {
 public:
  /// Returns true if an entry exists (possibly null -> known unplannable).
  bool Lookup(const std::string& key, const Shape& shape,
              std::shared_ptr<EvalPlan>* plan);
  void Insert(const std::string& key, const Shape& shape,
              std::shared_ptr<EvalPlan> plan);
  void Clear();
  void RecordPlannedChunk();
  void RecordDynamicChunk();
  PlanCacheStats Stats() const;

 private:
  static std::string MakeKey(const std::string& key, const Shape& shape);
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<EvalPlan>> plans_;
  int64_t planned_chunks_ = 0;
  int64_t dynamic_chunks_ = 0;
};

/// Bounded global recycling pool for Predict result tensors (keyed by
/// element count). After warmup, steady-state serving draws every result
/// buffer from here instead of allocating. A buffer is handed out only when
/// the pool holds the sole reference to its storage.
Tensor AcquireResultTensor(const Shape& shape);

}  // namespace units::plan

#endif  // UNITS_PLAN_PLAN_H_
