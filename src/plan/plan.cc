#include "plan/plan.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "base/check.h"
#include "plan/fusion_pass.h"
#include "plan/trace.h"
#include "tensor/tensor_ops.h"

namespace units::plan {

Mode ActiveMode() {
  const char* e = std::getenv("UNITS_PLAN");
  if (e == nullptr) {
    return Mode::kPlanned;
  }
  const std::string s(e);
  if (s == "dynamic" || s == "off" || s == "0") {
    return Mode::kDynamic;
  }
  if (s == "verify") {
    return Mode::kVerify;
  }
  return Mode::kPlanned;
}

EvalPlan::EvalPlan(Graph graph) : graph_(std::move(graph)) {
  FusePass(&graph_);
  mem_ = PlanMemory(&graph_);
  input_shape_ = graph_.values[static_cast<size_t>(graph_.input_id)].shape;
  output_shapes_.reserve(graph_.outputs.size());
  for (int id : graph_.outputs) {
    output_shapes_.push_back(graph_.values[static_cast<size_t>(id)].shape);
  }
}

int EvalPlan::num_sweeps() const {
  int n = 0;
  for (const Node& node : graph_.nodes) {
    n += node.kind == OpKind::kFusedSweep ? 1 : 0;
  }
  return n;
}

int EvalPlan::num_multi_step_sweeps() const {
  int n = 0;
  for (const Node& node : graph_.nodes) {
    n += node.kind == OpKind::kFusedSweep && node.sweep.size() > 1 ? 1 : 0;
  }
  return n;
}

int EvalPlan::max_sweep_len() const {
  size_t n = 0;
  for (const Node& node : graph_.nodes) {
    if (node.kind == OpKind::kFusedSweep) {
      n = std::max(n, node.sweep.size());
    }
  }
  return static_cast<int>(n);
}

std::unique_ptr<EvalPlan::ExecState> EvalPlan::NewState() const {
  auto st = std::make_unique<ExecState>();
  st->arena = Tensor(Shape{mem_.arena_floats});
  st->bound.resize(graph_.values.size());
  for (const Value& v : graph_.values) {
    const size_t id = static_cast<size_t>(v.id);
    if (v.is_const) {
      st->bound[id] = v.const_tensor;
    } else if (mem_.offsets[id] >= 0) {
      st->bound[id] = Tensor::ViewInto(st->arena, mem_.offsets[id], v.shape);
    }  // else: dead value, never touched by the schedule
  }
  return st;
}

std::unique_ptr<EvalPlan::ExecState> EvalPlan::AcquireState() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!pool_.empty()) {
      auto st = std::move(pool_.back());
      pool_.pop_back();
      return st;
    }
  }
  return NewState();
}

void EvalPlan::ReleaseState(std::unique_ptr<ExecState> state) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  pool_.push_back(std::move(state));
}

void EvalPlan::Execute(ExecState* st) const {
  for (const Node& n : graph_.nodes) {
    const auto in = [&](int i) -> const Tensor& {
      return st->bound[static_cast<size_t>(n.inputs[static_cast<size_t>(i)])];
    };
    Tensor& out = st->bound[static_cast<size_t>(n.output)];
    switch (n.kind) {
      case OpKind::kFusedSweep: {
        std::vector<const float*> leafs;
        leafs.reserve(n.inputs.size());
        for (int id : n.inputs) {
          leafs.push_back(st->bound[static_cast<size_t>(id)].data());
        }
        ExecuteSweep(n, leafs, out.data(), out.numel());
        break;
      }
      case OpKind::kMatMul:
        ops::MatMulInto(in(0), in(1), &out);
        break;
      case OpKind::kBatchedMatMul:
        ops::BatchedMatMulInto(in(0), in(1), &out);
        break;
      case OpKind::kTranspose:
        ops::TransposeInto(in(0), n.axis0, n.axis1, &out);
        break;
      case OpKind::kSoftmax:
        ops::SoftmaxInto(in(0), n.axis0, &out);
        break;
      case OpKind::kLogSoftmax:
        ops::LogSoftmaxInto(in(0), n.axis0, &out);
        break;
      case OpKind::kSum:
        ops::SumInto(in(0), n.axis0, n.keepdim, &out);
        break;
      case OpKind::kMaxPool:
        ops::MaxInto(in(0), /*axis=*/2, /*keepdim=*/false, &out);
        break;
      case OpKind::kSlice:
        ops::SliceInto(in(0), n.axis0, n.i0, n.i1, &out);
        break;
      case OpKind::kConcat: {
        std::vector<Tensor> parts;
        parts.reserve(n.inputs.size());
        for (int id : n.inputs) {
          parts.push_back(st->bound[static_cast<size_t>(id)]);
        }
        ops::ConcatInto(parts, n.axis0, &out);
        break;
      }
      case OpKind::kAttention: {
        Tensor& kt = st->bound[static_cast<size_t>(n.workspace_ids[0])];
        ops::AttentionForwardStreamingInto(in(0), in(1), in(2), n.scalar,
                                           n.tensor_attr, &kt, &out);
        break;
      }
      case OpKind::kQuantLinear: {
        const Tensor& x = in(0);
        quant::QuantizedLinearForward(x.data(), x.dim(0), *n.qlinear,
                                      out.data());
        break;
      }
      case OpKind::kConv1dCore: {
        Tensor& cols = st->bound[static_cast<size_t>(n.workspace_ids[0])];
        Tensor& out2 = st->bound[static_cast<size_t>(n.workspace_ids[1])];
        ops::Im2Col1DInto(in(0), n.i0, n.i1, n.i2, n.i3, &cols);
        ops::MatMulInto(n.tensor_attr, cols, &out2);
        ops::ConvUnpackInto(out2, &out);
        break;
      }
      default:
        // Raw elementwise kinds are rewritten to sweeps by FusePass and
        // kReshape is an alias, never a node.
        UNITS_CHECK_MSG(false, "unexecutable node kind in captured plan");
    }
  }
}

void EvalPlan::Run(const Tensor& x,
                   const std::function<void(int, const Tensor&)>& sink) {
  UNITS_CHECK(SameShape(x.shape(), input_shape_));
  auto st = AcquireState();
  st->bound[static_cast<size_t>(graph_.input_id)].CopyDataFrom(x);
  Execute(st.get());
  for (size_t i = 0; i < graph_.outputs.size(); ++i) {
    sink(static_cast<int>(i),
         st->bound[static_cast<size_t>(graph_.outputs[i])]);
  }
  ReleaseState(std::move(st));
}

bool EvalPlan::Validate(const Tensor& x_chunk, std::string* error) {
  bool ok = true;
  Run(x_chunk, [&](int i, const Tensor& got) {
    const Tensor& want = graph_.captured_outputs[static_cast<size_t>(i)];
    if (got.numel() != want.numel() ||
        std::memcmp(got.data(), want.data(),
                    static_cast<size_t>(got.numel()) * sizeof(float)) != 0) {
      ok = false;
    }
  });
  if (!ok && error != nullptr) {
    *error = "plan validation replay was not bitwise identical to the traced forward";
  }
  return ok;
}

std::shared_ptr<EvalPlan> EvalPlan::Capture(const EvalFn& fn,
                                            const Tensor& x_chunk,
                                            std::string* error) {
  autograd::NoGradGuard no_grad;
  Graph g;
  {
    autograd::Variable xv(x_chunk, /*requires_grad=*/false);
    internal::Tracer tracer(xv);
    std::vector<autograd::Variable> outs = fn(xv);
    if (!tracer.Finish(outs, &g, error)) {
      return nullptr;
    }
  }
  std::shared_ptr<EvalPlan> plan(new EvalPlan(std::move(g)));
  if (!plan->Validate(x_chunk, error)) {
    return nullptr;
  }
  // The traced oracle tensors served their purpose; drop them so a cached
  // plan does not pin one chunk of activations per program.
  plan->graph_.captured_outputs.clear();
  return plan;
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

std::string PlanCache::MakeKey(const std::string& key, const Shape& shape) {
  return key + "|" + ShapeToString(shape);
}

bool PlanCache::Lookup(const std::string& key, const Shape& shape,
                       std::shared_ptr<EvalPlan>* plan) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(MakeKey(key, shape));
  if (it == plans_.end()) {
    return false;
  }
  *plan = it->second;
  return true;
}

void PlanCache::Insert(const std::string& key, const Shape& shape,
                       std::shared_ptr<EvalPlan> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plans_[MakeKey(key, shape)] = std::move(plan);
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
}

void PlanCache::RecordPlannedChunk() {
  std::lock_guard<std::mutex> lock(mu_);
  ++planned_chunks_;
}

void PlanCache::RecordDynamicChunk() {
  std::lock_guard<std::mutex> lock(mu_);
  ++dynamic_chunks_;
}

PlanCacheStats PlanCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats stats;
  for (const auto& [key, plan] : plans_) {
    if (plan == nullptr) {
      ++stats.unplannable;
      continue;
    }
    ++stats.plans;
    stats.arena_bytes_max = std::max(stats.arena_bytes_max, plan->arena_bytes());
    stats.fused_sweeps += plan->num_multi_step_sweeps();
  }
  stats.planned_chunks = planned_chunks_;
  stats.dynamic_chunks = dynamic_chunks_;
  return stats;
}

// ---------------------------------------------------------------------------
// Result tensor pool
// ---------------------------------------------------------------------------

namespace {

constexpr size_t kResultBucketCap = 8;

struct ResultPool {
  std::mutex mu;
  std::unordered_map<int64_t, std::vector<Tensor>> buckets;
};

ResultPool& GetResultPool() {
  static ResultPool* pool = new ResultPool;  // leaked: outlives all threads
  return *pool;
}

}  // namespace

Tensor AcquireResultTensor(const Shape& shape) {
  const int64_t n = NumElements(shape);
  ResultPool& pool = GetResultPool();
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    auto it = pool.buckets.find(n);
    if (it != pool.buckets.end()) {
      for (Tensor& t : it->second) {
        // use_count == 1 means the pool is the only owner: safe to hand out.
        if (t.StorageUseCount() == 1) {
          return t.Reshape(shape);
        }
      }
    }
  }
  Tensor fresh(shape);
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    std::vector<Tensor>& bucket = pool.buckets[n];
    if (bucket.size() < kResultBucketCap) {
      bucket.push_back(fresh);
    }
  }
  return fresh;
}

}  // namespace units::plan
