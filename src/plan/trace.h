#ifndef UNITS_PLAN_TRACE_H_
#define UNITS_PLAN_TRACE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "autograd/variable.h"
#include "plan/graph.h"

namespace units::plan {

namespace internal {
class Tracer;
/// Non-null while the current thread is capturing a graph. Kept as a raw
/// thread-local pointer so the hot-path check in every autograd op is one
/// load + branch when tracing is off.
extern thread_local Tracer* t_tracer;
}  // namespace internal

/// True while the calling thread is inside an EvalPlan capture. Autograd ops
/// gate their trace hooks on this so the untraced path stays free.
inline bool TraceActive() { return internal::t_tracer != nullptr; }

/// Optional attributes for TraceUnary/TraceBinary (axes, scalars, slice
/// bounds). Field meaning matches plan::Node.
struct NodeArgs {
  int axis0 = 0;
  int axis1 = 0;
  bool keepdim = false;
  float scalar = 0.0f;
  int64_t i0 = 0;
  int64_t i1 = 0;
};

// --- Hooks called from autograd/ops.cc (only when TraceActive()) ----------

void TraceUnary(OpKind kind, const autograd::Variable& a,
                const autograd::Variable& out, const NodeArgs& args = {});
void TraceBinary(OpKind kind, const autograd::Variable& a,
                 const autograd::Variable& b, const autograd::Variable& out);
void TraceConcat(const std::vector<autograd::Variable>& parts, int axis,
                 const autograd::Variable& out);
void TraceAttention(const autograd::Variable& q, const autograd::Variable& k,
                    const autograd::Variable& v, float scale,
                    const autograd::Variable& out);
/// Conv1d is traced as two nodes: a kConv1dCore (im2col + GEMM + unpack
/// against the pre-reshaped [Cout, Cin*k] weight `w2`) and, when `bias` is
/// defined, a kAdd against the constant [Cout, 1] bias view — so the
/// bias-add can fuse with a following activation.
void TraceConv1d(const autograd::Variable& input, const Tensor& w2,
                 const autograd::Variable& bias, const autograd::Variable& out,
                 int64_t kernel, int64_t dilation, int64_t pad_left,
                 int64_t pad_right);
/// Quantized Linear (autograd::QuantizedLinear): one kQuantLinear node
/// holding the layer's shared packed-int8 weights; bias is fused inside.
void TraceQuantLinear(
    const autograd::Variable& x,
    std::shared_ptr<const quant::QuantizedLinearWeights> weights,
    const autograd::Variable& out);

/// Called from Variable::MakeNode for every op-produced Variable while
/// tracing. Implements poison detection: if a later hooked op consumes a
/// Variable that was created by an op but never registered by a trace hook,
/// the trace is unsound (an untraced producer ran) and is abandoned.
void NoteNodeCreated(const autograd::Variable& v);

/// Explicit poison for ops that can never be planned (training-only paths
/// that construct results without MakeNode). Records `reason` and marks the
/// capture failed.
void PoisonTrace(const std::string& reason);

namespace internal {

/// Thread-local graph capture state. Construct to begin tracing on this
/// thread (registers itself as t_tracer), run the eval forward, then call
/// Finish() with the forward's outputs.
class Tracer {
 public:
  explicit Tracer(const autograd::Variable& input);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool poisoned() const { return poisoned_; }
  const std::string& poison_reason() const { return poison_reason_; }

  /// Resolves the traced outputs and moves the captured graph into *graph.
  /// Returns false (with *error set) if the trace was poisoned.
  bool Finish(const std::vector<autograd::Variable>& outputs, Graph* graph,
              std::string* error);

  // Hook bodies (free functions above forward here).
  void RecordOp(OpKind kind, const autograd::Variable* const* ins, int nin,
                const autograd::Variable& out, const NodeArgs& args);
  void RecordConcat(const std::vector<autograd::Variable>& parts, int axis,
                    const autograd::Variable& out);
  void RecordAttention(const autograd::Variable& q,
                       const autograd::Variable& k,
                       const autograd::Variable& v, float scale,
                       const autograd::Variable& out);
  void RecordConv1d(const autograd::Variable& input, const Tensor& w2,
                    const autograd::Variable& bias,
                    const autograd::Variable& out, int64_t kernel,
                    int64_t dilation, int64_t pad_left, int64_t pad_right);
  void RecordQuantLinear(
      const autograd::Variable& x,
      std::shared_ptr<const quant::QuantizedLinearWeights> weights,
      const autograd::Variable& out);
  void NoteCreated(const autograd::Variable& v);
  void Poison(const std::string& reason);

 private:
  /// Value id for `v`: an already-registered value, or a fresh constant for
  /// Variables materialized outside the trace (weights, eval statistics).
  /// Returns -1 and poisons if `v` was produced by an untraced op.
  int Resolve(const autograd::Variable& v);
  int NewConstValue(Tensor t);
  int NewDerivedValue(const Shape& shape, int alias_of = -1);
  void Register(const autograd::Variable& v, int id);
  /// Common tail for RecordOp-style hooks: folds to a constant when every
  /// input is constant (weight-only subexpressions run once, at capture).
  bool FoldIfAllConst(const std::vector<int>& ids,
                      const autograd::Variable& out);

  Graph graph_;
  std::unordered_map<const autograd::internal::VariableImpl*, int> value_ids_;
  std::unordered_set<const autograd::internal::VariableImpl*> created_;
  std::vector<std::shared_ptr<autograd::internal::VariableImpl>> keep_alive_;
  bool poisoned_ = false;
  std::string poison_reason_;
};

}  // namespace internal

}  // namespace units::plan

#endif  // UNITS_PLAN_TRACE_H_
