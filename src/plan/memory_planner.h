#ifndef UNITS_PLAN_MEMORY_PLANNER_H_
#define UNITS_PLAN_MEMORY_PLANNER_H_

#include <cstdint>
#include <vector>

#include "plan/graph.h"

namespace units::plan {

/// Static buffer assignment for one captured graph: every non-constant
/// value (chunk input, node outputs, per-node workspaces) gets a float
/// offset into a single arena, sized by liveness analysis with first-fit
/// reuse, so steady-state execution allocates nothing.
struct MemoryPlan {
  /// Total arena length in floats (already includes alignment padding).
  int64_t arena_floats = 0;
  /// Per value id: offset into the arena in floats. -1 for constants
  /// (bound to their captured tensors instead). Aliases resolve to their
  /// root's offset.
  std::vector<int64_t> offsets;
};

/// Runs liveness analysis over the scheduled nodes and assigns arena
/// offsets. Mutates the graph: per-node workspace Shapes are materialized
/// as fresh values (live only during their step) and their ids recorded in
/// node.workspace_ids. Buffers are 64-byte aligned; a value freed at step s
/// can back a buffer defined at any step > s, but never a buffer of the
/// step that still reads it (outputs never alias live inputs, so kernels
/// need not be in-place safe).
MemoryPlan PlanMemory(Graph* graph);

}  // namespace units::plan

#endif  // UNITS_PLAN_MEMORY_PLANNER_H_
