#include "plan/trace.h"

#include <utility>

#include "base/check.h"

namespace units::plan {

namespace internal {
thread_local Tracer* t_tracer = nullptr;
}  // namespace internal

using autograd::Variable;

void TraceUnary(OpKind kind, const Variable& a, const Variable& out,
                const NodeArgs& args) {
  if (internal::Tracer* t = internal::t_tracer) {
    const Variable* ins[1] = {&a};
    t->RecordOp(kind, ins, 1, out, args);
  }
}

void TraceBinary(OpKind kind, const Variable& a, const Variable& b,
                 const Variable& out) {
  if (internal::Tracer* t = internal::t_tracer) {
    const Variable* ins[2] = {&a, &b};
    t->RecordOp(kind, ins, 2, out, NodeArgs{});
  }
}

void TraceConcat(const std::vector<Variable>& parts, int axis,
                 const Variable& out) {
  if (internal::Tracer* t = internal::t_tracer) {
    t->RecordConcat(parts, axis, out);
  }
}

void TraceAttention(const Variable& q, const Variable& k, const Variable& v,
                    float scale, const Variable& out) {
  if (internal::Tracer* t = internal::t_tracer) {
    t->RecordAttention(q, k, v, scale, out);
  }
}

void TraceConv1d(const Variable& input, const Tensor& w2, const Variable& bias,
                 const Variable& out, int64_t kernel, int64_t dilation,
                 int64_t pad_left, int64_t pad_right) {
  if (internal::Tracer* t = internal::t_tracer) {
    t->RecordConv1d(input, w2, bias, out, kernel, dilation, pad_left,
                    pad_right);
  }
}

void TraceQuantLinear(const Variable& x,
                      std::shared_ptr<const quant::QuantizedLinearWeights> w,
                      const Variable& out) {
  if (internal::Tracer* t = internal::t_tracer) {
    t->RecordQuantLinear(x, std::move(w), out);
  }
}

void NoteNodeCreated(const Variable& v) {
  if (internal::Tracer* t = internal::t_tracer) {
    t->NoteCreated(v);
  }
}

void PoisonTrace(const std::string& reason) {
  if (internal::Tracer* t = internal::t_tracer) {
    t->Poison(reason);
  }
}

namespace internal {

Tracer::Tracer(const Variable& input) {
  UNITS_CHECK_MSG(t_tracer == nullptr,
                  "nested plan captures on one thread are not supported");
  UNITS_CHECK(input.defined());
  Value v;
  v.id = 0;
  v.shape = input.data().shape();
  v.is_input = true;
  graph_.values.push_back(std::move(v));
  graph_.input_id = 0;
  Register(input, 0);
  t_tracer = this;
}

Tracer::~Tracer() { t_tracer = nullptr; }

void Tracer::Poison(const std::string& reason) {
  if (!poisoned_) {
    poisoned_ = true;
    poison_reason_ = reason;
  }
}

void Tracer::Register(const Variable& v, int id) {
  value_ids_[v.impl().get()] = id;
  keep_alive_.push_back(v.impl());
}

void Tracer::NoteCreated(const Variable& v) {
  if (poisoned_ || !v.defined()) {
    return;
  }
  // Hold the impl so its address can never be recycled for a different
  // Variable mid-trace (a recycled address would corrupt the identity maps).
  created_.insert(v.impl().get());
  keep_alive_.push_back(v.impl());
}

int Tracer::Resolve(const Variable& v) {
  UNITS_CHECK(v.defined());
  const auto* impl = v.impl().get();
  auto it = value_ids_.find(impl);
  if (it != value_ids_.end()) {
    return it->second;
  }
  if (created_.count(impl) != 0) {
    // Produced by an op that ran without a trace hook: the graph would
    // wrongly treat it as a constant. Abandon the capture.
    Poison("op consumed the result of an untraced producer");
    return -1;
  }
  // Materialized outside the trace (parameter, eval statistic, positional
  // table, zero-init state): a constant of the captured program.
  const int id = NewConstValue(v.data());
  value_ids_[impl] = id;
  keep_alive_.push_back(v.impl());
  return id;
}

int Tracer::NewConstValue(Tensor t) {
  Value v;
  v.id = static_cast<int>(graph_.values.size());
  v.shape = t.shape();
  v.is_const = true;
  v.const_tensor = std::move(t);
  graph_.values.push_back(std::move(v));
  return graph_.values.back().id;
}

int Tracer::NewDerivedValue(const Shape& shape, int alias_of) {
  Value v;
  v.id = static_cast<int>(graph_.values.size());
  v.shape = shape;
  v.alias_of = alias_of;
  graph_.values.push_back(std::move(v));
  return graph_.values.back().id;
}

bool Tracer::FoldIfAllConst(const std::vector<int>& ids, const Variable& out) {
  for (int id : ids) {
    if (!graph_.values[static_cast<size_t>(id)].is_const) {
      return false;
    }
  }
  // Every operand is a trace-time constant, so the already-computed result
  // is too: bake it in and emit no node (BatchNorm statistic math, reshaped
  // weights, etc. run once at capture instead of every batch).
  Register(out, NewConstValue(out.data()));
  return true;
}

void Tracer::RecordOp(OpKind kind, const Variable* const* ins, int nin,
                      const Variable& out, const NodeArgs& args) {
  if (poisoned_) {
    return;
  }
  std::vector<int> ids;
  ids.reserve(static_cast<size_t>(nin));
  for (int i = 0; i < nin; ++i) {
    const int id = Resolve(*ins[i]);
    if (id < 0) {
      return;
    }
    ids.push_back(id);
  }
  if (FoldIfAllConst(ids, out)) {
    return;
  }
  if (kind == OpKind::kReshape) {
    // Pure metadata change: alias the producer's buffer.
    Register(out, NewDerivedValue(out.data().shape(), ids[0]));
    return;
  }
  const int out_id = NewDerivedValue(out.data().shape());
  Node node;
  node.kind = kind;
  node.inputs = std::move(ids);
  node.output = out_id;
  node.axis0 = args.axis0;
  node.axis1 = args.axis1;
  node.keepdim = args.keepdim;
  node.scalar = args.scalar;
  node.i0 = args.i0;
  node.i1 = args.i1;
  graph_.nodes.push_back(std::move(node));
  Register(out, out_id);
}

void Tracer::RecordConcat(const std::vector<Variable>& parts, int axis,
                          const Variable& out) {
  if (poisoned_) {
    return;
  }
  std::vector<int> ids;
  ids.reserve(parts.size());
  for (const Variable& p : parts) {
    const int id = Resolve(p);
    if (id < 0) {
      return;
    }
    ids.push_back(id);
  }
  if (FoldIfAllConst(ids, out)) {
    return;
  }
  const int out_id = NewDerivedValue(out.data().shape());
  Node node;
  node.kind = OpKind::kConcat;
  node.inputs = std::move(ids);
  node.output = out_id;
  node.axis0 = axis;
  graph_.nodes.push_back(std::move(node));
  Register(out, out_id);
}

void Tracer::RecordAttention(const Variable& q, const Variable& k,
                             const Variable& v, float scale,
                             const Variable& out) {
  if (poisoned_) {
    return;
  }
  const int qid = Resolve(q);
  const int kid = qid < 0 ? -1 : Resolve(k);
  const int vid = kid < 0 ? -1 : Resolve(v);
  if (vid < 0) {
    return;
  }
  std::vector<int> ids = {qid, kid, vid};
  if (FoldIfAllConst(ids, out)) {
    return;
  }
  const int out_id = NewDerivedValue(out.data().shape());
  Node node;
  node.kind = OpKind::kAttention;
  node.inputs = std::move(ids);
  node.output = out_id;
  node.scalar = scale;
  const Shape& qs = q.data().shape();
  // Transposed-K panel [B, hd, T], the kernel's only allocation.
  node.workspaces.push_back(Shape{qs[0], qs[2], qs[1]});
  graph_.nodes.push_back(std::move(node));
  Register(out, out_id);
}

void Tracer::RecordConv1d(const Variable& input, const Tensor& w2,
                          const Variable& bias, const Variable& out,
                          int64_t kernel, int64_t dilation, int64_t pad_left,
                          int64_t pad_right) {
  if (poisoned_) {
    return;
  }
  const int in_id = Resolve(input);
  if (in_id < 0) {
    return;
  }
  if (graph_.values[static_cast<size_t>(in_id)].is_const) {
    Register(out, NewConstValue(out.data()));
    return;
  }
  const Shape& os = out.data().shape();  // [N, Cout, Tout]
  const int64_t n = os[0];
  const int64_t c_out = os[1];
  const int64_t t_out = os[2];
  const int core_id = NewDerivedValue(os);
  Node core;
  core.kind = OpKind::kConv1dCore;
  core.inputs = {in_id};
  core.output = core_id;
  core.tensor_attr = w2;  // [Cout, Cin*k], reshaped once at capture
  core.i0 = kernel;
  core.i1 = dilation;
  core.i2 = pad_left;
  core.i3 = pad_right;
  core.workspaces.push_back(Shape{w2.dim(1), n * t_out});  // im2col columns
  core.workspaces.push_back(Shape{c_out, n * t_out});      // GEMM output
  graph_.nodes.push_back(std::move(core));
  if (!bias.defined()) {
    Register(out, core_id);
    return;
  }
  // Bias enters as a separate elementwise kAdd against the [Cout, 1] view
  // the dynamic path broadcasts, so a following activation can fuse with it.
  const int bias_id = NewConstValue(bias.data().Reshape(Shape{c_out, 1}));
  const int out_id = NewDerivedValue(os);
  Node add;
  add.kind = OpKind::kAdd;
  add.inputs = {core_id, bias_id};
  add.output = out_id;
  graph_.nodes.push_back(std::move(add));
  Register(out, out_id);
}

void Tracer::RecordQuantLinear(
    const Variable& x, std::shared_ptr<const quant::QuantizedLinearWeights> w,
    const Variable& out) {
  if (poisoned_) {
    return;
  }
  const int in_id = Resolve(x);
  if (in_id < 0) {
    return;
  }
  if (graph_.values[static_cast<size_t>(in_id)].is_const) {
    // Constant input (weight-only subexpression): the result is too.
    Register(out, NewConstValue(out.data()));
    return;
  }
  const int out_id = NewDerivedValue(out.data().shape());
  Node node;
  node.kind = OpKind::kQuantLinear;
  node.inputs = {in_id};
  node.output = out_id;
  node.qlinear = std::move(w);
  graph_.nodes.push_back(std::move(node));
  Register(out, out_id);
}

bool Tracer::Finish(const std::vector<Variable>& outputs, Graph* graph,
                    std::string* error) {
  for (const Variable& v : outputs) {
    if (poisoned_) {
      break;
    }
    const int id = Resolve(v);
    if (id < 0) {
      break;
    }
    graph_.outputs.push_back(id);
    graph_.captured_outputs.push_back(v.data());
  }
  if (poisoned_) {
    if (error != nullptr) {
      *error = poison_reason_;
    }
    return false;
  }
  UNITS_CHECK(!graph_.outputs.empty());
  *graph = std::move(graph_);
  return true;
}

}  // namespace internal

}  // namespace units::plan
