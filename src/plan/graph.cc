#include "plan/graph.h"

namespace units::plan {

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kMul: return "mul";
    case OpKind::kDiv: return "div";
    case OpKind::kNeg: return "neg";
    case OpKind::kAddScalar: return "add_scalar";
    case OpKind::kMulScalar: return "mul_scalar";
    case OpKind::kPowScalar: return "pow_scalar";
    case OpKind::kRelu: return "relu";
    case OpKind::kLeakyRelu: return "leaky_relu";
    case OpKind::kGelu: return "gelu";
    case OpKind::kTanh: return "tanh";
    case OpKind::kSigmoid: return "sigmoid";
    case OpKind::kExp: return "exp";
    case OpKind::kLog: return "log";
    case OpKind::kSqrt: return "sqrt";
    case OpKind::kSquare: return "square";
    case OpKind::kAbs: return "abs";
    case OpKind::kMatMul: return "matmul";
    case OpKind::kBatchedMatMul: return "batched_matmul";
    case OpKind::kTranspose: return "transpose";
    case OpKind::kReshape: return "reshape";
    case OpKind::kSoftmax: return "softmax";
    case OpKind::kLogSoftmax: return "log_softmax";
    case OpKind::kAttention: return "attention";
    case OpKind::kSum: return "sum";
    case OpKind::kMaxPool: return "max_pool";
    case OpKind::kSlice: return "slice";
    case OpKind::kConcat: return "concat";
    case OpKind::kConv1dCore: return "conv1d_core";
    case OpKind::kQuantLinear: return "quant_linear";
    case OpKind::kFusedSweep: return "fused_sweep";
  }
  return "unknown";
}

bool IsElementwise(OpKind k) {
  switch (k) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kDiv:
    case OpKind::kNeg:
    case OpKind::kAddScalar:
    case OpKind::kMulScalar:
    case OpKind::kPowScalar:
    case OpKind::kRelu:
    case OpKind::kLeakyRelu:
    case OpKind::kGelu:
    case OpKind::kTanh:
    case OpKind::kSigmoid:
    case OpKind::kExp:
    case OpKind::kLog:
    case OpKind::kSqrt:
    case OpKind::kSquare:
    case OpKind::kAbs:
      return true;
    default:
      return false;
  }
}

}  // namespace units::plan
