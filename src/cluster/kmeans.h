#ifndef UNITS_CLUSTER_KMEANS_H_
#define UNITS_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "tensor/tensor.h"

namespace units::cluster {

/// Result of a k-means run.
struct KMeansResult {
  Tensor centroids;                  // [K, F]
  std::vector<int64_t> assignments;  // size N
  float inertia = 0.0f;              // sum of squared distances to centroids
  int64_t iterations = 0;
};

/// Options for KMeans.
struct KMeansOptions {
  int64_t num_clusters = 2;
  int64_t max_iterations = 100;
  float tolerance = 1e-4f;   // relative inertia improvement to keep going
  int64_t num_restarts = 3;  // best-of-n restarts (k-means++ init each)
};

/// Lloyd's algorithm with k-means++ initialization over row vectors
/// [N, F]. Returns the best run across restarts.
Result<KMeansResult> KMeans(const Tensor& points, const KMeansOptions& options,
                            Rng* rng);

/// Assigns each row of `points` to its nearest centroid.
std::vector<int64_t> AssignToCentroids(const Tensor& points,
                                       const Tensor& centroids);

}  // namespace units::cluster

#endif  // UNITS_CLUSTER_KMEANS_H_
