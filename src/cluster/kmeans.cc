#include "cluster/kmeans.h"

#include <cmath>
#include <limits>

#include "base/check.h"
#include "base/parallel.h"
#include "base/profile.h"

namespace units::cluster {

namespace {

/// Points per chunk for the assignment loops: enough distance evaluations
/// per task that dispatch overhead is negligible.
int64_t PointGrain(int64_t k, int64_t f) {
  return std::max<int64_t>(1, 16384 / std::max<int64_t>(1, k * f));
}

float SquaredDistance(const float* a, const float* b, int64_t f) {
  float acc = 0.0f;
  for (int64_t i = 0; i < f; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

/// k-means++ seeding: first centroid uniform, then proportional to squared
/// distance from the nearest chosen centroid.
Tensor KMeansPlusPlusInit(const Tensor& points, int64_t k, Rng* rng) {
  const int64_t n = points.dim(0);
  const int64_t f = points.dim(1);
  const float* p = points.data();
  Tensor centroids = Tensor::Zeros({k, f});
  float* c = centroids.data();

  std::vector<float> min_dist(static_cast<size_t>(n),
                              std::numeric_limits<float>::max());
  int64_t first = static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(n)));
  std::copy(p + first * f, p + (first + 1) * f, c);

  for (int64_t ci = 1; ci < k; ++ci) {
    // Parallel distance update; chunked partial sums combined in chunk
    // order keep the total (and thus the sampled centroid) deterministic.
    const double total = base::ParallelReduceSum(
        0, n, PointGrain(1, f), [&](int64_t i0, int64_t i1) {
          double chunk = 0.0;
          for (int64_t i = i0; i < i1; ++i) {
            const float d =
                SquaredDistance(p + i * f, c + (ci - 1) * f, f);
            min_dist[static_cast<size_t>(i)] =
                std::min(min_dist[static_cast<size_t>(i)], d);
            chunk += min_dist[static_cast<size_t>(i)];
          }
          return chunk;
        });
    int64_t chosen = n - 1;
    if (total > 0.0) {
      double r = rng->Uniform() * total;
      for (int64_t i = 0; i < n; ++i) {
        r -= min_dist[static_cast<size_t>(i)];
        if (r <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(n)));
    }
    std::copy(p + chosen * f, p + (chosen + 1) * f, c + ci * f);
  }
  return centroids;
}

KMeansResult RunOnce(const Tensor& points, const KMeansOptions& options,
                     Rng* rng) {
  const int64_t n = points.dim(0);
  const int64_t f = points.dim(1);
  const int64_t k = options.num_clusters;
  const float* p = points.data();

  KMeansResult result;
  result.centroids = KMeansPlusPlusInit(points, k, rng);
  result.assignments.assign(static_cast<size_t>(n), 0);
  float prev_inertia = std::numeric_limits<float>::max();

  for (int64_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step: each chunk owns a disjoint slice of assignments and
    // contributes a partial inertia, combined in chunk order.
    float* c = result.centroids.data();
    const double inertia = base::ParallelReduceSum(
        0, n, PointGrain(k, f), [&](int64_t i0, int64_t i1) {
          double chunk = 0.0;
          for (int64_t i = i0; i < i1; ++i) {
            float best = std::numeric_limits<float>::max();
            int64_t best_k = 0;
            for (int64_t ci = 0; ci < k; ++ci) {
              const float d = SquaredDistance(p + i * f, c + ci * f, f);
              if (d < best) {
                best = d;
                best_k = ci;
              }
            }
            result.assignments[static_cast<size_t>(i)] = best_k;
            chunk += best;
          }
          return chunk;
        });
    result.inertia = static_cast<float>(inertia);

    // Update step.
    Tensor sums = Tensor::Zeros({k, f});
    std::vector<int64_t> counts(static_cast<size_t>(k), 0);
    float* s = sums.data();
    for (int64_t i = 0; i < n; ++i) {
      const int64_t ci = result.assignments[static_cast<size_t>(i)];
      ++counts[static_cast<size_t>(ci)];
      const float* row = p + i * f;
      float* dst = s + ci * f;
      for (int64_t j = 0; j < f; ++j) {
        dst[j] += row[j];
      }
    }
    for (int64_t ci = 0; ci < k; ++ci) {
      if (counts[static_cast<size_t>(ci)] == 0) {
        // Re-seed empty cluster at a random point.
        const int64_t r =
            static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(n)));
        std::copy(p + r * f, p + (r + 1) * f, c + ci * f);
        continue;
      }
      const float inv = 1.0f / static_cast<float>(counts[static_cast<size_t>(ci)]);
      float* dst = c + ci * f;
      const float* src = s + ci * f;
      for (int64_t j = 0; j < f; ++j) {
        dst[j] = src[j] * inv;
      }
    }

    if (prev_inertia - result.inertia <
        options.tolerance * std::max(1.0f, prev_inertia)) {
      break;
    }
    prev_inertia = result.inertia;
  }
  return result;
}

}  // namespace

Result<KMeansResult> KMeans(const Tensor& points,
                            const KMeansOptions& options, Rng* rng) {
  if (points.ndim() != 2) {
    return Status::InvalidArgument("KMeans expects [N, F] points");
  }
  if (options.num_clusters < 1 ||
      options.num_clusters > points.dim(0)) {
    return Status::InvalidArgument("invalid cluster count");
  }
  KMeansResult best;
  best.inertia = std::numeric_limits<float>::max();
  for (int64_t r = 0; r < std::max<int64_t>(1, options.num_restarts); ++r) {
    KMeansResult run = RunOnce(points, options, rng);
    if (run.inertia < best.inertia) {
      best = std::move(run);
    }
  }
  return best;
}

std::vector<int64_t> AssignToCentroids(const Tensor& points,
                                       const Tensor& centroids) {
  UNITS_PROFILE_SCOPE("cluster.AssignToCentroids");
  UNITS_CHECK_EQ(points.ndim(), 2);
  UNITS_CHECK_EQ(centroids.ndim(), 2);
  UNITS_CHECK_EQ(points.dim(1), centroids.dim(1));
  const int64_t n = points.dim(0);
  const int64_t f = points.dim(1);
  const int64_t k = centroids.dim(0);
  const float* p = points.data();
  const float* c = centroids.data();
  std::vector<int64_t> out(static_cast<size_t>(n), 0);
  base::ParallelFor(0, n, PointGrain(k, f), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      float best = std::numeric_limits<float>::max();
      for (int64_t ci = 0; ci < k; ++ci) {
        const float d = SquaredDistance(p + i * f, c + ci * f, f);
        if (d < best) {
          best = d;
          out[static_cast<size_t>(i)] = ci;
        }
      }
    }
  });
  return out;
}

}  // namespace units::cluster
