#include "json/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/check.h"
#include "base/string_util.h"

namespace units::json {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::Int(int64_t value) {
  return Number(static_cast<double>(value));
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

bool JsonValue::AsBool() const {
  UNITS_CHECK(is_bool());
  return bool_;
}

double JsonValue::AsNumber() const {
  UNITS_CHECK(is_number());
  return number_;
}

int64_t JsonValue::AsInt() const {
  UNITS_CHECK(is_number());
  return static_cast<int64_t>(std::llround(number_));
}

const std::string& JsonValue::AsString() const {
  UNITS_CHECK(is_string());
  return string_;
}

size_t JsonValue::size() const {
  if (is_array()) {
    return array_.size();
  }
  if (is_object()) {
    return object_.size();
  }
  return 0;
}

const JsonValue& JsonValue::operator[](size_t i) const {
  UNITS_CHECK(is_array());
  UNITS_CHECK_LT(i, array_.size());
  return array_[i];
}

void JsonValue::Append(JsonValue v) {
  UNITS_CHECK(is_array());
  array_.push_back(std::move(v));
}

bool JsonValue::Contains(const std::string& key) const {
  if (!is_object()) {
    return false;
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return true;
    }
  }
  return false;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  UNITS_CHECK(is_object());
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return v;
    }
  }
  UNITS_CHECK_MSG(false, ("missing JSON key: " + key).c_str());
  static const JsonValue kNull;
  return kNull;
}

void JsonValue::Set(const std::string& key, JsonValue v) {
  UNITS_CHECK(is_object());
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::items()
    const {
  UNITS_CHECK(is_object());
  return object_;
}

Result<const JsonValue*> JsonValue::Find(const std::string& key) const {
  if (!is_object()) {
    return Status::InvalidArgument("Find on non-object JSON value");
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return Status::NotFound("JSON key not found: " + key);
}

namespace {

void EscapeString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double v, std::string* out) {
  if (std::isnan(v) || std::isinf(v)) {
    // JSON has no NaN/Inf; store null (round-trips as null).
    *out += "null";
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    *out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

void Indent(std::string* out, int indent, int depth) {
  if (indent >= 0) {
    out->push_back('\n');
    out->append(static_cast<size_t>(indent * depth), ' ');
  }
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(number_, out);
      break;
    case Type::kString:
      EscapeString(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
          if (indent >= 0) {
            out->push_back(' ');
          }
        }
        array_[i].DumpTo(out, -1, depth + 1);  // arrays stay on one line
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        Indent(out, indent, depth + 1);
        EscapeString(object_[i].first, out);
        out->push_back(':');
        if (indent >= 0) {
          out->push_back(' ');
        }
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) {
        Indent(out, indent, depth);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

JsonValue JsonValue::FromFloats(const std::vector<float>& values) {
  JsonValue arr = Array();
  for (const float v : values) {
    arr.Append(Number(static_cast<double>(v)));
  }
  return arr;
}

std::vector<float> JsonValue::ToFloats() const {
  UNITS_CHECK(is_array());
  std::vector<float> out;
  out.reserve(array_.size());
  for (const JsonValue& v : array_) {
    out.push_back(v.is_null() ? std::nanf("")
                              : static_cast<float>(v.AsNumber()));
  }
  return out;
}

JsonValue JsonValue::FromInts(const std::vector<int64_t>& values) {
  JsonValue arr = Array();
  for (const int64_t v : values) {
    arr.Append(Int(v));
  }
  return arr;
}

std::vector<int64_t> JsonValue::ToInts() const {
  UNITS_CHECK(is_array());
  std::vector<int64_t> out;
  out.reserve(array_.size());
  for (const JsonValue& v : array_) {
    out.push_back(v.AsInt());
  }
  return out;
}

// --- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Run() {
    SkipWhitespace();
    UNITS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_,
                  message.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    // Containers recurse through ParseValue; untrusted input like
    // "[[[[..." must exhaust this budget, not the call stack.
    if (depth_ >= kMaxDepth) {
      return Error("nesting deeper than " + std::to_string(kMaxDepth) +
                   " levels");
    }
    ++depth_;
    auto result = ParseValueInner();
    --depth_;
    return result;
  }

  Result<JsonValue> ParseValueInner() {
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        UNITS_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true));
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false));
      case 'n':
        return ParseLiteral("null", JsonValue::Null());
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseLiteral(const char* literal, JsonValue value) {
    const size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return value;
    }
    return Error(StrCat("expected '", literal, "'"));
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("invalid number");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("invalid number '" + token + "'");
    }
    // strtod saturates overflowing literals like 1e999 to +/-inf, which the
    // serializer cannot represent (it dumps non-finite as null) — accepting
    // them would break every echo/round-trip path. Reject with a structured
    // parse error instead. Underflow to 0.0 stays accepted.
    if (!std::isfinite(v)) {
      return Error("number out of range '" + token + "'");
    }
    return JsonValue::Number(v);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return Error("expected '\"'");
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // Encode the BMP code point as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseArray() {
    UNITS_CHECK(Consume('['));
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) {
      return arr;
    }
    for (;;) {
      SkipWhitespace();
      UNITS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      arr.Append(std::move(v));
      SkipWhitespace();
      if (Consume(']')) {
        return arr;
      }
      if (!Consume(',')) {
        return Error("expected ',' or ']' in array");
      }
    }
  }

  Result<JsonValue> ParseObject() {
    UNITS_CHECK(Consume('{'));
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) {
      return obj;
    }
    for (;;) {
      SkipWhitespace();
      UNITS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' in object");
      }
      SkipWhitespace();
      UNITS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      obj.Set(key, std::move(v));
      SkipWhitespace();
      if (Consume('}')) {
        return obj;
      }
      if (!Consume(',')) {
        return Error("expected ',' or '}' in object");
      }
    }
  }

  static constexpr int kMaxDepth = 128;

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> Parse(const std::string& text) {
  return Parser(text).Run();
}

Result<JsonValue> ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

Status WriteFile(const std::string& path, const JsonValue& value) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << value.Dump(/*indent=*/2) << "\n";
  return out.good() ? Status::Ok() : Status::IoError("write failed: " + path);
}

}  // namespace units::json
