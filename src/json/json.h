#ifndef UNITS_JSON_JSON_H_
#define UNITS_JSON_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"

namespace units::json {

/// JSON value: null, bool, number (double), string, array, or object.
/// Objects preserve insertion order so serialized models diff cleanly.
/// The fitted-model files the paper's demo exports ("save the model as a
/// standard JSON file") are produced and consumed through this type.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue Int(int64_t v);
  static JsonValue String(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; abort on type mismatch (use the is_* predicates or the
  // Result-returning Get* helpers when the shape of the input is untrusted).
  bool AsBool() const;
  double AsNumber() const;
  int64_t AsInt() const;
  const std::string& AsString() const;

  // Array operations.
  size_t size() const;
  const JsonValue& operator[](size_t i) const;
  void Append(JsonValue v);

  // Object operations.
  bool Contains(const std::string& key) const;
  const JsonValue& at(const std::string& key) const;
  void Set(const std::string& key, JsonValue v);
  const std::vector<std::pair<std::string, JsonValue>>& items() const;

  /// Object lookup that reports missing keys as Status.
  Result<const JsonValue*> Find(const std::string& key) const;

  /// Serialization. `indent` < 0 emits compact single-line JSON.
  std::string Dump(int indent = -1) const;

  // Convenience builders for numeric vectors.
  static JsonValue FromFloats(const std::vector<float>& values);
  std::vector<float> ToFloats() const;
  static JsonValue FromInts(const std::vector<int64_t>& values);
  std::vector<int64_t> ToInts() const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses a JSON document. Supports the full JSON grammar (UTF-8 passthrough,
/// \uXXXX escapes for the BMP).
Result<JsonValue> Parse(const std::string& text);

/// Reads and parses a file.
Result<JsonValue> ParseFile(const std::string& path);

/// Writes `value` to `path` (pretty-printed).
Status WriteFile(const std::string& path, const JsonValue& value);

}  // namespace units::json

#endif  // UNITS_JSON_JSON_H_
