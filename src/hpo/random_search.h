#ifndef UNITS_HPO_RANDOM_SEARCH_H_
#define UNITS_HPO_RANDOM_SEARCH_H_

#include <vector>

#include "hpo/param_space.h"

namespace units::hpo {

/// Common interface for sequential hyper-parameter optimizers: call
/// Propose() to get the next configuration, evaluate it, report back via
/// Observe(). Objectives are maximized.
class HpOptimizer {
 public:
  virtual ~HpOptimizer() = default;
  virtual ParamSet Propose() = 0;
  virtual void Observe(const Trial& trial) = 0;

  /// Best trial seen so far. Requires at least one observation.
  const Trial& Best() const;

  const std::vector<Trial>& history() const { return history_; }

 protected:
  std::vector<Trial> history_;
};

/// Uniform random search baseline.
class RandomSearch : public HpOptimizer {
 public:
  RandomSearch(const ParamSpace* space, uint64_t seed);

  ParamSet Propose() override;
  void Observe(const Trial& trial) override;

 private:
  const ParamSpace* space_;
  Rng rng_;
};

}  // namespace units::hpo

#endif  // UNITS_HPO_RANDOM_SEARCH_H_
