#include "hpo/random_search.h"

#include "base/check.h"

namespace units::hpo {

const Trial& HpOptimizer::Best() const {
  UNITS_CHECK(!history_.empty());
  const Trial* best = &history_[0];
  for (const Trial& t : history_) {
    if (t.objective > best->objective) {
      best = &t;
    }
  }
  return *best;
}

RandomSearch::RandomSearch(const ParamSpace* space, uint64_t seed)
    : space_(space), rng_(seed) {
  UNITS_CHECK(space != nullptr);
}

ParamSet RandomSearch::Propose() { return space_->Sample(&rng_); }

void RandomSearch::Observe(const Trial& trial) { history_.push_back(trial); }

}  // namespace units::hpo
