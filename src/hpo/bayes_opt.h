#ifndef UNITS_HPO_BAYES_OPT_H_
#define UNITS_HPO_BAYES_OPT_H_

#include "hpo/gp.h"
#include "hpo/random_search.h"

namespace units::hpo {

/// Tuning knobs for BayesianOptimizer.
struct BayesOptOptions {
  int64_t initial_random_trials = 5;  // pure exploration before the GP
  int64_t acquisition_samples = 512;  // EI candidates per proposal
  double gp_length_scale = 0.25;
  double gp_noise = 1e-4;
  double xi = 0.01;  // EI exploration bonus
};

/// The paper's "Smart" configuration mode: sequential Bayesian optimization
/// with a GP surrogate and the expected-improvement acquisition, maximized
/// by dense random candidate sampling in the unit cube.
class BayesianOptimizer : public HpOptimizer {
 public:
  using Options = BayesOptOptions;

  BayesianOptimizer(const ParamSpace* space, uint64_t seed,
                    Options options = Options());

  ParamSet Propose() override;
  void Observe(const Trial& trial) override;

 private:
  double ExpectedImprovement(const GaussianProcess& gp,
                             const std::vector<double>& x,
                             double best_y) const;

  const ParamSpace* space_;
  Rng rng_;
  Options options_;
};

}  // namespace units::hpo

#endif  // UNITS_HPO_BAYES_OPT_H_
