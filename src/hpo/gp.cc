#include "hpo/gp.h"

#include <cmath>

#include "base/check.h"

namespace units::hpo {

GaussianProcess::GaussianProcess(double length_scale, double noise)
    : length_scale_(length_scale), noise_(noise) {
  UNITS_CHECK_GT(length_scale, 0.0);
  UNITS_CHECK_GE(noise, 0.0);
}

double GaussianProcess::Kernel(const std::vector<double>& a,
                               const std::vector<double>& b) const {
  UNITS_CHECK_EQ(a.size(), b.size());
  double dist2 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    dist2 += d * d;
  }
  return std::exp(-0.5 * dist2 / (length_scale_ * length_scale_));
}

Status GaussianProcess::Fit(const std::vector<std::vector<double>>& x,
                            const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("GP: empty or mismatched training data");
  }
  const size_t n = x.size();
  x_train_ = x;

  // Standardize targets.
  double mean = 0.0;
  for (const double v : y) {
    mean += v;
  }
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (const double v : y) {
    var += (v - mean) * (v - mean);
  }
  var /= static_cast<double>(n);
  y_mean_ = mean;
  y_std_ = std::sqrt(std::max(var, 1e-12));

  // Kernel matrix with jitter.
  std::vector<std::vector<double>> k(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      const double v = Kernel(x[i], x[j]);
      k[i][j] = v;
      k[j][i] = v;
    }
    k[i][i] += noise_;
  }

  // Cholesky factorization K = L L^T.
  l_.assign(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = k[i][j];
      for (size_t m = 0; m < j; ++m) {
        sum -= l_[i][m] * l_[j][m];
      }
      if (i == j) {
        if (sum <= 0.0) {
          return Status::Internal("GP: kernel matrix not positive definite");
        }
        l_[i][i] = std::sqrt(sum);
      } else {
        l_[i][j] = sum / l_[j][j];
      }
    }
  }

  // Solve K alpha = (y - mean)/std via forward/back substitution.
  std::vector<double> z(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = (y[i] - y_mean_) / y_std_;
    for (size_t m = 0; m < i; ++m) {
      sum -= l_[i][m] * z[m];
    }
    z[i] = sum / l_[i][i];
  }
  alpha_.assign(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double sum = z[i];
    for (size_t m = i + 1; m < n; ++m) {
      sum -= l_[m][i] * alpha_[m];
    }
    alpha_[i] = sum / l_[i][i];
  }
  fitted_ = true;
  return Status::Ok();
}

GaussianProcess::Prediction GaussianProcess::Predict(
    const std::vector<double>& x) const {
  UNITS_CHECK_MSG(fitted_, "GP::Predict before Fit");
  const size_t n = x_train_.size();
  std::vector<double> kstar(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    kstar[i] = Kernel(x, x_train_[i]);
  }
  double mean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean += kstar[i] * alpha_[i];
  }
  // v = L^{-1} k*; var = k(x,x) - v^T v.
  std::vector<double> v(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = kstar[i];
    for (size_t m = 0; m < i; ++m) {
      sum -= l_[i][m] * v[m];
    }
    v[i] = sum / l_[i][i];
  }
  double var = Kernel(x, x) + noise_;
  for (size_t i = 0; i < n; ++i) {
    var -= v[i] * v[i];
  }
  var = std::max(var, 1e-12);

  Prediction out;
  out.mean = mean * y_std_ + y_mean_;
  out.variance = var * y_std_ * y_std_;
  return out;
}

}  // namespace units::hpo
