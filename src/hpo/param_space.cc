#include "hpo/param_space.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/check.h"

namespace units::hpo {

double ParamSet::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  if (const double* d = std::get_if<double>(&it->second)) {
    return *d;
  }
  if (const int64_t* i = std::get_if<int64_t>(&it->second)) {
    return static_cast<double>(*i);
  }
  return fallback;
}

int64_t ParamSet::GetInt(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  if (const int64_t* i = std::get_if<int64_t>(&it->second)) {
    return *i;
  }
  if (const double* d = std::get_if<double>(&it->second)) {
    return static_cast<int64_t>(std::llround(*d));
  }
  return fallback;
}

std::string ParamSet::GetString(const std::string& name,
                                const std::string& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  if (const std::string* s = std::get_if<std::string>(&it->second)) {
    return *s;
  }
  return fallback;
}

ParamSet ParamSet::MergedWith(const ParamSet& other) const {
  ParamSet merged = *this;
  for (const auto& [name, value] : other.values_) {
    merged.values_[name] = value;
  }
  return merged;
}

std::string ParamSet::ToString() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [name, value] : values_) {
    if (!first) {
      out << ", ";
    }
    first = false;
    out << name << "=";
    if (const double* d = std::get_if<double>(&value)) {
      out << *d;
    } else if (const int64_t* i = std::get_if<int64_t>(&value)) {
      out << *i;
    } else {
      out << std::get<std::string>(value);
    }
  }
  out << "}";
  return out.str();
}

ParamSpace& ParamSpace::AddDouble(const std::string& name, double lo,
                                  double hi, bool log_scale) {
  UNITS_CHECK_LT(lo, hi);
  if (log_scale) {
    UNITS_CHECK_GT(lo, 0.0);
  }
  specs_.push_back({name, Kind::kDouble, lo, hi, log_scale, {}});
  return *this;
}

ParamSpace& ParamSpace::AddInt(const std::string& name, int64_t lo,
                               int64_t hi) {
  UNITS_CHECK_LE(lo, hi);
  specs_.push_back({name, Kind::kInt, static_cast<double>(lo),
                    static_cast<double>(hi), false, {}});
  return *this;
}

ParamSpace& ParamSpace::AddCategorical(const std::string& name,
                                       std::vector<std::string> choices) {
  UNITS_CHECK(!choices.empty());
  specs_.push_back({name, Kind::kCategorical, 0.0, 0.0, false,
                    std::move(choices)});
  return *this;
}

ParamSet ParamSpace::Sample(Rng* rng) const {
  std::vector<double> unit(specs_.size());
  for (double& u : unit) {
    u = rng->Uniform();
  }
  return FromUnitVector(unit);
}

std::vector<double> ParamSpace::ToUnitVector(const ParamSet& params) const {
  std::vector<double> unit(specs_.size(), 0.0);
  for (size_t i = 0; i < specs_.size(); ++i) {
    const Spec& spec = specs_[i];
    switch (spec.kind) {
      case Kind::kDouble: {
        double v = params.GetDouble(spec.name, spec.lo);
        if (spec.log_scale) {
          unit[i] = (std::log(v) - std::log(spec.lo)) /
                    (std::log(spec.hi) - std::log(spec.lo));
        } else {
          unit[i] = (v - spec.lo) / (spec.hi - spec.lo);
        }
        break;
      }
      case Kind::kInt: {
        const double v =
            static_cast<double>(params.GetInt(spec.name,
                                              static_cast<int64_t>(spec.lo)));
        unit[i] = spec.hi > spec.lo ? (v - spec.lo) / (spec.hi - spec.lo)
                                    : 0.0;
        break;
      }
      case Kind::kCategorical: {
        const std::string v = params.GetString(spec.name, spec.choices[0]);
        const auto it =
            std::find(spec.choices.begin(), spec.choices.end(), v);
        const size_t idx =
            it != spec.choices.end()
                ? static_cast<size_t>(it - spec.choices.begin())
                : 0;
        unit[i] = spec.choices.size() > 1
                      ? static_cast<double>(idx) /
                            static_cast<double>(spec.choices.size() - 1)
                      : 0.0;
        break;
      }
    }
    unit[i] = std::clamp(unit[i], 0.0, 1.0);
  }
  return unit;
}

ParamSet ParamSpace::FromUnitVector(const std::vector<double>& unit) const {
  UNITS_CHECK_EQ(unit.size(), specs_.size());
  ParamSet out;
  for (size_t i = 0; i < specs_.size(); ++i) {
    const Spec& spec = specs_[i];
    const double u = std::clamp(unit[i], 0.0, 1.0);
    switch (spec.kind) {
      case Kind::kDouble: {
        double v;
        if (spec.log_scale) {
          v = std::exp(std::log(spec.lo) +
                       u * (std::log(spec.hi) - std::log(spec.lo)));
        } else {
          v = spec.lo + u * (spec.hi - spec.lo);
        }
        out.SetDouble(spec.name, v);
        break;
      }
      case Kind::kInt: {
        const int64_t v = static_cast<int64_t>(
            std::llround(spec.lo + u * (spec.hi - spec.lo)));
        out.SetInt(spec.name, v);
        break;
      }
      case Kind::kCategorical: {
        const size_t n = spec.choices.size();
        size_t idx = static_cast<size_t>(u * static_cast<double>(n));
        idx = std::min(idx, n - 1);
        out.SetString(spec.name, spec.choices[idx]);
        break;
      }
    }
  }
  return out;
}

}  // namespace units::hpo
