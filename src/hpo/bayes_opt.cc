#include "hpo/bayes_opt.h"

#include <cmath>

#include "base/check.h"
#include "base/logging.h"

namespace units::hpo {

namespace {

/// Standard normal pdf / cdf.
double NormPdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

double NormCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace

BayesianOptimizer::BayesianOptimizer(const ParamSpace* space, uint64_t seed,
                                     Options options)
    : space_(space), rng_(seed), options_(options) {
  UNITS_CHECK(space != nullptr);
  UNITS_CHECK(!space->empty());
}

double BayesianOptimizer::ExpectedImprovement(const GaussianProcess& gp,
                                              const std::vector<double>& x,
                                              double best_y) const {
  const auto pred = gp.Predict(x);
  const double sigma = std::sqrt(pred.variance);
  if (sigma < 1e-12) {
    return 0.0;
  }
  const double improvement = pred.mean - best_y - options_.xi;
  const double z = improvement / sigma;
  return improvement * NormCdf(z) + sigma * NormPdf(z);
}

ParamSet BayesianOptimizer::Propose() {
  if (static_cast<int64_t>(history_.size()) <
      options_.initial_random_trials) {
    return space_->Sample(&rng_);
  }

  // Fit the surrogate on all observations.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  x.reserve(history_.size());
  y.reserve(history_.size());
  double best_y = history_[0].objective;
  for (const Trial& t : history_) {
    x.push_back(space_->ToUnitVector(t.params));
    y.push_back(t.objective);
    best_y = std::max(best_y, t.objective);
  }
  GaussianProcess gp(options_.gp_length_scale, options_.gp_noise);
  const Status fit_status = gp.Fit(x, y);
  if (!fit_status.ok()) {
    UNITS_LOG(Warning) << "BayesianOptimizer: GP fit failed ("
                       << fit_status.ToString()
                       << "); falling back to random sampling";
    return space_->Sample(&rng_);
  }

  // Maximize EI over random candidates.
  std::vector<double> best_x;
  double best_ei = -1.0;
  const size_t d = space_->num_dims();
  std::vector<double> candidate(d, 0.0);
  for (int64_t s = 0; s < options_.acquisition_samples; ++s) {
    for (double& u : candidate) {
      u = rng_.Uniform();
    }
    const double ei = ExpectedImprovement(gp, candidate, best_y);
    if (ei > best_ei) {
      best_ei = ei;
      best_x = candidate;
    }
  }
  return space_->FromUnitVector(best_x);
}

void BayesianOptimizer::Observe(const Trial& trial) {
  history_.push_back(trial);
}

}  // namespace units::hpo
