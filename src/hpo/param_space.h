#ifndef UNITS_HPO_PARAM_SPACE_H_
#define UNITS_HPO_PARAM_SPACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "base/rng.h"
#include "base/status.h"

namespace units::hpo {

/// A concrete hyper-parameter assignment (name -> value).
class ParamSet {
 public:
  using Value = std::variant<double, int64_t, std::string>;

  void SetDouble(const std::string& name, double v) { values_[name] = v; }
  void SetInt(const std::string& name, int64_t v) { values_[name] = v; }
  void SetString(const std::string& name, std::string v) {
    values_[name] = std::move(v);
  }

  bool Contains(const std::string& name) const {
    return values_.count(name) > 0;
  }

  /// Typed getters with fallback defaults (Manual mode overrides Defaults).
  double GetDouble(const std::string& name, double fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;

  const std::map<std::string, Value>& values() const { return values_; }

  /// Merges `other` on top of this set (other wins on conflicts).
  ParamSet MergedWith(const ParamSet& other) const;

  std::string ToString() const;

 private:
  std::map<std::string, Value> values_;
};

/// Declarative search space: each dimension is a continuous range (linear
/// or log scale), an integer range, or a categorical choice.
class ParamSpace {
 public:
  ParamSpace& AddDouble(const std::string& name, double lo, double hi,
                        bool log_scale = false);
  ParamSpace& AddInt(const std::string& name, int64_t lo, int64_t hi);
  ParamSpace& AddCategorical(const std::string& name,
                             std::vector<std::string> choices);

  size_t num_dims() const { return specs_.size(); }
  bool empty() const { return specs_.empty(); }

  /// Uniform random sample from the space.
  ParamSet Sample(Rng* rng) const;

  /// Encodes a ParamSet into [0,1]^d (categoricals as index / (n-1)).
  /// Used by the Gaussian-process surrogate.
  std::vector<double> ToUnitVector(const ParamSet& params) const;

  /// Decodes a point of the unit cube back to parameter values.
  ParamSet FromUnitVector(const std::vector<double>& unit) const;

 private:
  enum class Kind { kDouble, kInt, kCategorical };
  struct Spec {
    std::string name;
    Kind kind;
    double lo = 0.0;
    double hi = 1.0;
    bool log_scale = false;
    std::vector<std::string> choices;
  };
  std::vector<Spec> specs_;
};

/// One evaluated configuration.
struct Trial {
  ParamSet params;
  double objective = 0.0;  // larger is better
};

}  // namespace units::hpo

#endif  // UNITS_HPO_PARAM_SPACE_H_
