#ifndef UNITS_HPO_GP_H_
#define UNITS_HPO_GP_H_

#include <vector>

#include "base/status.h"

namespace units::hpo {

/// Gaussian-process regression with an RBF (squared-exponential) kernel,
/// used as the surrogate model of the Smart (Bayesian optimization) mode.
/// Observations are points in the unit hypercube with scalar targets.
class GaussianProcess {
 public:
  /// `length_scale` controls kernel width; `noise` is added to the diagonal
  /// for numerical stability and observation noise.
  GaussianProcess(double length_scale = 0.25, double noise = 1e-4);

  /// Fits on X (n points, each of dimension d) and targets y (size n).
  /// Targets are standardized internally.
  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y);

  /// Posterior mean and variance at a query point (in original y units).
  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;
  };
  Prediction Predict(const std::vector<double>& x) const;

  bool fitted() const { return fitted_; }

 private:
  double Kernel(const std::vector<double>& a,
                const std::vector<double>& b) const;

  double length_scale_;
  double noise_;
  bool fitted_ = false;
  std::vector<std::vector<double>> x_train_;
  std::vector<double> alpha_;           // K^{-1} (y - mean)
  std::vector<std::vector<double>> l_;  // Cholesky factor of K
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
};

}  // namespace units::hpo

#endif  // UNITS_HPO_GP_H_
