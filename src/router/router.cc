#include "router/router.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "base/logging.h"
#include "router/worker_process.h"
#include "serve/net_util.h"
#include "serve/serve_stats.h"

namespace units::router {

namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kReadChunk = 64 * 1024;

Clock::duration SecondsToDuration(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

/// {"id"?, "ok": false, "error": msg} — the worker's error shape, so
/// clients cannot tell a router-originated error from a worker one.
std::string ErrorLine(const json::JsonValue& id, const std::string& message) {
  json::JsonValue resp = json::JsonValue::Object();
  if (!id.is_null()) {
    resp.Set("id", id);
  }
  resp.Set("ok", json::JsonValue::Bool(false));
  resp.Set("error", json::JsonValue::String(message));
  return resp.Dump();
}

/// Error response for a stored request line: echoes its "id" when the
/// line still parses (it did when first routed).
std::string ErrorForLine(const std::string& request_line,
                         const std::string& message) {
  auto parsed = json::Parse(request_line);
  if (parsed.ok() && parsed->is_object() && parsed->Contains("id")) {
    return ErrorLine(parsed->at("id"), message);
  }
  return ErrorLine(json::JsonValue(), message);
}

Result<std::string> GetString(const json::JsonValue& request,
                              const std::string& key) {
  if (!request.Contains(key) || !request.at(key).is_string()) {
    return Status::InvalidArgument("field '" + key + "' must be a string");
  }
  return request.at(key).AsString();
}

bool ResponseOk(const std::string& line) {
  auto parsed = json::Parse(line);
  return parsed.ok() && parsed->is_object() && parsed->Contains("ok") &&
         parsed->at("ok").is_bool() && parsed->at("ok").AsBool();
}

void Inc(std::map<std::string, int>* counts, const std::string& key) {
  (*counts)[key] += 1;
}

void Dec(std::map<std::string, int>* counts, const std::string& key) {
  auto it = counts->find(key);
  if (it != counts->end() && --it->second <= 0) {
    counts->erase(it);
  }
}

const char* StateName(int state) {
  switch (state) {
    case 0: return "spawning";
    case 1: return "healthy";
    case 2: return "backoff";
    default: return "unknown";
  }
}

}  // namespace

Router::Router(Options options)
    : options_(std::move(options)), ring_(options_.virtual_nodes) {}

Router::~Router() {
  // Abandoned without a drain (a test tearing down, Start() failing):
  // make sure no worker outlives the router.
  for (auto& s : shards_) {
    if (s->pid > 0) {
      ::kill(s->pid, SIGKILL);
      int status = 0;
      pid_t r;
      do {
        r = ::waitpid(s->pid, &status, 0);
      } while (r < 0 && errno == EINTR);
    }
    for (int fd : {s->stderr_fd, s->data_fd, s->ctrl_fd}) {
      if (fd >= 0) {
        ::close(fd);
      }
    }
  }
  for (auto& [fd, conn] : clients_) {
    ::close(fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
  }
  if (wake_fds_[0] >= 0) {
    ::close(wake_fds_[0]);
  }
  const int wake_write = wake_write_fd_.exchange(-1);
  if (wake_write >= 0) {
    ::close(wake_write);
  }
}

Status Router::Start() {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("router already started");
  }
  if (options_.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options_.worker_binary.empty()) {
    options_.worker_binary = DefaultWorkerBinary();
  }
  if (options_.worker_binary.empty()) {
    return Status::InvalidArgument(
        "worker binary not found: pass Options::worker_binary or set "
        "UNITS_SERVE_BIN");
  }
  if (::access(options_.worker_binary.c_str(), X_OK) != 0) {
    return Status::InvalidArgument("worker binary '" +
                                   options_.worker_binary +
                                   "' is not executable");
  }
  if (::pipe2(wake_fds_, O_NONBLOCK | O_CLOEXEC) != 0) {
    return Status::IoError(std::string("pipe2: ") + std::strerror(errno));
  }
  wake_write_fd_.store(wake_fds_[1], std::memory_order_relaxed);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::IoError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  bound_port_ = static_cast<int>(ntohs(addr.sin_port));

  const auto now = Clock::now();
  for (int i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shards_.push_back(std::move(shard));
    SpawnShard(shards_.back().get(), now);
  }
  UNITS_LOG(Info) << "router listening on " << options_.bind_address << ":"
                  << bound_port_ << " with " << options_.num_shards
                  << " shards";
  return Status::Ok();
}

void Router::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  const int fd = wake_write_fd_.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    (void)!::write(fd, &byte, 1);
  }
}

void Router::DrainWakePipe() {
  char buf[256];
  while (serve::ReadRetry(wake_fds_[0], buf, sizeof(buf)) > 0) {
  }
}

// --- Shard lifecycle -------------------------------------------------------

void Router::SpawnShard(Shard* s, Clock::time_point now) {
  std::vector<std::string> args = {"--port", "0"};
  args.insert(args.end(), options_.worker_args.begin(),
              options_.worker_args.end());
  auto spawned = SpawnWorker(options_.worker_binary, args);
  if (!spawned.ok()) {
    UNITS_LOG(Error) << "shard " << s->index
                     << " spawn failed: " << spawned.status().ToString();
    s->state = Shard::State::kBackoff;
    s->backoff_s = s->backoff_s <= 0.0
                       ? options_.respawn_backoff_s
                       : std::min(s->backoff_s * 2.0,
                                  options_.respawn_backoff_max_s);
    s->respawn_at = now + SecondsToDuration(s->backoff_s);
    return;
  }
  s->pid = spawned->pid;
  s->stderr_fd = spawned->stderr_fd;
  s->stderr_buf.clear();
  s->port = 0;
  s->state = Shard::State::kSpawning;
  s->spawn_deadline = now + SecondsToDuration(options_.spawn_timeout_s);
  if (s->deaths > 0) {
    counters_.respawns += 1;
  }
}

void Router::OnShardListening(Shard* s, int port, Clock::time_point now) {
  auto data = ConnectTcp("127.0.0.1", port);
  auto ctrl = data.ok() ? ConnectTcp("127.0.0.1", port)
                        : Result<int>(data.status());
  if (!data.ok() || !ctrl.ok()) {
    if (data.ok()) {
      ::close(*data);
    }
    MarkDead(s, now,
             "connect failed: " + (data.ok() ? ctrl : data).status().ToString());
    return;
  }
  s->port = port;
  s->data_fd = *data;
  s->ctrl_fd = *ctrl;
  s->state = Shard::State::kHealthy;
  s->last_pong = now;
  // Make the first health ping due immediately.
  s->last_ping_sent = now - SecondsToDuration(options_.health_interval_s);
  s->ping_outstanding = false;
  s->backoff_s = 0.0;
  ring_.AddNode(s->index);
  UNITS_LOG(Info) << "shard " << s->index << " healthy on port " << port
                  << " (pid " << s->pid << ")";
}

void Router::FailPendings(Shard* s, Clock::time_point now) {
  const auto retry_after = now + SecondsToDuration(
                                     options_.retry_backoff_ms / 1000.0);
  auto fail_queue = [&](std::deque<Pending>* q) {
    for (Pending& p : *q) {
      switch (p.kind) {
        case Pending::Kind::kClient:
          if (p.op.empty() && p.retries_left > 0) {
            // Idempotent predict: retry against the successor shard once
            // the backoff elapses (the ring no longer contains this one).
            counters_.retries += 1;
            held_[p.model].push_back({p.client_fd, p.entry_id,
                                      std::move(p.line), p.model,
                                      p.retries_left - 1, retry_after});
          } else {
            counters_.unavailable += 1;
            CompleteEntry(p.client_fd, p.entry_id,
                          ErrorForLine(
                              p.line,
                              "unavailable: worker shard died mid-request") +
                              "\n");
          }
          break;
        case Pending::Kind::kFanout:
          if (--p.fanout->outstanding == 0) {
            CompleteFanout(p.fanout);
          }
          break;
        case Pending::Kind::kHealth:
        case Pending::Kind::kInternal:
          break;  // bookkeeping resets below; Reconcile reissues
      }
    }
    q->clear();
  };
  fail_queue(&s->data_pending);
  fail_queue(&s->ctrl_pending);
}

void Router::MarkDead(Shard* s, Clock::time_point now,
                      const std::string& reason) {
  UNITS_LOG(Warning) << "shard " << s->index << " down: " << reason;
  counters_.worker_deaths += 1;
  s->deaths += 1;
  ring_.RemoveNode(s->index);
  for (int* fd : {&s->stderr_fd, &s->data_fd, &s->ctrl_fd}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
  s->stderr_buf.clear();
  s->data_rbuf.clear();
  s->data_wbuf.clear();
  s->ctrl_rbuf.clear();
  s->ctrl_wbuf.clear();
  FailPendings(s, now);
  s->loaded.clear();
  s->loading.clear();
  s->unloading.clear();
  s->ping_outstanding = false;
  if (s->pid > 0) {
    ::kill(s->pid, SIGKILL);  // idempotent; a hung worker must actually die
  }
  s->state = Shard::State::kBackoff;
  s->backoff_s = s->backoff_s <= 0.0
                     ? options_.respawn_backoff_s
                     : std::min(s->backoff_s * 2.0,
                                options_.respawn_backoff_max_s);
  s->respawn_at = now + SecondsToDuration(s->backoff_s);
}

void Router::ReapAndRespawn(Clock::time_point now) {
  const bool draining = drain_requested_.load(std::memory_order_acquire);
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    if (s->pid > 0) {
      int status = 0;
      const pid_t r = ::waitpid(s->pid, &status, WNOHANG);
      if (r == s->pid) {
        s->pid = -1;
        if (s->state != Shard::State::kBackoff) {
          MarkDead(s, now, "worker exited");
        }
      }
    }
    if (s->state == Shard::State::kSpawning && now > s->spawn_deadline) {
      MarkDead(s, now, "no port announcement within spawn timeout");
    }
    if (!draining && s->state == Shard::State::kBackoff && s->pid < 0 &&
        now >= s->respawn_at) {
      SpawnShard(s, now);
    }
  }
}

void Router::HealthTick(Clock::time_point now) {
  const auto interval = SecondsToDuration(options_.health_interval_s);
  const auto timeout = SecondsToDuration(options_.health_timeout_s);
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    if (s->state != Shard::State::kHealthy) {
      continue;
    }
    if (now - s->last_pong > timeout) {
      counters_.health_evictions += 1;
      MarkDead(s, now, "health check timed out");
      continue;
    }
    if (!s->ping_outstanding && now - s->last_ping_sent >= interval) {
      Pending p;
      p.kind = Pending::Kind::kHealth;
      SendToShard(s, /*ctrl=*/true, "{\"op\": \"ping\"}", std::move(p));
      s->ping_outstanding = true;
      s->last_ping_sent = now;
    }
  }
}

void Router::Reconcile() {
  // Converge every desired model toward exactly one replica, on its ring
  // owner. The new owner confirms its load before any other shard is asked
  // to unload, so a healthy model never has a zero-replica window.
  const auto now = Clock::now();
  for (const auto& [model, path] : desired_models_) {
    const int owner = ring_.Lookup(model);
    if (owner < 0) {
      continue;  // no healthy shards; predicts answer "unavailable"
    }
    Shard* s = shards_[owner].get();
    auto backoff = load_retry_after_.find(model);
    if (backoff != load_retry_after_.end() && now < backoff->second) {
      continue;
    }
    if (s->loaded.count(model) == 0 && s->loading.count(model) == 0) {
      json::JsonValue req = json::JsonValue::Object();
      req.Set("op", json::JsonValue::String("load"));
      req.Set("model", json::JsonValue::String(model));
      req.Set("path", json::JsonValue::String(path));
      Pending p;
      p.kind = Pending::Kind::kInternal;
      p.model = model;
      p.op = "load";
      p.path = path;
      Inc(&s->loading, model);
      SendToShard(s, /*ctrl=*/true, req.Dump(), std::move(p));
    }
    if (s->loaded.count(model) > 0) {
      for (auto& other : shards_) {
        Shard* t = other.get();
        if (t == s || t->state != Shard::State::kHealthy) {
          continue;
        }
        if (t->loaded.count(model) > 0 && t->unloading.count(model) == 0) {
          // Predicts already forwarded to `t` may still be parked in its
          // batcher (their responses arrive only once the batch flushes),
          // and the worker's unload barrier is per-connection: an unload on
          // the control connection would drop the model out from under
          // predicts in flight on the data connection. Hold the unload
          // until every forwarded predict for this model has answered; the
          // next pass retries.
          bool in_flight = false;
          for (const Pending& dp : t->data_pending) {
            if (dp.model == model) {
              in_flight = true;
              break;
            }
          }
          if (in_flight) {
            continue;
          }
          json::JsonValue req = json::JsonValue::Object();
          req.Set("op", json::JsonValue::String("unload"));
          req.Set("model", json::JsonValue::String(model));
          Pending p;
          p.kind = Pending::Kind::kInternal;
          p.model = model;
          p.op = "unload";
          Inc(&t->unloading, model);
          SendToShard(t, /*ctrl=*/true, req.Dump(), std::move(p));
        }
      }
    }
  }
}

// --- Shard I/O -------------------------------------------------------------

void Router::SendToShard(Shard* s, bool ctrl, const std::string& line,
                         Pending p) {
  std::string& wbuf = ctrl ? s->ctrl_wbuf : s->data_wbuf;
  wbuf += line;
  wbuf += '\n';
  (ctrl ? s->ctrl_pending : s->data_pending).push_back(std::move(p));
}

void Router::ReadShardStderr(Shard* s, Clock::time_point now) {
  char buf[4096];
  for (;;) {
    const ssize_t n = serve::ReadRetry(s->stderr_fd, buf, sizeof(buf));
    if (n > 0) {
      s->stderr_buf.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      ::close(s->stderr_fd);
      s->stderr_fd = -1;
      if (s->state == Shard::State::kSpawning) {
        MarkDead(s, now, "worker exited before announcing its port");
      }
      break;
    }
    break;  // EAGAIN (or a transient error): try again next pass
  }
  if (s->state == Shard::State::kSpawning) {
    const int port = FindPortAnnouncement(s->stderr_buf);
    if (port > 0) {
      OnShardListening(s, port, now);
    }
  }
  // Forward complete worker log lines under a shard prefix.
  size_t start = 0;
  size_t pos;
  while ((pos = s->stderr_buf.find('\n', start)) != std::string::npos) {
    const std::string line = s->stderr_buf.substr(start, pos - start);
    start = pos + 1;
    if (!line.empty()) {
      std::fprintf(stderr, "[shard %d] %s\n", s->index, line.c_str());
    }
  }
  s->stderr_buf.erase(0, start);
}

bool Router::ReadShardConn(Shard* s, bool ctrl, Clock::time_point now) {
  const int fd = ctrl ? s->ctrl_fd : s->data_fd;
  std::string& rbuf = ctrl ? s->ctrl_rbuf : s->data_rbuf;
  char buf[kReadChunk];
  for (;;) {
    const ssize_t n = serve::ReadRetry(fd, buf, sizeof(buf));
    if (n > 0) {
      rbuf.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      MarkDead(s, now, ctrl ? "control connection closed"
                            : "data connection closed");
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    MarkDead(s, now, std::string("read: ") + std::strerror(errno));
    return false;
  }
  size_t start = 0;
  size_t pos;
  while ((pos = rbuf.find('\n', start)) != std::string::npos) {
    std::string line = rbuf.substr(start, pos - start);
    start = pos + 1;
    if (!line.empty()) {
      HandleShardLine(s, ctrl, line, now);
    }
  }
  rbuf.erase(0, start);
  return true;
}

bool Router::FlushShardConn(Shard* s, bool ctrl) {
  const int fd = ctrl ? s->ctrl_fd : s->data_fd;
  std::string& wbuf = ctrl ? s->ctrl_wbuf : s->data_wbuf;
  while (!wbuf.empty()) {
    const ssize_t n =
        serve::SendRetry(fd, wbuf.data(), wbuf.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return true;
      }
      return false;
    }
    wbuf.erase(0, static_cast<size_t>(n));
  }
  return true;
}

void Router::HandleShardLine(Shard* s, bool ctrl, const std::string& line,
                             Clock::time_point now) {
  s->last_pong = now;  // any response proves the worker is alive
  auto& q = ctrl ? s->ctrl_pending : s->data_pending;
  if (q.empty()) {
    UNITS_LOG(Warning) << "shard " << s->index
                       << " sent an unsolicited response; dropping";
    return;
  }
  Pending p = std::move(q.front());
  q.pop_front();
  switch (p.kind) {
    case Pending::Kind::kHealth:
      s->ping_outstanding = false;
      break;
    case Pending::Kind::kClient:
      if (!p.op.empty()) {
        NoteControlResponse(s, p, line);
      }
      // Forwarded byte-for-byte: a predict via the router is bitwise
      // identical to one answered by the worker directly.
      CompleteEntry(p.client_fd, p.entry_id, line + "\n");
      break;
    case Pending::Kind::kInternal:
      NoteControlResponse(s, p, line);
      break;
    case Pending::Kind::kFanout:
      p.fanout->responses[s->index] = line;
      if (--p.fanout->outstanding == 0) {
        CompleteFanout(p.fanout);
      }
      break;
  }
}

void Router::NoteControlResponse(Shard* s, const Pending& p,
                                 const std::string& line) {
  const bool ok = ResponseOk(line);
  if (p.op == "load" || p.op == "reload" || p.op == "quantize") {
    Dec(&s->loading, p.model);
    if (ok) {
      s->loaded.insert(p.model);
      load_retry_after_.erase(p.model);
      if (p.kind == Pending::Kind::kClient && p.op == "load") {
        desired_models_[p.model] = p.path;
      }
    } else if (p.kind == Pending::Kind::kInternal) {
      UNITS_LOG(Warning) << "shard " << s->index << " failed to load '"
                         << p.model << "': " << line;
      load_retry_after_[p.model] = Clock::now() + SecondsToDuration(1.0);
    }
  } else if (p.op == "unload") {
    Dec(&s->unloading, p.model);
    if (ok) {
      s->loaded.erase(p.model);
      if (p.kind == Pending::Kind::kClient) {
        desired_models_.erase(p.model);
      }
    }
  }
}

// --- Client I/O ------------------------------------------------------------

void Router::AcceptNew(Clock::time_point now) {
  for (;;) {
    const int fd = serve::Accept4Retry(listen_fd_, nullptr, nullptr,
                                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      return;
    }
    auto conn = std::make_unique<ClientConn>();
    conn->fd = fd;
    conn->last_activity = now;
    clients_.emplace(fd, std::move(conn));
  }
}

bool Router::ReadClient(ClientConn* c, Clock::time_point now) {
  char buf[kReadChunk];
  const ssize_t n = serve::ReadRetry(c->fd, buf, sizeof(buf));
  if (n == 0) {
    c->read_closed = true;
    return true;
  }
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return true;
    }
    return false;
  }
  c->last_activity = now;
  c->rbuf.append(buf, static_cast<size_t>(n));
  if (c->proto == ClientConn::Proto::kUnknown) {
    bool decided = false;
    const bool is_http = serve::SniffHttp(c->rbuf, &decided);
    if (!decided) {
      return true;
    }
    if (is_http) {
      c->proto = ClientConn::Proto::kHttp;
      serve::HttpRequestParser::Limits limits;
      limits.max_body_bytes = options_.max_line_bytes;
      c->http = std::make_unique<serve::HttpConnState>(limits);
    } else {
      c->proto = ClientConn::Proto::kNdjson;
    }
  }
  if (c->proto == ClientConn::Proto::kHttp) {
    ConsumeClientHttp(c);
  } else {
    ConsumeClientNdjson(c);
  }
  return true;
}

void Router::ConsumeClientNdjson(ClientConn* c) {
  size_t start = 0;
  size_t pos;
  while (!c->read_closed &&
         (pos = c->rbuf.find('\n', start)) != std::string::npos) {
    std::string line = c->rbuf.substr(start, pos - start);
    start = pos + 1;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (c->discarding_line) {
      c->discarding_line = false;
      continue;
    }
    if (line.find_first_not_of(" \t") == std::string::npos) {
      continue;
    }
    RouteClientLine(c, line);
  }
  c->rbuf.erase(0, start);
  if (!c->discarding_line && c->rbuf.size() > options_.max_line_bytes) {
    ClientEntry entry;
    entry.id = next_entry_id_++;
    entry.ready = true;
    entry.line = ErrorLine(json::JsonValue(),
                           "request line exceeds " +
                               std::to_string(options_.max_line_bytes) +
                               " bytes") +
                 "\n";
    c->entries.push_back(std::move(entry));
    c->discarding_line = true;
    c->rbuf.clear();
  }
}

void Router::ConsumeClientHttp(ClientConn* c) {
  // Mirrors the worker transport: every HTTP request yields exactly one
  // response entry and one meta record, matched FIFO at flush time.
  while (!c->read_closed) {
    serve::HttpRequest request;
    const auto outcome = c->http->parser.Next(&c->rbuf, &request);
    if (outcome == serve::HttpRequestParser::Outcome::kNeedMore) {
      return;
    }
    if (outcome == serve::HttpRequestParser::Outcome::kError) {
      ClientEntry entry;
      entry.id = next_entry_id_++;
      entry.ready = true;
      entry.line =
          ErrorLine(json::JsonValue(), c->http->parser.error()) + "\n";
      c->entries.push_back(std::move(entry));
      c->http->meta.push_back({false, c->http->parser.status()});
      c->read_closed = true;
      ::shutdown(c->fd, SHUT_RD);
      return;
    }
    auto line = serve::HttpRequestToLine(request);
    if (!line.ok()) {
      const std::string& message = line.status().message();
      const size_t space = message.find(' ');
      const int status = std::atoi(message.c_str());
      ClientEntry entry;
      entry.id = next_entry_id_++;
      entry.ready = true;
      entry.line = ErrorLine(json::JsonValue(),
                             space == std::string::npos
                                 ? message
                                 : message.substr(space + 1)) +
                   "\n";
      c->entries.push_back(std::move(entry));
      c->http->meta.push_back({request.keep_alive, status > 0 ? status : 400});
    } else {
      c->http->meta.push_back({request.keep_alive, 0});
      RouteClientLine(c, *line);
    }
    if (!request.keep_alive) {
      c->read_closed = true;
      ::shutdown(c->fd, SHUT_RD);
    }
  }
}

bool Router::FlushClient(ClientConn* c, Clock::time_point now) {
  std::string response;
  while (c->wbuf.size() < options_.max_write_buffer_bytes &&
         !c->entries.empty() && c->entries.front().ready) {
    response = std::move(c->entries.front().line);
    c->entries.pop_front();
    if (c->proto == ClientConn::Proto::kHttp) {
      serve::HttpResponseMeta meta{false, 500};
      if (!c->http->meta.empty()) {
        meta = c->http->meta.front();
        c->http->meta.pop_front();
      }
      c->wbuf +=
          serve::RenderHttpResponse(meta.status, response, meta.keep_alive);
    } else {
      c->wbuf += response;
    }
  }
  while (!c->wbuf.empty()) {
    const ssize_t n =
        serve::SendRetry(c->fd, c->wbuf.data(), c->wbuf.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return true;
      }
      return false;
    }
    c->wbuf.erase(0, static_cast<size_t>(n));
    c->last_activity = now;
  }
  return true;
}

void Router::CloseClient(int fd) {
  auto it = clients_.find(fd);
  if (it == clients_.end()) {
    return;
  }
  ::close(fd);
  // Responses still in flight for this client find no matching entry when
  // they arrive and are dropped (entry ids are globally unique, so a
  // reused fd can never receive a stale response).
  clients_.erase(it);
}

// --- Routing ---------------------------------------------------------------

void Router::RouteClientLine(ClientConn* c, const std::string& line) {
  counters_.requests += 1;
  ClientEntry entry;
  entry.id = next_entry_id_++;
  const uint64_t entry_id = entry.id;
  c->entries.push_back(std::move(entry));
  auto finish_local = [&](const std::string& response) {
    CompleteEntry(c->fd, entry_id, response + "\n");
  };

  if (line.size() > options_.max_line_bytes) {
    finish_local(ErrorLine(json::JsonValue(),
                           "request line exceeds " +
                               std::to_string(options_.max_line_bytes) +
                               " bytes"));
    return;
  }
  auto parsed = json::Parse(line);
  if (!parsed.ok() || !parsed->is_object() || !parsed->Contains("op") ||
      !parsed->at("op").is_string()) {
    finish_local(ErrorLine(json::JsonValue(),
                           parsed.ok() ? "request needs a string 'op' field"
                                       : parsed.status().ToString()));
    return;
  }
  const json::JsonValue& request = *parsed;
  const std::string op = request.at("op").AsString();
  const json::JsonValue id =
      request.Contains("id") ? request.at("id") : json::JsonValue();

  if (op == "predict") {
    auto model = GetString(request, "model");
    if (!model.ok()) {
      finish_local(ErrorLine(id, model.status().ToString()));
      return;
    }
    DispatchPredict(c->fd, entry_id, line, *model, options_.max_retries,
                    Clock::now());
    return;
  }
  if (op == "load" || op == "unload" || op == "reload" || op == "quantize") {
    DispatchControl(c, entry_id, request, op, line);
    return;
  }
  if (op == "stats" || op == "list") {
    DispatchFanout(c, entry_id, op, id);
    return;
  }
  if (op == "ping") {
    json::JsonValue resp = json::JsonValue::Object();
    resp.Set("ok", json::JsonValue::Bool(true));
    resp.Set("op", json::JsonValue::String(op));
    if (!id.is_null()) {
      resp.Set("id", id);
    }
    finish_local(resp.Dump());
    return;
  }
  if (op == "quit") {
    json::JsonValue resp = json::JsonValue::Object();
    resp.Set("ok", json::JsonValue::Bool(true));
    resp.Set("op", json::JsonValue::String(op));
    finish_local(resp.Dump());
    c->read_closed = true;
    ::shutdown(c->fd, SHUT_RD);
    return;
  }
  if (op == "stream_open" || op == "stream_feed" || op == "stream_close") {
    finish_local(ErrorLine(
        id,
        "streaming is not supported through the router; connect to a worker "
        "shard directly"));
    return;
  }
  finish_local(ErrorLine(json::JsonValue(), "unknown op '" + op + "'"));
}

void Router::DispatchPredict(int client_fd, uint64_t entry_id,
                             const std::string& line, const std::string& model,
                             int retries_left, Clock::time_point now) {
  const int owner = ring_.Lookup(model);
  if (owner < 0) {
    counters_.unavailable += 1;
    CompleteEntry(client_fd, entry_id,
                  ErrorForLine(line, "unavailable: no healthy shards") + "\n");
    return;
  }
  Shard* s = shards_[owner].get();
  auto held_it = held_.find(model);
  if (s->loading.count(model) > 0 ||
      (held_it != held_.end() && !held_it->second.empty())) {
    // A (re)load for this model is in flight on its owner: hold the
    // predict until the load settles, otherwise the worker would see the
    // predict first and answer "model not found".
    counters_.held += 1;
    held_[model].push_back({client_fd, entry_id, line, model, retries_left,
                            now});
    return;
  }
  Pending p;
  p.kind = Pending::Kind::kClient;
  p.client_fd = client_fd;
  p.entry_id = entry_id;
  p.line = line;
  p.model = model;
  p.retries_left = retries_left;
  counters_.forwarded += 1;
  SendToShard(s, /*ctrl=*/false, line, std::move(p));
}

void Router::DispatchControl(ClientConn* c, uint64_t entry_id,
                             const json::JsonValue& request,
                             const std::string& op, const std::string& line) {
  const json::JsonValue id =
      request.Contains("id") ? request.at("id") : json::JsonValue();
  auto model = GetString(request, "model");
  if (!model.ok()) {
    CompleteEntry(c->fd, entry_id,
                  ErrorLine(json::JsonValue(), model.status().ToString()) +
                      "\n");
    return;
  }
  std::string path;
  if (op == "load") {
    auto p = GetString(request, "path");
    if (!p.ok()) {
      CompleteEntry(c->fd, entry_id,
                    ErrorLine(json::JsonValue(), p.status().ToString()) +
                        "\n");
      return;
    }
    path = *p;
  }
  const int owner = ring_.Lookup(*model);
  if (owner < 0) {
    counters_.unavailable += 1;
    CompleteEntry(c->fd, entry_id,
                  ErrorLine(id, "unavailable: no healthy shards") + "\n");
    return;
  }
  Shard* s = shards_[owner].get();
  if (op == "load" || op == "reload" || op == "quantize") {
    // quantize holds predicts like a reload: requests routed after it must
    // not race the precision switch on the worker.
    Inc(&s->loading, *model);
  } else {
    Inc(&s->unloading, *model);
  }
  Pending p;
  p.kind = Pending::Kind::kClient;
  p.client_fd = c->fd;
  p.entry_id = entry_id;
  p.line = line;
  p.model = *model;
  p.op = op;
  p.path = path;
  counters_.forwarded += 1;
  SendToShard(s, /*ctrl=*/true, line, std::move(p));
}

void Router::DispatchFanout(ClientConn* c, uint64_t entry_id,
                            const std::string& op, const json::JsonValue& id) {
  auto fanout = std::make_shared<FanoutState>();
  fanout->client_fd = c->fd;
  fanout->entry_id = entry_id;
  fanout->op = op;
  fanout->id = id;
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    if (s->state != Shard::State::kHealthy) {
      continue;
    }
    Pending p;
    p.kind = Pending::Kind::kFanout;
    p.fanout = fanout;
    SendToShard(s, /*ctrl=*/true, "{\"op\": \"" + op + "\"}", std::move(p));
    fanout->outstanding += 1;
  }
  if (fanout->outstanding == 0) {
    CompleteFanout(fanout);  // zero healthy shards: router-only aggregate
  }
}

void Router::CompleteFanout(const std::shared_ptr<FanoutState>& fanout) {
  CompleteEntry(fanout->client_fd, fanout->entry_id,
                RenderFanout(*fanout) + "\n");
}

json::JsonValue Router::RouterStats() const {
  json::JsonValue r = json::JsonValue::Object();
  r.Set("uptime_s", json::JsonValue::Number(serve::ProcessUptimeSeconds()));
  r.Set("rss_bytes", json::JsonValue::Int(serve::CurrentRssBytes()));
  r.Set("pid", json::JsonValue::Int(static_cast<int64_t>(::getpid())));
  r.Set("shards", json::JsonValue::Int(static_cast<int64_t>(shards_.size())));
  int64_t healthy = 0;
  for (const auto& s : shards_) {
    healthy += s->state == Shard::State::kHealthy ? 1 : 0;
  }
  r.Set("healthy_shards", json::JsonValue::Int(healthy));
  r.Set("models",
        json::JsonValue::Int(static_cast<int64_t>(desired_models_.size())));
  r.Set("requests", json::JsonValue::Int(counters_.requests));
  r.Set("forwarded", json::JsonValue::Int(counters_.forwarded));
  r.Set("held", json::JsonValue::Int(counters_.held));
  r.Set("retries", json::JsonValue::Int(counters_.retries));
  r.Set("unavailable", json::JsonValue::Int(counters_.unavailable));
  r.Set("worker_deaths", json::JsonValue::Int(counters_.worker_deaths));
  r.Set("respawns", json::JsonValue::Int(counters_.respawns));
  r.Set("health_evictions",
        json::JsonValue::Int(counters_.health_evictions));
  return r;
}

std::string Router::RenderFanout(const FanoutState& fanout) const {
  json::JsonValue resp = json::JsonValue::Object();
  if (!fanout.id.is_null()) {
    resp.Set("id", fanout.id);
  }
  resp.Set("ok", json::JsonValue::Bool(true));
  resp.Set("op", json::JsonValue::String(fanout.op));
  if (fanout.op == "list") {
    json::JsonValue models = json::JsonValue::Array();
    for (const auto& [index, line] : fanout.responses) {
      auto parsed = json::Parse(line);
      if (!parsed.ok() || !parsed->is_object() ||
          !parsed->Contains("models") || !parsed->at("models").is_array()) {
        continue;
      }
      const json::JsonValue& shard_models = parsed->at("models");
      for (size_t i = 0; i < shard_models.size(); ++i) {
        json::JsonValue entry = shard_models[i];
        entry.Set("shard", json::JsonValue::Int(index));
        models.Append(std::move(entry));
      }
    }
    resp.Set("models", std::move(models));
    return resp.Dump();
  }
  // stats: router-level counters plus a per-shard rollup embedding each
  // worker's own stats document.
  resp.Set("router", RouterStats());
  json::JsonValue shards = json::JsonValue::Array();
  for (const auto& shard : shards_) {
    const Shard* s = shard.get();
    json::JsonValue entry = json::JsonValue::Object();
    entry.Set("shard", json::JsonValue::Int(s->index));
    entry.Set("state",
              json::JsonValue::String(StateName(static_cast<int>(s->state))));
    entry.Set("pid", json::JsonValue::Int(static_cast<int64_t>(s->pid)));
    entry.Set("port", json::JsonValue::Int(s->port));
    entry.Set("deaths", json::JsonValue::Int(s->deaths));
    json::JsonValue models = json::JsonValue::Array();
    for (const std::string& m : s->loaded) {
      models.Append(json::JsonValue::String(m));
    }
    entry.Set("models", std::move(models));
    auto it = fanout.responses.find(s->index);
    if (it != fanout.responses.end()) {
      auto parsed = json::Parse(it->second);
      if (parsed.ok() && parsed->is_object() && parsed->Contains("stats")) {
        entry.Set("stats", parsed->at("stats"));
      }
    }
    shards.Append(std::move(entry));
  }
  resp.Set("shards", std::move(shards));
  return resp.Dump();
}

void Router::FlushHeld(Clock::time_point now) {
  std::vector<HeldPredict> runnable;
  for (auto it = held_.begin(); it != held_.end();) {
    std::deque<HeldPredict>& q = it->second;
    const int owner = ring_.Lookup(it->first);
    const bool loading =
        owner >= 0 && shards_[owner]->loading.count(it->first) > 0;
    while (!loading && !q.empty() && q.front().not_before <= now) {
      runnable.push_back(std::move(q.front()));
      q.pop_front();
    }
    if (q.empty()) {
      it = held_.erase(it);
    } else {
      ++it;
    }
  }
  for (HeldPredict& h : runnable) {
    DispatchPredict(h.client_fd, h.entry_id, h.line, h.model, h.retries_left,
                    now);
  }
}

void Router::CompleteEntry(int client_fd, uint64_t entry_id,
                           std::string line) {
  auto it = clients_.find(client_fd);
  if (it == clients_.end()) {
    return;  // client disconnected while its request was in flight
  }
  for (ClientEntry& entry : it->second->entries) {
    if (entry.id == entry_id) {
      entry.ready = true;
      entry.line = std::move(line);
      return;
    }
  }
}

// --- Main loop -------------------------------------------------------------

int Router::ShutdownWorkers() {
  for (auto& s : shards_) {
    if (s->pid > 0) {
      ::kill(s->pid, SIGTERM);
    }
  }
  const auto deadline = Clock::now() + SecondsToDuration(2.0);
  for (;;) {
    bool any_alive = false;
    for (auto& s : shards_) {
      if (s->pid <= 0) {
        continue;
      }
      int status = 0;
      const pid_t r = ::waitpid(s->pid, &status, WNOHANG);
      if (r == s->pid) {
        s->pid = -1;
      } else {
        any_alive = true;
      }
    }
    if (!any_alive) {
      break;
    }
    if (Clock::now() > deadline) {
      for (auto& s : shards_) {
        if (s->pid > 0) {
          ::kill(s->pid, SIGKILL);
          int status = 0;
          pid_t r;
          do {
            r = ::waitpid(s->pid, &status, 0);
          } while (r < 0 && errno == EINTR);
          s->pid = -1;
        }
      }
      break;
    }
    ::usleep(10 * 1000);
  }
  return 0;
}

int Router::Run() {
  if (listen_fd_ < 0 && !drain_requested_.load(std::memory_order_acquire)) {
    UNITS_LOG(Error) << "Router::Run called before Start";
    return 1;
  }
  bool draining = false;
  Clock::time_point drain_started{};
  const auto drain_timeout = SecondsToDuration(options_.drain_timeout_s);

  enum class FdKind { kWake, kListen, kStderr, kData, kCtrl, kClient };
  struct PollRec {
    FdKind kind;
    int shard = -1;
    int fd = -1;
  };
  std::vector<pollfd> fds;
  std::vector<PollRec> recs;

  for (;;) {
    auto now = Clock::now();
    if (drain_requested_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      drain_started = now;
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      for (auto& [fd, conn] : clients_) {
        conn->read_closed = true;
      }
    }

    ReapAndRespawn(now);
    if (!draining) {
      HealthTick(now);
    }
    Reconcile();
    FlushHeld(now);

    fds.clear();
    recs.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    recs.push_back({FdKind::kWake});
    if (!draining && listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
      recs.push_back({FdKind::kListen});
    }
    for (auto& shard : shards_) {
      Shard* s = shard.get();
      if (s->stderr_fd >= 0) {
        fds.push_back({s->stderr_fd, POLLIN, 0});
        recs.push_back({FdKind::kStderr, s->index, s->stderr_fd});
      }
      if (s->data_fd >= 0) {
        short events = POLLIN;
        if (!s->data_wbuf.empty()) {
          events |= POLLOUT;
        }
        fds.push_back({s->data_fd, events, 0});
        recs.push_back({FdKind::kData, s->index, s->data_fd});
      }
      if (s->ctrl_fd >= 0) {
        short events = POLLIN;
        if (!s->ctrl_wbuf.empty()) {
          events |= POLLOUT;
        }
        fds.push_back({s->ctrl_fd, events, 0});
        recs.push_back({FdKind::kCtrl, s->index, s->ctrl_fd});
      }
    }
    for (auto& [fd, conn] : clients_) {
      short events = 0;
      if (!conn->read_closed &&
          conn->wbuf.size() < options_.max_write_buffer_bytes) {
        events |= POLLIN;
      }
      if (!conn->wbuf.empty()) {
        events |= POLLOUT;
      }
      fds.push_back({fd, events, 0});
      recs.push_back({FdKind::kClient, -1, fd});
    }

    // 100 ms cap: health ticks, respawn backoffs, and retry deadlines all
    // piggyback on this cadence.
    (void)serve::PollRetry(fds.data(), fds.size(), 100);
    now = Clock::now();

    for (size_t i = 0; i < fds.size(); ++i) {
      const short revents = fds[i].revents;
      const PollRec& rec = recs[i];
      switch (rec.kind) {
        case FdKind::kWake:
          if (revents & POLLIN) {
            DrainWakePipe();
          }
          break;
        case FdKind::kListen:
          if (!draining && listen_fd_ >= 0 && (revents & POLLIN)) {
            AcceptNew(now);
          }
          break;
        case FdKind::kStderr: {
          Shard* s = shards_[rec.shard].get();
          if (s->stderr_fd == rec.fd &&
              (revents & (POLLIN | POLLHUP | POLLERR))) {
            ReadShardStderr(s, now);
          }
          break;
        }
        case FdKind::kData:
        case FdKind::kCtrl: {
          Shard* s = shards_[rec.shard].get();
          const bool ctrl = rec.kind == FdKind::kCtrl;
          const int fd = ctrl ? s->ctrl_fd : s->data_fd;
          if (fd == rec.fd && (revents & (POLLIN | POLLHUP | POLLERR))) {
            ReadShardConn(s, ctrl, now);
          }
          break;
        }
        case FdKind::kClient:
          if (clients_.count(rec.fd) > 0 &&
              (revents & (POLLIN | POLLHUP | POLLERR))) {
            ClientConn* c = clients_.find(rec.fd)->second.get();
            if (!ReadClient(c, now)) {
              CloseClient(rec.fd);
            }
          }
          break;
      }
    }

    // Push buffered shard traffic (reconcile loads, health pings, newly
    // routed client requests) every pass.
    for (auto& shard : shards_) {
      Shard* s = shard.get();
      if (s->data_fd >= 0 && !FlushShardConn(s, /*ctrl=*/false)) {
        MarkDead(s, now, "data connection write failed");
        continue;
      }
      if (s->ctrl_fd >= 0 && !FlushShardConn(s, /*ctrl=*/true)) {
        MarkDead(s, now, "control connection write failed");
      }
    }

    // Flush clients and retire finished connections.
    std::vector<int> to_close;
    for (auto& [fd, conn] : clients_) {
      if (!FlushClient(conn.get(), now)) {
        to_close.push_back(fd);
        continue;
      }
      if (conn->read_closed && conn->entries.empty() && conn->wbuf.empty()) {
        to_close.push_back(fd);
      }
    }
    for (const int fd : to_close) {
      CloseClient(fd);
    }

    if (draining) {
      if (clients_.empty()) {
        return ShutdownWorkers();
      }
      if (now - drain_started > drain_timeout) {
        // Peers that stopped reading, or responses that will never come:
        // answer what we can and give up on the rest.
        for (auto& [fd, conn] : clients_) {
          ::close(fd);
        }
        clients_.clear();
        return ShutdownWorkers();
      }
    }
  }
}

}  // namespace units::router
