#ifndef UNITS_ROUTER_HASH_RING_H_
#define UNITS_ROUTER_HASH_RING_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace units::router {

/// FNV-1a 64-bit hash — stable across platforms and runs, which matters
/// because shard placement must be reproducible (a restarted router must
/// route a model to the same shard index as its predecessor).
uint64_t Fnv1a64(const std::string& key);

/// Consistent hash ring over integer node ids (shard indices). Each node
/// owns `replicas` virtual points; a key is served by the first virtual
/// point clockwise from the key's hash (FNV-1a through a splitmix64
/// finalizer, so similarly named models still spread uniformly). Removing
/// one node reassigns only that node's keys (to their successors) — the
/// property the router's drain-and-rebalance leans on: a worker death
/// moves ~1/N of the models, not all of them.
///
/// Deterministic by construction: the ring is a map keyed on
/// (hash, node), so virtual-point collisions between nodes resolve by
/// node id, independent of insertion order.
class HashRing {
 public:
  explicit HashRing(int replicas = 64) : replicas_(replicas) {}

  void AddNode(int node);
  void RemoveNode(int node);
  bool Contains(int node) const { return nodes_.count(node) > 0; }

  /// Owning node for `key`, or -1 when the ring is empty.
  int Lookup(const std::string& key) const;

  size_t num_nodes() const { return nodes_.size(); }
  std::vector<int> nodes() const {
    return std::vector<int>(nodes_.begin(), nodes_.end());
  }

 private:
  int replicas_;
  std::map<std::pair<uint64_t, int>, int> ring_;
  std::set<int> nodes_;
};

}  // namespace units::router

#endif  // UNITS_ROUTER_HASH_RING_H_
