#include "router/hash_ring.h"

#include <climits>

namespace units::router {

uint64_t Fnv1a64(const std::string& key) {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

namespace {

/// splitmix64 finalizer. Raw FNV-1a has weak high-bit avalanche: keys
/// sharing a long prefix ("model-1", "model-2", ...) hash within ~2^32 of
/// each other and would pile onto one arc of the ring, defeating the
/// virtual replicas. Mixing restores a uniform spread while keeping the
/// placement fully deterministic.
uint64_t Mix64(uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

uint64_t RingPoint(const std::string& key) { return Mix64(Fnv1a64(key)); }

}  // namespace

void HashRing::AddNode(int node) {
  if (!nodes_.insert(node).second) {
    return;
  }
  for (int r = 0; r < replicas_; ++r) {
    const uint64_t point =
        RingPoint("node:" + std::to_string(node) + ":" + std::to_string(r));
    ring_.emplace(std::make_pair(point, node), node);
  }
}

void HashRing::RemoveNode(int node) {
  if (nodes_.erase(node) == 0) {
    return;
  }
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
}

int HashRing::Lookup(const std::string& key) const {
  if (ring_.empty()) {
    return -1;
  }
  const uint64_t hash = RingPoint(key);
  auto it = ring_.lower_bound(std::make_pair(hash, INT_MIN));
  if (it == ring_.end()) {
    it = ring_.begin();  // clockwise wrap
  }
  return it->second;
}

}  // namespace units::router
