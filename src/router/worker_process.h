#ifndef UNITS_ROUTER_WORKER_PROCESS_H_
#define UNITS_ROUTER_WORKER_PROCESS_H_

#include <sys/types.h>

#include <string>
#include <vector>

#include "base/status.h"

namespace units::router {

/// A freshly spawned worker: the child's pid plus the read end of its
/// stderr, non-blocking, through which the router discovers the worker's
/// ephemeral port ("listening on port N") and forwards its logs.
struct WorkerSpawn {
  pid_t pid = -1;
  int stderr_fd = -1;
};

/// fork/execs `binary` with `args` (argv[0] is derived from the binary
/// path). The child's stderr is redirected into a pipe; stdin is
/// /dev/null. Returns without waiting — exec failure surfaces as an
/// immediate child exit, which the caller's reap loop observes.
Result<WorkerSpawn> SpawnWorker(const std::string& binary,
                                const std::vector<std::string>& args);

/// Scans accumulated worker stderr for the "listening on port N"
/// announcement; returns the port, or 0 when it has not appeared yet.
int FindPortAnnouncement(const std::string& stderr_text);

/// Blocking TCP connect to host:port; on success the socket is switched to
/// non-blocking (the router's event loop owns it afterwards).
Result<int> ConnectTcp(const std::string& host, int port);

/// The units_serve binary next to the running executable
/// (/proc/self/exe's directory + "/units_serve"); the UNITS_SERVE_BIN
/// environment variable overrides it. Empty string when neither resolves.
std::string DefaultWorkerBinary();

}  // namespace units::router

#endif  // UNITS_ROUTER_WORKER_PROCESS_H_
