#include "router/worker_process.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "serve/net_util.h"

namespace units::router {

Result<WorkerSpawn> SpawnWorker(const std::string& binary,
                                const std::vector<std::string>& args) {
  int stderr_pipe[2];
  if (::pipe2(stderr_pipe, O_CLOEXEC) != 0) {
    return Status::IoError(std::string("pipe2: ") + std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(stderr_pipe[0]);
    ::close(stderr_pipe[1]);
    return Status::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child. dup2 clears O_CLOEXEC on the duplicates; everything else in
    // the router (sockets, pipes, the listener) is CLOEXEC and vanishes
    // across exec.
    const int devnull = ::open("/dev/null", O_RDONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDIN_FILENO);
    }
    ::dup2(stderr_pipe[1], STDERR_FILENO);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    // exec failed: report on the (redirected) stderr and die; the parent
    // sees an instant exit plus this line on the pipe.
    const char* msg = "exec failed\n";
    (void)!::write(STDERR_FILENO, msg, std::strlen(msg));
    ::_exit(127);
  }
  ::close(stderr_pipe[1]);
  const int flags = ::fcntl(stderr_pipe[0], F_GETFL);
  ::fcntl(stderr_pipe[0], F_SETFL, flags | O_NONBLOCK);
  WorkerSpawn spawn;
  spawn.pid = pid;
  spawn.stderr_fd = stderr_pipe[0];
  return spawn;
}

int FindPortAnnouncement(const std::string& stderr_text) {
  static const std::string kMarker = "listening on port ";
  const size_t pos = stderr_text.find(kMarker);
  if (pos == std::string::npos) {
    return 0;
  }
  const size_t digits = pos + kMarker.size();
  const size_t eol = stderr_text.find('\n', digits);
  if (eol == std::string::npos) {
    return 0;  // partial line; wait for the rest
  }
  return std::atoi(stderr_text.substr(digits, eol - digits).c_str());
}

Result<int> ConnectTcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address '" + host + "'");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect " + host + ":" + std::to_string(port) +
                           ": " + err);
  }
  const int flags = ::fcntl(fd, F_GETFL);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

std::string DefaultWorkerBinary() {
  const char* env = std::getenv("UNITS_SERVE_BIN");
  if (env != nullptr && env[0] != '\0') {
    return env;
  }
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n <= 0) {
    return "";
  }
  self[n] = '\0';
  std::string path(self);
  const size_t slash = path.rfind('/');
  if (slash == std::string::npos) {
    return "";
  }
  return path.substr(0, slash) + "/units_serve";
}

}  // namespace units::router
