#ifndef UNITS_ROUTER_ROUTER_H_
#define UNITS_ROUTER_ROUTER_H_

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "json/json.h"
#include "router/hash_ring.h"
#include "serve/http_adapter.h"

namespace units::router {

/// Front tier for a pool of units_serve worker processes: clients speak
/// the same NDJSON protocol (or HTTP/1.1 — connections are sniffed exactly
/// as on a worker) to one port, and the router shards the model namespace
/// across workers by consistent hashing on the model name.
///
/// The router owns the worker lifecycle end to end:
///   - spawns each shard as `units_serve --port 0`, discovering the
///     ephemeral port from the worker's stderr announcement;
///   - keeps two connections per shard — a data connection carrying
///     predicts and a control connection carrying health pings, fanout
///     ops, and the router's own load/unload traffic — so liveness
///     probes never queue behind a deep predict backlog;
///   - health-checks every shard with {"op": "ping"} round-trips; a shard
///     that misses pongs for `health_timeout_s` is killed, evicted from
///     the ring, and respawned with exponential backoff;
///   - rebalances on membership change: the desired model set (every
///     model loaded through the router, with its path) is reconciled
///     against each shard's confirmed loads — the new owner loads before
///     any old owner is asked to unload, so there is no window with zero
///     replicas of a healthy model.
///
/// Failure semantics for client requests when a worker dies mid-flight:
/// in-flight predicts are retried against the successor shard up to
/// `max_retries` times (after `retry_backoff_ms`); once retries are
/// exhausted — or immediately for non-idempotent control ops — the client
/// receives {"ok": false, "error": "unavailable: ..."}. Predicts for a
/// model whose (re)load is still in flight are held and dispatched when
/// the load completes, which closes the load→predict race a single
/// worker's FIFO connection would otherwise expose.
///
/// Response correlation relies on the worker protocol answering strictly
/// in request order per connection: each shard connection keeps a FIFO of
/// pending requests, and forwarded response lines are passed through
/// byte-for-byte — a predict answered via the router is bitwise identical
/// to one answered by the worker directly.
///
/// Ops handled by the router itself: "ping" (local pong), "quit" (closes
/// the client connection), "stats"/"list" (fanned out to every healthy
/// shard and aggregated under router-level counters), and "stream_*"
/// (answered with a structured error — streaming sessions are pinned to
/// worker state and must connect to a worker directly).
///
/// Single-threaded: Start() + Run() drive everything from one poll loop;
/// RequestDrain() is async-signal-safe. SIGTERM drain answers what is in
/// flight, then SIGTERMs the workers and reaps them before returning 0.
class Router {
 public:
  struct Options {
    int port = 0;                         // 0 = ephemeral
    std::string bind_address = "127.0.0.1";
    int backlog = 128;
    int num_shards = 2;
    std::string worker_binary;            // empty = DefaultWorkerBinary()
    std::vector<std::string> worker_args; // extra flags for every worker
    double health_interval_s = 0.5;
    double health_timeout_s = 3.0;
    /// Retries per predict after a shard death; 0 fails fast.
    int max_retries = 1;
    double retry_backoff_ms = 50.0;
    double respawn_backoff_s = 0.25;      // doubles per death, capped below
    double respawn_backoff_max_s = 5.0;
    /// Deadline for a spawned worker to announce its port.
    double spawn_timeout_s = 10.0;
    double drain_timeout_s = 5.0;
    size_t max_line_bytes = 1 << 20;
    size_t max_write_buffer_bytes = 4u << 20;
    int virtual_nodes = 64;               // ring replicas per shard
  };

  explicit Router(Options options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds the listener and spawns the shard pool. After an OK return
  /// bound_port() is final; workers finish booting inside Run().
  Status Start();

  int bound_port() const { return bound_port_; }

  /// Serves until a drain completes; returns a process exit code.
  int Run();

  /// Async-signal-safe drain request (atomic store + pipe write).
  void RequestDrain();

 private:
  using Clock = std::chrono::steady_clock;

  struct FanoutState {
    int client_fd = -1;
    uint64_t entry_id = 0;
    std::string op;
    json::JsonValue id;
    int outstanding = 0;
    std::map<int, std::string> responses;  // shard index -> response line
  };

  /// One forwarded request awaiting its response on a shard connection
  /// (responses arrive strictly in request order).
  struct Pending {
    enum class Kind { kClient, kHealth, kInternal, kFanout };
    Kind kind = Kind::kClient;
    int client_fd = -1;      // kClient/kFanout: destination client
    uint64_t entry_id = 0;   // kClient: which response slot it fills
    std::string line;        // original request line (retries re-send it)
    std::string model;       // predict/control target model
    std::string op;          // empty for predicts
    std::string path;        // load only: fitted-pipeline path
    int retries_left = 0;
    std::shared_ptr<FanoutState> fanout;
  };

  struct Shard {
    int index = 0;
    enum class State { kSpawning, kHealthy, kBackoff };
    State state = State::kBackoff;
    pid_t pid = -1;
    int port = 0;
    int stderr_fd = -1;
    std::string stderr_buf;
    int data_fd = -1;
    std::string data_rbuf, data_wbuf;
    std::deque<Pending> data_pending;
    int ctrl_fd = -1;
    std::string ctrl_rbuf, ctrl_wbuf;
    std::deque<Pending> ctrl_pending;
    Clock::time_point last_pong{};
    Clock::time_point last_ping_sent{};
    bool ping_outstanding = false;
    Clock::time_point spawn_deadline{};
    Clock::time_point respawn_at{};
    double backoff_s = 0.0;
    std::set<std::string> loaded;             // confirmed by the worker
    std::map<std::string, int> loading;       // in-flight load count
    std::map<std::string, int> unloading;     // in-flight unload count
    int64_t deaths = 0;
  };

  /// One response slot owed to a client, in request order.
  struct ClientEntry {
    uint64_t id = 0;
    bool ready = false;
    std::string line;  // response with trailing '\n' when ready
  };

  struct ClientConn {
    int fd = -1;
    std::string rbuf, wbuf;
    bool read_closed = false;
    bool discarding_line = false;
    enum class Proto { kUnknown, kNdjson, kHttp };
    Proto proto = Proto::kUnknown;
    std::unique_ptr<serve::HttpConnState> http;
    std::deque<ClientEntry> entries;
    Clock::time_point last_activity{};
  };

  /// A predict waiting out a load in flight on its owner shard, or a
  /// retry backoff after a shard death.
  struct HeldPredict {
    int client_fd = -1;
    uint64_t entry_id = 0;
    std::string line;
    std::string model;
    int retries_left = 0;
    Clock::time_point not_before{};
  };

  struct Counters {
    int64_t requests = 0;
    int64_t forwarded = 0;
    int64_t held = 0;
    int64_t retries = 0;
    int64_t unavailable = 0;
    int64_t worker_deaths = 0;
    int64_t respawns = 0;
    int64_t health_evictions = 0;
  };

  // Lifecycle.
  void SpawnShard(Shard* s, Clock::time_point now);
  void OnShardListening(Shard* s, int port, Clock::time_point now);
  void MarkDead(Shard* s, Clock::time_point now, const std::string& reason);
  void ReapAndRespawn(Clock::time_point now);
  void HealthTick(Clock::time_point now);
  void Reconcile();

  // Shard I/O.
  void ReadShardStderr(Shard* s, Clock::time_point now);
  bool ReadShardConn(Shard* s, bool ctrl, Clock::time_point now);
  bool FlushShardConn(Shard* s, bool ctrl);
  void HandleShardLine(Shard* s, bool ctrl, const std::string& line,
                       Clock::time_point now);
  void NoteControlResponse(Shard* s, const Pending& p,
                           const std::string& line);
  void SendToShard(Shard* s, bool ctrl, const std::string& line, Pending p);

  // Client I/O.
  void AcceptNew(Clock::time_point now);
  bool ReadClient(ClientConn* c, Clock::time_point now);
  void ConsumeClientNdjson(ClientConn* c);
  void ConsumeClientHttp(ClientConn* c);
  bool FlushClient(ClientConn* c, Clock::time_point now);
  void CloseClient(int fd);

  // Routing.
  void RouteClientLine(ClientConn* c, const std::string& line);
  void DispatchPredict(int client_fd, uint64_t entry_id,
                       const std::string& line, const std::string& model,
                       int retries_left, Clock::time_point now);
  void DispatchControl(ClientConn* c, uint64_t entry_id,
                       const json::JsonValue& request, const std::string& op,
                       const std::string& line);
  void DispatchFanout(ClientConn* c, uint64_t entry_id, const std::string& op,
                      const json::JsonValue& id);
  void CompleteFanout(const std::shared_ptr<FanoutState>& fanout);
  std::string RenderFanout(const FanoutState& fanout) const;
  void FlushHeld(Clock::time_point now);
  void CompleteEntry(int client_fd, uint64_t entry_id, std::string line);
  void FailPendings(Shard* s, Clock::time_point now);

  void DrainWakePipe();
  int ShutdownWorkers();
  json::JsonValue RouterStats() const;

  Options options_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<int, std::unique_ptr<ClientConn>> clients_;
  std::map<std::string, std::deque<HeldPredict>> held_;
  std::map<std::string, std::string> desired_models_;  // model -> path
  /// Backoff for internal loads that failed (e.g. the path vanished), so
  /// Reconcile does not hammer a shard with doomed load requests.
  std::map<std::string, Clock::time_point> load_retry_after_;
  Counters counters_;
  uint64_t next_entry_id_ = 1;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  std::atomic<int> wake_write_fd_{-1};
  int bound_port_ = 0;
  std::atomic<bool> drain_requested_{false};
};

}  // namespace units::router

#endif  // UNITS_ROUTER_ROUTER_H_
