#ifndef UNITS_CORE_REGISTRY_H_
#define UNITS_CORE_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"

namespace units::core {

// Extension registries (the paper's "seamless integration" contract):
// a new pre-training method, fusion strategy, or analysis task plugs in by
// registering a factory under a name; the pipeline resolves names through
// these tables, so no framework code changes are needed.

using PretrainFactory = std::function<std::unique_ptr<PretrainTemplate>(
    const ParamSet& params, int64_t input_channels, uint64_t seed)>;
using FusionFactory =
    std::function<std::unique_ptr<FeatureFusion>(const ParamSet& params)>;
using TaskFactory =
    std::function<std::unique_ptr<AnalysisTask>(const ParamSet& params)>;

void RegisterPretrainTemplate(const std::string& name,
                              PretrainFactory factory);
void RegisterFusion(const std::string& name, FusionFactory factory);
void RegisterTask(const std::string& name, TaskFactory factory);

Result<std::unique_ptr<PretrainTemplate>> MakePretrainTemplate(
    const std::string& name, const ParamSet& params, int64_t input_channels,
    uint64_t seed);
Result<std::unique_ptr<FeatureFusion>> MakeFusion(const std::string& name,
                                                  const ParamSet& params);
Result<std::unique_ptr<AnalysisTask>> MakeTask(const std::string& name,
                                               const ParamSet& params);

std::vector<std::string> RegisteredPretrainTemplates();
std::vector<std::string> RegisteredFusions();
std::vector<std::string> RegisteredTasks();

}  // namespace units::core

#endif  // UNITS_CORE_REGISTRY_H_
