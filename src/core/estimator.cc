#include "core/estimator.h"

namespace units::core {

namespace ag = ::units::autograd;

Variable FeatureFusion::TransformPerTimestep(
    const std::vector<Variable>& zs) {
  // Default per-timestep fusion: concatenate along the channel axis.
  if (zs.size() == 1) {
    return zs[0];
  }
  return ag::Concat(zs, /*axis=*/1);
}

int64_t FeatureFusion::fused_dim_per_timestep() const {
  int64_t total = 0;
  for (int64_t d : in_dims_) {
    total += d;
  }
  return total;
}

ParamSet DefaultPretrainParams() {
  ParamSet p;
  // Encoder architecture.
  p.SetString("backbone", "tcn");
  p.SetInt("hidden_channels", 32);
  p.SetInt("repr_dim", 64);
  p.SetInt("num_blocks", 3);
  p.SetInt("kernel", 3);
  p.SetInt("num_heads", 4);       // transformer backbone only
  p.SetInt("num_layers", 2);      // transformer backbone only
  // Optimization.
  p.SetInt("epochs", 20);
  p.SetInt("batch_size", 32);  // contrastive objectives want negatives
  p.SetDouble("lr", 1e-3);
  p.SetDouble("weight_decay", 1e-5);
  p.SetDouble("clip_norm", 5.0);
  p.SetString("lr_schedule", "constant");  // or "cosine" (warmup + decay)
  // Objective knobs.
  p.SetDouble("temperature", 0.2);
  p.SetDouble("aug_jitter", 0.3);
  p.SetDouble("aug_scale", 0.3);
  p.SetDouble("aug_mask_ratio", 0.15);
  p.SetDouble("aug_time_warp", 0.2);
  p.SetDouble("mask_ratio", 0.25);
  p.SetDouble("mask_mean_block", 5.0);
  p.SetInt("neg_samples", 8);
  p.SetDouble("crop_frac", 0.6);
  p.SetDouble("hybrid_alpha", 0.5);
  p.SetInt("instance_timestamps", 8);
  return p;
}

ParamSet DefaultFineTuneParams() {
  ParamSet p;
  p.SetInt("epochs", 10);
  p.SetInt("batch_size", 16);
  p.SetDouble("lr", 1e-3);
  // Fine-tune the encoders at full rate by default: with a pre-trained
  // initialization this matches or beats the small-step convention on all
  // our workloads (set < 1 to protect the representation instead).
  p.SetDouble("encoder_lr_scale", 1.0);
  p.SetDouble("weight_decay", 1e-5);
  p.SetDouble("clip_norm", 5.0);
  p.SetInt("head_hidden", 0);            // 0 = linear head
  p.SetDouble("dropout", 0.0);
  p.SetInt("finetune_encoder", 1);       // 0 freezes the encoders
  p.SetInt("normalize_repr", 1);         // L2-normalize fused reps for
                                         // classification/clustering heads
  // Task-specific knobs.
  p.SetDouble("cluster_reg_weight", 0.5);  // k-means regularizer lambda
  p.SetInt("cluster_finetune_epochs", 5);
  p.SetString("forecast_loss", "mse");     // or "mae"
  p.SetString("forecast_repr", "last");    // decode from the last-timestep
                                           // state; "pooled" uses max-pool
  p.SetDouble("anomaly_quantile", 0.995);  // train-score threshold quantile
  p.SetDouble("imputation_mask_ratio", 0.25);
  p.SetDouble("imputation_mask_block", 4.0);
  return p;
}

ParamSet ResolveParams(ConfigMode mode, const ParamSet& defaults,
                       const ParamSet& manual) {
  switch (mode) {
    case ConfigMode::kDefault:
      return defaults;
    case ConfigMode::kManual:
    case ConfigMode::kSmart:  // Smart seeds from defaults + overrides too
      return defaults.MergedWith(manual);
  }
  return defaults;
}

}  // namespace units::core
