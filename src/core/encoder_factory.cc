#include "core/encoder_factory.h"

#include "nn/attention.h"
#include "nn/gru.h"
#include "nn/tcn.h"

namespace units::core {

Result<EncoderHandle> BuildEncoder(const hpo::ParamSet& params,
                                   int64_t input_channels, Rng* rng) {
  if (input_channels < 1) {
    return Status::InvalidArgument("input_channels must be positive");
  }
  EncoderHandle handle;
  handle.backbone = params.GetString("backbone", "tcn");
  handle.repr_dim = params.GetInt("repr_dim", 64);
  if (handle.backbone == "tcn") {
    nn::TcnConfig config;
    config.input_channels = input_channels;
    config.hidden_channels = params.GetInt("hidden_channels", 32);
    config.repr_channels = handle.repr_dim;
    config.num_blocks = params.GetInt("num_blocks", 3);
    config.kernel = params.GetInt("kernel", 3);
    handle.module = std::make_shared<nn::TcnEncoder>(config, rng);
    return handle;
  }
  if (handle.backbone == "transformer") {
    handle.module = std::make_shared<nn::TransformerBackbone>(
        input_channels, params.GetInt("hidden_channels", 32),
        handle.repr_dim, params.GetInt("num_layers", 2),
        params.GetInt("num_heads", 4), rng);
    return handle;
  }
  if (handle.backbone == "gru") {
    handle.module = std::make_shared<nn::GruBackbone>(
        input_channels, params.GetInt("hidden_channels", 32),
        handle.repr_dim, rng);
    return handle;
  }
  return Status::InvalidArgument("unknown backbone: " + handle.backbone);
}

}  // namespace units::core
