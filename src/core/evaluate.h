#ifndef UNITS_CORE_EVALUATE_H_
#define UNITS_CORE_EVALUATE_H_

#include <map>
#include <string>

#include "core/pipeline.h"

namespace units::core {

/// Task-aware evaluation (the demo GUI's "result visualization and
/// evaluation" panel): runs Predict on `test` and scores it against the
/// supervision the dataset carries, with metrics chosen by the fitted
/// task:
///
///   classification    accuracy, macro_f1          (needs labels)
///   clustering        nmi, ari                    (needs labels)
///   forecasting       mse, mae                    (needs targets)
///   anomaly_detection best_point_adjusted_f1, precision, recall
///                                                 (needs point labels)
///   imputation        masked_rmse, masked_mae     (mask drawn internally
///                                                  at `imputation_eval_rate`)
///
/// Returns InvalidArgument if the dataset lacks the required supervision.
Result<std::map<std::string, double>> Evaluate(
    UnitsPipeline* pipeline, const data::TimeSeriesDataset& test);

}  // namespace units::core

#endif  // UNITS_CORE_EVALUATE_H_
