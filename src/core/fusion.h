#ifndef UNITS_CORE_FUSION_H_
#define UNITS_CORE_FUSION_H_

#include <memory>

#include "core/estimator.h"
#include "nn/linear.h"

namespace units::core {

/// Concatenation fusion (Section 3.2): z' = z_1 ⊕ ... ⊕ z_M. Non-learnable.
class ConcatFusion : public FeatureFusion {
 public:
  std::string name() const override { return "concat"; }

  int64_t Initialize(const std::vector<int64_t>& in_dims, Rng* rng) override;
  Variable Transform(const std::vector<Variable>& zs) override;
  int64_t fused_dim() const override { return fused_dim_; }

 private:
  int64_t fused_dim_ = 0;
};

/// Projection fusion: z' = p(z_1 ⊕ ... ⊕ z_M) with a learnable linear map
/// p into a lower-dimensional latent space; its parameters are optimized
/// during fine-tuning (Section 3.2 highlights this for clustering).
class ProjectionFusion : public FeatureFusion {
 public:
  /// `out_dim` <= 0 picks a default of half the concatenated width.
  explicit ProjectionFusion(int64_t out_dim = 0) : out_dim_(out_dim) {}

  std::string name() const override { return "projection"; }

  int64_t Initialize(const std::vector<int64_t>& in_dims, Rng* rng) override;
  Variable Transform(const std::vector<Variable>& zs) override;
  int64_t fused_dim() const override { return out_dim_; }
  std::vector<Variable> Parameters() override;
  nn::Module* module() override { return proj_.get(); }

 private:
  int64_t out_dim_;
  std::shared_ptr<nn::Linear> proj_;
};

/// Gated fusion (an "advanced technique" extension beyond the paper's two
/// basics): each template's representation is scaled by a learnable gate
/// g_m = sigmoid(w_m) before concatenation, so fine-tuning can
/// automatically down-weight templates that do not help the task —
/// a soft, differentiable form of the paper's method-selection goal.
class GatedFusion : public FeatureFusion {
 public:
  GatedFusion() = default;

  std::string name() const override { return "gated"; }

  int64_t Initialize(const std::vector<int64_t>& in_dims, Rng* rng) override;
  Variable Transform(const std::vector<Variable>& zs) override;
  int64_t fused_dim() const override { return fused_dim_; }
  std::vector<Variable> Parameters() override;
  nn::Module* module() override { return gates_.get(); }

  /// Current gate values sigmoid(w_m), one per template (for inspection).
  std::vector<float> GateValues() const;

 private:
  /// Trivial module holding the gate logits so serialization reuses the
  /// standard named-parameter machinery.
  class GateModule : public nn::Module {
   public:
    explicit GateModule(int64_t num_templates) {
      logits_ = RegisterParameter(
          "gate_logits", Variable(Tensor::Zeros({num_templates})));
    }
    Variable Forward(const Variable& input) override { return input; }
    const Variable& logits() const { return logits_; }

   private:
    Variable logits_;
  };

  int64_t fused_dim_ = 0;
  std::shared_ptr<GateModule> gates_;
};

}  // namespace units::core

#endif  // UNITS_CORE_FUSION_H_
