#ifndef UNITS_CORE_PIPELINE_H_
#define UNITS_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "plan/plan.h"

namespace units::core {

/// The UniTS pipeline (Figure 1): one or more self-supervised pre-training
/// instances, a feature-fusion module, and an analysis-task module. The
/// pipeline is the single entry point users interact with:
///
///   UnitsPipeline::Config cfg;
///   cfg.templates = {"timestamp_contrastive", "masked_autoregression"};
///   cfg.task = "classification";
///   auto pipeline = UnitsPipeline::Create(cfg, /*input_channels=*/3);
///   pipeline->Pretrain(unlabeled_x);      // self-supervised, labels unused
///   pipeline->FineTune(small_labeled);    // task-specific fine-tuning
///   auto result = pipeline->Predict(test_x);
class UnitsPipeline {
 public:
  /// Declarative pipeline configuration (resolved through the registry).
  struct Config {
    std::vector<std::string> templates = {"timestamp_contrastive"};
    std::string fusion = "concat";
    std::string task = "classification";
    ConfigMode mode = ConfigMode::kDefault;
    ParamSet pretrain_params;  // Manual-mode overrides
    ParamSet finetune_params;
    uint64_t seed = 42;
  };

  /// Builds a pipeline from names via the registry.
  static Result<std::unique_ptr<UnitsPipeline>> Create(
      const Config& config, int64_t input_channels);

  /// Manual assembly (for custom templates/tasks not in the registry).
  UnitsPipeline(int64_t input_channels, uint64_t seed);

  UnitsPipeline(const UnitsPipeline&) = delete;
  UnitsPipeline& operator=(const UnitsPipeline&) = delete;

  void AddTemplate(std::unique_ptr<PretrainTemplate> tmpl);
  void SetFusion(std::unique_ptr<FeatureFusion> fusion);
  void SetTask(std::unique_ptr<AnalysisTask> task);
  void SetFineTuneParams(const ParamSet& params);

  // --- the three pipeline stages -------------------------------------------

  /// Stage 1: self-supervised pre-training of every template on unlabeled
  /// X [N, D, T]. Needed only once per dataset; all downstream tasks reuse
  /// the encoders.
  Status Pretrain(const Tensor& x);

  /// Stage 2+3: fine-tunes fusion + task head (and optionally the encoders)
  /// on the task's (possibly small) training data.
  Status FineTune(const data::TimeSeriesDataset& train);

  /// Inference through the fitted pipeline.
  ///
  /// Thread-safety: once the pipeline is fitted and in eval mode (see
  /// EnsureReadyForServing), Predict performs no writes to pipeline or
  /// module state, so concurrent calls from multiple threads are safe —
  /// on the same pipeline or across distinct pipelines (autograd's
  /// no-grad flag is thread-local). Predict on a batch [N, D, T] is
  /// bitwise row-identical to N single-row calls: every kernel in the
  /// forward path computes each output row independently of its batch
  /// neighbours, the invariant the serving micro-batcher relies on.
  Result<TaskResult> Predict(const Tensor& x);

  /// Puts the pipeline in its serving steady state: verifies a task is
  /// configured, materializes the fusion, and switches every module to
  /// eval mode so subsequent Predict calls are mutation-free (and hence
  /// safe to issue concurrently).
  Status EnsureReadyForServing();

  /// Post-training int8 quantization (DESIGN.md §17): attaches per-channel
  /// int8 weights to every Linear in the encoder/fusion/task trees (GRU
  /// recurrent layers opt out) and drops captured plans so the next
  /// capture traces the quantized forward. The fp32 weights stay resident:
  /// UNITS_GEMM_INT8=off serves them as the accuracy oracle. Returns the
  /// number of layers quantized; precision() flips to "int8".
  int64_t QuantizeInt8();

  /// "fp32", or "int8" once QuantizeInt8 has run.
  const std::string& precision() const { return precision_; }

  // --- services used by AnalysisTask implementations ------------------------

  /// Differentiable fused pooled encoding [B, D, T] -> [B, K'].
  Variable EncodeFused(const Variable& x);

  /// Differentiable fused per-timestep encoding [B, D, T] -> [B, K'_pt, T].
  Variable EncodeFusedPerTimestep(const Variable& x);

  /// No-grad fused representations of a full dataset (batched internally).
  Tensor TransformFused(const Tensor& x);
  Tensor TransformFusedPerTimestep(const Tensor& x);

  /// Runs the eval program `fn` over the rows of x [N, ...] in fixed-size
  /// chunks and returns the stitched outputs, each shaped [N, ...tail].
  ///
  /// When planning is enabled (EnsureReadyForServing) and UNITS_PLAN does
  /// not force the dynamic walk, each (key, chunk shape) pair is traced
  /// once into a captured plan (fused elementwise chains + arena memory,
  /// see src/plan/) and replayed thereafter with zero steady-state tensor
  /// allocations. The dynamic autograd walk runs over the very same chunk
  /// boundaries otherwise, so both substrates are bitwise comparable.
  /// `fn` must be a pure eval forward: row-independent, mutation-free,
  /// returning at least one Variable.
  std::vector<Tensor> RunEvalProgram(const std::string& key, const Tensor& x,
                                     const plan::EvalPlan::EvalFn& fn);

  /// Counters for this pipeline's captured-plan cache (serving stats).
  plan::PlanCacheStats GetPlanCacheStats() const {
    return plan_cache_.Stats();
  }

  int64_t fused_dim();
  int64_t fused_dim_per_timestep();
  int64_t input_channels() const { return input_channels_; }

  /// Encoder + fusion parameters for fine-tuning (empty when the finetune
  /// params freeze the encoders via finetune_encoder=0; fusion parameters
  /// are always trainable).
  std::vector<Variable> EncoderAndFusionParams();

  /// Puts all modules in train/eval mode.
  void SetTraining(bool training);

  const ParamSet& finetune_params() const { return finetune_params_; }
  Rng* rng() { return &rng_; }

  size_t num_templates() const { return templates_.size(); }
  PretrainTemplate* template_at(size_t i) { return templates_.at(i).get(); }
  FeatureFusion* fusion() { return fusion_.get(); }
  AnalysisTask* task() { return task_.get(); }
  bool pretrained() const { return pretrained_; }

  /// Per-template pre-training loss curves (the GUI's monitoring plots).
  std::vector<std::vector<float>> PretrainLossCurves() const;

  // --- persistence (Section 4: "save the model as a standard JSON file") ----

  Status SaveJson(const std::string& path) const;

  /// Restores a pipeline saved by SaveJson. The configuration (template
  /// names, hyper-parameters, fusion, task) is read from the file.
  static Result<std::unique_ptr<UnitsPipeline>> LoadJson(
      const std::string& path);

  /// Marks the pipeline as pre-trained without running Pretrain; used when
  /// restoring encoder weights from a saved model.
  void MarkPretrained() { pretrained_ = true; }

 private:
  /// Initializes the fusion module once all template widths are known.
  Status EnsureFusion();

  int64_t input_channels_;
  Rng rng_;
  std::vector<std::unique_ptr<PretrainTemplate>> templates_;
  std::unique_ptr<FeatureFusion> fusion_;
  std::unique_ptr<AnalysisTask> task_;
  ParamSet finetune_params_;
  Config config_;  // retained for serialization
  bool fusion_ready_ = false;
  bool pretrained_ = false;
  /// Captured eval plans, keyed by (program, chunk shape). Populated only
  /// after EnsureReadyForServing; flipping any module back to training
  /// invalidates the cache (weights may change under a captured constant).
  plan::PlanCache plan_cache_;
  bool planning_enabled_ = false;
  std::string precision_ = "fp32";
  /// UNITS_GEMM_INT8 state the cached plans were captured under; a flip
  /// mid-serve invalidates them (the traced forward chose its kernel by
  /// this gate).
  bool plans_captured_int8_ = false;
};

}  // namespace units::core

#endif  // UNITS_CORE_PIPELINE_H_
