#include "core/baselines.h"

#include "base/check.h"
#include "cluster/kmeans.h"
#include "tensor/tensor_ops.h"

namespace units::core {

Result<std::unique_ptr<UnitsPipeline>> MakeScratchBaseline(
    const UnitsPipeline::Config& config, int64_t input_channels,
    int64_t epoch_multiplier) {
  UnitsPipeline::Config scratch = config;
  scratch.mode = ConfigMode::kManual;
  // Keep exactly one encoder so the architecture matches a single-template
  // UniTS pipeline.
  if (scratch.templates.size() > 1) {
    scratch.templates.resize(1);
  }
  // Full-rate end-to-end training from random initialization.
  scratch.finetune_params.SetDouble("encoder_lr_scale", 1.0);
  const int64_t base_epochs = DefaultFineTuneParams()
                                  .MergedWith(config.finetune_params)
                                  .GetInt("epochs", 10);
  scratch.finetune_params.SetInt("epochs", base_epochs * epoch_multiplier);
  const int64_t base_cluster_epochs =
      DefaultFineTuneParams()
          .MergedWith(config.finetune_params)
          .GetInt("cluster_finetune_epochs", 5);
  scratch.finetune_params.SetInt("cluster_finetune_epochs",
                                 base_cluster_epochs * epoch_multiplier);
  return UnitsPipeline::Create(scratch, input_channels);
}

Result<std::vector<int64_t>> RawKMeansClustering(const Tensor& x,
                                                 int64_t num_clusters,
                                                 Rng* rng) {
  if (x.ndim() != 3) {
    return Status::InvalidArgument("expected [N, D, T]");
  }
  const Tensor flat = x.Reshape({x.dim(0), x.dim(1) * x.dim(2)});
  cluster::KMeansOptions opts;
  opts.num_clusters = num_clusters;
  UNITS_ASSIGN_OR_RETURN(cluster::KMeansResult result,
                         cluster::KMeans(flat, opts, rng));
  return result.assignments;
}

Tensor NaiveForecast(const Tensor& x, int64_t horizon) {
  UNITS_CHECK_EQ(x.ndim(), 3);
  const int64_t n = x.dim(0);
  const int64_t d = x.dim(1);
  const int64_t t = x.dim(2);
  Tensor out = Tensor::Zeros({n, d, horizon});
  const float* px = x.data();
  float* po = out.data();
  for (int64_t i = 0; i < n * d; ++i) {
    const float last = px[i * t + t - 1];
    for (int64_t h = 0; h < horizon; ++h) {
      po[i * horizon + h] = last;
    }
  }
  return out;
}

Tensor SeasonalNaiveForecast(const Tensor& x, int64_t horizon,
                             int64_t period) {
  UNITS_CHECK_EQ(x.ndim(), 3);
  UNITS_CHECK_GE(period, 1);
  const int64_t n = x.dim(0);
  const int64_t d = x.dim(1);
  const int64_t t = x.dim(2);
  UNITS_CHECK_GE(t, period);
  Tensor out = Tensor::Zeros({n, d, horizon});
  const float* px = x.data();
  float* po = out.data();
  for (int64_t i = 0; i < n * d; ++i) {
    for (int64_t h = 0; h < horizon; ++h) {
      // Value one (or more) seasons back from the forecast point.
      const int64_t offset = t - period + (h % period);
      po[i * horizon + h] = px[i * t + offset];
    }
  }
  return out;
}

}  // namespace units::core
