#include "base/check.h"
#include "core/pretrain/templates.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace units::core {

namespace ag = ::units::autograd;

MaskedAutoregression::MaskedAutoregression(const ParamSet& params,
                                           int64_t input_channels,
                                           uint64_t seed)
    : PretrainBase(params, input_channels, seed) {}

Status MaskedAutoregression::EnsureDecoder() {
  UNITS_RETURN_IF_ERROR(EnsureEncoder());
  if (decoder_ == nullptr) {
    decoder_ = std::make_shared<nn::ReconstructionDecoder>(
        repr_dim(), input_channels(), &rng_,
        params_.GetInt("hidden_channels", 32));
  }
  return Status::Ok();
}

std::vector<Variable> MaskedAutoregression::ExtraTrainableParams() {
  EnsureDecoder().CheckOk();
  return decoder_->Parameters();
}

Variable MaskedAutoregression::BuildLoss(const Tensor& batch_values,
                                         Rng* rng) {
  EnsureDecoder().CheckOk();
  const float mask_ratio =
      static_cast<float>(params_.GetDouble("mask_ratio", 0.25));
  const float mean_block =
      static_cast<float>(params_.GetDouble("mask_mean_block", 5.0));

  // Observation mask (1 = visible, 0 = masked-out / to be predicted).
  Tensor observe_mask = data::MakeMissingMask(batch_values.shape(),
                                              mask_ratio, mean_block, rng);
  Tensor masked_input = ops::Mul(batch_values, observe_mask);

  Variable repr = EncodePerTimestep(Variable(std::move(masked_input)));
  Variable pred = decoder_->Forward(repr);  // [B, D, T]

  // Predict the *masked* values only, as in TST: loss mask = 1 - observe.
  Tensor loss_mask = ops::UnaryOp(observe_mask,
                                  [](float m) { return 1.0f - m; });
  return ag::MaskedMseLoss(pred, Variable(batch_values), loss_mask);
}

}  // namespace units::core
