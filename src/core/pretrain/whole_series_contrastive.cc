#include "base/check.h"
#include "core/pretrain/templates.h"

namespace units::core {

namespace ag = ::units::autograd;

WholeSeriesContrastive::WholeSeriesContrastive(const ParamSet& params,
                                               int64_t input_channels,
                                               uint64_t seed)
    : PretrainBase(params, input_channels, seed),
      views_(augment::AugmentationPipeline::ContrastiveViews(
          static_cast<float>(params_.GetDouble("aug_jitter", 0.3)),
          static_cast<float>(params_.GetDouble("aug_scale", 0.3)),
          static_cast<float>(params_.GetDouble("aug_mask_ratio", 0.15)),
          static_cast<float>(params_.GetDouble("aug_time_warp", 0.2)))),
      use_frequency_view_(params_.GetInt("use_frequency_view", 1) != 0) {}

Variable WholeSeriesContrastive::BuildLoss(const Tensor& batch_values,
                                           Rng* rng) {
  EnsureEncoder().CheckOk();
  const float temperature =
      static_cast<float>(params_.GetDouble("temperature", 0.2));

  // View 1: time-domain augmentations (jitter + scale + masking).
  Tensor view1 = views_.Apply(batch_values, rng);
  // View 2: a frequency-domain perturbation (TF-C style) or an independent
  // draw of the time-domain pipeline.
  Tensor view2 = use_frequency_view_
                     ? augment::FrequencyPerturb(batch_values, 0.1f, 0.1f, rng)
                     : views_.Apply(batch_values, rng);

  Variable z1 = Encode(Variable(std::move(view1)));
  Variable z2 = Encode(Variable(std::move(view2)));
  return NtXentLoss(z1, z2, temperature);
}

}  // namespace units::core
