#include <algorithm>

#include "base/check.h"
#include "core/pretrain/templates.h"
#include "tensor/tensor_ops.h"

namespace units::core {

namespace ag = ::units::autograd;

TimestampContrastive::TimestampContrastive(const ParamSet& params,
                                           int64_t input_channels,
                                           uint64_t seed)
    : PretrainBase(params, input_channels, seed) {}

Variable TimestampContrastive::BuildLoss(const Tensor& batch_values,
                                         Rng* rng) {
  EnsureEncoder().CheckOk();
  const int64_t b = batch_values.dim(0);
  const int64_t t = batch_values.dim(2);
  const float temperature =
      static_cast<float>(params_.GetDouble("temperature", 0.2));
  const float crop_frac =
      static_cast<float>(params_.GetDouble("crop_frac", 0.6));
  const int64_t crop_len = std::clamp<int64_t>(
      static_cast<int64_t>(crop_frac * static_cast<float>(t)), 8, t);

  // Two overlapping crops; the same offsets are used for the whole batch so
  // the overlap region lines up as a dense tensor. Offsets differ by at
  // most crop_len/4 so the overlap is at least 3/4 of the crop.
  const int64_t max_start = t - crop_len;
  const int64_t o1 = max_start > 0
                         ? static_cast<int64_t>(rng->UniformInt(
                               static_cast<uint64_t>(max_start + 1)))
                         : 0;
  const int64_t max_delta = std::max<int64_t>(1, crop_len / 4);
  int64_t o2 = o1 + rng->UniformInt(-max_delta, max_delta);
  o2 = std::clamp<int64_t>(o2, 0, max_start);

  const int64_t ov_start = std::max(o1, o2);
  const int64_t ov_end = std::min(o1, o2) + crop_len;
  const int64_t ov_len = ov_end - ov_start;
  UNITS_CHECK_GT(ov_len, 0);

  // Independent corruption of each crop (jitter + timestamp masking, as in
  // TS2Vec): without it overlapping timestamps see near-identical context
  // and the contrastive task is trivially solved without learning.
  const float jitter =
      static_cast<float>(params_.GetDouble("aug_jitter", 0.3));
  const float mask_ratio =
      static_cast<float>(params_.GetDouble("aug_mask_ratio", 0.15));
  Tensor c1 = ops::Slice(batch_values, 2, o1, crop_len);
  Tensor c2 = ops::Slice(batch_values, 2, o2, crop_len);
  c1 = augment::TimeMask(augment::Jitter(c1, jitter, rng), mask_ratio, 3.0f,
                         rng);
  c2 = augment::TimeMask(augment::Jitter(c2, jitter, rng), mask_ratio, 3.0f,
                         rng);
  Variable r1 = EncodePerTimestep(Variable(std::move(c1)));  // [B, K, L]
  Variable r2 = EncodePerTimestep(Variable(std::move(c2)));

  // Overlap regions in each crop's local coordinates, L2-normalized over K.
  Variable r1ov = ag::L2Normalize(
      ag::Slice(r1, 2, ov_start - o1, ov_len), /*axis=*/1);  // [B, K, Lov]
  Variable r2ov = ag::L2Normalize(
      ag::Slice(r2, 2, ov_start - o2, ov_len), /*axis=*/1);

  Variable r1t = ag::Transpose(r1ov, 1, 2);  // [B, Lov, K]
  Variable r2t = ag::Transpose(r2ov, 1, 2);

  // Temporal contrast: timestamp t of view 1 must pick out timestamp t of
  // view 2 among all overlap timestamps (and symmetrically).
  std::vector<int64_t> time_targets(static_cast<size_t>(b * ov_len));
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = 0; j < ov_len; ++j) {
      time_targets[static_cast<size_t>(i * ov_len + j)] = j;
    }
  }
  Variable s12 = ag::MulScalar(ag::BatchedMatMul(r1t, r2ov),
                               1.0f / temperature);  // [B, Lov, Lov]
  Variable s21 = ag::MulScalar(ag::BatchedMatMul(r2t, r1ov),
                               1.0f / temperature);
  Variable temporal = ag::MulScalar(
      ag::Add(ag::CrossEntropyLoss(
                  ag::Reshape(s12, {b * ov_len, ov_len}), time_targets),
              ag::CrossEntropyLoss(
                  ag::Reshape(s21, {b * ov_len, ov_len}), time_targets)),
      0.5f);

  // Instance contrast: at sampled timestamps, sample i of view 1 must pick
  // out sample i of view 2 across the batch (NT-Xent over the batch).
  const int64_t num_stamps = std::min<int64_t>(
      ov_len, std::max<int64_t>(1, params_.GetInt("instance_timestamps", 8)));
  Variable instance;
  for (int64_t s = 0; s < num_stamps; ++s) {
    const int64_t stamp = static_cast<int64_t>(
        rng->UniformInt(static_cast<uint64_t>(ov_len)));
    Variable z1 = ag::Reshape(ag::Slice(r1ov, 2, stamp, 1), {b, repr_dim()});
    Variable z2 = ag::Reshape(ag::Slice(r2ov, 2, stamp, 1), {b, repr_dim()});
    Variable term = ag::MulScalar(NtXentLoss(z1, z2, temperature),
                                  1.0f / static_cast<float>(num_stamps));
    instance = instance.defined() ? ag::Add(instance, term) : term;
  }

  return ag::MulScalar(ag::Add(temporal, instance), 0.5f);
}

}  // namespace units::core
