#include "base/check.h"
#include "core/pretrain/templates.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace units::core {

namespace ag = ::units::autograd;

HybridPretrain::HybridPretrain(const ParamSet& params,
                               int64_t input_channels, uint64_t seed)
    : PretrainBase(params, input_channels, seed),
      views_(augment::AugmentationPipeline::ContrastiveViews(
          static_cast<float>(params_.GetDouble("aug_jitter", 0.3)),
          static_cast<float>(params_.GetDouble("aug_scale", 0.3)),
          static_cast<float>(params_.GetDouble("aug_mask_ratio", 0.15)),
          static_cast<float>(params_.GetDouble("aug_time_warp", 0.2)))),
      alpha_(static_cast<float>(params_.GetDouble("hybrid_alpha", 0.5))) {}

Status HybridPretrain::EnsureDecoder() {
  UNITS_RETURN_IF_ERROR(EnsureEncoder());
  if (decoder_ == nullptr) {
    decoder_ = std::make_shared<nn::ReconstructionDecoder>(
        repr_dim(), input_channels(), &rng_,
        params_.GetInt("hidden_channels", 32));
  }
  return Status::Ok();
}

std::vector<Variable> HybridPretrain::ExtraTrainableParams() {
  EnsureDecoder().CheckOk();
  return decoder_->Parameters();
}

Variable HybridPretrain::BuildLoss(const Tensor& batch_values, Rng* rng) {
  EnsureDecoder().CheckOk();
  const float temperature =
      static_cast<float>(params_.GetDouble("temperature", 0.2));
  const float mask_ratio =
      static_cast<float>(params_.GetDouble("mask_ratio", 0.25));
  const float mean_block =
      static_cast<float>(params_.GetDouble("mask_mean_block", 5.0));

  // Contrastive branch (temporal contrasting of two augmented views).
  Tensor view1 = views_.Apply(batch_values, rng);
  Tensor view2 = views_.Apply(batch_values, rng);
  Variable z1 = Encode(Variable(std::move(view1)));
  Variable z2 = Encode(Variable(std::move(view2)));
  Variable contrastive = NtXentLoss(z1, z2, temperature);

  // Predictive branch (masked-value reconstruction).
  Tensor observe_mask = data::MakeMissingMask(batch_values.shape(),
                                              mask_ratio, mean_block, rng);
  Tensor masked_input = ops::Mul(batch_values, observe_mask);
  Variable repr = EncodePerTimestep(Variable(std::move(masked_input)));
  Variable pred = decoder_->Forward(repr);
  Tensor loss_mask = ops::UnaryOp(observe_mask,
                                  [](float m) { return 1.0f - m; });
  Variable predictive =
      ag::MaskedMseLoss(pred, Variable(batch_values), loss_mask);

  return ag::Add(ag::MulScalar(contrastive, alpha_),
                 ag::MulScalar(predictive, 1.0f - alpha_));
}

}  // namespace units::core
