#ifndef UNITS_CORE_PRETRAIN_TEMPLATES_H_
#define UNITS_CORE_PRETRAIN_TEMPLATES_H_

#include <memory>
#include <string>
#include <vector>

#include "augment/augment.h"
#include "core/encoder_factory.h"
#include "core/estimator.h"
#include "nn/heads.h"

namespace units::core {

/// Shared machinery for the concrete templates: encoder construction from
/// hyper-parameters, the Adam pre-training loop around BuildLoss, batched
/// no-grad Transform, and differentiable Encode for fine-tuning.
class PretrainBase : public PretrainTemplate {
 public:
  PretrainBase(const ParamSet& params, int64_t input_channels, uint64_t seed);

  Status Fit(const Tensor& x) override;
  Tensor Transform(const Tensor& x) override;
  Tensor TransformPerTimestep(const Tensor& x) override;
  Variable Encode(const Variable& x) override;
  Variable EncodePerTimestep(const Variable& x) override;
  int64_t repr_dim() const override { return encoder_.repr_dim; }
  nn::Module* encoder() override { return encoder_.module.get(); }
  Status Initialize() override { return EnsureEncoder(); }
  const std::vector<float>& loss_history() const override {
    return loss_history_;
  }

  const ParamSet& params() const { return params_; }
  int64_t input_channels() const { return input_channels_; }

 protected:
  /// Lazily builds the encoder on first use (input width is known at
  /// construction, so this just defers the RNG draw order).
  Status EnsureEncoder();

  /// Parameters of auxiliary modules that train alongside the encoder
  /// (e.g. a masked-prediction decoder). Default: none.
  virtual std::vector<Variable> ExtraTrainableParams() { return {}; }

  ParamSet params_;
  int64_t input_channels_;
  Rng rng_;
  EncoderHandle encoder_;
  std::vector<float> loss_history_;
  bool fitted_ = false;
};

/// Whole-series contrastive learning (time/frequency augmented views of the
/// full series, NT-Xent across the batch) — the series-level granularity of
/// the paper's contrastive family [TF-C, ref 10].
class WholeSeriesContrastive : public PretrainBase {
 public:
  WholeSeriesContrastive(const ParamSet& params, int64_t input_channels,
                         uint64_t seed);

  std::string name() const override { return "whole_series_contrastive"; }
  Variable BuildLoss(const Tensor& batch_values, Rng* rng) override;

 private:
  augment::AugmentationPipeline views_;
  bool use_frequency_view_;
};

/// Sub-sequence contrastive learning with the triplet objective of
/// Franceschi et al. [ref 2]: an anchor crop should be closer to a crop of
/// the same series than to crops of other series.
class SubsequenceContrastive : public PretrainBase {
 public:
  SubsequenceContrastive(const ParamSet& params, int64_t input_channels,
                         uint64_t seed);

  std::string name() const override { return "subsequence_contrastive"; }
  Variable BuildLoss(const Tensor& batch_values, Rng* rng) override;
};

/// Timestamp-level contrastive learning (TS2Vec-style [ref 8]): two
/// overlapping crops; matching timestamps in the overlap must agree both
/// against other timestamps (temporal contrast) and against other samples
/// (instance contrast).
class TimestampContrastive : public PretrainBase {
 public:
  TimestampContrastive(const ParamSet& params, int64_t input_channels,
                       uint64_t seed);

  std::string name() const override { return "timestamp_contrastive"; }
  Variable BuildLoss(const Tensor& batch_values, Rng* rng) override;
};

/// Masked-value autoregression (TST-style [ref 9]): random time segments
/// are zeroed and the encoder + linear decoder must reconstruct them.
class MaskedAutoregression : public PretrainBase {
 public:
  MaskedAutoregression(const ParamSet& params, int64_t input_channels,
                       uint64_t seed);

  std::string name() const override { return "masked_autoregression"; }
  Variable BuildLoss(const Tensor& batch_values, Rng* rng) override;

  /// The reconstruction decoder participates in pre-training only.
  nn::Module* decoder() { return decoder_.get(); }

 protected:
  std::vector<Variable> ExtraTrainableParams() override;

 private:
  Status EnsureDecoder();
  std::shared_ptr<nn::ReconstructionDecoder> decoder_;
};

/// Hybrid objective [TS-TCC-like, ref 1]: convex combination of the
/// whole-series contrastive loss and the masked-prediction loss.
class HybridPretrain : public PretrainBase {
 public:
  HybridPretrain(const ParamSet& params, int64_t input_channels,
                 uint64_t seed);

  std::string name() const override { return "hybrid"; }
  Variable BuildLoss(const Tensor& batch_values, Rng* rng) override;

  nn::Module* decoder() { return decoder_.get(); }

 protected:
  std::vector<Variable> ExtraTrainableParams() override;

 private:
  Status EnsureDecoder();
  augment::AugmentationPipeline views_;
  std::shared_ptr<nn::ReconstructionDecoder> decoder_;
  float alpha_;
};

// --- shared loss building blocks (exposed for tests) ------------------------

/// NT-Xent (normalized temperature-scaled cross entropy) between two view
/// batches z1, z2 of shape [B, K]. Both directions averaged.
Variable NtXentLoss(const Variable& z1, const Variable& z2,
                    float temperature);

/// Numerically stable log(sigmoid(x)) as a Variable op composition.
Variable LogSigmoid(const Variable& x);

}  // namespace units::core

#endif  // UNITS_CORE_PRETRAIN_TEMPLATES_H_
