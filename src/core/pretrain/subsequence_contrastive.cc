#include <algorithm>

#include "base/check.h"
#include "core/pretrain/templates.h"
#include "tensor/tensor_ops.h"

namespace units::core {

namespace ag = ::units::autograd;

SubsequenceContrastive::SubsequenceContrastive(const ParamSet& params,
                                               int64_t input_channels,
                                               uint64_t seed)
    : PretrainBase(params, input_channels, seed) {}

Variable SubsequenceContrastive::BuildLoss(const Tensor& batch_values,
                                           Rng* rng) {
  EnsureEncoder().CheckOk();
  const int64_t b = batch_values.dim(0);
  const int64_t t = batch_values.dim(2);
  const float crop_frac =
      static_cast<float>(params_.GetDouble("crop_frac", 0.6));
  const int64_t neg_samples = std::max<int64_t>(
      1, params_.GetInt("neg_samples", 8));
  const int64_t anchor_len = std::max<int64_t>(
      8, static_cast<int64_t>(crop_frac * static_cast<float>(t)));
  const int64_t pos_len = std::max<int64_t>(4, anchor_len / 2);

  // Anchor crop and a same-series positive crop (Franceschi et al.: the
  // positive is a subseries of the same time series).
  Tensor anchors = augment::RandomCrop(batch_values, anchor_len, rng);
  Tensor positives = augment::RandomCrop(batch_values, pos_len, rng);

  Variable za = Encode(Variable(std::move(anchors)));    // [B, K]
  Variable zp = Encode(Variable(std::move(positives)));  // [B, K]

  // -log sigmoid(za . zp)
  Variable pos_logit = ag::Sum(ag::Mul(za, zp), /*axis=*/1);
  Variable loss = ag::Neg(ag::MeanAll(LogSigmoid(pos_logit)));

  // Negatives: crops of other series in the batch, drawn by shifting the
  // sample order (i -> i + shift mod B guarantees a different series when
  // B > 1).
  for (int64_t k = 0; k < neg_samples; ++k) {
    std::vector<int64_t> shifted(static_cast<size_t>(b));
    const int64_t shift =
        b > 1 ? 1 + static_cast<int64_t>(rng->UniformInt(
                        static_cast<uint64_t>(b - 1)))
              : 0;
    for (int64_t i = 0; i < b; ++i) {
      shifted[static_cast<size_t>(i)] = (i + shift) % b;
    }
    Tensor other = ops::GatherRows(batch_values, shifted);
    Tensor neg_crop = augment::RandomCrop(other, pos_len, rng);
    Variable zn = Encode(Variable(std::move(neg_crop)));
    Variable neg_logit = ag::Sum(ag::Mul(za, zn), /*axis=*/1);
    Variable neg_term = ag::Neg(ag::MeanAll(LogSigmoid(ag::Neg(neg_logit))));
    loss = ag::Add(loss,
                   ag::MulScalar(neg_term,
                                 1.0f / static_cast<float>(neg_samples)));
  }
  return loss;
}

}  // namespace units::core
