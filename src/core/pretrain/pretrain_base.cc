#include <algorithm>
#include <cmath>
#include <memory>

#include "base/check.h"
#include "base/logging.h"
#include "core/pretrain/templates.h"
#include "data/dataloader.h"
#include "optim/optimizer.h"
#include "optim/schedule.h"
#include "tensor/tensor_ops.h"

namespace units::core {

namespace ag = ::units::autograd;

PretrainBase::PretrainBase(const ParamSet& params, int64_t input_channels,
                           uint64_t seed)
    : params_(DefaultPretrainParams().MergedWith(params)),
      input_channels_(input_channels),
      rng_(seed) {}

Status PretrainBase::EnsureEncoder() {
  if (encoder_.module != nullptr) {
    return Status::Ok();
  }
  UNITS_ASSIGN_OR_RETURN(encoder_,
                         BuildEncoder(params_, input_channels_, &rng_));
  return Status::Ok();
}

Status PretrainBase::Fit(const Tensor& x) {
  if (x.ndim() != 3) {
    return Status::InvalidArgument("Fit expects X of shape [N, D, T]");
  }
  if (x.dim(1) != input_channels_) {
    return Status::InvalidArgument("channel count mismatch");
  }
  if (x.dim(0) < 2) {
    return Status::InvalidArgument("need at least 2 samples to pre-train");
  }
  UNITS_RETURN_IF_ERROR(EnsureEncoder());

  const int64_t epochs = params_.GetInt("epochs", 20);
  const int64_t batch_size = params_.GetInt("batch_size", 16);
  const float lr = static_cast<float>(params_.GetDouble("lr", 1e-3));
  const float weight_decay =
      static_cast<float>(params_.GetDouble("weight_decay", 1e-5));
  const float clip_norm =
      static_cast<float>(params_.GetDouble("clip_norm", 5.0));

  // Run one BuildLoss first so templates that lazily construct auxiliary
  // modules (decoders) have created their parameters before the optimizer
  // snapshots the parameter list.
  encoder_.module->SetTraining(true);
  {
    Tensor probe = ops::Slice(x, 0, 0, std::min<int64_t>(2, x.dim(0)));
    (void)BuildLoss(probe, &rng_);
  }

  std::vector<Variable> trainable = encoder_.module->Parameters();
  for (Variable& v : ExtraTrainableParams()) {
    trainable.push_back(v);
  }
  optim::Adam opt(trainable, lr, 0.9f, 0.999f, 1e-8f, weight_decay);

  // Per-epoch learning-rate schedule ("constant" or "cosine" with a short
  // warmup, the common pre-training recipe).
  std::unique_ptr<optim::LrSchedule> schedule;
  if (params_.GetString("lr_schedule", "constant") == "cosine") {
    schedule = std::make_unique<optim::CosineLr>(
        epochs, std::min<int64_t>(epochs / 10, 5), /*final_fraction=*/0.1f);
  } else {
    schedule = std::make_unique<optim::ConstantLr>();
  }

  data::TimeSeriesDataset dataset(x);
  data::DataLoader loader(&dataset, batch_size, /*shuffle=*/true, &rng_,
                          /*prefetch=*/params_.GetInt("prefetch", 1) != 0);

  loss_history_.clear();
  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    opt.set_lr(lr * schedule->Multiplier(epoch));
    loader.Reset();
    data::Batch batch;
    double epoch_loss = 0.0;
    int64_t num_batches = 0;
    while (loader.Next(&batch)) {
      Variable loss = BuildLoss(batch.values, &rng_);
      opt.ZeroGrad();
      loss.Backward();
      optim::ClipGradNorm(trainable, clip_norm);
      opt.Step();
      epoch_loss += loss.item();
      ++num_batches;
    }
    const float mean_loss =
        static_cast<float>(epoch_loss / std::max<int64_t>(1, num_batches));
    loss_history_.push_back(mean_loss);
    UNITS_LOG(Debug) << name() << " epoch " << epoch << " loss " << mean_loss;
  }
  fitted_ = true;
  return Status::Ok();
}

Tensor PretrainBase::Transform(const Tensor& x) {
  UNITS_CHECK_EQ(x.ndim(), 3);
  EnsureEncoder().CheckOk();
  ag::NoGradGuard no_grad;
  const bool was_training = encoder_.module->training();
  encoder_.module->SetTraining(false);
  const int64_t n = x.dim(0);
  const int64_t chunk = 64;
  Tensor out = Tensor::Zeros({n, repr_dim()});
  for (int64_t start = 0; start < n; start += chunk) {
    const int64_t len = std::min(chunk, n - start);
    Variable batch(ops::Slice(x, 0, start, len));
    Variable z = ag::MaxPoolOverTime(encoder_.module->Forward(batch));
    std::copy(z.data().data(), z.data().data() + z.numel(),
              out.data() + start * repr_dim());
  }
  encoder_.module->SetTraining(was_training);
  return out;
}

Tensor PretrainBase::TransformPerTimestep(const Tensor& x) {
  UNITS_CHECK_EQ(x.ndim(), 3);
  EnsureEncoder().CheckOk();
  ag::NoGradGuard no_grad;
  const bool was_training = encoder_.module->training();
  encoder_.module->SetTraining(false);
  const int64_t n = x.dim(0);
  const int64_t t = x.dim(2);
  const int64_t chunk = 64;
  Tensor out = Tensor::Zeros({n, repr_dim(), t});
  const int64_t per_sample = repr_dim() * t;
  for (int64_t start = 0; start < n; start += chunk) {
    const int64_t len = std::min(chunk, n - start);
    Variable batch(ops::Slice(x, 0, start, len));
    Variable z = encoder_.module->Forward(batch);
    std::copy(z.data().data(), z.data().data() + z.numel(),
              out.data() + start * per_sample);
  }
  encoder_.module->SetTraining(was_training);
  return out;
}

Variable PretrainBase::Encode(const Variable& x) {
  EnsureEncoder().CheckOk();
  return ag::MaxPoolOverTime(encoder_.module->Forward(x));
}

Variable PretrainBase::EncodePerTimestep(const Variable& x) {
  EnsureEncoder().CheckOk();
  return encoder_.module->Forward(x);
}

// --- shared loss building blocks --------------------------------------------

Variable NtXentLoss(const Variable& z1, const Variable& z2,
                    float temperature) {
  UNITS_CHECK_EQ(z1.ndim(), 2);
  UNITS_CHECK(SameShape(z1.shape(), z2.shape()));
  const int64_t b = z1.dim(0);
  Variable z1n = ag::L2Normalize(z1, /*axis=*/1);
  Variable z2n = ag::L2Normalize(z2, /*axis=*/1);
  Variable z = ag::Concat({z1n, z2n}, /*axis=*/0);  // [2B, K]
  Variable sim = ag::MulScalar(ag::MatMul(z, ag::Transpose(z, 0, 1)),
                               1.0f / temperature);  // [2B, 2B]
  // Mask self-similarity on the diagonal.
  Tensor diag_mask = Tensor::Zeros({2 * b, 2 * b});
  for (int64_t i = 0; i < 2 * b; ++i) {
    diag_mask.data()[i * 2 * b + i] = -1e9f;
  }
  sim = ag::Add(sim, ag::Constant(std::move(diag_mask)));
  // Row i's positive is its partner view.
  std::vector<int64_t> targets(static_cast<size_t>(2 * b));
  for (int64_t i = 0; i < b; ++i) {
    targets[static_cast<size_t>(i)] = b + i;
    targets[static_cast<size_t>(b + i)] = i;
  }
  return ag::CrossEntropyLoss(sim, targets);
}

Variable LogSigmoid(const Variable& x) {
  // Stable: logsigmoid(x) = min(x,0) - log(1 + exp(-|x|)).
  Tensor out = ops::UnaryOp(x.data(), [](float v) {
    return std::min(v, 0.0f) - std::log1p(std::exp(-std::fabs(v)));
  });
  return Variable::MakeNode(std::move(out), {x}, [x](const Tensor& g) {
    // d/dx logsigmoid(x) = sigmoid(-x).
    Tensor dx = ops::BinaryOp(g, x.data(), [](float gi, float v) {
      return gi / (1.0f + std::exp(v));
    });
    if (x.requires_grad()) {
      x.AccumulateGrad(dx);
    }
  });
}

}  // namespace units::core
