#include "core/fusion.h"

#include <cmath>

#include "base/check.h"

namespace units::core {

namespace ag = ::units::autograd;

int64_t ConcatFusion::Initialize(const std::vector<int64_t>& in_dims,
                                 Rng* rng) {
  (void)rng;
  UNITS_CHECK(!in_dims.empty());
  in_dims_ = in_dims;
  fused_dim_ = 0;
  for (int64_t d : in_dims) {
    fused_dim_ += d;
  }
  return fused_dim_;
}

Variable ConcatFusion::Transform(const std::vector<Variable>& zs) {
  UNITS_CHECK_EQ(zs.size(), in_dims_.size());
  if (zs.size() == 1) {
    return zs[0];
  }
  return ag::Concat(zs, /*axis=*/1);
}

int64_t ProjectionFusion::Initialize(const std::vector<int64_t>& in_dims,
                                     Rng* rng) {
  UNITS_CHECK(!in_dims.empty());
  in_dims_ = in_dims;
  int64_t total = 0;
  for (int64_t d : in_dims) {
    total += d;
  }
  if (out_dim_ <= 0) {
    out_dim_ = std::max<int64_t>(8, total / 2);
  }
  proj_ = std::make_shared<nn::Linear>(total, out_dim_, rng);
  return out_dim_;
}

Variable ProjectionFusion::Transform(const std::vector<Variable>& zs) {
  UNITS_CHECK(proj_ != nullptr);
  UNITS_CHECK_EQ(zs.size(), in_dims_.size());
  Variable cat = zs.size() == 1 ? zs[0] : ag::Concat(zs, /*axis=*/1);
  return proj_->Forward(cat);
}

std::vector<Variable> ProjectionFusion::Parameters() {
  UNITS_CHECK(proj_ != nullptr);
  return proj_->Parameters();
}

int64_t GatedFusion::Initialize(const std::vector<int64_t>& in_dims,
                                Rng* rng) {
  (void)rng;
  UNITS_CHECK(!in_dims.empty());
  in_dims_ = in_dims;
  fused_dim_ = 0;
  for (int64_t d : in_dims) {
    fused_dim_ += d;
  }
  gates_ = std::make_shared<GateModule>(
      static_cast<int64_t>(in_dims.size()));
  return fused_dim_;
}

Variable GatedFusion::Transform(const std::vector<Variable>& zs) {
  UNITS_CHECK(gates_ != nullptr);
  UNITS_CHECK_EQ(zs.size(), in_dims_.size());
  // Gates start at sigmoid(0) = 0.5 for every template; we scale by 2 so
  // the initial transform is the identity concatenation.
  std::vector<Variable> gated;
  gated.reserve(zs.size());
  for (size_t m = 0; m < zs.size(); ++m) {
    Variable gate = ag::MulScalar(
        ag::Sigmoid(ag::Slice(gates_->logits(), 0,
                              static_cast<int64_t>(m), 1)),
        2.0f);
    gated.push_back(ag::Mul(zs[m], gate));  // [B, K_m] * [1] broadcast
  }
  return gated.size() == 1 ? gated[0] : ag::Concat(gated, /*axis=*/1);
}

std::vector<Variable> GatedFusion::Parameters() {
  UNITS_CHECK(gates_ != nullptr);
  return gates_->Parameters();
}

std::vector<float> GatedFusion::GateValues() const {
  UNITS_CHECK(gates_ != nullptr);
  const Tensor& logits = gates_->logits().data();
  std::vector<float> values(static_cast<size_t>(logits.numel()));
  for (int64_t i = 0; i < logits.numel(); ++i) {
    values[static_cast<size_t>(i)] =
        2.0f / (1.0f + std::exp(-logits[i]));
  }
  return values;
}

}  // namespace units::core
