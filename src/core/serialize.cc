#include "core/serialize.h"

#include "base/check.h"
#include "core/pipeline.h"
#include "core/registry.h"

namespace units::core {

json::JsonValue TensorToJson(const Tensor& t) {
  json::JsonValue obj = json::JsonValue::Object();
  json::JsonValue shape = json::JsonValue::Array();
  for (int64_t d : t.shape()) {
    shape.Append(json::JsonValue::Int(d));
  }
  obj.Set("shape", std::move(shape));
  std::vector<float> values(t.data(), t.data() + t.numel());
  obj.Set("data", json::JsonValue::FromFloats(values));
  return obj;
}

Result<Tensor> TensorFromJson(const json::JsonValue& v) {
  if (!v.is_object() || !v.Contains("shape") || !v.Contains("data")) {
    return Status::InvalidArgument("tensor JSON needs shape and data");
  }
  Shape shape;
  for (int64_t d : v.at("shape").ToInts()) {
    shape.push_back(d);
  }
  std::vector<float> values = v.at("data").ToFloats();
  if (NumElements(shape) != static_cast<int64_t>(values.size())) {
    return Status::InvalidArgument("tensor JSON shape/data size mismatch");
  }
  return Tensor::FromVector(std::move(shape), std::move(values));
}

json::JsonValue ModuleStateToJson(nn::Module* module) {
  UNITS_CHECK(module != nullptr);
  json::JsonValue obj = json::JsonValue::Object();
  for (auto& [name, param] : module->NamedParameters()) {
    obj.Set(name, TensorToJson(param.data()));
  }
  return obj;
}

Status LoadModuleState(nn::Module* module, const json::JsonValue& state) {
  if (module == nullptr) {
    return Status::InvalidArgument("null module");
  }
  if (!state.is_object()) {
    return Status::InvalidArgument("module state must be a JSON object");
  }
  for (auto& [name, param] : module->NamedParameters()) {
    UNITS_ASSIGN_OR_RETURN(const json::JsonValue* entry, state.Find(name));
    UNITS_ASSIGN_OR_RETURN(Tensor loaded, TensorFromJson(*entry));
    if (!SameShape(loaded.shape(), param.data().shape())) {
      return Status::InvalidArgument("shape mismatch for parameter " + name);
    }
    param.data().CopyDataFrom(loaded);
  }
  return Status::Ok();
}

json::JsonValue ParamSetToJson(const hpo::ParamSet& params) {
  json::JsonValue obj = json::JsonValue::Object();
  for (const auto& [name, value] : params.values()) {
    json::JsonValue entry = json::JsonValue::Object();
    if (const double* d = std::get_if<double>(&value)) {
      entry.Set("kind", json::JsonValue::String("double"));
      entry.Set("value", json::JsonValue::Number(*d));
    } else if (const int64_t* i = std::get_if<int64_t>(&value)) {
      entry.Set("kind", json::JsonValue::String("int"));
      entry.Set("value", json::JsonValue::Int(*i));
    } else {
      entry.Set("kind", json::JsonValue::String("string"));
      entry.Set("value",
                json::JsonValue::String(std::get<std::string>(value)));
    }
    obj.Set(name, std::move(entry));
  }
  return obj;
}

Result<hpo::ParamSet> ParamSetFromJson(const json::JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("ParamSet JSON must be an object");
  }
  hpo::ParamSet params;
  for (const auto& [name, entry] : v.items()) {
    if (!entry.is_object() || !entry.Contains("kind") ||
        !entry.Contains("value")) {
      return Status::InvalidArgument("bad ParamSet entry: " + name);
    }
    const std::string kind = entry.at("kind").AsString();
    if (kind == "double") {
      params.SetDouble(name, entry.at("value").AsNumber());
    } else if (kind == "int") {
      params.SetInt(name, entry.at("value").AsInt());
    } else if (kind == "string") {
      params.SetString(name, entry.at("value").AsString());
    } else {
      return Status::InvalidArgument("unknown ParamSet kind: " + kind);
    }
  }
  return params;
}

// --- default AnalysisTask hooks ---------------------------------------------

Result<json::JsonValue> AnalysisTask::SaveState(UnitsPipeline* pipeline) {
  (void)pipeline;
  return Status::Unimplemented("SaveState not implemented for task " +
                               name());
}

Status AnalysisTask::LoadState(UnitsPipeline* pipeline,
                               const json::JsonValue& state) {
  (void)pipeline;
  (void)state;
  return Status::Unimplemented("LoadState not implemented for task " +
                               name());
}

// --- pipeline persistence ----------------------------------------------------

Status UnitsPipeline::SaveJson(const std::string& path) const {
  json::JsonValue root = json::JsonValue::Object();
  root.Set("format", json::JsonValue::String("units-pipeline"));
  root.Set("version", json::JsonValue::Int(1));

  json::JsonValue config = json::JsonValue::Object();
  json::JsonValue template_names = json::JsonValue::Array();
  for (const auto& tmpl : templates_) {
    template_names.Append(json::JsonValue::String(tmpl->name()));
  }
  config.Set("templates", std::move(template_names));
  config.Set("fusion",
             json::JsonValue::String(fusion_ != nullptr ? fusion_->name()
                                                        : "concat"));
  config.Set("task", json::JsonValue::String(
                         task_ != nullptr ? task_->name() : ""));
  config.Set("seed", json::JsonValue::Int(
                         static_cast<int64_t>(config_.seed)));
  config.Set("input_channels", json::JsonValue::Int(input_channels_));
  root.Set("config", std::move(config));

  root.Set("pretrain_params", ParamSetToJson(ResolveParams(
                                  config_.mode, DefaultPretrainParams(),
                                  config_.pretrain_params)));
  root.Set("finetune_params", ParamSetToJson(finetune_params_));
  root.Set("pretrained", json::JsonValue::Bool(pretrained_));
  // Only the fp32 weights are persisted; "int8" asks LoadJson to requantize
  // them. Quantization is deterministic, so save -> load -> Predict is
  // bitwise stable across restarts.
  root.Set("precision", json::JsonValue::String(precision_));

  json::JsonValue encoders = json::JsonValue::Array();
  for (const auto& tmpl : templates_) {
    // const_cast: encoder() is non-const but serialization is logically
    // read-only; templates are always materialized before saving.
    auto* mutable_tmpl = const_cast<PretrainTemplate*>(tmpl.get());
    UNITS_RETURN_IF_ERROR(mutable_tmpl->Initialize());
    encoders.Append(ModuleStateToJson(mutable_tmpl->encoder()));
  }
  root.Set("encoders", std::move(encoders));

  if (fusion_ != nullptr && fusion_->module() != nullptr) {
    root.Set("fusion_module", ModuleStateToJson(fusion_->module()));
  }

  if (task_ != nullptr) {
    auto* self = const_cast<UnitsPipeline*>(this);
    Result<json::JsonValue> state = task_->SaveState(self);
    if (state.ok()) {
      root.Set("task_state", std::move(state).value());
    } else if (state.status().code() != StatusCode::kUnimplemented &&
               state.status().code() != StatusCode::kFailedPrecondition) {
      return state.status();
    }
  }
  return json::WriteFile(path, root);
}

Result<std::unique_ptr<UnitsPipeline>> UnitsPipeline::LoadJson(
    const std::string& path) {
  UNITS_ASSIGN_OR_RETURN(json::JsonValue root, json::ParseFile(path));
  if (!root.is_object() || !root.Contains("format") ||
      root.at("format").AsString() != "units-pipeline") {
    return Status::InvalidArgument(path + " is not a units-pipeline file");
  }
  const json::JsonValue& config_json = root.at("config");

  Config config;
  config.templates.clear();
  for (size_t i = 0; i < config_json.at("templates").size(); ++i) {
    config.templates.push_back(config_json.at("templates")[i].AsString());
  }
  config.fusion = config_json.at("fusion").AsString();
  config.task = config_json.at("task").AsString();
  config.seed = static_cast<uint64_t>(config_json.at("seed").AsInt());
  config.mode = ConfigMode::kManual;
  UNITS_ASSIGN_OR_RETURN(config.pretrain_params,
                         ParamSetFromJson(root.at("pretrain_params")));
  UNITS_ASSIGN_OR_RETURN(config.finetune_params,
                         ParamSetFromJson(root.at("finetune_params")));
  const int64_t input_channels = config_json.at("input_channels").AsInt();

  UNITS_ASSIGN_OR_RETURN(std::unique_ptr<UnitsPipeline> pipeline,
                         Create(config, input_channels));
  UNITS_RETURN_IF_ERROR(pipeline->EnsureFusion());

  const json::JsonValue& encoders = root.at("encoders");
  if (encoders.size() != pipeline->templates_.size()) {
    return Status::InvalidArgument("encoder count mismatch");
  }
  for (size_t i = 0; i < pipeline->templates_.size(); ++i) {
    UNITS_RETURN_IF_ERROR(pipeline->templates_[i]->Initialize());
    UNITS_RETURN_IF_ERROR(LoadModuleState(
        pipeline->templates_[i]->encoder(), encoders[i]));
  }
  if (root.Contains("fusion_module") &&
      pipeline->fusion_->module() != nullptr) {
    UNITS_RETURN_IF_ERROR(LoadModuleState(pipeline->fusion_->module(),
                                          root.at("fusion_module")));
  }
  if (root.Contains("task_state") && pipeline->task_ != nullptr) {
    UNITS_RETURN_IF_ERROR(
        pipeline->task_->LoadState(pipeline.get(), root.at("task_state")));
  }
  if (root.at("pretrained").AsBool()) {
    pipeline->MarkPretrained();
  }
  if (root.Contains("precision") &&
      root.at("precision").AsString() == "int8") {
    pipeline->QuantizeInt8();
  }
  return pipeline;
}

}  // namespace units::core
