#include "core/evaluate.h"

#include "core/tasks/tasks.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "tensor/tensor_ops.h"

namespace units::core {

namespace {

std::vector<int> PointLabelsToInt(const Tensor& labels) {
  std::vector<int> out(static_cast<size_t>(labels.numel()));
  for (int64_t i = 0; i < labels.numel(); ++i) {
    out[static_cast<size_t>(i)] = labels[i] > 0.5f ? 1 : 0;
  }
  return out;
}

}  // namespace

Result<std::map<std::string, double>> Evaluate(
    UnitsPipeline* pipeline, const data::TimeSeriesDataset& test) {
  if (pipeline->task() == nullptr) {
    return Status::FailedPrecondition("pipeline has no task");
  }
  const std::string task = pipeline->task()->name();
  std::map<std::string, double> out;

  if (task == "classification") {
    if (!test.has_labels()) {
      return Status::InvalidArgument("classification eval needs labels");
    }
    UNITS_ASSIGN_OR_RETURN(TaskResult result,
                           pipeline->Predict(test.values()));
    const auto report = metrics::ClassifierReport(
        test.labels(), result.labels, test.NumClasses());
    out["accuracy"] = report.accuracy;
    out["macro_f1"] = report.macro_f1;
    return out;
  }

  if (task == "clustering") {
    if (!test.has_labels()) {
      return Status::InvalidArgument("clustering eval needs labels");
    }
    UNITS_ASSIGN_OR_RETURN(TaskResult result,
                           pipeline->Predict(test.values()));
    out["nmi"] = metrics::NormalizedMutualInfo(test.labels(), result.labels);
    out["ari"] = metrics::AdjustedRandIndex(test.labels(), result.labels);
    return out;
  }

  if (task == "forecasting") {
    if (!test.has_targets()) {
      return Status::InvalidArgument("forecasting eval needs targets");
    }
    UNITS_ASSIGN_OR_RETURN(TaskResult result,
                           pipeline->Predict(test.values()));
    out["mse"] = metrics::MeanSquaredError(test.targets(),
                                           result.predictions);
    out["mae"] = metrics::MeanAbsoluteError(test.targets(),
                                            result.predictions);
    return out;
  }

  if (task == "anomaly_detection") {
    if (!test.has_point_labels()) {
      return Status::InvalidArgument("anomaly eval needs point labels");
    }
    UNITS_ASSIGN_OR_RETURN(TaskResult result,
                           pipeline->Predict(test.values()));
    const std::vector<int> truth = PointLabelsToInt(test.point_labels());
    std::vector<float> scores(result.scores.data(),
                              result.scores.data() + result.scores.numel());
    const auto best =
        metrics::BestF1Search(scores, truth, /*point_adjust=*/true);
    out["best_point_adjusted_f1"] = best.f1;
    out["precision"] = best.precision;
    out["recall"] = best.recall;
    return out;
  }

  if (task == "imputation") {
    auto* imputer = dynamic_cast<ImputationTask*>(pipeline->task());
    if (imputer == nullptr) {
      return Status::Internal("task name/type mismatch");
    }
    const float rate = static_cast<float>(
        pipeline->finetune_params().GetDouble("imputation_eval_rate", 0.25));
    Rng rng(pipeline->finetune_params().GetInt("imputation_eval_seed", 7));
    Tensor mask =
        data::MakeMissingMask(test.values().shape(), rate, 4.0f, &rng);
    UNITS_ASSIGN_OR_RETURN(Tensor imputed,
                           imputer->Impute(pipeline, test.values(), mask));
    out["masked_rmse"] = metrics::MaskedRmse(test.values(), imputed, mask);
    out["masked_mae"] = metrics::MaskedMae(test.values(), imputed, mask);
    return out;
  }

  return Status::Unimplemented("no evaluation recipe for task " + task);
}

}  // namespace units::core
