#ifndef UNITS_CORE_ENCODER_FACTORY_H_
#define UNITS_CORE_ENCODER_FACTORY_H_

#include <memory>
#include <string>

#include "base/rng.h"
#include "base/status.h"
#include "hpo/param_space.h"
#include "nn/module.h"

namespace units::core {

/// Architecture-agnostic encoder handle. The paper treats the model
/// architecture as a hyper-parameter; templates obtain their encoder from
/// this factory so any backbone works with any pre-training objective.
struct EncoderHandle {
  std::shared_ptr<nn::Module> module;  // Forward: [N, D, T] -> [N, K, T]
  int64_t repr_dim = 0;
  std::string backbone;  // "tcn" or "transformer"
};

/// Builds an encoder from hyper-parameters. Recognized params: "backbone"
/// ("tcn" | "transformer" | "gru"), "hidden_channels", "repr_dim",
/// "num_blocks", "kernel" (tcn), "num_layers", "num_heads" (transformer).
Result<EncoderHandle> BuildEncoder(const hpo::ParamSet& params,
                                   int64_t input_channels, Rng* rng);

}  // namespace units::core

#endif  // UNITS_CORE_ENCODER_FACTORY_H_
