#include "core/pipeline.h"

#include <algorithm>
#include <cstring>

#include "base/check.h"
#include "base/logging.h"
#include "core/registry.h"
#include "tensor/gemm_int8.h"
#include "tensor/tensor_ops.h"

namespace units::core {

namespace ag = ::units::autograd;

Result<std::unique_ptr<UnitsPipeline>> UnitsPipeline::Create(
    const Config& config, int64_t input_channels) {
  if (config.templates.empty()) {
    return Status::InvalidArgument("pipeline needs at least one template");
  }
  auto pipeline = std::make_unique<UnitsPipeline>(input_channels, config.seed);
  pipeline->config_ = config;

  const ParamSet pretrain_params = ResolveParams(
      config.mode, DefaultPretrainParams(), config.pretrain_params);
  uint64_t seed = config.seed;
  for (const std::string& name : config.templates) {
    UNITS_ASSIGN_OR_RETURN(
        std::unique_ptr<PretrainTemplate> tmpl,
        MakePretrainTemplate(name, pretrain_params, input_channels, ++seed));
    pipeline->AddTemplate(std::move(tmpl));
  }

  const ParamSet finetune_params = ResolveParams(
      config.mode, DefaultFineTuneParams(), config.finetune_params);
  UNITS_ASSIGN_OR_RETURN(std::unique_ptr<FeatureFusion> fusion,
                         MakeFusion(config.fusion, finetune_params));
  pipeline->SetFusion(std::move(fusion));

  if (!config.task.empty()) {
    UNITS_ASSIGN_OR_RETURN(std::unique_ptr<AnalysisTask> task,
                           MakeTask(config.task, finetune_params));
    pipeline->SetTask(std::move(task));
  }
  pipeline->SetFineTuneParams(finetune_params);
  return pipeline;
}

UnitsPipeline::UnitsPipeline(int64_t input_channels, uint64_t seed)
    : input_channels_(input_channels),
      rng_(seed),
      finetune_params_(DefaultFineTuneParams()) {
  config_.seed = seed;
}

void UnitsPipeline::AddTemplate(std::unique_ptr<PretrainTemplate> tmpl) {
  UNITS_CHECK(tmpl != nullptr);
  UNITS_CHECK_MSG(!fusion_ready_, "cannot add templates after fusion init");
  templates_.push_back(std::move(tmpl));
}

void UnitsPipeline::SetFusion(std::unique_ptr<FeatureFusion> fusion) {
  UNITS_CHECK(fusion != nullptr);
  fusion_ = std::move(fusion);
  fusion_ready_ = false;
}

void UnitsPipeline::SetTask(std::unique_ptr<AnalysisTask> task) {
  UNITS_CHECK(task != nullptr);
  task_ = std::move(task);
}

void UnitsPipeline::SetFineTuneParams(const ParamSet& params) {
  finetune_params_ = DefaultFineTuneParams().MergedWith(params);
}

Status UnitsPipeline::EnsureFusion() {
  if (fusion_ready_) {
    return Status::Ok();
  }
  if (templates_.empty()) {
    return Status::FailedPrecondition("no pre-training templates configured");
  }
  if (fusion_ == nullptr) {
    return Status::FailedPrecondition("no fusion module configured");
  }
  std::vector<int64_t> dims;
  dims.reserve(templates_.size());
  for (auto& tmpl : templates_) {
    UNITS_RETURN_IF_ERROR(tmpl->Initialize());  // repr_dim needs the encoder
    dims.push_back(tmpl->repr_dim());
  }
  fusion_->Initialize(dims, &rng_);
  fusion_ready_ = true;
  return Status::Ok();
}

Status UnitsPipeline::Pretrain(const Tensor& x) {
  if (templates_.empty()) {
    return Status::FailedPrecondition("no pre-training templates configured");
  }
  for (auto& tmpl : templates_) {
    UNITS_LOG(Info) << "pre-training template '" << tmpl->name() << "'";
    UNITS_RETURN_IF_ERROR(tmpl->Fit(x));
  }
  pretrained_ = true;
  return Status::Ok();
}

Status UnitsPipeline::FineTune(const data::TimeSeriesDataset& train) {
  if (task_ == nullptr) {
    return Status::FailedPrecondition("no analysis task configured");
  }
  UNITS_RETURN_IF_ERROR(EnsureFusion());
  return task_->Fit(this, train);
}

Result<TaskResult> UnitsPipeline::Predict(const Tensor& x) {
  if (task_ == nullptr) {
    return Status::FailedPrecondition("no analysis task configured");
  }
  UNITS_RETURN_IF_ERROR(EnsureFusion());
  return task_->Predict(this, x);
}

Status UnitsPipeline::EnsureReadyForServing() {
  if (task_ == nullptr) {
    return Status::FailedPrecondition("no analysis task configured");
  }
  UNITS_RETURN_IF_ERROR(EnsureFusion());
  SetTraining(false);
  // Weights are frozen from here on (until someone flips training back),
  // so eval forwards may be captured into reusable plans.
  planning_enabled_ = true;
  return Status::Ok();
}

int64_t UnitsPipeline::QuantizeInt8() {
  int64_t quantized = 0;
  for (auto& tmpl : templates_) {
    if (tmpl->encoder() != nullptr) {
      quantized += tmpl->encoder()->QuantizeInt8Weights();
    }
  }
  if (fusion_ != nullptr && fusion_->module() != nullptr) {
    quantized += fusion_->module()->QuantizeInt8Weights();
  }
  if (task_ != nullptr && task_->head() != nullptr) {
    quantized += task_->head()->QuantizeInt8Weights();
  }
  if (quantized == 0) {
    // Nothing took the int8 path (e.g. a GRU-only model): the pipeline is
    // still pure fp32, so don't relabel it or drop valid captured plans.
    return 0;
  }
  precision_ = "int8";
  // Captured plans traced the fp32 forward (possibly const-folding fp32
  // linear outputs); they are stale now. The next RunEvalProgram recaptures
  // through the quantized Linear::Forward path.
  plan_cache_.Clear();
  plans_captured_int8_ = gemm::Int8GemmEnabled();
  return quantized;
}

Variable UnitsPipeline::EncodeFused(const Variable& x) {
  EnsureFusion().CheckOk();
  std::vector<Variable> zs;
  zs.reserve(templates_.size());
  for (auto& tmpl : templates_) {
    zs.push_back(tmpl->Encode(x));
  }
  return fusion_->Transform(zs);
}

Variable UnitsPipeline::EncodeFusedPerTimestep(const Variable& x) {
  EnsureFusion().CheckOk();
  std::vector<Variable> zs;
  zs.reserve(templates_.size());
  for (auto& tmpl : templates_) {
    zs.push_back(tmpl->EncodePerTimestep(x));
  }
  return fusion_->TransformPerTimestep(zs);
}

namespace {

/// Batched no-grad evaluation of `encode` over the rows of x.
Tensor BatchedEval(
    const Tensor& x, const Shape& out_tail,
    const std::function<Variable(const Variable&)>& encode) {
  ag::NoGradGuard no_grad;
  const int64_t n = x.dim(0);
  Shape out_shape = out_tail;
  out_shape.insert(out_shape.begin(), n);
  Tensor out = Tensor::Zeros(out_shape);
  const int64_t per_sample = out.numel() / std::max<int64_t>(n, 1);
  const int64_t chunk = 64;
  for (int64_t start = 0; start < n; start += chunk) {
    const int64_t len = std::min(chunk, n - start);
    Variable z = encode(Variable(ops::Slice(x, 0, start, len)));
    std::copy(z.data().data(), z.data().data() + z.numel(),
              out.data() + start * per_sample);
  }
  return out;
}

}  // namespace

Tensor UnitsPipeline::TransformFused(const Tensor& x) {
  EnsureFusion().CheckOk();
  // Flip to eval mode only when needed: a pipeline already in eval mode
  // (the steady state while serving) sees a mutation-free forward, so
  // concurrent Transform/Predict calls on distinct threads are safe.
  const bool was_training = templates_.empty()
                                ? false
                                : templates_[0]->encoder()->training();
  if (was_training) {
    SetTraining(false);
  }
  Tensor out = BatchedEval(x, {fused_dim()}, [this](const Variable& batch) {
    return EncodeFused(batch);
  });
  if (was_training) {
    SetTraining(true);
  }
  return out;
}

Tensor UnitsPipeline::TransformFusedPerTimestep(const Tensor& x) {
  EnsureFusion().CheckOk();
  const bool was_training = templates_.empty()
                                ? false
                                : templates_[0]->encoder()->training();
  if (was_training) {
    SetTraining(false);
  }
  Tensor out = BatchedEval(
      x, {fused_dim_per_timestep(), x.dim(2)},
      [this](const Variable& batch) { return EncodeFusedPerTimestep(batch); });
  if (was_training) {
    SetTraining(true);
  }
  return out;
}

std::vector<Tensor> UnitsPipeline::RunEvalProgram(
    const std::string& key, const Tensor& x,
    const plan::EvalPlan::EvalFn& fn) {
  EnsureFusion().CheckOk();
  ag::NoGradGuard no_grad;
  const bool was_training = templates_.empty()
                                ? false
                                : templates_[0]->encoder()->training();
  if (was_training) {
    SetTraining(false);
  }

  const int64_t n = x.dim(0);
  if (n == 0) {
    std::vector<Variable> vs = fn(Variable(x));
    std::vector<Tensor> empty;
    empty.reserve(vs.size());
    for (Variable& v : vs) {
      empty.push_back(v.data());
    }
    if (was_training) {
      SetTraining(true);
    }
    return empty;
  }

  const int64_t per_row = x.numel() / n;
  constexpr int64_t kChunk = 64;
  const plan::Mode mode = plan::ActiveMode();
  const bool plans_allowed =
      planning_enabled_ && !was_training && mode != plan::Mode::kDynamic;
  if (precision_ == "int8") {
    // UNITS_GEMM_INT8 is read per forward call, so flipping it mid-serve
    // would silently replay plans captured under the other kernel; detect
    // the flip and recapture.
    const bool int8_now = gemm::Int8GemmEnabled();
    if (int8_now != plans_captured_int8_) {
      plan_cache_.Clear();
      plans_captured_int8_ = int8_now;
    }
  }

  std::vector<Tensor> outs;         // stitched [N, ...tail] results
  std::vector<int64_t> per_sample;  // floats per row, per output

  // Output count and tail shapes come from whatever the first chunk
  // produced (plan metadata or the dynamic forward's tensors).
  const auto ensure_outputs =
      [&](size_t num, const std::function<const Shape&(size_t)>& shape_of) {
        if (!outs.empty()) {
          return;
        }
        UNITS_CHECK(num > 0);
        outs.reserve(num);
        per_sample.reserve(num);
        for (size_t i = 0; i < num; ++i) {
          Shape s = shape_of(i);
          UNITS_CHECK(!s.empty());
          per_sample.push_back(NumElements(s) / s[0]);
          s[0] = n;
          outs.push_back(plan::AcquireResultTensor(s));
        }
      };
  const auto stitch_dynamic = [&](int64_t start,
                                  const std::vector<Variable>& vs) {
    ensure_outputs(vs.size(), [&](size_t i) -> const Shape& {
      return vs[i].data().shape();
    });
    UNITS_CHECK_EQ(vs.size(), outs.size());
    for (size_t i = 0; i < vs.size(); ++i) {
      const Tensor& t = vs[i].data();
      std::copy(t.data(), t.data() + t.numel(),
                outs[i].data() + start * per_sample[i]);
    }
  };

  std::string plan_error;
  for (int64_t start = 0; start < n; start += kChunk) {
    const int64_t len = std::min(kChunk, n - start);
    Shape chunk_shape = x.shape();
    chunk_shape[0] = len;

    std::shared_ptr<plan::EvalPlan> plan;
    if (plans_allowed) {
      if (!plan_cache_.Lookup(key, chunk_shape, &plan)) {
        const Tensor x_chunk =
            Tensor::ViewInto(x, start * per_row, chunk_shape);
        plan = plan::EvalPlan::Capture(fn, x_chunk, &plan_error);
        if (plan == nullptr) {
          UNITS_LOG(Info) << "eval program '" << key
                          << "' pinned to the dynamic walk: " << plan_error;
        }
        // A null entry pins a known-unplannable program so capture is not
        // retried every batch.
        plan_cache_.Insert(key, chunk_shape, plan);
      }
    }

    if (plan != nullptr) {
      ensure_outputs(plan->output_shapes().size(),
                     [&](size_t i) -> const Shape& {
                       return plan->output_shapes()[i];
                     });
      const Tensor x_chunk =
          Tensor::ViewInto(x, start * per_row, chunk_shape);
      plan->Run(x_chunk, [&](int i, const Tensor& t) {
        std::copy(t.data(), t.data() + t.numel(),
                  outs[static_cast<size_t>(i)].data() +
                      start * per_sample[static_cast<size_t>(i)]);
      });
      plan_cache_.RecordPlannedChunk();
      if (mode == plan::Mode::kVerify) {
        std::vector<Variable> vs = fn(Variable(ops::Slice(x, 0, start, len)));
        UNITS_CHECK_EQ(vs.size(), outs.size());
        for (size_t i = 0; i < vs.size(); ++i) {
          const Tensor& want = vs[i].data();
          UNITS_CHECK_MSG(
              std::memcmp(outs[i].data() + start * per_sample[i], want.data(),
                          static_cast<size_t>(want.numel()) * sizeof(float)) ==
                  0,
              "UNITS_PLAN=verify: planned output diverged from the dynamic "
              "walk");
        }
      }
    } else {
      // Dynamic fallback runs over the very same chunk boundaries, so the
      // two substrates are bitwise comparable row for row.
      stitch_dynamic(start, fn(Variable(ops::Slice(x, 0, start, len))));
      plan_cache_.RecordDynamicChunk();
    }
  }

  if (was_training) {
    SetTraining(true);
  }
  return outs;
}

int64_t UnitsPipeline::fused_dim() {
  EnsureFusion().CheckOk();
  return fusion_->fused_dim();
}

int64_t UnitsPipeline::fused_dim_per_timestep() {
  EnsureFusion().CheckOk();
  return fusion_->fused_dim_per_timestep();
}

std::vector<Variable> UnitsPipeline::EncoderAndFusionParams() {
  EnsureFusion().CheckOk();
  std::vector<Variable> params;
  if (finetune_params_.GetInt("finetune_encoder", 1) != 0) {
    for (auto& tmpl : templates_) {
      for (Variable& v : tmpl->encoder()->Parameters()) {
        params.push_back(v);
      }
    }
  }
  for (Variable& v : fusion_->Parameters()) {
    params.push_back(v);
  }
  return params;
}

void UnitsPipeline::SetTraining(bool training) {
  if (training) {
    // Training steps mutate weights that captured plans hold as constants;
    // drop every plan and require a fresh EnsureReadyForServing.
    planning_enabled_ = false;
    plan_cache_.Clear();
  }
  for (auto& tmpl : templates_) {
    if (tmpl->encoder() != nullptr) {
      tmpl->encoder()->SetTraining(training);
    }
  }
  if (fusion_ != nullptr && fusion_->module() != nullptr) {
    fusion_->module()->SetTraining(training);
  }
  if (task_ != nullptr && task_->head() != nullptr) {
    task_->head()->SetTraining(training);
  }
}

std::vector<std::vector<float>> UnitsPipeline::PretrainLossCurves() const {
  std::vector<std::vector<float>> curves;
  curves.reserve(templates_.size());
  for (const auto& tmpl : templates_) {
    curves.push_back(tmpl->loss_history());
  }
  return curves;
}

}  // namespace units::core
