#include "core/registry.h"

#include <map>

#include "core/fusion.h"
#include "core/pretrain/templates.h"
#include "core/tasks/tasks.h"

namespace units::core {

namespace {

// Function-local statics avoid global-initialization-order issues; the
// registries are plain pointers that intentionally live until process exit.
std::map<std::string, PretrainFactory>& PretrainRegistry() {
  static auto& registry = *new std::map<std::string, PretrainFactory>();
  return registry;
}

std::map<std::string, FusionFactory>& FusionRegistry() {
  static auto& registry = *new std::map<std::string, FusionFactory>();
  return registry;
}

std::map<std::string, TaskFactory>& TaskRegistry() {
  static auto& registry = *new std::map<std::string, TaskFactory>();
  return registry;
}

void EnsureBuiltins() {
  static const bool initialized = [] {
    RegisterPretrainTemplate(
        "whole_series_contrastive",
        [](const ParamSet& p, int64_t c, uint64_t s) {
          return std::make_unique<WholeSeriesContrastive>(p, c, s);
        });
    RegisterPretrainTemplate(
        "subsequence_contrastive",
        [](const ParamSet& p, int64_t c, uint64_t s) {
          return std::make_unique<SubsequenceContrastive>(p, c, s);
        });
    RegisterPretrainTemplate(
        "timestamp_contrastive",
        [](const ParamSet& p, int64_t c, uint64_t s) {
          return std::make_unique<TimestampContrastive>(p, c, s);
        });
    RegisterPretrainTemplate(
        "masked_autoregression",
        [](const ParamSet& p, int64_t c, uint64_t s) {
          return std::make_unique<MaskedAutoregression>(p, c, s);
        });
    RegisterPretrainTemplate(
        "hybrid", [](const ParamSet& p, int64_t c, uint64_t s) {
          return std::make_unique<HybridPretrain>(p, c, s);
        });

    RegisterFusion("concat", [](const ParamSet&) {
      return std::make_unique<ConcatFusion>();
    });
    RegisterFusion("projection", [](const ParamSet& p) {
      return std::make_unique<ProjectionFusion>(
          p.GetInt("projection_dim", 0));
    });
    RegisterFusion("gated", [](const ParamSet&) {
      return std::make_unique<GatedFusion>();
    });

    RegisterTask("classification", [](const ParamSet& p) {
      return std::make_unique<ClassificationTask>(p.GetInt("num_classes", 0));
    });
    RegisterTask("clustering", [](const ParamSet& p) {
      return std::make_unique<ClusteringTask>(p.GetInt("num_clusters", 2));
    });
    RegisterTask("forecasting", [](const ParamSet&) {
      return std::make_unique<ForecastingTask>();
    });
    RegisterTask("anomaly_detection", [](const ParamSet&) {
      return std::make_unique<AnomalyDetectionTask>();
    });
    RegisterTask("imputation", [](const ParamSet&) {
      return std::make_unique<ImputationTask>();
    });
    return true;
  }();
  (void)initialized;
}

template <typename Registry>
std::vector<std::string> Names(const Registry& registry) {
  std::vector<std::string> names;
  names.reserve(registry.size());
  for (const auto& [name, factory] : registry) {
    names.push_back(name);
  }
  return names;
}

}  // namespace

void RegisterPretrainTemplate(const std::string& name,
                              PretrainFactory factory) {
  PretrainRegistry()[name] = std::move(factory);
}

void RegisterFusion(const std::string& name, FusionFactory factory) {
  FusionRegistry()[name] = std::move(factory);
}

void RegisterTask(const std::string& name, TaskFactory factory) {
  TaskRegistry()[name] = std::move(factory);
}

Result<std::unique_ptr<PretrainTemplate>> MakePretrainTemplate(
    const std::string& name, const ParamSet& params, int64_t input_channels,
    uint64_t seed) {
  EnsureBuiltins();
  auto it = PretrainRegistry().find(name);
  if (it == PretrainRegistry().end()) {
    return Status::NotFound("unknown pre-training template: " + name);
  }
  return it->second(params, input_channels, seed);
}

Result<std::unique_ptr<FeatureFusion>> MakeFusion(const std::string& name,
                                                  const ParamSet& params) {
  EnsureBuiltins();
  auto it = FusionRegistry().find(name);
  if (it == FusionRegistry().end()) {
    return Status::NotFound("unknown fusion: " + name);
  }
  return it->second(params);
}

Result<std::unique_ptr<AnalysisTask>> MakeTask(const std::string& name,
                                               const ParamSet& params) {
  EnsureBuiltins();
  auto it = TaskRegistry().find(name);
  if (it == TaskRegistry().end()) {
    return Status::NotFound("unknown task: " + name);
  }
  return it->second(params);
}

std::vector<std::string> RegisteredPretrainTemplates() {
  EnsureBuiltins();
  return Names(PretrainRegistry());
}

std::vector<std::string> RegisteredFusions() {
  EnsureBuiltins();
  return Names(FusionRegistry());
}

std::vector<std::string> RegisteredTasks() {
  EnsureBuiltins();
  return Names(TaskRegistry());
}

}  // namespace units::core
