#ifndef UNITS_CORE_SERIALIZE_H_
#define UNITS_CORE_SERIALIZE_H_

#include "base/status.h"
#include "hpo/param_space.h"
#include "json/json.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace units::core {

// JSON (de)serialization helpers shared by the pipeline and the tasks.
// Models are saved as self-describing JSON (the demo's "standard JSON file
// which can be employed by any machine learning tool").

/// {"shape": [...], "data": [...]}.
json::JsonValue TensorToJson(const Tensor& t);
Result<Tensor> TensorFromJson(const json::JsonValue& v);

/// Dumps all named parameters of a module: {"<name>": tensor-json, ...}.
json::JsonValue ModuleStateToJson(nn::Module* module);

/// Loads parameters by name into an already-constructed module; missing or
/// shape-mismatched entries are errors.
Status LoadModuleState(nn::Module* module, const json::JsonValue& state);

/// ParamSet <-> JSON ({"name": {"kind": "int|double|string", "value": ...}}).
json::JsonValue ParamSetToJson(const hpo::ParamSet& params);
Result<hpo::ParamSet> ParamSetFromJson(const json::JsonValue& v);

}  // namespace units::core

#endif  // UNITS_CORE_SERIALIZE_H_
