#ifndef UNITS_CORE_BASELINES_H_
#define UNITS_CORE_BASELINES_H_

#include <memory>
#include <string>

#include "core/pipeline.h"

namespace units::core {

// Baselines corresponding to the paper's comparison point: "directly
// training task-specific model f_T without self-supervised pre-training"
// (Figure 3), plus classical non-learned baselines for context.

/// Builds a pipeline with the same architecture as `config` but meant to be
/// trained from scratch: callers skip Pretrain() and FineTune() performs
/// full end-to-end supervised training (encoder learning rate scale is
/// raised to 1 and fine-tuning epochs are multiplied by
/// `epoch_multiplier`, since from-scratch training needs more iterations —
/// this is exactly the efficiency gap the paper highlights).
Result<std::unique_ptr<UnitsPipeline>> MakeScratchBaseline(
    const UnitsPipeline::Config& config, int64_t input_channels,
    int64_t epoch_multiplier = 3);

/// k-means directly on the flattened raw series (classical clustering
/// baseline without any learned representation).
Result<std::vector<int64_t>> RawKMeansClustering(const Tensor& x,
                                                 int64_t num_clusters,
                                                 Rng* rng);

/// Repeats the last observed value over the horizon ("naive" forecast).
Tensor NaiveForecast(const Tensor& x, int64_t horizon);

/// Repeats the last full period ("seasonal naive").
Tensor SeasonalNaiveForecast(const Tensor& x, int64_t horizon,
                             int64_t period);

}  // namespace units::core

#endif  // UNITS_CORE_BASELINES_H_
