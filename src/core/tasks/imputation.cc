#include "base/check.h"
#include "base/logging.h"
#include "core/pipeline.h"
#include "core/serialize.h"
#include "core/tasks/tasks.h"
#include "data/dataloader.h"
#include "data/synthetic.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace units::core {

namespace ag = ::units::autograd;

Status ImputationTask::Fit(UnitsPipeline* pipeline,
                           const data::TimeSeriesDataset& train) {
  const ParamSet& p = pipeline->finetune_params();
  const int64_t epochs = p.GetInt("epochs", 10);
  const int64_t batch_size = p.GetInt("batch_size", 16);
  const float lr = static_cast<float>(p.GetDouble("lr", 1e-3));
  const float enc_lr =
      lr * static_cast<float>(p.GetDouble("encoder_lr_scale", 0.1));
  const float weight_decay =
      static_cast<float>(p.GetDouble("weight_decay", 1e-5));
  const float clip_norm = static_cast<float>(p.GetDouble("clip_norm", 5.0));
  const float mask_ratio =
      static_cast<float>(p.GetDouble("imputation_mask_ratio", 0.25));
  const float mask_block =
      static_cast<float>(p.GetDouble("imputation_mask_block", 4.0));

  if (decoder_ == nullptr) {
    decoder_ = std::make_shared<nn::ReconstructionDecoder>(
        pipeline->fused_dim_per_timestep(), train.num_channels(),
        pipeline->rng(), p.GetInt("head_hidden", 0));
  }

  pipeline->SetTraining(true);
  decoder_->SetTraining(true);

  std::vector<Variable> head_params = decoder_->Parameters();
  std::vector<Variable> enc_params = pipeline->EncoderAndFusionParams();
  optim::Adam head_opt(head_params, lr, 0.9f, 0.999f, 1e-8f, weight_decay);
  optim::Adam enc_opt(enc_params, enc_lr, 0.9f, 0.999f, 1e-8f, weight_decay);
  std::vector<Variable> all_params = head_params;
  all_params.insert(all_params.end(), enc_params.begin(), enc_params.end());

  data::DataLoader loader(&train, batch_size, /*shuffle=*/true,
                          pipeline->rng(),
                          /*prefetch=*/p.GetInt("prefetch", 1) != 0);
  loss_history_.clear();
  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    loader.Reset();
    data::Batch batch;
    double epoch_loss = 0.0;
    int64_t num_batches = 0;
    while (loader.Next(&batch)) {
      // DAE: corrupt with a random observation mask, reconstruct the whole
      // input (Section 3.3: minimize ||x - x_hat|| over the entire series).
      Tensor mask = data::MakeMissingMask(batch.values.shape(), mask_ratio,
                                          mask_block, pipeline->rng());
      Tensor corrupted = ops::Mul(batch.values, mask);
      Variable repr =
          pipeline->EncodeFusedPerTimestep(Variable(std::move(corrupted)));
      Variable recon = decoder_->Forward(repr);
      Variable loss = ag::MseLoss(recon, Variable(batch.values));
      head_opt.ZeroGrad();
      enc_opt.ZeroGrad();
      loss.Backward();
      optim::ClipGradNorm(all_params, clip_norm);
      head_opt.Step();
      enc_opt.Step();
      epoch_loss += loss.item();
      ++num_batches;
    }
    loss_history_.push_back(
        static_cast<float>(epoch_loss / std::max<int64_t>(1, num_batches)));
    UNITS_LOG(Debug) << "imputation epoch " << epoch << " loss "
                     << loss_history_.back();
  }
  pipeline->SetTraining(false);
  return Status::Ok();
}

Result<TaskResult> ImputationTask::Predict(UnitsPipeline* pipeline,
                                           const Tensor& x) {
  if (decoder_ == nullptr) {
    return Status::FailedPrecondition("Predict before Fit");
  }
  ag::NoGradGuard no_grad;
  if (decoder_->training()) {
    decoder_->SetTraining(false);
  }
  std::vector<Tensor> outs = pipeline->RunEvalProgram(
      "imputation.predict", x, [&](const Variable& xb) {
        return std::vector<Variable>{
            decoder_->Forward(pipeline->EncodeFusedPerTimestep(xb))};
      });
  TaskResult result;
  result.predictions = outs[0];
  return result;
}

Result<Tensor> ImputationTask::Impute(UnitsPipeline* pipeline,
                                      const Tensor& x, const Tensor& mask) {
  if (!SameShape(x.shape(), mask.shape())) {
    return Status::InvalidArgument("mask shape must match input");
  }
  // Missing values are replaced by 0 before encoding (paper Section 3.3).
  const Tensor zero_filled = ops::Mul(x, mask);
  UNITS_ASSIGN_OR_RETURN(TaskResult result, Predict(pipeline, zero_filled));
  Tensor imputed = x.Clone();
  float* out = imputed.data();
  const float* recon = result.predictions.data();
  const float* m = mask.data();
  for (int64_t i = 0; i < imputed.numel(); ++i) {
    if (m[i] == 0.0f) {
      out[i] = recon[i];
    }
  }
  return imputed;
}

Result<json::JsonValue> ImputationTask::SaveState(UnitsPipeline* pipeline) {
  (void)pipeline;
  if (decoder_ == nullptr) {
    return Status::FailedPrecondition("imputation decoder not fitted");
  }
  json::JsonValue state = json::JsonValue::Object();
  state.Set("out_channels", json::JsonValue::Int(pipeline->input_channels()));
  state.Set("head", ModuleStateToJson(decoder_.get()));
  return state;
}

Status ImputationTask::LoadState(UnitsPipeline* pipeline,
                                 const json::JsonValue& state) {
  decoder_ = std::make_shared<nn::ReconstructionDecoder>(
      pipeline->fused_dim_per_timestep(), state.at("out_channels").AsInt(),
      pipeline->rng(), pipeline->finetune_params().GetInt("head_hidden", 0));
  return LoadModuleState(decoder_.get(), state.at("head"));
}

}  // namespace units::core
