#ifndef UNITS_CORE_TASKS_TASKS_H_
#define UNITS_CORE_TASKS_TASKS_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/kmeans.h"
#include "core/estimator.h"
#include "nn/heads.h"

namespace units::core {

/// Classification (Table 1 row 1): a softmax head over the fused
/// representation, fine-tuned with cross entropy.
class ClassificationTask : public AnalysisTask {
 public:
  /// `num_classes` <= 0 infers C from the training labels at Fit time.
  explicit ClassificationTask(int64_t num_classes = 0)
      : num_classes_(num_classes) {}

  std::string name() const override { return "classification"; }
  Status Fit(UnitsPipeline* pipeline,
             const data::TimeSeriesDataset& train) override;
  Result<TaskResult> Predict(UnitsPipeline* pipeline,
                             const Tensor& x) override;
  nn::Module* head() override { return head_.get(); }
  Result<json::JsonValue> SaveState(UnitsPipeline* pipeline) override;
  Status LoadState(UnitsPipeline* pipeline,
                   const json::JsonValue& state) override;

  int64_t num_classes() const { return num_classes_; }

 private:
  int64_t num_classes_;
  bool normalize_repr_ = true;
  std::shared_ptr<nn::MlpHead> head_;
};

/// Clustering (Table 1 row 2): k-means over the fused representations,
/// optionally preceded by fine-tuning with the paper's k-means regularizer
/// (self-supervised loss + lambda * distance-to-centroid, recomputing the
/// centroids each epoch; the SSL term prevents the trivial collapse).
class ClusteringTask : public AnalysisTask {
 public:
  explicit ClusteringTask(int64_t num_clusters)
      : num_clusters_(num_clusters) {}

  std::string name() const override { return "clustering"; }
  Status Fit(UnitsPipeline* pipeline,
             const data::TimeSeriesDataset& train) override;
  Result<TaskResult> Predict(UnitsPipeline* pipeline,
                             const Tensor& x) override;

  Result<json::JsonValue> SaveState(UnitsPipeline* pipeline) override;
  Status LoadState(UnitsPipeline* pipeline,
                   const json::JsonValue& state) override;

  const Tensor& centroids() const { return centroids_; }

 private:
  int64_t num_clusters_;
  bool normalize_repr_ = true;
  Tensor centroids_;  // [C, K'] after Fit
};

/// Forecasting (Table 1 row 3): a decoder maps the fused representation of
/// the input window to the next H steps; fine-tuned with MSE or MAE.
class ForecastingTask : public AnalysisTask {
 public:
  ForecastingTask() = default;

  std::string name() const override { return "forecasting"; }
  Status Fit(UnitsPipeline* pipeline,
             const data::TimeSeriesDataset& train) override;
  Result<TaskResult> Predict(UnitsPipeline* pipeline,
                             const Tensor& x) override;
  nn::Module* head() override { return decoder_.get(); }
  Result<json::JsonValue> SaveState(UnitsPipeline* pipeline) override;
  Status LoadState(UnitsPipeline* pipeline,
                   const json::JsonValue& state) override;

  int64_t horizon() const { return horizon_; }

  /// Autoregressive rollout beyond the trained horizon H: repeatedly
  /// forecasts H steps, appends them to the input window (dropping the
  /// oldest H steps), and continues until `total_horizon` steps are
  /// produced. Returns [N, D, total_horizon].
  Result<Tensor> Rollout(UnitsPipeline* pipeline, const Tensor& x,
                         int64_t total_horizon);

 private:
  Variable EncodeForForecast(UnitsPipeline* pipeline, const Variable& x);

  int64_t horizon_ = 0;
  int64_t out_channels_ = 0;
  bool use_last_step_ = true;
  std::shared_ptr<nn::ForecastDecoder> decoder_;
};

/// Anomaly detection (Table 1 row 4): reconstruction-based — a decoder
/// rebuilds the input from per-timestep fused representations; the anomaly
/// score at time t is the mean absolute reconstruction error, thresholded
/// at a train-score quantile tau.
class AnomalyDetectionTask : public AnalysisTask {
 public:
  AnomalyDetectionTask() = default;

  std::string name() const override { return "anomaly_detection"; }
  Status Fit(UnitsPipeline* pipeline,
             const data::TimeSeriesDataset& train) override;

  /// Result: scores [N, T]; predictions = reconstructions [N, D, T];
  /// labels = flattened thresholded 0/1 decisions (row-major [N*T]).
  Result<TaskResult> Predict(UnitsPipeline* pipeline,
                             const Tensor& x) override;
  nn::Module* head() override { return decoder_.get(); }
  Result<json::JsonValue> SaveState(UnitsPipeline* pipeline) override;
  Status LoadState(UnitsPipeline* pipeline,
                   const json::JsonValue& state) override;

  float threshold() const { return threshold_; }

  /// Scores without thresholding (helper shared with Predict).
  Tensor ScoreWindows(UnitsPipeline* pipeline, const Tensor& x);

 private:
  /// Single eval program producing {reconstruction [N,D,T], scores [N,T]}
  /// in one forward (shared by Predict and ScoreWindows).
  std::vector<Tensor> RunPredictProgram(UnitsPipeline* pipeline,
                                        const Tensor& x);

  std::shared_ptr<nn::ReconstructionDecoder> decoder_;
  float threshold_ = 0.0f;
};

/// Missing-value imputation (Table 1 row 5): denoising autoencoder — train
/// with random observation masks, reconstruct the full input; at inference
/// missing values are zeroed, passed through, and replaced by the decoder
/// output.
class ImputationTask : public AnalysisTask {
 public:
  ImputationTask() = default;

  std::string name() const override { return "imputation"; }
  Status Fit(UnitsPipeline* pipeline,
             const data::TimeSeriesDataset& train) override;

  /// predictions = full reconstruction [N, D, T] of x (assumed zero-filled
  /// at missing positions).
  Result<TaskResult> Predict(UnitsPipeline* pipeline,
                             const Tensor& x) override;
  nn::Module* head() override { return decoder_.get(); }
  Result<json::JsonValue> SaveState(UnitsPipeline* pipeline) override;
  Status LoadState(UnitsPipeline* pipeline,
                   const json::JsonValue& state) override;

  /// Convenience: fills only the missing entries (mask==0) of `x` from the
  /// model's reconstruction.
  Result<Tensor> Impute(UnitsPipeline* pipeline, const Tensor& x,
                        const Tensor& mask);

 private:
  std::shared_ptr<nn::ReconstructionDecoder> decoder_;
};

}  // namespace units::core

#endif  // UNITS_CORE_TASKS_TASKS_H_
