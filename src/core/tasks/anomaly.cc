#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "base/logging.h"
#include "core/pipeline.h"
#include "core/serialize.h"
#include "core/tasks/tasks.h"
#include "data/dataloader.h"
#include "metrics/metrics.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace units::core {

namespace ag = ::units::autograd;

Status AnomalyDetectionTask::Fit(UnitsPipeline* pipeline,
                                 const data::TimeSeriesDataset& train) {
  const ParamSet& p = pipeline->finetune_params();
  const int64_t epochs = p.GetInt("epochs", 10);
  const int64_t batch_size = p.GetInt("batch_size", 16);
  const float lr = static_cast<float>(p.GetDouble("lr", 1e-3));
  const float enc_lr =
      lr * static_cast<float>(p.GetDouble("encoder_lr_scale", 0.1));
  const float weight_decay =
      static_cast<float>(p.GetDouble("weight_decay", 1e-5));
  const float clip_norm = static_cast<float>(p.GetDouble("clip_norm", 5.0));
  const double quantile = p.GetDouble("anomaly_quantile", 0.995);

  if (decoder_ == nullptr) {
    decoder_ = std::make_shared<nn::ReconstructionDecoder>(
        pipeline->fused_dim_per_timestep(), train.num_channels(),
        pipeline->rng(), p.GetInt("head_hidden", 0));
  }

  pipeline->SetTraining(true);
  decoder_->SetTraining(true);

  std::vector<Variable> head_params = decoder_->Parameters();
  std::vector<Variable> enc_params = pipeline->EncoderAndFusionParams();
  optim::Adam head_opt(head_params, lr, 0.9f, 0.999f, 1e-8f, weight_decay);
  optim::Adam enc_opt(enc_params, enc_lr, 0.9f, 0.999f, 1e-8f, weight_decay);
  std::vector<Variable> all_params = head_params;
  all_params.insert(all_params.end(), enc_params.begin(), enc_params.end());

  data::DataLoader loader(&train, batch_size, /*shuffle=*/true,
                          pipeline->rng(),
                          /*prefetch=*/p.GetInt("prefetch", 1) != 0);
  loss_history_.clear();
  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    loader.Reset();
    data::Batch batch;
    double epoch_loss = 0.0;
    int64_t num_batches = 0;
    while (loader.Next(&batch)) {
      Variable repr = pipeline->EncodeFusedPerTimestep(Variable(batch.values));
      Variable recon = decoder_->Forward(repr);  // [B, D, T]
      Variable loss = ag::MseLoss(recon, Variable(batch.values));
      head_opt.ZeroGrad();
      enc_opt.ZeroGrad();
      loss.Backward();
      optim::ClipGradNorm(all_params, clip_norm);
      head_opt.Step();
      enc_opt.Step();
      epoch_loss += loss.item();
      ++num_batches;
    }
    loss_history_.push_back(
        static_cast<float>(epoch_loss / std::max<int64_t>(1, num_batches)));
    UNITS_LOG(Debug) << "anomaly epoch " << epoch << " loss "
                     << loss_history_.back();
  }
  pipeline->SetTraining(false);

  // Calibrate tau as a high quantile of the training (presumed-normal)
  // scores, per the paper's "score larger than a threshold tau" rule.
  const Tensor train_scores = ScoreWindows(pipeline, train.values());
  std::vector<float> flat(train_scores.data(),
                          train_scores.data() + train_scores.numel());
  std::sort(flat.begin(), flat.end());
  threshold_ = metrics::NearestRankQuantile(flat, quantile);
  return Status::Ok();
}

std::vector<Tensor> AnomalyDetectionTask::RunPredictProgram(
    UnitsPipeline* pipeline, const Tensor& x) {
  UNITS_CHECK(decoder_ != nullptr);
  ag::NoGradGuard no_grad;
  if (decoder_->training()) {
    decoder_->SetTraining(false);
  }
  // One program yields both the reconstruction and the per-timestep score
  // s_t = mean over channels of |x_hat - x| at t, so Predict runs a single
  // (capturable) forward instead of encoding twice.
  return pipeline->RunEvalProgram(
      "anomaly.predict", x, [&](const Variable& xb) {
        Variable repr = pipeline->EncodeFusedPerTimestep(xb);
        Variable recon = decoder_->Forward(repr);  // [B, D, T]
        Variable scores = ag::Mean(ag::Abs(ag::Sub(recon, xb)), /*axis=*/1);
        return std::vector<Variable>{recon, scores};
      });
}

Tensor AnomalyDetectionTask::ScoreWindows(UnitsPipeline* pipeline,
                                          const Tensor& x) {
  return RunPredictProgram(pipeline, x)[1];  // [N, T]
}

Result<TaskResult> AnomalyDetectionTask::Predict(UnitsPipeline* pipeline,
                                                 const Tensor& x) {
  if (decoder_ == nullptr) {
    return Status::FailedPrecondition("Predict before Fit");
  }
  std::vector<Tensor> outs = RunPredictProgram(pipeline, x);
  TaskResult result;
  result.predictions = outs[0];
  result.scores = outs[1];
  result.labels.reserve(static_cast<size_t>(result.scores.numel()));
  for (int64_t i = 0; i < result.scores.numel(); ++i) {
    result.labels.push_back(result.scores[i] > threshold_ ? 1 : 0);
  }
  return result;
}

Result<json::JsonValue> AnomalyDetectionTask::SaveState(
    UnitsPipeline* pipeline) {
  (void)pipeline;
  if (decoder_ == nullptr) {
    return Status::FailedPrecondition("anomaly decoder not fitted");
  }
  json::JsonValue state = json::JsonValue::Object();
  state.Set("threshold", json::JsonValue::Number(threshold_));
  state.Set("out_channels", json::JsonValue::Int(pipeline->input_channels()));
  state.Set("head", ModuleStateToJson(decoder_.get()));
  return state;
}

Status AnomalyDetectionTask::LoadState(UnitsPipeline* pipeline,
                                       const json::JsonValue& state) {
  threshold_ = static_cast<float>(state.at("threshold").AsNumber());
  decoder_ = std::make_shared<nn::ReconstructionDecoder>(
      pipeline->fused_dim_per_timestep(), state.at("out_channels").AsInt(),
      pipeline->rng(), pipeline->finetune_params().GetInt("head_hidden", 0));
  return LoadModuleState(decoder_.get(), state.at("head"));
}

}  // namespace units::core
