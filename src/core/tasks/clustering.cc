#include <cmath>

#include "base/check.h"
#include "base/logging.h"
#include "core/pipeline.h"
#include "core/serialize.h"
#include "core/tasks/tasks.h"
#include "data/dataloader.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace units::core {

namespace ag = ::units::autograd;

namespace {

/// Row-wise L2 normalization scaled by sqrt(K); mirrors the Variable-level
/// normalization used during fine-tuning so centroids and gradients live in
/// the same space.
Tensor NormalizeRows(const Tensor& z) {
  Variable v = ag::MulScalar(
      ag::L2Normalize(Variable(z), /*axis=*/1),
      std::sqrt(static_cast<float>(z.dim(1))));
  return v.data();
}

}  // namespace

Status ClusteringTask::Fit(UnitsPipeline* pipeline,
                           const data::TimeSeriesDataset& train) {
  if (num_clusters_ < 2) {
    return Status::InvalidArgument("need at least 2 clusters");
  }
  if (train.num_samples() < num_clusters_) {
    return Status::InvalidArgument("fewer samples than clusters");
  }

  const ParamSet& p = pipeline->finetune_params();
  const int64_t epochs = p.GetInt("cluster_finetune_epochs", 5);
  const int64_t batch_size = p.GetInt("batch_size", 16);
  const float lr = static_cast<float>(p.GetDouble("lr", 1e-3));
  const float enc_lr =
      lr * static_cast<float>(p.GetDouble("encoder_lr_scale", 0.1));
  const float weight_decay =
      static_cast<float>(p.GetDouble("weight_decay", 1e-5));
  const float clip_norm = static_cast<float>(p.GetDouble("clip_norm", 5.0));
  const float reg_weight =
      static_cast<float>(p.GetDouble("cluster_reg_weight", 0.5));
  normalize_repr_ = p.GetInt("normalize_repr", 1) != 0;

  cluster::KMeansOptions km_opts;
  km_opts.num_clusters = num_clusters_;

  // Fine-tuning with the k-means regularizer: each epoch re-clusters the
  // current representations, then descends on (self-supervised loss +
  // lambda * ||z_i - c_{a(i)}||^2). The SSL term keeps the representations
  // from collapsing onto the centroids (the trivial solution the paper
  // warns about).
  if (epochs > 0 && pipeline->num_templates() > 0) {
    pipeline->SetTraining(true);
    std::vector<Variable> enc_params = pipeline->EncoderAndFusionParams();
    optim::Adam enc_opt(enc_params, enc_lr, 0.9f, 0.999f, 1e-8f,
                        weight_decay);
    PretrainTemplate* ssl = pipeline->template_at(0);
    loss_history_.clear();

    for (int64_t epoch = 0; epoch < epochs; ++epoch) {
      // E-step: cluster the current (no-grad) representations.
      Tensor z_all = pipeline->TransformFused(train.values());
      if (normalize_repr_) {
        z_all = NormalizeRows(z_all);
      }
      UNITS_ASSIGN_OR_RETURN(cluster::KMeansResult km,
                             cluster::KMeans(z_all, km_opts, pipeline->rng()));
      pipeline->SetTraining(true);  // TransformFused switched to eval

      // M-step: minibatch updates against the fixed centroids.
      data::DataLoader loader(&train, batch_size, /*shuffle=*/true,
                              pipeline->rng(),
                              /*prefetch=*/p.GetInt("prefetch", 1) != 0);
      data::Batch batch;
      double epoch_loss = 0.0;
      int64_t num_batches = 0;
      while (loader.Next(&batch)) {
        Variable ssl_loss = ssl->BuildLoss(batch.values, pipeline->rng());
        Variable z = pipeline->EncodeFused(Variable(batch.values));
        if (normalize_repr_) {
          z = ag::MulScalar(ag::L2Normalize(z, /*axis=*/1),
                            std::sqrt(static_cast<float>(z.dim(1))));
        }
        // Centroids of this batch's assignments, as a constant.
        std::vector<int64_t> assign;
        assign.reserve(batch.indices.size());
        for (int64_t idx : batch.indices) {
          assign.push_back(km.assignments[static_cast<size_t>(idx)]);
        }
        Tensor batch_centroids = ops::GatherRows(km.centroids, assign);
        Variable reg = ag::MseLoss(z, ag::Constant(batch_centroids));
        Variable loss = ag::Add(ssl_loss, ag::MulScalar(reg, reg_weight));
        enc_opt.ZeroGrad();
        loss.Backward();
        optim::ClipGradNorm(enc_params, clip_norm);
        enc_opt.Step();
        epoch_loss += loss.item();
        ++num_batches;
      }
      loss_history_.push_back(
          static_cast<float>(epoch_loss / std::max<int64_t>(1, num_batches)));
      UNITS_LOG(Debug) << "clustering epoch " << epoch << " loss "
                       << loss_history_.back();
    }
    pipeline->SetTraining(false);
  }

  // Final clustering of the fine-tuned representations.
  Tensor z_final = pipeline->TransformFused(train.values());
  if (normalize_repr_) {
    z_final = NormalizeRows(z_final);
  }
  UNITS_ASSIGN_OR_RETURN(cluster::KMeansResult km,
                         cluster::KMeans(z_final, km_opts, pipeline->rng()));
  centroids_ = km.centroids;
  return Status::Ok();
}

Result<TaskResult> ClusteringTask::Predict(UnitsPipeline* pipeline,
                                           const Tensor& x) {
  if (centroids_.numel() == 0) {
    return Status::FailedPrecondition("Predict before Fit");
  }
  ag::NoGradGuard no_grad;
  std::vector<Tensor> outs = pipeline->RunEvalProgram(
      "clustering.predict", x, [&](const Variable& xb) {
        Variable z = pipeline->EncodeFused(xb);
        if (normalize_repr_) {
          z = ag::MulScalar(ag::L2Normalize(z, /*axis=*/1),
                            std::sqrt(static_cast<float>(z.dim(1))));
        }
        return std::vector<Variable>{z};
      });
  const Tensor& z = outs[0];
  TaskResult result;
  result.labels = cluster::AssignToCentroids(z, centroids_);
  result.predictions = z;  // expose representations for inspection
  return result;
}

Result<json::JsonValue> ClusteringTask::SaveState(UnitsPipeline* pipeline) {
  (void)pipeline;
  if (centroids_.numel() == 0) {
    return Status::FailedPrecondition("clustering not fitted");
  }
  json::JsonValue state = json::JsonValue::Object();
  state.Set("num_clusters", json::JsonValue::Int(num_clusters_));
  state.Set("centroids", TensorToJson(centroids_));
  return state;
}

Status ClusteringTask::LoadState(UnitsPipeline* pipeline,
                                 const json::JsonValue& state) {
  (void)pipeline;
  num_clusters_ = state.at("num_clusters").AsInt();
  UNITS_ASSIGN_OR_RETURN(centroids_, TensorFromJson(state.at("centroids")));
  return Status::Ok();
}

}  // namespace units::core
