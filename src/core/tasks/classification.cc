#include <cmath>

#include "base/check.h"
#include "base/logging.h"
#include "core/pipeline.h"
#include "core/serialize.h"
#include "core/tasks/tasks.h"
#include "data/dataloader.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace units::core {

namespace ag = ::units::autograd;

Status ClassificationTask::Fit(UnitsPipeline* pipeline,
                               const data::TimeSeriesDataset& train) {
  if (!train.has_labels()) {
    return Status::InvalidArgument("classification requires labels");
  }
  if (num_classes_ <= 0) {
    num_classes_ = train.NumClasses();
  }
  if (num_classes_ < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }

  const ParamSet& p = pipeline->finetune_params();
  const int64_t epochs = p.GetInt("epochs", 10);
  const int64_t batch_size = p.GetInt("batch_size", 16);
  const float lr = static_cast<float>(p.GetDouble("lr", 1e-3));
  const float enc_lr =
      lr * static_cast<float>(p.GetDouble("encoder_lr_scale", 0.1));
  const float weight_decay =
      static_cast<float>(p.GetDouble("weight_decay", 1e-5));
  const float clip_norm = static_cast<float>(p.GetDouble("clip_norm", 5.0));
  const int64_t head_hidden = p.GetInt("head_hidden", 0);
  const float dropout = static_cast<float>(p.GetDouble("dropout", 0.0));
  normalize_repr_ = p.GetInt("normalize_repr", 1) != 0;

  if (head_ == nullptr) {
    std::vector<int64_t> hidden;
    if (head_hidden > 0) {
      hidden.push_back(head_hidden);
    }
    head_ = std::make_shared<nn::MlpHead>(pipeline->fused_dim(), hidden,
                                          num_classes_, pipeline->rng(),
                                          nn::ActivationKind::kRelu, dropout);
  }

  pipeline->SetTraining(true);
  head_->SetTraining(true);

  std::vector<Variable> head_params = head_->Parameters();
  std::vector<Variable> enc_params = pipeline->EncoderAndFusionParams();
  optim::Adam head_opt(head_params, lr, 0.9f, 0.999f, 1e-8f, weight_decay);
  optim::Adam enc_opt(enc_params, enc_lr, 0.9f, 0.999f, 1e-8f, weight_decay);
  std::vector<Variable> all_params = head_params;
  all_params.insert(all_params.end(), enc_params.begin(), enc_params.end());

  data::DataLoader loader(&train, batch_size, /*shuffle=*/true,
                          pipeline->rng(),
                          /*prefetch=*/p.GetInt("prefetch", 1) != 0);
  loss_history_.clear();
  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    loader.Reset();
    data::Batch batch;
    double epoch_loss = 0.0;
    int64_t num_batches = 0;
    while (loader.Next(&batch)) {
      Variable z = pipeline->EncodeFused(Variable(batch.values));
      if (normalize_repr_) {
        // Unit-sphere features: keeps the linear probe well conditioned
        // regardless of encoder output scale.
        z = ag::MulScalar(ag::L2Normalize(z, /*axis=*/1),
                          std::sqrt(static_cast<float>(z.dim(1))));
      }
      Variable logits = head_->Forward(z);
      Variable loss = ag::CrossEntropyLoss(logits, batch.labels);
      head_opt.ZeroGrad();
      enc_opt.ZeroGrad();
      loss.Backward();
      optim::ClipGradNorm(all_params, clip_norm);
      head_opt.Step();
      enc_opt.Step();
      epoch_loss += loss.item();
      ++num_batches;
    }
    loss_history_.push_back(
        static_cast<float>(epoch_loss / std::max<int64_t>(1, num_batches)));
    UNITS_LOG(Debug) << "classification epoch " << epoch << " loss "
                     << loss_history_.back();
  }
  pipeline->SetTraining(false);
  return Status::Ok();
}

Result<TaskResult> ClassificationTask::Predict(UnitsPipeline* pipeline,
                                               const Tensor& x) {
  if (head_ == nullptr) {
    return Status::FailedPrecondition("Predict before Fit");
  }
  ag::NoGradGuard no_grad;
  if (head_->training()) {
    head_->SetTraining(false);
  }
  // One captured-plannable eval program: encode -> (normalize) -> head ->
  // {logits, probs}. RunEvalProgram chunks the batch and serves each chunk
  // from a captured plan once the pipeline is in its serving steady state.
  std::vector<Tensor> outs = pipeline->RunEvalProgram(
      "classification.predict", x, [&](const Variable& xb) {
        Variable z = pipeline->EncodeFused(xb);
        if (normalize_repr_) {
          // Unit-sphere features, matching Fit's conditioning trick.
          z = ag::MulScalar(ag::L2Normalize(z, /*axis=*/1),
                            std::sqrt(static_cast<float>(z.dim(1))));
        }
        Variable logits = head_->Forward(z);
        Variable probs = ag::Softmax(logits, /*axis=*/1);
        return std::vector<Variable>{logits, probs};
      });
  // Raw argmax scan (first max wins, matching ops::ArgMax) keeps the
  // steady-state Predict free of tensor allocations.
  const Tensor& logits = outs[0];
  const int64_t rows = logits.dim(0);
  const int64_t cols = logits.dim(1);
  const float* pl = logits.data();
  TaskResult result;
  result.labels.reserve(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = pl + i * cols;
    int64_t best = 0;
    for (int64_t c = 1; c < cols; ++c) {
      if (row[c] > row[best]) {
        best = c;
      }
    }
    result.labels.push_back(best);
  }
  result.predictions = outs[1];  // class distribution per sample
  return result;
}

Result<json::JsonValue> ClassificationTask::SaveState(
    UnitsPipeline* pipeline) {
  (void)pipeline;
  if (head_ == nullptr) {
    return Status::FailedPrecondition("classification head not fitted");
  }
  json::JsonValue state = json::JsonValue::Object();
  state.Set("num_classes", json::JsonValue::Int(num_classes_));
  state.Set("head", ModuleStateToJson(head_.get()));
  return state;
}

Status ClassificationTask::LoadState(UnitsPipeline* pipeline,
                                     const json::JsonValue& state) {
  num_classes_ = state.at("num_classes").AsInt();
  const ParamSet& p = pipeline->finetune_params();
  std::vector<int64_t> hidden;
  if (p.GetInt("head_hidden", 0) > 0) {
    hidden.push_back(p.GetInt("head_hidden", 0));
  }
  head_ = std::make_shared<nn::MlpHead>(
      pipeline->fused_dim(), hidden, num_classes_, pipeline->rng(),
      nn::ActivationKind::kRelu,
      static_cast<float>(p.GetDouble("dropout", 0.0)));
  return LoadModuleState(head_.get(), state.at("head"));
}

}  // namespace units::core
