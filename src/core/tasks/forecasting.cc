#include <algorithm>

#include "base/check.h"
#include "base/logging.h"
#include "core/pipeline.h"
#include "core/serialize.h"
#include "core/tasks/tasks.h"
#include "data/dataloader.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace units::core {

namespace ag = ::units::autograd;

Status ForecastingTask::Fit(UnitsPipeline* pipeline,
                            const data::TimeSeriesDataset& train) {
  if (!train.has_targets()) {
    return Status::InvalidArgument("forecasting requires target windows");
  }
  out_channels_ = train.targets().dim(1);
  horizon_ = train.targets().dim(2);

  const ParamSet& p = pipeline->finetune_params();
  const int64_t epochs = p.GetInt("epochs", 10);
  const int64_t batch_size = p.GetInt("batch_size", 16);
  const float lr = static_cast<float>(p.GetDouble("lr", 1e-3));
  const float enc_lr =
      lr * static_cast<float>(p.GetDouble("encoder_lr_scale", 0.1));
  const float weight_decay =
      static_cast<float>(p.GetDouble("weight_decay", 1e-5));
  const float clip_norm = static_cast<float>(p.GetDouble("clip_norm", 5.0));
  const bool use_mae = p.GetString("forecast_loss", "mse") == "mae";
  use_last_step_ = p.GetString("forecast_repr", "last") == "last";

  if (decoder_ == nullptr) {
    const int64_t in_dim = use_last_step_
                               ? pipeline->fused_dim_per_timestep()
                               : pipeline->fused_dim();
    decoder_ = std::make_shared<nn::ForecastDecoder>(
        in_dim, out_channels_, horizon_, pipeline->rng(),
        p.GetInt("head_hidden", 0));
  }

  pipeline->SetTraining(true);
  decoder_->SetTraining(true);

  std::vector<Variable> head_params = decoder_->Parameters();
  std::vector<Variable> enc_params = pipeline->EncoderAndFusionParams();
  optim::Adam head_opt(head_params, lr, 0.9f, 0.999f, 1e-8f, weight_decay);
  optim::Adam enc_opt(enc_params, enc_lr, 0.9f, 0.999f, 1e-8f, weight_decay);
  std::vector<Variable> all_params = head_params;
  all_params.insert(all_params.end(), enc_params.begin(), enc_params.end());

  data::DataLoader loader(&train, batch_size, /*shuffle=*/true,
                          pipeline->rng(),
                          /*prefetch=*/p.GetInt("prefetch", 1) != 0);
  loss_history_.clear();
  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    loader.Reset();
    data::Batch batch;
    double epoch_loss = 0.0;
    int64_t num_batches = 0;
    while (loader.Next(&batch)) {
      Variable z = EncodeForForecast(pipeline, Variable(batch.values));
      Variable pred = decoder_->Forward(z);  // [B, D, H]
      Variable target(batch.targets);
      Variable loss = use_mae ? ag::L1Loss(pred, target)
                              : ag::MseLoss(pred, target);
      head_opt.ZeroGrad();
      enc_opt.ZeroGrad();
      loss.Backward();
      optim::ClipGradNorm(all_params, clip_norm);
      head_opt.Step();
      enc_opt.Step();
      epoch_loss += loss.item();
      ++num_batches;
    }
    loss_history_.push_back(
        static_cast<float>(epoch_loss / std::max<int64_t>(1, num_batches)));
    UNITS_LOG(Debug) << "forecasting epoch " << epoch << " loss "
                     << loss_history_.back();
  }
  pipeline->SetTraining(false);
  return Status::Ok();
}

Result<TaskResult> ForecastingTask::Predict(UnitsPipeline* pipeline,
                                            const Tensor& x) {
  if (decoder_ == nullptr) {
    return Status::FailedPrecondition("Predict before Fit");
  }
  ag::NoGradGuard no_grad;
  if (decoder_->training()) {
    decoder_->SetTraining(false);
    pipeline->SetTraining(false);
  }
  std::vector<Tensor> outs = pipeline->RunEvalProgram(
      "forecasting.predict", x, [&](const Variable& xb) {
        Variable z = EncodeForForecast(pipeline, xb);
        return std::vector<Variable>{decoder_->Forward(z)};
      });
  TaskResult result;
  result.predictions = outs[0];
  return result;
}

Variable ForecastingTask::EncodeForForecast(UnitsPipeline* pipeline,
                                            const Variable& x) {
  if (!use_last_step_) {
    return pipeline->EncodeFused(x);
  }
  // The representation at the final timestep summarizes the most recent
  // context (exact for causal encoders) — the natural forecasting state.
  Variable repr = pipeline->EncodeFusedPerTimestep(x);  // [B, K', T]
  Variable last = ag::Slice(repr, 2, repr.dim(2) - 1, 1);
  return ag::Reshape(last, {repr.dim(0), repr.dim(1)});
}

Result<Tensor> ForecastingTask::Rollout(UnitsPipeline* pipeline,
                                        const Tensor& x,
                                        int64_t total_horizon) {
  if (decoder_ == nullptr) {
    return Status::FailedPrecondition("Rollout before Fit");
  }
  if (x.ndim() != 3) {
    return Status::InvalidArgument("Rollout expects [N, D, T]");
  }
  if (total_horizon < 1) {
    return Status::InvalidArgument("total_horizon must be positive");
  }
  ag::NoGradGuard no_grad;
  Tensor window = x;  // current conditioning window, always length T
  std::vector<Tensor> chunks;
  int64_t produced = 0;
  while (produced < total_horizon) {
    UNITS_ASSIGN_OR_RETURN(TaskResult step, Predict(pipeline, window));
    const int64_t take =
        std::min<int64_t>(horizon_, total_horizon - produced);
    chunks.push_back(ops::Slice(step.predictions, 2, 0, take));
    // Slide the window: drop the oldest `take` steps, append predictions.
    Tensor kept = ops::Slice(window, 2, take, window.dim(2) - take);
    window = ops::Concat({kept, chunks.back()}, 2);
    produced += take;
  }
  return chunks.size() == 1 ? chunks[0] : ops::Concat(chunks, 2);
}

Result<json::JsonValue> ForecastingTask::SaveState(UnitsPipeline* pipeline) {
  (void)pipeline;
  if (decoder_ == nullptr) {
    return Status::FailedPrecondition("forecasting head not fitted");
  }
  json::JsonValue state = json::JsonValue::Object();
  state.Set("out_channels", json::JsonValue::Int(out_channels_));
  state.Set("horizon", json::JsonValue::Int(horizon_));
  state.Set("use_last_step", json::JsonValue::Bool(use_last_step_));
  state.Set("head", ModuleStateToJson(decoder_.get()));
  return state;
}

Status ForecastingTask::LoadState(UnitsPipeline* pipeline,
                                  const json::JsonValue& state) {
  out_channels_ = state.at("out_channels").AsInt();
  horizon_ = state.at("horizon").AsInt();
  use_last_step_ =
      state.Contains("use_last_step") && state.at("use_last_step").AsBool();
  const int64_t in_dim = use_last_step_
                             ? pipeline->fused_dim_per_timestep()
                             : pipeline->fused_dim();
  decoder_ = std::make_shared<nn::ForecastDecoder>(
      in_dim, out_channels_, horizon_, pipeline->rng(),
      pipeline->finetune_params().GetInt("head_hidden", 0));
  return LoadModuleState(decoder_.get(), state.at("head"));
}

}  // namespace units::core
