#ifndef UNITS_CORE_ESTIMATOR_H_
#define UNITS_CORE_ESTIMATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "base/rng.h"
#include "base/status.h"
#include "data/dataset.h"
#include "hpo/param_space.h"
#include "json/json.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace units::core {

using autograd::Variable;
using hpo::ParamSet;

/// Hyper-parameter configuration modes (Section 2.2 of the paper).
enum class ConfigMode {
  kDefault,  // run with the library's pre-defined hyper-parameters
  kManual,   // caller-supplied ParamSet overrides the defaults
  kSmart,    // Bayesian optimization over a small fine-tuning space
};

// ---------------------------------------------------------------------------
// Pre-training template (Section 3.1)
// ---------------------------------------------------------------------------

/// A self-supervised pre-training method. Mirrors the paper's sklearn-like
/// contract: `Fit` consumes unlabeled X only; `Transform` maps X to
/// representations Z. The differentiable Encode* methods expose the encoder
/// to downstream fine-tuning, and BuildLoss exposes the self-supervised
/// objective for hybrid fine-tuning (e.g. the clustering regularizer).
class PretrainTemplate {
 public:
  virtual ~PretrainTemplate() = default;

  /// Registry name, e.g. "whole_series_contrastive".
  virtual std::string name() const = 0;

  /// Pre-trains the encoder on unlabeled data X [N, D, T].
  virtual Status Fit(const Tensor& x) = 0;

  /// Pooled representations Z [N, K] (no gradient tracking).
  virtual Tensor Transform(const Tensor& x) = 0;

  /// Per-timestep representations [N, K, T] (no gradient tracking).
  virtual Tensor TransformPerTimestep(const Tensor& x) = 0;

  /// Differentiable pooled encoding of a batch [B, D, T] -> [B, K].
  virtual Variable Encode(const Variable& x) = 0;

  /// Differentiable per-timestep encoding [B, D, T] -> [B, K, T].
  virtual Variable EncodePerTimestep(const Variable& x) = 0;

  /// The self-supervised loss on a raw batch (used during pre-training and
  /// reused as a regularizer by some fine-tuning procedures).
  virtual Variable BuildLoss(const Tensor& batch_values, Rng* rng) = 0;

  /// Representation width K.
  virtual int64_t repr_dim() const = 0;

  /// The underlying encoder module (parameters, train/eval mode).
  virtual nn::Module* encoder() = 0;

  /// Builds the encoder (and any auxiliary modules) without training, so
  /// saved weights can be loaded into a freshly constructed template.
  virtual Status Initialize() = 0;

  /// Mean pre-training loss per epoch (for the GUI-style loss curves).
  virtual const std::vector<float>& loss_history() const = 0;
};

// ---------------------------------------------------------------------------
// Feature fusion (Section 3.2)
// ---------------------------------------------------------------------------

/// Fuses the representations of M pre-training instances into one vector
/// per sample. Learnable fusions expose their parameters for fine-tuning.
class FeatureFusion {
 public:
  virtual ~FeatureFusion() = default;

  virtual std::string name() const = 0;

  /// Prepares the fusion for inputs of the given widths; returns the fused
  /// width K'. Must be called before Transform.
  virtual int64_t Initialize(const std::vector<int64_t>& in_dims,
                             Rng* rng) = 0;

  /// Fuses pooled representations: M tensors [B, K_m] -> [B, K'].
  virtual Variable Transform(const std::vector<Variable>& zs) = 0;

  /// Fuses per-timestep representations: M tensors [B, K_m, T] ->
  /// [B, K'_pt, T]. Default: concatenation along the channel axis.
  virtual Variable TransformPerTimestep(const std::vector<Variable>& zs);

  /// Fused width for pooled / per-timestep outputs.
  virtual int64_t fused_dim() const = 0;
  virtual int64_t fused_dim_per_timestep() const;

  /// Learnable parameters (empty for non-learnable fusions).
  virtual std::vector<Variable> Parameters() { return {}; }

  /// Underlying module for serialization (null for non-learnable fusions).
  virtual nn::Module* module() { return nullptr; }

 protected:
  std::vector<int64_t> in_dims_;
};

// ---------------------------------------------------------------------------
// Analysis task (Section 3.3)
// ---------------------------------------------------------------------------

/// What a task produces at inference time; tasks fill the fields that apply
/// to them (labels for classification/clustering, predictions for
/// forecasting/imputation, scores for anomaly detection).
struct TaskResult {
  std::vector<int64_t> labels;
  Tensor predictions;
  Tensor scores;
};

class UnitsPipeline;

/// A downstream analysis task: `Fit` fine-tunes on (possibly small) labeled
/// data through the pipeline's fused representations; `Predict` produces
/// final outputs. Tasks never touch raw encoders directly — everything
/// flows through the pipeline so new tasks compose with any template mix.
class AnalysisTask {
 public:
  virtual ~AnalysisTask() = default;

  virtual std::string name() const = 0;

  virtual Status Fit(UnitsPipeline* pipeline,
                     const data::TimeSeriesDataset& train) = 0;

  virtual Result<TaskResult> Predict(UnitsPipeline* pipeline,
                                     const Tensor& x) = 0;

  /// Task head module for serialization (may be null before Fit).
  virtual nn::Module* head() { return nullptr; }

  /// Serializes the task's fitted state (head architecture + weights and
  /// any calibration such as thresholds or centroids) for SaveJson.
  virtual Result<json::JsonValue> SaveState(UnitsPipeline* pipeline);

  /// Restores state saved by SaveState into a fresh task instance.
  virtual Status LoadState(UnitsPipeline* pipeline,
                           const json::JsonValue& state);

  /// Mean fine-tuning loss per epoch.
  const std::vector<float>& loss_history() const { return loss_history_; }

 protected:
  std::vector<float> loss_history_;
};

// ---------------------------------------------------------------------------
// Default hyper-parameters (the paper's Default mode)
// ---------------------------------------------------------------------------

/// Library-wide defaults for pre-training templates.
ParamSet DefaultPretrainParams();

/// Library-wide defaults for fine-tuning.
ParamSet DefaultFineTuneParams();

/// Resolves the effective ParamSet for a configuration mode: Default
/// ignores `manual`; Manual overlays it on the defaults. (Smart-mode search
/// is orchestrated by hpo::BayesianOptimizer around the pipeline.)
ParamSet ResolveParams(ConfigMode mode, const ParamSet& defaults,
                       const ParamSet& manual);

}  // namespace units::core

#endif  // UNITS_CORE_ESTIMATOR_H_
