#include "tensor/fft.h"

#include <cmath>

#include "base/check.h"

namespace units::fft {

int64_t NextPowerOfTwo(int64_t n) {
  int64_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

void Fft(std::vector<std::complex<float>>* data, bool inverse) {
  auto& a = *data;
  const size_t n = a.size();
  UNITS_CHECK_GT(n, 0u);
  UNITS_CHECK_MSG((n & (n - 1)) == 0, "FFT length must be a power of two");

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(a[i], a[j]);
    }
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * M_PI / static_cast<double>(len) *
                         (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u(a[i + k]);
        const std::complex<double> v =
            std::complex<double>(a[i + k + len / 2]) * w;
        a[i + k] = std::complex<float>(u + v);
        a[i + k + len / 2] = std::complex<float>(u - v);
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const float scale = 1.0f / static_cast<float>(n);
    for (auto& x : a) {
      x *= scale;
    }
  }
}

std::vector<std::complex<float>> RealFft(const std::vector<float>& signal) {
  const int64_t padded = NextPowerOfTwo(static_cast<int64_t>(signal.size()));
  std::vector<std::complex<float>> data(static_cast<size_t>(padded),
                                        {0.0f, 0.0f});
  for (size_t i = 0; i < signal.size(); ++i) {
    data[i] = {signal[i], 0.0f};
  }
  Fft(&data, /*inverse=*/false);
  return data;
}

std::vector<float> InverseRealFft(std::vector<std::complex<float>> spectrum,
                                  int64_t original_length) {
  Fft(&spectrum, /*inverse=*/true);
  UNITS_CHECK_LE(original_length, static_cast<int64_t>(spectrum.size()));
  std::vector<float> out(static_cast<size_t>(original_length));
  for (int64_t i = 0; i < original_length; ++i) {
    out[static_cast<size_t>(i)] = spectrum[static_cast<size_t>(i)].real();
  }
  return out;
}

std::vector<float> MagnitudeSpectrum(const std::vector<float>& signal) {
  const auto spectrum = RealFft(signal);
  const size_t bins = spectrum.size() / 2 + 1;
  std::vector<float> mags(bins);
  for (size_t i = 0; i < bins; ++i) {
    mags[i] = std::abs(spectrum[i]);
  }
  return mags;
}

}  // namespace units::fft
