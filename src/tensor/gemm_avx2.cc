// AVX2+FMA micro-kernel for the blocked GEMM. This translation unit is the
// only one built with -mavx2 -mfma (see src/CMakeLists.txt); gemm.cc picks
// it at runtime via Avx2Supported(), so the rest of the library stays at
// the baseline ISA and the binary still runs on pre-AVX2 machines.

#include "tensor/gemm.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace units::gemm::detail {

static_assert(kMR == 6 && kNR == 16,
              "the AVX2 kernel is specialized for a 6x16 register block");

bool Avx2KernelCompiled() { return true; }

bool Avx2Supported() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

void MicroKernelAvx2(int64_t kc, const float* a, const float* b, float* c,
                     int64_t ldc, bool accumulate) {
  // 6 rows x 16 cols = 12 ymm accumulators; b occupies 2 more, the a
  // broadcast 1. Panels are packed (a: kMR-groups, b: kNR-groups) so both
  // stream linearly.
  __m256 c0a = _mm256_setzero_ps(), c0b = _mm256_setzero_ps();
  __m256 c1a = _mm256_setzero_ps(), c1b = _mm256_setzero_ps();
  __m256 c2a = _mm256_setzero_ps(), c2b = _mm256_setzero_ps();
  __m256 c3a = _mm256_setzero_ps(), c3b = _mm256_setzero_ps();
  __m256 c4a = _mm256_setzero_ps(), c4b = _mm256_setzero_ps();
  __m256 c5a = _mm256_setzero_ps(), c5b = _mm256_setzero_ps();
  for (int64_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(b + p * kNR);
    const __m256 b1 = _mm256_loadu_ps(b + p * kNR + 8);
    const float* ap = a + p * kMR;
    __m256 av;
    av = _mm256_broadcast_ss(ap + 0);
    c0a = _mm256_fmadd_ps(av, b0, c0a);
    c0b = _mm256_fmadd_ps(av, b1, c0b);
    av = _mm256_broadcast_ss(ap + 1);
    c1a = _mm256_fmadd_ps(av, b0, c1a);
    c1b = _mm256_fmadd_ps(av, b1, c1b);
    av = _mm256_broadcast_ss(ap + 2);
    c2a = _mm256_fmadd_ps(av, b0, c2a);
    c2b = _mm256_fmadd_ps(av, b1, c2b);
    av = _mm256_broadcast_ss(ap + 3);
    c3a = _mm256_fmadd_ps(av, b0, c3a);
    c3b = _mm256_fmadd_ps(av, b1, c3b);
    av = _mm256_broadcast_ss(ap + 4);
    c4a = _mm256_fmadd_ps(av, b0, c4a);
    c4b = _mm256_fmadd_ps(av, b1, c4b);
    av = _mm256_broadcast_ss(ap + 5);
    c5a = _mm256_fmadd_ps(av, b0, c5a);
    c5b = _mm256_fmadd_ps(av, b1, c5b);
  }
  const auto store_row = [ldc, accumulate](float* crow, __m256 lo, __m256 hi) {
    if (accumulate) {
      lo = _mm256_add_ps(_mm256_loadu_ps(crow), lo);
      hi = _mm256_add_ps(_mm256_loadu_ps(crow + 8), hi);
    }
    _mm256_storeu_ps(crow, lo);
    _mm256_storeu_ps(crow + 8, hi);
    (void)ldc;
  };
  store_row(c + 0 * ldc, c0a, c0b);
  store_row(c + 1 * ldc, c1a, c1b);
  store_row(c + 2 * ldc, c2a, c2b);
  store_row(c + 3 * ldc, c3a, c3b);
  store_row(c + 4 * ldc, c4a, c4b);
  store_row(c + 5 * ldc, c5a, c5b);
}

}  // namespace units::gemm::detail

#else  // !(__AVX2__ && __FMA__)

namespace units::gemm::detail {

bool Avx2KernelCompiled() { return false; }
bool Avx2Supported() { return false; }
void MicroKernelAvx2(int64_t, const float*, const float*, float*, int64_t,
                     bool) {}

}  // namespace units::gemm::detail

#endif
