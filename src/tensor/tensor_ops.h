#ifndef UNITS_TENSOR_TENSOR_OPS_H_
#define UNITS_TENSOR_TENSOR_OPS_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace units::ops {

// ---------------------------------------------------------------------------
// Broadcasting
// ---------------------------------------------------------------------------

/// NumPy-style broadcast of two shapes (aligned from the right; each pair of
/// dims must be equal or one of them 1). Aborts on incompatible shapes.
Shape BroadcastShapes(const Shape& a, const Shape& b);

/// Sums `t` down to `target` shape (inverse of broadcasting); used to reduce
/// gradients of broadcast operands. `target` must be broadcastable to
/// t.shape().
Tensor ReduceToShape(const Tensor& t, const Shape& target);

// ---------------------------------------------------------------------------
// Elementwise binary (broadcasting) and scalar ops
// ---------------------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

/// Generic elementwise binary op with broadcasting.
Tensor BinaryOp(const Tensor& a, const Tensor& b,
                const std::function<float(float, float)>& fn);

/// Generic elementwise unary op.
Tensor UnaryOp(const Tensor& a, const std::function<float(float)>& fn);

// ---------------------------------------------------------------------------
// Into-variants
//
// Each *Into writes its result into a caller-provided tensor of exactly the
// shape the allocating wrapper would have produced (checked). The wrapper is
// `allocate + delegate`, so both paths run the identical kernel body — the
// plan executor (src/plan/) uses the Into forms to run a captured graph out
// of a preallocated arena with bitwise-identical results and zero
// steady-state allocations.
// ---------------------------------------------------------------------------

void BinaryOpInto(const Tensor& a, const Tensor& b,
                  const std::function<float(float, float)>& fn, Tensor* out);
void UnaryOpInto(const Tensor& a, const std::function<float(float)>& fn,
                 Tensor* out);
void MatMulInto(const Tensor& a, const Tensor& b, Tensor* out);
void BatchedMatMulInto(const Tensor& a, const Tensor& b, Tensor* out);
void TransposeInto(const Tensor& a, int axis0, int axis1, Tensor* out);
void SumInto(const Tensor& a, int axis, bool keepdim, Tensor* out);
void MaxInto(const Tensor& a, int axis, bool keepdim, Tensor* out);
void SoftmaxInto(const Tensor& a, int axis, Tensor* out);
void LogSoftmaxInto(const Tensor& a, int axis, Tensor* out);
void ConcatInto(const std::vector<Tensor>& parts, int axis, Tensor* out);
void SliceInto(const Tensor& a, int axis, int64_t start, int64_t length,
               Tensor* out);
void Im2Col1DInto(const Tensor& input, int64_t kernel, int64_t dilation,
                  int64_t pad_left, int64_t pad_right, Tensor* cols);

/// Streaming attention into a caller buffer. `kt_ws` is a [B, hd, T]
/// workspace for the transposed K panel (an arena slot in planned
/// execution); `out` is [B, T, hd].
void AttentionForwardStreamingInto(const Tensor& q, const Tensor& k,
                                   const Tensor& v, float scale,
                                   const Tensor& dropout_mask, Tensor* kt_ws,
                                   Tensor* out);

// ---------------------------------------------------------------------------
// Elementwise unary ops
// ---------------------------------------------------------------------------

Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
/// Gaussian error linear unit (tanh approximation).
Tensor Gelu(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Clamp(const Tensor& a, float lo, float hi);

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

/// [M,K] x [K,N] -> [M,N]. Runs the cache-blocked SIMD GEMM
/// (tensor/gemm.h); set UNITS_GEMM=naive to fall back to the reference loop.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// [B,M,K] x [B,K,N] -> [B,M,N]. Same kernel selection as MatMul.
Tensor BatchedMatMul(const Tensor& a, const Tensor& b);

/// Reference i-k-j products, always naive regardless of UNITS_GEMM. The
/// oracle that tests/test_gemm.cc verifies the blocked kernel against.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b);
Tensor NaiveBatchedMatMul(const Tensor& a, const Tensor& b);

/// Swaps two axes (materializes the result).
Tensor Transpose(const Tensor& a, int axis0, int axis1);

/// [M,N] -> [N,M] convenience.
Tensor Transpose2D(const Tensor& a);

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Sum of all elements.
float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
float MaxAll(const Tensor& a);
float MinAll(const Tensor& a);

/// Reduction along one axis. keepdim keeps a size-1 dim in place.
Tensor Sum(const Tensor& a, int axis, bool keepdim = false);
Tensor Mean(const Tensor& a, int axis, bool keepdim = false);
Tensor Max(const Tensor& a, int axis, bool keepdim = false);

/// Index of the max along `axis` (values are integral floats).
Tensor ArgMax(const Tensor& a, int axis);

/// Max along `axis` together with flat argmax offsets (for pooling
/// backward). Returns {values, argmax_flat_offsets_as_int64}.
std::pair<Tensor, std::vector<int64_t>> MaxWithArg(const Tensor& a, int axis);

/// Numerically stable softmax / log-softmax along `axis`. Both delegate to
/// the fused row-wise kernels below.
Tensor Softmax(const Tensor& a, int axis);
Tensor LogSoftmax(const Tensor& a, int axis);

/// Fused numerically stable softmax along `axis`: one parallel sweep per
/// row (max, exp-accumulate, normalize in place) instead of the composed
/// Max/Sub/Exp/Sum/Div five-pass chain — no intermediate tensors.
Tensor SoftmaxFused(const Tensor& a, int axis);

/// Fused log-softmax along `axis` (same single-sweep structure).
Tensor LogSoftmaxFused(const Tensor& a, int axis);

/// Row-wise softmax backward, dx = p ⊙ (g − Σ g⊙p) along `axis`, computed
/// per row without materializing the Jacobian or any intermediate tensor.
/// `p` is the saved softmax output.
Tensor SoftmaxBackward(const Tensor& p, const Tensor& g, int axis);

/// Row-wise log-softmax backward, dx = g − exp(out) ⊙ Σ g along `axis`.
/// `out` is the saved log-softmax output.
Tensor LogSoftmaxBackward(const Tensor& out, const Tensor& g, int axis);

// ---------------------------------------------------------------------------
// Fused scaled-dot-product attention (per-head batches [B, T, hd])
// ---------------------------------------------------------------------------

/// Row-block size of the streaming attention kernels. Fixed (never derived
/// from the thread count) so tile boundaries — and therefore outputs — are
/// bitwise identical at any pool size, like the GEMM macro-tiles.
inline constexpr int64_t kAttnRowBlock = 32;

/// Streaming eval-mode attention: out[b] = (softmax(scale·q[b]·k[b]ᵀ) ⊙
/// dropout_mask[b]) · v[b] for q,k,v of shape [B, T, hd]. Scores for one
/// (batch, row-block) tile are computed into a [kAttnRowBlock, T] scratch
/// by the blocked GEMM micro-kernel, softmaxed in place and immediately
/// contracted against V (another per-tile GEMM), so no [B, T, T] tensor is
/// ever allocated — only a [B, hd, T] transposed copy of K, the same
/// footprint as the output. `dropout_mask` (inverted-dropout scaling baked
/// in) may be empty for no dropout.
Tensor AttentionForwardStreaming(const Tensor& q, const Tensor& k,
                                 const Tensor& v, float scale,
                                 const Tensor& dropout_mask);

/// Training-mode attention forward: like AttentionForwardStreaming but
/// additionally materializes the pre-dropout probability tensor [B, T, T]
/// into `*probs` (required for the backward pass) — the single big buffer
/// the fused path keeps, versus three on the composed path.
Tensor AttentionForwardTrain(const Tensor& q, const Tensor& k,
                             const Tensor& v, float scale,
                             const Tensor& dropout_mask, Tensor* probs);

/// Gradients of AttentionForwardTrain. `probs` is the saved pre-dropout
/// probability tensor; `g` is d(loss)/d(out) of shape [B, T, hd]. Runs a
/// per-batch GEMM chain (dP = g·Vᵀ, closed-form softmax backward, dQ/dK/dV
/// GEMMs) over [T, T] vector scratch — no [B, T, T] tensor allocations —
/// parallel over batches only, so the accumulation order within a batch is
/// fixed and thread-count independent.
struct AttentionGrads {
  Tensor dq;
  Tensor dk;
  Tensor dv;
};
AttentionGrads AttentionBackward(const Tensor& q, const Tensor& k,
                                 const Tensor& v, float scale,
                                 const Tensor& probs,
                                 const Tensor& dropout_mask, const Tensor& g);

// ---------------------------------------------------------------------------
// Shape manipulation
// ---------------------------------------------------------------------------

/// Concatenates along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, int axis);

/// Contiguous slice [start, start+length) along `axis`.
Tensor Slice(const Tensor& a, int axis, int64_t start, int64_t length);

/// Selects rows (axis 0) by index; indices may repeat.
Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices);

/// Scatter-add of rows into a tensor of `num_rows` rows (inverse of
/// GatherRows for gradients).
Tensor ScatterAddRows(const Tensor& grad, const std::vector<int64_t>& indices,
                      int64_t num_rows);

/// Stacks equally-shaped tensors along a new leading axis.
Tensor Stack(const std::vector<Tensor>& parts);

// ---------------------------------------------------------------------------
// Convolution support (1-D, row-major [N, C, T])
// ---------------------------------------------------------------------------

/// Unfolds [N, C, T] into columns [C*k, N*T_out] for a kernel of width k,
/// given left padding `pad_left`, right padding `pad_right`, and dilation.
/// T_out = T + pad_left + pad_right - (k-1)*dilation.
Tensor Im2Col1D(const Tensor& input, int64_t kernel, int64_t dilation,
                int64_t pad_left, int64_t pad_right);

/// Folds columns [C*k, N*T_out] back into [N, C, T] (adjoint of Im2Col1D).
Tensor Col2Im1D(const Tensor& cols, const Shape& input_shape, int64_t kernel,
                int64_t dilation, int64_t pad_left, int64_t pad_right);

/// Rearranges the GEMM-packed conv output [Cout, N*Tout] into [N, Cout,
/// Tout]. The Into form reads the dims from out's shape.
Tensor ConvUnpack(const Tensor& out2, int64_t n, int64_t c_out, int64_t t_out);
void ConvUnpackInto(const Tensor& out2, Tensor* out);

// ---------------------------------------------------------------------------
// Comparisons / misc
// ---------------------------------------------------------------------------

/// True if all elements differ by at most atol + rtol*|b|.
bool AllClose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);

/// True if any element is NaN or Inf.
bool HasNonFinite(const Tensor& a);

/// Frobenius norm.
float Norm(const Tensor& a);

/// Euclidean distance between flattened tensors.
float L2Distance(const Tensor& a, const Tensor& b);

}  // namespace units::ops

#endif  // UNITS_TENSOR_TENSOR_OPS_H_
