#ifndef UNITS_TENSOR_FFT_H_
#define UNITS_TENSOR_FFT_H_

#include <complex>
#include <cstdint>
#include <vector>

namespace units::fft {

/// In-place iterative radix-2 Cooley–Tukey FFT. Length must be a power of
/// two (checked). `inverse` applies the conjugate transform and 1/n scaling.
void Fft(std::vector<std::complex<float>>* data, bool inverse = false);

/// Next power of two >= n (and >= 1).
int64_t NextPowerOfTwo(int64_t n);

/// Forward FFT of a real signal, zero-padded to the next power of two.
/// Returns the full complex spectrum of the padded length.
std::vector<std::complex<float>> RealFft(const std::vector<float>& signal);

/// Inverse of RealFft: inverse FFT then truncation to `original_length`
/// real samples (imaginary parts discarded).
std::vector<float> InverseRealFft(std::vector<std::complex<float>> spectrum,
                                  int64_t original_length);

/// Magnitude spectrum |X_k| of a real signal (padded length / 2 + 1 bins).
std::vector<float> MagnitudeSpectrum(const std::vector<float>& signal);

}  // namespace units::fft

#endif  // UNITS_TENSOR_FFT_H_
