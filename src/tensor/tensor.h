#ifndef UNITS_TENSOR_TENSOR_H_
#define UNITS_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "base/check.h"
#include "base/rng.h"

namespace units {

/// Shape of a tensor; dimensions ordered outermost-first (row-major).
using Shape = std::vector<int64_t>;

/// Number of elements implied by a shape (1 for rank-0).
int64_t NumElements(const Shape& shape);

/// Human-readable "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

bool SameShape(const Shape& a, const Shape& b);

/// Process-wide counters over Tensor storage allocations (fresh non-empty
/// buffers only — views and copies share storage, and zero-element tensors
/// hold no payload, so neither is counted). Thread-safe.
/// Tests use these to pin memory behavior of fused kernels, e.g. that
/// eval-mode attention never allocates a [NH, T, T] probability buffer.
struct TensorAllocStats {
  int64_t allocations = 0;    ///< number of fresh storage buffers
  int64_t total_floats = 0;   ///< cumulative floats across those buffers
  int64_t largest_floats = 0; ///< largest single buffer
};

TensorAllocStats GetTensorAllocStats();
void ResetTensorAllocStats();

/// Dense float32 tensor, row-major, always contiguous. Storage is shared:
/// copying a Tensor is O(1) and aliases the same buffer (use Clone() for a
/// deep copy). Reshape returns an aliasing view with a new shape. This is
/// the substrate for the autograd engine; it deliberately has no strides —
/// ops that would need them (transpose, slice) materialize their output.
///
/// A tensor may view a contiguous sub-range of a larger buffer (ViewInto);
/// the plan executor uses this to carve per-value views out of one arena
/// allocation. Views are still dense and row-major — only the start offset
/// differs — so every kernel works on them unchanged.
class Tensor {
 public:
  /// An empty (rank-1, zero-length) tensor.
  Tensor();

  /// Uninitialized tensor of the given shape. Prefer the named factories
  /// below in non-performance-critical code.
  explicit Tensor(Shape shape);

  /// All zeros / ones / constant `value`.
  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);

  /// Wraps the given values (copied) with the given shape.
  static Tensor FromVector(Shape shape, std::vector<float> values);

  /// Rank-0 scalar.
  static Tensor Scalar(float value);

  /// I.i.d. N(mean, stddev) entries.
  static Tensor RandNormal(Shape shape, Rng* rng, float mean = 0.0f,
                           float stddev = 1.0f);

  /// I.i.d. Uniform[lo, hi) entries.
  static Tensor RandUniform(Shape shape, Rng* rng, float lo = 0.0f,
                            float hi = 1.0f);

  /// Evenly spaced values [start, start+step, ...), `count` of them.
  static Tensor Arange(int64_t count, float start = 0.0f, float step = 1.0f);

  /// Aliasing view of `shape` floats starting `offset` floats into `base`'s
  /// storage. Shares storage (no allocation is recorded); bounds-checked.
  static Tensor ViewInto(const Tensor& base, int64_t offset, Shape shape);

  const Shape& shape() const { return shape_; }
  int64_t dim(int axis) const;
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t numel() const { return numel_; }

  float* data() { return storage_->data() + offset_; }
  const float* data() const { return storage_->data() + offset_; }

  /// Element access by flat index (row-major).
  float& operator[](int64_t i) {
    UNITS_CHECK(i >= 0 && i < numel_);
    return data()[i];
  }
  float operator[](int64_t i) const {
    UNITS_CHECK(i >= 0 && i < numel_);
    return data()[i];
  }

  /// Element access by multi-index, e.g. t.At({n, c, t}).
  float& At(std::initializer_list<int64_t> idx);
  float At(std::initializer_list<int64_t> idx) const;

  /// View with a new shape; must preserve numel. Shares storage.
  Tensor Reshape(Shape new_shape) const;

  /// Deep copy with fresh storage.
  Tensor Clone() const;

  /// Sets every element to `value`.
  void Fill(float value);

  /// Copies values from `src` (shapes must have equal numel).
  void CopyDataFrom(const Tensor& src);

  /// True if this tensor aliases the same buffer as `other`.
  bool SharesStorageWith(const Tensor& other) const {
    return storage_ == other.storage_;
  }

  /// Number of Tensor handles (and explicit holders) sharing this buffer.
  /// The plan layer's recycling pool reuses a pooled buffer only when the
  /// pool holds the sole reference (use count 1).
  long StorageUseCount() const { return storage_.use_count(); }

  /// Pretty-print (truncated for large tensors).
  std::string ToString(int max_per_dim = 8) const;

  /// Flat offset of a multi-index.
  int64_t Offset(const std::vector<int64_t>& idx) const;

 private:
  Shape shape_;
  int64_t numel_ = 0;
  int64_t offset_ = 0;  // start of this view within storage_, in floats
  std::shared_ptr<std::vector<float>> storage_;
};

}  // namespace units

#endif  // UNITS_TENSOR_TENSOR_H_
