#include "tensor/tensor_ops.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "base/parallel.h"
#include "base/profile.h"
#include "tensor/gemm.h"
#include "tensor/scalar_fns.h"

namespace units::ops {

namespace {

using ::units::base::ParallelFor;
using ::units::base::ParallelReduceSum;

/// Grain sizes: minimum per-chunk work (in elements or rows) before a loop
/// is split across the pool. Small tensors stay on the calling thread.
constexpr int64_t kElementGrain = 1 << 15;

/// Rows per chunk so that each chunk carries ~kElementGrain scalar ops.
/// Only for row-independent loops (bias adds, reductions, im2col): the GEMM
/// kernels must NOT use this — their partition unit is a whole macro-tile
/// (gemm::TileGrain over tile indices), because a per-row grain could place
/// a chunk boundary inside a macro-tile and break the determinism contract.
int64_t RowGrain(int64_t work_per_row) {
  return std::max<int64_t>(1, kElementGrain / std::max<int64_t>(1, work_per_row));
}

/// Row-major strides for a shape.
std::vector<int64_t> StridesOf(const Shape& shape) {
  std::vector<int64_t> strides(shape.size());
  int64_t s = 1;
  for (int i = static_cast<int>(shape.size()) - 1; i >= 0; --i) {
    strides[static_cast<size_t>(i)] = s;
    s *= shape[static_cast<size_t>(i)];
  }
  return strides;
}

/// Strides for reading `shape` as if broadcast to `out_shape`: broadcast
/// dims get stride 0.
std::vector<int64_t> BroadcastStrides(const Shape& shape,
                                      const Shape& out_shape) {
  const auto base = StridesOf(shape);
  std::vector<int64_t> strides(out_shape.size(), 0);
  const size_t offset = out_shape.size() - shape.size();
  for (size_t i = 0; i < shape.size(); ++i) {
    strides[offset + i] = (shape[i] == 1) ? 0 : base[i];
  }
  return strides;
}

int NormalizeAxis(int axis, int ndim) {
  if (axis < 0) {
    axis += ndim;
  }
  UNITS_CHECK(axis >= 0 && axis < ndim);
  return axis;
}

}  // namespace

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const size_t n = std::max(a.size(), b.size());
  Shape out(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t da = i < n - a.size() ? 1 : a[i - (n - a.size())];
    const int64_t db = i < n - b.size() ? 1 : b[i - (n - b.size())];
    UNITS_CHECK_MSG(da == db || da == 1 || db == 1,
                    "incompatible broadcast shapes");
    out[i] = std::max(da, db);
  }
  return out;
}

Tensor ReduceToShape(const Tensor& t, const Shape& target) {
  if (t.shape() == target) {
    return t;
  }
  Tensor out = Tensor::Zeros(target);
  const Shape& from = t.shape();
  UNITS_CHECK_LE(target.size(), from.size());
  const auto out_strides = BroadcastStrides(target, from);
  const auto from_strides = StridesOf(from);
  const float* src = t.data();
  float* dst = out.data();
  std::vector<int64_t> idx(from.size(), 0);
  for (int64_t flat = 0; flat < t.numel(); ++flat) {
    int64_t off = 0;
    for (size_t d = 0; d < from.size(); ++d) {
      off += idx[d] * out_strides[d];
    }
    dst[off] += src[flat];
    // Increment multi-index.
    for (int d = static_cast<int>(from.size()) - 1; d >= 0; --d) {
      if (++idx[static_cast<size_t>(d)] < from[static_cast<size_t>(d)]) {
        break;
      }
      idx[static_cast<size_t>(d)] = 0;
    }
  }
  (void)from_strides;
  return out;
}

void BinaryOpInto(const Tensor& a, const Tensor& b,
                  const std::function<float(float, float)>& fn, Tensor* out) {
  // Fast path: identical shapes.
  if (a.shape() == b.shape()) {
    UNITS_CHECK(out->shape() == a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out->data();
    ParallelFor(0, a.numel(), kElementGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        po[i] = fn(pa[i], pb[i]);
      }
    });
    return;
  }
  // Fast path: b is a suffix of a's shape (e.g. bias add [N,K] + [K]).
  if (b.ndim() <= a.ndim()) {
    bool suffix = b.numel() > 0;
    for (int i = 0; i < b.ndim(); ++i) {
      if (b.shape()[static_cast<size_t>(b.ndim() - 1 - i)] !=
          a.shape()[static_cast<size_t>(a.ndim() - 1 - i)]) {
        suffix = false;
        break;
      }
    }
    if (suffix) {
      UNITS_CHECK(out->shape() == a.shape());
      const int64_t inner = b.numel();
      const int64_t outer = a.numel() / inner;
      const float* pa = a.data();
      const float* pb = b.data();
      float* po = out->data();
      ParallelFor(0, outer, RowGrain(inner), [&](int64_t o0, int64_t o1) {
        for (int64_t o = o0; o < o1; ++o) {
          const int64_t base = o * inner;
          for (int64_t i = 0; i < inner; ++i) {
            po[base + i] = fn(pa[base + i], pb[i]);
          }
        }
      });
      return;
    }
  }
  // General broadcasting path.
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  UNITS_CHECK(out->shape() == out_shape);
  const auto sa = BroadcastStrides(a.shape(), out_shape);
  const auto sb = BroadcastStrides(b.shape(), out_shape);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  ParallelFor(0, out->numel(), kElementGrain, [&](int64_t lo, int64_t hi) {
    // Reconstruct the multi-index at the chunk start, then increment.
    std::vector<int64_t> idx(out_shape.size(), 0);
    int64_t rem = lo;
    for (int d = static_cast<int>(out_shape.size()) - 1; d >= 0; --d) {
      idx[static_cast<size_t>(d)] = rem % out_shape[static_cast<size_t>(d)];
      rem /= out_shape[static_cast<size_t>(d)];
    }
    for (int64_t flat = lo; flat < hi; ++flat) {
      int64_t oa = 0;
      int64_t ob = 0;
      for (size_t d = 0; d < out_shape.size(); ++d) {
        oa += idx[d] * sa[d];
        ob += idx[d] * sb[d];
      }
      po[flat] = fn(pa[oa], pb[ob]);
      for (int d = static_cast<int>(out_shape.size()) - 1; d >= 0; --d) {
        if (++idx[static_cast<size_t>(d)] <
            out_shape[static_cast<size_t>(d)]) {
          break;
        }
        idx[static_cast<size_t>(d)] = 0;
      }
    }
  });
}

Tensor BinaryOp(const Tensor& a, const Tensor& b,
                const std::function<float(float, float)>& fn) {
  Tensor out(BroadcastShapes(a.shape(), b.shape()));
  BinaryOpInto(a, b, fn, &out);
  return out;
}

void UnaryOpInto(const Tensor& a, const std::function<float(float)>& fn,
                 Tensor* out) {
  UNITS_CHECK_EQ(out->numel(), a.numel());
  const float* pa = a.data();
  float* po = out->data();
  ParallelFor(0, a.numel(), kElementGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      po[i] = fn(pa[i]);
    }
  });
}

Tensor UnaryOp(const Tensor& a, const std::function<float(float)>& fn) {
  Tensor out(a.shape());
  UnaryOpInto(a, fn, &out);
  return out;
}

// Elementwise wrappers delegate to the shared scalar kernels in
// tensor/scalar_fns.h — the plan executor's fused sweeps call the very same
// inline functions, which is what keeps fused and unfused results bitwise
// identical.
Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return scalar::Add(x, y); });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return scalar::Sub(x, y); });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return scalar::Mul(x, y); });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return scalar::Div(x, y); });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(a, [s](float x) { return scalar::AddScalar(x, s); });
}
Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(a, [s](float x) { return scalar::MulScalar(x, s); });
}

Tensor Neg(const Tensor& a) {
  return UnaryOp(a, [](float x) { return scalar::Neg(x); });
}
Tensor Exp(const Tensor& a) {
  return UnaryOp(a, [](float x) { return scalar::Exp(x); });
}
Tensor Log(const Tensor& a) {
  return UnaryOp(a, [](float x) { return scalar::Log(x); });
}
Tensor Sqrt(const Tensor& a) {
  return UnaryOp(a, [](float x) { return scalar::Sqrt(x); });
}
Tensor Abs(const Tensor& a) {
  return UnaryOp(a, [](float x) { return scalar::Abs(x); });
}
Tensor Tanh(const Tensor& a) {
  return UnaryOp(a, [](float x) { return scalar::Tanh(x); });
}
Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(a, [](float x) { return scalar::Sigmoid(x); });
}
Tensor Relu(const Tensor& a) {
  return UnaryOp(a, [](float x) { return scalar::Relu(x); });
}
Tensor Gelu(const Tensor& a) {
  return UnaryOp(a, [](float x) { return scalar::Gelu(x); });
}
Tensor Square(const Tensor& a) {
  return UnaryOp(a, [](float x) { return scalar::Square(x); });
}
Tensor Clamp(const Tensor& a, float lo, float hi) {
  return UnaryOp(a, [lo, hi](float x) { return std::clamp(x, lo, hi); });
}

namespace {

/// Shared shape checks for the 2-D product; returns {m, k, n}.
std::array<int64_t, 3> MatMulDims(const Tensor& a, const Tensor& b) {
  UNITS_CHECK_EQ(a.ndim(), 2);
  UNITS_CHECK_EQ(b.ndim(), 2);
  UNITS_CHECK_EQ(b.dim(0), a.dim(1));
  return {a.dim(0), a.dim(1), b.dim(1)};
}

/// Shared shape checks for the batched product; returns {batch, m, k, n}.
std::array<int64_t, 4> BatchedMatMulDims(const Tensor& a, const Tensor& b) {
  UNITS_CHECK_EQ(a.ndim(), 3);
  UNITS_CHECK_EQ(b.ndim(), 3);
  UNITS_CHECK_EQ(b.dim(0), a.dim(0));
  UNITS_CHECK_EQ(b.dim(1), a.dim(2));
  return {a.dim(0), a.dim(1), a.dim(2), b.dim(2)};
}

}  // namespace

void MatMulInto(const Tensor& a, const Tensor& b, Tensor* out) {
  UNITS_PROFILE_SCOPE("tensor.MatMul");
  const auto [m, k, n] = MatMulDims(a, b);
  UNITS_CHECK(out->shape() == (Shape{m, n}));
  // Cache-blocked micro-kernel GEMM (tensor/gemm.{h,cc}), parallel over
  // row macro-tiles; UNITS_GEMM=naive falls back to the PR-1 loop.
  if (gemm::ActiveKernel() == gemm::Kernel::kNaive) {
    gemm::NaiveGemm(m, k, n, a.data(), b.data(), out->data());
  } else {
    gemm::Gemm(m, k, n, a.data(), b.data(), out->data());
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  const auto [m, k, n] = MatMulDims(a, b);
  Tensor out({m, n});
  MatMulInto(a, b, &out);
  return out;
}

Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  UNITS_PROFILE_SCOPE("tensor.NaiveMatMul");
  const auto [m, k, n] = MatMulDims(a, b);
  Tensor out({m, n});
  gemm::NaiveGemm(m, k, n, a.data(), b.data(), out.data());
  return out;
}

void BatchedMatMulInto(const Tensor& a, const Tensor& b, Tensor* out) {
  UNITS_PROFILE_SCOPE("tensor.BatchedMatMul");
  const auto [batch, m, k, n] = BatchedMatMulDims(a, b);
  UNITS_CHECK(out->shape() == (Shape{batch, m, n}));
  if (gemm::ActiveKernel() == gemm::Kernel::kNaive) {
    for (int64_t bi = 0; bi < batch; ++bi) {
      gemm::NaiveGemm(m, k, n, a.data() + bi * m * k, b.data() + bi * k * n,
                      out->data() + bi * m * n);
    }
  } else {
    gemm::BatchedGemm(batch, m, k, n, a.data(), b.data(), out->data());
  }
}

Tensor BatchedMatMul(const Tensor& a, const Tensor& b) {
  const auto [batch, m, k, n] = BatchedMatMulDims(a, b);
  Tensor out({batch, m, n});
  BatchedMatMulInto(a, b, &out);
  return out;
}

Tensor NaiveBatchedMatMul(const Tensor& a, const Tensor& b) {
  UNITS_PROFILE_SCOPE("tensor.NaiveBatchedMatMul");
  const auto [batch, m, k, n] = BatchedMatMulDims(a, b);
  Tensor out({batch, m, n});
  for (int64_t bi = 0; bi < batch; ++bi) {
    gemm::NaiveGemm(m, k, n, a.data() + bi * m * k, b.data() + bi * k * n,
                    out.data() + bi * m * n);
  }
  return out;
}

void TransposeInto(const Tensor& a, int axis0, int axis1, Tensor* out_t) {
  UNITS_PROFILE_SCOPE("tensor.Transpose");
  axis0 = NormalizeAxis(axis0, a.ndim());
  axis1 = NormalizeAxis(axis1, a.ndim());
  Shape out_shape = a.shape();
  std::swap(out_shape[static_cast<size_t>(axis0)],
            out_shape[static_cast<size_t>(axis1)]);
  UNITS_CHECK(out_t->shape() == out_shape);
  Tensor& out = *out_t;
  const auto in_strides = StridesOf(a.shape());
  auto perm_strides = in_strides;
  std::swap(perm_strides[static_cast<size_t>(axis0)],
            perm_strides[static_cast<size_t>(axis1)]);
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, out.numel(), kElementGrain, [&](int64_t lo, int64_t hi) {
    std::vector<int64_t> idx(out_shape.size(), 0);
    int64_t rem = lo;
    for (int d = static_cast<int>(out_shape.size()) - 1; d >= 0; --d) {
      idx[static_cast<size_t>(d)] = rem % out_shape[static_cast<size_t>(d)];
      rem /= out_shape[static_cast<size_t>(d)];
    }
    for (int64_t flat = lo; flat < hi; ++flat) {
      int64_t src = 0;
      for (size_t d = 0; d < out_shape.size(); ++d) {
        src += idx[d] * perm_strides[d];
      }
      po[flat] = pa[src];
      for (int d = static_cast<int>(out_shape.size()) - 1; d >= 0; --d) {
        if (++idx[static_cast<size_t>(d)] <
            out_shape[static_cast<size_t>(d)]) {
          break;
        }
        idx[static_cast<size_t>(d)] = 0;
      }
    }
  });
}

Tensor Transpose(const Tensor& a, int axis0, int axis1) {
  Shape out_shape = a.shape();
  std::swap(out_shape[static_cast<size_t>(NormalizeAxis(axis0, a.ndim()))],
            out_shape[static_cast<size_t>(NormalizeAxis(axis1, a.ndim()))]);
  Tensor out(out_shape);
  TransposeInto(a, axis0, axis1, &out);
  return out;
}

Tensor Transpose2D(const Tensor& a) { return Transpose(a, 0, 1); }

float SumAll(const Tensor& a) {
  UNITS_PROFILE_SCOPE("tensor.SumAll");
  // Double accumulation per fixed-size chunk, partial sums combined in
  // chunk order: deterministic at any thread count.
  const float* p = a.data();
  const double sum =
      ParallelReduceSum(0, a.numel(), kElementGrain, [&](int64_t lo, int64_t hi) {
        double acc = 0.0;
        for (int64_t i = lo; i < hi; ++i) {
          acc += static_cast<double>(p[i]);
        }
        return acc;
      });
  return static_cast<float>(sum);
}

float MeanAll(const Tensor& a) {
  UNITS_CHECK_GT(a.numel(), 0);
  return SumAll(a) / static_cast<float>(a.numel());
}

float MaxAll(const Tensor& a) {
  UNITS_CHECK_GT(a.numel(), 0);
  const float* p = a.data();
  float m = p[0];
  for (int64_t i = 1; i < a.numel(); ++i) {
    m = std::max(m, p[i]);
  }
  return m;
}

float MinAll(const Tensor& a) {
  UNITS_CHECK_GT(a.numel(), 0);
  const float* p = a.data();
  float m = p[0];
  for (int64_t i = 1; i < a.numel(); ++i) {
    m = std::min(m, p[i]);
  }
  return m;
}

namespace {

/// Decomposes a shape around `axis` into (outer, axis_len, inner) so that
/// flat = (o * axis_len + x) * inner + i.
struct AxisSplit {
  int64_t outer;
  int64_t len;
  int64_t inner;
};

AxisSplit SplitAxis(const Shape& shape, int axis) {
  AxisSplit s{1, shape[static_cast<size_t>(axis)], 1};
  for (int d = 0; d < axis; ++d) {
    s.outer *= shape[static_cast<size_t>(d)];
  }
  for (size_t d = static_cast<size_t>(axis) + 1; d < shape.size(); ++d) {
    s.inner *= shape[d];
  }
  return s;
}

Shape DropOrKeepAxis(const Shape& shape, int axis, bool keepdim) {
  Shape out = shape;
  if (keepdim) {
    out[static_cast<size_t>(axis)] = 1;
  } else {
    out.erase(out.begin() + axis);
  }
  return out;
}

}  // namespace

void SumInto(const Tensor& a, int axis, bool keepdim, Tensor* out_t) {
  UNITS_PROFILE_SCOPE("tensor.Sum");
  axis = NormalizeAxis(axis, a.ndim());
  const AxisSplit s = SplitAxis(a.shape(), axis);
  UNITS_CHECK(out_t->shape() == DropOrKeepAxis(a.shape(), axis, keepdim));
  Tensor& out = *out_t;
  out.Fill(0.0f);  // accumulated below, exactly like the Zeros-backed path
  const float* pa = a.data();
  float* po = out.data();
  // Chunk over whichever of outer/inner has more slack; every output
  // element still accumulates over the axis in ascending order, so the
  // result matches the serial loop bit for bit.
  if (s.outer >= s.inner) {
    ParallelFor(0, s.outer, RowGrain(s.len * s.inner),
                [&](int64_t o0, int64_t o1) {
                  for (int64_t o = o0; o < o1; ++o) {
                    for (int64_t x = 0; x < s.len; ++x) {
                      const float* src = pa + (o * s.len + x) * s.inner;
                      float* dst = po + o * s.inner;
                      for (int64_t i = 0; i < s.inner; ++i) {
                        dst[i] += src[i];
                      }
                    }
                  }
                });
  } else {
    ParallelFor(0, s.inner, RowGrain(s.outer * s.len),
                [&](int64_t i0, int64_t i1) {
                  for (int64_t o = 0; o < s.outer; ++o) {
                    for (int64_t x = 0; x < s.len; ++x) {
                      const float* src = pa + (o * s.len + x) * s.inner;
                      float* dst = po + o * s.inner;
                      for (int64_t i = i0; i < i1; ++i) {
                        dst[i] += src[i];
                      }
                    }
                  }
                });
  }
}

Tensor Sum(const Tensor& a, int axis, bool keepdim) {
  const int norm_axis = NormalizeAxis(axis, a.ndim());
  Tensor out(DropOrKeepAxis(a.shape(), norm_axis, keepdim));
  SumInto(a, axis, keepdim, &out);
  return out;
}

Tensor Mean(const Tensor& a, int axis, bool keepdim) {
  axis = NormalizeAxis(axis, a.ndim());
  const int64_t len = a.dim(axis);
  return MulScalar(Sum(a, axis, keepdim), 1.0f / static_cast<float>(len));
}

void MaxInto(const Tensor& a, int axis, bool keepdim, Tensor* out_t) {
  axis = NormalizeAxis(axis, a.ndim());
  const AxisSplit s = SplitAxis(a.shape(), axis);
  UNITS_CHECK(out_t->shape() == DropOrKeepAxis(a.shape(), axis, keepdim));
  Tensor& out = *out_t;
  out.Fill(-std::numeric_limits<float>::infinity());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, s.outer, RowGrain(s.len * s.inner),
              [&](int64_t o0, int64_t o1) {
                for (int64_t o = o0; o < o1; ++o) {
                  for (int64_t x = 0; x < s.len; ++x) {
                    const float* src = pa + (o * s.len + x) * s.inner;
                    float* dst = po + o * s.inner;
                    for (int64_t i = 0; i < s.inner; ++i) {
                      dst[i] = std::max(dst[i], src[i]);
                    }
                  }
                }
              });
}

Tensor Max(const Tensor& a, int axis, bool keepdim) {
  const int norm_axis = NormalizeAxis(axis, a.ndim());
  Tensor out(DropOrKeepAxis(a.shape(), norm_axis, keepdim));
  MaxInto(a, axis, keepdim, &out);
  return out;
}

Tensor ArgMax(const Tensor& a, int axis) {
  axis = NormalizeAxis(axis, a.ndim());
  const AxisSplit s = SplitAxis(a.shape(), axis);
  Tensor out = Tensor::Zeros(DropOrKeepAxis(a.shape(), axis, false));
  std::vector<float> best(static_cast<size_t>(out.numel()),
                          -std::numeric_limits<float>::infinity());
  const float* pa = a.data();
  float* po = out.data();
  // Chunks over `outer` touch disjoint slices of `best` and `po`.
  ParallelFor(0, s.outer, RowGrain(s.len * s.inner),
              [&](int64_t o0, int64_t o1) {
                for (int64_t o = o0; o < o1; ++o) {
                  for (int64_t x = 0; x < s.len; ++x) {
                    const float* src = pa + (o * s.len + x) * s.inner;
                    for (int64_t i = 0; i < s.inner; ++i) {
                      const int64_t flat = o * s.inner + i;
                      if (src[i] > best[static_cast<size_t>(flat)]) {
                        best[static_cast<size_t>(flat)] = src[i];
                        po[flat] = static_cast<float>(x);
                      }
                    }
                  }
                }
              });
  return out;
}

std::pair<Tensor, std::vector<int64_t>> MaxWithArg(const Tensor& a, int axis) {
  axis = NormalizeAxis(axis, a.ndim());
  const AxisSplit s = SplitAxis(a.shape(), axis);
  Tensor values = Tensor::Full(DropOrKeepAxis(a.shape(), axis, false),
                               -std::numeric_limits<float>::infinity());
  std::vector<int64_t> args(static_cast<size_t>(values.numel()), 0);
  const float* pa = a.data();
  float* pv = values.data();
  ParallelFor(0, s.outer, RowGrain(s.len * s.inner),
              [&](int64_t o0, int64_t o1) {
                for (int64_t o = o0; o < o1; ++o) {
                  for (int64_t x = 0; x < s.len; ++x) {
                    const int64_t base = (o * s.len + x) * s.inner;
                    for (int64_t i = 0; i < s.inner; ++i) {
                      const int64_t flat = o * s.inner + i;
                      if (pa[base + i] > pv[flat]) {
                        pv[flat] = pa[base + i];
                        args[static_cast<size_t>(flat)] = base + i;
                      }
                    }
                  }
                }
              });
  return {values, args};
}

Tensor Softmax(const Tensor& a, int axis) { return SoftmaxFused(a, axis); }

Tensor LogSoftmax(const Tensor& a, int axis) {
  return LogSoftmaxFused(a, axis);
}

namespace {

/// Runs `row_fn(base_offset, len, stride)` once per softmax row of the
/// axis-split shape, parallel over rows. A "row" is one (outer, inner)
/// lane of the axis; lanes are independent, so chunk boundaries cannot
/// change results.
template <typename RowFn>
void ForEachAxisRow(const AxisSplit& s, const RowFn& row_fn) {
  ParallelFor(0, s.outer * s.inner, RowGrain(s.len),
              [&](int64_t lo, int64_t hi) {
                for (int64_t r = lo; r < hi; ++r) {
                  const int64_t o = r / s.inner;
                  const int64_t i = r % s.inner;
                  row_fn(o * s.len * s.inner + i, s.len, s.inner);
                }
              });
}

}  // namespace

void SoftmaxInto(const Tensor& a, int axis, Tensor* out_t) {
  UNITS_PROFILE_SCOPE("tensor.Softmax");
  axis = NormalizeAxis(axis, a.ndim());
  const AxisSplit s = SplitAxis(a.shape(), axis);
  UNITS_CHECK(out_t->shape() == a.shape());
  Tensor& out = *out_t;
  const float* pa = a.data();
  float* po = out.data();
  ForEachAxisRow(s, [&](int64_t base, int64_t len, int64_t stride) {
    float m = -std::numeric_limits<float>::infinity();
    for (int64_t x = 0; x < len; ++x) {
      m = std::max(m, pa[base + x * stride]);
    }
    float z = 0.0f;
    for (int64_t x = 0; x < len; ++x) {
      const float e = std::exp(pa[base + x * stride] - m);
      po[base + x * stride] = e;
      z += e;
    }
    const float inv = 1.0f / z;
    for (int64_t x = 0; x < len; ++x) {
      po[base + x * stride] *= inv;
    }
  });
}

Tensor SoftmaxFused(const Tensor& a, int axis) {
  Tensor out(a.shape());
  SoftmaxInto(a, axis, &out);
  return out;
}

void LogSoftmaxInto(const Tensor& a, int axis, Tensor* out_t) {
  UNITS_PROFILE_SCOPE("tensor.LogSoftmax");
  axis = NormalizeAxis(axis, a.ndim());
  const AxisSplit s = SplitAxis(a.shape(), axis);
  UNITS_CHECK(out_t->shape() == a.shape());
  Tensor& out = *out_t;
  const float* pa = a.data();
  float* po = out.data();
  ForEachAxisRow(s, [&](int64_t base, int64_t len, int64_t stride) {
    float m = -std::numeric_limits<float>::infinity();
    for (int64_t x = 0; x < len; ++x) {
      m = std::max(m, pa[base + x * stride]);
    }
    float z = 0.0f;
    for (int64_t x = 0; x < len; ++x) {
      z += std::exp(pa[base + x * stride] - m);
    }
    const float logz = std::log(z);
    for (int64_t x = 0; x < len; ++x) {
      po[base + x * stride] = pa[base + x * stride] - m - logz;
    }
  });
}

Tensor LogSoftmaxFused(const Tensor& a, int axis) {
  Tensor out(a.shape());
  LogSoftmaxInto(a, axis, &out);
  return out;
}

Tensor SoftmaxBackward(const Tensor& p, const Tensor& g, int axis) {
  UNITS_PROFILE_SCOPE("tensor.SoftmaxBackward");
  UNITS_CHECK(p.shape() == g.shape());
  axis = NormalizeAxis(axis, p.ndim());
  const AxisSplit s = SplitAxis(p.shape(), axis);
  Tensor out(p.shape());
  const float* pp = p.data();
  const float* pg = g.data();
  float* po = out.data();
  ForEachAxisRow(s, [&](int64_t base, int64_t len, int64_t stride) {
    float dot = 0.0f;
    for (int64_t x = 0; x < len; ++x) {
      dot += pg[base + x * stride] * pp[base + x * stride];
    }
    for (int64_t x = 0; x < len; ++x) {
      po[base + x * stride] =
          pp[base + x * stride] * (pg[base + x * stride] - dot);
    }
  });
  return out;
}

Tensor LogSoftmaxBackward(const Tensor& out_saved, const Tensor& g, int axis) {
  UNITS_PROFILE_SCOPE("tensor.LogSoftmaxBackward");
  UNITS_CHECK(out_saved.shape() == g.shape());
  axis = NormalizeAxis(axis, out_saved.ndim());
  const AxisSplit s = SplitAxis(out_saved.shape(), axis);
  Tensor out(out_saved.shape());
  const float* ps = out_saved.data();
  const float* pg = g.data();
  float* po = out.data();
  ForEachAxisRow(s, [&](int64_t base, int64_t len, int64_t stride) {
    float gsum = 0.0f;
    for (int64_t x = 0; x < len; ++x) {
      gsum += pg[base + x * stride];
    }
    for (int64_t x = 0; x < len; ++x) {
      po[base + x * stride] =
          pg[base + x * stride] - std::exp(ps[base + x * stride]) * gsum;
    }
  });
  return out;
}

void ConcatInto(const std::vector<Tensor>& parts, int axis, Tensor* out_t) {
  UNITS_CHECK(!parts.empty());
  const int ndim = parts[0].ndim();
  axis = NormalizeAxis(axis, ndim);
  Shape out_shape = parts[0].shape();
  int64_t total = 0;
  for (const Tensor& p : parts) {
    UNITS_CHECK_EQ(p.ndim(), ndim);
    for (int d = 0; d < ndim; ++d) {
      if (d != axis) {
        UNITS_CHECK_EQ(p.shape()[static_cast<size_t>(d)],
                       out_shape[static_cast<size_t>(d)]);
      }
    }
    total += p.dim(axis);
  }
  out_shape[static_cast<size_t>(axis)] = total;
  UNITS_CHECK(out_t->shape() == out_shape);
  Tensor& out = *out_t;
  const AxisSplit s = SplitAxis(out_shape, axis);
  float* po = out.data();
  int64_t axis_offset = 0;
  for (const Tensor& p : parts) {
    const int64_t plen = p.dim(axis);
    const float* pp = p.data();
    for (int64_t o = 0; o < s.outer; ++o) {
      for (int64_t x = 0; x < plen; ++x) {
        const float* src = pp + (o * plen + x) * s.inner;
        float* dst = po + (o * s.len + axis_offset + x) * s.inner;
        std::copy(src, src + s.inner, dst);
      }
    }
    axis_offset += plen;
  }
}

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  UNITS_CHECK(!parts.empty());
  const int norm_axis = NormalizeAxis(axis, parts[0].ndim());
  Shape out_shape = parts[0].shape();
  int64_t total = 0;
  for (const Tensor& p : parts) {
    total += p.dim(norm_axis);
  }
  out_shape[static_cast<size_t>(norm_axis)] = total;
  Tensor out(out_shape);
  ConcatInto(parts, axis, &out);
  return out;
}

void SliceInto(const Tensor& a, int axis, int64_t start, int64_t length,
               Tensor* out_t) {
  axis = NormalizeAxis(axis, a.ndim());
  UNITS_CHECK_GE(start, 0);
  UNITS_CHECK_GE(length, 0);
  UNITS_CHECK_LE(start + length, a.dim(axis));
  Shape out_shape = a.shape();
  out_shape[static_cast<size_t>(axis)] = length;
  UNITS_CHECK(out_t->shape() == out_shape);
  Tensor& out = *out_t;
  const AxisSplit s = SplitAxis(a.shape(), axis);
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t o = 0; o < s.outer; ++o) {
    for (int64_t x = 0; x < length; ++x) {
      const float* src = pa + (o * s.len + start + x) * s.inner;
      float* dst = po + (o * length + x) * s.inner;
      std::copy(src, src + s.inner, dst);
    }
  }
}

Tensor Slice(const Tensor& a, int axis, int64_t start, int64_t length) {
  Shape out_shape = a.shape();
  out_shape[static_cast<size_t>(NormalizeAxis(axis, a.ndim()))] = length;
  Tensor out(out_shape);
  SliceInto(a, axis, start, length, &out);
  return out;
}

Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices) {
  UNITS_CHECK_GE(a.ndim(), 1);
  Shape out_shape = a.shape();
  out_shape[0] = static_cast<int64_t>(indices.size());
  Tensor out(out_shape);
  const int64_t row = a.numel() / std::max<int64_t>(a.dim(0), 1);
  const float* pa = a.data();
  float* po = out.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t src_row = indices[i];
    UNITS_CHECK(src_row >= 0 && src_row < a.dim(0));
    std::copy(pa + src_row * row, pa + (src_row + 1) * row,
              po + static_cast<int64_t>(i) * row);
  }
  return out;
}

Tensor ScatterAddRows(const Tensor& grad, const std::vector<int64_t>& indices,
                      int64_t num_rows) {
  UNITS_CHECK_EQ(grad.dim(0), static_cast<int64_t>(indices.size()));
  Shape out_shape = grad.shape();
  out_shape[0] = num_rows;
  Tensor out = Tensor::Zeros(out_shape);
  const int64_t row = grad.numel() / std::max<int64_t>(grad.dim(0), 1);
  const float* pg = grad.data();
  float* po = out.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t dst_row = indices[i];
    UNITS_CHECK(dst_row >= 0 && dst_row < num_rows);
    const float* src = pg + static_cast<int64_t>(i) * row;
    float* dst = po + dst_row * row;
    for (int64_t j = 0; j < row; ++j) {
      dst[j] += src[j];
    }
  }
  return out;
}

Tensor Stack(const std::vector<Tensor>& parts) {
  UNITS_CHECK(!parts.empty());
  Shape out_shape = parts[0].shape();
  out_shape.insert(out_shape.begin(), static_cast<int64_t>(parts.size()));
  Tensor out(out_shape);
  const int64_t chunk = parts[0].numel();
  float* po = out.data();
  for (size_t i = 0; i < parts.size(); ++i) {
    UNITS_CHECK(parts[i].shape() == parts[0].shape());
    std::copy(parts[i].data(), parts[i].data() + chunk,
              po + static_cast<int64_t>(i) * chunk);
  }
  return out;
}

void Im2Col1DInto(const Tensor& input, int64_t kernel, int64_t dilation,
                  int64_t pad_left, int64_t pad_right, Tensor* cols_t) {
  UNITS_PROFILE_SCOPE("tensor.Im2Col1D");
  UNITS_CHECK_EQ(input.ndim(), 3);
  const int64_t n = input.dim(0);
  const int64_t c = input.dim(1);
  const int64_t t = input.dim(2);
  const int64_t t_out = t + pad_left + pad_right - (kernel - 1) * dilation;
  UNITS_CHECK_GT(t_out, 0);
  UNITS_CHECK(cols_t->shape() == (Shape{c * kernel, n * t_out}));
  Tensor& cols = *cols_t;
  // Every element of `cols` is written below (padding taps store 0.0f
  // explicitly), so no pre-fill is needed.
  const float* pin = input.data();
  float* pc = cols.data();
  // Parallel over (channel, tap) rows of the column matrix; each row is
  // written by exactly one chunk.
  ParallelFor(0, c * kernel, RowGrain(n * t_out), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t ci = r / kernel;
      const int64_t ki = r % kernel;
      float* crow = pc + r * (n * t_out);
      for (int64_t ni = 0; ni < n; ++ni) {
        const float* irow = pin + (ni * c + ci) * t;
        float* cdst = crow + ni * t_out;
        for (int64_t to = 0; to < t_out; ++to) {
          const int64_t ti = to - pad_left + ki * dilation;
          cdst[to] = (ti >= 0 && ti < t) ? irow[ti] : 0.0f;
        }
      }
    }
  });
}

Tensor Im2Col1D(const Tensor& input, int64_t kernel, int64_t dilation,
                int64_t pad_left, int64_t pad_right) {
  UNITS_CHECK_EQ(input.ndim(), 3);
  const int64_t t_out = input.dim(2) + pad_left + pad_right -
                        (kernel - 1) * dilation;
  Tensor cols({input.dim(1) * kernel, input.dim(0) * t_out});
  Im2Col1DInto(input, kernel, dilation, pad_left, pad_right, &cols);
  return cols;
}

void ConvUnpackInto(const Tensor& out2, Tensor* out_t) {
  UNITS_CHECK_EQ(out_t->ndim(), 3);
  const int64_t n = out_t->dim(0);
  const int64_t c_out = out_t->dim(1);
  const int64_t t_out = out_t->dim(2);
  UNITS_CHECK(out2.shape() == (Shape{c_out, n * t_out}));
  Tensor& out = *out_t;
  const float* p2 = out2.data();
  float* po = out.data();
  // Parallel over output channels; channels write disjoint [ni, co] rows.
  // Every element is copied, so no pre-fill is needed.
  ParallelFor(
      0, c_out, std::max<int64_t>(1, 16384 / std::max<int64_t>(1, n * t_out)),
      [&](int64_t co0, int64_t co1) {
        for (int64_t co = co0; co < co1; ++co) {
          for (int64_t ni = 0; ni < n; ++ni) {
            const float* src = p2 + co * (n * t_out) + ni * t_out;
            float* dst = po + (ni * c_out + co) * t_out;
            std::copy(src, src + t_out, dst);
          }
        }
      });
}

Tensor ConvUnpack(const Tensor& out2, int64_t n, int64_t c_out,
                  int64_t t_out) {
  Tensor out({n, c_out, t_out});
  ConvUnpackInto(out2, &out);
  return out;
}

Tensor Col2Im1D(const Tensor& cols, const Shape& input_shape, int64_t kernel,
                int64_t dilation, int64_t pad_left, int64_t pad_right) {
  UNITS_PROFILE_SCOPE("tensor.Col2Im1D");
  UNITS_CHECK_EQ(input_shape.size(), 3u);
  const int64_t n = input_shape[0];
  const int64_t c = input_shape[1];
  const int64_t t = input_shape[2];
  const int64_t t_out = t + pad_left + pad_right - (kernel - 1) * dilation;
  UNITS_CHECK_EQ(cols.dim(0), c * kernel);
  UNITS_CHECK_EQ(cols.dim(1), n * t_out);
  Tensor out = Tensor::Zeros(input_shape);
  const float* pc = cols.data();
  float* pout = out.data();
  // Parallel over input channels only: all kernel taps for a channel stay
  // in one chunk because they accumulate into the same input rows. The
  // ki/ni/to order inside a channel matches the serial loop, so the
  // accumulation order per element is unchanged.
  ParallelFor(0, c, RowGrain(kernel * n * t_out), [&](int64_t c0, int64_t c1) {
    for (int64_t ci = c0; ci < c1; ++ci) {
      for (int64_t ki = 0; ki < kernel; ++ki) {
        const float* crow = pc + (ci * kernel + ki) * (n * t_out);
        for (int64_t ni = 0; ni < n; ++ni) {
          float* irow = pout + (ni * c + ci) * t;
          const float* csrc = crow + ni * t_out;
          for (int64_t to = 0; to < t_out; ++to) {
            const int64_t ti = to - pad_left + ki * dilation;
            if (ti >= 0 && ti < t) {
              irow[ti] += csrc[to];
            }
          }
        }
      }
    }
  });
  return out;
}

namespace {

/// Shared shape checks for the fused attention kernels; returns {B, T, hd}.
std::array<int64_t, 3> AttentionDims(const Tensor& q, const Tensor& k,
                                     const Tensor& v,
                                     const Tensor& dropout_mask) {
  UNITS_CHECK_EQ(q.ndim(), 3);
  UNITS_CHECK(q.shape() == k.shape());
  UNITS_CHECK(q.shape() == v.shape());
  if (dropout_mask.numel() > 0) {
    UNITS_CHECK(dropout_mask.shape() ==
                (Shape{q.dim(0), q.dim(1), q.dim(1)}));
  }
  return {q.dim(0), q.dim(1), q.dim(2)};
}

/// Grain for ParallelFor over (batch, row-block) tile indices: at least one
/// whole tile, more for tiny shapes. Depends only on the shape and the
/// fixed kAttnRowBlock, so chunk boundaries are thread-count independent.
int64_t AttnTileGrain(int64_t t, int64_t hd) {
  const int64_t flops_per_tile = kAttnRowBlock * t * hd;
  return std::max<int64_t>(1, kElementGrain / std::max<int64_t>(1, flops_per_tile));
}

/// Computes one scores tile for rows [r0, r1): tile = q[r0:r1] x kT via the
/// blocked GEMM micro-kernel (runs inline when already on a pool thread —
/// base/parallel executes nested ParallelFor serially, so the accumulation
/// order stays thread-count independent), then scales and softmaxes each
/// row in place. The destination rows have stride t, which holds both for
/// a compact scratch tile and for rows [r0, r1) of a [T, T] probs plane.
void ScoreSoftmaxTile(const float* qb, const float* ktb, float scale,
                      int64_t t, int64_t hd, int64_t r0, int64_t r1,
                      float* tile) {
  gemm::Gemm(r1 - r0, hd, t, qb + r0 * hd, ktb, tile);
  for (int64_t r = r0; r < r1; ++r) {
    float* srow = tile + (r - r0) * t;
    // Fused row softmax with the scale folded into the two read passes
    // (cheaper than a separate scaling sweep over the tile).
    float m = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < t; ++j) {
      m = std::max(m, srow[j] * scale);
    }
    float z = 0.0f;
    for (int64_t j = 0; j < t; ++j) {
      srow[j] = std::exp(srow[j] * scale - m);
      z += srow[j];
    }
    const float inv = 1.0f / z;
    for (int64_t j = 0; j < t; ++j) {
      srow[j] *= inv;
    }
  }
}

/// Context rows [r0, r1): out[r0:r1] = P_tile x v, one blocked GEMM per
/// tile. `ptile` must hold the (dropout-folded, if any) probability rows
/// with stride t.
void ContextTile(const float* ptile, const float* vb, int64_t t, int64_t hd,
                 int64_t r0, int64_t r1, float* out_b) {
  gemm::Gemm(r1 - r0, t, hd, ptile, vb, out_b + r0 * hd);
}

/// out[i] = a[i] * b[i] over n floats (folds a dropout-mask block into a
/// probability block before the context GEMM; in-place when out == a).
void MulInto(const float* a, const float* b, int64_t n, float* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = a[i] * b[i];
  }
}

/// dst[j][r] = src[r][j] for a [t, t] plane, 32x32 cache blocks.
void TransposeSquare(const float* src, int64_t t, float* dst) {
  constexpr int64_t kB = 32;
  for (int64_t i0 = 0; i0 < t; i0 += kB) {
    const int64_t i1 = std::min(t, i0 + kB);
    for (int64_t j0 = 0; j0 < t; j0 += kB) {
      const int64_t j1 = std::min(t, j0 + kB);
      for (int64_t i = i0; i < i1; ++i) {
        for (int64_t j = j0; j < j1; ++j) {
          dst[j * t + i] = src[i * t + j];
        }
      }
    }
  }
}

}  // namespace

void AttentionForwardStreamingInto(const Tensor& q, const Tensor& k,
                                   const Tensor& v, float scale,
                                   const Tensor& dropout_mask, Tensor* kt_ws,
                                   Tensor* out_t) {
  UNITS_PROFILE_SCOPE("tensor.AttentionForwardStreaming");
  const auto [batch, t, hd] = AttentionDims(q, k, v, dropout_mask);
  UNITS_CHECK(out_t->shape() == (Shape{batch, t, hd}));
  Tensor& out = *out_t;
  // K transposed once to [B, hd, T] so each scores tile is a plain GEMM
  // against a shared B panel. Same footprint as the output — nothing here
  // ever allocates the [B, T, T] probabilities. The caller provides the
  // [B, hd, T] workspace (a plan arena slot, or a fresh tensor from the
  // allocating wrapper below).
  TransposeInto(k, 1, 2, kt_ws);
  const Tensor& kt = *kt_ws;
  const int64_t nblocks = (t + kAttnRowBlock - 1) / kAttnRowBlock;
  const float* pq = q.data();
  const float* pkt = kt.data();
  const float* pv = v.data();
  const float* pm = dropout_mask.numel() > 0 ? dropout_mask.data() : nullptr;
  float* po = out.data();
  ParallelFor(0, batch * nblocks, AttnTileGrain(t, hd),
              [&, t = t, hd = hd](int64_t lo, int64_t hi) {
                // Scores scratch for one tile; plain vector, not a Tensor —
                // eval mode allocates no [B, T, T] probability buffer.
                std::vector<float> tile(
                    static_cast<size_t>(kAttnRowBlock * t));
                for (int64_t idx = lo; idx < hi; ++idx) {
                  const int64_t b = idx / nblocks;
                  const int64_t r0 = (idx % nblocks) * kAttnRowBlock;
                  const int64_t r1 = std::min(t, r0 + kAttnRowBlock);
                  ScoreSoftmaxTile(pq + b * t * hd, pkt + b * t * hd, scale,
                                   t, hd, r0, r1, tile.data());
                  if (pm != nullptr) {
                    MulInto(tile.data(), pm + (b * t + r0) * t, (r1 - r0) * t,
                            tile.data());
                  }
                  ContextTile(tile.data(), pv + b * t * hd, t, hd, r0, r1,
                              po + b * t * hd);
                }
              });
}

Tensor AttentionForwardStreaming(const Tensor& q, const Tensor& k,
                                 const Tensor& v, float scale,
                                 const Tensor& dropout_mask) {
  const auto [batch, t, hd] = AttentionDims(q, k, v, dropout_mask);
  Tensor out({batch, t, hd});
  Tensor kt_ws({batch, hd, t});
  AttentionForwardStreamingInto(q, k, v, scale, dropout_mask, &kt_ws, &out);
  return out;
}

Tensor AttentionForwardTrain(const Tensor& q, const Tensor& k,
                             const Tensor& v, float scale,
                             const Tensor& dropout_mask, Tensor* probs) {
  UNITS_PROFILE_SCOPE("tensor.AttentionForwardTrain");
  UNITS_CHECK(probs != nullptr);
  const auto [batch, t, hd] = AttentionDims(q, k, v, dropout_mask);
  Tensor out({batch, t, hd});
  *probs = Tensor({batch, t, t});
  const Tensor kt = Transpose(k, 1, 2);
  const int64_t nblocks = (t + kAttnRowBlock - 1) / kAttnRowBlock;
  const float* pq = q.data();
  const float* pkt = kt.data();
  const float* pv = v.data();
  const float* pm = dropout_mask.numel() > 0 ? dropout_mask.data() : nullptr;
  float* pp = probs->data();
  float* po = out.data();
  ParallelFor(
      0, batch * nblocks, AttnTileGrain(t, hd),
      [&, t = t, hd = hd](int64_t lo, int64_t hi) {
        // Scratch only for the dropout-folded tile; the pre-dropout
        // probabilities (what softmax backward needs) stay in `probs`.
        std::vector<float> folded(
            pm != nullptr ? static_cast<size_t>(kAttnRowBlock * t) : 0);
        for (int64_t idx = lo; idx < hi; ++idx) {
          const int64_t b = idx / nblocks;
          const int64_t r0 = (idx % nblocks) * kAttnRowBlock;
          const int64_t r1 = std::min(t, r0 + kAttnRowBlock);
          // Scores land directly in the saved probability tensor
          // (softmaxed in place): one [B,T,T] buffer total.
          float* ptile = pp + (b * t + r0) * t;
          ScoreSoftmaxTile(pq + b * t * hd, pkt + b * t * hd, scale, t, hd,
                           r0, r1, ptile);
          const float* ctx_in = ptile;
          if (pm != nullptr) {
            MulInto(ptile, pm + (b * t + r0) * t, (r1 - r0) * t,
                    folded.data());
            ctx_in = folded.data();
          }
          ContextTile(ctx_in, pv + b * t * hd, t, hd, r0, r1,
                      po + b * t * hd);
        }
      });
  return out;
}

AttentionGrads AttentionBackward(const Tensor& q, const Tensor& k,
                                 const Tensor& v, float scale,
                                 const Tensor& probs,
                                 const Tensor& dropout_mask, const Tensor& g) {
  UNITS_PROFILE_SCOPE("tensor.AttentionBackward");
  const auto [batch, t, hd] = AttentionDims(q, k, v, dropout_mask);
  UNITS_CHECK(probs.shape() == (Shape{batch, t, t}));
  UNITS_CHECK(g.shape() == q.shape());
  // Every plane below is overwritten by a GEMM, so no zero-fill is needed.
  AttentionGrads grads{Tensor({batch, t, hd}), Tensor({batch, t, hd}),
                       Tensor({batch, t, hd})};
  const Tensor vt = Transpose(v, 1, 2);  // [B, hd, T] for the dP GEMM
  const float* pq = q.data();
  const float* pk = k.data();
  const float* pvt = vt.data();
  const float* pp = probs.data();
  const float* pm = dropout_mask.numel() > 0 ? dropout_mask.data() : nullptr;
  const float* pg = g.data();
  float* pdq = grads.dq.data();
  float* pdk = grads.dk.data();
  float* pdv = grads.dv.data();
  // Parallel over batches only (grain 1): each batch runs its GEMM chain
  // serially (nested ParallelFor executes inline on pool threads), so the
  // accumulation order never depends on the thread count.
  ParallelFor(0, batch, 1, [&, t = t, hd = hd](int64_t b0, int64_t b1) {
    // [T, T] scratch planes: dS in `ds`, transposed operands in `tr`.
    // Plain vectors — backward adds no [B, T, T] tensor allocations.
    std::vector<float> ds(static_cast<size_t>(t * t));
    std::vector<float> tr(static_cast<size_t>(t * t));
    for (int64_t b = b0; b < b1; ++b) {
      const float* qb = pq + b * t * hd;
      const float* kb = pk + b * t * hd;
      const float* vtb = pvt + b * t * hd;
      const float* pb = pp + b * t * t;
      const float* mb = pm != nullptr ? pm + b * t * t : nullptr;
      const float* gb = pg + b * t * hd;
      // d(dropped probs) = g x vT, with the dropout mask folded in to get
      // dP (the mask multiplied the probs in the forward).
      gemm::Gemm(t, hd, t, gb, vtb, ds.data());
      if (mb != nullptr) {
        MulInto(ds.data(), mb, t * t, ds.data());
      }
      // Row-wise softmax backward in place, scale folded in:
      // dS = scale * P (dP - <dP, P>).
      for (int64_t r = 0; r < t; ++r) {
        float* dsrow = ds.data() + r * t;
        const float* prow = pb + r * t;
        float dot = 0.0f;
        for (int64_t j = 0; j < t; ++j) {
          dot += dsrow[j] * prow[j];
        }
        for (int64_t j = 0; j < t; ++j) {
          dsrow[j] = scale * prow[j] * (dsrow[j] - dot);
        }
      }
      gemm::Gemm(t, t, hd, ds.data(), kb, pdq + b * t * hd);  // dQ = dS K
      TransposeSquare(ds.data(), t, tr.data());
      gemm::Gemm(t, t, hd, tr.data(), qb, pdk + b * t * hd);  // dK = dS^T Q
      // dV = (P o M)^T g, the dropped probabilities from the forward.
      if (mb != nullptr) {
        MulInto(pb, mb, t * t, ds.data());
        TransposeSquare(ds.data(), t, tr.data());
      } else {
        TransposeSquare(pb, t, tr.data());
      }
      gemm::Gemm(t, t, hd, tr.data(), gb, pdv + b * t * hd);
    }
  });
  return grads;
}

bool AllClose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (a.shape() != b.shape()) {
    return false;
  }
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float tol = atol + rtol * std::fabs(pb[i]);
    if (std::fabs(pa[i] - pb[i]) > tol) {
      return false;
    }
  }
  return true;
}

bool HasNonFinite(const Tensor& a) {
  const float* p = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (!std::isfinite(p[i])) {
      return true;
    }
  }
  return false;
}

float Norm(const Tensor& a) {
  UNITS_PROFILE_SCOPE("tensor.Norm");
  const float* p = a.data();
  const double acc =
      ParallelReduceSum(0, a.numel(), kElementGrain, [&](int64_t lo, int64_t hi) {
        double chunk = 0.0;
        for (int64_t i = lo; i < hi; ++i) {
          chunk += static_cast<double>(p[i]) * static_cast<double>(p[i]);
        }
        return chunk;
      });
  return static_cast<float>(std::sqrt(acc));
}

float L2Distance(const Tensor& a, const Tensor& b) {
  UNITS_CHECK_EQ(a.numel(), b.numel());
  const float* pa = a.data();
  const float* pb = b.data();
  const double acc =
      ParallelReduceSum(0, a.numel(), kElementGrain, [&](int64_t lo, int64_t hi) {
        double chunk = 0.0;
        for (int64_t i = lo; i < hi; ++i) {
          const double d =
              static_cast<double>(pa[i]) - static_cast<double>(pb[i]);
          chunk += d * d;
        }
        return chunk;
      });
  return static_cast<float>(std::sqrt(acc));
}

}  // namespace units::ops
