#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "base/string_util.h"

namespace units {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    UNITS_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::string out = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += std::to_string(shape[i]);
  }
  out += "]";
  return out;
}

bool SameShape(const Shape& a, const Shape& b) { return a == b; }

namespace {

std::atomic<int64_t> g_alloc_count{0};
std::atomic<int64_t> g_alloc_total{0};
std::atomic<int64_t> g_alloc_largest{0};

void RecordTensorAlloc(int64_t floats) {
  if (floats == 0) {
    return;  // empty tensors (e.g. default-constructed) carry no payload
  }
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_total.fetch_add(floats, std::memory_order_relaxed);
  int64_t prev = g_alloc_largest.load(std::memory_order_relaxed);
  while (prev < floats && !g_alloc_largest.compare_exchange_weak(
                              prev, floats, std::memory_order_relaxed)) {
  }
}

}  // namespace

TensorAllocStats GetTensorAllocStats() {
  TensorAllocStats stats;
  stats.allocations = g_alloc_count.load(std::memory_order_relaxed);
  stats.total_floats = g_alloc_total.load(std::memory_order_relaxed);
  stats.largest_floats = g_alloc_largest.load(std::memory_order_relaxed);
  return stats;
}

void ResetTensorAllocStats() {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_total.store(0, std::memory_order_relaxed);
  g_alloc_largest.store(0, std::memory_order_relaxed);
}

Tensor::Tensor() : Tensor(Shape{0}) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(NumElements(shape_)),
      storage_(std::make_shared<std::vector<float>>(
          static_cast<size_t>(numel_))) {
  RecordTensorAlloc(numel_);
}

Tensor Tensor::Zeros(Shape shape) {
  return Tensor(std::move(shape));  // vector value-initializes to 0
}

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(Shape shape, std::vector<float> values) {
  UNITS_CHECK_EQ(NumElements(shape), static_cast<int64_t>(values.size()));
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = static_cast<int64_t>(values.size());
  t.storage_ = std::make_shared<std::vector<float>>(std::move(values));
  RecordTensorAlloc(t.numel_);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t(Shape{});
  (*t.storage_)[0] = value;
  return t;
}

Tensor Tensor::RandNormal(Shape shape, Rng* rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::RandUniform(Shape shape, Rng* rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Arange(int64_t count, float start, float step) {
  Tensor t(Shape{count});
  float* p = t.data();
  for (int64_t i = 0; i < count; ++i) {
    p[i] = start + step * static_cast<float>(i);
  }
  return t;
}

Tensor Tensor::ViewInto(const Tensor& base, int64_t offset, Shape shape) {
  const int64_t n = NumElements(shape);
  UNITS_CHECK_GE(offset, 0);
  UNITS_CHECK_LE(base.offset_ + offset + n,
                 static_cast<int64_t>(base.storage_->size()));
  Tensor view;
  view.shape_ = std::move(shape);
  view.numel_ = n;
  view.offset_ = base.offset_ + offset;
  view.storage_ = base.storage_;
  return view;
}

int64_t Tensor::dim(int axis) const {
  if (axis < 0) {
    axis += ndim();
  }
  UNITS_CHECK(axis >= 0 && axis < ndim());
  return shape_[static_cast<size_t>(axis)];
}

int64_t Tensor::Offset(const std::vector<int64_t>& idx) const {
  UNITS_CHECK_EQ(static_cast<int>(idx.size()), ndim());
  int64_t offset = 0;
  int64_t stride = 1;
  for (int axis = ndim() - 1; axis >= 0; --axis) {
    const int64_t i = idx[static_cast<size_t>(axis)];
    UNITS_CHECK(i >= 0 && i < shape_[static_cast<size_t>(axis)]);
    offset += i * stride;
    stride *= shape_[static_cast<size_t>(axis)];
  }
  return offset;
}

float& Tensor::At(std::initializer_list<int64_t> idx) {
  return data()[Offset(std::vector<int64_t>(idx))];
}

float Tensor::At(std::initializer_list<int64_t> idx) const {
  return data()[Offset(std::vector<int64_t>(idx))];
}

Tensor Tensor::Reshape(Shape new_shape) const {
  UNITS_CHECK_EQ(NumElements(new_shape), numel_);
  Tensor view = *this;
  view.shape_ = std::move(new_shape);
  return view;
}

Tensor Tensor::Clone() const {
  Tensor copy;
  copy.shape_ = shape_;
  copy.numel_ = numel_;
  copy.storage_ =
      std::make_shared<std::vector<float>>(data(), data() + numel_);
  return copy;
}

void Tensor::Fill(float value) {
  std::fill(data(), data() + numel_, value);
}

void Tensor::CopyDataFrom(const Tensor& src) {
  UNITS_CHECK_EQ(numel_, src.numel_);
  std::copy(src.data(), src.data() + numel_, data());
}

namespace {

void PrintRec(const Tensor& t, int axis, std::vector<int64_t>* idx,
              int max_per_dim, std::ostringstream* out) {
  if (axis == t.ndim()) {
    *out << t.data()[t.Offset(*idx)];
    return;
  }
  *out << "[";
  const int64_t n = t.shape()[static_cast<size_t>(axis)];
  const int64_t shown = std::min<int64_t>(n, max_per_dim);
  for (int64_t i = 0; i < shown; ++i) {
    if (i > 0) {
      *out << ", ";
    }
    idx->push_back(i);
    PrintRec(t, axis + 1, idx, max_per_dim, out);
    idx->pop_back();
  }
  if (shown < n) {
    *out << ", ...(" << n - shown << " more)";
  }
  *out << "]";
}

}  // namespace

std::string Tensor::ToString(int max_per_dim) const {
  std::ostringstream out;
  out << "Tensor" << ShapeToString(shape_) << " ";
  if (ndim() == 0) {
    out << data()[0];
  } else {
    std::vector<int64_t> idx;
    PrintRec(*this, 0, &idx, max_per_dim, &out);
  }
  return out.str();
}

}  // namespace units
