#include "tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "base/check.h"
#include "base/parallel.h"
#include "tensor/gemm.h"

namespace units::quant {

namespace {

using ::units::base::ParallelFor;

int32_t ClampRound(float v, int32_t lo, int32_t hi) {
  // Clamp in the float domain: lrintf on values beyond int32 range is
  // undefined, and narrowing its long result can wrap back inside the
  // clamp bounds. The bounds here are small ints, exactly representable.
  // NaN compares false everywhere, so std::max pins it to `lo`.
  const float c = std::min(static_cast<float>(hi),
                           std::max(static_cast<float>(lo), v));
  return static_cast<int32_t>(std::lrintf(c));
}

}  // namespace

QuantizedLinearWeights QuantizeLinearWeight(const Tensor& weight,
                                            const Tensor* bias) {
  UNITS_CHECK_EQ(weight.ndim(), 2);
  const int64_t in = weight.dim(0);
  const int64_t out = weight.dim(1);
  UNITS_CHECK_LE(in, gemm::kInt8MaxK);
  QuantizedLinearWeights w;
  w.in_features = in;
  w.out_features = out;
  w.qweight.assign(static_cast<size_t>(in * out), 0);
  w.col_scale.assign(static_cast<size_t>(out), 1.0f);
  const float* wd = weight.data();
  for (int64_t j = 0; j < out; ++j) {
    float absmax = 0.0f;
    for (int64_t p = 0; p < in; ++p) {
      absmax = std::max(absmax, std::fabs(wd[p * out + j]));
    }
    // absmax == 0: the channel is all zeros; any scale maps it to zeros.
    const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
    const float inv = 1.0f / scale;
    w.col_scale[static_cast<size_t>(j)] = scale;
    for (int64_t p = 0; p < in; ++p) {
      w.qweight[static_cast<size_t>(p * out + j)] = static_cast<int8_t>(
          ClampRound(wd[p * out + j] * inv, -127, 127));
    }
  }
  w.packed = gemm::PackBInt8(w.qweight.data(), out, in, out);
  if (bias != nullptr) {
    UNITS_CHECK_EQ(bias->numel(), out);
    w.has_bias = true;
    w.bias.assign(bias->data(), bias->data() + out);
  }
  return w;
}

Tensor DequantizeLinearWeight(const QuantizedLinearWeights& w) {
  Tensor t = Tensor::Zeros({w.in_features, w.out_features});
  float* d = t.data();
  for (int64_t p = 0; p < w.in_features; ++p) {
    for (int64_t j = 0; j < w.out_features; ++j) {
      d[p * w.out_features + j] =
          static_cast<float>(w.qweight[static_cast<size_t>(
              p * w.out_features + j)]) *
          w.col_scale[static_cast<size_t>(j)];
    }
  }
  return t;
}

void QuantizeActivationRows(const float* x, int64_t rows, int64_t cols,
                            uint8_t* q, float* row_scale, int32_t* row_zero) {
  if (rows <= 0 || cols <= 0) {
    return;
  }
  const int64_t grain = std::max<int64_t>(
      1, gemm::kGrainFlops / std::max<int64_t>(1, cols));
  ParallelFor(0, rows, grain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* xr = x + i * cols;
      uint8_t* qr = q + i * cols;
      float lo = xr[0];
      float hi = xr[0];
      for (int64_t c = 1; c < cols; ++c) {
        lo = std::min(lo, xr[c]);
        hi = std::max(hi, xr[c]);
      }
      if (hi == lo) {
        // Constant row: represent the value exactly as scale * (q - z).
        const float v = lo;
        if (v == 0.0f) {
          row_scale[i] = 1.0f;
          row_zero[i] = 0;
          std::memset(qr, 0, static_cast<size_t>(cols));
        } else {
          row_scale[i] = std::fabs(v);
          row_zero[i] = v > 0.0f ? 0 : 1;
          std::memset(qr, v > 0.0f ? 1 : 0, static_cast<size_t>(cols));
        }
        continue;
      }
      // Extend the range to include zero: the affine code for 0 must land
      // inside [0, kActQMax], otherwise rows that don't straddle zero (all
      // positive or all negative) get a clamped zero point and every value
      // saturates to the same code. With lo <= 0 <= hi, -lo/scale lies in
      // [0, kActQMax] by construction, which also preserves the z*colsum
      // int32 overflow bound in the GEMM epilogue.
      lo = std::min(lo, 0.0f);
      hi = std::max(hi, 0.0f);
      // Guard against a denormal spread whose reciprocal overflows to inf.
      const float scale =
          std::max((hi - lo) / static_cast<float>(gemm::kActQMax),
                   std::numeric_limits<float>::min());
      const float inv = 1.0f / scale;
      const int32_t zero = ClampRound(-lo * inv, 0, gemm::kActQMax);
      row_scale[i] = scale;
      row_zero[i] = zero;
      for (int64_t c = 0; c < cols; ++c) {
        qr[c] = static_cast<uint8_t>(
            ClampRound(xr[c] * inv + static_cast<float>(zero), 0,
                       gemm::kActQMax));
      }
    }
  });
}

void QuantizedLinearForward(const float* x, int64_t rows,
                            const QuantizedLinearWeights& w, float* y) {
  if (rows <= 0 || w.out_features <= 0) {
    return;
  }
  const int64_t in = w.in_features;
  std::vector<uint8_t> qx(static_cast<size_t>(rows * in));
  std::vector<float> row_scale(static_cast<size_t>(rows));
  std::vector<int32_t> row_zero(static_cast<size_t>(rows));
  QuantizeActivationRows(x, rows, in, qx.data(), row_scale.data(),
                         row_zero.data());
  gemm::Int8GemmDequant(rows, w.out_features, qx.data(), in, row_zero.data(),
                        row_scale.data(), w.packed, w.col_scale.data(),
                        w.has_bias ? w.bias.data() : nullptr, y);
}

}  // namespace units::quant
