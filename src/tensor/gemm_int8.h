#ifndef UNITS_TENSOR_GEMM_INT8_H_
#define UNITS_TENSOR_GEMM_INT8_H_

#include <cstdint>
#include <vector>

/// Packed int8 GEMM for quantized serving (DESIGN.md §17). Same BLIS-style
/// structure as the fp32 engine in tensor/gemm.{h,cc}: packed operand
/// panels, a register-blocked micro-kernel, parallelism at whole row
/// macro-tile granularity. Because the accumulator is exact int32
/// arithmetic, results are bitwise identical across thread counts and
/// across the AVX2 / generic micro-kernels by construction.
///
/// Operand contract (chosen so the AVX2 `maddubs` pipeline is exact):
///
///   A: uint8, values in [0, kActQMax=64]  (per-row asymmetric activations)
///   B: int8, any value in [-128, 127]     (per-channel symmetric weights)
///   C: int32 = sum_k a[i][k] * b[k][j]    (exact; K <= kInt8MaxK)
///
/// `_mm256_maddubs_epi16` multiplies u8 x s8 pairs and saturating-adds
/// adjacent int16 products. With a <= 64 each pair sum is within
/// [-16384, 16256] (no saturation), and the sum of TWO maddubs results is
/// within [-32768, 32512] — still exact in int16. That lets the kernel
/// consume eight k values (one "octet") per accumulator update:
///
///   t0 = maddubs(a[k0..k3] bcast, Bq0)    // 16 x int16
///   t1 = maddubs(a[k4..k7] bcast, Bq1)
///   acc += pmaddwd(t0 + t1, ones)         // 8 x int32, exact
///
/// i.e. 64 multiply-adds per 5 instructions — comfortably above 2x the
/// fp32 FMA kernel's arithmetic density. Weights keep the full s8 range;
/// activations trade 1 bit for exactness (task-metric parity is enforced
/// by tests/test_quantize.cc, the accuracy contract for serving).

namespace units::gemm {

// ---------------------------------------------------------------------------
// Tile constants
// ---------------------------------------------------------------------------

/// Micro-kernel register block: 4 rows x 16 int32 columns = 8 ymm
/// accumulators, plus 4 B loads and 1 A broadcast per octet step.
inline constexpr int64_t kMR8 = 4;
inline constexpr int64_t kNR8 = 16;

/// k values consumed per packed octet (two maddubs quads).
inline constexpr int64_t kKO8 = 8;

/// Rows per parallel macro-tile (multiple of kMR8, mirrors fp32 kMC).
inline constexpr int64_t kMC8 = 96;

/// Quantized activations live in [0, kActQMax]; the exactness proof above
/// needs a <= 64. quant::QuantizeActivationRows honors this ceiling.
inline constexpr int32_t kActQMax = 64;

/// Largest K for which the int32 accumulator provably cannot overflow:
/// |sum| <= K * 64 * 128 = K * 2^13 < 2^31 for K < 2^18.
inline constexpr int64_t kInt8MaxK = int64_t{1} << 17;

static_assert(kMC8 % kMR8 == 0, "macro row tile must hold whole micro tiles");

// ---------------------------------------------------------------------------
// Gating / dispatch
// ---------------------------------------------------------------------------

/// UNITS_GEMM_INT8=off routes quantized Linear layers back to the fp32
/// weights (the runnable oracle). Read per call so tests and operators can
/// flip it at runtime; anything other than "off" enables the path.
bool Int8GemmEnabled();

/// Name of the int8 micro-kernel dispatched on this machine:
/// "avx2" or "generic".
const char* Int8MicroKernelName();

// ---------------------------------------------------------------------------
// Packed weights
// ---------------------------------------------------------------------------

/// B[k,n] packed once at quantize time (weights are static at serving):
/// per 16-column tile, per k-octet, 128 bytes laid out as
///   [cols 0-7, k0..k3][cols 0-7, k4..k7][cols 8-15, k0..k3][cols 8-15, k4..k7]
/// with each 32-byte group holding eight 4-byte column quads — exactly the
/// operand shape maddubs wants. Edges are zero-padded (zeros contribute
/// nothing, so padded and unpadded results match exactly). `colsum[j]` is
/// sum_k b[k][j], used by the dequant epilogue's zero-point correction.
struct PackedInt8B {
  int64_t k = 0;
  int64_t n = 0;
  std::vector<int8_t> data;
  std::vector<int32_t> colsum;
};

/// Packs ldb-strided B[k,n] (row-major; pass ldb=n for contiguous).
PackedInt8B PackBInt8(const int8_t* b, int64_t ldb, int64_t k, int64_t n);

// ---------------------------------------------------------------------------
// GEMM entry points
// ---------------------------------------------------------------------------

/// C[m,n] (int32, overwritten) = A[m,k] * B. A is lda-strided u8 with
/// values <= kActQMax. Parallel over row macro-tiles; exact, so bitwise
/// thread-count-independent.
void Int8Gemm(int64_t m, int64_t n, const uint8_t* a, int64_t lda,
              const PackedInt8B& b, int32_t* c);

/// Fused dequantize epilogue: the int32 micro-tile never leaves registers/
/// stack before being scaled to fp32:
///   y[i,j] = row_scale[i] * col_scale[j] * (S[i,j] - row_zero[i]*colsum[j])
///            + (bias ? bias[j] : 0)
/// where S is the exact int32 product above.
void Int8GemmDequant(int64_t m, int64_t n, const uint8_t* a, int64_t lda,
                     const int32_t* row_zero, const float* row_scale,
                     const PackedInt8B& b, const float* col_scale,
                     const float* bias, float* y);

/// Naive i-k-j int32 reference loop over unpacked operands (lda/ldb-strided)
/// — the oracle for tests/test_gemm_int8.cc.
void NaiveInt8Gemm(int64_t m, int64_t k, int64_t n, const uint8_t* a,
                   int64_t lda, const int8_t* b, int64_t ldb, int32_t* c);

namespace detail {

/// Micro-kernel contract: overwrite the full kMR8 x kNR8 int32 tile
/// C[ldc-strided] with the product of packed panels: a = ko octets of
/// [4 rows x 8 bytes], b = ko octets of the 128-byte layout above.
using Int8MicroKernelFn = void (*)(int64_t ko, const uint8_t* a,
                                   const int8_t* b, int32_t* c, int64_t ldc);

void Int8MicroKernelGeneric(int64_t ko, const uint8_t* a, const int8_t* b,
                            int32_t* c, int64_t ldc);

// Defined in gemm_int8_avx2.cc; stubs when built without AVX2.
bool Int8Avx2KernelCompiled();
bool Int8Avx2Supported();
void Int8MicroKernelAvx2(int64_t ko, const uint8_t* a, const int8_t* b,
                         int32_t* c, int64_t ldc);

/// Packs A[mc x k] (lda-strided u8) for one macro-tile into per-micro-tile
/// octet slabs: for each 4-row tile, ko groups of [row][8 bytes] (rows
/// beyond mc and k values beyond k zero-padded). Exposed for tests.
void PackAInt8(const uint8_t* a, int64_t lda, int64_t mc, int64_t k,
               uint8_t* out);

}  // namespace detail

}  // namespace units::gemm

#endif  // UNITS_TENSOR_GEMM_INT8_H_
