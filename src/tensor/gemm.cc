#include "tensor/gemm.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/parallel.h"

#if defined(__GNUC__) || defined(__clang__)
#define UNITS_GEMM_RESTRICT __restrict__
#else
#define UNITS_GEMM_RESTRICT
#endif

namespace units::gemm {

namespace {

using ::units::base::ParallelFor;

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

/// True when UNITS_GEMM=generic: keep blocking but skip the AVX2 kernel.
bool ForceGenericMicroKernel() {
  static const bool force = [] {
    const char* e = std::getenv("UNITS_GEMM");
    return e != nullptr && std::string(e) == "generic";
  }();
  return force;
}

detail::MicroKernelFn ActiveMicroKernel() {
  static const detail::MicroKernelFn fn = [] {
    if (!ForceGenericMicroKernel() && detail::Avx2KernelCompiled() &&
        detail::Avx2Supported()) {
      return &detail::MicroKernelAvx2;
    }
    return &detail::MicroKernelGeneric;
  }();
  return fn;
}

/// Packs A[mc x kc] (lda-strided) into per-micro-tile slabs: for each kMR-row
/// tile, kc consecutive groups of kMR values (rows beyond mc zero-padded) so
/// the micro-kernel streams the panel linearly.
void PackA(const float* UNITS_GEMM_RESTRICT a, int64_t lda, int64_t mc,
           int64_t kc, float* UNITS_GEMM_RESTRICT out) {
  for (int64_t ir = 0; ir < mc; ir += kMR) {
    const int64_t mr = std::min<int64_t>(kMR, mc - ir);
    for (int64_t p = 0; p < kc; ++p) {
      for (int64_t i = 0; i < mr; ++i) {
        out[p * kMR + i] = a[(ir + i) * lda + p];
      }
      for (int64_t i = mr; i < kMR; ++i) {
        out[p * kMR + i] = 0.0f;
      }
    }
    out += kc * kMR;
  }
}

/// Packs B[kc x nc] (ldb-strided) into per-micro-tile slabs: for each kNR-col
/// tile, kc consecutive groups of kNR values (cols beyond nc zero-padded).
void PackB(const float* UNITS_GEMM_RESTRICT b, int64_t ldb, int64_t kc,
           int64_t nc, float* UNITS_GEMM_RESTRICT out) {
  for (int64_t jr = 0; jr < nc; jr += kNR) {
    const int64_t nr = std::min<int64_t>(kNR, nc - jr);
    for (int64_t p = 0; p < kc; ++p) {
      const float* brow = b + p * ldb + jr;
      for (int64_t j = 0; j < nr; ++j) {
        out[p * kNR + j] = brow[j];
      }
      for (int64_t j = nr; j < kNR; ++j) {
        out[p * kNR + j] = 0.0f;
      }
    }
    out += kc * kNR;
  }
}

/// One packed [mc x kc] x [kc x nc] product into the ldc-strided C block.
/// Full tiles go straight to C; edge tiles compute into a local buffer and
/// copy only the valid region (panel zero-padding contributes zeros, so the
/// per-element accumulation order still matches full tiles).
void MacroKernel(detail::MicroKernelFn micro,
                 const float* UNITS_GEMM_RESTRICT apanel,
                 const float* UNITS_GEMM_RESTRICT bpanel, int64_t mc,
                 int64_t nc, int64_t kc, float* UNITS_GEMM_RESTRICT c,
                 int64_t ldc, bool accumulate) {
  alignas(32) float tile[kMR * kNR];
  const int64_t mtiles = CeilDiv(mc, kMR);
  const int64_t ntiles = CeilDiv(nc, kNR);
  for (int64_t jt = 0; jt < ntiles; ++jt) {
    const int64_t jr = jt * kNR;
    const int64_t nr = std::min<int64_t>(kNR, nc - jr);
    const float* bp = bpanel + jt * kc * kNR;
    for (int64_t it = 0; it < mtiles; ++it) {
      const int64_t ir = it * kMR;
      const int64_t mr = std::min<int64_t>(kMR, mc - ir);
      const float* ap = apanel + it * kc * kMR;
      float* ctile = c + ir * ldc + jr;
      if (mr == kMR && nr == kNR) {
        micro(kc, ap, bp, ctile, ldc, accumulate);
        continue;
      }
      micro(kc, ap, bp, tile, kNR, /*accumulate=*/false);
      for (int64_t i = 0; i < mr; ++i) {
        for (int64_t j = 0; j < nr; ++j) {
          if (accumulate) {
            ctile[i * ldc + j] += tile[i * kNR + j];
          } else {
            ctile[i * ldc + j] = tile[i * kNR + j];
          }
        }
      }
    }
  }
}

/// Serial blocked GEMM for one matrix, packing into caller-owned scratch.
/// Used per (batch, row-tile) work item by BatchedGemm.
void GemmRowTileSerial(detail::MicroKernelFn micro, const float* a,
                       const float* b, float* c, int64_t ic, int64_t m,
                       int64_t k, int64_t n, std::vector<float>* apanel,
                       std::vector<float>* bpanel) {
  const int64_t mc = std::min<int64_t>(kMC, m - ic);
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min<int64_t>(kNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min<int64_t>(kKC, k - pc);
      PackB(b + pc * n + jc, n, kc, nc, bpanel->data());
      PackA(a + ic * k + pc, k, mc, kc, apanel->data());
      MacroKernel(micro, apanel->data(), bpanel->data(), mc, nc, kc,
                  c + ic * n + jc, n, /*accumulate=*/pc > 0);
    }
  }
}

size_t PanelAFloats(int64_t m, int64_t k) {
  const int64_t mc = std::min<int64_t>(kMC, CeilDiv(m, kMR) * kMR);
  return static_cast<size_t>(mc * std::min<int64_t>(kKC, k));
}

size_t PanelBFloats(int64_t k, int64_t n) {
  const int64_t nc =
      std::min<int64_t>(kNC, CeilDiv(n, kNR) * kNR);
  return static_cast<size_t>(nc * std::min<int64_t>(kKC, k));
}

}  // namespace

int64_t TileGrain(int64_t flops_per_tile) {
  return std::max<int64_t>(
      1, kGrainFlops / std::max<int64_t>(1, flops_per_tile));
}

Kernel ActiveKernel() {
  static const Kernel kernel = [] {
    const char* e = std::getenv("UNITS_GEMM");
    if (e != nullptr && std::string(e) == "naive") {
      return Kernel::kNaive;
    }
    return Kernel::kBlocked;
  }();
  return kernel;
}

const char* MicroKernelName() {
  return ActiveMicroKernel() == &detail::MicroKernelAvx2 ? "avx2" : "generic";
}

void Gemm(int64_t m, int64_t k, int64_t n, const float* a, const float* b,
          float* c) {
  if (m <= 0 || n <= 0) {
    return;
  }
  if (k <= 0) {
    std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
    return;
  }
  const detail::MicroKernelFn micro = ActiveMicroKernel();
  const int64_t row_tiles = CeilDiv(m, kMC);
  std::vector<float> bpanel(PanelBFloats(k, n));
  // jc/pc run serially on the caller; the packed B panel is read-only while
  // the pool fans out over row macro-tiles. Every output element belongs to
  // exactly one row tile and accumulates in ascending pc order, so the
  // result is bitwise thread-count-independent.
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min<int64_t>(kNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min<int64_t>(kKC, k - pc);
      PackB(b + pc * n + jc, n, kc, nc, bpanel.data());
      const bool accumulate = pc > 0;
      ParallelFor(0, row_tiles, /*grain=*/1, [&](int64_t t0, int64_t t1) {
        std::vector<float> apanel(static_cast<size_t>(kMC * kc));
        for (int64_t t = t0; t < t1; ++t) {
          const int64_t ic = t * kMC;
          const int64_t mc = std::min<int64_t>(kMC, m - ic);
          PackA(a + ic * k + pc, k, mc, kc, apanel.data());
          MacroKernel(micro, apanel.data(), bpanel.data(), mc, nc, kc,
                      c + ic * n + jc, n, accumulate);
        }
      });
    }
  }
}

void BatchedGemm(int64_t batch, int64_t m, int64_t k, int64_t n,
                 const float* a, const float* b, float* c) {
  if (batch <= 0 || m <= 0 || n <= 0) {
    return;
  }
  if (k <= 0) {
    std::memset(c, 0, static_cast<size_t>(batch * m * n) * sizeof(float));
    return;
  }
  const detail::MicroKernelFn micro = ActiveMicroKernel();
  const int64_t row_tiles = CeilDiv(m, kMC);
  // Work item = one row macro-tile of one batch; each packs its own panels,
  // so items are independent and any grouping into chunks gives identical
  // results. Grain keeps tiny batched products (attention heads on short
  // windows) from paying dispatch per item.
  const int64_t grain = TileGrain(std::min<int64_t>(kMC, m) * k * n);
  ParallelFor(0, batch * row_tiles, grain, [&](int64_t w0, int64_t w1) {
    std::vector<float> apanel(PanelAFloats(m, k));
    std::vector<float> bpanel(PanelBFloats(k, n));
    for (int64_t w = w0; w < w1; ++w) {
      const int64_t bi = w / row_tiles;
      const int64_t ic = (w % row_tiles) * kMC;
      GemmRowTileSerial(micro, a + bi * m * k, b + bi * k * n, c + bi * m * n,
                        ic, m, k, n, &apanel, &bpanel);
    }
  });
}

void NaiveGemm(int64_t m, int64_t k, int64_t n, const float* a, const float* b,
               float* c) {
  if (m <= 0 || n <= 0) {
    return;
  }
  std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
  if (k <= 0) {
    return;
  }
  // The PR-1 kernel, verbatim: i-k-j streaming over b and c rows, parallel
  // over output rows (grain mirrors the retired RowGrain: ~kGrainFlops
  // multiply-adds per chunk).
  const int64_t grain =
      std::max<int64_t>(1, kGrainFlops / std::max<int64_t>(1, k * n));
  ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0f) {
          continue;
        }
        const float* brow = b + kk * n;
        for (int64_t j = 0; j < n; ++j) {
          crow[j] += aik * brow[j];
        }
      }
    }
  });
}

namespace detail {

void MicroKernelGeneric(int64_t kc, const float* UNITS_GEMM_RESTRICT a,
                        const float* UNITS_GEMM_RESTRICT b,
                        float* UNITS_GEMM_RESTRICT c, int64_t ldc,
                        bool accumulate) {
  alignas(32) float acc[kMR][kNR] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* UNITS_GEMM_RESTRICT ap = a + p * kMR;
    const float* UNITS_GEMM_RESTRICT bp = b + p * kNR;
    for (int64_t i = 0; i < kMR; ++i) {
      const float av = ap[i];
#pragma omp simd
      for (int64_t j = 0; j < kNR; ++j) {
        acc[i][j] += av * bp[j];
      }
    }
  }
  for (int64_t i = 0; i < kMR; ++i) {
    float* crow = c + i * ldc;
    if (accumulate) {
#pragma omp simd
      for (int64_t j = 0; j < kNR; ++j) {
        crow[j] += acc[i][j];
      }
    } else {
#pragma omp simd
      for (int64_t j = 0; j < kNR; ++j) {
        crow[j] = acc[i][j];
      }
    }
  }
}

}  // namespace detail

}  // namespace units::gemm
