#ifndef UNITS_TENSOR_QUANT_H_
#define UNITS_TENSOR_QUANT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/gemm_int8.h"
#include "tensor/tensor.h"

/// Post-training quantization for serving (DESIGN.md §17).
///
/// Scheme:
///   weights     per-output-channel symmetric int8 in [-127, 127]
///               (col_scale[j] = absmax_j / 127, fp32)
///   activations per-row asymmetric uint8 in [0, gemm::kActQMax=64]
///               (row_scale[i] = (max_i - min_i) / 64, zero point z_i)
///
/// y[i,j] = row_scale[i] * col_scale[j] * (S[i,j] - z_i * colsum[j]) + b[j]
/// with S the exact int32 GEMM (tensor/gemm_int8.h) — so quantization is
/// the only source of error, and the whole path is deterministic: the same
/// fp32 weights always quantize to the same int8 weights, and the same
/// input always produces the same output bits at any thread count.

namespace units::quant {

/// Quantized weights (plus packed form and fp32 bias) for one Linear layer.
/// The fp32 master weights stay on the module — UNITS_GEMM_INT8=off falls
/// back to them, keeping the fp32 path as the runnable oracle.
struct QuantizedLinearWeights {
  int64_t in_features = 0;
  int64_t out_features = 0;
  std::vector<int8_t> qweight;    ///< [in, out] row-major (round-trip/tests)
  std::vector<float> col_scale;   ///< [out] per-channel scales
  gemm::PackedInt8B packed;       ///< qweight pre-packed for the kernel
  bool has_bias = false;
  std::vector<float> bias;        ///< [out] fp32 bias (empty if !has_bias)
};

/// Per-output-channel symmetric quantization of weight [in, out] (+ bias).
/// Deterministic (pure function of the fp32 values), so re-quantizing after
/// a save/load restart reproduces the exact same int8 model.
QuantizedLinearWeights QuantizeLinearWeight(const Tensor& weight,
                                            const Tensor* bias);

/// Dequantized copy q * col_scale as an [in, out] tensor — for round-trip
/// error-bound tests.
Tensor DequantizeLinearWeight(const QuantizedLinearWeights& w);

/// Per-row asymmetric u8 quantization of x[rows, cols] (row-major, lda=cols)
/// into q (u8 in [0, kActQMax]), row_scale and row_zero. Constant rows are
/// represented exactly. Parallel over rows, bitwise deterministic.
void QuantizeActivationRows(const float* x, int64_t rows, int64_t cols,
                            uint8_t* q, float* row_scale, int32_t* row_zero);

/// Full quantized Linear: quantize activations per row, exact int8 GEMM,
/// fused dequantize + bias epilogue. x is [rows, in], y is [rows, out].
void QuantizedLinearForward(const float* x, int64_t rows,
                            const QuantizedLinearWeights& w, float* y);

}  // namespace units::quant

#endif  // UNITS_TENSOR_QUANT_H_
