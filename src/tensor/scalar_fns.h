#ifndef UNITS_TENSOR_SCALAR_FNS_H_
#define UNITS_TENSOR_SCALAR_FNS_H_

#include <cmath>

/// Scalar elementwise kernels shared by the dynamic tensor ops
/// (tensor/tensor_ops.cc), the autograd wrappers, and the plan executor's
/// fused sweeps (plan/fusion_pass.cc). Keeping one definition per function
/// is what makes a fused sweep bitwise identical to the unfused op chain:
/// both paths inline exactly the same float expression, so per-element
/// rounding (including any compiler FMA contraction) matches. Do not
/// duplicate these formulas elsewhere.

namespace units::scalar {

inline float Add(float x, float y) { return x + y; }
inline float Sub(float x, float y) { return x - y; }
inline float Mul(float x, float y) { return x * y; }
inline float Div(float x, float y) { return x / y; }

inline float Neg(float x) { return -x; }
inline float Exp(float x) { return std::exp(x); }
inline float Log(float x) { return std::log(x); }
inline float Sqrt(float x) { return std::sqrt(x); }
inline float Abs(float x) { return std::fabs(x); }
inline float Tanh(float x) { return std::tanh(x); }
inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
inline float Relu(float x) { return x > 0.0f ? x : 0.0f; }
inline float Square(float x) { return x * x; }

/// GELU, tanh approximation — the exact expression the GELU backward in
/// autograd/ops.cc differentiates.
inline float Gelu(float x) {
  const float kC = 0.7978845608f;  // sqrt(2/pi)
  return 0.5f * x * (1.0f + std::tanh(kC * (x + 0.044715f * x * x * x)));
}

inline float AddScalar(float x, float s) { return x + s; }
inline float MulScalar(float x, float s) { return x * s; }
inline float PowScalar(float x, float p) { return std::pow(x, p); }
inline float LeakyRelu(float x, float slope) {
  return x > 0.0f ? x : slope * x;
}

}  // namespace units::scalar

#endif  // UNITS_TENSOR_SCALAR_FNS_H_
