#ifndef UNITS_TENSOR_GEMM_H_
#define UNITS_TENSOR_GEMM_H_

#include <cstdint>

/// Cache-blocked SIMD GEMM (BLIS-style loop nest around a register-blocked
/// micro-kernel). This is the single dense-matmul engine behind
/// ops::MatMul / ops::BatchedMatMul and therefore behind every encoder
/// template and task head (linear layers, attention scores/context, the
/// im2col convolution product).
///
/// Structure (see DESIGN.md §10):
///
///   for jc in [0, N) step kNC:              // B column panel
///     for pc in [0, K) step kKC:            // depth panel -> pack B
///       for ic in [0, M) step kMC:          // row macro-tile -> pack A
///         for jr in [0, nc) step kNR:       // micro columns
///           for ir in [0, mc) step kMR:     // micro rows
///             micro-kernel: C[kMR x kNR] (+)= Apanel * Bpanel
///
/// Parallelism lives at the `ic` macro-tile level: ParallelFor splits the
/// row-tile index range, so a macro-tile (and hence every output element)
/// is owned by exactly one chunk and the per-element accumulation order
/// (ascending pc, ascending k inside a panel) never depends on the thread
/// count — the blocked path is bitwise identical at 1 or 64 threads.
///
/// The micro-kernel is compiler-vectorized (restrict + `#pragma omp simd`)
/// with a runtime-dispatched AVX2+FMA variant (tensor/gemm_avx2.cc, its own
/// translation unit built with -mavx2 -mfma) picked when the CPU supports
/// it. `UNITS_GEMM=naive` routes MatMul/BatchedMatMul back to the PR-1
/// naive loop; `UNITS_GEMM=generic` keeps blocking but forces the portable
/// micro-kernel.

namespace units::gemm {

// ---------------------------------------------------------------------------
// Tile constants (exposed so tests and grain computations derive from them)
// ---------------------------------------------------------------------------

/// Micro-kernel register block: kMR rows of A against kNR columns of B.
/// 6x16 keeps 12 AVX2 accumulators live (plus 2 B loads and 1 A broadcast)
/// within the 16 ymm registers.
inline constexpr int64_t kMR = 6;
inline constexpr int64_t kNR = 16;

/// Macro tiles: kMC rows of A per packed panel (L2-resident, multiple of
/// kMR), kKC depth per panel (packed A slab ~96 KiB), kNC columns of B per
/// packed panel (L3-resident, multiple of kNR).
inline constexpr int64_t kMC = 96;
inline constexpr int64_t kKC = 256;
inline constexpr int64_t kNC = 512;

static_assert(kMC % kMR == 0, "macro row tile must hold whole micro tiles");
static_assert(kNC % kNR == 0, "macro col panel must hold whole micro tiles");

/// Minimum scalar multiply-adds a ParallelFor chunk should carry before the
/// loop is split across the pool (matches tensor_ops' kElementGrain scale).
inline constexpr int64_t kGrainFlops = 1 << 15;

/// Grain for ParallelFor over macro-tile (or batch x macro-tile) indices:
/// at least one tile, and enough tiles to amortize dispatch for tiny GEMMs.
/// The partition unit is a whole tile, so — unlike the retired per-row
/// RowGrain scheme — a chunk boundary can never split a macro-tile.
int64_t TileGrain(int64_t flops_per_tile);

// ---------------------------------------------------------------------------
// Kernel selection
// ---------------------------------------------------------------------------

enum class Kernel {
  kBlocked,  ///< cache-blocked micro-kernel path (default)
  kNaive,    ///< PR-1 i-k-j loop, kept as oracle / escape hatch
};

/// Reads UNITS_GEMM once: "naive" selects the oracle loop, anything else
/// (including "generic", which only affects the micro-kernel) is blocked.
Kernel ActiveKernel();

/// Name of the micro-kernel the blocked path dispatches to on this machine:
/// "avx2" or "generic".
const char* MicroKernelName();

// ---------------------------------------------------------------------------
// GEMM entry points (row-major, contiguous, float32)
// ---------------------------------------------------------------------------

/// C[M,N] = A[M,K] * B[K,N]. Overwrites C (K == 0 zero-fills). Deterministic
/// across thread counts; parallel over row macro-tiles.
void Gemm(int64_t m, int64_t k, int64_t n, const float* a, const float* b,
          float* c);

/// `batch` independent GEMMs over contiguous [B,M,K] x [B,K,N] -> [B,M,N].
/// Parallel over (batch, row macro-tile) pairs.
void BatchedGemm(int64_t batch, int64_t m, int64_t k, int64_t n,
                 const float* a, const float* b, float* c);

/// The PR-1 naive i-k-j reference loop (row-parallel, deterministic). Kept
/// compiled in as the oracle for tests and the UNITS_GEMM=naive hatch.
void NaiveGemm(int64_t m, int64_t k, int64_t n, const float* a, const float* b,
               float* c);

namespace detail {

/// Micro-kernel contract: accumulate (or overwrite, if !accumulate) the
/// full kMR x kNR tile C[ldc-strided] with Apanel[kc x kMR] * Bpanel[kc x
/// kNR]. Panels are packed and zero-padded to full tiles by the caller.
using MicroKernelFn = void (*)(int64_t kc, const float* a, const float* b,
                               float* c, int64_t ldc, bool accumulate);

void MicroKernelGeneric(int64_t kc, const float* a, const float* b, float* c,
                        int64_t ldc, bool accumulate);

// Defined in gemm_avx2.cc; stubs when the TU is built without AVX2+FMA.
bool Avx2KernelCompiled();
bool Avx2Supported();
void MicroKernelAvx2(int64_t kc, const float* a, const float* b, float* c,
                     int64_t ldc, bool accumulate);

}  // namespace detail

}  // namespace units::gemm

#endif  // UNITS_TENSOR_GEMM_H_
