// AVX2 int8 micro-kernel for the packed quantized GEMM. Like
// tensor/gemm_avx2.cc this translation unit is the only one built with
// -mavx2 (see src/CMakeLists.txt); gemm_int8.cc picks it at runtime via
// Int8Avx2Supported(), so the library baseline ISA is unchanged.
//
// Exactness: activations are u8 <= 64 (gemm::kActQMax), so each
// `maddubs` lane (two u8 x s8 products, saturating int16 add) is within
// [-16384, 16256] — below saturation — and the plain `paddw` of the two
// quad results stays within [-32768, 32512], exact in int16. `pmaddwd`
// against ones then widens to int32 losslessly. Every output is the exact
// integer dot product, bit-for-bit equal to the generic kernel and the
// naive oracle.

#include "tensor/gemm_int8.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace units::gemm::detail {

static_assert(kMR8 == 4 && kNR8 == 16 && kKO8 == 8,
              "the AVX2 int8 kernel is specialized for a 4x16x8 block");

bool Int8Avx2KernelCompiled() { return true; }

bool Int8Avx2Supported() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

namespace {

/// Broadcasts one 4-byte activation quad (k0..k3 of one row) across all
/// eight 32-bit lanes — the operand shape maddubs pairs against a packed
/// B quad group (eight columns x the same four k values).
inline __m256i BroadcastQuad(const uint8_t* p) {
  int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return _mm256_set1_epi32(v);
}

}  // namespace

void Int8MicroKernelAvx2(int64_t ko, const uint8_t* a, const int8_t* b,
                         int32_t* c, int64_t ldc) {
  // 4 rows x 16 cols = 8 int32 ymm accumulators; the 4 B quad groups, 2 A
  // broadcasts, and the ones vector fill out the register file.
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i c0a = _mm256_setzero_si256(), c0b = _mm256_setzero_si256();
  __m256i c1a = _mm256_setzero_si256(), c1b = _mm256_setzero_si256();
  __m256i c2a = _mm256_setzero_si256(), c2b = _mm256_setzero_si256();
  __m256i c3a = _mm256_setzero_si256(), c3b = _mm256_setzero_si256();
  for (int64_t o = 0; o < ko; ++o) {
    const int8_t* bp = b + o * kNR8 * kKO8;
    const __m256i b0q0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));
    const __m256i b0q1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 32));
    const __m256i b1q0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 64));
    const __m256i b1q1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 96));
    const uint8_t* ap = a + o * kMR8 * kKO8;
#define UNITS_INT8_ROW(acc_lo, acc_hi, row)                                  \
  {                                                                          \
    const __m256i aq0 = BroadcastQuad(ap + (row)*kKO8);                      \
    const __m256i aq1 = BroadcastQuad(ap + (row)*kKO8 + 4);                  \
    const __m256i lo = _mm256_add_epi16(_mm256_maddubs_epi16(aq0, b0q0),     \
                                        _mm256_maddubs_epi16(aq1, b0q1));    \
    const __m256i hi = _mm256_add_epi16(_mm256_maddubs_epi16(aq0, b1q0),     \
                                        _mm256_maddubs_epi16(aq1, b1q1));    \
    acc_lo = _mm256_add_epi32(acc_lo, _mm256_madd_epi16(lo, ones));          \
    acc_hi = _mm256_add_epi32(acc_hi, _mm256_madd_epi16(hi, ones));          \
  }
    UNITS_INT8_ROW(c0a, c0b, 0)
    UNITS_INT8_ROW(c1a, c1b, 1)
    UNITS_INT8_ROW(c2a, c2b, 2)
    UNITS_INT8_ROW(c3a, c3b, 3)
#undef UNITS_INT8_ROW
  }
  const auto store_row = [ldc](int32_t* crow, __m256i lo, __m256i hi) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow), lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + 8), hi);
    (void)ldc;
  };
  store_row(c + 0 * ldc, c0a, c0b);
  store_row(c + 1 * ldc, c1a, c1b);
  store_row(c + 2 * ldc, c2a, c2b);
  store_row(c + 3 * ldc, c3a, c3b);
}

}  // namespace units::gemm::detail

#else  // !__AVX2__

namespace units::gemm::detail {

bool Int8Avx2KernelCompiled() { return false; }
bool Int8Avx2Supported() { return false; }
void Int8MicroKernelAvx2(int64_t, const uint8_t*, const int8_t*, int32_t*,
                         int64_t) {}

}  // namespace units::gemm::detail

#endif
