#include "tensor/gemm_int8.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/parallel.h"
#include "tensor/gemm.h"

#if defined(__GNUC__) || defined(__clang__)
#define UNITS_GEMM_RESTRICT __restrict__
#else
#define UNITS_GEMM_RESTRICT
#endif

namespace units::gemm {

namespace {

using ::units::base::ParallelFor;

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

/// Bytes per packed A micro-tile octet ([4 rows][8 k]) and per packed B
/// micro-tile octet ([2 col halves][2 quads][8 cols][4 k]).
constexpr int64_t kAOctetBytes = kMR8 * kKO8;
constexpr int64_t kBOctetBytes = kNR8 * kKO8;

/// True when UNITS_GEMM_INT8=generic: keep the packed path but skip the
/// AVX2 micro-kernel (read once; the on/off gate below stays dynamic).
bool ForceGenericInt8MicroKernel() {
  static const bool force = [] {
    const char* e = std::getenv("UNITS_GEMM_INT8");
    return e != nullptr && std::string(e) == "generic";
  }();
  return force;
}

detail::Int8MicroKernelFn ActiveInt8MicroKernel() {
  static const detail::Int8MicroKernelFn fn = [] {
    if (!ForceGenericInt8MicroKernel() && detail::Int8Avx2KernelCompiled() &&
        detail::Int8Avx2Supported()) {
      return &detail::Int8MicroKernelAvx2;
    }
    return &detail::Int8MicroKernelGeneric;
  }();
  return fn;
}

/// Shared driver: parallel over row macro-tiles; packs A per tile into a
/// per-thread slab and hands each finished kMR8 x kNR8 int32 micro-tile to
/// `emit(tile, ic + ir, jr, mr, nr)`. Integer accumulation is exact, so
/// chunking never changes a single output bit.
template <typename EmitTile>
void Int8GemmDrive(int64_t m, int64_t n, const uint8_t* a, int64_t lda,
                   const PackedInt8B& b, const EmitTile& emit) {
  const detail::Int8MicroKernelFn micro = ActiveInt8MicroKernel();
  const int64_t k = b.k;
  const int64_t ko = CeilDiv(k, kKO8);
  const int64_t row_tiles = CeilDiv(m, kMC8);
  const int64_t ntiles = CeilDiv(n, kNR8);
  const int64_t grain = TileGrain(std::min<int64_t>(kMC8, m) * k * n);
  ParallelFor(0, row_tiles, grain, [&](int64_t t0, int64_t t1) {
    std::vector<uint8_t> apanel(
        static_cast<size_t>((kMC8 / kMR8) * ko * kAOctetBytes));
    alignas(32) int32_t tile[kMR8 * kNR8];
    for (int64_t t = t0; t < t1; ++t) {
      const int64_t ic = t * kMC8;
      const int64_t mc = std::min<int64_t>(kMC8, m - ic);
      detail::PackAInt8(a + ic * lda, lda, mc, k, apanel.data());
      const int64_t mtiles = CeilDiv(mc, kMR8);
      for (int64_t jt = 0; jt < ntiles; ++jt) {
        const int64_t jr = jt * kNR8;
        const int64_t nr = std::min<int64_t>(kNR8, n - jr);
        const int8_t* bp = b.data.data() + jt * ko * kBOctetBytes;
        for (int64_t it = 0; it < mtiles; ++it) {
          const int64_t ir = it * kMR8;
          const int64_t mr = std::min<int64_t>(kMR8, mc - ir);
          const uint8_t* ap = apanel.data() + it * ko * kAOctetBytes;
          micro(ko, ap, bp, tile, kNR8);
          emit(tile, ic + ir, jr, mr, nr);
        }
      }
    }
  });
}

}  // namespace

bool Int8GemmEnabled() {
  const char* e = std::getenv("UNITS_GEMM_INT8");
  return e == nullptr || std::string(e) != "off";
}

const char* Int8MicroKernelName() {
  return ActiveInt8MicroKernel() == &detail::Int8MicroKernelAvx2 ? "avx2"
                                                                 : "generic";
}

PackedInt8B PackBInt8(const int8_t* b, int64_t ldb, int64_t k, int64_t n) {
  PackedInt8B out;
  out.k = k;
  out.n = n;
  if (k <= 0 || n <= 0) {
    return out;
  }
  const int64_t ko = CeilDiv(k, kKO8);
  const int64_t ntiles = CeilDiv(n, kNR8);
  out.data.assign(static_cast<size_t>(ntiles * ko * kBOctetBytes), 0);
  out.colsum.assign(static_cast<size_t>(n), 0);
  for (int64_t jt = 0; jt < ntiles; ++jt) {
    int8_t* block = out.data.data() + jt * ko * kBOctetBytes;
    for (int64_t o = 0; o < ko; ++o) {
      int8_t* oct = block + o * kBOctetBytes;
      for (int64_t h = 0; h < 2; ++h) {
        for (int64_t q = 0; q < 2; ++q) {
          int8_t* quad = oct + h * 64 + q * 32;
          for (int64_t cg = 0; cg < 8; ++cg) {
            const int64_t j = jt * kNR8 + h * 8 + cg;
            if (j >= n) {
              continue;  // padding stays zero
            }
            for (int64_t s = 0; s < 4; ++s) {
              const int64_t p = o * kKO8 + q * 4 + s;
              if (p >= k) {
                continue;
              }
              quad[cg * 4 + s] = b[p * ldb + j];
            }
          }
        }
      }
    }
  }
  for (int64_t j = 0; j < n; ++j) {
    int32_t s = 0;
    for (int64_t p = 0; p < k; ++p) {
      s += static_cast<int32_t>(b[p * ldb + j]);
    }
    out.colsum[static_cast<size_t>(j)] = s;
  }
  return out;
}

void Int8Gemm(int64_t m, int64_t n, const uint8_t* a, int64_t lda,
              const PackedInt8B& b, int32_t* c) {
  if (m <= 0 || n <= 0) {
    return;
  }
  if (b.k <= 0) {
    std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(int32_t));
    return;
  }
  Int8GemmDrive(m, n, a, lda, b,
                [&](const int32_t* tile, int64_t row, int64_t col, int64_t mr,
                    int64_t nr) {
                  for (int64_t i = 0; i < mr; ++i) {
                    int32_t* crow = c + (row + i) * n + col;
                    const int32_t* trow = tile + i * kNR8;
                    for (int64_t j = 0; j < nr; ++j) {
                      crow[j] = trow[j];
                    }
                  }
                });
}

void Int8GemmDequant(int64_t m, int64_t n, const uint8_t* a, int64_t lda,
                     const int32_t* row_zero, const float* row_scale,
                     const PackedInt8B& b, const float* col_scale,
                     const float* bias, float* y) {
  if (m <= 0 || n <= 0) {
    return;
  }
  if (b.k <= 0) {
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        y[i * n + j] = bias != nullptr ? bias[j] : 0.0f;
      }
    }
    return;
  }
  const int32_t* colsum = b.colsum.data();
  Int8GemmDrive(
      m, n, a, lda, b,
      [&](const int32_t* tile, int64_t row, int64_t col, int64_t mr,
          int64_t nr) {
        // The int32 micro-tile is consumed right here — it never reaches
        // main memory on the dequant path.
        for (int64_t i = 0; i < mr; ++i) {
          const int32_t z = row_zero[row + i];
          const float sr = row_scale[row + i];
          float* yrow = y + (row + i) * n + col;
          const int32_t* trow = tile + i * kNR8;
          for (int64_t j = 0; j < nr; ++j) {
            const int32_t centered = trow[j] - z * colsum[col + j];
            const float v =
                sr * col_scale[col + j] * static_cast<float>(centered);
            yrow[j] = bias != nullptr ? v + bias[col + j] : v;
          }
        }
      });
}

void NaiveInt8Gemm(int64_t m, int64_t k, int64_t n, const uint8_t* a,
                   int64_t lda, const int8_t* b, int64_t ldb, int32_t* c) {
  if (m <= 0 || n <= 0) {
    return;
  }
  std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(int32_t));
  if (k <= 0) {
    return;
  }
  const int64_t grain =
      std::max<int64_t>(1, kGrainFlops / std::max<int64_t>(1, k * n));
  ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const uint8_t* arow = a + i * lda;
      int32_t* crow = c + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const int32_t av = static_cast<int32_t>(arow[p]);
        if (av == 0) {
          continue;
        }
        const int8_t* brow = b + p * ldb;
        for (int64_t j = 0; j < n; ++j) {
          crow[j] += av * static_cast<int32_t>(brow[j]);
        }
      }
    }
  });
}

namespace detail {

void PackAInt8(const uint8_t* UNITS_GEMM_RESTRICT a, int64_t lda, int64_t mc,
               int64_t k, uint8_t* UNITS_GEMM_RESTRICT out) {
  const int64_t ko = CeilDiv(k, kKO8);
  for (int64_t ir = 0; ir < mc; ir += kMR8) {
    const int64_t mr = std::min<int64_t>(kMR8, mc - ir);
    for (int64_t o = 0; o < ko; ++o) {
      uint8_t* oct = out + o * kAOctetBytes;
      const int64_t p0 = o * kKO8;
      const int64_t kk = std::min<int64_t>(kKO8, k - p0);
      for (int64_t i = 0; i < mr; ++i) {
        const uint8_t* arow = a + (ir + i) * lda + p0;
        uint8_t* orow = oct + i * kKO8;
        for (int64_t s = 0; s < kk; ++s) {
          orow[s] = arow[s];
        }
        for (int64_t s = kk; s < kKO8; ++s) {
          orow[s] = 0;
        }
      }
      for (int64_t i = mr; i < kMR8; ++i) {
        std::memset(oct + i * kKO8, 0, static_cast<size_t>(kKO8));
      }
    }
    out += ko * kAOctetBytes;
  }
}

void Int8MicroKernelGeneric(int64_t ko, const uint8_t* UNITS_GEMM_RESTRICT a,
                            const int8_t* UNITS_GEMM_RESTRICT b,
                            int32_t* UNITS_GEMM_RESTRICT c, int64_t ldc) {
  int32_t acc[kMR8][kNR8] = {};
  for (int64_t o = 0; o < ko; ++o) {
    const uint8_t* ap = a + o * kAOctetBytes;
    const int8_t* bp = b + o * kBOctetBytes;
    for (int64_t i = 0; i < kMR8; ++i) {
      const uint8_t* arow = ap + i * kKO8;
      for (int64_t h = 0; h < 2; ++h) {
        for (int64_t cg = 0; cg < 8; ++cg) {
          int32_t s = 0;
          for (int64_t q = 0; q < 2; ++q) {
            const int8_t* quad = bp + h * 64 + q * 32 + cg * 4;
            for (int64_t t = 0; t < 4; ++t) {
              s += static_cast<int32_t>(arow[q * 4 + t]) *
                   static_cast<int32_t>(quad[t]);
            }
          }
          acc[i][h * 8 + cg] += s;
        }
      }
    }
  }
  for (int64_t i = 0; i < kMR8; ++i) {
    int32_t* crow = c + i * ldc;
    for (int64_t j = 0; j < kNR8; ++j) {
      crow[j] = acc[i][j];
    }
  }
}

}  // namespace detail

}  // namespace units::gemm
