#include "augment/augment.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "tensor/fft.h"

namespace units::augment {

Tensor Jitter(const Tensor& batch, float sigma, Rng* rng) {
  Tensor out = batch.Clone();
  float* p = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) {
    p[i] += sigma * static_cast<float>(rng->Normal());
  }
  return out;
}

Tensor Scale(const Tensor& batch, float sigma, Rng* rng) {
  UNITS_CHECK_EQ(batch.ndim(), 3);
  Tensor out = batch.Clone();
  const int64_t n = out.dim(0);
  const int64_t d = out.dim(1);
  const int64_t t = out.dim(2);
  float* p = out.data();
  for (int64_t i = 0; i < n * d; ++i) {
    const float factor = 1.0f + sigma * static_cast<float>(rng->Normal());
    float* row = p + i * t;
    for (int64_t j = 0; j < t; ++j) {
      row[j] *= factor;
    }
  }
  return out;
}

Tensor MagnitudeWarp(const Tensor& batch, float sigma, int64_t num_knots,
                     Rng* rng) {
  UNITS_CHECK_EQ(batch.ndim(), 3);
  UNITS_CHECK_GE(num_knots, 2);
  Tensor out = batch.Clone();
  const int64_t n = out.dim(0);
  const int64_t d = out.dim(1);
  const int64_t t = out.dim(2);
  float* p = out.data();
  std::vector<float> knots(static_cast<size_t>(num_knots));
  for (int64_t i = 0; i < n * d; ++i) {
    for (auto& k : knots) {
      k = 1.0f + sigma * static_cast<float>(rng->Normal());
    }
    float* row = p + i * t;
    for (int64_t j = 0; j < t; ++j) {
      // Piecewise-linear interpolation of the knot curve over [0, T).
      const float pos = static_cast<float>(j) /
                        static_cast<float>(std::max<int64_t>(t - 1, 1)) *
                        static_cast<float>(num_knots - 1);
      const int64_t k0 = std::min<int64_t>(static_cast<int64_t>(pos),
                                           num_knots - 2);
      const float frac = pos - static_cast<float>(k0);
      const float warp = knots[static_cast<size_t>(k0)] * (1.0f - frac) +
                         knots[static_cast<size_t>(k0 + 1)] * frac;
      row[j] *= warp;
    }
  }
  return out;
}

Tensor Permute(const Tensor& batch, int64_t max_segments, Rng* rng) {
  UNITS_CHECK_EQ(batch.ndim(), 3);
  UNITS_CHECK_GE(max_segments, 2);
  const int64_t n = batch.dim(0);
  const int64_t d = batch.dim(1);
  const int64_t t = batch.dim(2);
  Tensor out = Tensor::Zeros(batch.shape());
  const float* pin = batch.data();
  float* pout = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t num_segs = rng->UniformInt(2, max_segments);
    // Random distinct cut points.
    std::vector<int64_t> cuts = {0, t};
    for (int64_t s = 1; s < num_segs; ++s) {
      cuts.push_back(rng->UniformInt(1, t - 1));
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    const int64_t actual_segs = static_cast<int64_t>(cuts.size()) - 1;
    std::vector<int64_t> order = rng->Permutation(actual_segs);
    int64_t write_pos = 0;
    for (int64_t s = 0; s < actual_segs; ++s) {
      const int64_t seg = order[static_cast<size_t>(s)];
      const int64_t seg_start = cuts[static_cast<size_t>(seg)];
      const int64_t seg_len = cuts[static_cast<size_t>(seg + 1)] - seg_start;
      for (int64_t di = 0; di < d; ++di) {
        const float* src = pin + (i * d + di) * t + seg_start;
        float* dst = pout + (i * d + di) * t + write_pos;
        std::copy(src, src + seg_len, dst);
      }
      write_pos += seg_len;
    }
    UNITS_CHECK_EQ(write_pos, t);
  }
  return out;
}

Tensor TimeMask(const Tensor& batch, float mask_ratio, float mean_block,
                Rng* rng) {
  UNITS_CHECK_EQ(batch.ndim(), 3);
  UNITS_CHECK(mask_ratio >= 0.0f && mask_ratio < 1.0f);
  Tensor out = batch.Clone();
  const int64_t n = out.dim(0);
  const int64_t d = out.dim(1);
  const int64_t t = out.dim(2);
  float* p = out.data();
  const float p_leave = 1.0f / std::max(1.0f, mean_block);
  const float p_enter =
      mask_ratio * p_leave / std::max(1e-6f, 1.0f - mask_ratio);
  for (int64_t i = 0; i < n; ++i) {
    bool masked = rng->Bernoulli(mask_ratio);
    for (int64_t j = 0; j < t; ++j) {
      if (masked) {
        for (int64_t di = 0; di < d; ++di) {
          p[(i * d + di) * t + j] = 0.0f;
        }
      }
      if (rng->Bernoulli(masked ? p_leave : p_enter)) {
        masked = !masked;
      }
    }
  }
  return out;
}

Tensor TimeWarp(const Tensor& batch, float sigma, int64_t num_knots,
                Rng* rng) {
  UNITS_CHECK_EQ(batch.ndim(), 3);
  UNITS_CHECK_GE(num_knots, 2);
  const int64_t n = batch.dim(0);
  const int64_t d = batch.dim(1);
  const int64_t t = batch.dim(2);
  Tensor out = Tensor::Zeros(batch.shape());
  const float* pin = batch.data();
  float* pout = out.data();
  std::vector<float> speeds(static_cast<size_t>(num_knots));
  std::vector<float> cum(static_cast<size_t>(t));
  for (int64_t i = 0; i < n; ++i) {
    // Random positive local speeds, interpolated over time, then integrated
    // and rescaled so the warp maps [0, T-1] onto itself (endpoints fixed).
    for (auto& s : speeds) {
      s = std::max(0.1f, 1.0f + sigma * static_cast<float>(rng->Normal()));
    }
    // cum[j] = time consumed before step j; with unit speeds cum[j] == j,
    // making sigma -> 0 an exact identity.
    float acc = 0.0f;
    for (int64_t j = 0; j < t; ++j) {
      cum[static_cast<size_t>(j)] = acc;
      const float pos = static_cast<float>(j) /
                        static_cast<float>(std::max<int64_t>(t - 1, 1)) *
                        static_cast<float>(num_knots - 1);
      const int64_t k0 = std::min<int64_t>(static_cast<int64_t>(pos),
                                           num_knots - 2);
      const float frac = pos - static_cast<float>(k0);
      const float speed = speeds[static_cast<size_t>(k0)] * (1.0f - frac) +
                          speeds[static_cast<size_t>(k0 + 1)] * frac;
      acc += speed;
    }
    const float scale =
        static_cast<float>(t - 1) / std::max(cum[static_cast<size_t>(t - 1)], 1e-6f);
    for (int64_t di = 0; di < d; ++di) {
      const float* src = pin + (i * d + di) * t;
      float* dst = pout + (i * d + di) * t;
      for (int64_t j = 0; j < t; ++j) {
        // Sample the source at the warped position.
        const float warped = cum[static_cast<size_t>(j)] * scale;
        const float clamped =
            std::clamp(warped, 0.0f, static_cast<float>(t - 1));
        const int64_t lo = static_cast<int64_t>(clamped);
        const int64_t hi = std::min<int64_t>(lo + 1, t - 1);
        const float frac = clamped - static_cast<float>(lo);
        dst[j] = src[lo] * (1.0f - frac) + src[hi] * frac;
      }
    }
  }
  return out;
}

Tensor RandomCrop(const Tensor& batch, int64_t crop_len, Rng* rng,
                  std::vector<int64_t>* offsets) {
  UNITS_CHECK_EQ(batch.ndim(), 3);
  const int64_t n = batch.dim(0);
  const int64_t d = batch.dim(1);
  const int64_t t = batch.dim(2);
  UNITS_CHECK(crop_len >= 1 && crop_len <= t);
  Tensor out = Tensor::Zeros({n, d, crop_len});
  const float* pin = batch.data();
  float* pout = out.data();
  if (offsets != nullptr) {
    offsets->assign(static_cast<size_t>(n), 0);
  }
  for (int64_t i = 0; i < n; ++i) {
    const int64_t start = static_cast<int64_t>(
        rng->UniformInt(static_cast<uint64_t>(t - crop_len + 1)));
    if (offsets != nullptr) {
      (*offsets)[static_cast<size_t>(i)] = start;
    }
    for (int64_t di = 0; di < d; ++di) {
      const float* src = pin + (i * d + di) * t + start;
      float* dst = pout + (i * d + di) * crop_len;
      std::copy(src, src + crop_len, dst);
    }
  }
  return out;
}

Tensor FrequencyPerturb(const Tensor& batch, float remove_ratio,
                        float perturb_ratio, Rng* rng) {
  UNITS_CHECK_EQ(batch.ndim(), 3);
  const int64_t n = batch.dim(0);
  const int64_t d = batch.dim(1);
  const int64_t t = batch.dim(2);
  Tensor out = Tensor::Zeros(batch.shape());
  const float* pin = batch.data();
  float* pout = out.data();
  std::vector<float> signal(static_cast<size_t>(t));
  for (int64_t i = 0; i < n * d; ++i) {
    std::copy(pin + i * t, pin + (i + 1) * t, signal.begin());
    auto spectrum = fft::RealFft(signal);
    const size_t half = spectrum.size() / 2;
    // Operate on conjugate-symmetric pairs so the inverse stays real.
    for (size_t k = 1; k < half; ++k) {
      if (rng->Bernoulli(remove_ratio)) {
        spectrum[k] = {0.0f, 0.0f};
        spectrum[spectrum.size() - k] = {0.0f, 0.0f};
      } else if (rng->Bernoulli(perturb_ratio)) {
        const float gain = static_cast<float>(rng->Uniform(1.2, 2.0));
        spectrum[k] *= gain;
        spectrum[spectrum.size() - k] *= gain;
      }
    }
    const auto restored = fft::InverseRealFft(std::move(spectrum), t);
    std::copy(restored.begin(), restored.end(), pout + i * t);
  }
  return out;
}

void AugmentationPipeline::Add(
    std::string name, std::function<Tensor(const Tensor&, Rng*)> fn) {
  ops_.push_back({std::move(name), std::move(fn)});
}

Tensor AugmentationPipeline::Apply(const Tensor& batch, Rng* rng) const {
  Tensor x = batch;
  for (const AugmentationOp& op : ops_) {
    x = op.fn(x, rng);
  }
  return x;
}

AugmentationPipeline AugmentationPipeline::DefaultContrastiveViews() {
  return ContrastiveViews(0.3f, 0.3f, 0.15f);
}

AugmentationPipeline AugmentationPipeline::ContrastiveViews(
    float jitter_sigma, float scale_sigma, float mask_ratio,
    float warp_sigma) {
  AugmentationPipeline pipeline;
  if (warp_sigma > 0.0f) {
    pipeline.Add("time_warp", [warp_sigma](const Tensor& x, Rng* rng) {
      return TimeWarp(x, warp_sigma, 6, rng);
    });
  }
  pipeline.Add("jitter", [jitter_sigma](const Tensor& x, Rng* rng) {
    return Jitter(x, jitter_sigma, rng);
  });
  pipeline.Add("scale", [scale_sigma](const Tensor& x, Rng* rng) {
    return Scale(x, scale_sigma, rng);
  });
  pipeline.Add("time_mask", [mask_ratio](const Tensor& x, Rng* rng) {
    return TimeMask(x, mask_ratio, 5.0f, rng);
  });
  return pipeline;
}

}  // namespace units::augment
