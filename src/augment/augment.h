#ifndef UNITS_AUGMENT_AUGMENT_H_
#define UNITS_AUGMENT_AUGMENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/rng.h"
#include "tensor/tensor.h"

namespace units::augment {

// Stochastic time-series augmentations used to build contrastive views.
// All functions take a batch [N, D, T] and return a transformed copy of the
// same shape (except RandomCrop, which shortens T).

/// Additive Gaussian noise with standard deviation `sigma`.
Tensor Jitter(const Tensor& batch, float sigma, Rng* rng);

/// Per-(sample, channel) amplitude scaling by N(1, sigma).
Tensor Scale(const Tensor& batch, float sigma, Rng* rng);

/// Smooth multiplicative warp: a random curve through `num_knots` knots
/// drawn from N(1, sigma), linearly interpolated over time.
Tensor MagnitudeWarp(const Tensor& batch, float sigma, int64_t num_knots,
                     Rng* rng);

/// Splits time into up to `max_segments` random segments and permutes them
/// (independently per sample; channels move together).
Tensor Permute(const Tensor& batch, int64_t max_segments, Rng* rng);

/// Zeroes out a random fraction of timesteps (all channels at once),
/// in contiguous blocks of mean length `mean_block`.
Tensor TimeMask(const Tensor& batch, float mask_ratio, float mean_block,
                Rng* rng);

/// Smooth random time warping: a monotone reparameterization of the time
/// axis built from `num_knots` random local speeds ~ N(1, sigma), followed
/// by linear resampling. Channels of a sample warp together.
Tensor TimeWarp(const Tensor& batch, float sigma, int64_t num_knots,
                Rng* rng);

/// Crops `crop_len` timesteps starting at a random offset per sample.
/// If `offsets` is non-null it receives the chosen start per sample.
Tensor RandomCrop(const Tensor& batch, int64_t crop_len, Rng* rng,
                  std::vector<int64_t>* offsets = nullptr);

/// Frequency-domain perturbation (TF-C style): per (sample, channel) series
/// zeroes a random `remove_ratio` of frequency bins and amplifies a random
/// `perturb_ratio` of bins, then transforms back.
Tensor FrequencyPerturb(const Tensor& batch, float remove_ratio,
                        float perturb_ratio, Rng* rng);

/// A named augmentation closure plus a pipeline for composing them.
struct AugmentationOp {
  std::string name;
  std::function<Tensor(const Tensor&, Rng*)> fn;
};

/// Applies a sequence of augmentations in order.
class AugmentationPipeline {
 public:
  AugmentationPipeline() = default;

  void Add(std::string name, std::function<Tensor(const Tensor&, Rng*)> fn);

  Tensor Apply(const Tensor& batch, Rng* rng) const;

  size_t size() const { return ops_.size(); }

  /// The default contrastive view generator used by the whole-series and
  /// hybrid templates: jitter + scale + time masking.
  static AugmentationPipeline DefaultContrastiveViews();

  /// Same structure with explicit strengths. The augmentation strength
  /// should roughly match the nuisance variability of the data: the
  /// invariances contrastive learning acquires are exactly the
  /// transformations it is shown.
  static AugmentationPipeline ContrastiveViews(float jitter_sigma,
                                               float scale_sigma,
                                               float mask_ratio,
                                               float warp_sigma = 0.2f);

 private:
  std::vector<AugmentationOp> ops_;
};

}  // namespace units::augment

#endif  // UNITS_AUGMENT_AUGMENT_H_
