#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "base/check.h"

namespace units::metrics {

double Accuracy(const std::vector<int64_t>& truth,
                const std::vector<int64_t>& pred) {
  UNITS_CHECK_EQ(truth.size(), pred.size());
  UNITS_CHECK(!truth.empty());
  int64_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    correct += truth[i] == pred[i] ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

std::vector<std::vector<int64_t>> ConfusionMatrix(
    const std::vector<int64_t>& truth, const std::vector<int64_t>& pred,
    int64_t num_classes) {
  UNITS_CHECK_EQ(truth.size(), pred.size());
  std::vector<std::vector<int64_t>> cm(
      static_cast<size_t>(num_classes),
      std::vector<int64_t>(static_cast<size_t>(num_classes), 0));
  for (size_t i = 0; i < truth.size(); ++i) {
    UNITS_CHECK(truth[i] >= 0 && truth[i] < num_classes);
    UNITS_CHECK(pred[i] >= 0 && pred[i] < num_classes);
    ++cm[static_cast<size_t>(truth[i])][static_cast<size_t>(pred[i])];
  }
  return cm;
}

ClassificationReport ClassifierReport(const std::vector<int64_t>& truth,
                                      const std::vector<int64_t>& pred,
                                      int64_t num_classes) {
  const auto cm = ConfusionMatrix(truth, pred, num_classes);
  ClassificationReport report;
  report.precision.resize(static_cast<size_t>(num_classes), 0.0);
  report.recall.resize(static_cast<size_t>(num_classes), 0.0);
  report.f1.resize(static_cast<size_t>(num_classes), 0.0);
  for (int64_t c = 0; c < num_classes; ++c) {
    int64_t tp = cm[static_cast<size_t>(c)][static_cast<size_t>(c)];
    int64_t fp = 0;
    int64_t fn = 0;
    for (int64_t o = 0; o < num_classes; ++o) {
      if (o != c) {
        fp += cm[static_cast<size_t>(o)][static_cast<size_t>(c)];
        fn += cm[static_cast<size_t>(c)][static_cast<size_t>(o)];
      }
    }
    const double p = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
    const double r = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
    report.precision[static_cast<size_t>(c)] = p;
    report.recall[static_cast<size_t>(c)] = r;
    report.f1[static_cast<size_t>(c)] = p + r > 0 ? 2 * p * r / (p + r) : 0.0;
    report.macro_precision += p;
    report.macro_recall += r;
    report.macro_f1 += report.f1[static_cast<size_t>(c)];
  }
  report.macro_precision /= static_cast<double>(num_classes);
  report.macro_recall /= static_cast<double>(num_classes);
  report.macro_f1 /= static_cast<double>(num_classes);
  report.accuracy = Accuracy(truth, pred);
  return report;
}

namespace {

double Comb2(int64_t n) {
  return 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
}

/// Contingency table between two labelings.
std::map<std::pair<int64_t, int64_t>, int64_t> Contingency(
    const std::vector<int64_t>& a, const std::vector<int64_t>& b) {
  std::map<std::pair<int64_t, int64_t>, int64_t> table;
  for (size_t i = 0; i < a.size(); ++i) {
    ++table[{a[i], b[i]}];
  }
  return table;
}

std::map<int64_t, int64_t> Counts(const std::vector<int64_t>& a) {
  std::map<int64_t, int64_t> counts;
  for (int64_t v : a) {
    ++counts[v];
  }
  return counts;
}

}  // namespace

double AdjustedRandIndex(const std::vector<int64_t>& truth,
                         const std::vector<int64_t>& pred) {
  UNITS_CHECK_EQ(truth.size(), pred.size());
  UNITS_CHECK(!truth.empty());
  const auto table = Contingency(truth, pred);
  const auto row_counts = Counts(truth);
  const auto col_counts = Counts(pred);
  double sum_comb = 0.0;
  for (const auto& [key, count] : table) {
    sum_comb += Comb2(count);
  }
  double sum_rows = 0.0;
  for (const auto& [key, count] : row_counts) {
    sum_rows += Comb2(count);
  }
  double sum_cols = 0.0;
  for (const auto& [key, count] : col_counts) {
    sum_cols += Comb2(count);
  }
  const double total = Comb2(static_cast<int64_t>(truth.size()));
  const double expected = sum_rows * sum_cols / total;
  const double max_index = 0.5 * (sum_rows + sum_cols);
  if (max_index == expected) {
    return 0.0;
  }
  return (sum_comb - expected) / (max_index - expected);
}

double NormalizedMutualInfo(const std::vector<int64_t>& truth,
                            const std::vector<int64_t>& pred) {
  UNITS_CHECK_EQ(truth.size(), pred.size());
  UNITS_CHECK(!truth.empty());
  const double n = static_cast<double>(truth.size());
  const auto table = Contingency(truth, pred);
  const auto row_counts = Counts(truth);
  const auto col_counts = Counts(pred);

  double mi = 0.0;
  for (const auto& [key, count] : table) {
    const double pij = static_cast<double>(count) / n;
    const double pi =
        static_cast<double>(row_counts.at(key.first)) / n;
    const double pj =
        static_cast<double>(col_counts.at(key.second)) / n;
    if (pij > 0.0) {
      mi += pij * std::log(pij / (pi * pj));
    }
  }
  auto entropy = [n](const std::map<int64_t, int64_t>& counts) {
    double h = 0.0;
    for (const auto& [key, count] : counts) {
      const double p = static_cast<double>(count) / n;
      if (p > 0.0) {
        h -= p * std::log(p);
      }
    }
    return h;
  };
  const double h_truth = entropy(row_counts);
  const double h_pred = entropy(col_counts);
  const double denom = 0.5 * (h_truth + h_pred);
  if (denom <= 0.0) {
    return h_truth == h_pred ? 1.0 : 0.0;
  }
  return mi / denom;
}

double Silhouette(const Tensor& points, const std::vector<int64_t>& labels) {
  UNITS_CHECK_EQ(points.ndim(), 2);
  const int64_t n = points.dim(0);
  const int64_t f = points.dim(1);
  UNITS_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  const float* p = points.data();
  const auto cluster_sizes = Counts(labels);
  if (cluster_sizes.size() < 2) {
    return 0.0;
  }
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    std::map<int64_t, double> dist_sums;
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) {
        continue;
      }
      double d = 0.0;
      for (int64_t k = 0; k < f; ++k) {
        const double diff = static_cast<double>(p[i * f + k]) - p[j * f + k];
        d += diff * diff;
      }
      dist_sums[labels[static_cast<size_t>(j)]] += std::sqrt(d);
    }
    const int64_t own = labels[static_cast<size_t>(i)];
    const int64_t own_size = cluster_sizes.at(own);
    double a = own_size > 1
                   ? dist_sums[own] / static_cast<double>(own_size - 1)
                   : 0.0;
    double b = std::numeric_limits<double>::max();
    for (const auto& [cls, size] : cluster_sizes) {
      if (cls != own && size > 0) {
        b = std::min(b, dist_sums[cls] / static_cast<double>(size));
      }
    }
    if (own_size > 1 && std::max(a, b) > 0.0) {
      total += (b - a) / std::max(a, b);
    }
  }
  return total / static_cast<double>(n);
}

double MeanSquaredError(const Tensor& truth, const Tensor& pred) {
  UNITS_CHECK_EQ(truth.numel(), pred.numel());
  UNITS_CHECK_GT(truth.numel(), 0);
  const float* a = truth.data();
  const float* b = pred.data();
  double acc = 0.0;
  for (int64_t i = 0; i < truth.numel(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc / static_cast<double>(truth.numel());
}

double MeanAbsoluteError(const Tensor& truth, const Tensor& pred) {
  UNITS_CHECK_EQ(truth.numel(), pred.numel());
  UNITS_CHECK_GT(truth.numel(), 0);
  const float* a = truth.data();
  const float* b = pred.data();
  double acc = 0.0;
  for (int64_t i = 0; i < truth.numel(); ++i) {
    acc += std::fabs(static_cast<double>(a[i]) - b[i]);
  }
  return acc / static_cast<double>(truth.numel());
}

double RootMeanSquaredError(const Tensor& truth, const Tensor& pred) {
  return std::sqrt(MeanSquaredError(truth, pred));
}

double MaskedRmse(const Tensor& truth, const Tensor& pred,
                  const Tensor& mask) {
  UNITS_CHECK_EQ(truth.numel(), pred.numel());
  UNITS_CHECK_EQ(truth.numel(), mask.numel());
  const float* a = truth.data();
  const float* b = pred.data();
  const float* m = mask.data();
  double acc = 0.0;
  int64_t count = 0;
  for (int64_t i = 0; i < truth.numel(); ++i) {
    if (m[i] == 0.0f) {
      const double d = static_cast<double>(a[i]) - b[i];
      acc += d * d;
      ++count;
    }
  }
  return count > 0 ? std::sqrt(acc / static_cast<double>(count)) : 0.0;
}

double MaskedMae(const Tensor& truth, const Tensor& pred,
                 const Tensor& mask) {
  UNITS_CHECK_EQ(truth.numel(), pred.numel());
  UNITS_CHECK_EQ(truth.numel(), mask.numel());
  const float* a = truth.data();
  const float* b = pred.data();
  const float* m = mask.data();
  double acc = 0.0;
  int64_t count = 0;
  for (int64_t i = 0; i < truth.numel(); ++i) {
    if (m[i] == 0.0f) {
      acc += std::fabs(static_cast<double>(a[i]) - b[i]);
      ++count;
    }
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

AnomalyScore PointwiseF1(const std::vector<int>& truth,
                         const std::vector<int>& pred) {
  UNITS_CHECK_EQ(truth.size(), pred.size());
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t fn = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (pred[i] == 1 && truth[i] == 1) {
      ++tp;
    } else if (pred[i] == 1) {
      ++fp;
    } else if (truth[i] == 1) {
      ++fn;
    }
  }
  AnomalyScore s;
  s.precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
  s.recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
  s.f1 = s.precision + s.recall > 0
             ? 2 * s.precision * s.recall / (s.precision + s.recall)
             : 0.0;
  return s;
}

std::vector<int> PointAdjust(const std::vector<int>& truth,
                             const std::vector<int>& pred) {
  UNITS_CHECK_EQ(truth.size(), pred.size());
  std::vector<int> adjusted = pred;
  size_t i = 0;
  while (i < truth.size()) {
    if (truth[i] == 1) {
      size_t seg_end = i;
      while (seg_end < truth.size() && truth[seg_end] == 1) {
        ++seg_end;
      }
      bool hit = false;
      for (size_t j = i; j < seg_end; ++j) {
        if (pred[j] == 1) {
          hit = true;
          break;
        }
      }
      if (hit) {
        for (size_t j = i; j < seg_end; ++j) {
          adjusted[j] = 1;
        }
      }
      i = seg_end;
    } else {
      ++i;
    }
  }
  return adjusted;
}

AnomalyScore BestF1Search(const std::vector<float>& scores,
                          const std::vector<int>& truth, bool point_adjust,
                          int num_thresholds) {
  UNITS_CHECK_EQ(scores.size(), truth.size());
  UNITS_CHECK(!scores.empty());
  const float lo = *std::min_element(scores.begin(), scores.end());
  const float hi = *std::max_element(scores.begin(), scores.end());
  AnomalyScore best;
  best.f1 = -1.0;
  std::vector<int> pred(scores.size());
  for (int t = 0; t < num_thresholds; ++t) {
    const float tau =
        lo + (hi - lo) * static_cast<float>(t) /
                 static_cast<float>(std::max(1, num_thresholds - 1));
    for (size_t i = 0; i < scores.size(); ++i) {
      pred[i] = scores[i] > tau ? 1 : 0;
    }
    const std::vector<int> eval_pred =
        point_adjust ? PointAdjust(truth, pred) : pred;
    AnomalyScore s = PointwiseF1(truth, eval_pred);
    s.threshold = tau;
    if (s.f1 > best.f1) {
      best = s;
    }
  }
  return best;
}

}  // namespace units::metrics
