#ifndef UNITS_METRICS_METRICS_H_
#define UNITS_METRICS_METRICS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace units::metrics {

// --- quantiles ---------------------------------------------------------------

/// Nearest-rank quantile of an ascending-sorted, non-empty sample: the
/// smallest element whose cumulative proportion reaches q, i.e.
/// sorted[ceil(q*n) - 1] with the index clamped to [0, n-1]. So the median
/// of 10 samples is element 4, not 5 (the old floor(q*n) indexing was
/// biased one rank high). Shared by the serving latency percentiles
/// (serve/serve_stats.cc) and the anomaly threshold calibration
/// (core/tasks/anomaly.cc); the convention is pinned by exact-value tests
/// in tests/test_metrics.cc.
template <typename T>
T NearestRankQuantile(const std::vector<T>& sorted, double q) {
  UNITS_CHECK(!sorted.empty());
  const int64_t n = static_cast<int64_t>(sorted.size());
  const int64_t rank =
      static_cast<int64_t>(std::ceil(q * static_cast<double>(n))) - 1;
  return sorted[static_cast<size_t>(std::clamp<int64_t>(rank, 0, n - 1))];
}

// --- classification ---------------------------------------------------------

/// Fraction of positions where prediction == truth.
double Accuracy(const std::vector<int64_t>& truth,
                const std::vector<int64_t>& pred);

/// Per-class precision/recall/F1 plus macro averages.
struct ClassificationReport {
  std::vector<double> precision;  // per class
  std::vector<double> recall;
  std::vector<double> f1;
  double macro_precision = 0.0;
  double macro_recall = 0.0;
  double macro_f1 = 0.0;
  double accuracy = 0.0;
};

ClassificationReport ClassifierReport(const std::vector<int64_t>& truth,
                                      const std::vector<int64_t>& pred,
                                      int64_t num_classes);

/// Confusion matrix [num_classes x num_classes], rows = truth.
std::vector<std::vector<int64_t>> ConfusionMatrix(
    const std::vector<int64_t>& truth, const std::vector<int64_t>& pred,
    int64_t num_classes);

// --- clustering -------------------------------------------------------------

/// Adjusted Rand Index between two labelings (label ids need not match).
double AdjustedRandIndex(const std::vector<int64_t>& truth,
                         const std::vector<int64_t>& pred);

/// Normalized mutual information (arithmetic-mean normalization).
double NormalizedMutualInfo(const std::vector<int64_t>& truth,
                            const std::vector<int64_t>& pred);

/// Mean silhouette coefficient over [N, F] points with cluster assignments.
/// O(N^2); intended for evaluation-sized N.
double Silhouette(const Tensor& points, const std::vector<int64_t>& labels);

// --- regression / forecasting ------------------------------------------------

double MeanSquaredError(const Tensor& truth, const Tensor& pred);
double MeanAbsoluteError(const Tensor& truth, const Tensor& pred);
double RootMeanSquaredError(const Tensor& truth, const Tensor& pred);

/// MSE / MAE restricted to positions where mask == 0 (i.e. the imputed
/// positions, matching the imputation task's evaluation protocol).
double MaskedRmse(const Tensor& truth, const Tensor& pred, const Tensor& mask);
double MaskedMae(const Tensor& truth, const Tensor& pred, const Tensor& mask);

// --- anomaly detection --------------------------------------------------------

/// Point-wise precision/recall/F1 for binary anomaly labels.
struct AnomalyScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double threshold = 0.0;
};

AnomalyScore PointwiseF1(const std::vector<int>& truth,
                         const std::vector<int>& pred);

/// Applies the point-adjust convention (Xu et al. / common in the anomaly
/// detection literature, cf. Schmidl et al. VLDB'22): if any point of a true
/// anomalous segment is detected, the whole segment counts as detected.
std::vector<int> PointAdjust(const std::vector<int>& truth,
                             const std::vector<int>& pred);

/// Sweeps thresholds over `scores` and returns the best point-adjusted F1
/// (the standard protocol when τ is chosen on a validation set).
AnomalyScore BestF1Search(const std::vector<float>& scores,
                          const std::vector<int>& truth, bool point_adjust,
                          int num_thresholds = 200);

}  // namespace units::metrics

#endif  // UNITS_METRICS_METRICS_H_
