#ifndef UNITS_BASE_LOGGING_H_
#define UNITS_BASE_LOGGING_H_

#include <sstream>

namespace units {

/// Severity levels, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log line; emits to stderr on destruction if its severity
/// clears the global threshold.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

}  // namespace units

/// Usage: UNITS_LOG(Info) << "epoch " << e << " loss " << loss;
#define UNITS_LOG(level)                                              \
  ::units::internal_logging::LogMessage(::units::LogLevel::k##level,  \
                                        __FILE__, __LINE__)

#endif  // UNITS_BASE_LOGGING_H_
