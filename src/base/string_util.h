#ifndef UNITS_BASE_STRING_UTIL_H_
#define UNITS_BASE_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace units {

/// Concatenates the stream representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}

/// Splits `text` on `delim`; keeps empty fields.
std::vector<std::string> StrSplit(std::string_view text, char delim);

/// Joins `parts` with `delim`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view delim);

/// Removes leading/trailing ASCII whitespace.
std::string StrStrip(std::string_view text);

/// True if `text` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace units

#endif  // UNITS_BASE_STRING_UTIL_H_
