#ifndef UNITS_BASE_RNG_H_
#define UNITS_BASE_RNG_H_

#include <cstdint>
#include <vector>

namespace units {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component in the library draws from an Rng
/// that is explicitly threaded through, so experiments are reproducible
/// given a seed. Not cryptographically secure; not thread-safe — give each
/// thread its own instance (use Fork()).
class Rng {
 public:
  /// Seeds the generator. Identical seeds produce identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller (cached pair).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Random permutation of {0, ..., n-1} (Fisher–Yates).
  std::vector<int64_t> Permutation(int64_t n);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int64_t i = static_cast<int64_t>(v->size()) - 1; i > 0; --i) {
      const auto j = static_cast<int64_t>(UniformInt(static_cast<uint64_t>(i + 1)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent generator (for per-worker streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace units

#endif  // UNITS_BASE_RNG_H_
