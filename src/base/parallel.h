#ifndef UNITS_BASE_PARALLEL_H_
#define UNITS_BASE_PARALLEL_H_

#include <cstdint>
#include <functional>

/// Intra-op parallel execution layer: a lazily-initialized persistent
/// thread pool plus deterministic range partitioning. Kernels parallelize
/// with ParallelFor / ParallelReduceSum; chunk boundaries depend only on
/// the range and grain — never on the thread count — so any per-chunk
/// computation (and any reduction that combines partial results in chunk
/// order) is bitwise identical whether the pool has 1 thread or 64.

namespace units::base {

/// Persistent worker pool. One global instance serves all kernels; local
/// instances exist for tests. A pool of size 1 spawns no worker threads
/// and runs everything inline on the caller.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread participates by
  /// draining the queue while it waits). `num_threads < 1` is clamped to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured concurrency (workers + the participating caller).
  int size() const { return size_; }

  /// Runs fn(i) for every i in [0, n), blocking until all complete. The
  /// first exception thrown by any task is rethrown on the calling thread
  /// (remaining tasks still run). Calls from inside a worker run inline to
  /// avoid self-deadlock. n <= 0 is a no-op.
  void Run(int64_t n, const std::function<void(int64_t)>& fn);

  /// Thread count from UNITS_NUM_THREADS if set to a positive integer,
  /// otherwise std::thread::hardware_concurrency() (minimum 1).
  static int DefaultNumThreads();

  /// The process-wide pool, created on first use with DefaultNumThreads().
  static ThreadPool* Global();

 private:
  struct Impl;
  Impl* impl_;
  int size_;
};

/// Concurrency of the global pool.
int NumThreads();

/// Replaces the global pool with one of `num_threads` threads. Intended
/// for tests and benchmarks; must not race with in-flight parallel work.
void SetNumThreads(int num_threads);

/// Runs fn(chunk_begin, chunk_end) over disjoint subranges covering
/// [begin, end). Each index lands in exactly one chunk of at least `grain`
/// elements (the final chunk may be shorter); boundaries are a pure
/// function of (begin, end, grain). Exceptions propagate to the caller.
/// begin >= end is a no-op.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Deterministic chunked reduction: sums fn(chunk_begin, chunk_end) over
/// the same chunk decomposition as ParallelFor, combining partial sums in
/// ascending chunk order, so the result is bitwise identical at any
/// thread count (including fully serial execution).
double ParallelReduceSum(int64_t begin, int64_t end, int64_t grain,
                         const std::function<double(int64_t, int64_t)>& fn);

}  // namespace units::base

#endif  // UNITS_BASE_PARALLEL_H_
