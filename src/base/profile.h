#ifndef UNITS_BASE_PROFILE_H_
#define UNITS_BASE_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

/// Per-op profiling hooks: a process-wide registry of (op name -> call
/// count, cumulative nanoseconds) fed by ScopedTimer instances placed
/// around the parallel kernels and the serve batch loop. Disabled timers
/// cost one relaxed atomic load; enable with UNITS_PROFILE=1 (stats are
/// then dumped to stderr at process exit) or programmatically via
/// OpStatsRegistry::SetEnabled for tests and the serve stats endpoint.

namespace units::base {

/// Accumulated statistics for one instrumented op.
struct OpStat {
  int64_t calls = 0;
  int64_t total_ns = 0;
};

class OpStatsRegistry {
 public:
  /// The process-wide registry.
  static OpStatsRegistry* Global();

  /// True when profiling is active. Initialized from UNITS_PROFILE=1 on
  /// first use; SetEnabled overrides the environment.
  static bool Enabled();
  static void SetEnabled(bool enabled);

  /// Adds one call of `nanos` to the op's accumulators. Thread-safe.
  void Record(const std::string& name, int64_t nanos);

  /// Name-sorted copy of all accumulated stats.
  std::vector<std::pair<std::string, OpStat>> Snapshot() const;

  /// {"<op>": {"calls": N, "total_ms": X}, ...} sorted by name.
  std::string DumpJson() const;

  /// Clears all accumulated stats.
  void Reset();

 private:
  OpStatsRegistry() = default;

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, OpStat>> stats_;  // insertion order
};

/// RAII timer feeding OpStatsRegistry::Global(). `name` must outlive the
/// timer (string literals at the instrumented call sites).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name)
      : name_(name), active_(OpStatsRegistry::Enabled()) {
    if (active_) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (active_) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      OpStatsRegistry::Global()->Record(
          name_,
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace units::base

#define UNITS_PROFILE_CONCAT_IMPL_(a, b) a##b
#define UNITS_PROFILE_CONCAT_(a, b) UNITS_PROFILE_CONCAT_IMPL_(a, b)

/// Times the enclosing scope under `name` when profiling is enabled.
#define UNITS_PROFILE_SCOPE(name)                                  \
  ::units::base::ScopedTimer UNITS_PROFILE_CONCAT_(_units_profile_, \
                                                   __LINE__)(name)

#endif  // UNITS_BASE_PROFILE_H_
