#include "base/profile.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace units::base {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_initialized{false};

void DumpAtExit() {
  if (OpStatsRegistry::Enabled()) {
    std::fprintf(stderr, "UNITS_PROFILE op stats:\n%s\n",
                 OpStatsRegistry::Global()->DumpJson().c_str());
  }
}

void InitFromEnvOnce() {
  bool expected = false;
  if (!g_initialized.compare_exchange_strong(expected, true)) {
    return;
  }
  const char* env = std::getenv("UNITS_PROFILE");
  if (env != nullptr && env[0] == '1' && env[1] == '\0') {
    g_enabled.store(true, std::memory_order_relaxed);
    std::atexit(DumpAtExit);
  }
}

}  // namespace

OpStatsRegistry* OpStatsRegistry::Global() {
  static OpStatsRegistry* registry = new OpStatsRegistry();
  return registry;
}

bool OpStatsRegistry::Enabled() {
  InitFromEnvOnce();
  return g_enabled.load(std::memory_order_relaxed);
}

void OpStatsRegistry::SetEnabled(bool enabled) {
  InitFromEnvOnce();  // keep the env from overwriting an explicit setting
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void OpStatsRegistry::Record(const std::string& name, int64_t nanos) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [existing, stat] : stats_) {
    if (existing == name) {
      stat.calls += 1;
      stat.total_ns += nanos;
      return;
    }
  }
  stats_.push_back({name, OpStat{1, nanos}});
}

std::vector<std::pair<std::string, OpStat>> OpStatsRegistry::Snapshot()
    const {
  std::vector<std::pair<std::string, OpStat>> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out = stats_;
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::string OpStatsRegistry::DumpJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, stat] : Snapshot()) {
    if (!first) {
      out += ", ";
    }
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "{\"calls\": %lld, \"total_ms\": %.3f}",
                  static_cast<long long>(stat.calls),
                  static_cast<double>(stat.total_ns) / 1e6);
    out += "\"" + name + "\": " + buf;
  }
  out += "}";
  return out;
}

void OpStatsRegistry::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.clear();
}

}  // namespace units::base
