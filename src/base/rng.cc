#include "base/rng.h"

#include <cmath>

#include "base/check.h"

namespace units {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextUint64() {
  // xoshiro256** by Blackman & Vigna.
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 top bits → double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  UNITS_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  UNITS_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller on two fresh uniforms; guard against log(0).
  double u1 = Uniform();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<int64_t> Rng::Permutation(int64_t n) {
  std::vector<int64_t> perm(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    perm[static_cast<size_t>(i)] = i;
  }
  Shuffle(&perm);
  return perm;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace units
