#ifndef UNITS_BASE_STATUS_H_
#define UNITS_BASE_STATUS_H_

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace units {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of a small closed set of codes plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kDeadlineExceeded,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation. Cheap to copy when OK (no allocation);
/// carries a code + message otherwise. Functions that can fail in ways the
/// caller should handle return Status (or Result<T>); programming errors
/// use UNITS_CHECK instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process with a diagnostic if this status is not OK.
  /// Use at call sites where failure indicates a bug.
  void CheckOk() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. The database-style
/// alternative to exceptions for fallible constructors and parsers.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: allows `return Status::...;`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the value. Aborts if this holds an error.
  T& value() & {
    EnsureOk();
    return *value_;
  }
  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out, or returns `fallback` on error.
  T ValueOr(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  void EnsureOk() const {
    if (!ok()) {
      status_.CheckOk();  // aborts with the carried diagnostic
      std::abort();       // unreachable; silences no-return warnings
    }
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace units

/// Propagates a non-OK Status to the caller.
#define UNITS_RETURN_IF_ERROR(expr)           \
  do {                                        \
    ::units::Status _units_status = (expr);   \
    if (!_units_status.ok()) {                \
      return _units_status;                   \
    }                                         \
  } while (false)

#define UNITS_CONCAT_IMPL_(a, b) a##b
#define UNITS_CONCAT_(a, b) UNITS_CONCAT_IMPL_(a, b)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on error returns the Status to the caller.
#define UNITS_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto UNITS_CONCAT_(_units_result_, __LINE__) = (rexpr);         \
  if (!UNITS_CONCAT_(_units_result_, __LINE__).ok()) {            \
    return UNITS_CONCAT_(_units_result_, __LINE__).status();      \
  }                                                               \
  lhs = std::move(UNITS_CONCAT_(_units_result_, __LINE__)).value()

#endif  // UNITS_BASE_STATUS_H_
