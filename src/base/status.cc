#include "base/status.h"

#include <cstdio>
#include <cstdlib>

namespace units {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

void Status::CheckOk() const {
  if (!ok()) {
    std::fprintf(stderr, "FATAL: status not OK: %s\n", ToString().c_str());
    std::abort();
  }
}

}  // namespace units
