#ifndef UNITS_BASE_CHECK_H_
#define UNITS_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant checks for programming errors. Unlike Status (which reports
/// anticipated failures to the caller), a failed UNITS_CHECK aborts: the
/// process state is presumed corrupted. Active in all build modes — these
/// guard correctness of numeric kernels, not hot-path micro-ops.
#define UNITS_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FATAL %s:%d: CHECK failed: %s\n", __FILE__,    \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define UNITS_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FATAL %s:%d: CHECK failed: %s — %s\n",         \
                   __FILE__, __LINE__, #cond, (msg));                      \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define UNITS_CHECK_EQ(a, b) UNITS_CHECK((a) == (b))
#define UNITS_CHECK_NE(a, b) UNITS_CHECK((a) != (b))
#define UNITS_CHECK_LT(a, b) UNITS_CHECK((a) < (b))
#define UNITS_CHECK_LE(a, b) UNITS_CHECK((a) <= (b))
#define UNITS_CHECK_GT(a, b) UNITS_CHECK((a) > (b))
#define UNITS_CHECK_GE(a, b) UNITS_CHECK((a) >= (b))

#endif  // UNITS_BASE_CHECK_H_
