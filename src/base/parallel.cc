#include "base/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace units::base {

namespace {

/// Set while a thread is executing pool tasks; nested Run calls from such
/// a thread execute inline instead of re-entering the queue.
thread_local bool tls_in_task = false;

/// Chunk size as a pure function of (range, grain): at least `grain`, and
/// large enough that no range produces more than kMaxChunks chunks. Thread
/// count never enters the formula, which is what makes per-chunk results
/// reproducible across pool sizes.
constexpr int64_t kMaxChunks = 256;

int64_t ChunkSize(int64_t range, int64_t grain) {
  const int64_t even = (range + kMaxChunks - 1) / kMaxChunks;
  return std::max<int64_t>({int64_t{1}, grain, even});
}

}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> workers;
  bool shutdown = false;

  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return shutdown || !queue.empty(); });
        if (queue.empty()) {
          return;  // shutdown requested and queue drained
        }
        task = std::move(queue.front());
        queue.pop_front();
      }
      tls_in_task = true;
      task();
      tls_in_task = false;
    }
  }
};

ThreadPool::ThreadPool(int num_threads)
    : impl_(new Impl), size_(std::max(1, num_threads)) {
  impl_->workers.reserve(static_cast<size_t>(size_ - 1));
  for (int i = 0; i < size_ - 1; ++i) {
    impl_->workers.emplace_back([this] { impl_->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->cv.notify_all();
  for (std::thread& t : impl_->workers) {
    t.join();
  }
  delete impl_;
}

void ThreadPool::Run(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) {
    return;
  }
  if (n == 1 || impl_->workers.empty() || tls_in_task) {
    for (int64_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  struct Batch {
    std::mutex mu;
    std::condition_variable done;
    int64_t remaining;
    std::exception_ptr error;
  };
  auto batch = std::make_shared<Batch>();
  batch->remaining = n;

  // `fn` is captured by reference: Run does not return until every task has
  // finished, so the reference outlives all uses.
  auto task_for = [batch, &fn](int64_t i) {
    return [batch, &fn, i] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(batch->mu);
        if (!batch->error) {
          batch->error = std::current_exception();
        }
      }
      std::lock_guard<std::mutex> lk(batch->mu);
      if (--batch->remaining == 0) {
        batch->done.notify_all();
      }
    };
  };

  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    for (int64_t i = 0; i < n; ++i) {
      impl_->queue.emplace_back(task_for(i));
    }
  }
  impl_->cv.notify_all();

  // The caller participates: drain tasks (possibly from a concurrent batch,
  // which is equally useful work) until the queue is empty.
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lk(impl_->mu);
      if (!impl_->queue.empty()) {
        task = std::move(impl_->queue.front());
        impl_->queue.pop_front();
      }
    }
    if (!task) {
      break;
    }
    const bool prev = tls_in_task;
    tls_in_task = true;
    task();
    tls_in_task = prev;
  }

  std::unique_lock<std::mutex> lk(batch->mu);
  batch->done.wait(lk, [&] { return batch->remaining == 0; });
  if (batch->error) {
    std::exception_ptr err = batch->error;
    batch->error = nullptr;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

int ThreadPool::DefaultNumThreads() {
  if (const char* env = std::getenv("UNITS_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

ThreadPool* ThreadPool::Global() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(DefaultNumThreads());
  }
  return g_pool.get();
}

int NumThreads() { return ThreadPool::Global()->size(); }

void SetNumThreads(int num_threads) {
  // Build the replacement before taking the lock so Global() callers never
  // observe a null pool; the old pool joins its workers on destruction.
  auto next = std::make_unique<ThreadPool>(num_threads);
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_pool = std::move(next);
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) {
    return;
  }
  const int64_t range = end - begin;
  const int64_t chunk = ChunkSize(range, grain);
  const int64_t num_chunks = (range + chunk - 1) / chunk;
  if (num_chunks <= 1) {
    fn(begin, end);
    return;
  }
  ThreadPool::Global()->Run(num_chunks, [&](int64_t c) {
    const int64_t lo = begin + c * chunk;
    fn(lo, std::min(end, lo + chunk));
  });
}

double ParallelReduceSum(int64_t begin, int64_t end, int64_t grain,
                         const std::function<double(int64_t, int64_t)>& fn) {
  if (end <= begin) {
    return 0.0;
  }
  const int64_t range = end - begin;
  const int64_t chunk = ChunkSize(range, grain);
  const int64_t num_chunks = (range + chunk - 1) / chunk;
  if (num_chunks <= 1) {
    return fn(begin, end);
  }
  std::vector<double> partial(static_cast<size_t>(num_chunks), 0.0);
  ThreadPool::Global()->Run(num_chunks, [&](int64_t c) {
    const int64_t lo = begin + c * chunk;
    partial[static_cast<size_t>(c)] = fn(lo, std::min(end, lo + chunk));
  });
  double total = 0.0;
  for (double p : partial) {
    total += p;
  }
  return total;
}

}  // namespace units::base
