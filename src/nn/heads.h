#ifndef UNITS_NN_HEADS_H_
#define UNITS_NN_HEADS_H_

#include <memory>
#include <vector>

#include "nn/activation.h"
#include "nn/conv1d.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace units::nn {

/// Multi-layer perceptron head: Linear(+act+dropout) x hidden, then a final
/// Linear to `out_dim`. With no hidden layers this is a plain linear probe.
class MlpHead : public Module {
 public:
  MlpHead(int64_t in_dim, std::vector<int64_t> hidden_dims, int64_t out_dim,
          Rng* rng, ActivationKind activation = ActivationKind::kRelu,
          float dropout = 0.0f);

  Variable Forward(const Variable& input) override;

  int64_t out_dim() const { return out_dim_; }

 private:
  int64_t out_dim_;
  std::vector<std::shared_ptr<Linear>> layers_;
  std::shared_ptr<Dropout> dropout_;
  ActivationKind activation_;
};

/// Forecasting decoder: maps a pooled representation [N, K] to predictions
/// [N, D, H] for horizon H via an MLP.
class ForecastDecoder : public Module {
 public:
  ForecastDecoder(int64_t repr_dim, int64_t out_channels, int64_t horizon,
                  Rng* rng, int64_t hidden_dim = 0);

  /// Input [N, K] -> output [N, D, H].
  Variable Forward(const Variable& repr) override;

 private:
  int64_t out_channels_;
  int64_t horizon_;
  std::shared_ptr<MlpHead> mlp_;
};

/// Per-timestep reconstruction decoder: maps [N, K, T] representations back
/// to the input space [N, D, T] with 1x1 convolutions. Used by the anomaly
/// detection and imputation tasks.
class ReconstructionDecoder : public Module {
 public:
  ReconstructionDecoder(int64_t repr_dim, int64_t out_channels, Rng* rng,
                        int64_t hidden_channels = 0);

  Variable Forward(const Variable& repr) override;

 private:
  std::shared_ptr<Conv1d> conv1_;
  std::shared_ptr<Conv1d> conv2_;  // null when hidden_channels == 0
};

}  // namespace units::nn

#endif  // UNITS_NN_HEADS_H_
