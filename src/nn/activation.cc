#include "nn/activation.h"

#include "base/string_util.h"

namespace units::nn {

namespace ag = ::units::autograd;

Result<ActivationKind> ParseActivation(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "relu") {
    return ActivationKind::kRelu;
  }
  if (lower == "leaky_relu") {
    return ActivationKind::kLeakyRelu;
  }
  if (lower == "gelu") {
    return ActivationKind::kGelu;
  }
  if (lower == "tanh") {
    return ActivationKind::kTanh;
  }
  if (lower == "sigmoid") {
    return ActivationKind::kSigmoid;
  }
  return Status::InvalidArgument("unknown activation: " + name);
}

const char* ActivationKindName(ActivationKind kind) {
  switch (kind) {
    case ActivationKind::kRelu:
      return "relu";
    case ActivationKind::kLeakyRelu:
      return "leaky_relu";
    case ActivationKind::kGelu:
      return "gelu";
    case ActivationKind::kTanh:
      return "tanh";
    case ActivationKind::kSigmoid:
      return "sigmoid";
  }
  return "unknown";
}

Variable ApplyActivation(ActivationKind kind, const Variable& x) {
  switch (kind) {
    case ActivationKind::kRelu:
      return ag::Relu(x);
    case ActivationKind::kLeakyRelu:
      return ag::LeakyRelu(x);
    case ActivationKind::kGelu:
      return ag::Gelu(x);
    case ActivationKind::kTanh:
      return ag::Tanh(x);
    case ActivationKind::kSigmoid:
      return ag::Sigmoid(x);
  }
  return x;
}

}  // namespace units::nn
