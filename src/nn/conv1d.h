#ifndef UNITS_NN_CONV1D_H_
#define UNITS_NN_CONV1D_H_

#include "nn/module.h"

namespace units::nn {

/// Padding policy for temporal convolutions.
enum class ConvPadding {
  kSame,    // symmetric zero padding; output length == input length
  kCausal,  // all padding on the left; output at t sees inputs <= t
  kValid,   // no padding
};

/// 1-D convolution over [N, C_in, T] producing [N, C_out, T_out], with
/// optional dilation. Weight layout [C_out, C_in, kernel].
class Conv1d : public Module {
 public:
  Conv1d(int64_t in_channels, int64_t out_channels, int64_t kernel, Rng* rng,
         int64_t dilation = 1, ConvPadding padding = ConvPadding::kSame,
         bool use_bias = true);

  Variable Forward(const Variable& input) override;

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }
  int64_t kernel() const { return kernel_; }
  int64_t dilation() const { return dilation_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_;
  int64_t dilation_;
  ConvPadding padding_;
  Variable weight_;  // [C_out, C_in, k]
  Variable bias_;    // [C_out]
};

}  // namespace units::nn

#endif  // UNITS_NN_CONV1D_H_
