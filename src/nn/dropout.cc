#include "nn/dropout.h"

#include "base/check.h"

namespace units::nn {

namespace ag = ::units::autograd;

Dropout::Dropout(float p, Rng* rng) : p_(p), rng_(rng->Fork()) {
  UNITS_CHECK(p >= 0.0f && p < 1.0f);
}

Tensor Dropout::SampleMask(const Shape& shape) {
  if (!training() || p_ == 0.0f) {
    return Tensor();
  }
  Tensor mask(shape);
  const float scale = 1.0f / (1.0f - p_);
  float* m = mask.data();
  for (int64_t i = 0; i < mask.numel(); ++i) {
    m[i] = rng_.Bernoulli(p_) ? 0.0f : scale;
  }
  return mask;
}

Variable Dropout::Forward(const Variable& input) {
  Tensor mask = SampleMask(input.shape());
  if (mask.numel() == 0) {
    return input;
  }
  return ag::Mul(input, ag::Constant(std::move(mask)));
}

}  // namespace units::nn
