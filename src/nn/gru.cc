#include "nn/gru.h"

#include "base/check.h"

namespace units::nn {

namespace ag = ::units::autograd;

GruBackbone::GruBackbone(int64_t input_channels, int64_t hidden_dim,
                         int64_t repr_dim, Rng* rng)
    : input_channels_(input_channels),
      hidden_dim_(hidden_dim),
      repr_dim_(repr_dim) {
  input_proj_ = RegisterModule(
      "input_proj",
      std::make_shared<Linear>(input_channels, 3 * hidden_dim, rng));
  recurrent_proj_ = RegisterModule(
      "recurrent_proj",
      std::make_shared<Linear>(hidden_dim, 2 * hidden_dim, rng,
                               /*use_bias=*/false));
  candidate_proj_ = RegisterModule(
      "candidate_proj",
      std::make_shared<Linear>(hidden_dim, hidden_dim, rng,
                               /*use_bias=*/false));
  output_proj_ = RegisterModule(
      "output_proj", std::make_shared<Linear>(hidden_dim, repr_dim, rng));
}

Variable GruBackbone::Forward(const Variable& input) {
  UNITS_CHECK_EQ(input.ndim(), 3);
  UNITS_CHECK_EQ(input.dim(1), input_channels_);
  const int64_t n = input.dim(0);
  const int64_t t = input.dim(2);

  // Precompute all input projections at once: [N, T, 3H].
  Variable x_nt = ag::Transpose(input, 1, 2);        // [N, T, D]
  Variable pre = input_proj_->Forward(x_nt);         // [N, T, 3H]

  Variable h(Tensor::Zeros({n, hidden_dim_}));
  std::vector<Variable> outputs;
  outputs.reserve(static_cast<size_t>(t));
  for (int64_t step = 0; step < t; ++step) {
    Variable pre_t = ag::Reshape(ag::Slice(pre, 1, step, 1),
                                 {n, 3 * hidden_dim_});
    Variable xz = ag::Slice(pre_t, 1, 0, hidden_dim_);
    Variable xr = ag::Slice(pre_t, 1, hidden_dim_, hidden_dim_);
    Variable xh = ag::Slice(pre_t, 1, 2 * hidden_dim_, hidden_dim_);

    Variable rec = recurrent_proj_->Forward(h);  // [N, 2H]
    Variable hz = ag::Slice(rec, 1, 0, hidden_dim_);
    Variable hr = ag::Slice(rec, 1, hidden_dim_, hidden_dim_);

    Variable z = ag::Sigmoid(ag::Add(xz, hz));
    Variable r = ag::Sigmoid(ag::Add(xr, hr));
    Variable candidate = ag::Tanh(
        ag::Add(xh, candidate_proj_->Forward(ag::Mul(r, h))));
    // h = (1-z) * h + z * candidate.
    h = ag::Add(ag::Mul(ag::AddScalar(ag::Neg(z), 1.0f), h),
                ag::Mul(z, candidate));
    // Per-timestep representation as [N, K, 1] for the final concat.
    outputs.push_back(
        ag::Reshape(output_proj_->Forward(h), {n, repr_dim_, 1}));
  }
  return ag::Concat(outputs, /*axis=*/2);  // [N, K, T]
}

}  // namespace units::nn
