#ifndef UNITS_NN_DROPOUT_H_
#define UNITS_NN_DROPOUT_H_

#include "nn/module.h"

namespace units::nn {

/// Inverted dropout: in training mode zeroes each element with probability
/// p and scales survivors by 1/(1-p); identity in eval mode. The mask is
/// drawn from the module's own forked RNG stream.
class Dropout : public Module {
 public:
  Dropout(float p, Rng* rng);

  Variable Forward(const Variable& input) override;

  /// Draws an inverted-dropout mask (0 with probability p, else 1/(1-p))
  /// from the module's RNG stream, or an empty tensor when in eval mode or
  /// p == 0. The fused attention path applies this mask inside its kernels
  /// instead of as a separate elementwise multiply; the draw order matches
  /// Forward, so both paths consume the RNG stream identically.
  Tensor SampleMask(const Shape& shape);

  float p() const { return p_; }

 private:
  float p_;
  Rng rng_;
};

}  // namespace units::nn

#endif  // UNITS_NN_DROPOUT_H_
