#ifndef UNITS_NN_NORM_H_
#define UNITS_NN_NORM_H_

#include "nn/module.h"

namespace units::nn {

/// Layer normalization over the last dimension, with learnable per-feature
/// scale (gamma) and shift (beta). Input [..., C].
class LayerNorm : public Module {
 public:
  LayerNorm(int64_t features, float eps = 1e-5f);

  Variable Forward(const Variable& input) override;

 private:
  int64_t features_;
  float eps_;
  Variable gamma_;  // [C]
  Variable beta_;   // [C]
};

/// Instance normalization for [N, C, T]: normalizes each (sample, channel)
/// series over time, then applies a per-channel affine transform. Stateless
/// across batches (no running statistics), which makes it robust to the
/// small batch sizes used during fine-tuning.
class InstanceNorm1d : public Module {
 public:
  InstanceNorm1d(int64_t channels, float eps = 1e-5f);

  Variable Forward(const Variable& input) override;

 private:
  int64_t channels_;
  float eps_;
  Variable gamma_;  // [C, 1] (broadcasts over time)
  Variable beta_;   // [C, 1]
};

/// Batch normalization for [N, C] or [N, C, T]. Uses batch statistics in
/// training mode and exponentially-averaged running statistics in eval.
class BatchNorm1d : public Module {
 public:
  BatchNorm1d(int64_t channels, float eps = 1e-5f, float momentum = 0.1f);

  Variable Forward(const Variable& input) override;

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  int64_t channels_;
  float eps_;
  float momentum_;
  Variable gamma_;  // [C]
  Variable beta_;   // [C]
  Tensor running_mean_;  // [C]
  Tensor running_var_;   // [C]
};

}  // namespace units::nn

#endif  // UNITS_NN_NORM_H_
