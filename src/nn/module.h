#ifndef UNITS_NN_MODULE_H_
#define UNITS_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"

namespace units::nn {

using autograd::Variable;

/// Base class for neural-network building blocks. A Module owns parameters
/// (leaf Variables with requires_grad=true) and child modules; Parameters()
/// walks the tree. Training mode toggles dropout/batch-norm behaviour.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Applies the module. The default unary signature covers all layers in
  /// this library; attention layers also expose richer overloads.
  virtual Variable Forward(const Variable& input) = 0;

  /// All parameters of this module and its descendants.
  std::vector<Variable> Parameters() const;

  /// Parameters with hierarchical dotted names ("layer0.weight", ...), for
  /// serialization.
  std::vector<std::pair<std::string, Variable>> NamedParameters() const;

  /// Zeroes gradients of all parameters in the tree.
  void ZeroGrad();

  /// Sets training/eval mode recursively.
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Post-training int8 quantization walk (DESIGN.md §17): asks every
  /// module in the tree to attach per-channel int8 weights for serving.
  /// Returns the number of layers quantized. Default recurses into
  /// children; Linear overrides to quantize itself, recurrence-sensitive
  /// modules (GRU) override to opt out.
  virtual int64_t QuantizeInt8Weights();

  /// Total number of scalar parameters.
  int64_t NumParameters() const;

 protected:
  Module() = default;

  /// Registers a leaf parameter under `name`.
  Variable RegisterParameter(const std::string& name, Variable param);

  /// Registers (and returns) a child module under `name`.
  template <typename M>
  std::shared_ptr<M> RegisterModule(const std::string& name,
                                    std::shared_ptr<M> child) {
    children_.emplace_back(name, child);
    return child;
  }

  /// Hook for subclasses reacting to train/eval switches.
  virtual void OnTrainingChanged() {}

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, Variable>>* out) const;

  std::vector<std::pair<std::string, Variable>> params_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
  bool training_ = true;
};

/// Parameter initializers.
namespace init {

/// Xavier/Glorot uniform: U(-sqrt(6/(fan_in+fan_out)), +...).
Tensor XavierUniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng* rng);

/// Kaiming/He uniform for ReLU family: U(-sqrt(6/fan_in), +...).
Tensor KaimingUniform(Shape shape, int64_t fan_in, Rng* rng);

}  // namespace init

}  // namespace units::nn

#endif  // UNITS_NN_MODULE_H_
