#include "nn/attention.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/parallel.h"

namespace units::nn {

namespace ag = ::units::autograd;

bool UseFusedAttention() {
  // Re-read per forward (attention calls are ms-scale, getenv is noise) so
  // tests and benchmarks can flip the hatch without a process restart.
  const char* e = std::getenv("UNITS_ATTN");
  return e == nullptr || std::strcmp(e, "unfused") != 0;
}

namespace {

Tensor ComputePositionalEncoding(int64_t length, int64_t channels) {
  Tensor pe = Tensor::Zeros({length, channels});
  float* p = pe.data();
  // The rate depends only on the channel: hoist the std::pow out of the
  // per-timestep loop (it used to run per element, which made this
  // surprisingly hot for long windows).
  std::vector<double> rate(static_cast<size_t>(channels));
  for (int64_t c = 0; c < channels; ++c) {
    rate[static_cast<size_t>(c)] =
        std::pow(10000.0, -static_cast<double>(2 * (c / 2)) /
                              static_cast<double>(channels));
  }
  base::ParallelFor(
      0, length, std::max<int64_t>(1, 2048 / std::max<int64_t>(1, channels)),
      [&](int64_t t0, int64_t t1) {
        for (int64_t t = t0; t < t1; ++t) {
          for (int64_t c = 0; c < channels; ++c) {
            const double angle =
                static_cast<double>(t) * rate[static_cast<size_t>(c)];
            p[t * channels + c] = static_cast<float>(
                (c % 2 == 0) ? std::sin(angle) : std::cos(angle));
          }
        }
      });
  return pe;
}

}  // namespace

Tensor SinusoidalPositionalEncoding(int64_t length, int64_t channels) {
  // The table is a pure function of (length, channels) but was recomputed
  // on every TransformerBackbone::Forward; cache it so training/serving
  // forwards over the same window length reuse one tensor. Callers treat
  // the returned (storage-shared) tensor as immutable.
  static std::mutex mu;
  static std::map<std::pair<int64_t, int64_t>, Tensor>* cache =
      new std::map<std::pair<int64_t, int64_t>, Tensor>();
  const std::pair<int64_t, int64_t> key{length, channels};
  {
    std::lock_guard<std::mutex> lk(mu);
    auto it = cache->find(key);
    if (it != cache->end()) {
      return it->second;
    }
  }
  // Compute outside the lock (the fill parallelizes over the pool); a
  // concurrent miss computes twice and the first insert wins.
  Tensor pe = ComputePositionalEncoding(length, channels);
  std::lock_guard<std::mutex> lk(mu);
  return cache->emplace(key, std::move(pe)).first->second;
}

MultiHeadAttention::MultiHeadAttention(int64_t model_dim, int64_t num_heads,
                                       Rng* rng, float dropout)
    : model_dim_(model_dim),
      num_heads_(num_heads),
      head_dim_(model_dim / num_heads) {
  UNITS_CHECK_EQ(head_dim_ * num_heads, model_dim);
  qkv_proj_ = RegisterModule(
      "qkv_proj", std::make_shared<Linear>(model_dim, 3 * model_dim, rng));
  out_proj_ = RegisterModule(
      "out_proj", std::make_shared<Linear>(model_dim, model_dim, rng));
  dropout_ = RegisterModule("dropout", std::make_shared<Dropout>(dropout, rng));
}

Variable MultiHeadAttention::Forward(const Variable& input) {
  UNITS_CHECK_EQ(input.ndim(), 3);
  const int64_t n = input.dim(0);
  const int64_t t = input.dim(1);
  UNITS_CHECK_EQ(input.dim(2), model_dim_);

  Variable qkv = qkv_proj_->Forward(input);  // [N, T, 3C]
  // Split into q, k, v of [N, T, C] each.
  Variable q = ag::Slice(qkv, 2, 0, model_dim_);
  Variable k = ag::Slice(qkv, 2, model_dim_, model_dim_);
  Variable v = ag::Slice(qkv, 2, 2 * model_dim_, model_dim_);

  // [N, T, C] -> [N*H, T, hd]: reshape to [N, T, H, hd], swap T/H, merge.
  auto split_heads = [&](const Variable& x) {
    Variable y = ag::Reshape(x, {n, t, num_heads_, head_dim_});
    y = ag::Transpose(y, 1, 2);  // [N, H, T, hd]
    return ag::Reshape(y, {n * num_heads_, t, head_dim_});
  };
  q = split_heads(q);
  k = split_heads(k);
  v = split_heads(v);

  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  Variable ctx;
  if (UseFusedAttention()) {
    // Fused tile-streaming path: scores → online softmax → context per
    // (batch, row-block) tile (ag::ScaledDotAttention). Eval mode never
    // materializes the [NH, T, T] probabilities; training keeps exactly
    // one copy for backward.
    Tensor mask = dropout_->SampleMask({n * num_heads_, t, t});
    ctx = ag::ScaledDotAttention(q, k, v, scale, mask);  // [NH, T, hd]
  } else {
    // UNITS_ATTN=unfused escape hatch: the composed path, which
    // materializes scores, probabilities and the dropout product.
    // BatchedMatMul runs the blocked GEMM split over (batch, macro-tile)
    // work items (tensor/gemm.h) and Softmax over rows (tensor_ops.cc).
    Variable scores = ag::MulScalar(
        ag::BatchedMatMul(q, ag::Transpose(k, 1, 2)), scale);  // [NH, T, T]
    Variable attn = ag::Softmax(scores, /*axis=*/2);
    attn = dropout_->Forward(attn);
    ctx = ag::BatchedMatMul(attn, v);  // [NH, T, hd]
  }

  // Merge heads back: [NH, T, hd] -> [N, T, C].
  ctx = ag::Reshape(ctx, {n, num_heads_, t, head_dim_});
  ctx = ag::Transpose(ctx, 1, 2);  // [N, T, H, hd]
  ctx = ag::Reshape(ctx, {n, t, model_dim_});
  return out_proj_->Forward(ctx);
}

TransformerEncoderLayer::TransformerEncoderLayer(int64_t model_dim,
                                                 int64_t num_heads,
                                                 int64_t ff_dim, Rng* rng,
                                                 float dropout) {
  norm1_ = RegisterModule("norm1", std::make_shared<LayerNorm>(model_dim));
  attn_ = RegisterModule("attn", std::make_shared<MultiHeadAttention>(
                                     model_dim, num_heads, rng, dropout));
  norm2_ = RegisterModule("norm2", std::make_shared<LayerNorm>(model_dim));
  ff1_ = RegisterModule("ff1", std::make_shared<Linear>(model_dim, ff_dim, rng));
  ff2_ = RegisterModule("ff2", std::make_shared<Linear>(ff_dim, model_dim, rng));
  dropout_ = RegisterModule("dropout", std::make_shared<Dropout>(dropout, rng));
}

Variable TransformerEncoderLayer::Forward(const Variable& input) {
  // Pre-norm residual attention.
  Variable x = input;
  Variable h = attn_->Forward(norm1_->Forward(x));
  x = ag::Add(x, dropout_->Forward(h));
  // Pre-norm residual feed-forward.
  Variable f = ff2_->Forward(ag::Gelu(ff1_->Forward(norm2_->Forward(x))));
  return ag::Add(x, dropout_->Forward(f));
}

TransformerBackbone::TransformerBackbone(int64_t input_channels,
                                         int64_t model_dim, int64_t repr_dim,
                                         int64_t num_layers,
                                         int64_t num_heads, Rng* rng,
                                         float dropout)
    : input_channels_(input_channels),
      model_dim_(model_dim),
      repr_dim_(repr_dim) {
  input_proj_ = RegisterModule(
      "input_proj", std::make_shared<Linear>(input_channels, model_dim, rng));
  for (int64_t l = 0; l < num_layers; ++l) {
    layers_.push_back(RegisterModule(
        "layer" + std::to_string(l),
        std::make_shared<TransformerEncoderLayer>(
            model_dim, num_heads, 2 * model_dim, rng, dropout)));
  }
  final_norm_ =
      RegisterModule("final_norm", std::make_shared<LayerNorm>(model_dim));
  output_proj_ = RegisterModule(
      "output_proj", std::make_shared<Linear>(model_dim, repr_dim, rng));
}

Variable TransformerBackbone::Forward(const Variable& input) {
  UNITS_CHECK_EQ(input.ndim(), 3);
  UNITS_CHECK_EQ(input.dim(1), input_channels_);
  const int64_t t = input.dim(2);
  // [N, D, T] -> [N, T, D].
  Variable x = ag::Transpose(input, 1, 2);
  x = input_proj_->Forward(x);  // [N, T, C]
  // Add sinusoidal positions (constant, broadcast over the batch).
  Tensor pe = SinusoidalPositionalEncoding(t, model_dim_);
  x = ag::Add(x, ag::Constant(std::move(pe)));
  for (auto& layer : layers_) {
    x = layer->Forward(x);
  }
  x = final_norm_->Forward(x);
  x = output_proj_->Forward(x);       // [N, T, K]
  return ag::Transpose(x, 1, 2);      // [N, K, T]
}

}  // namespace units::nn
