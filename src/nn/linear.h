#ifndef UNITS_NN_LINEAR_H_
#define UNITS_NN_LINEAR_H_

#include <memory>

#include "nn/module.h"

namespace units::nn {

/// Affine map y = x W + b with W of shape [in_features, out_features].
/// Accepts inputs of any rank >= 1 whose last dim equals in_features; the
/// leading dims are flattened for the matmul and restored afterwards.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool use_bias = true);

  Variable Forward(const Variable& input) override;

  /// Attaches per-output-channel int8 weights quantized from the current
  /// fp32 parameters (which stay in place — UNITS_GEMM_INT8=off and
  /// training both fall back to them). Returns 1.
  int64_t QuantizeInt8Weights() override;

  /// Drops the quantized weights (back to pure fp32).
  void ClearQuantizedWeights() { qweights_.reset(); }

  /// True when int8 weights are attached (regardless of the env gate).
  bool quantized() const { return qweights_ != nullptr; }
  const std::shared_ptr<const quant::QuantizedLinearWeights>&
  quantized_weights() const {
    return qweights_;
  }

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const Variable& weight() const { return weight_; }
  const Variable& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Variable weight_;  // [in, out]
  Variable bias_;    // [out] (undefined when use_bias=false)
  std::shared_ptr<const quant::QuantizedLinearWeights> qweights_;
};

}  // namespace units::nn

#endif  // UNITS_NN_LINEAR_H_
