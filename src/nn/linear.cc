#include "nn/linear.h"

#include "base/check.h"
#include "tensor/gemm_int8.h"
#include "tensor/quant.h"

namespace units::nn {

namespace ag = ::units::autograd;

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng,
               bool use_bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(
      "weight", Variable(init::XavierUniform({in_features, out_features},
                                             in_features, out_features, rng)));
  if (use_bias) {
    bias_ = RegisterParameter("bias", Variable(Tensor::Zeros({out_features})));
  }
}

Variable Linear::Forward(const Variable& input) {
  UNITS_CHECK_GE(input.ndim(), 1);
  UNITS_CHECK_EQ(input.dim(-1), in_features_);
  const Shape in_shape = input.shape();
  Variable x = input;
  if (input.ndim() != 2) {
    const int64_t rows = input.numel() / in_features_;
    x = ag::Reshape(input, {rows, in_features_});
  }
  Variable y;
  if (qweights_ != nullptr && !training() && gemm::Int8GemmEnabled()) {
    // Quantized serving path: exact int8 GEMM + fused dequantize/bias
    // epilogue. The env gate is read per call so UNITS_GEMM_INT8=off flips
    // a live model back to the fp32 oracle below without reloading.
    y = ag::QuantizedLinear(x, qweights_);
  } else {
    // Runs the blocked GEMM (tensor/gemm.h); UNITS_GEMM=naive forces the
    // reference loop.
    y = ag::MatMul(x, weight_);
    if (bias_.defined()) {
      y = ag::Add(y, bias_);
    }
  }
  if (in_shape.size() != 2) {
    Shape out_shape(in_shape.begin(), in_shape.end() - 1);
    out_shape.push_back(out_features_);
    y = ag::Reshape(y, out_shape);
  }
  return y;
}

int64_t Linear::QuantizeInt8Weights() {
  const Tensor* bias = bias_.defined() ? &bias_.data() : nullptr;
  qweights_ = std::make_shared<const quant::QuantizedLinearWeights>(
      quant::QuantizeLinearWeight(weight_.data(), bias));
  return 1;
}

}  // namespace units::nn
