#include "nn/norm.h"

#include "base/check.h"
#include "tensor/tensor_ops.h"

namespace units::nn {

namespace ag = ::units::autograd;

LayerNorm::LayerNorm(int64_t features, float eps)
    : features_(features), eps_(eps) {
  gamma_ = RegisterParameter("gamma", Variable(Tensor::Ones({features})));
  beta_ = RegisterParameter("beta", Variable(Tensor::Zeros({features})));
}

Variable LayerNorm::Forward(const Variable& input) {
  UNITS_CHECK_EQ(input.dim(-1), features_);
  Variable mu = ag::Mean(input, -1, /*keepdim=*/true);
  Variable centered = ag::Sub(input, mu);
  Variable var = ag::Mean(ag::Square(centered), -1, /*keepdim=*/true);
  Variable norm = ag::Div(centered, ag::Sqrt(ag::AddScalar(var, eps_)));
  return ag::Add(ag::Mul(norm, gamma_), beta_);
}

InstanceNorm1d::InstanceNorm1d(int64_t channels, float eps)
    : channels_(channels), eps_(eps) {
  gamma_ = RegisterParameter("gamma", Variable(Tensor::Ones({channels, 1})));
  beta_ = RegisterParameter("beta", Variable(Tensor::Zeros({channels, 1})));
}

Variable InstanceNorm1d::Forward(const Variable& input) {
  UNITS_CHECK_EQ(input.ndim(), 3);
  UNITS_CHECK_EQ(input.dim(1), channels_);
  Variable mu = ag::Mean(input, 2, /*keepdim=*/true);          // [N,C,1]
  Variable centered = ag::Sub(input, mu);
  Variable var = ag::Mean(ag::Square(centered), 2, /*keepdim=*/true);
  Variable norm = ag::Div(centered, ag::Sqrt(ag::AddScalar(var, eps_)));
  return ag::Add(ag::Mul(norm, gamma_), beta_);  // [C,1] broadcasts over N,T
}

BatchNorm1d::BatchNorm1d(int64_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      running_mean_(Tensor::Zeros({channels})),
      running_var_(Tensor::Ones({channels})) {
  gamma_ = RegisterParameter("gamma", Variable(Tensor::Ones({channels})));
  beta_ = RegisterParameter("beta", Variable(Tensor::Zeros({channels})));
}

Variable BatchNorm1d::Forward(const Variable& input) {
  UNITS_CHECK(input.ndim() == 2 || input.ndim() == 3);
  UNITS_CHECK_EQ(input.dim(1), channels_);
  const bool is_3d = input.ndim() == 3;

  Variable mu;
  Variable var;
  if (training()) {
    if (is_3d) {
      // Stats over batch and time: reduce axis 0, then the (shifted) time
      // axis, keeping dims so broadcasting lines up as [1, C, 1].
      mu = ag::Mean(ag::Mean(input, 0, true), 2, true);
      Variable centered = ag::Sub(input, mu);
      var = ag::Mean(ag::Mean(ag::Square(centered), 0, true), 2, true);
    } else {
      mu = ag::Mean(input, 0, true);  // [1, C]
      Variable centered = ag::Sub(input, mu);
      var = ag::Mean(ag::Square(centered), 0, true);
    }
    // Update running statistics from detached values.
    const Tensor mu_flat = mu.data().Reshape({channels_});
    const Tensor var_flat = var.data().Reshape({channels_});
    for (int64_t c = 0; c < channels_; ++c) {
      running_mean_[c] =
          (1.0f - momentum_) * running_mean_[c] + momentum_ * mu_flat[c];
      running_var_[c] =
          (1.0f - momentum_) * running_var_[c] + momentum_ * var_flat[c];
    }
  } else {
    const Shape stat_shape = is_3d ? Shape{1, channels_, 1} : Shape{1, channels_};
    mu = ag::Constant(running_mean_.Reshape(stat_shape));
    var = ag::Constant(running_var_.Reshape(stat_shape));
  }

  Variable norm =
      ag::Div(ag::Sub(input, mu), ag::Sqrt(ag::AddScalar(var, eps_)));
  if (is_3d) {
    Variable g = ag::Reshape(gamma_, {1, channels_, 1});
    Variable b = ag::Reshape(beta_, {1, channels_, 1});
    return ag::Add(ag::Mul(norm, g), b);
  }
  return ag::Add(ag::Mul(norm, gamma_), beta_);
}

}  // namespace units::nn
