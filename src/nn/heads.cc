#include "nn/heads.h"

#include "base/check.h"
#include "base/string_util.h"

namespace units::nn {

namespace ag = ::units::autograd;

MlpHead::MlpHead(int64_t in_dim, std::vector<int64_t> hidden_dims,
                 int64_t out_dim, Rng* rng, ActivationKind activation,
                 float dropout)
    : out_dim_(out_dim), activation_(activation) {
  int64_t prev = in_dim;
  for (size_t i = 0; i < hidden_dims.size(); ++i) {
    layers_.push_back(RegisterModule(
        StrCat("fc", i), std::make_shared<Linear>(prev, hidden_dims[i], rng)));
    prev = hidden_dims[i];
  }
  layers_.push_back(RegisterModule(
      StrCat("fc", hidden_dims.size()),
      std::make_shared<Linear>(prev, out_dim, rng)));
  dropout_ = RegisterModule("dropout", std::make_shared<Dropout>(dropout, rng));
}

Variable MlpHead::Forward(const Variable& input) {
  Variable x = input;
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    x = ApplyActivation(activation_, layers_[i]->Forward(x));
    x = dropout_->Forward(x);
  }
  return layers_.back()->Forward(x);
}

ForecastDecoder::ForecastDecoder(int64_t repr_dim, int64_t out_channels,
                                 int64_t horizon, Rng* rng,
                                 int64_t hidden_dim)
    : out_channels_(out_channels), horizon_(horizon) {
  std::vector<int64_t> hidden;
  if (hidden_dim > 0) {
    hidden.push_back(hidden_dim);
  }
  mlp_ = RegisterModule(
      "mlp", std::make_shared<MlpHead>(repr_dim, hidden,
                                       out_channels * horizon, rng));
}

Variable ForecastDecoder::Forward(const Variable& repr) {
  UNITS_CHECK_EQ(repr.ndim(), 2);
  Variable flat = mlp_->Forward(repr);  // [N, D*H]
  return ag::Reshape(flat, {repr.dim(0), out_channels_, horizon_});
}

ReconstructionDecoder::ReconstructionDecoder(int64_t repr_dim,
                                             int64_t out_channels, Rng* rng,
                                             int64_t hidden_channels) {
  if (hidden_channels > 0) {
    conv1_ = RegisterModule(
        "conv1", std::make_shared<Conv1d>(repr_dim, hidden_channels,
                                          /*kernel=*/1, rng));
    conv2_ = RegisterModule(
        "conv2", std::make_shared<Conv1d>(hidden_channels, out_channels,
                                          /*kernel=*/1, rng));
  } else {
    conv1_ = RegisterModule(
        "conv1", std::make_shared<Conv1d>(repr_dim, out_channels,
                                          /*kernel=*/1, rng));
  }
}

Variable ReconstructionDecoder::Forward(const Variable& repr) {
  UNITS_CHECK_EQ(repr.ndim(), 3);
  Variable x = conv1_->Forward(repr);
  if (conv2_ != nullptr) {
    x = conv2_->Forward(ag::Gelu(x));
  }
  return x;
}

}  // namespace units::nn
