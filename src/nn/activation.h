#ifndef UNITS_NN_ACTIVATION_H_
#define UNITS_NN_ACTIVATION_H_

#include <string>

#include "base/status.h"
#include "nn/module.h"

namespace units::nn {

/// Supported pointwise nonlinearities.
enum class ActivationKind { kRelu, kLeakyRelu, kGelu, kTanh, kSigmoid };

/// Parses "relu" / "leaky_relu" / "gelu" / "tanh" / "sigmoid".
Result<ActivationKind> ParseActivation(const std::string& name);
const char* ActivationKindName(ActivationKind kind);

/// Applies the nonlinearity directly (functional form).
Variable ApplyActivation(ActivationKind kind, const Variable& x);

/// Module wrapper around a pointwise nonlinearity.
class Activation : public Module {
 public:
  explicit Activation(ActivationKind kind) : kind_(kind) {}

  Variable Forward(const Variable& input) override {
    return ApplyActivation(kind_, input);
  }

  ActivationKind kind() const { return kind_; }

 private:
  ActivationKind kind_;
};

}  // namespace units::nn

#endif  // UNITS_NN_ACTIVATION_H_
