#ifndef UNITS_NN_TCN_H_
#define UNITS_NN_TCN_H_

#include <memory>
#include <vector>

#include "nn/activation.h"
#include "nn/conv1d.h"
#include "nn/module.h"
#include "nn/norm.h"

namespace units::nn {

/// Configuration for TcnEncoder.
struct TcnConfig {
  int64_t input_channels = 1;   // D
  int64_t hidden_channels = 32;
  int64_t repr_channels = 64;   // K
  int64_t num_blocks = 4;       // dilations 1, 2, 4, ...
  int64_t kernel = 3;
  bool causal = true;
  ActivationKind activation = ActivationKind::kGelu;
};

/// Dilated temporal convolutional encoder (the backbone used by the
/// TS2Vec / T-Loss style pre-training templates). Maps [N, D, T] to
/// per-timestep representations [N, K, T]; receptive field grows
/// exponentially with depth.
class TcnEncoder : public Module {
 public:
  TcnEncoder(const TcnConfig& config, Rng* rng);

  /// Per-timestep representations [N, K, T].
  Variable Forward(const Variable& input) override;

  /// Whole-series representation [N, K] (max pooling over time, as in
  /// T-Loss/TS2Vec).
  Variable EncodeSeries(const Variable& input);

  const TcnConfig& config() const { return config_; }

 private:
  struct Block {
    std::shared_ptr<Conv1d> conv1;
    std::shared_ptr<Conv1d> conv2;
    std::shared_ptr<InstanceNorm1d> norm;
  };

  TcnConfig config_;
  std::shared_ptr<Conv1d> input_proj_;
  std::vector<Block> blocks_;
  std::shared_ptr<Conv1d> output_proj_;
};

}  // namespace units::nn

#endif  // UNITS_NN_TCN_H_
