#ifndef UNITS_NN_SEQUENTIAL_H_
#define UNITS_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"

namespace units::nn {

/// Chains child modules; Forward applies them in order.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a module (registered as "<index>").
  void Append(std::shared_ptr<Module> module);

  Variable Forward(const Variable& input) override;

  size_t size() const { return modules_.size(); }
  Module* at(size_t i) { return modules_.at(i).get(); }

 private:
  std::vector<std::shared_ptr<Module>> modules_;
};

}  // namespace units::nn

#endif  // UNITS_NN_SEQUENTIAL_H_
