#include "nn/conv1d.h"

#include "base/check.h"

namespace units::nn {

namespace ag = ::units::autograd;

Conv1d::Conv1d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               Rng* rng, int64_t dilation, ConvPadding padding, bool use_bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      dilation_(dilation),
      padding_(padding) {
  UNITS_CHECK_GE(kernel, 1);
  UNITS_CHECK_GE(dilation, 1);
  const int64_t fan_in = in_channels * kernel;
  weight_ = RegisterParameter(
      "weight", Variable(init::KaimingUniform(
                    {out_channels, in_channels, kernel}, fan_in, rng)));
  if (use_bias) {
    bias_ = RegisterParameter("bias", Variable(Tensor::Zeros({out_channels})));
  }
}

Variable Conv1d::Forward(const Variable& input) {
  const int64_t receptive = (kernel_ - 1) * dilation_;
  int64_t pad_left = 0;
  int64_t pad_right = 0;
  switch (padding_) {
    case ConvPadding::kSame:
      pad_left = receptive / 2;
      pad_right = receptive - pad_left;
      break;
    case ConvPadding::kCausal:
      pad_left = receptive;
      break;
    case ConvPadding::kValid:
      break;
  }
  return ag::Conv1d(input, weight_, bias_, dilation_, pad_left, pad_right);
}

}  // namespace units::nn
