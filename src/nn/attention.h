#ifndef UNITS_NN_ATTENTION_H_
#define UNITS_NN_ATTENTION_H_

#include <memory>

#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/norm.h"

namespace units::nn {

/// Sinusoidal positional encoding table of shape [T, C] (Vaswani et al.).
/// Cached per (length, channels): repeated calls return the same
/// storage-shared tensor, which callers must treat as immutable.
Tensor SinusoidalPositionalEncoding(int64_t length, int64_t channels);

/// True unless UNITS_ATTN=unfused. Selects between the fused
/// tile-streaming attention (ag::ScaledDotAttention) and the composed
/// scores→softmax→context path inside MultiHeadAttention::Forward. Read on
/// every call so tests can toggle it via setenv.
bool UseFusedAttention();

/// Multi-head scaled-dot-product self-attention over [N, T, C].
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int64_t model_dim, int64_t num_heads, Rng* rng,
                     float dropout = 0.0f);

  /// Self-attention: queries = keys = values = input.
  Variable Forward(const Variable& input) override;

  int64_t model_dim() const { return model_dim_; }
  int64_t num_heads() const { return num_heads_; }

 private:
  int64_t model_dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  std::shared_ptr<Linear> qkv_proj_;  // C -> 3C
  std::shared_ptr<Linear> out_proj_;  // C -> C
  std::shared_ptr<Dropout> dropout_;
};

/// Pre-norm transformer encoder block: LN → MHA → residual, LN → FFN →
/// residual. Input/output [N, T, C].
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int64_t model_dim, int64_t num_heads,
                          int64_t ff_dim, Rng* rng, float dropout = 0.1f);

  Variable Forward(const Variable& input) override;

 private:
  std::shared_ptr<LayerNorm> norm1_;
  std::shared_ptr<MultiHeadAttention> attn_;
  std::shared_ptr<LayerNorm> norm2_;
  std::shared_ptr<Linear> ff1_;
  std::shared_ptr<Linear> ff2_;
  std::shared_ptr<Dropout> dropout_;
};

/// Transformer encoder backbone for time series (TST-style): maps
/// [N, D, T] to per-timestep representations [N, K, T]. Internally works in
/// [N, T, C] layout with sinusoidal positional encodings.
class TransformerBackbone : public Module {
 public:
  TransformerBackbone(int64_t input_channels, int64_t model_dim,
                      int64_t repr_dim, int64_t num_layers, int64_t num_heads,
                      Rng* rng, float dropout = 0.1f);

  Variable Forward(const Variable& input) override;

  int64_t repr_dim() const { return repr_dim_; }

 private:
  int64_t input_channels_;
  int64_t model_dim_;
  int64_t repr_dim_;
  std::shared_ptr<Linear> input_proj_;
  std::vector<std::shared_ptr<TransformerEncoderLayer>> layers_;
  std::shared_ptr<LayerNorm> final_norm_;
  std::shared_ptr<Linear> output_proj_;
};

}  // namespace units::nn

#endif  // UNITS_NN_ATTENTION_H_
