#include "nn/module.h"

#include <cmath>

#include "base/check.h"

namespace units::nn {

std::vector<Variable> Module::Parameters() const {
  std::vector<std::pair<std::string, Variable>> named = NamedParameters();
  std::vector<Variable> out;
  out.reserve(named.size());
  for (auto& [name, v] : named) {
    out.push_back(v);
  }
  return out;
}

std::vector<std::pair<std::string, Variable>> Module::NamedParameters()
    const {
  std::vector<std::pair<std::string, Variable>> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, Variable>>* out) const {
  for (const auto& [name, v] : params_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, v);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix.empty() ? name : prefix + "." + name, out);
  }
}

void Module::ZeroGrad() {
  for (Variable& v : Parameters()) {
    v.ZeroGrad();
  }
}

void Module::SetTraining(bool training) {
  training_ = training;
  OnTrainingChanged();
  for (auto& [name, child] : children_) {
    child->SetTraining(training);
  }
}

int64_t Module::QuantizeInt8Weights() {
  int64_t quantized = 0;
  for (auto& [name, child] : children_) {
    quantized += child->QuantizeInt8Weights();
  }
  return quantized;
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const Variable& v : Parameters()) {
    total += v.numel();
  }
  return total;
}

Variable Module::RegisterParameter(const std::string& name, Variable param) {
  UNITS_CHECK(param.defined());
  param.set_requires_grad(true);
  params_.emplace_back(name, param);
  return param;
}

namespace init {

Tensor XavierUniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng* rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::RandUniform(std::move(shape), rng, -bound, bound);
}

Tensor KaimingUniform(Shape shape, int64_t fan_in, Rng* rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  return Tensor::RandUniform(std::move(shape), rng, -bound, bound);
}

}  // namespace init

}  // namespace units::nn
