#include "nn/tcn.h"

#include "base/check.h"
#include "base/string_util.h"

namespace units::nn {

namespace ag = ::units::autograd;

TcnEncoder::TcnEncoder(const TcnConfig& config, Rng* rng) : config_(config) {
  const ConvPadding pad =
      config.causal ? ConvPadding::kCausal : ConvPadding::kSame;
  input_proj_ = RegisterModule(
      "input_proj",
      std::make_shared<Conv1d>(config.input_channels, config.hidden_channels,
                               /*kernel=*/1, rng));
  int64_t dilation = 1;
  for (int64_t b = 0; b < config.num_blocks; ++b) {
    Block block;
    block.conv1 = RegisterModule(
        StrCat("block", b, ".conv1"),
        std::make_shared<Conv1d>(config.hidden_channels,
                                 config.hidden_channels, config.kernel, rng,
                                 dilation, pad));
    block.conv2 = RegisterModule(
        StrCat("block", b, ".conv2"),
        std::make_shared<Conv1d>(config.hidden_channels,
                                 config.hidden_channels, config.kernel, rng,
                                 dilation, pad));
    block.norm = RegisterModule(
        StrCat("block", b, ".norm"),
        std::make_shared<InstanceNorm1d>(config.hidden_channels));
    blocks_.push_back(std::move(block));
    dilation *= 2;
  }
  output_proj_ = RegisterModule(
      "output_proj",
      std::make_shared<Conv1d>(config.hidden_channels, config.repr_channels,
                               /*kernel=*/1, rng));
}

Variable TcnEncoder::Forward(const Variable& input) {
  UNITS_CHECK_EQ(input.ndim(), 3);
  UNITS_CHECK_EQ(input.dim(1), config_.input_channels);
  Variable x = input_proj_->Forward(input);
  for (Block& block : blocks_) {
    Variable h = block.norm->Forward(x);
    h = ApplyActivation(config_.activation, h);
    h = block.conv1->Forward(h);
    h = ApplyActivation(config_.activation, h);
    h = block.conv2->Forward(h);
    x = ag::Add(x, h);  // residual
  }
  return output_proj_->Forward(x);
}

Variable TcnEncoder::EncodeSeries(const Variable& input) {
  return ag::MaxPoolOverTime(Forward(input));
}

}  // namespace units::nn
