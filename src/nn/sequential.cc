#include "nn/sequential.h"

namespace units::nn {

void Sequential::Append(std::shared_ptr<Module> module) {
  RegisterModule(std::to_string(modules_.size()), module);
  modules_.push_back(std::move(module));
}

Variable Sequential::Forward(const Variable& input) {
  Variable x = input;
  for (auto& m : modules_) {
    x = m->Forward(x);
  }
  return x;
}

}  // namespace units::nn
