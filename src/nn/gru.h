#ifndef UNITS_NN_GRU_H_
#define UNITS_NN_GRU_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace units::nn {

/// Recurrent (GRU) encoder backbone: a third architecture choice beyond
/// the TCN and transformer, supporting the paper's "model architecture is
/// taken as hyper-parameters" claim. Maps [N, D, T] to per-timestep
/// representations [N, K, T]; the hidden state is causal by construction.
///
/// Gate equations (Cho et al. 2014):
///   z_t = sigmoid(W_z x_t + U_z h_{t-1} + b_z)
///   r_t = sigmoid(W_r x_t + U_r h_{t-1} + b_r)
///   h~  = tanh   (W_h x_t + U_h (r_t * h_{t-1}) + b_h)
///   h_t = (1 - z_t) * h_{t-1} + z_t * h~
class GruBackbone : public Module {
 public:
  GruBackbone(int64_t input_channels, int64_t hidden_dim, int64_t repr_dim,
              Rng* rng);

  Variable Forward(const Variable& input) override;

  /// Opts out of int8 quantization: the recurrent projections feed their
  /// own output back as input, so per-step rounding error compounds over
  /// T timesteps instead of staying bounded like in feed-forward layers.
  int64_t QuantizeInt8Weights() override { return 0; }

  int64_t repr_dim() const { return repr_dim_; }

 private:
  int64_t input_channels_;
  int64_t hidden_dim_;
  int64_t repr_dim_;
  // Input and recurrent projections for the three gates, fused as single
  // [D -> 3H] / [H -> 3H] maps for fewer graph nodes.
  std::shared_ptr<Linear> input_proj_;      // x_t -> [z | r | h~] pre-acts
  std::shared_ptr<Linear> recurrent_proj_;  // h_{t-1} -> [z | r] pre-acts
  std::shared_ptr<Linear> candidate_proj_;  // (r*h_{t-1}) -> h~ pre-acts
  std::shared_ptr<Linear> output_proj_;     // h_t -> repr
};

}  // namespace units::nn

#endif  // UNITS_NN_GRU_H_
