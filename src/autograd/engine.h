#ifndef UNITS_AUTOGRAD_ENGINE_H_
#define UNITS_AUTOGRAD_ENGINE_H_

#include "autograd/variable.h"

/// Reverse-mode execution engines. Variable::Backward() seeds the root
/// gradient and delegates here; the engine decides how the graph is swept.
///
/// Two engines exist:
///
///  - Serial: the classic reverse-topological sweep. One node at a time, in
///    the exact post-order-DFS-derived order. This is the parity oracle.
///  - Parallel: a dependency-counted ready queue in the style of PyTorch's
///    autograd engine. Graph discovery counts the consumer edges of every
///    node; the root seeds the queue; base::ThreadPool workers pop ready
///    nodes and run their backward_fn concurrently, so independent branches
///    (e.g. the M parallel encoders UniTS fuses per sample) back-propagate
///    at the same time.
///
/// Determinism contract: gradients are bitwise identical between the two
/// engines and across any thread count. Concurrent backward_fns never write
/// a shared gradient buffer directly — each contribution is captured into a
/// per-node bucket tagged with the consumer's serial execution index, and
/// when a node's last consumer finishes, the bucket is reduced in ascending
/// consumer order, which reproduces the serial sweep's accumulation order
/// exactly (kernels themselves are already thread-count-deterministic, see
/// base/parallel.h).
///
/// The UNITS_BACKWARD environment variable selects the engine:
///   unset / "auto"  parallel engine when the pool has >1 thread, serial
///                   sweep otherwise (the engine adds no value on one
///                   thread, so the hot path skips its bookkeeping);
///   "parallel"      always the ready-queue engine, even on 1 thread;
///   "serial"        always the serial sweep (escape hatch / oracle, the
///                   same pattern as UNITS_GEMM / UNITS_ATTN / UNITS_PLAN).

namespace units::autograd {

/// Engine choice for one Backward() call.
enum class BackwardMode {
  kAuto,      ///< parallel iff the global pool has more than one thread
  kParallel,  ///< dependency-counted ready-queue engine
  kSerial,    ///< reverse-topological serial sweep (parity oracle)
};

/// Reads UNITS_BACKWARD (see above). Re-read on every call so tests can
/// flip engines with setenv, mirroring plan::ModeFromEnv().
BackwardMode BackwardModeFromEnv();

/// Sweeps the graph rooted at `root`, whose gradient must already be
/// seeded. Dispatches on BackwardModeFromEnv(); a Backward() issued from
/// inside a running parallel engine (re-entrant backward) always runs the
/// serial sweep on the calling thread.
void RunBackward(internal::VariableImpl* root);

namespace internal {

/// Called by Variable::AccumulateGrad. Returns true when the calling thread
/// is executing a backward_fn inside the parallel engine and `node` belongs
/// to the active graph: the contribution has been captured into the node's
/// bucket (tagged with the running consumer's serial index) for deferred
/// in-order reduction, and must not be applied directly. Returns false
/// otherwise — the caller applies the gradient immediately.
bool RouteGradContribution(VariableImpl* node, const Tensor& g);

}  // namespace internal

}  // namespace units::autograd

#endif  // UNITS_AUTOGRAD_ENGINE_H_
