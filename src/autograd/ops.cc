#include "autograd/ops.h"

#include <cmath>
#include <utility>

#include "base/check.h"
#include "base/parallel.h"
#include "plan/trace.h"
#include "tensor/scalar_fns.h"
#include "tensor/tensor_ops.h"

namespace units::autograd {

namespace {

/// Accumulates `g` (shaped like the op output) into `v`, reducing over
/// broadcast dimensions first.
void AccumulateBroadcast(Variable v, const Tensor& g) {
  if (!v.requires_grad()) {
    return;
  }
  v.AccumulateGrad(ops::ReduceToShape(g, v.shape()));
}

void Accumulate(Variable v, const Tensor& g) {
  if (!v.requires_grad()) {
    return;
  }
  v.AccumulateGrad(g);
}

/// Registers an op result with the active plan tracer (no-op unless the
/// calling thread is inside an EvalPlan capture) and passes it through.
Variable Traced(plan::OpKind kind, const Variable& a, Variable result,
                const plan::NodeArgs& args = {}) {
  if (plan::TraceActive()) {
    plan::TraceUnary(kind, a, result, args);
  }
  return result;
}

Variable Traced2(plan::OpKind kind, const Variable& a, const Variable& b,
                 Variable result) {
  if (plan::TraceActive()) {
    plan::TraceBinary(kind, a, b, result);
  }
  return result;
}

}  // namespace

Variable Constant(Tensor t) { return Variable(std::move(t), false); }

// --- arithmetic -----------------------------------------------------------

Variable Add(const Variable& a, const Variable& b) {
  Tensor out = ops::Add(a.data(), b.data());
  return Traced2(
      plan::OpKind::kAdd, a, b,
      Variable::MakeNode(std::move(out), {a, b}, [a, b](const Tensor& g) {
        AccumulateBroadcast(a, g);
        AccumulateBroadcast(b, g);
      }));
}

Variable Sub(const Variable& a, const Variable& b) {
  Tensor out = ops::Sub(a.data(), b.data());
  return Traced2(
      plan::OpKind::kSub, a, b,
      Variable::MakeNode(std::move(out), {a, b}, [a, b](const Tensor& g) {
        AccumulateBroadcast(a, g);
        AccumulateBroadcast(b, ops::Neg(g));
      }));
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor out = ops::Mul(a.data(), b.data());
  return Traced2(
      plan::OpKind::kMul, a, b,
      Variable::MakeNode(std::move(out), {a, b}, [a, b](const Tensor& g) {
        AccumulateBroadcast(a, ops::Mul(g, b.data()));
        AccumulateBroadcast(b, ops::Mul(g, a.data()));
      }));
}

Variable Div(const Variable& a, const Variable& b) {
  Tensor out = ops::Div(a.data(), b.data());
  return Traced2(
      plan::OpKind::kDiv, a, b,
      Variable::MakeNode(std::move(out), {a, b}, [a, b](const Tensor& g) {
        AccumulateBroadcast(a, ops::Div(g, b.data()));
        // d/db (a/b) = -a / b^2
        Tensor gb = ops::Neg(
            ops::Div(ops::Mul(g, a.data()), ops::Square(b.data())));
        AccumulateBroadcast(b, gb);
      }));
}

Variable Neg(const Variable& a) {
  return Traced(plan::OpKind::kNeg, a,
                Variable::MakeNode(ops::Neg(a.data()), {a},
                                   [a](const Tensor& g) {
                                     Accumulate(a, ops::Neg(g));
                                   }));
}

Variable AddScalar(const Variable& a, float s) {
  return Traced(plan::OpKind::kAddScalar, a,
                Variable::MakeNode(ops::AddScalar(a.data(), s), {a},
                                   [a](const Tensor& g) { Accumulate(a, g); }),
                plan::NodeArgs{.scalar = s});
}

Variable MulScalar(const Variable& a, float s) {
  return Traced(plan::OpKind::kMulScalar, a,
                Variable::MakeNode(ops::MulScalar(a.data(), s), {a},
                                   [a, s](const Tensor& g) {
                                     Accumulate(a, ops::MulScalar(g, s));
                                   }),
                plan::NodeArgs{.scalar = s});
}

Variable PowScalar(const Variable& a, float p) {
  Tensor out =
      ops::UnaryOp(a.data(), [p](float x) { return scalar::PowScalar(x, p); });
  return Traced(plan::OpKind::kPowScalar, a,
                Variable::MakeNode(
                    std::move(out), {a},
                    [a, p](const Tensor& g) {
                      Tensor dx = ops::UnaryOp(a.data(), [p](float x) {
                        return p * std::pow(x, p - 1.0f);
                      });
                      Accumulate(a, ops::Mul(g, dx));
                    }),
                plan::NodeArgs{.scalar = p});
}

// --- linear algebra -------------------------------------------------------

Variable MatMul(const Variable& a, const Variable& b) {
  Tensor out = ops::MatMul(a.data(), b.data());
  return Traced2(
      plan::OpKind::kMatMul, a, b,
      Variable::MakeNode(std::move(out), {a, b}, [a, b](const Tensor& g) {
        if (a.requires_grad()) {
          a.AccumulateGrad(ops::MatMul(g, ops::Transpose2D(b.data())));
        }
        if (b.requires_grad()) {
          b.AccumulateGrad(ops::MatMul(ops::Transpose2D(a.data()), g));
        }
      }));
}

Variable QuantizedLinear(
    const Variable& x,
    std::shared_ptr<const quant::QuantizedLinearWeights> weights) {
  UNITS_CHECK(weights != nullptr);
  UNITS_CHECK_EQ(x.ndim(), 2);
  UNITS_CHECK_EQ(x.dim(1), weights->in_features);
  const int64_t rows = x.dim(0);
  Tensor out({rows, weights->out_features});
  quant::QuantizedLinearForward(x.data().data(), rows, *weights, out.data());
  Variable result =
      Variable::MakeNode(std::move(out), {x}, [](const Tensor&) {
        UNITS_CHECK_MSG(false,
                        "QuantizedLinear is inference-only and has no "
                        "backward; dequantize before training");
      });
  if (plan::TraceActive()) {
    plan::TraceQuantLinear(x, std::move(weights), result);
  }
  return result;
}

Variable BatchedMatMul(const Variable& a, const Variable& b) {
  Tensor out = ops::BatchedMatMul(a.data(), b.data());
  return Traced2(
      plan::OpKind::kBatchedMatMul, a, b,
      Variable::MakeNode(std::move(out), {a, b}, [a, b](const Tensor& g) {
        if (a.requires_grad()) {
          a.AccumulateGrad(
              ops::BatchedMatMul(g, ops::Transpose(b.data(), 1, 2)));
        }
        if (b.requires_grad()) {
          b.AccumulateGrad(
              ops::BatchedMatMul(ops::Transpose(a.data(), 1, 2), g));
        }
      }));
}

Variable Transpose(const Variable& a, int axis0, int axis1) {
  Tensor out = ops::Transpose(a.data(), axis0, axis1);
  return Traced(plan::OpKind::kTranspose, a,
                Variable::MakeNode(std::move(out), {a},
                                   [a, axis0, axis1](const Tensor& g) {
                                     Accumulate(
                                         a, ops::Transpose(g, axis0, axis1));
                                   }),
                plan::NodeArgs{.axis0 = axis0, .axis1 = axis1});
}

Variable Reshape(const Variable& a, Shape new_shape) {
  Tensor out = a.data().Reshape(std::move(new_shape));
  const Shape original = a.shape();
  return Traced(plan::OpKind::kReshape, a,
                Variable::MakeNode(std::move(out), {a},
                                   [a, original](const Tensor& g) {
                                     Accumulate(a, g.Reshape(original));
                                   }));
}

// --- nonlinearities -------------------------------------------------------

Variable Relu(const Variable& a) {
  Tensor out = ops::Relu(a.data());
  return Traced(
      plan::OpKind::kRelu, a,
      Variable::MakeNode(std::move(out), {a}, [a](const Tensor& g) {
        Tensor dx = ops::BinaryOp(g, a.data(), [](float gi, float x) {
          return x > 0.0f ? gi : 0.0f;
        });
        Accumulate(a, dx);
      }));
}

Variable LeakyRelu(const Variable& a, float slope) {
  Tensor out = ops::UnaryOp(
      a.data(), [slope](float x) { return scalar::LeakyRelu(x, slope); });
  return Traced(
      plan::OpKind::kLeakyRelu, a,
      Variable::MakeNode(std::move(out), {a},
                         [a, slope](const Tensor& g) {
                           Tensor dx = ops::BinaryOp(
                               g, a.data(), [slope](float gi, float x) {
                                 return x > 0.0f ? gi : slope * gi;
                               });
                           Accumulate(a, dx);
                         }),
      plan::NodeArgs{.scalar = slope});
}

Variable Gelu(const Variable& a) {
  Tensor out = ops::Gelu(a.data());
  return Traced(
      plan::OpKind::kGelu, a,
      Variable::MakeNode(std::move(out), {a}, [a](const Tensor& g) {
        Tensor dx = ops::BinaryOp(g, a.data(), [](float gi, float x) {
          const float kC = 0.7978845608f;  // sqrt(2/pi)
          const float u = kC * (x + 0.044715f * x * x * x);
          const float t = std::tanh(u);
          const float du = kC * (1.0f + 3.0f * 0.044715f * x * x);
          return gi * (0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du);
        });
        Accumulate(a, dx);
      }));
}

Variable Tanh(const Variable& a) {
  Tensor out = ops::Tanh(a.data());
  Tensor saved = out;  // aliases out's storage (cheap)
  return Traced(
      plan::OpKind::kTanh, a,
      Variable::MakeNode(std::move(out), {a}, [a, saved](const Tensor& g) {
        Tensor dx = ops::BinaryOp(g, saved, [](float gi, float y) {
          return gi * (1.0f - y * y);
        });
        Accumulate(a, dx);
      }));
}

Variable Sigmoid(const Variable& a) {
  Tensor out = ops::Sigmoid(a.data());
  Tensor saved = out;
  return Traced(
      plan::OpKind::kSigmoid, a,
      Variable::MakeNode(std::move(out), {a}, [a, saved](const Tensor& g) {
        Tensor dx = ops::BinaryOp(g, saved, [](float gi, float y) {
          return gi * y * (1.0f - y);
        });
        Accumulate(a, dx);
      }));
}

Variable Exp(const Variable& a) {
  Tensor out = ops::Exp(a.data());
  Tensor saved = out;
  return Traced(
      plan::OpKind::kExp, a,
      Variable::MakeNode(std::move(out), {a}, [a, saved](const Tensor& g) {
        Accumulate(a, ops::Mul(g, saved));
      }));
}

Variable Log(const Variable& a) {
  Tensor out = ops::Log(a.data());
  return Traced(
      plan::OpKind::kLog, a,
      Variable::MakeNode(std::move(out), {a}, [a](const Tensor& g) {
        Accumulate(a, ops::Div(g, a.data()));
      }));
}

Variable Sqrt(const Variable& a) {
  Tensor out = ops::Sqrt(a.data());
  Tensor saved = out;
  return Traced(
      plan::OpKind::kSqrt, a,
      Variable::MakeNode(std::move(out), {a}, [a, saved](const Tensor& g) {
        Tensor dx = ops::BinaryOp(g, saved, [](float gi, float y) {
          return gi * 0.5f / y;
        });
        Accumulate(a, dx);
      }));
}

Variable Square(const Variable& a) {
  Tensor out = ops::Square(a.data());
  return Traced(
      plan::OpKind::kSquare, a,
      Variable::MakeNode(std::move(out), {a}, [a](const Tensor& g) {
        Tensor dx = ops::BinaryOp(g, a.data(), [](float gi, float x) {
          return gi * 2.0f * x;
        });
        Accumulate(a, dx);
      }));
}

Variable Abs(const Variable& a) {
  Tensor out = ops::Abs(a.data());
  return Traced(
      plan::OpKind::kAbs, a,
      Variable::MakeNode(std::move(out), {a}, [a](const Tensor& g) {
        Tensor dx = ops::BinaryOp(g, a.data(), [](float gi, float x) {
          return x > 0.0f ? gi : (x < 0.0f ? -gi : 0.0f);
        });
        Accumulate(a, dx);
      }));
}

Variable Softmax(const Variable& a, int axis) {
  Tensor out = ops::SoftmaxFused(a.data(), axis);
  Tensor saved = out;
  return Traced(
      plan::OpKind::kSoftmax, a,
      Variable::MakeNode(
          std::move(out), {a},
          [a, saved, axis](const Tensor& g) {
            // dx = p ⊙ (g − Σ g⊙p), one row-wise pass, no temporaries.
            Accumulate(a, ops::SoftmaxBackward(saved, g, axis));
          }),
      plan::NodeArgs{.axis0 = axis});
}

Variable LogSoftmax(const Variable& a, int axis) {
  Tensor out = ops::LogSoftmaxFused(a.data(), axis);
  Tensor saved = out;
  return Traced(
      plan::OpKind::kLogSoftmax, a,
      Variable::MakeNode(
          std::move(out), {a},
          [a, saved, axis](const Tensor& g) {
            // dx = g − exp(out) ⊙ Σ g, one row-wise pass.
            Accumulate(a, ops::LogSoftmaxBackward(saved, g, axis));
          }),
      plan::NodeArgs{.axis0 = axis});
}

Variable ScaledDotAttention(const Variable& q, const Variable& k,
                            const Variable& v, float scale,
                            const Tensor& dropout_mask) {
  const bool need_grad =
      GradEnabled() &&
      (q.requires_grad() || k.requires_grad() || v.requires_grad());
  if (!need_grad) {
    // Streaming tiles: the [B, T, T] probability tensor is never built.
    Variable result(ops::AttentionForwardStreaming(q.data(), k.data(),
                                                   v.data(), scale,
                                                   dropout_mask));
    if (plan::TraceActive()) {
      if (dropout_mask.numel() > 0) {
        plan::PoisonTrace("attention with a dropout mask in an eval trace");
      } else {
        plan::TraceAttention(q, k, v, scale, result);
      }
    }
    return result;
  }
  Tensor probs;
  Tensor out = ops::AttentionForwardTrain(q.data(), k.data(), v.data(), scale,
                                          dropout_mask, &probs);
  return Variable::MakeNode(
      std::move(out), {q, k, v},
      [q, k, v, scale, probs, dropout_mask](const Tensor& g) {
        ops::AttentionGrads grads = ops::AttentionBackward(
            q.data(), k.data(), v.data(), scale, probs, dropout_mask, g);
        Accumulate(q, grads.dq);
        Accumulate(k, grads.dk);
        Accumulate(v, grads.dv);
      });
}

// --- reductions -----------------------------------------------------------

Variable Sum(const Variable& a, int axis, bool keepdim) {
  Tensor out = ops::Sum(a.data(), axis, keepdim);
  const Shape in_shape = a.shape();
  const int ndim = a.ndim();
  const int norm_axis = axis < 0 ? axis + ndim : axis;
  return Traced(
      plan::OpKind::kSum, a,
      Variable::MakeNode(
          std::move(out), {a},
          [a, in_shape, norm_axis, keepdim](const Tensor& g) {
            Tensor gk = g;
            if (!keepdim) {
              Shape keep = in_shape;
              keep[static_cast<size_t>(norm_axis)] = 1;
              gk = g.Reshape(keep);
            }
            // Broadcast back up to the input shape.
            Accumulate(a, ops::Add(Tensor::Zeros(in_shape), gk));
          }),
      plan::NodeArgs{.axis0 = norm_axis, .keepdim = keepdim});
}

Variable Mean(const Variable& a, int axis, bool keepdim) {
  const int ndim = a.ndim();
  const int norm_axis = axis < 0 ? axis + ndim : axis;
  const float inv = 1.0f / static_cast<float>(a.dim(norm_axis));
  return MulScalar(Sum(a, axis, keepdim), inv);
}

Variable SumAll(const Variable& a) {
  Tensor out = Tensor::Scalar(ops::SumAll(a.data()));
  const Shape in_shape = a.shape();
  return Variable::MakeNode(std::move(out), {a},
                            [a, in_shape](const Tensor& g) {
                              Accumulate(a, Tensor::Full(in_shape, g[0]));
                            });
}

Variable MeanAll(const Variable& a) {
  const float inv = 1.0f / static_cast<float>(a.numel());
  return MulScalar(SumAll(a), inv);
}

Variable MaxPoolOverTime(const Variable& a) {
  UNITS_CHECK_EQ(a.ndim(), 3);
  auto [values, args] = ops::MaxWithArg(a.data(), /*axis=*/2);
  const Shape in_shape = a.shape();
  return Traced(
      plan::OpKind::kMaxPool, a,
      Variable::MakeNode(
          std::move(values), {a},
          [a, in_shape, args = std::move(args)](const Tensor& g) {
            Tensor dx = Tensor::Zeros(in_shape);
            float* pd = dx.data();
            const float* pg = g.data();
            for (size_t i = 0; i < args.size(); ++i) {
              pd[args[i]] += pg[static_cast<int64_t>(i)];
            }
            Accumulate(a, dx);
          }));
}

Variable MeanPoolOverTime(const Variable& a) {
  UNITS_CHECK_EQ(a.ndim(), 3);
  return Mean(a, /*axis=*/2, /*keepdim=*/false);
}

// --- shape ops ------------------------------------------------------------

Variable Slice(const Variable& a, int axis, int64_t start, int64_t length) {
  Tensor out = ops::Slice(a.data(), axis, start, length);
  const Shape in_shape = a.shape();
  const int ndim = a.ndim();
  const int norm_axis = axis < 0 ? axis + ndim : axis;
  Variable result = Variable::MakeNode(
      std::move(out), {a},
      [a, in_shape, norm_axis, start, length](const Tensor& g) {
        // Embed g back into a zero tensor of the input shape.
        Tensor dx = Tensor::Zeros(in_shape);
        int64_t outer = 1;
        int64_t inner = 1;
        for (int d = 0; d < norm_axis; ++d) {
          outer *= in_shape[static_cast<size_t>(d)];
        }
        for (size_t d = static_cast<size_t>(norm_axis) + 1;
             d < in_shape.size(); ++d) {
          inner *= in_shape[d];
        }
        const int64_t len_in = in_shape[static_cast<size_t>(norm_axis)];
        const float* pg = g.data();
        float* pd = dx.data();
        for (int64_t o = 0; o < outer; ++o) {
          for (int64_t x = 0; x < length; ++x) {
            const float* src = pg + (o * length + x) * inner;
            float* dst = pd + (o * len_in + start + x) * inner;
            for (int64_t i = 0; i < inner; ++i) {
              dst[i] += src[i];
            }
          }
        }
        Accumulate(a, dx);
      });
  return Traced(plan::OpKind::kSlice, a, std::move(result),
                plan::NodeArgs{.axis0 = norm_axis, .i0 = start, .i1 = length});
}

Variable Concat(const std::vector<Variable>& parts, int axis) {
  UNITS_CHECK(!parts.empty());
  std::vector<Tensor> datas;
  datas.reserve(parts.size());
  for (const Variable& p : parts) {
    datas.push_back(p.data());
  }
  Tensor out = ops::Concat(datas, axis);
  const int ndim = parts[0].ndim();
  const int norm_axis = axis < 0 ? axis + ndim : axis;
  std::vector<int64_t> lengths;
  lengths.reserve(parts.size());
  for (const Variable& p : parts) {
    lengths.push_back(p.dim(norm_axis));
  }
  Variable result = Variable::MakeNode(
      std::move(out), parts,
      [parts, norm_axis, lengths](const Tensor& g) {
        int64_t offset = 0;
        for (size_t i = 0; i < parts.size(); ++i) {
          if (parts[i].requires_grad()) {
            parts[i].AccumulateGrad(
                ops::Slice(g, norm_axis, offset, lengths[i]));
          }
          offset += lengths[i];
        }
      });
  if (plan::TraceActive()) {
    plan::TraceConcat(parts, norm_axis, result);
  }
  return result;
}

Variable GatherRows(const Variable& a, std::vector<int64_t> indices) {
  Tensor out = ops::GatherRows(a.data(), indices);
  const int64_t num_rows = a.dim(0);
  return Variable::MakeNode(
      std::move(out), {a},
      [a, indices = std::move(indices), num_rows](const Tensor& g) {
        Accumulate(a, ops::ScatterAddRows(g, indices, num_rows));
      });
}

// --- convolution ----------------------------------------------------------

namespace {

/// [N, Cout, Tout] -> [Cout, N*Tout].
Tensor PackConvGrad(const Tensor& g, int64_t n, int64_t c_out, int64_t t_out) {
  Tensor g2 = Tensor::Zeros({c_out, n * t_out});
  const float* pg = g.data();
  float* p2 = g2.data();
  base::ParallelFor(
      0, c_out, std::max<int64_t>(1, 16384 / std::max<int64_t>(1, n * t_out)),
      [&](int64_t co0, int64_t co1) {
        for (int64_t ni = 0; ni < n; ++ni) {
          for (int64_t co = co0; co < co1; ++co) {
            const float* src = pg + (ni * c_out + co) * t_out;
            float* dst = p2 + co * (n * t_out) + ni * t_out;
            std::copy(src, src + t_out, dst);
          }
        }
      });
  return g2;
}

}  // namespace

Variable Conv1d(const Variable& input, const Variable& weight,
                const Variable& bias, int64_t dilation, int64_t pad_left,
                int64_t pad_right) {
  UNITS_CHECK_EQ(input.ndim(), 3);
  UNITS_CHECK_EQ(weight.ndim(), 3);
  const int64_t n = input.dim(0);
  const int64_t c_in = input.dim(1);
  const int64_t t = input.dim(2);
  const int64_t c_out = weight.dim(0);
  UNITS_CHECK_EQ(weight.dim(1), c_in);
  const int64_t kernel = weight.dim(2);
  const int64_t t_out = t + pad_left + pad_right - (kernel - 1) * dilation;
  UNITS_CHECK_GT(t_out, 0);

  Tensor cols = ops::Im2Col1D(input.data(), kernel, dilation, pad_left,
                              pad_right);                     // [Cin*k, N*Tout]
  Tensor w2 = weight.data().Reshape({c_out, c_in * kernel});  // view
  Tensor out2 = ops::MatMul(w2, cols);                        // [Cout, N*Tout]
  Tensor out = ops::ConvUnpack(out2, n, c_out, t_out);
  if (bias.defined()) {
    UNITS_CHECK_EQ(bias.numel(), c_out);
    // Broadcast bias over N and Tout: reshape to [Cout, 1].
    out = ops::Add(out, bias.data().Reshape({c_out, 1}));
  }

  const Shape in_shape = input.shape();
  const Shape w_shape = weight.shape();
  std::vector<Variable> parents = {input, weight};
  if (bias.defined()) {
    parents.push_back(bias);
  }
  Variable result = Variable::MakeNode(
      std::move(out), parents,
      [input, weight, bias, cols, in_shape, w_shape, n, c_in, c_out, kernel,
       t_out, dilation, pad_left, pad_right](const Tensor& g) {
        Tensor g2 = PackConvGrad(g, n, c_out, t_out);  // [Cout, N*Tout]
        if (weight.requires_grad()) {
          Tensor gw2 = ops::MatMul(g2, ops::Transpose2D(cols));
          weight.AccumulateGrad(gw2.Reshape(w_shape));
        }
        if (input.requires_grad()) {
          Tensor w2b = weight.data().Reshape({c_out, c_in * kernel});
          Tensor gcols = ops::MatMul(ops::Transpose2D(w2b), g2);
          input.AccumulateGrad(ops::Col2Im1D(gcols, in_shape, kernel,
                                             dilation, pad_left, pad_right));
        }
        if (bias.defined() && bias.requires_grad()) {
          // Sum over batch and time: rows of g2 sum to per-channel grads.
          Tensor gb = ops::Sum(g2, /*axis=*/1, /*keepdim=*/false);
          bias.AccumulateGrad(gb.Reshape(bias.shape()));
        }
      });
  if (plan::TraceActive()) {
    plan::TraceConv1d(input, w2, bias, result, kernel, dilation, pad_left,
                      pad_right);
  }
  return result;
}

// --- losses ---------------------------------------------------------------

Variable NllLoss(const Variable& log_probs,
                 const std::vector<int64_t>& targets) {
  UNITS_CHECK_EQ(log_probs.ndim(), 2);
  const int64_t n = log_probs.dim(0);
  const int64_t c = log_probs.dim(1);
  UNITS_CHECK_EQ(static_cast<int64_t>(targets.size()), n);
  const float* p = log_probs.data().data();
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = targets[static_cast<size_t>(i)];
    UNITS_CHECK(y >= 0 && y < c);
    loss -= static_cast<double>(p[i * c + y]);
  }
  Tensor out = Tensor::Scalar(static_cast<float>(loss / static_cast<double>(n)));
  return Variable::MakeNode(
      std::move(out), {log_probs}, [log_probs, targets, n, c](const Tensor& g) {
        Tensor dx = Tensor::Zeros({n, c});
        const float scale = -g[0] / static_cast<float>(n);
        float* pd = dx.data();
        for (int64_t i = 0; i < n; ++i) {
          pd[i * c + targets[static_cast<size_t>(i)]] = scale;
        }
        Accumulate(log_probs, dx);
      });
}

Variable CrossEntropyLoss(const Variable& logits,
                          const std::vector<int64_t>& targets) {
  return NllLoss(LogSoftmax(logits, /*axis=*/-1), targets);
}

Variable MseLoss(const Variable& pred, const Variable& target) {
  return MeanAll(Square(Sub(pred, target)));
}

Variable L1Loss(const Variable& pred, const Variable& target) {
  return MeanAll(Abs(Sub(pred, target)));
}

Variable MaskedMseLoss(const Variable& pred, const Variable& target,
                       const Tensor& mask) {
  UNITS_CHECK(SameShape(pred.shape(), mask.shape()));
  const float mask_sum = ops::SumAll(mask);
  if (mask_sum <= 0.0f) {
    return Constant(Tensor::Scalar(0.0f));
  }
  Variable diff = Sub(pred, target);
  Variable masked = Mul(diff, Constant(mask));
  Variable sq = Square(masked);
  return MulScalar(SumAll(sq), 1.0f / mask_sum);
}

// --- composite helpers ----------------------------------------------------

Variable L2Normalize(const Variable& a, int axis, float eps) {
  Variable sq = Square(a);
  Variable s = Sum(sq, axis, /*keepdim=*/true);
  Variable norm = Sqrt(AddScalar(s, eps));
  return Div(a, norm);
}

}  // namespace units::autograd
