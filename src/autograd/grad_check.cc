#include "autograd/grad_check.h"

#include <cmath>

#include "base/check.h"
#include "base/string_util.h"

namespace units::autograd {

GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable> inputs, float eps, float tol) {
  GradCheckResult result;
  result.passed = true;

  // Analytic pass.
  for (Variable& v : inputs) {
    UNITS_CHECK(v.requires_grad());
    v.ZeroGrad();
  }
  Variable out = fn(inputs);
  UNITS_CHECK_EQ(out.numel(), 1);
  out.Backward();
  std::vector<Tensor> analytic;
  analytic.reserve(inputs.size());
  for (const Variable& v : inputs) {
    analytic.push_back(v.grad().Clone());
  }

  // Numeric pass: central differences, one coordinate at a time. Gradients
  // are float32 computed over potentially long chains, so the tolerance is
  // necessarily loose.
  for (size_t vi = 0; vi < inputs.size(); ++vi) {
    Tensor& x = inputs[vi].data();
    for (int64_t i = 0; i < x.numel(); ++i) {
      const float saved = x[i];
      x[i] = saved + eps;
      const float f_plus = fn(inputs).item();
      x[i] = saved - eps;
      const float f_minus = fn(inputs).item();
      x[i] = saved;
      const float numeric = (f_plus - f_minus) / (2.0f * eps);
      const float a = analytic[vi][i];
      const float abs_err = std::fabs(a - numeric);
      const float rel_err = abs_err / std::max(1.0f, std::fabs(numeric));
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (rel_err > tol && result.passed) {
        result.passed = false;
        result.detail =
            StrFormat("input %zu coord %lld: analytic=%g numeric=%g", vi,
                      static_cast<long long>(i), static_cast<double>(a),
                      static_cast<double>(numeric));
      }
    }
  }
  return result;
}

}  // namespace units::autograd
