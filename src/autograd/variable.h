#ifndef UNITS_AUTOGRAD_VARIABLE_H_
#define UNITS_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace units::autograd {

class Variable;

namespace internal {

/// Node in the dynamic computation graph. Holds the forward value, the
/// accumulated gradient, the parent edges and the backward closure that
/// pushes this node's gradient into its parents.
struct VariableImpl {
  Tensor data;
  Tensor grad;               // allocated lazily (empty until first use)
  bool has_grad = false;     // whether `grad` is allocated
  bool requires_grad = false;
  std::vector<std::shared_ptr<VariableImpl>> parents;
  /// Receives d(loss)/d(this). Must accumulate into each parent that
  /// requires grad (via Variable::AccumulateGrad on a wrapper).
  std::function<void(const Tensor&)> backward_fn;
};

/// Adds `g` into `impl`'s gradient buffer directly (clone on first use,
/// elementwise add afterwards), bypassing the engine routing that
/// Variable::AccumulateGrad applies. Used by the backward engines to seed
/// the root and to flush contribution buckets in serial order.
void AccumulateGradInto(VariableImpl* impl, const Tensor& g);

}  // namespace internal

/// True while gradients are being recorded (default). Use NoGradGuard to
/// switch off graph construction for inference / evaluation.
bool GradEnabled();

/// RAII scope that disables graph recording.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Handle to a node in the autograd graph. Copying is cheap (shared impl).
/// Leaf variables created with requires_grad=true accumulate gradients when
/// Backward() is called on a downstream scalar.
class Variable {
 public:
  /// Null handle; defined() is false.
  Variable() = default;

  /// Leaf variable wrapping `data`.
  explicit Variable(Tensor data, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }

  Tensor& data();
  const Tensor& data() const;

  const Shape& shape() const { return data().shape(); }
  int64_t numel() const { return data().numel(); }
  int ndim() const { return data().ndim(); }
  int64_t dim(int axis) const { return data().dim(axis); }

  bool requires_grad() const;
  void set_requires_grad(bool value);

  /// Gradient tensor (zeros if never written). Valid only for nodes that
  /// required grad during a Backward() pass.
  const Tensor& grad() const;
  bool has_grad() const;

  /// Mutable view of the gradient buffer (allocating it if absent); used by
  /// optimizers for in-place transforms such as clipping.
  Tensor& mutable_grad() const;

  /// Adds `g` into this node's gradient buffer. Const because it mutates
  /// the shared node, not this handle (Variables are shared references).
  void AccumulateGrad(const Tensor& g) const;

  /// Clears the gradient buffer.
  void ZeroGrad() const;

  /// Runs reverse-mode differentiation from this scalar node. Seeds the
  /// gradient with 1.0. Requires numel()==1 and requires_grad().
  void Backward();

  /// Detached copy sharing the same data but cut off from the graph.
  Variable Detach() const;

  /// Scalar value of a one-element variable.
  float item() const;

  /// Internal: constructs an interior node. If grad recording is off or no
  /// parent requires grad, the node is detached (no backward_fn kept).
  static Variable MakeNode(Tensor data, std::vector<Variable> parents,
                           std::function<void(const Tensor&)> backward_fn);

  /// Internal: underlying impl, for identity comparisons.
  const std::shared_ptr<internal::VariableImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<internal::VariableImpl> impl_;
};

}  // namespace units::autograd

#endif  // UNITS_AUTOGRAD_VARIABLE_H_
