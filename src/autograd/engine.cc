#include "autograd/engine.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/parallel.h"

namespace units::autograd {

namespace {

// ---------------------------------------------------------------------------
// Graph discovery (shared by both engines)
// ---------------------------------------------------------------------------

/// Iterative post-order DFS over requires-grad parents. order.back() is the
/// root; iterating the vector in reverse visits every node after all of its
/// consumers — the serial execution order. This is the exact traversal the
/// serial sweep has always used, so both engines agree on what "serial
/// execution index" means.
std::vector<internal::VariableImpl*> TopoPostOrder(
    internal::VariableImpl* root) {
  std::vector<internal::VariableImpl*> order;
  std::unordered_set<internal::VariableImpl*> visited;
  std::vector<std::pair<internal::VariableImpl*, size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, child_idx] = stack.back();
    if (child_idx < node->parents.size()) {
      internal::VariableImpl* parent = node->parents[child_idx].get();
      ++child_idx;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  return order;
}

// ---------------------------------------------------------------------------
// Serial sweep (parity oracle)
// ---------------------------------------------------------------------------

void RunSerial(internal::VariableImpl* root) {
  std::vector<internal::VariableImpl*> order = TopoPostOrder(root);
  // Reverse topological order: every node's grad is complete before its
  // backward_fn runs.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::VariableImpl* node = *it;
    if (node->backward_fn && node->has_grad) {
      node->backward_fn(node->grad);
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel ready-queue engine
// ---------------------------------------------------------------------------

/// Per-node execution state. Lives in an EngineContext-owned deque (stable
/// addresses) for the duration of one Backward() call.
struct NodeTask {
  internal::VariableImpl* node = nullptr;
  /// This node's position in the serial sweep (root == 0). Contributions
  /// are tagged with their producer's exec_index so reduction can replay
  /// the serial accumulation order.
  int64_t exec_index = 0;
  /// One entry per requires-grad parent occurrence (duplicates kept:
  /// Mul(a, a) contributes to `a` twice, and each occurrence is a distinct
  /// consumer edge for dependency counting).
  std::vector<NodeTask*> parent_edges;
  /// Unfinished consumer edges. This node is ready when it reaches zero.
  std::atomic<int64_t> pending{0};
  /// Guards `contributions`. Uncontended once the node is ready.
  std::mutex mu;
  /// Deferred gradient contributions: (consumer exec_index, tensor). The
  /// tensors are stored by handle, not cloned — every closure either hands
  /// over a freshly computed tensor it never touches again, or a view of
  /// its own node's grad, which is immutable once that node ran (all of its
  /// contributions were reduced before it was enqueued).
  std::vector<std::pair<int64_t, Tensor>> contributions;
};

struct EngineContext {
  /// Graph membership + node lookup. Read-only after construction, so
  /// concurrent reads from RouteGradContribution need no lock.
  std::unordered_map<internal::VariableImpl*, NodeTask*> index;
  /// Task storage; deque so emplace_back never moves existing elements
  /// (NodeTask holds a mutex and an atomic and is not movable).
  std::deque<NodeTask> tasks;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<NodeTask*> ready;
  /// Nodes not yet finished (executed or skipped). Workers exit at zero.
  int64_t remaining = 0;
  std::exception_ptr error;
  bool abort = false;
};

/// Identifies the engine (and the consumer being executed) on the current
/// thread while a backward_fn runs, so Variable::AccumulateGrad can route
/// contributions into buckets instead of writing shared grad buffers.
thread_local EngineContext* t_engine = nullptr;
thread_local int64_t t_consumer = -1;

/// Sets/restores the routing thread-locals around one backward_fn call.
struct ConsumerScope {
  EngineContext* prev_engine;
  int64_t prev_consumer;
  ConsumerScope(EngineContext* ctx, int64_t consumer)
      : prev_engine(t_engine), prev_consumer(t_consumer) {
    t_engine = ctx;
    t_consumer = consumer;
  }
  ~ConsumerScope() {
    t_engine = prev_engine;
    t_consumer = prev_consumer;
  }
};

/// Flushes a ready node's contribution bucket into its grad buffer, in
/// ascending consumer exec_index order. That is exactly the order in which
/// the serial sweep's consumers would have called AccumulateGrad (consumers
/// run at smaller serial indices than the nodes they feed), and stable_sort
/// keeps same-consumer contributions in their push order (a single thread
/// pushed them sequentially) — so float accumulation associates identically
/// to the serial sweep, bitwise.
void ReduceNodeGrad(NodeTask* task) {
  std::lock_guard<std::mutex> lock(task->mu);
  std::stable_sort(task->contributions.begin(), task->contributions.end(),
                   [](const std::pair<int64_t, Tensor>& a,
                      const std::pair<int64_t, Tensor>& b) {
                     return a.first < b.first;
                   });
  for (const auto& [consumer, g] : task->contributions) {
    internal::AccumulateGradInto(task->node, g);
  }
  task->contributions.clear();
  task->contributions.shrink_to_fit();
}

/// Runs one engine worker until the sweep completes or aborts. Every pool
/// task RunParallel spawns executes this loop; all workers share the ready
/// deque, so any worker can run any ready node.
void WorkerLoop(EngineContext* ctx) {
  for (;;) {
    NodeTask* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(ctx->mu);
      ctx->cv.wait(lock, [ctx] {
        return !ctx->ready.empty() || ctx->remaining == 0 || ctx->abort;
      });
      if (ctx->abort || ctx->ready.empty()) {
        return;  // aborted, or all nodes finished
      }
      task = ctx->ready.front();
      ctx->ready.pop_front();
    }

    int64_t finished = 0;
    std::vector<NodeTask*> newly_ready;
    try {
      // By the time a node is popped its bucket has been reduced (or it is
      // the pre-seeded root), so node->grad is complete — same precondition
      // the serial sweep guarantees.
      internal::VariableImpl* node = task->node;
      if (node->backward_fn && node->has_grad) {
        ConsumerScope scope(ctx, task->exec_index);
        node->backward_fn(node->grad);
      }

      // Completion cascade: finishing a node releases one consumer edge on
      // each parent. A parent whose last edge is released gets its bucket
      // reduced; if it has work it joins the ready queue, otherwise (leaf,
      // or nothing reached it) it finishes immediately and cascades in turn.
      std::vector<NodeTask*> finished_stack{task};
      while (!finished_stack.empty()) {
        NodeTask* f = finished_stack.back();
        finished_stack.pop_back();
        ++finished;
        for (NodeTask* p : f->parent_edges) {
          if (p->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            ReduceNodeGrad(p);
            if (p->node->backward_fn && p->node->has_grad) {
              newly_ready.push_back(p);
            } else {
              finished_stack.push_back(p);
            }
          }
        }
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(ctx->mu);
      if (!ctx->error) {
        ctx->error = std::current_exception();
      }
      ctx->abort = true;
      ctx->cv.notify_all();
      return;
    }

    {
      std::lock_guard<std::mutex> lock(ctx->mu);
      ctx->remaining -= finished;
      for (NodeTask* p : newly_ready) {
        ctx->ready.push_back(p);
      }
      if (!newly_ready.empty() || ctx->remaining == 0) {
        ctx->cv.notify_all();
      }
    }
  }
}

void RunParallel(internal::VariableImpl* root) {
  std::vector<internal::VariableImpl*> order = TopoPostOrder(root);
  const int64_t n = static_cast<int64_t>(order.size());

  EngineContext ctx;
  ctx.index.reserve(order.size());
  for (int64_t i = 0; i < n; ++i) {
    ctx.tasks.emplace_back();
    NodeTask& t = ctx.tasks.back();
    t.node = order[i];
    t.exec_index = n - 1 - i;  // order.back() (the root) executes first
    ctx.index.emplace(order[i], &t);
  }
  // Count consumer edges. Every requires-grad parent is in `order` (the DFS
  // visited it), and duplicates count once per occurrence so a node like
  // Mul(a, a) holds `a` back until both of its contributions are in.
  for (NodeTask& t : ctx.tasks) {
    t.parent_edges.reserve(t.node->parents.size());
    for (const auto& parent : t.node->parents) {
      if (!parent->requires_grad) {
        continue;
      }
      auto it = ctx.index.find(parent.get());
      UNITS_CHECK(it != ctx.index.end());
      t.parent_edges.push_back(it->second);
      it->second->pending.fetch_add(1, std::memory_order_relaxed);
    }
  }
  NodeTask* root_task = ctx.index.at(root);
  // The graph is a DAG discovered from the root, so nothing in it consumes
  // the root: it is the unique initially-ready node.
  UNITS_CHECK_EQ(root_task->pending.load(std::memory_order_relaxed), 0);

  ctx.remaining = n;
  ctx.ready.push_back(root_task);

  int64_t workers = std::min<int64_t>(base::NumThreads(), n);
  workers = std::max<int64_t>(workers, 1);
  base::ThreadPool::Global()->Run(workers,
                                  [&ctx](int64_t) { WorkerLoop(&ctx); });

  if (ctx.error) {
    std::rethrow_exception(ctx.error);
  }
}

}  // namespace

BackwardMode BackwardModeFromEnv() {
  const char* e = std::getenv("UNITS_BACKWARD");
  if (e == nullptr) {
    return BackwardMode::kAuto;
  }
  const std::string s(e);
  if (s == "serial") {
    return BackwardMode::kSerial;
  }
  if (s == "parallel") {
    return BackwardMode::kParallel;
  }
  return BackwardMode::kAuto;
}

void RunBackward(internal::VariableImpl* root) {
  if (t_engine != nullptr) {
    // Re-entrant backward from inside a backward_fn: the engine's workers
    // are busy running this graph, so sweep the inner graph serially on the
    // calling thread (grads routed only for nodes of the *outer* graph, and
    // an inner graph built during backward is disjoint from it).
    RunSerial(root);
    return;
  }
  switch (BackwardModeFromEnv()) {
    case BackwardMode::kSerial:
      RunSerial(root);
      return;
    case BackwardMode::kParallel:
      RunParallel(root);
      return;
    case BackwardMode::kAuto:
      if (base::NumThreads() > 1) {
        RunParallel(root);
      } else {
        RunSerial(root);
      }
      return;
  }
}

namespace internal {

bool RouteGradContribution(VariableImpl* node, const Tensor& g) {
  EngineContext* ctx = t_engine;
  if (ctx == nullptr) {
    return false;
  }
  auto it = ctx->index.find(node);
  if (it == ctx->index.end()) {
    // Not part of the active graph (e.g. a node of an inner re-entrant
    // backward): accumulate directly.
    return false;
  }
  NodeTask* task = it->second;
  std::lock_guard<std::mutex> lock(task->mu);
  task->contributions.emplace_back(t_consumer, g);
  return true;
}

}  // namespace internal

}  // namespace units::autograd
