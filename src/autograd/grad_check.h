#ifndef UNITS_AUTOGRAD_GRAD_CHECK_H_
#define UNITS_AUTOGRAD_GRAD_CHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace units::autograd {

/// Result of a finite-difference gradient check.
struct GradCheckResult {
  bool passed = false;
  float max_abs_error = 0.0f;
  float max_rel_error = 0.0f;
  std::string detail;  // first failing coordinate, if any
};

/// Verifies the analytic gradient of `fn` (a scalar-valued function of the
/// given inputs) against central finite differences. Each input must be a
/// leaf with requires_grad=true. `eps` is the perturbation; `tol` bounds
/// max(|analytic - numeric| / max(1, |numeric|)).
GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable> inputs, float eps = 1e-3f, float tol = 5e-2f);

}  // namespace units::autograd

#endif  // UNITS_AUTOGRAD_GRAD_CHECK_H_
