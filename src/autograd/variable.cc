#include "autograd/variable.h"

#include <unordered_set>

#include "base/check.h"
#include "plan/trace.h"
#include "tensor/tensor_ops.h"

namespace units::autograd {

namespace {
thread_local bool t_grad_enabled = true;
}  // namespace

bool GradEnabled() { return t_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(t_grad_enabled) {
  t_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { t_grad_enabled = previous_; }

Variable::Variable(Tensor data, bool requires_grad)
    : impl_(std::make_shared<internal::VariableImpl>()) {
  impl_->data = std::move(data);
  impl_->requires_grad = requires_grad;
}

Tensor& Variable::data() {
  UNITS_CHECK(defined());
  return impl_->data;
}

const Tensor& Variable::data() const {
  UNITS_CHECK(defined());
  return impl_->data;
}

bool Variable::requires_grad() const {
  return defined() && impl_->requires_grad;
}

void Variable::set_requires_grad(bool value) {
  UNITS_CHECK(defined());
  impl_->requires_grad = value;
}

const Tensor& Variable::grad() const {
  UNITS_CHECK(defined());
  if (!impl_->has_grad) {
    // Lazily allocate a zero gradient so callers can read it uniformly.
    impl_->grad = Tensor::Zeros(impl_->data.shape());
    impl_->has_grad = true;
  }
  return impl_->grad;
}

bool Variable::has_grad() const { return defined() && impl_->has_grad; }

Tensor& Variable::mutable_grad() const {
  grad();  // ensure allocated
  return impl_->grad;
}

void Variable::AccumulateGrad(const Tensor& g) const {
  UNITS_CHECK(defined());
  UNITS_CHECK(SameShape(g.shape(), impl_->data.shape()));
  if (!impl_->has_grad) {
    impl_->grad = g.Clone();
    impl_->has_grad = true;
    return;
  }
  float* dst = impl_->grad.data();
  const float* src = g.data();
  for (int64_t i = 0; i < g.numel(); ++i) {
    dst[i] += src[i];
  }
}

void Variable::ZeroGrad() const {
  UNITS_CHECK(defined());
  if (impl_->has_grad) {
    impl_->grad.Fill(0.0f);
  }
}

void Variable::Backward() {
  UNITS_CHECK(defined());
  UNITS_CHECK_MSG(impl_->data.numel() == 1,
                  "Backward() requires a scalar output");
  UNITS_CHECK_MSG(impl_->requires_grad,
                  "Backward() on a node that does not require grad");

  // Topological order via iterative post-order DFS over parents.
  std::vector<internal::VariableImpl*> order;
  std::unordered_set<internal::VariableImpl*> visited;
  std::vector<std::pair<internal::VariableImpl*, size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, child_idx] = stack.back();
    if (child_idx < node->parents.size()) {
      internal::VariableImpl* parent = node->parents[child_idx].get();
      ++child_idx;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  // Seed d(out)/d(out) = 1.
  AccumulateGrad(Tensor::Ones(impl_->data.shape()));

  // Reverse topological order: every node's grad is complete before its
  // backward_fn runs.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::VariableImpl* node = *it;
    if (node->backward_fn && node->has_grad) {
      node->backward_fn(node->grad);
    }
  }
}

Variable Variable::Detach() const {
  UNITS_CHECK(defined());
  return Variable(impl_->data, /*requires_grad=*/false);
}

float Variable::item() const {
  UNITS_CHECK(defined());
  UNITS_CHECK_EQ(data().numel(), 1);
  return data()[0];
}

Variable Variable::MakeNode(Tensor data, std::vector<Variable> parents,
                            std::function<void(const Tensor&)> backward_fn) {
  bool any_requires = false;
  if (GradEnabled()) {
    for (const Variable& p : parents) {
      if (p.requires_grad()) {
        any_requires = true;
        break;
      }
    }
  }
  Variable out(std::move(data), any_requires);
  if (plan::TraceActive()) {
    // Poison-detection bookkeeping: if a trace hook never registers this
    // Variable and a hooked op later consumes it, the capture is abandoned
    // instead of silently treating an op result as a constant.
    plan::NoteNodeCreated(out);
  }
  if (any_requires) {
    out.impl_->backward_fn = std::move(backward_fn);
    out.impl_->parents.reserve(parents.size());
    for (Variable& p : parents) {
      if (p.defined()) {
        out.impl_->parents.push_back(p.impl());
      }
    }
  }
  return out;
}

}  // namespace units::autograd
