#include "autograd/variable.h"

#include "autograd/engine.h"
#include "base/check.h"
#include "plan/trace.h"
#include "tensor/tensor_ops.h"

namespace units::autograd {

namespace {
thread_local bool t_grad_enabled = true;
}  // namespace

namespace internal {

void AccumulateGradInto(VariableImpl* impl, const Tensor& g) {
  UNITS_CHECK(SameShape(g.shape(), impl->data.shape()));
  if (!impl->has_grad) {
    impl->grad = g.Clone();
    impl->has_grad = true;
    return;
  }
  float* dst = impl->grad.data();
  const float* src = g.data();
  for (int64_t i = 0; i < g.numel(); ++i) {
    dst[i] += src[i];
  }
}

}  // namespace internal

bool GradEnabled() { return t_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(t_grad_enabled) {
  t_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { t_grad_enabled = previous_; }

Variable::Variable(Tensor data, bool requires_grad)
    : impl_(std::make_shared<internal::VariableImpl>()) {
  impl_->data = std::move(data);
  impl_->requires_grad = requires_grad;
}

Tensor& Variable::data() {
  UNITS_CHECK(defined());
  return impl_->data;
}

const Tensor& Variable::data() const {
  UNITS_CHECK(defined());
  return impl_->data;
}

bool Variable::requires_grad() const {
  return defined() && impl_->requires_grad;
}

void Variable::set_requires_grad(bool value) {
  UNITS_CHECK(defined());
  impl_->requires_grad = value;
}

const Tensor& Variable::grad() const {
  UNITS_CHECK(defined());
  if (!impl_->has_grad) {
    // Lazily allocate a zero gradient so callers can read it uniformly.
    impl_->grad = Tensor::Zeros(impl_->data.shape());
    impl_->has_grad = true;
  }
  return impl_->grad;
}

bool Variable::has_grad() const { return defined() && impl_->has_grad; }

Tensor& Variable::mutable_grad() const {
  grad();  // ensure allocated
  return impl_->grad;
}

void Variable::AccumulateGrad(const Tensor& g) const {
  UNITS_CHECK(defined());
  UNITS_CHECK(SameShape(g.shape(), impl_->data.shape()));
  // Inside a parallel backward, contributions to nodes of the active graph
  // are captured into per-node buckets (reduced later in serial consumer
  // order) instead of racing on the shared grad buffer.
  if (internal::RouteGradContribution(impl_.get(), g)) {
    return;
  }
  internal::AccumulateGradInto(impl_.get(), g);
}

void Variable::ZeroGrad() const {
  UNITS_CHECK(defined());
  if (impl_->has_grad) {
    impl_->grad.Fill(0.0f);
  }
}

void Variable::Backward() {
  UNITS_CHECK(defined());
  UNITS_CHECK_MSG(impl_->data.numel() == 1,
                  "Backward() requires a scalar output");
  UNITS_CHECK_MSG(impl_->requires_grad,
                  "Backward() on a node that does not require grad");

  // Seed d(out)/d(out) = 1 directly (never routed into an engine bucket),
  // then hand the sweep to the engine selected by UNITS_BACKWARD.
  internal::AccumulateGradInto(impl_.get(), Tensor::Ones(impl_->data.shape()));
  RunBackward(impl_.get());
}

Variable Variable::Detach() const {
  UNITS_CHECK(defined());
  return Variable(impl_->data, /*requires_grad=*/false);
}

float Variable::item() const {
  UNITS_CHECK(defined());
  UNITS_CHECK_EQ(data().numel(), 1);
  return data()[0];
}

Variable Variable::MakeNode(Tensor data, std::vector<Variable> parents,
                            std::function<void(const Tensor&)> backward_fn) {
  bool any_requires = false;
  if (GradEnabled()) {
    for (const Variable& p : parents) {
      if (p.requires_grad()) {
        any_requires = true;
        break;
      }
    }
  }
  Variable out(std::move(data), any_requires);
  if (plan::TraceActive()) {
    // Poison-detection bookkeeping: if a trace hook never registers this
    // Variable and a hooked op later consumes it, the capture is abandoned
    // instead of silently treating an op result as a constant.
    plan::NoteNodeCreated(out);
  }
  if (any_requires) {
    out.impl_->backward_fn = std::move(backward_fn);
    out.impl_->parents.reserve(parents.size());
    for (Variable& p : parents) {
      if (p.defined()) {
        out.impl_->parents.push_back(p.impl());
      }
    }
  }
  return out;
}

}  // namespace units::autograd
