#ifndef UNITS_AUTOGRAD_OPS_H_
#define UNITS_AUTOGRAD_OPS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "tensor/quant.h"

namespace units::autograd {

// Differentiable operations over Variables. Each op computes its forward
// value eagerly and, when gradient recording is enabled and some input
// requires grad, registers a backward closure on the output node.
//
// Binary ops broadcast NumPy-style; gradients of broadcast operands are
// summed back to the operand shape.

// --- arithmetic -----------------------------------------------------------

Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);
Variable Neg(const Variable& a);
Variable AddScalar(const Variable& a, float s);
Variable MulScalar(const Variable& a, float s);
/// Elementwise x^p for constant p.
Variable PowScalar(const Variable& a, float p);

// --- linear algebra -------------------------------------------------------

/// [M,K] x [K,N] -> [M,N].
Variable MatMul(const Variable& a, const Variable& b);
/// [B,M,K] x [B,K,N] -> [B,M,N].
Variable BatchedMatMul(const Variable& a, const Variable& b);
Variable Transpose(const Variable& a, int axis0, int axis1);
Variable Reshape(const Variable& a, Shape new_shape);
/// Quantized Linear for serving: x [rows, in] against packed int8 weights,
/// bias fused into the dequantize epilogue (tensor/quant.h). Inference-only
/// — the backward CHECK-fails; nn::Linear gates this on eval mode.
Variable QuantizedLinear(
    const Variable& x,
    std::shared_ptr<const quant::QuantizedLinearWeights> weights);

// --- nonlinearities -------------------------------------------------------

Variable Relu(const Variable& a);
Variable LeakyRelu(const Variable& a, float slope = 0.01f);
Variable Gelu(const Variable& a);
Variable Tanh(const Variable& a);
Variable Sigmoid(const Variable& a);
Variable Exp(const Variable& a);
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);
Variable Square(const Variable& a);
Variable Abs(const Variable& a);

/// Softmax / log-softmax along `axis`. Forward runs the fused single-sweep
/// row kernel (ops::SoftmaxFused); backward is the row-wise
/// dx = p ⊙ (g − Σ g⊙p) pass with no Jacobian or intermediate tensors.
Variable Softmax(const Variable& a, int axis);
Variable LogSoftmax(const Variable& a, int axis);

/// Fused scaled-dot-product attention over per-head batches: q, k, v of
/// shape [B, T, hd] -> softmax(scale · q·kᵀ) · v, with an optional
/// inverted-dropout mask ([B, T, T], scaling baked in; empty = no dropout)
/// applied to the probabilities. In eval / no-grad mode the kernel streams
/// (batch, row-block) tiles and never materializes a [B, T, T] tensor;
/// when gradients are required exactly one [B, T, T] probability tensor is
/// kept for the backward pass (vs. three on the composed
/// BatchedMatMul→Softmax→BatchedMatMul path). Bitwise deterministic across
/// thread counts (tile boundaries derive from ops::kAttnRowBlock only).
Variable ScaledDotAttention(const Variable& q, const Variable& k,
                            const Variable& v, float scale,
                            const Tensor& dropout_mask = Tensor());

// --- reductions -----------------------------------------------------------

Variable Sum(const Variable& a, int axis, bool keepdim = false);
Variable Mean(const Variable& a, int axis, bool keepdim = false);
/// Scalar (rank-0) sum / mean over all elements.
Variable SumAll(const Variable& a);
Variable MeanAll(const Variable& a);

/// Global max pooling over the last axis: [N,C,T] -> [N,C]. Gradient flows
/// to the argmax positions only.
Variable MaxPoolOverTime(const Variable& a);

/// Mean pooling over the last axis: [N,C,T] -> [N,C].
Variable MeanPoolOverTime(const Variable& a);

// --- shape ops ------------------------------------------------------------

Variable Slice(const Variable& a, int axis, int64_t start, int64_t length);
Variable Concat(const std::vector<Variable>& parts, int axis);
/// Selects rows along axis 0; rows may repeat (gradient scatter-adds).
Variable GatherRows(const Variable& a, std::vector<int64_t> indices);

// --- convolution ----------------------------------------------------------

/// 1-D convolution: input [N,Cin,T], weight [Cout,Cin,k], optional bias
/// [Cout]; output [N,Cout,Tout], Tout = T + pad_left + pad_right -
/// (k-1)*dilation. Pass an undefined bias Variable to skip bias.
Variable Conv1d(const Variable& input, const Variable& weight,
                const Variable& bias, int64_t dilation, int64_t pad_left,
                int64_t pad_right);

// --- losses ---------------------------------------------------------------

/// Negative log-likelihood of integer targets given log-probabilities
/// [N,C]; returns the scalar mean.
Variable NllLoss(const Variable& log_probs, const std::vector<int64_t>& targets);

/// Cross entropy = NllLoss(LogSoftmax(logits)).
Variable CrossEntropyLoss(const Variable& logits,
                          const std::vector<int64_t>& targets);

/// Mean squared error (scalar mean over all elements).
Variable MseLoss(const Variable& pred, const Variable& target);

/// Mean absolute error.
Variable L1Loss(const Variable& pred, const Variable& target);

/// MSE restricted to positions where mask==1; normalized by mask sum
/// (returns 0 if the mask is empty). Used by masked autoregression / DAE.
Variable MaskedMseLoss(const Variable& pred, const Variable& target,
                       const Tensor& mask);

// --- composite helpers ----------------------------------------------------

/// L2-normalizes along `axis`: x / sqrt(sum(x^2, axis) + eps).
Variable L2Normalize(const Variable& a, int axis, float eps = 1e-8f);

/// Constant (non-differentiable) wrapper.
Variable Constant(Tensor t);

}  // namespace units::autograd

#endif  // UNITS_AUTOGRAD_OPS_H_
