#ifndef UNITS_OPTIM_OPTIMIZER_H_
#define UNITS_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace units::optim {

using autograd::Variable;

/// Base class for first-order optimizers over a fixed parameter list.
/// Typical loop: ZeroGrad(); loss.Backward(); Step();
class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params, float lr);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the parameters' accumulated gradients.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

  const std::vector<Variable>& params() const { return params_; }

 protected:
  std::vector<Variable> params_;
  float lr_;
};

/// Stochastic gradient descent with optional momentum and weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);

  void Step() override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with optional decoupled weight decay (AdamW when
/// weight_decay > 0).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

 private:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t step_count_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// RMSProp (Tieleman & Hinton): per-coordinate learning rates from an
/// exponential moving average of squared gradients.
class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<Variable> params, float lr, float decay = 0.99f,
          float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

 private:
  float decay_;
  float eps_;
  float weight_decay_;
  std::vector<Tensor> mean_square_;
};

/// Rescales gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
float ClipGradNorm(const std::vector<Variable>& params, float max_norm);

}  // namespace units::optim

#endif  // UNITS_OPTIM_OPTIMIZER_H_
