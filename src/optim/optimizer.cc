#include "optim/optimizer.h"

#include <cmath>

#include "base/check.h"

namespace units::optim {

Optimizer::Optimizer(std::vector<Variable> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  for (const Variable& p : params_) {
    UNITS_CHECK(p.defined());
    UNITS_CHECK(p.requires_grad());
  }
}

void Optimizer::ZeroGrad() {
  for (Variable& p : params_) {
    p.ZeroGrad();
  }
}

Sgd::Sgd(std::vector<Variable> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const Variable& p : params_) {
      velocity_.push_back(Tensor::Zeros(p.shape()));
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) {
      continue;
    }
    float* w = p.data().data();
    const float* g = p.grad().data();
    const int64_t n = p.numel();
    if (momentum_ > 0.0f) {
      float* vel = velocity_[i].data();
      for (int64_t j = 0; j < n; ++j) {
        const float grad = g[j] + weight_decay_ * w[j];
        vel[j] = momentum_ * vel[j] + grad;
        w[j] -= lr_ * vel[j];
      }
    } else {
      for (int64_t j = 0; j < n; ++j) {
        w[j] -= lr_ * (g[j] + weight_decay_ * w[j]);
      }
    }
  }
}

Adam::Adam(std::vector<Variable> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Variable& p : params_) {
    m_.push_back(Tensor::Zeros(p.shape()));
    v_.push_back(Tensor::Zeros(p.shape()));
  }
}

void Adam::Step() {
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) {
      continue;
    }
    float* w = p.data().data();
    const float* g = p.grad().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      const float grad = g[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      // Decoupled weight decay (AdamW): applied directly to the weights.
      w[j] -= lr_ * (m_hat / (std::sqrt(v_hat) + eps_) +
                     weight_decay_ * w[j]);
    }
  }
}

RmsProp::RmsProp(std::vector<Variable> params, float lr, float decay,
                 float eps, float weight_decay)
    : Optimizer(std::move(params), lr),
      decay_(decay),
      eps_(eps),
      weight_decay_(weight_decay) {
  mean_square_.reserve(params_.size());
  for (const Variable& p : params_) {
    mean_square_.push_back(Tensor::Zeros(p.shape()));
  }
}

void RmsProp::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) {
      continue;
    }
    float* w = p.data().data();
    const float* g = p.grad().data();
    float* ms = mean_square_[i].data();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      ms[j] = decay_ * ms[j] + (1.0f - decay_) * grad * grad;
      w[j] -= lr_ * grad / (std::sqrt(ms[j]) + eps_);
    }
  }
}

float ClipGradNorm(const std::vector<Variable>& params, float max_norm) {
  double total = 0.0;
  for (const Variable& p : params) {
    if (!p.has_grad()) {
      continue;
    }
    const float* g = p.grad().data();
    for (int64_t j = 0; j < p.numel(); ++j) {
      total += static_cast<double>(g[j]) * static_cast<double>(g[j]);
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const Variable& p : params) {
      if (!p.has_grad()) {
        continue;
      }
      float* g = p.mutable_grad().data();
      for (int64_t j = 0; j < p.numel(); ++j) {
        g[j] *= scale;
      }
    }
  }
  return norm;
}

}  // namespace units::optim
