#include "optim/schedule.h"

#include <cmath>

#include "base/check.h"

namespace units::optim {

CosineLr::CosineLr(int64_t total_steps, int64_t warmup_steps,
                   float final_fraction)
    : total_steps_(total_steps),
      warmup_steps_(warmup_steps),
      final_fraction_(final_fraction) {
  UNITS_CHECK_GT(total_steps, 0);
  UNITS_CHECK_GE(warmup_steps, 0);
  UNITS_CHECK_LT(warmup_steps, total_steps);
}

float CosineLr::Multiplier(int64_t step) const {
  if (step < warmup_steps_) {
    return static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }
  if (step >= total_steps_) {
    return final_fraction_;
  }
  const float progress =
      static_cast<float>(step - warmup_steps_) /
      static_cast<float>(total_steps_ - warmup_steps_);
  const float cosine = 0.5f * (1.0f + std::cos(M_PI * progress));
  return final_fraction_ + (1.0f - final_fraction_) * cosine;
}

StepLr::StepLr(int64_t step_size, float gamma)
    : step_size_(step_size), gamma_(gamma) {
  UNITS_CHECK_GT(step_size, 0);
}

float StepLr::Multiplier(int64_t step) const {
  // Integer exponentiation by squaring in double: exact power of the
  // (double-widened) gamma for any decay count, unlike float-exponent
  // std::pow, which drifts from repeated multiplication at large step
  // counts and varies across libm implementations.
  int64_t e = step / step_size_;
  double base = static_cast<double>(gamma_);
  double result = 1.0;
  while (e > 0) {
    if (e & 1) {
      result *= base;
    }
    base *= base;
    e >>= 1;
  }
  return static_cast<float>(result);
}

}  // namespace units::optim
