#ifndef UNITS_OPTIM_SCHEDULE_H_
#define UNITS_OPTIM_SCHEDULE_H_

#include <cstdint>

namespace units::optim {

/// Learning-rate schedule: maps a 0-based step index to a multiplier of the
/// base learning rate.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual float Multiplier(int64_t step) const = 0;
};

/// Constant multiplier 1.
class ConstantLr : public LrSchedule {
 public:
  float Multiplier(int64_t) const override { return 1.0f; }
};

/// Linear warmup to 1 over `warmup_steps`, then cosine decay to
/// `final_fraction` at `total_steps`.
class CosineLr : public LrSchedule {
 public:
  CosineLr(int64_t total_steps, int64_t warmup_steps = 0,
           float final_fraction = 0.0f);

  float Multiplier(int64_t step) const override;

 private:
  int64_t total_steps_;
  int64_t warmup_steps_;
  float final_fraction_;
};

/// Multiplies by `gamma` every `step_size` steps.
class StepLr : public LrSchedule {
 public:
  StepLr(int64_t step_size, float gamma);

  float Multiplier(int64_t step) const override;

 private:
  int64_t step_size_;
  float gamma_;
};

}  // namespace units::optim

#endif  // UNITS_OPTIM_SCHEDULE_H_
