// Experiment T1/anomaly (Figure 3, anomaly-detection bar): reconstruction-
#include <cmath>
// based detection on server-monitoring-like series. Models train on clean
// data; evaluation reports the best point-adjusted F1 over thresholds on a
// series with injected spike / level-shift / noise-burst / flatline events.

#include "bench_util.h"

#include "core/tasks/tasks.h"
#include "data/window.h"
#include "tensor/tensor_ops.h"

namespace units {
namespace {

constexpr int64_t kWindow = 96;
constexpr int64_t kStride = 96;  // disjoint windows: scores tile the series

std::vector<int> LabelsToInt(const Tensor& labels) {
  std::vector<int> out(static_cast<size_t>(labels.numel()));
  for (int64_t i = 0; i < labels.numel(); ++i) {
    out[static_cast<size_t>(i)] = labels[i] > 0.5f ? 1 : 0;
  }
  return out;
}

std::vector<float> ScoresToVector(const Tensor& scores) {
  return std::vector<float>(scores.data(), scores.data() + scores.numel());
}

void RunSeed(uint64_t seed) {
  data::AnomalyOpts opts;
  opts.num_channels = 2;
  opts.total_length = 96 * 40;
  opts.num_anomalies = 24;
  opts.seed = seed;

  // Train on clean telemetry; test on the series with injected events.
  // Note the fine-tuning objective (reconstruction) is itself label-free,
  // so with a generous fine-tuning budget scratch converges to the same
  // detector — the value of pre-training here is reaching that quality
  // with far fewer fine-tuning iterations (the paper's efficiency story).
  // We therefore compare at a small fine-tuning budget, with a full-budget
  // scratch run for reference.
  Tensor clean = data::MakeCleanSeries(opts);
  data::TimeSeriesDataset train(data::SlidingWindows(clean, kWindow, 48));
  auto anomalous = data::MakeAnomalySeries(opts);
  Tensor test_windows = data::SlidingWindows(anomalous.series, kWindow,
                                             kStride);
  Tensor label_windows = data::SlidingLabelWindows(anomalous.labels, kWindow,
                                                   kStride);
  const std::vector<int> truth = LabelsToInt(label_windows);
  const std::string exp = "fig3_anomaly_seed" + std::to_string(seed);

  // UniTS: pre-train on clean data, fine-tune the reconstruction decoder.
  // Masked autoregression is the reconstruction-aligned template (per-
  // timestep prediction), matching this task's decoder head.
  auto cfg = bench::BenchConfig("anomaly_detection", seed);
  cfg.templates = {"masked_autoregression"};
  cfg.finetune_params.SetInt("epochs", 6);  // the small budget under test
  auto pipe = core::UnitsPipeline::Create(cfg, 2);
  pipe.status().CheckOk();
  (*pipe)->Pretrain(train.values()).CheckOk();
  (*pipe)->FineTune(train).CheckOk();
  auto* units_task =
      dynamic_cast<core::AnomalyDetectionTask*>((*pipe)->task());
  const Tensor units_scores =
      units_task->ScoreWindows(pipe->get(), test_windows);
  const auto units_best = metrics::BestF1Search(
      ScoresToVector(units_scores), truth, /*point_adjust=*/true);
  bench::PrintRow(exp, "anomaly", "units", "point_adjusted_f1",
                  units_best.f1);
  bench::PrintRow(exp, "anomaly", "units", "precision", units_best.precision);
  bench::PrintRow(exp, "anomaly", "units", "recall", units_best.recall);

  // Scratch at the same small budget, and with a 4x budget for reference.
  for (const int64_t mult : {1, 4}) {
    auto scratch = core::MakeScratchBaseline(cfg, 2, mult);
    scratch.status().CheckOk();
    (*scratch)->FineTune(train).CheckOk();
    auto* scratch_task =
        dynamic_cast<core::AnomalyDetectionTask*>((*scratch)->task());
    const Tensor scratch_scores =
        scratch_task->ScoreWindows(scratch->get(), test_windows);
    const auto scratch_best = metrics::BestF1Search(
        ScoresToVector(scratch_scores), truth, true);
    bench::PrintRow(exp, "anomaly",
                    mult == 1 ? "scratch" : "scratch_4x_epochs",
                    "point_adjusted_f1", scratch_best.f1);
  }

  // Classical baseline: first-difference magnitude as the anomaly score.
  Tensor diff_scores = Tensor::Zeros({test_windows.dim(0), kWindow});
  for (int64_t i = 0; i < test_windows.dim(0); ++i) {
    for (int64_t t = 1; t < kWindow; ++t) {
      float dev = 0.0f;
      for (int64_t c = 0; c < 2; ++c) {
        dev += std::fabs(test_windows.At({i, c, t}) -
                         test_windows.At({i, c, t - 1}));
      }
      diff_scores.At({i, t}) = dev / 2.0f;
    }
  }
  const auto diff_best = metrics::BestF1Search(
      ScoresToVector(diff_scores), truth, true);
  bench::PrintRow(exp, "anomaly", "first_difference", "point_adjusted_f1",
                  diff_best.f1);
}

}  // namespace
}  // namespace units

int main() {
  units::bench::BenchInit();
  units::bench::PrintHeader(
      "Fig. 3 / anomaly detection: reconstruction-based UniTS vs scratch vs "
      "first-difference baseline (best point-adjusted F1)");
  for (uint64_t seed : {5, 19}) {
    units::RunSeed(seed);
  }
  return 0;
}
