// Experiment T1/forecasting (Figure 3, forecasting bar): UniTS forecaster
// vs training from scratch vs classical naive / seasonal-naive baselines,
// on a trend+seasonal synthetic series. Chronological train/test split.

#include "bench_util.h"

#include "tensor/tensor_ops.h"

namespace units {
namespace {

constexpr int64_t kInputLen = 96;
constexpr int64_t kHorizon = 24;

void RunSeed(uint64_t seed) {
  data::ForecastSeriesOpts opts;
  opts.num_channels = 2;
  opts.total_length = 1800;
  opts.seed = seed;
  auto dataset = data::MakeForecastDataset(opts, kInputLen, kHorizon, 12);

  // Chronological split: first 70% of windows train, rest test.
  const int64_t n = dataset.num_samples();
  const int64_t n_train = n * 7 / 10;
  std::vector<int64_t> train_idx;
  std::vector<int64_t> test_idx;
  for (int64_t i = 0; i < n; ++i) {
    (i < n_train ? train_idx : test_idx).push_back(i);
  }
  auto train = dataset.Subset(train_idx);
  auto test = dataset.Subset(test_idx);
  const std::string exp = "fig3_forecasting_seed" + std::to_string(seed);

  // UniTS.
  auto cfg = bench::BenchConfig("forecasting", seed);
  auto pipe = core::UnitsPipeline::Create(cfg, 2);
  pipe.status().CheckOk();
  (*pipe)->Pretrain(train.values()).CheckOk();
  (*pipe)->FineTune(train).CheckOk();
  auto pred = (*pipe)->Predict(test.values());
  bench::PrintRow(exp, "forecasting", "units", "mse",
                  metrics::MeanSquaredError(test.targets(),
                                            pred->predictions));
  bench::PrintRow(exp, "forecasting", "units", "mae",
                  metrics::MeanAbsoluteError(test.targets(),
                                             pred->predictions));

  // Scratch (same architecture, supervised only, same epochs).
  auto scratch = core::MakeScratchBaseline(cfg, 2, 1);
  scratch.status().CheckOk();
  (*scratch)->FineTune(train).CheckOk();
  auto scratch_pred = (*scratch)->Predict(test.values());
  bench::PrintRow(exp, "forecasting", "scratch", "mse",
                  metrics::MeanSquaredError(test.targets(),
                                            scratch_pred->predictions));
  bench::PrintRow(exp, "forecasting", "scratch", "mae",
                  metrics::MeanAbsoluteError(test.targets(),
                                             scratch_pred->predictions));

  // Classical baselines.
  Tensor naive = core::NaiveForecast(test.values(), kHorizon);
  bench::PrintRow(exp, "forecasting", "naive", "mse",
                  metrics::MeanSquaredError(test.targets(), naive));
  Tensor seasonal = core::SeasonalNaiveForecast(
      test.values(), kHorizon, static_cast<int64_t>(opts.daily_period));
  bench::PrintRow(exp, "forecasting", "seasonal_naive", "mse",
                  metrics::MeanSquaredError(test.targets(), seasonal));
}

}  // namespace
}  // namespace units

int main() {
  units::bench::BenchInit();
  units::bench::PrintHeader(
      "Fig. 3 / forecasting: UniTS vs scratch vs naive baselines "
      "(horizon 24)");
  for (uint64_t seed : {3, 15}) {
    units::RunSeed(seed);
  }
  return 0;
}
