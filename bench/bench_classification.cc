// Experiment T1/classification (Figure 3, classification bar): UniTS
// (pre-train + fine-tune) vs the task-specific model trained from scratch
// with the same architecture and the same supervised budget.

#include "bench_util.h"

namespace units {
namespace {

void RunSeed(uint64_t seed) {
  auto dataset = data::MakeClassificationDataset(bench::BenchClassOpts(seed));
  Rng rng(seed * 7 + 1);
  auto [train, test] = dataset.TrainTestSplit(0.5, &rng);
  // The paper's motivating regime: labels are scarce (10% here), while
  // unlabeled data is plentiful. Both methods fine-tune on the same
  // labeled subset; only UniTS can exploit the unlabeled remainder.
  auto [labeled, unlabeled] = train.PartialLabelSplit(0.10, &rng);

  // UniTS: self-supervised pre-training on the (label-free) training set,
  // then supervised fine-tuning.
  auto cfg = bench::BenchConfig("classification", seed);
  auto units_pipe = core::UnitsPipeline::Create(cfg, 3);
  units_pipe.status().CheckOk();
  (*units_pipe)->Pretrain(train.values()).CheckOk();
  (*units_pipe)->FineTune(labeled).CheckOk();
  auto units_pred = (*units_pipe)->Predict(test.values());
  const auto units_report = metrics::ClassifierReport(
      test.labels(), units_pred->labels, dataset.NumClasses());

  // Scratch: identical architecture, supervised-only, same epochs.
  auto scratch = core::MakeScratchBaseline(cfg, 3, /*epoch_multiplier=*/1);
  scratch.status().CheckOk();
  (*scratch)->FineTune(labeled).CheckOk();
  auto scratch_pred = (*scratch)->Predict(test.values());
  const auto scratch_report = metrics::ClassifierReport(
      test.labels(), scratch_pred->labels, dataset.NumClasses());

  const std::string exp = "fig3_classification_seed" + std::to_string(seed);
  bench::PrintRow(exp, "classification", "units", "accuracy",
                  units_report.accuracy);
  bench::PrintRow(exp, "classification", "units", "macro_f1",
                  units_report.macro_f1);
  bench::PrintRow(exp, "classification", "scratch", "accuracy",
                  scratch_report.accuracy);
  bench::PrintRow(exp, "classification", "scratch", "macro_f1",
                  scratch_report.macro_f1);
}

}  // namespace
}  // namespace units

int main() {
  units::bench::BenchInit();
  units::bench::PrintHeader(
      "Fig. 3 / classification: UniTS vs training from scratch "
      "(equal fine-tuning budget, 10% labels)");
  for (uint64_t seed : {7, 21}) {
    units::RunSeed(seed);
  }
  return 0;
}
