// Experiment T1/clustering (Figure 3, clustering bar): k-means on UniTS
// representations (with the k-means-regularized fine-tuning of §3.3) vs
// k-means on raw flattened series and on an untrained (random) encoder.

#include "bench_util.h"

#include "cluster/kmeans.h"

namespace units {
namespace {

void RunSeed(uint64_t seed) {
  auto opts = bench::BenchClassOpts(seed);
  auto dataset = data::MakeClassificationDataset(opts);
  const std::string exp = "fig3_clustering_seed" + std::to_string(seed);

  // UniTS: pre-train, then cluster with the fine-tuning regularizer.
  auto cfg = bench::BenchConfig("clustering", seed);
  cfg.finetune_params.SetInt("num_clusters", opts.num_classes);
  cfg.finetune_params.SetInt("cluster_finetune_epochs", 3);
  auto pipe = core::UnitsPipeline::Create(cfg, 3);
  pipe.status().CheckOk();
  (*pipe)->Pretrain(dataset.values()).CheckOk();
  (*pipe)->FineTune(dataset).CheckOk();
  auto pred = (*pipe)->Predict(dataset.values());
  bench::PrintRow(exp, "clustering", "units", "nmi",
                  metrics::NormalizedMutualInfo(dataset.labels(),
                                                pred->labels));
  bench::PrintRow(exp, "clustering", "units", "ari",
                  metrics::AdjustedRandIndex(dataset.labels(), pred->labels));

  // Random-encoder baseline: same pipeline, no pre-training, no fine-tune.
  auto random_cfg = bench::BenchConfig("clustering", seed);
  random_cfg.finetune_params.SetInt("num_clusters", opts.num_classes);
  random_cfg.finetune_params.SetInt("cluster_finetune_epochs", 0);
  auto random_pipe = core::UnitsPipeline::Create(random_cfg, 3);
  (*random_pipe)->FineTune(dataset).CheckOk();
  auto random_pred = (*random_pipe)->Predict(dataset.values());
  bench::PrintRow(exp, "clustering", "random_encoder", "nmi",
                  metrics::NormalizedMutualInfo(dataset.labels(),
                                                random_pred->labels));
  bench::PrintRow(exp, "clustering", "random_encoder", "ari",
                  metrics::AdjustedRandIndex(dataset.labels(),
                                             random_pred->labels));

  // Classical baseline: k-means on the flattened raw series.
  Rng rng(seed * 13 + 5);
  auto raw = core::RawKMeansClustering(dataset.values(), opts.num_classes,
                                       &rng);
  raw.status().CheckOk();
  bench::PrintRow(exp, "clustering", "raw_kmeans", "nmi",
                  metrics::NormalizedMutualInfo(dataset.labels(), *raw));
  bench::PrintRow(exp, "clustering", "raw_kmeans", "ari",
                  metrics::AdjustedRandIndex(dataset.labels(), *raw));
}

}  // namespace
}  // namespace units

int main() {
  units::bench::BenchInit();
  units::bench::PrintHeader(
      "Fig. 3 / clustering: k-means on UniTS representations vs raw series "
      "and random encoder");
  for (uint64_t seed : {7, 21}) {
    units::RunSeed(seed);
  }
  return 0;
}
