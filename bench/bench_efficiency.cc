// Experiment Fig3/efficiency (§2.2 discussion): the pipeline is "more
// efficient when conducting several tasks on one dataset, because the
// pre-training is needed only once while the fine-tuning usually requires a
// much less number of iterations". We time: one pre-training + three
// fine-tunings at E epochs, vs three from-scratch trainings at 3E epochs,
// and report wall-clock plus quality per task.

#include "bench_util.h"

#include "core/tasks/tasks.h"
#include "data/window.h"
#include "tensor/tensor_ops.h"

namespace units {
namespace {

void Run() {
  const uint64_t seed = 7;
  const std::string exp = "fig3_efficiency";

  // One dataset, three downstream tasks on it: classification, clustering,
  // imputation (all consume the same [N, D, T] windows).
  auto dataset = data::MakeClassificationDataset(bench::BenchClassOpts(seed));
  Rng rng(seed);
  auto [train, test] = dataset.TrainTestSplit(0.5, &rng);

  auto base_cfg = bench::BenchConfig("classification", seed);
  base_cfg.finetune_params.SetInt("num_clusters", dataset.NumClasses());
  base_cfg.finetune_params.SetInt("cluster_finetune_epochs", 2);

  // --- UniTS: pre-train once, fine-tune three tasks. ---
  auto pipe = core::UnitsPipeline::Create(base_cfg, 3);
  pipe.status().CheckOk();
  const double pretrain_seconds = bench::TimeSeconds(
      [&] { (*pipe)->Pretrain(train.values()).CheckOk(); });
  bench::PrintRow(exp, "efficiency", "units", "pretrain_seconds",
                  pretrain_seconds);

  double units_finetune_seconds = 0.0;
  // Task 1: classification.
  units_finetune_seconds += bench::TimeSeconds([&] {
    (*pipe)->SetTask(std::make_unique<core::ClassificationTask>());
    (*pipe)->FineTune(train).CheckOk();
  });
  auto cls_pred = (*pipe)->Predict(test.values());
  bench::PrintRow(exp, "efficiency", "units", "classification_accuracy",
                  metrics::Accuracy(test.labels(), cls_pred->labels));
  // Task 2: clustering.
  units_finetune_seconds += bench::TimeSeconds([&] {
    (*pipe)->SetTask(
        std::make_unique<core::ClusteringTask>(dataset.NumClasses()));
    (*pipe)->FineTune(train).CheckOk();
  });
  auto clu_pred = (*pipe)->Predict(test.values());
  bench::PrintRow(exp, "efficiency", "units", "clustering_nmi",
                  metrics::NormalizedMutualInfo(test.labels(),
                                                clu_pred->labels));
  // Task 3: imputation.
  units_finetune_seconds += bench::TimeSeconds([&] {
    (*pipe)->SetTask(std::make_unique<core::ImputationTask>());
    (*pipe)->FineTune(train).CheckOk();
  });
  Rng mask_rng(99);
  Tensor mask =
      data::MakeMissingMask(test.values().shape(), 0.25f, 4.0f, &mask_rng);
  auto* imp_task = dynamic_cast<core::ImputationTask*>((*pipe)->task());
  auto imputed = imp_task->Impute(pipe->get(), test.values(), mask);
  bench::PrintRow(exp, "efficiency", "units", "imputation_masked_rmse",
                  metrics::MaskedRmse(test.values(), *imputed, mask));
  bench::PrintRow(exp, "efficiency", "units", "total_finetune_seconds",
                  units_finetune_seconds);
  bench::PrintRow(exp, "efficiency", "units", "total_seconds",
                  pretrain_seconds + units_finetune_seconds);

  // --- Scratch: three independent trainings at 3x the epochs. ---
  double scratch_seconds = 0.0;
  {
    auto scratch = core::MakeScratchBaseline(base_cfg, 3, 3);
    scratch.status().CheckOk();
    scratch_seconds +=
        bench::TimeSeconds([&] { (*scratch)->FineTune(train).CheckOk(); });
    auto pred = (*scratch)->Predict(test.values());
    bench::PrintRow(exp, "efficiency", "scratch3x",
                    "classification_accuracy",
                    metrics::Accuracy(test.labels(), pred->labels));
  }
  {
    auto cfg = base_cfg;
    cfg.task = "clustering";
    auto scratch = core::MakeScratchBaseline(cfg, 3, 3);
    scratch.status().CheckOk();
    scratch_seconds +=
        bench::TimeSeconds([&] { (*scratch)->FineTune(train).CheckOk(); });
    auto pred = (*scratch)->Predict(test.values());
    bench::PrintRow(exp, "efficiency", "scratch3x", "clustering_nmi",
                    metrics::NormalizedMutualInfo(test.labels(),
                                                  pred->labels));
  }
  {
    auto cfg = base_cfg;
    cfg.task = "imputation";
    auto scratch = core::MakeScratchBaseline(cfg, 3, 3);
    scratch.status().CheckOk();
    scratch_seconds +=
        bench::TimeSeconds([&] { (*scratch)->FineTune(train).CheckOk(); });
    auto* task = dynamic_cast<core::ImputationTask*>((*scratch)->task());
    auto imputed2 = task->Impute(scratch->get(), test.values(), mask);
    bench::PrintRow(exp, "efficiency", "scratch3x", "imputation_masked_rmse",
                    metrics::MaskedRmse(test.values(), *imputed2, mask));
  }
  bench::PrintRow(exp, "efficiency", "scratch3x", "total_seconds",
                  scratch_seconds);
}

}  // namespace
}  // namespace units

int main() {
  units::bench::BenchInit();
  units::bench::PrintHeader(
      "Fig. 3 / efficiency: pre-train once + 3 fine-tunings vs 3 scratch "
      "trainings at 3x epochs");
  units::Run();
  return 0;
}
