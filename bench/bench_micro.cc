// Substrate micro-benchmarks (google-benchmark): throughput of the tensor
// kernels, autograd, encoders, FFT, and k-means that every experiment sits
// on. Not a paper figure; supports performance regressions.
//
// After the google-benchmark suite runs, a serial-vs-parallel scaling
// harness times the thread-pool hot paths at 1 thread and at the
// configured thread count, checks the outputs are bitwise identical, and
// writes a machine-readable BENCH_tensor.json so subsequent PRs can track
// the perf trajectory.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "cluster/kmeans.h"
#include "json/json.h"
#include "nn/attention.h"
#include "nn/tcn.h"
#include "tensor/fft.h"
#include "tensor/tensor_ops.h"

namespace units {
namespace {

namespace ag = ::units::autograd;

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandNormal({n, n}, &rng);
  Tensor b = Tensor::RandNormal({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_BatchedMatMul(benchmark::State& state) {
  Rng rng(2);
  Tensor a = Tensor::RandNormal({8, 64, 32}, &rng);
  Tensor b = Tensor::RandNormal({8, 32, 64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::BatchedMatMul(a, b));
  }
}
BENCHMARK(BM_BatchedMatMul);

void BM_Conv1dForward(benchmark::State& state) {
  Rng rng(3);
  ag::Variable x(Tensor::RandNormal({16, 16, 128}, &rng));
  ag::Variable w(Tensor::RandNormal({16, 16, 3}, &rng));
  ag::Variable bias(Tensor::RandNormal({16}, &rng));
  ag::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ag::Conv1d(x, w, bias, 1, 1, 1));
  }
}
BENCHMARK(BM_Conv1dForward);

void BM_TcnEncoderForward(benchmark::State& state) {
  Rng rng(4);
  nn::TcnConfig config;
  config.input_channels = 3;
  config.hidden_channels = 24;
  config.repr_channels = 48;
  config.num_blocks = 3;
  nn::TcnEncoder encoder(config, &rng);
  encoder.SetTraining(false);
  ag::Variable x(Tensor::RandNormal({16, 3, 96}, &rng));
  ag::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Forward(x));
  }
}
BENCHMARK(BM_TcnEncoderForward);

void BM_TcnEncoderForwardBackward(benchmark::State& state) {
  Rng rng(5);
  nn::TcnConfig config;
  config.input_channels = 3;
  config.hidden_channels = 24;
  config.repr_channels = 48;
  config.num_blocks = 3;
  nn::TcnEncoder encoder(config, &rng);
  ag::Variable x(Tensor::RandNormal({16, 3, 96}, &rng));
  for (auto _ : state) {
    encoder.ZeroGrad();
    ag::Variable loss = ag::MeanAll(ag::Square(encoder.Forward(x)));
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_TcnEncoderForwardBackward);

void BM_TransformerForward(benchmark::State& state) {
  Rng rng(6);
  nn::TransformerBackbone backbone(3, 32, 48, 2, 4, &rng, 0.0f);
  backbone.SetTraining(false);
  ag::Variable x(Tensor::RandNormal({8, 3, 96}, &rng));
  ag::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(backbone.Forward(x));
  }
}
BENCHMARK(BM_TransformerForward);

void BM_Softmax(benchmark::State& state) {
  Rng rng(7);
  Tensor x = Tensor::RandNormal({64, 256}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Softmax(x, 1));
  }
}
BENCHMARK(BM_Softmax);

void BM_Fft(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(8);
  std::vector<float> signal(static_cast<size_t>(n));
  for (auto& v : signal) {
    v = static_cast<float>(rng.Normal());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::RealFft(signal));
  }
}
BENCHMARK(BM_Fft)->Arg(128)->Arg(1024);

void BM_KMeans(benchmark::State& state) {
  Rng rng(9);
  Tensor points = Tensor::RandNormal({256, 48}, &rng);
  cluster::KMeansOptions opts;
  opts.num_clusters = 4;
  opts.num_restarts = 1;
  for (auto _ : state) {
    Rng local(10);
    benchmark::DoNotOptimize(cluster::KMeans(points, opts, &local));
  }
}
BENCHMARK(BM_KMeans);

void BM_NtXentStyleLoss(benchmark::State& state) {
  Rng rng(11);
  ag::Variable z1(Tensor::RandNormal({32, 48}, &rng), true);
  ag::Variable z2(Tensor::RandNormal({32, 48}, &rng), true);
  for (auto _ : state) {
    z1.ZeroGrad();
    z2.ZeroGrad();
    ag::Variable z1n = ag::L2Normalize(z1, 1);
    ag::Variable z2n = ag::L2Normalize(z2, 1);
    ag::Variable sim =
        ag::MulScalar(ag::MatMul(z1n, ag::Transpose(z2n, 0, 1)), 5.0f);
    std::vector<int64_t> targets(32);
    for (int64_t i = 0; i < 32; ++i) {
      targets[static_cast<size_t>(i)] = i;
    }
    ag::Variable loss = ag::CrossEntropyLoss(sim, targets);
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_NtXentStyleLoss);

// --- serial-vs-parallel scaling report ------------------------------------

/// One timed kernel: returns its output flattened to floats so runs at
/// different thread counts can be compared bitwise.
struct ScalingCase {
  std::string name;
  std::function<std::vector<float>()> run;
};

std::vector<float> Flatten(const Tensor& t) {
  return std::vector<float>(t.data(), t.data() + t.numel());
}

std::vector<ScalingCase> MakeScalingCases() {
  std::vector<ScalingCase> cases;

  {
    Rng rng(101);
    auto a = std::make_shared<Tensor>(Tensor::RandNormal({512, 512}, &rng));
    auto b = std::make_shared<Tensor>(Tensor::RandNormal({512, 512}, &rng));
    cases.push_back({"matmul_512x512x512",
                     [a, b] { return Flatten(ops::MatMul(*a, *b)); }});
  }
  {
    Rng rng(102);
    auto a = std::make_shared<Tensor>(Tensor::RandNormal({16, 128, 128}, &rng));
    auto b = std::make_shared<Tensor>(Tensor::RandNormal({16, 128, 128}, &rng));
    cases.push_back({"batched_matmul_16x128x128",
                     [a, b] { return Flatten(ops::BatchedMatMul(*a, *b)); }});
  }
  {
    Rng rng(103);
    auto a = std::make_shared<Tensor>(Tensor::RandNormal({1 << 20}, &rng));
    auto b = std::make_shared<Tensor>(Tensor::RandNormal({1 << 20}, &rng));
    cases.push_back(
        {"elementwise_add_1m", [a, b] { return Flatten(ops::Add(*a, *b)); }});
    cases.push_back(
        {"elementwise_gelu_1m", [a] { return Flatten(ops::Gelu(*a)); }});
    cases.push_back({"reduce_sum_all_1m", [a] {
                       return std::vector<float>{ops::SumAll(*a)};
                     }});
  }
  {
    Rng rng(104);
    auto x = std::make_shared<ag::Variable>(
        Tensor::RandNormal({32, 32, 256}, &rng));
    auto w =
        std::make_shared<ag::Variable>(Tensor::RandNormal({32, 32, 3}, &rng));
    auto bias = std::make_shared<ag::Variable>(Tensor::RandNormal({32}, &rng));
    cases.push_back({"conv1d_fwd_32x32x256_k3", [x, w, bias] {
                       ag::NoGradGuard no_grad;
                       return Flatten(
                           ag::Conv1d(*x, *w, *bias, 1, 1, 1).data());
                     }});
  }
  {
    Rng rng(105);
    auto points =
        std::make_shared<Tensor>(Tensor::RandNormal({8192, 64}, &rng));
    auto centroids =
        std::make_shared<Tensor>(Tensor::RandNormal({16, 64}, &rng));
    cases.push_back({"kmeans_assign_8192x64_k16", [points, centroids] {
                       const auto assign =
                           cluster::AssignToCentroids(*points, *centroids);
                       std::vector<float> out(assign.size());
                       for (size_t i = 0; i < assign.size(); ++i) {
                         out[i] = static_cast<float>(assign[i]);
                       }
                       return out;
                     }});
  }
  return cases;
}

/// Best-of-3 wall time in milliseconds (first call additionally warms up).
double TimeMs(const std::function<std::vector<float>()>& fn) {
  fn();
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(fn());
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

void WriteParallelScalingReport(const std::string& path) {
  const int parallel_threads =
      std::max(2, base::ThreadPool::DefaultNumThreads());

  json::JsonValue results = json::JsonValue::Array();
  for (const ScalingCase& c : MakeScalingCases()) {
    base::SetNumThreads(1);
    const std::vector<float> serial_out = c.run();
    const double serial_ms = TimeMs(c.run);

    base::SetNumThreads(parallel_threads);
    const std::vector<float> parallel_out = c.run();
    const double parallel_ms = TimeMs(c.run);

    const bool bitwise =
        serial_out.size() == parallel_out.size() &&
        std::memcmp(serial_out.data(), parallel_out.data(),
                    serial_out.size() * sizeof(float)) == 0;

    json::JsonValue row = json::JsonValue::Object();
    row.Set("name", json::JsonValue::String(c.name));
    row.Set("serial_ms", json::JsonValue::Number(serial_ms));
    row.Set("parallel_ms", json::JsonValue::Number(parallel_ms));
    row.Set("speedup", json::JsonValue::Number(serial_ms / parallel_ms));
    row.Set("bitwise_equal", json::JsonValue::Bool(bitwise));
    results.Append(std::move(row));

    std::printf("scaling,%s,serial_ms=%.3f,parallel_ms=%.3f,speedup=%.2f,"
                "bitwise_equal=%d\n",
                c.name.c_str(), serial_ms, parallel_ms,
                serial_ms / parallel_ms, bitwise ? 1 : 0);
  }
  base::SetNumThreads(base::ThreadPool::DefaultNumThreads());

  json::JsonValue doc = json::JsonValue::Object();
  doc.Set("bench", json::JsonValue::String("tensor_parallel"));
  doc.Set("schema_version", json::JsonValue::Int(1));
  doc.Set("hardware_concurrency",
          json::JsonValue::Int(static_cast<int64_t>(
              std::thread::hardware_concurrency())));
  doc.Set("parallel_threads",
          json::JsonValue::Int(static_cast<int64_t>(parallel_threads)));
  doc.Set("results", std::move(results));

  std::ofstream out(path);
  out << doc.Dump(2) << "\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace units

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  units::WriteParallelScalingReport("BENCH_tensor.json");
  return 0;
}
