// Substrate micro-benchmarks (google-benchmark): throughput of the tensor
// kernels, autograd, encoders, FFT, and k-means that every experiment sits
// on. Not a paper figure; supports performance regressions.
//
// After the google-benchmark suite runs, three harnesses execute:
//  1. a GEMM GFLOP/s sweep over the shapes the encoders actually emit,
//     naive vs. blocked micro-kernel (tensor/gemm.h), single-threaded and
//     at the configured thread count, plus the packed int8 serving kernel
//     (tensor/gemm_int8.h) vs fp32 with bitwise thread-count determinism
//     and quantization-error gates;
//  2. a fused-vs-composed attention sweep (ag::ScaledDotAttention against
//     the scores -> softmax -> context chain) over growing sequence
//     lengths, eval forward and training forward+backward;
//  3. a multi-encoder pre-training backward sweep (encoders x threads)
//     pitting the serial reverse-topological sweep against the
//     dependency-counted parallel engine (UNITS_BACKWARD), with bitwise
//     gradient comparison against the serial oracle;
//  4. a serial-vs-parallel scaling pass over the thread-pool hot paths,
//     checking outputs stay bitwise identical across thread counts.
// All write into a machine-readable BENCH_tensor.json (schema v2). The
// fresh numbers are then diffed against the committed baseline (env
// UNITS_BENCH_BASELINE, default ../BENCH_tensor.json) and a per-kernel
// regression table is printed so perf drift shows up in tier-1 output.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "cluster/kmeans.h"
#include "json/json.h"
#include "nn/attention.h"
#include "nn/tcn.h"
#include "plan/plan.h"
#include "tensor/fft.h"
#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"
#include "tensor/quant.h"
#include "tensor/tensor_ops.h"

namespace units {
namespace {

namespace ag = ::units::autograd;

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandNormal({n, n}, &rng);
  Tensor b = Tensor::RandNormal({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_BatchedMatMul(benchmark::State& state) {
  Rng rng(2);
  Tensor a = Tensor::RandNormal({8, 64, 32}, &rng);
  Tensor b = Tensor::RandNormal({8, 32, 64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::BatchedMatMul(a, b));
  }
}
BENCHMARK(BM_BatchedMatMul);

void BM_Conv1dForward(benchmark::State& state) {
  Rng rng(3);
  ag::Variable x(Tensor::RandNormal({16, 16, 128}, &rng));
  ag::Variable w(Tensor::RandNormal({16, 16, 3}, &rng));
  ag::Variable bias(Tensor::RandNormal({16}, &rng));
  ag::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ag::Conv1d(x, w, bias, 1, 1, 1));
  }
}
BENCHMARK(BM_Conv1dForward);

void BM_TcnEncoderForward(benchmark::State& state) {
  Rng rng(4);
  nn::TcnConfig config;
  config.input_channels = 3;
  config.hidden_channels = 24;
  config.repr_channels = 48;
  config.num_blocks = 3;
  nn::TcnEncoder encoder(config, &rng);
  encoder.SetTraining(false);
  ag::Variable x(Tensor::RandNormal({16, 3, 96}, &rng));
  ag::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Forward(x));
  }
}
BENCHMARK(BM_TcnEncoderForward);

void BM_TcnEncoderForwardBackward(benchmark::State& state) {
  Rng rng(5);
  nn::TcnConfig config;
  config.input_channels = 3;
  config.hidden_channels = 24;
  config.repr_channels = 48;
  config.num_blocks = 3;
  nn::TcnEncoder encoder(config, &rng);
  ag::Variable x(Tensor::RandNormal({16, 3, 96}, &rng));
  for (auto _ : state) {
    encoder.ZeroGrad();
    ag::Variable loss = ag::MeanAll(ag::Square(encoder.Forward(x)));
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_TcnEncoderForwardBackward);

void BM_TransformerForward(benchmark::State& state) {
  Rng rng(6);
  nn::TransformerBackbone backbone(3, 32, 48, 2, 4, &rng, 0.0f);
  backbone.SetTraining(false);
  ag::Variable x(Tensor::RandNormal({8, 3, 96}, &rng));
  ag::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(backbone.Forward(x));
  }
}
BENCHMARK(BM_TransformerForward);

void BM_Softmax(benchmark::State& state) {
  Rng rng(7);
  Tensor x = Tensor::RandNormal({64, 256}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Softmax(x, 1));
  }
}
BENCHMARK(BM_Softmax);

void BM_Fft(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(8);
  std::vector<float> signal(static_cast<size_t>(n));
  for (auto& v : signal) {
    v = static_cast<float>(rng.Normal());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::RealFft(signal));
  }
}
BENCHMARK(BM_Fft)->Arg(128)->Arg(1024);

void BM_KMeans(benchmark::State& state) {
  Rng rng(9);
  Tensor points = Tensor::RandNormal({256, 48}, &rng);
  cluster::KMeansOptions opts;
  opts.num_clusters = 4;
  opts.num_restarts = 1;
  for (auto _ : state) {
    Rng local(10);
    benchmark::DoNotOptimize(cluster::KMeans(points, opts, &local));
  }
}
BENCHMARK(BM_KMeans);

void BM_NtXentStyleLoss(benchmark::State& state) {
  Rng rng(11);
  ag::Variable z1(Tensor::RandNormal({32, 48}, &rng), true);
  ag::Variable z2(Tensor::RandNormal({32, 48}, &rng), true);
  for (auto _ : state) {
    z1.ZeroGrad();
    z2.ZeroGrad();
    ag::Variable z1n = ag::L2Normalize(z1, 1);
    ag::Variable z2n = ag::L2Normalize(z2, 1);
    ag::Variable sim =
        ag::MulScalar(ag::MatMul(z1n, ag::Transpose(z2n, 0, 1)), 5.0f);
    std::vector<int64_t> targets(32);
    for (int64_t i = 0; i < 32; ++i) {
      targets[static_cast<size_t>(i)] = i;
    }
    ag::Variable loss = ag::CrossEntropyLoss(sim, targets);
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_NtXentStyleLoss);

// --- serial-vs-parallel scaling report ------------------------------------

/// One timed kernel: returns its output flattened to floats so runs at
/// different thread counts can be compared bitwise.
struct ScalingCase {
  std::string name;
  std::function<std::vector<float>()> run;
};

std::vector<float> Flatten(const Tensor& t) {
  return std::vector<float>(t.data(), t.data() + t.numel());
}

std::vector<ScalingCase> MakeScalingCases() {
  std::vector<ScalingCase> cases;

  {
    Rng rng(101);
    auto a = std::make_shared<Tensor>(Tensor::RandNormal({512, 512}, &rng));
    auto b = std::make_shared<Tensor>(Tensor::RandNormal({512, 512}, &rng));
    cases.push_back({"matmul_512x512x512",
                     [a, b] { return Flatten(ops::MatMul(*a, *b)); }});
  }
  {
    Rng rng(102);
    auto a = std::make_shared<Tensor>(Tensor::RandNormal({16, 128, 128}, &rng));
    auto b = std::make_shared<Tensor>(Tensor::RandNormal({16, 128, 128}, &rng));
    cases.push_back({"batched_matmul_16x128x128",
                     [a, b] { return Flatten(ops::BatchedMatMul(*a, *b)); }});
  }
  {
    Rng rng(103);
    auto a = std::make_shared<Tensor>(Tensor::RandNormal({1 << 20}, &rng));
    auto b = std::make_shared<Tensor>(Tensor::RandNormal({1 << 20}, &rng));
    cases.push_back(
        {"elementwise_add_1m", [a, b] { return Flatten(ops::Add(*a, *b)); }});
    cases.push_back(
        {"elementwise_gelu_1m", [a] { return Flatten(ops::Gelu(*a)); }});
    cases.push_back({"reduce_sum_all_1m", [a] {
                       return std::vector<float>{ops::SumAll(*a)};
                     }});
  }
  {
    Rng rng(104);
    auto x = std::make_shared<ag::Variable>(
        Tensor::RandNormal({32, 32, 256}, &rng));
    auto w =
        std::make_shared<ag::Variable>(Tensor::RandNormal({32, 32, 3}, &rng));
    auto bias = std::make_shared<ag::Variable>(Tensor::RandNormal({32}, &rng));
    cases.push_back({"conv1d_fwd_32x32x256_k3", [x, w, bias] {
                       ag::NoGradGuard no_grad;
                       return Flatten(
                           ag::Conv1d(*x, *w, *bias, 1, 1, 1).data());
                     }});
  }
  {
    Rng rng(105);
    auto points =
        std::make_shared<Tensor>(Tensor::RandNormal({8192, 64}, &rng));
    auto centroids =
        std::make_shared<Tensor>(Tensor::RandNormal({16, 64}, &rng));
    cases.push_back({"kmeans_assign_8192x64_k16", [points, centroids] {
                       const auto assign =
                           cluster::AssignToCentroids(*points, *centroids);
                       std::vector<float> out(assign.size());
                       for (size_t i = 0; i < assign.size(); ++i) {
                         out[i] = static_cast<float>(assign[i]);
                       }
                       return out;
                     }});
  }
  return cases;
}

/// Best-of-3 wall time in milliseconds (first call additionally warms up).
double TimeMs(const std::function<std::vector<float>()>& fn) {
  fn();
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(fn());
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

// --- GEMM GFLOP/s sweep ----------------------------------------------------

/// One GEMM shape; batch == 1 uses the 2-D kernels. Shapes below are the
/// products the encoder templates actually emit (transformer projections,
/// im2col convolution, attention heads) plus square sizes for trend lines.
struct GemmShape {
  std::string name;
  int64_t batch;
  int64_t m;
  int64_t k;
  int64_t n;
};

std::vector<GemmShape> MakeGemmShapes() {
  return {
      {"square_128", 1, 128, 128, 128},
      {"square_256", 1, 256, 256, 256},
      {"square_512", 1, 512, 512, 512},
      // TransformerBackbone qkv projection: [N*T, C] x [C, 3C], N=8 T=96.
      {"qkv_proj_768x32x96", 1, 768, 32, 96},
      // Feed-forward: [N*T, C] x [C, 2C].
      {"ffn_768x32x64", 1, 768, 32, 64},
      // TCN im2col product: [Cout, C*kern] x [C*kern, N*Tout].
      {"conv_im2col_24x72x1536", 1, 24, 72, 1536},
      // Attention scores per head: [NH, T, hd] x [NH, hd, T].
      {"attn_scores_8x96x8x96", 8, 96, 8, 96},
  };
}

/// Best-of-3 wall time in milliseconds for a raw GEMM call.
double TimeGemmMs(const std::function<void()>& fn) {
  fn();
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

json::JsonValue RunGemmSweep() {
  json::JsonValue results = json::JsonValue::Array();
  const int parallel_threads =
      std::max(2, base::ThreadPool::DefaultNumThreads());
  for (const GemmShape& s : MakeGemmShapes()) {
    Rng rng(301);
    Tensor a = Tensor::RandNormal({s.batch, s.m, s.k}, &rng);
    Tensor b = Tensor::RandNormal({s.batch, s.k, s.n}, &rng);
    Tensor c({s.batch, s.m, s.n});
    const double gflop =
        2.0 * static_cast<double>(s.batch * s.m * s.k * s.n) * 1e-9;
    auto naive = [&] {
      for (int64_t bi = 0; bi < s.batch; ++bi) {
        gemm::NaiveGemm(s.m, s.k, s.n, a.data() + bi * s.m * s.k,
                        b.data() + bi * s.k * s.n, c.data() + bi * s.m * s.n);
      }
    };
    auto blocked = [&] {
      gemm::BatchedGemm(s.batch, s.m, s.k, s.n, a.data(), b.data(), c.data());
    };
    base::SetNumThreads(1);
    const double naive_ms = TimeGemmMs(naive);
    const double blocked_ms = TimeGemmMs(blocked);
    base::SetNumThreads(parallel_threads);
    const double blocked_mt_ms = TimeGemmMs(blocked);

    json::JsonValue row = json::JsonValue::Object();
    row.Set("name", json::JsonValue::String(s.name));
    row.Set("m", json::JsonValue::Int(s.m));
    row.Set("k", json::JsonValue::Int(s.k));
    row.Set("n", json::JsonValue::Int(s.n));
    row.Set("batch", json::JsonValue::Int(s.batch));
    row.Set("naive_gflops", json::JsonValue::Number(gflop / (naive_ms * 1e-3)));
    row.Set("blocked_gflops",
            json::JsonValue::Number(gflop / (blocked_ms * 1e-3)));
    row.Set("blocked_mt_gflops",
            json::JsonValue::Number(gflop / (blocked_mt_ms * 1e-3)));
    row.Set("speedup_1t", json::JsonValue::Number(naive_ms / blocked_ms));
    results.Append(std::move(row));

    std::printf(
        "gemm,%s,naive_gflops=%.2f,blocked_gflops=%.2f,"
        "blocked_mt_gflops=%.2f,speedup_1t=%.2f\n",
        s.name.c_str(), gflop / (naive_ms * 1e-3), gflop / (blocked_ms * 1e-3),
        gflop / (blocked_mt_ms * 1e-3), naive_ms / blocked_ms);
  }
  base::SetNumThreads(base::ThreadPool::DefaultNumThreads());
  return results;
}

// --- int8 GEMM sweep ---------------------------------------------------------

/// Times the packed int8 serving kernel (tensor/gemm_int8.h) against its
/// naive int32 reference and the fp32 blocked kernel on the same shapes,
/// single-threaded and at the configured thread count. Because int8 "ops"
/// and fp32 FLOPs are the same multiply-add count, GOP/s are directly
/// comparable: fp32_ratio is the serving speedup from quantization
/// (DESIGN.md §17 targets >= 2x at square_512). Two gates ride along in
/// every row:
///   bitwise_equal  — int32 results memcmp-identical at 1 vs 8 threads
///                    (exact integer accumulation, so any mismatch is a bug);
///   max_rel_err    — full quantize->int8 GEMM->dequant output vs the fp32
///                    product, max |delta| / absmax(ref): the accuracy cost
///                    of serving int8, kept in the committed baseline so
///                    drift in quantization error is as visible as a perf
///                    regression.
json::JsonValue RunInt8GemmSweep() {
  json::JsonValue results = json::JsonValue::Array();
  const int parallel_threads =
      std::max(2, base::ThreadPool::DefaultNumThreads());
  for (const GemmShape& s : MakeGemmShapes()) {
    if (s.batch != 1) {
      continue;  // the int8 kernel serves 2-D Linear products
    }
    Rng rng(701);
    Tensor a = Tensor::RandNormal({s.m, s.k}, &rng);
    Tensor b = Tensor::RandNormal({s.k, s.n}, &rng);
    const double gop = 2.0 * static_cast<double>(s.m * s.k * s.n) * 1e-9;

    // Weights quantized per-channel as at model-quantize time; activations
    // per-row as on every quantized forward.
    const quant::QuantizedLinearWeights qw =
        quant::QuantizeLinearWeight(b, /*bias=*/nullptr);
    std::vector<uint8_t> qa(static_cast<size_t>(s.m * s.k));
    std::vector<float> row_scale(static_cast<size_t>(s.m));
    std::vector<int32_t> row_zero(static_cast<size_t>(s.m));
    quant::QuantizeActivationRows(a.data(), s.m, s.k, qa.data(),
                                  row_scale.data(), row_zero.data());

    std::vector<int32_t> c8(static_cast<size_t>(s.m * s.n));
    auto int8_naive = [&] {
      gemm::NaiveInt8Gemm(s.m, s.k, s.n, qa.data(), s.k, qw.qweight.data(),
                          s.n, c8.data());
    };
    auto int8_packed = [&] {
      gemm::Int8Gemm(s.m, s.n, qa.data(), s.k, qw.packed, c8.data());
    };
    Tensor c32({s.m, s.n});
    auto fp32_blocked = [&] {
      gemm::BatchedGemm(1, s.m, s.k, s.n, a.data(), b.data(), c32.data());
    };

    base::SetNumThreads(1);
    const double naive_ms = TimeGemmMs(int8_naive);
    const double packed_ms = TimeGemmMs(int8_packed);
    const double fp32_ms = TimeGemmMs(fp32_blocked);
    const std::vector<int32_t> c8_1t = c8;
    base::SetNumThreads(parallel_threads);
    const double packed_mt_ms = TimeGemmMs(int8_packed);
    const bool bitwise =
        std::memcmp(c8_1t.data(), c8.data(),
                    c8_1t.size() * sizeof(int32_t)) == 0;

    // Accuracy gate: dequantized serving output vs the fp32 product.
    base::SetNumThreads(1);
    fp32_blocked();
    std::vector<float> y8(static_cast<size_t>(s.m * s.n));
    quant::QuantizedLinearForward(a.data(), s.m, qw, y8.data());
    double ref_absmax = 0.0;
    double max_abs_err = 0.0;
    for (size_t i = 0; i < y8.size(); ++i) {
      ref_absmax = std::max(ref_absmax,
                            static_cast<double>(std::fabs(c32.data()[i])));
      max_abs_err = std::max(
          max_abs_err,
          static_cast<double>(std::fabs(y8[i] - c32.data()[i])));
    }
    const double max_rel_err =
        ref_absmax > 0.0 ? max_abs_err / ref_absmax : 0.0;

    json::JsonValue row = json::JsonValue::Object();
    row.Set("name", json::JsonValue::String(s.name));
    row.Set("m", json::JsonValue::Int(s.m));
    row.Set("k", json::JsonValue::Int(s.k));
    row.Set("n", json::JsonValue::Int(s.n));
    row.Set("naive_gops", json::JsonValue::Number(gop / (naive_ms * 1e-3)));
    row.Set("packed_gops", json::JsonValue::Number(gop / (packed_ms * 1e-3)));
    row.Set("packed_mt_gops",
            json::JsonValue::Number(gop / (packed_mt_ms * 1e-3)));
    row.Set("fp32_gflops", json::JsonValue::Number(gop / (fp32_ms * 1e-3)));
    row.Set("fp32_ratio", json::JsonValue::Number(fp32_ms / packed_ms));
    row.Set("bitwise_equal", json::JsonValue::Bool(bitwise));
    row.Set("max_rel_err", json::JsonValue::Number(max_rel_err));
    results.Append(std::move(row));

    std::printf(
        "gemm_int8,%s,naive_gops=%.2f,packed_gops=%.2f,packed_mt_gops=%.2f,"
        "fp32_gflops=%.2f,fp32_ratio=%.2f,bitwise_equal=%d,max_rel_err=%.4f\n",
        s.name.c_str(), gop / (naive_ms * 1e-3), gop / (packed_ms * 1e-3),
        gop / (packed_mt_ms * 1e-3), gop / (fp32_ms * 1e-3),
        fp32_ms / packed_ms, bitwise ? 1 : 0, max_rel_err);
  }
  base::SetNumThreads(base::ThreadPool::DefaultNumThreads());
  return results;
}

// --- fused attention sweep ---------------------------------------------------

/// Times the fused tile-streaming attention (ag::ScaledDotAttention)
/// against the composed scores -> softmax -> context chain it replaced
/// (the UNITS_ATTN=unfused path of MultiHeadAttention), single-threaded,
/// eval forward and training forward+backward, over growing sequence
/// lengths. Shapes mirror an N=2, H=4, hd=16 multi-head call flattened to
/// [NH, T, hd].
json::JsonValue RunAttentionSweep() {
  json::JsonValue results = json::JsonValue::Array();
  const int64_t nh = 8;
  const int64_t hd = 16;
  const float scale = 0.25f;  // 1/sqrt(hd)
  for (const int64_t t : {int64_t{128}, int64_t{512}, int64_t{1024}}) {
    Rng rng(401);
    Tensor q = Tensor::RandNormal({nh, t, hd}, &rng);
    Tensor k = Tensor::RandNormal({nh, t, hd}, &rng);
    Tensor v = Tensor::RandNormal({nh, t, hd}, &rng);

    auto composed = [&](const ag::Variable& qv, const ag::Variable& kv,
                        const ag::Variable& vv) {
      ag::Variable scores = ag::MulScalar(
          ag::BatchedMatMul(qv, ag::Transpose(kv, 1, 2)), scale);
      return ag::BatchedMatMul(ag::Softmax(scores, 2), vv);
    };
    auto fwd = [&](bool fused) {
      ag::NoGradGuard no_grad;
      ag::Variable qv(q), kv(k), vv(v);
      ag::Variable out = fused ? ag::ScaledDotAttention(qv, kv, vv, scale)
                               : composed(qv, kv, vv);
      benchmark::DoNotOptimize(out.data().data());
    };
    auto train = [&](bool fused) {
      ag::Variable qv(q, true), kv(k, true), vv(v, true);
      ag::Variable out = fused ? ag::ScaledDotAttention(qv, kv, vv, scale)
                               : composed(qv, kv, vv);
      ag::MeanAll(ag::Square(out)).Backward();
      benchmark::DoNotOptimize(qv.grad().data());
    };

    base::SetNumThreads(1);
    const double fused_fwd_ms = TimeGemmMs([&] { fwd(true); });
    const double unfused_fwd_ms = TimeGemmMs([&] { fwd(false); });
    const double fused_train_ms = TimeGemmMs([&] { train(true); });
    const double unfused_train_ms = TimeGemmMs([&] { train(false); });
    base::SetNumThreads(base::ThreadPool::DefaultNumThreads());

    json::JsonValue row = json::JsonValue::Object();
    row.Set("name", json::JsonValue::String("attn_t" + std::to_string(t)));
    row.Set("batch_heads", json::JsonValue::Int(nh));
    row.Set("seq_len", json::JsonValue::Int(t));
    row.Set("head_dim", json::JsonValue::Int(hd));
    row.Set("fused_fwd_ms", json::JsonValue::Number(fused_fwd_ms));
    row.Set("unfused_fwd_ms", json::JsonValue::Number(unfused_fwd_ms));
    row.Set("fwd_speedup",
            json::JsonValue::Number(unfused_fwd_ms / fused_fwd_ms));
    row.Set("fused_train_ms", json::JsonValue::Number(fused_train_ms));
    row.Set("unfused_train_ms", json::JsonValue::Number(unfused_train_ms));
    row.Set("train_speedup",
            json::JsonValue::Number(unfused_train_ms / fused_train_ms));
    results.Append(std::move(row));

    std::printf(
        "attention,attn_t%lld,fused_fwd_ms=%.3f,unfused_fwd_ms=%.3f,"
        "fwd_speedup=%.2f,fused_train_ms=%.3f,unfused_train_ms=%.3f,"
        "train_speedup=%.2f\n",
        static_cast<long long>(t), fused_fwd_ms, unfused_fwd_ms,
        unfused_fwd_ms / fused_fwd_ms, fused_train_ms, unfused_train_ms,
        unfused_train_ms / fused_train_ms);
  }
  return results;
}

// --- captured-plan vs dynamic sweep ----------------------------------------

/// Times eval forwards executed through a captured plan (src/plan/: fused
/// elementwise sweeps + arena memory, zero steady-state allocations)
/// against the dynamic autograd walk they were traced from,
/// single-threaded. Covers a bare GELU, a fusable bias->GELU->tanh chain
/// (three memory sweeps collapsing into one), and the TCN + transformer
/// encoder evals the pipeline actually serves. Outputs are checked bitwise
/// — a plan that diverges from the walk reports bitwise_equal=0.
json::JsonValue RunPlanSweep() {
  struct PlanCase {
    std::string name;
    Tensor x;
    plan::EvalPlan::EvalFn fn;
  };
  std::vector<PlanCase> cases;
  {
    Rng rng(501);
    Tensor x = Tensor::RandNormal({1 << 20}, &rng);
    cases.push_back({"gelu_1m", x, [](const ag::Variable& xb) {
                       return std::vector<ag::Variable>{ag::Gelu(xb)};
                     }});
    auto bias = std::make_shared<Tensor>(Tensor::RandNormal({1 << 20}, &rng));
    cases.push_back(
        {"bias_gelu_tanh_1m", x, [bias](const ag::Variable& xb) {
           return std::vector<ag::Variable>{ag::Tanh(
               ag::MulScalar(ag::Gelu(ag::Add(xb, ag::Constant(*bias))),
                             0.5f))};
         }});
  }
  {
    Rng rng(502);
    nn::TcnConfig config;
    config.input_channels = 3;
    config.hidden_channels = 24;
    config.repr_channels = 48;
    config.num_blocks = 3;
    auto encoder = std::make_shared<nn::TcnEncoder>(config, &rng);
    encoder->SetTraining(false);
    cases.push_back({"tcn_encoder_16x3x96",
                     Tensor::RandNormal({16, 3, 96}, &rng),
                     [encoder](const ag::Variable& xb) {
                       return std::vector<ag::Variable>{encoder->Forward(xb)};
                     }});
  }
  {
    Rng rng(503);
    auto backbone =
        std::make_shared<nn::TransformerBackbone>(3, 32, 48, 2, 4, &rng, 0.0f);
    backbone->SetTraining(false);
    cases.push_back({"transformer_8x3x96",
                     Tensor::RandNormal({8, 3, 96}, &rng),
                     [backbone](const ag::Variable& xb) {
                       return std::vector<ag::Variable>{
                           backbone->Forward(xb)};
                     }});
  }

  json::JsonValue results = json::JsonValue::Array();
  base::SetNumThreads(1);
  for (PlanCase& c : cases) {
    std::string error;
    auto plan = plan::EvalPlan::Capture(c.fn, c.x, &error);
    if (plan == nullptr) {
      std::printf("plan,%s,unplannable: %s\n", c.name.c_str(), error.c_str());
      continue;
    }
    const auto dynamic_once = [&] {
      ag::NoGradGuard no_grad;
      std::vector<ag::Variable> vs = c.fn(ag::Variable(c.x));
      benchmark::DoNotOptimize(vs[0].data().data());
      return vs[0].data();
    };
    Tensor planned_out;
    plan->Run(c.x, [&](int, const Tensor& t) { planned_out = t.Clone(); });
    const Tensor dynamic_out = dynamic_once();
    const bool bitwise =
        SameShape(planned_out.shape(), dynamic_out.shape()) &&
        std::memcmp(planned_out.data(), dynamic_out.data(),
                    static_cast<size_t>(planned_out.numel()) *
                        sizeof(float)) == 0;

    const double dynamic_ms = TimeGemmMs([&] { dynamic_once(); });
    const double planned_ms = TimeGemmMs([&] {
      plan->Run(c.x, [](int, const Tensor& t) {
        benchmark::DoNotOptimize(t.data());
      });
    });

    json::JsonValue row = json::JsonValue::Object();
    row.Set("name", json::JsonValue::String(c.name));
    row.Set("dynamic_ms", json::JsonValue::Number(dynamic_ms));
    row.Set("planned_ms", json::JsonValue::Number(planned_ms));
    row.Set("speedup", json::JsonValue::Number(dynamic_ms / planned_ms));
    row.Set("bitwise_equal", json::JsonValue::Bool(bitwise));
    row.Set("arena_bytes", json::JsonValue::Int(plan->arena_bytes()));
    row.Set("fused_sweeps",
            json::JsonValue::Int(plan->num_multi_step_sweeps()));
    results.Append(std::move(row));

    std::printf(
        "plan,%s,dynamic_ms=%.3f,planned_ms=%.3f,speedup=%.2f,"
        "bitwise_equal=%d,arena_bytes=%lld,fused_sweeps=%d\n",
        c.name.c_str(), dynamic_ms, planned_ms, dynamic_ms / planned_ms,
        bitwise ? 1 : 0, static_cast<long long>(plan->arena_bytes()),
        plan->num_multi_step_sweeps());
  }
  base::SetNumThreads(base::ThreadPool::DefaultNumThreads());
  return results;
}

// --- multi-encoder backward sweep ------------------------------------------

/// Times reverse-mode sweeps of a multi-encoder pre-training graph (the
/// UniTS shape: M independent TCN encoder branches over one batch, fused by
/// concat, reduced to a scalar loss) under the serial sweep vs the
/// dependency-counted ready-queue engine, across thread counts. Gradients
/// from the parallel engine are checked bitwise against the serial oracle.
/// Speedups reflect the host: on a single-core container both engines
/// degenerate to one worker and the ratio sits near 1x — re-measure on
/// multi-core hardware, where independent branches back-propagate
/// concurrently.
json::JsonValue RunBackwardSweep() {
  json::JsonValue results = json::JsonValue::Array();
  for (const int num_encoders : {2, 4}) {
    Rng xrng(600);
    Tensor x = Tensor::RandNormal({16, 3, 96}, &xrng);
    std::vector<std::shared_ptr<nn::TcnEncoder>> encoders;
    std::vector<ag::Variable> params;
    for (int m = 0; m < num_encoders; ++m) {
      Rng rng(601 + static_cast<uint64_t>(m));
      nn::TcnConfig config;
      config.input_channels = 3;
      config.hidden_channels = 24;
      config.repr_channels = 48;
      config.num_blocks = 3;
      auto enc = std::make_shared<nn::TcnEncoder>(config, &rng);
      enc->SetTraining(true);
      for (ag::Variable& p : enc->Parameters()) {
        params.push_back(p);
      }
      encoders.push_back(std::move(enc));
    }

    const auto forward = [&] {
      ag::Variable xv(x);
      std::vector<ag::Variable> reprs;
      reprs.reserve(encoders.size());
      for (const auto& enc : encoders) {
        reprs.push_back(ag::MeanPoolOverTime(enc->Forward(xv)));
      }
      return ag::MeanAll(ag::Square(ag::Concat(reprs, 1)));
    };

    // Fresh graph per repetition so every timed Backward() does identical
    // work; only the sweep itself is inside the timer.
    const auto time_backward_ms = [&](const char* mode, int threads) {
      setenv("UNITS_BACKWARD", mode, /*overwrite=*/1);
      base::SetNumThreads(threads);
      double best = 1e300;
      for (int rep = 0; rep < 4; ++rep) {  // rep 0 warms up
        ag::Variable loss = forward();
        const auto t0 = std::chrono::steady_clock::now();
        loss.Backward();
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (rep > 0) {
          best = std::min(best, ms);
        }
      }
      return best;
    };

    const auto grads_once = [&](const char* mode, int threads) {
      setenv("UNITS_BACKWARD", mode, /*overwrite=*/1);
      base::SetNumThreads(threads);
      for (ag::Variable& p : params) {
        p.ZeroGrad();
      }
      forward().Backward();
      std::vector<float> flat;
      for (const ag::Variable& p : params) {
        const Tensor& g = p.grad();
        flat.insert(flat.end(), g.data(), g.data() + g.numel());
      }
      return flat;
    };

    const std::vector<float> oracle = grads_once("serial", 1);
    for (const int threads : {1, 8}) {
      const double serial_ms = time_backward_ms("serial", threads);
      const double parallel_ms = time_backward_ms("parallel", threads);
      const std::vector<float> grads = grads_once("parallel", threads);
      const bool bitwise =
          grads.size() == oracle.size() &&
          std::memcmp(grads.data(), oracle.data(),
                      grads.size() * sizeof(float)) == 0;

      json::JsonValue row = json::JsonValue::Object();
      const std::string name = "pretrain_backward_enc" +
                               std::to_string(num_encoders) + "_t" +
                               std::to_string(threads);
      row.Set("name", json::JsonValue::String(name));
      row.Set("encoders", json::JsonValue::Int(num_encoders));
      row.Set("threads", json::JsonValue::Int(threads));
      row.Set("serial_ms", json::JsonValue::Number(serial_ms));
      row.Set("parallel_ms", json::JsonValue::Number(parallel_ms));
      row.Set("speedup", json::JsonValue::Number(serial_ms / parallel_ms));
      row.Set("bitwise_equal", json::JsonValue::Bool(bitwise));
      results.Append(std::move(row));

      std::printf(
          "backward,%s,serial_ms=%.3f,parallel_ms=%.3f,speedup=%.2f,"
          "bitwise_equal=%d\n",
          name.c_str(), serial_ms, parallel_ms, serial_ms / parallel_ms,
          bitwise ? 1 : 0);
    }
  }
  unsetenv("UNITS_BACKWARD");
  base::SetNumThreads(base::ThreadPool::DefaultNumThreads());
  return results;
}

// --- baseline regression diff ----------------------------------------------

/// Extracts name -> metric from a row array, returning NaN when absent.
double RowMetric(const json::JsonValue& rows, const std::string& name,
                 const std::string& key) {
  if (!rows.is_array()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    const json::JsonValue& row = rows[i];
    if (row.is_object() && row.Contains("name") && row.at("name").is_string() &&
        row.at("name").AsString() == name && row.Contains(key) &&
        row.at(key).is_number()) {
      return row.at(key).AsNumber();
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

/// Compares the freshly measured report against the committed baseline
/// (UNITS_BENCH_BASELINE, default ../BENCH_tensor.json, i.e. the repo-root
/// copy when run from build/) and prints a per-kernel regression table.
/// Purely informational: machines differ, so this reports drift rather than
/// failing the run.
void DiffAgainstBaseline(const json::JsonValue& fresh) {
  const char* env = std::getenv("UNITS_BENCH_BASELINE");
  const std::string path = env != nullptr ? env : "../BENCH_tensor.json";
  auto parsed = json::ParseFile(path);
  if (!parsed.ok()) {
    std::printf("perf-diff: no baseline at %s (%s); skipping\n", path.c_str(),
                parsed.status().message().c_str());
    return;
  }
  const json::JsonValue& base = *parsed;
  std::printf("perf-diff vs %s\n", path.c_str());
  std::printf("%-40s %12s %12s %8s  %s\n", "kernel", "baseline", "fresh",
              "ratio", "status");
  int regressions = 0;
  auto report = [&](const std::string& label, double baseline, double current,
                    bool higher_is_better, double tolerance) {
    if (!std::isfinite(baseline) || !std::isfinite(current) ||
        baseline <= 0.0 || current <= 0.0) {
      return;
    }
    const double ratio = current / baseline;
    const bool regressed =
        higher_is_better ? ratio < 1.0 / tolerance : ratio > tolerance;
    regressions += regressed ? 1 : 0;
    std::printf("%-40s %12.3f %12.3f %7.2fx  %s\n", label.c_str(), baseline,
                current, ratio, regressed ? "REGRESSION" : "ok");
  };
  // GEMM throughput: higher is better; flag drops past 25%.
  if (base.Contains("gemm") && fresh.Contains("gemm")) {
    for (size_t i = 0; i < fresh.at("gemm").size(); ++i) {
      const json::JsonValue& row = fresh.at("gemm")[i];
      const std::string name = row.at("name").AsString();
      for (const char* key : {"naive_gflops", "blocked_gflops"}) {
        report("gemm/" + name + "/" + key,
               RowMetric(base.at("gemm"), name, key),
               RowMetric(fresh.at("gemm"), name, key),
               /*higher_is_better=*/true, /*tolerance=*/1.25);
      }
    }
  }
  // Int8 GEMM throughput: higher is better; quantization error: any growth
  // past 25% over the committed baseline is flagged (it is a property of the
  // kernel + quantizer, not the machine, so it should not drift at all).
  if (base.Contains("gemm_int8") && fresh.Contains("gemm_int8")) {
    for (size_t i = 0; i < fresh.at("gemm_int8").size(); ++i) {
      const json::JsonValue& row = fresh.at("gemm_int8")[i];
      const std::string name = row.at("name").AsString();
      for (const char* key : {"naive_gops", "packed_gops"}) {
        report("gemm_int8/" + name + "/" + key,
               RowMetric(base.at("gemm_int8"), name, key),
               RowMetric(fresh.at("gemm_int8"), name, key),
               /*higher_is_better=*/true, /*tolerance=*/1.25);
      }
      report("gemm_int8/" + name + "/max_rel_err",
             RowMetric(base.at("gemm_int8"), name, "max_rel_err"),
             RowMetric(fresh.at("gemm_int8"), name, "max_rel_err"),
             /*higher_is_better=*/false, /*tolerance=*/1.25);
    }
  }
  // Attention wall times: lower is better.
  if (base.Contains("attention") && fresh.Contains("attention")) {
    for (size_t i = 0; i < fresh.at("attention").size(); ++i) {
      const json::JsonValue& row = fresh.at("attention")[i];
      const std::string name = row.at("name").AsString();
      for (const char* key : {"fused_fwd_ms", "fused_train_ms"}) {
        report("attention/" + name + "/" + key,
               RowMetric(base.at("attention"), name, key),
               RowMetric(fresh.at("attention"), name, key),
               /*higher_is_better=*/false, /*tolerance=*/1.25);
      }
    }
  }
  // Planned-execution wall times: lower is better.
  if (base.Contains("plan") && fresh.Contains("plan")) {
    for (size_t i = 0; i < fresh.at("plan").size(); ++i) {
      const json::JsonValue& row = fresh.at("plan")[i];
      const std::string name = row.at("name").AsString();
      report("plan/" + name + "/planned_ms",
             RowMetric(base.at("plan"), name, "planned_ms"),
             RowMetric(fresh.at("plan"), name, "planned_ms"),
             /*higher_is_better=*/false, /*tolerance=*/1.25);
    }
  }
  // Parallel-backward wall times: lower is better.
  if (base.Contains("backward") && fresh.Contains("backward")) {
    for (size_t i = 0; i < fresh.at("backward").size(); ++i) {
      const json::JsonValue& row = fresh.at("backward")[i];
      const std::string name = row.at("name").AsString();
      report("backward/" + name + "/parallel_ms",
             RowMetric(base.at("backward"), name, "parallel_ms"),
             RowMetric(fresh.at("backward"), name, "parallel_ms"),
             /*higher_is_better=*/false, /*tolerance=*/1.25);
    }
  }
  // Scaling-case wall times: lower is better.
  if (base.Contains("results") && fresh.Contains("results")) {
    for (size_t i = 0; i < fresh.at("results").size(); ++i) {
      const json::JsonValue& row = fresh.at("results")[i];
      const std::string name = row.at("name").AsString();
      report("scaling/" + name + "/serial_ms",
             RowMetric(base.at("results"), name, "serial_ms"),
             RowMetric(fresh.at("results"), name, "serial_ms"),
             /*higher_is_better=*/false, /*tolerance=*/1.25);
    }
  }
  std::printf("perf-diff: %d regression(s) flagged\n", regressions);
}

void WriteParallelScalingReport(const std::string& path) {
  const int parallel_threads =
      std::max(2, base::ThreadPool::DefaultNumThreads());

  json::JsonValue results = json::JsonValue::Array();
  for (const ScalingCase& c : MakeScalingCases()) {
    base::SetNumThreads(1);
    const std::vector<float> serial_out = c.run();
    const double serial_ms = TimeMs(c.run);

    base::SetNumThreads(parallel_threads);
    const std::vector<float> parallel_out = c.run();
    const double parallel_ms = TimeMs(c.run);

    const bool bitwise =
        serial_out.size() == parallel_out.size() &&
        std::memcmp(serial_out.data(), parallel_out.data(),
                    serial_out.size() * sizeof(float)) == 0;

    json::JsonValue row = json::JsonValue::Object();
    row.Set("name", json::JsonValue::String(c.name));
    row.Set("serial_ms", json::JsonValue::Number(serial_ms));
    row.Set("parallel_ms", json::JsonValue::Number(parallel_ms));
    row.Set("speedup", json::JsonValue::Number(serial_ms / parallel_ms));
    row.Set("bitwise_equal", json::JsonValue::Bool(bitwise));
    results.Append(std::move(row));

    std::printf("scaling,%s,serial_ms=%.3f,parallel_ms=%.3f,speedup=%.2f,"
                "bitwise_equal=%d\n",
                c.name.c_str(), serial_ms, parallel_ms,
                serial_ms / parallel_ms, bitwise ? 1 : 0);
  }
  base::SetNumThreads(base::ThreadPool::DefaultNumThreads());

  json::JsonValue doc = json::JsonValue::Object();
  doc.Set("bench", json::JsonValue::String("tensor_parallel"));
  doc.Set("schema_version", json::JsonValue::Int(2));
  doc.Set("hardware_concurrency",
          json::JsonValue::Int(static_cast<int64_t>(
              std::thread::hardware_concurrency())));
  doc.Set("parallel_threads",
          json::JsonValue::Int(static_cast<int64_t>(parallel_threads)));
  doc.Set("gemm_micro_kernel", json::JsonValue::String(gemm::MicroKernelName()));
  doc.Set("gemm_int8_micro_kernel",
          json::JsonValue::String(gemm::Int8MicroKernelName()));
  doc.Set("gemm", RunGemmSweep());
  doc.Set("gemm_int8", RunInt8GemmSweep());
  doc.Set("attention", RunAttentionSweep());
  doc.Set("plan", RunPlanSweep());
  doc.Set("backward", RunBackwardSweep());
  doc.Set("results", std::move(results));

  std::ofstream out(path);
  out << doc.Dump(2) << "\n";
  std::printf("wrote %s\n", path.c_str());

  DiffAgainstBaseline(doc);
}

}  // namespace
}  // namespace units

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  units::WriteParallelScalingReport("BENCH_tensor.json");
  return 0;
}
