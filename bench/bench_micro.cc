// Substrate micro-benchmarks (google-benchmark): throughput of the tensor
// kernels, autograd, encoders, FFT, and k-means that every experiment sits
// on. Not a paper figure; supports performance regressions.

#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "base/rng.h"
#include "cluster/kmeans.h"
#include "nn/attention.h"
#include "nn/tcn.h"
#include "tensor/fft.h"
#include "tensor/tensor_ops.h"

namespace units {
namespace {

namespace ag = ::units::autograd;

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandNormal({n, n}, &rng);
  Tensor b = Tensor::RandNormal({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_BatchedMatMul(benchmark::State& state) {
  Rng rng(2);
  Tensor a = Tensor::RandNormal({8, 64, 32}, &rng);
  Tensor b = Tensor::RandNormal({8, 32, 64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::BatchedMatMul(a, b));
  }
}
BENCHMARK(BM_BatchedMatMul);

void BM_Conv1dForward(benchmark::State& state) {
  Rng rng(3);
  ag::Variable x(Tensor::RandNormal({16, 16, 128}, &rng));
  ag::Variable w(Tensor::RandNormal({16, 16, 3}, &rng));
  ag::Variable bias(Tensor::RandNormal({16}, &rng));
  ag::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ag::Conv1d(x, w, bias, 1, 1, 1));
  }
}
BENCHMARK(BM_Conv1dForward);

void BM_TcnEncoderForward(benchmark::State& state) {
  Rng rng(4);
  nn::TcnConfig config;
  config.input_channels = 3;
  config.hidden_channels = 24;
  config.repr_channels = 48;
  config.num_blocks = 3;
  nn::TcnEncoder encoder(config, &rng);
  encoder.SetTraining(false);
  ag::Variable x(Tensor::RandNormal({16, 3, 96}, &rng));
  ag::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Forward(x));
  }
}
BENCHMARK(BM_TcnEncoderForward);

void BM_TcnEncoderForwardBackward(benchmark::State& state) {
  Rng rng(5);
  nn::TcnConfig config;
  config.input_channels = 3;
  config.hidden_channels = 24;
  config.repr_channels = 48;
  config.num_blocks = 3;
  nn::TcnEncoder encoder(config, &rng);
  ag::Variable x(Tensor::RandNormal({16, 3, 96}, &rng));
  for (auto _ : state) {
    encoder.ZeroGrad();
    ag::Variable loss = ag::MeanAll(ag::Square(encoder.Forward(x)));
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_TcnEncoderForwardBackward);

void BM_TransformerForward(benchmark::State& state) {
  Rng rng(6);
  nn::TransformerBackbone backbone(3, 32, 48, 2, 4, &rng, 0.0f);
  backbone.SetTraining(false);
  ag::Variable x(Tensor::RandNormal({8, 3, 96}, &rng));
  ag::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(backbone.Forward(x));
  }
}
BENCHMARK(BM_TransformerForward);

void BM_Softmax(benchmark::State& state) {
  Rng rng(7);
  Tensor x = Tensor::RandNormal({64, 256}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Softmax(x, 1));
  }
}
BENCHMARK(BM_Softmax);

void BM_Fft(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(8);
  std::vector<float> signal(static_cast<size_t>(n));
  for (auto& v : signal) {
    v = static_cast<float>(rng.Normal());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::RealFft(signal));
  }
}
BENCHMARK(BM_Fft)->Arg(128)->Arg(1024);

void BM_KMeans(benchmark::State& state) {
  Rng rng(9);
  Tensor points = Tensor::RandNormal({256, 48}, &rng);
  cluster::KMeansOptions opts;
  opts.num_clusters = 4;
  opts.num_restarts = 1;
  for (auto _ : state) {
    Rng local(10);
    benchmark::DoNotOptimize(cluster::KMeans(points, opts, &local));
  }
}
BENCHMARK(BM_KMeans);

void BM_NtXentStyleLoss(benchmark::State& state) {
  Rng rng(11);
  ag::Variable z1(Tensor::RandNormal({32, 48}, &rng), true);
  ag::Variable z2(Tensor::RandNormal({32, 48}, &rng), true);
  for (auto _ : state) {
    z1.ZeroGrad();
    z2.ZeroGrad();
    ag::Variable z1n = ag::L2Normalize(z1, 1);
    ag::Variable z2n = ag::L2Normalize(z2, 1);
    ag::Variable sim =
        ag::MulScalar(ag::MatMul(z1n, ag::Transpose(z2n, 0, 1)), 5.0f);
    std::vector<int64_t> targets(32);
    for (int64_t i = 0; i < 32; ++i) {
      targets[static_cast<size_t>(i)] = i;
    }
    ag::Variable loss = ag::CrossEntropyLoss(sim, targets);
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_NtXentStyleLoss);

}  // namespace
}  // namespace units
