// Experiment T1/imputation (Figure 3, imputation bar): the denoising-
// autoencoder imputer on top of UniTS representations vs the same model
// from scratch vs zero-fill and linear interpolation, across missing rates.

#include "bench_util.h"

#include "core/tasks/tasks.h"
#include "tensor/tensor_ops.h"

namespace units {
namespace {

/// Per-channel linear interpolation across missing runs (classical
/// baseline). Boundary gaps extend the nearest observed value.
Tensor LinearInterpolate(const Tensor& x, const Tensor& mask) {
  Tensor out = x.Clone();
  const int64_t n = x.dim(0);
  const int64_t d = x.dim(1);
  const int64_t t = x.dim(2);
  for (int64_t row = 0; row < n * d; ++row) {
    float* v = out.data() + row * t;
    const float* m = mask.data() + row * t;
    int64_t prev = -1;  // last observed index
    for (int64_t i = 0; i < t; ++i) {
      if (m[i] == 1.0f) {
        if (prev < 0) {
          // Leading gap: backfill.
          for (int64_t j = 0; j < i; ++j) {
            v[j] = v[i];
          }
        } else if (prev < i - 1) {
          const float lo = v[prev];
          const float hi = v[i];
          for (int64_t j = prev + 1; j < i; ++j) {
            const float frac = static_cast<float>(j - prev) /
                               static_cast<float>(i - prev);
            v[j] = lo + frac * (hi - lo);
          }
        }
        prev = i;
      }
    }
    if (prev >= 0 && prev < t - 1) {
      for (int64_t j = prev + 1; j < t; ++j) {
        v[j] = v[prev];  // trailing gap: forward fill
      }
    }
  }
  return out;
}

void RunSeed(uint64_t seed) {
  data::ForecastSeriesOpts opts;
  opts.num_channels = 2;
  opts.total_length = 2000;
  opts.seed = seed;
  auto dataset = data::MakeForecastDataset(opts, 96, 1, 16);
  Rng rng(seed * 3 + 2);
  auto [train, test] = dataset.TrainTestSplit(0.7, &rng);

  // Fit UniTS DAE and the scratch DAE once; evaluate across missing rates.
  // Masked autoregression pre-training is the natural fit: its objective
  // (predict masked values) is the imputation task itself.
  auto cfg = bench::BenchConfig("imputation", seed);
  cfg.templates = {"masked_autoregression"};
  cfg.finetune_params.SetDouble("imputation_mask_block", 12.0);
  cfg.finetune_params.SetDouble("imputation_mask_ratio", 0.3);
  auto pipe = core::UnitsPipeline::Create(cfg, 2);
  pipe.status().CheckOk();
  (*pipe)->Pretrain(train.values()).CheckOk();
  (*pipe)->FineTune(train).CheckOk();
  auto* units_task = dynamic_cast<core::ImputationTask*>((*pipe)->task());

  auto scratch = core::MakeScratchBaseline(cfg, 2, 1);
  scratch.status().CheckOk();
  (*scratch)->FineTune(train).CheckOk();
  auto* scratch_task =
      dynamic_cast<core::ImputationTask*>((*scratch)->task());

  for (const float rate : {0.1f, 0.25f, 0.4f}) {
    // Long dropout bursts (mean 16 steps): the regime where local linear
    // interpolation degrades and the learned context model pays off.
    Rng mask_rng(seed * 31 + static_cast<uint64_t>(rate * 100));
    Tensor mask = data::MakeMissingMask(test.values().shape(), rate, 16.0f,
                                        &mask_rng);
    const std::string exp =
        "fig3_imputation_seed" + std::to_string(seed) + "_rate" +
        std::to_string(static_cast<int>(rate * 100));

    auto units_imputed = units_task->Impute(pipe->get(), test.values(), mask);
    units_imputed.status().CheckOk();
    bench::PrintRow(exp, "imputation", "units", "masked_rmse",
                    metrics::MaskedRmse(test.values(), *units_imputed, mask));

    auto scratch_imputed =
        scratch_task->Impute(scratch->get(), test.values(), mask);
    scratch_imputed.status().CheckOk();
    bench::PrintRow(exp, "imputation", "scratch", "masked_rmse",
                    metrics::MaskedRmse(test.values(), *scratch_imputed,
                                        mask));

    Tensor zero_filled = ops::Mul(test.values(), mask);
    bench::PrintRow(exp, "imputation", "zero_fill", "masked_rmse",
                    metrics::MaskedRmse(test.values(), zero_filled, mask));

    Tensor interpolated = LinearInterpolate(zero_filled, mask);
    bench::PrintRow(exp, "imputation", "linear_interp", "masked_rmse",
                    metrics::MaskedRmse(test.values(), interpolated, mask));
  }
}

}  // namespace
}  // namespace units

int main() {
  units::bench::BenchInit();
  units::bench::PrintHeader(
      "Fig. 3 / imputation: UniTS DAE vs scratch vs zero-fill / linear "
      "interpolation at missing rates 10/25/40%");
  for (uint64_t seed : {9, 27}) {
    units::RunSeed(seed);
  }
  return 0;
}
