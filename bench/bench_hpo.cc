// Experiment §2.2 Smart mode: Bayesian-optimization hyper-parameter tuning
// of the fine-tuning stage vs random search vs the Default configuration,
// at an equal trial budget. Objective: validation accuracy with frozen
// pre-trained encoders (so each trial is a cheap head fit).

#include "bench_util.h"

#include "hpo/bayes_opt.h"
#include "hpo/random_search.h"

namespace units {
namespace {

struct Workbench {
  data::TimeSeriesDataset train;
  data::TimeSeriesDataset val;
  data::TimeSeriesDataset test;
  std::string snapshot;
};

double EvaluateTrial(const Workbench& wb, const hpo::ParamSet& trial_params,
                     uint64_t seed, bool on_test) {
  auto pipeline = core::UnitsPipeline::LoadJson(wb.snapshot);
  pipeline.status().CheckOk();
  hpo::ParamSet ft = (*pipeline)->finetune_params().MergedWith(trial_params);
  ft.SetInt("finetune_encoder", 0);
  ft.SetInt("epochs", 15);
  (void)seed;
  (*pipeline)->SetFineTuneParams(ft);
  (*pipeline)->FineTune(wb.train).CheckOk();
  const auto& eval = on_test ? wb.test : wb.val;
  auto pred = (*pipeline)->Predict(eval.values());
  return metrics::Accuracy(eval.labels(), pred->labels);
}

void Run() {
  const uint64_t seed = 7;
  auto dataset = data::MakeClassificationDataset(bench::BenchClassOpts(seed));
  Rng rng(seed);
  auto [train_all, test] = dataset.TrainTestSplit(0.6, &rng);
  auto [train, val] = train_all.TrainTestSplit(0.7, &rng);

  // Shared pre-trained encoders (Smart mode tunes fine-tuning on top).
  auto cfg = bench::BenchConfig("classification", seed);
  auto pretrained = core::UnitsPipeline::Create(cfg, 3);
  pretrained.status().CheckOk();
  (*pretrained)->Pretrain(train.values()).CheckOk();
  Workbench wb{std::move(train), std::move(val), std::move(test),
               "/tmp/units_hpo_snapshot.json"};
  (*pretrained)->SaveJson(wb.snapshot).CheckOk();

  hpo::ParamSpace space;
  space.AddDouble("lr", 1e-4, 3e-2, /*log_scale=*/true)
      .AddInt("head_hidden", 0, 64)
      .AddDouble("dropout", 0.0, 0.4);

  const int kBudget = 8;
  const std::string exp = "sec22_smart_mode";

  // Default mode: library defaults, no tuning.
  bench::PrintRow(exp, "hpo", "default_mode", "test_accuracy",
                  EvaluateTrial(wb, hpo::ParamSet(), seed, /*on_test=*/true));

  auto run_optimizer = [&](hpo::HpOptimizer* opt, const std::string& name) {
    for (int i = 0; i < kBudget; ++i) {
      hpo::Trial trial;
      trial.params = opt->Propose();
      trial.objective = EvaluateTrial(wb, trial.params, seed, false);
      opt->Observe(trial);
    }
    const auto& best = opt->Best();
    bench::PrintRow(exp, "hpo", name, "best_val_accuracy", best.objective);
    bench::PrintRow(exp, "hpo", name, "test_accuracy",
                    EvaluateTrial(wb, best.params, seed, true));
  };

  hpo::BayesianOptimizer::Options bo_options;
  bo_options.initial_random_trials = 3;
  hpo::BayesianOptimizer bo(&space, seed + 1, bo_options);
  run_optimizer(&bo, "smart_bayes_opt");

  hpo::RandomSearch rs(&space, seed + 1);
  run_optimizer(&rs, "random_search");
}

}  // namespace
}  // namespace units

int main() {
  units::bench::BenchInit();
  units::bench::PrintHeader(
      "Section 2.2 / Smart mode: Bayesian optimization vs random search vs "
      "Default configuration (8-trial budget)");
  units::Run();
  return 0;
}
