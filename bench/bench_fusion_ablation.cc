// Experiment §3.2 fusion ablation: individual pre-training templates vs
// the concatenation and projection fusions of multiple templates. Frozen
// encoders + linear probe isolate representation quality (the fusion
// module's job). Motivates the paper's "avoid method selection" claim.

#include "bench_util.h"

namespace units {
namespace {

double ProbeAccuracy(const std::vector<std::string>& templates,
                     const std::string& fusion, uint64_t seed,
                     const data::TimeSeriesDataset& train,
                     const data::TimeSeriesDataset& test) {
  auto cfg = bench::BenchConfig("classification", seed);
  cfg.templates = templates;
  cfg.fusion = fusion;
  cfg.finetune_params.SetInt("finetune_encoder", 0);  // probe the reps
  cfg.finetune_params.SetInt("epochs", 40);
  auto pipe = core::UnitsPipeline::Create(cfg, 3);
  pipe.status().CheckOk();
  (*pipe)->Pretrain(train.values()).CheckOk();
  (*pipe)->FineTune(train).CheckOk();
  auto pred = (*pipe)->Predict(test.values());
  return metrics::Accuracy(test.labels(), pred->labels);
}

void RunSeed(uint64_t seed) {
  auto dataset = data::MakeClassificationDataset(bench::BenchClassOpts(seed));
  Rng rng(seed * 7 + 1);
  auto [train, test] = dataset.TrainTestSplit(0.5, &rng);
  const std::string exp = "sec32_fusion_seed" + std::to_string(seed);

  const std::vector<std::string> singles = {
      "whole_series_contrastive", "subsequence_contrastive",
      "masked_autoregression"};
  for (const std::string& tmpl : singles) {
    bench::PrintRow(exp, "fusion_ablation", tmpl, "probe_accuracy",
                    ProbeAccuracy({tmpl}, "concat", seed, train, test));
  }
  bench::PrintRow(exp, "fusion_ablation", "concat_all3", "probe_accuracy",
                  ProbeAccuracy(singles, "concat", seed, train, test));
  bench::PrintRow(exp, "fusion_ablation", "projection_all3",
                  "probe_accuracy",
                  ProbeAccuracy(singles, "projection", seed, train, test));
}

}  // namespace
}  // namespace units

int main() {
  units::bench::BenchInit();
  units::bench::PrintHeader(
      "Section 3.2 / fusion ablation: single templates vs concat vs "
      "projection fusion (frozen-encoder linear probe)");
  units::RunSeed(7);
  return 0;
}
