// Experiment Fig2a/domain-shift: pre-train on a source domain, fine-tune
// on a small target-domain set; compare against (a) the same architecture
// trained from scratch on the small target set and (b) scratch trained on
// source + target pooled (the paper: UniTS generalizes better than models
// trained from scratch on source+target of the same size).

#include "bench_util.h"

#include "tensor/tensor_ops.h"

namespace units {
namespace {

void RunSeed(uint64_t seed) {
  auto opts = bench::BenchClassOpts(seed);
  data::DomainShift shift;  // amplitude x1.6, freq x1.15, drift, 1.8x noise
  // (DomainShift::channel_rotation provides an even harsher, class-
  // conditional shift; with it every method degrades — see EXPERIMENTS.md.)
  auto [source, target] = data::MakeDomainShiftPair(opts, shift);

  Rng rng(seed * 5 + 3);
  auto [target_pool, target_test] = target.TrainTestSplit(0.5, &rng);

  // Pre-train once on the full source domain; snapshot for reuse.
  auto cfg = bench::BenchConfig("classification", seed);
  auto pretrained = core::UnitsPipeline::Create(cfg, 3);
  pretrained.status().CheckOk();
  (*pretrained)->Pretrain(source.values()).CheckOk();
  const std::string snapshot =
      "/tmp/units_domain_shift_" + std::to_string(seed) + ".json";
  (*pretrained)->SaveJson(snapshot).CheckOk();

  for (const int64_t budget : {16, 32, 64}) {  // labeled target windows
    const double fraction =
        static_cast<double>(budget) /
        static_cast<double>(target_pool.num_samples());
    Rng split_rng(seed * 17 + static_cast<uint64_t>(budget));
    auto [target_train, ignored] =
        target_pool.PartialLabelSplit(fraction, &split_rng);
    const std::string exp =
        "fig2a_domain_seed" + std::to_string(seed) + "_n" +
        std::to_string(budget);

    // UniTS: source pre-training + small target fine-tuning.
    auto units_copy = core::UnitsPipeline::LoadJson(snapshot);
    units_copy.status().CheckOk();
    (*units_copy)->FineTune(target_train).CheckOk();
    auto units_pred = (*units_copy)->Predict(target_test.values());
    bench::PrintRow(exp, "domain_shift", "units", "target_accuracy",
                    metrics::Accuracy(target_test.labels(),
                                      units_pred->labels));

    // Scratch on the small target set only.
    auto scratch_t = core::MakeScratchBaseline(cfg, 3, 1);
    scratch_t.status().CheckOk();
    (*scratch_t)->FineTune(target_train).CheckOk();
    auto scratch_t_pred = (*scratch_t)->Predict(target_test.values());
    bench::PrintRow(exp, "domain_shift", "scratch_target_only",
                    "target_accuracy",
                    metrics::Accuracy(target_test.labels(),
                                      scratch_t_pred->labels));

    // Scratch on source + target pooled (labels from both domains).
    auto pooled_values = ops::Concat(
        {source.values(), target_train.values()}, 0);
    std::vector<int64_t> pooled_labels = source.labels();
    pooled_labels.insert(pooled_labels.end(), target_train.labels().begin(),
                         target_train.labels().end());
    data::TimeSeriesDataset pooled(std::move(pooled_values),
                                   std::move(pooled_labels));
    auto scratch_p = core::MakeScratchBaseline(cfg, 3, 1);
    scratch_p.status().CheckOk();
    (*scratch_p)->FineTune(pooled).CheckOk();
    auto scratch_p_pred = (*scratch_p)->Predict(target_test.values());
    bench::PrintRow(exp, "domain_shift", "scratch_source_plus_target",
                    "target_accuracy",
                    metrics::Accuracy(target_test.labels(),
                                      scratch_p_pred->labels));
  }
}

}  // namespace
}  // namespace units

int main() {
  units::bench::BenchInit();
  units::bench::PrintHeader(
      "Fig. 2a / domain shift: source pre-training + small target fine-tune "
      "vs scratch (target-only and source+target)");
  units::RunSeed(11);
  return 0;
}
