// Experiment Fig2a/partial-labeling: accuracy as a function of the labeled
// fraction. UniTS pre-trains once on all (unlabeled) training data, is
// snapshotted to JSON, and each label budget fine-tunes a fresh copy; the
// scratch baseline sees only the labeled subset. The paper's claim:
// competitive accuracy with several times fewer labels.

#include "bench_util.h"

namespace units {
namespace {

void RunSeed(uint64_t seed) {
  auto dataset = data::MakeClassificationDataset(bench::BenchClassOpts(seed));
  Rng rng(seed * 7 + 1);
  auto [train, test] = dataset.TrainTestSplit(0.5, &rng);

  // Pre-train once; snapshot so every label budget starts from the same
  // encoders (this also exercises the JSON model format end to end).
  auto cfg = bench::BenchConfig("classification", seed);
  auto pretrained = core::UnitsPipeline::Create(cfg, 3);
  pretrained.status().CheckOk();
  (*pretrained)->Pretrain(train.values()).CheckOk();
  const std::string snapshot =
      "/tmp/units_partial_label_" + std::to_string(seed) + ".json";
  (*pretrained)->SaveJson(snapshot).CheckOk();

  for (const double fraction : {0.05, 0.10, 0.25, 1.0}) {
    Rng split_rng(seed * 91 + static_cast<uint64_t>(fraction * 1000));
    data::TimeSeriesDataset labeled =
        fraction < 1.0
            ? train.PartialLabelSplit(fraction, &split_rng).first
            : train;
    const std::string exp =
        "fig2a_partial_seed" + std::to_string(seed) + "_frac" +
        std::to_string(static_cast<int>(fraction * 100));

    auto units_copy = core::UnitsPipeline::LoadJson(snapshot);
    units_copy.status().CheckOk();
    (*units_copy)->FineTune(labeled).CheckOk();
    auto units_pred = (*units_copy)->Predict(test.values());
    bench::PrintRow(exp, "partial_labeling", "units", "accuracy",
                    metrics::Accuracy(test.labels(), units_pred->labels));
    bench::PrintRow(exp, "partial_labeling", "units", "num_labels",
                    static_cast<double>(labeled.num_samples()));

    auto scratch = core::MakeScratchBaseline(cfg, 3, 1);
    scratch.status().CheckOk();
    (*scratch)->FineTune(labeled).CheckOk();
    auto scratch_pred = (*scratch)->Predict(test.values());
    bench::PrintRow(exp, "partial_labeling", "scratch", "accuracy",
                    metrics::Accuracy(test.labels(), scratch_pred->labels));
  }
}

}  // namespace
}  // namespace units

int main() {
  units::bench::BenchInit();
  units::bench::PrintHeader(
      "Fig. 2a / partial labeling: label-fraction sweep, UniTS (pre-trained "
      "once on unlabeled data) vs scratch on the labeled subset");
  units::RunSeed(7);
  return 0;
}
