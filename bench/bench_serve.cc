// Serving-runtime benchmark: closed-loop clients drive the micro-batcher
// in process, sweeping max_batch_size to show the batching throughput /
// latency trade-off. Writes a machine-readable BENCH_serve.json (qps,
// p50/p99 latency, mean executed batch size per setting) so subsequent
// PRs can track the serving perf trajectory.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "json/json.h"
#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/serve_stats.h"
#include "tensor/tensor_ops.h"

namespace units::bench {
namespace {

constexpr int kClients = 8;
constexpr int kRequestsPerClient = 60;

struct SweepPoint {
  int64_t max_batch_size = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch_size = 0.0;
};

SweepPoint RunClosedLoop(serve::ModelRegistry* registry, const Tensor& row,
                         int64_t max_batch_size) {
  serve::ServeStats stats;
  serve::MicroBatcher::Options options;
  options.max_batch_size = max_batch_size;
  options.max_delay_ms = 1.0;
  serve::MicroBatcher batcher(registry, options, &stats);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        auto result = batcher.Submit("model", row).get();
        if (!result.ok()) {
          std::fprintf(stderr, "request failed: %s\n",
                       result.status().ToString().c_str());
          std::abort();
        }
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  const auto snapshot = stats.Snapshot("model");
  SweepPoint point;
  point.max_batch_size = max_batch_size;
  point.qps = static_cast<double>(kClients * kRequestsPerClient) / seconds;
  point.p50_ms = snapshot.p50_ms;
  point.p99_ms = snapshot.p99_ms;
  point.mean_batch_size = snapshot.mean_batch_size;
  return point;
}

int Main() {
  BenchInit();
  PrintHeader("serve: micro-batch sweep, closed-loop clients");

  // One resident classification model at bench scale; forward cost is a
  // few ms so batching has real work to amortize.
  data::ClassificationOpts data_opts = BenchClassOpts(3);
  data_opts.num_samples = 64;
  const auto dataset = data::MakeClassificationDataset(data_opts);
  auto cfg = BenchConfig("classification", 3);
  cfg.pretrain_params.SetInt("epochs", 2);
  cfg.finetune_params.SetInt("epochs", 4);
  auto pipeline = core::UnitsPipeline::Create(cfg, dataset.num_channels());
  if (!pipeline.ok() || !(*pipeline)->FineTune(dataset).ok()) {
    std::fprintf(stderr, "failed to fit the bench model\n");
    return 1;
  }
  serve::ModelRegistry registry;
  if (!registry.Add("model", std::move(*pipeline)).ok()) {
    std::fprintf(stderr, "failed to register the bench model\n");
    return 1;
  }
  const Tensor row = ops::Slice(dataset.values(), 0, 0, 1);

  json::JsonValue sweep = json::JsonValue::Array();
  for (const int64_t max_batch : {1, 4, 16, 64}) {
    const SweepPoint point = RunClosedLoop(&registry, row, max_batch);
    PrintRow("serve", "classification",
             "batch_" + std::to_string(max_batch), "qps", point.qps);
    PrintRow("serve", "classification",
             "batch_" + std::to_string(max_batch), "p50_ms", point.p50_ms);
    PrintRow("serve", "classification",
             "batch_" + std::to_string(max_batch), "p99_ms", point.p99_ms);
    PrintRow("serve", "classification",
             "batch_" + std::to_string(max_batch), "mean_batch",
             point.mean_batch_size);
    json::JsonValue entry = json::JsonValue::Object();
    entry.Set("max_batch_size", json::JsonValue::Int(point.max_batch_size));
    entry.Set("qps", json::JsonValue::Number(point.qps));
    entry.Set("p50_ms", json::JsonValue::Number(point.p50_ms));
    entry.Set("p99_ms", json::JsonValue::Number(point.p99_ms));
    entry.Set("mean_batch_size",
              json::JsonValue::Number(point.mean_batch_size));
    sweep.Append(std::move(entry));
  }

  json::JsonValue doc = json::JsonValue::Object();
  doc.Set("bench", json::JsonValue::String("serve"));
  doc.Set("clients", json::JsonValue::Int(kClients));
  doc.Set("requests_per_client", json::JsonValue::Int(kRequestsPerClient));
  doc.Set("max_delay_ms", json::JsonValue::Number(1.0));
  doc.Set("sweep", std::move(sweep));
  std::ofstream out("BENCH_serve.json");
  out << doc.Dump(2) << "\n";
  std::printf("wrote BENCH_serve.json\n");
  return 0;
}

}  // namespace
}  // namespace units::bench

int main() { return units::bench::Main(); }
