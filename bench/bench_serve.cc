// Serving-runtime benchmark, four parts:
//  1. closed-loop clients drive the micro-batcher in process, sweeping
//     max_batch_size to show the batching throughput / latency trade-off;
//  2. the same workload through the TCP transport (SocketServer on
//     loopback), sweeping the client count, with client-observed
//     latencies and the shed rate under a deliberately small admission
//     window;
//  3. streaming sessions over the TCP transport — each client opens a
//     stream, feeds points in fixed-size chunks, and waits for every
//     feed's reply (closed loop), sweeping sessions x chunk size to show
//     assembled-window throughput and per-feed tail latency.
//  4. the router tier — an in-process Router spawns real units_serve
//     worker processes, eight models are spread over the ring, and
//     closed-loop clients sweep workers x clients to show how sharding
//     scales the same workload across processes.
// Writes a machine-readable BENCH_serve.json so subsequent PRs can track
// the serving perf trajectory.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "json/json.h"
#include "router/router.h"
#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/serve_stats.h"
#include "serve/socket_server.h"
#include "tensor/tensor_ops.h"

namespace units::bench {
namespace {

constexpr int kClients = 8;
constexpr int kRequestsPerClient = 60;

struct SweepPoint {
  int64_t max_batch_size = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch_size = 0.0;
};

SweepPoint RunClosedLoop(serve::ModelRegistry* registry, const Tensor& row,
                         int64_t max_batch_size) {
  serve::ServeStats stats;
  serve::MicroBatcher::Options options;
  options.max_batch_size = max_batch_size;
  options.max_delay_ms = 1.0;
  serve::MicroBatcher batcher(registry, options, &stats);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        auto result = batcher.Submit("model", row).get();
        if (!result.ok()) {
          std::fprintf(stderr, "request failed: %s\n",
                       result.status().ToString().c_str());
          std::abort();
        }
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  const auto snapshot = stats.Snapshot("model");
  SweepPoint point;
  point.max_batch_size = max_batch_size;
  point.qps = static_cast<double>(kClients * kRequestsPerClient) / seconds;
  point.p50_ms = snapshot.p50_ms;
  point.p99_ms = snapshot.p99_ms;
  point.mean_batch_size = snapshot.mean_batch_size;
  return point;
}

/// One NDJSON predict request line for the resident bench model.
std::string PredictLine(const Tensor& row, const std::string& model = "model") {
  const int64_t channels = row.dim(1);
  const int64_t length = row.dim(2);
  std::ostringstream os;
  os << "{\"op\": \"predict\", \"model\": \"" << model << "\", \"values\": [";
  for (int64_t d = 0; d < channels; ++d) {
    os << (d == 0 ? "[" : ", [");
    for (int64_t t = 0; t < length; ++t) {
      os << (t == 0 ? "" : ", ") << row[d * length + t];
    }
    os << "]";
  }
  os << "]}";
  return os.str();
}

struct SocketSweepPoint {
  int clients = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double shed_rate = 0.0;
};

/// Nearest-rank quantile over client-observed latencies.
double Quantile(std::vector<double>* values, double q) {
  if (values->empty()) {
    return 0.0;
  }
  std::sort(values->begin(), values->end());
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(values->size())));
  return (*values)[std::min(values->size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// Closed-loop TCP clients against an in-process SocketServer. Admission
/// is capped below the largest client count so the sweep also shows shed
/// behaviour under overload.
SocketSweepPoint RunSocketClosedLoop(serve::ModelRegistry* registry,
                                     const Tensor& row, int num_clients) {
  serve::SocketServer::Options options;
  options.port = 0;  // ephemeral
  options.batcher.max_batch_size = 16;
  options.batcher.max_delay_ms = 1.0;
  options.admission.max_queue = 8;
  serve::SocketServer server(registry, options);
  const Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "socket bench: %s\n", status.ToString().c_str());
    std::abort();
  }
  const int port = server.bound_port();
  std::thread loop([&] { server.Run(); });

  const std::string request = PredictLine(row) + "\n";
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(num_clients));
  std::vector<int64_t> shed(static_cast<size_t>(num_clients), 0);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<uint16_t>(port));
      ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0) {
        std::fprintf(stderr, "socket bench: connect failed\n");
        std::abort();
      }
      std::string rbuf;
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const auto sent = std::chrono::steady_clock::now();
        if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) < 0) {
          std::fprintf(stderr, "socket bench: send failed\n");
          std::abort();
        }
        size_t pos;
        while ((pos = rbuf.find('\n')) == std::string::npos) {
          char buf[4096];
          const ssize_t n = ::read(fd, buf, sizeof(buf));
          if (n <= 0) {
            std::fprintf(stderr, "socket bench: connection lost\n");
            std::abort();
          }
          rbuf.append(buf, static_cast<size_t>(n));
        }
        const std::string line = rbuf.substr(0, pos);
        rbuf.erase(0, pos + 1);
        latencies[static_cast<size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - sent)
                .count());
        if (line.find("\"ok\":true") == std::string::npos) {
          if (line.find("overloaded") == std::string::npos) {
            std::fprintf(stderr, "socket bench: %s\n", line.c_str());
            std::abort();
          }
          ++shed[static_cast<size_t>(c)];
        }
      }
      ::close(fd);
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  server.Shutdown();
  loop.join();

  std::vector<double> all;
  int64_t total_shed = 0;
  for (int c = 0; c < num_clients; ++c) {
    all.insert(all.end(), latencies[static_cast<size_t>(c)].begin(),
               latencies[static_cast<size_t>(c)].end());
    total_shed += shed[static_cast<size_t>(c)];
  }
  const int64_t total = static_cast<int64_t>(num_clients) *
                        kRequestsPerClient;
  SocketSweepPoint point;
  point.clients = num_clients;
  point.qps = static_cast<double>(total) / seconds;
  point.p50_ms = Quantile(&all, 0.50);
  point.p99_ms = Quantile(&all, 0.99);
  point.shed_rate = static_cast<double>(total_shed) /
                    static_cast<double>(total);
  return point;
}

constexpr int kWindowsPerStream = 8;

struct StreamSweepPoint {
  int sessions = 0;
  int64_t chunk = 0;
  double windows_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "stream bench: connect failed\n");
    std::abort();
  }
  return fd;
}

/// Reads one newline-terminated response; aborts on a lost connection.
std::string ReadResponseLine(int fd, std::string* rbuf) {
  size_t pos;
  while ((pos = rbuf->find('\n')) == std::string::npos) {
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      std::fprintf(stderr, "stream bench: connection lost\n");
      std::abort();
    }
    rbuf->append(buf, static_cast<size_t>(n));
  }
  std::string line = rbuf->substr(0, pos);
  rbuf->erase(0, pos + 1);
  return line;
}

void SendAll(int fd, const std::string& bytes) {
  if (::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(bytes.size())) {
    std::fprintf(stderr, "stream bench: send failed\n");
    std::abort();
  }
}

/// One stream_feed line carrying `count` points per channel, tiling the
/// bench row so successive chunks continue the series.
std::string FeedChunkLine(const Tensor& row, int64_t offset, int64_t count) {
  const int64_t channels = row.dim(1);
  const int64_t length = row.dim(2);
  std::ostringstream os;
  os << "{\"op\": \"stream_feed\", \"stream\": 0, \"values\": [";
  for (int64_t d = 0; d < channels; ++d) {
    os << (d == 0 ? "[" : ", [");
    for (int64_t j = 0; j < count; ++j) {
      os << (j == 0 ? "" : ", ") << row[d * length + (offset + j) % length];
    }
    os << "]";
  }
  os << "]}\n";
  return os.str();
}

/// Closed-loop streaming clients: every client opens one stream sized to
/// the model window, feeds kWindowsPerStream windows' worth of points in
/// `chunk`-point pieces, and waits for each feed's reply before the next.
StreamSweepPoint RunStreamingClosedLoop(serve::ModelRegistry* registry,
                                        const Tensor& row, int num_sessions,
                                        int64_t chunk) {
  serve::SocketServer::Options options;
  options.port = 0;  // ephemeral
  options.batcher.max_batch_size = 16;
  options.batcher.max_delay_ms = 1.0;
  options.streaming.max_sessions = num_sessions;
  serve::SocketServer server(registry, options);
  const Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "stream bench: %s\n", status.ToString().c_str());
    std::abort();
  }
  const int port = server.bound_port();
  std::thread loop([&] { server.Run(); });

  const int64_t window = row.dim(2);
  const int64_t total_points = kWindowsPerStream * window;
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(num_sessions));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < num_sessions; ++c) {
    clients.emplace_back([&, c] {
      const int fd = ConnectLoopback(port);
      std::string rbuf;
      std::ostringstream open;
      open << "{\"op\": \"stream_open\", \"model\": \"model\", \"window\": "
           << window << ", \"stride\": " << window << "}\n";
      SendAll(fd, open.str());
      if (ReadResponseLine(fd, &rbuf).find("\"ok\":true") ==
          std::string::npos) {
        std::fprintf(stderr, "stream bench: open rejected\n");
        std::abort();
      }
      for (int64_t offset = 0; offset < total_points; offset += chunk) {
        const std::string line =
            FeedChunkLine(row, offset, std::min(chunk, total_points - offset));
        const auto sent = std::chrono::steady_clock::now();
        SendAll(fd, line);
        const std::string resp = ReadResponseLine(fd, &rbuf);
        latencies[static_cast<size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - sent)
                .count());
        if (resp.find("\"ok\":true") == std::string::npos) {
          std::fprintf(stderr, "stream bench: %s\n", resp.c_str());
          std::abort();
        }
      }
      SendAll(fd, "{\"op\": \"stream_close\", \"stream\": 0}\n");
      ReadResponseLine(fd, &rbuf);
      ::close(fd);
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  server.Shutdown();
  loop.join();

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  StreamSweepPoint point;
  point.sessions = num_sessions;
  point.chunk = chunk;
  point.windows_per_s =
      static_cast<double>(num_sessions) * kWindowsPerStream / seconds;
  point.p50_ms = Quantile(&all, 0.50);
  point.p99_ms = Quantile(&all, 0.99);
  return point;
}

constexpr int kRouterModels = 8;

struct RouterSweepPoint {
  int workers = 0;
  int clients = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double shed_rate = 0.0;
};

/// units_serve next to this binary's sibling tools/ directory, the same
/// resolution the router tests use; UNITS_SERVE_BIN overrides.
std::string WorkerBinaryPath() {
  if (const char* env = std::getenv("UNITS_SERVE_BIN")) {
    return env;
  }
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    return "units_serve";
  }
  buf[n] = '\0';
  const std::string self(buf);
  const size_t slash = self.rfind('/');
  return self.substr(0, slash) + "/../tools/units_serve";
}

/// Closed-loop TCP clients against a router fronting `workers` spawned
/// units_serve processes. kRouterModels copies of the bench model are
/// loaded through the router so the ring has names to spread; client c
/// rotates through them, exercising every shard.
RouterSweepPoint RunRouterClosedLoop(const std::string& model_path,
                                     const Tensor& row, int workers,
                                     int num_clients) {
  router::Router::Options options;
  options.port = 0;  // ephemeral
  options.num_shards = workers;
  options.worker_binary = WorkerBinaryPath();
  options.worker_args = {"--max-delay-ms", "1", "--max-queue", "8"};
  router::Router server(options);
  const Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "router bench: %s\n", status.ToString().c_str());
    std::abort();
  }
  const int port = server.bound_port();
  std::thread loop([&] { server.Run(); });

  // Wait for every worker to join the ring, then place the models.
  {
    const int fd = ConnectLoopback(port);
    std::string rbuf;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (true) {
      SendAll(fd, "{\"op\": \"stats\"}\n");
      const auto parsed = json::Parse(ReadResponseLine(fd, &rbuf));
      if (parsed.ok() && parsed->is_object() && parsed->Contains("router") &&
          parsed->at("router").at("healthy_shards").AsInt() == workers) {
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        std::fprintf(stderr, "router bench: workers never became healthy\n");
        std::abort();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    for (int m = 0; m < kRouterModels; ++m) {
      SendAll(fd, "{\"op\": \"load\", \"model\": \"m" + std::to_string(m) +
                      "\", \"path\": \"" + model_path + "\"}\n");
      const std::string line = ReadResponseLine(fd, &rbuf);
      if (line.find("\"ok\":true") == std::string::npos) {
        std::fprintf(stderr, "router bench: load failed: %s\n", line.c_str());
        std::abort();
      }
    }
    ::close(fd);
  }

  std::vector<std::string> requests;
  requests.reserve(kRouterModels);
  for (int m = 0; m < kRouterModels; ++m) {
    requests.push_back(PredictLine(row, "m" + std::to_string(m)) + "\n");
  }
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(num_clients));
  std::vector<int64_t> shed(static_cast<size_t>(num_clients), 0);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = ConnectLoopback(port);
      std::string rbuf;
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const std::string& request =
            requests[static_cast<size_t>((c + r) % kRouterModels)];
        const auto sent = std::chrono::steady_clock::now();
        SendAll(fd, request);
        const std::string line = ReadResponseLine(fd, &rbuf);
        latencies[static_cast<size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - sent)
                .count());
        if (line.find("\"ok\":true") == std::string::npos) {
          if (line.find("overloaded") == std::string::npos) {
            std::fprintf(stderr, "router bench: %s\n", line.c_str());
            std::abort();
          }
          ++shed[static_cast<size_t>(c)];
        }
      }
      ::close(fd);
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  server.RequestDrain();
  loop.join();

  std::vector<double> all;
  int64_t total_shed = 0;
  for (int c = 0; c < num_clients; ++c) {
    all.insert(all.end(), latencies[static_cast<size_t>(c)].begin(),
               latencies[static_cast<size_t>(c)].end());
    total_shed += shed[static_cast<size_t>(c)];
  }
  const int64_t total = static_cast<int64_t>(num_clients) *
                        kRequestsPerClient;
  RouterSweepPoint point;
  point.workers = workers;
  point.clients = num_clients;
  point.qps = static_cast<double>(total) / seconds;
  point.p50_ms = Quantile(&all, 0.50);
  point.p99_ms = Quantile(&all, 0.99);
  point.shed_rate = static_cast<double>(total_shed) /
                    static_cast<double>(total);
  return point;
}

int Main() {
  BenchInit();
  PrintHeader("serve: micro-batch sweep, closed-loop clients");

  // One resident classification model at bench scale; forward cost is a
  // few ms so batching has real work to amortize.
  data::ClassificationOpts data_opts = BenchClassOpts(3);
  data_opts.num_samples = 64;
  const auto dataset = data::MakeClassificationDataset(data_opts);
  auto cfg = BenchConfig("classification", 3);
  cfg.pretrain_params.SetInt("epochs", 2);
  cfg.finetune_params.SetInt("epochs", 4);
  auto pipeline = core::UnitsPipeline::Create(cfg, dataset.num_channels());
  if (!pipeline.ok() || !(*pipeline)->FineTune(dataset).ok()) {
    std::fprintf(stderr, "failed to fit the bench model\n");
    return 1;
  }
  // The router sweep spawns worker processes that load the model from
  // disk, so persist it before the registry takes ownership.
  const std::string model_path =
      "/tmp/units_bench_serve_model_" + std::to_string(::getpid()) + ".json";
  if (!(*pipeline)->SaveJson(model_path).ok()) {
    std::fprintf(stderr, "failed to save the bench model\n");
    return 1;
  }
  serve::ModelRegistry registry;
  if (!registry.Add("model", std::move(*pipeline)).ok()) {
    std::fprintf(stderr, "failed to register the bench model\n");
    return 1;
  }
  const Tensor row = ops::Slice(dataset.values(), 0, 0, 1);

  json::JsonValue sweep = json::JsonValue::Array();
  for (const int64_t max_batch : {1, 4, 16, 64}) {
    const SweepPoint point = RunClosedLoop(&registry, row, max_batch);
    PrintRow("serve", "classification",
             "batch_" + std::to_string(max_batch), "qps", point.qps);
    PrintRow("serve", "classification",
             "batch_" + std::to_string(max_batch), "p50_ms", point.p50_ms);
    PrintRow("serve", "classification",
             "batch_" + std::to_string(max_batch), "p99_ms", point.p99_ms);
    PrintRow("serve", "classification",
             "batch_" + std::to_string(max_batch), "mean_batch",
             point.mean_batch_size);
    json::JsonValue entry = json::JsonValue::Object();
    entry.Set("max_batch_size", json::JsonValue::Int(point.max_batch_size));
    entry.Set("qps", json::JsonValue::Number(point.qps));
    entry.Set("p50_ms", json::JsonValue::Number(point.p50_ms));
    entry.Set("p99_ms", json::JsonValue::Number(point.p99_ms));
    entry.Set("mean_batch_size",
              json::JsonValue::Number(point.mean_batch_size));
    sweep.Append(std::move(entry));
  }

  PrintHeader("serve: socket transport, closed-loop client sweep");
  json::JsonValue socket_sweep = json::JsonValue::Array();
  for (const int num_clients : {1, 4, 16}) {
    const SocketSweepPoint point =
        RunSocketClosedLoop(&registry, row, num_clients);
    const std::string label = "clients_" + std::to_string(num_clients);
    PrintRow("serve_socket", "classification", label, "qps", point.qps);
    PrintRow("serve_socket", "classification", label, "p50_ms",
             point.p50_ms);
    PrintRow("serve_socket", "classification", label, "p99_ms",
             point.p99_ms);
    PrintRow("serve_socket", "classification", label, "shed_rate",
             point.shed_rate);
    json::JsonValue entry = json::JsonValue::Object();
    entry.Set("clients", json::JsonValue::Int(point.clients));
    entry.Set("qps", json::JsonValue::Number(point.qps));
    entry.Set("p50_ms", json::JsonValue::Number(point.p50_ms));
    entry.Set("p99_ms", json::JsonValue::Number(point.p99_ms));
    entry.Set("shed_rate", json::JsonValue::Number(point.shed_rate));
    socket_sweep.Append(std::move(entry));
  }

  PrintHeader("serve: streaming sessions, closed-loop feed sweep");
  json::JsonValue streaming_sweep = json::JsonValue::Array();
  for (const int num_sessions : {2, 8}) {
    for (const int64_t chunk : {int64_t{8}, int64_t{32}}) {
      const StreamSweepPoint point =
          RunStreamingClosedLoop(&registry, row, num_sessions, chunk);
      const std::string label = "sessions_" + std::to_string(num_sessions) +
                                "_chunk_" + std::to_string(chunk);
      PrintRow("serve_stream", "classification", label, "windows_per_s",
               point.windows_per_s);
      PrintRow("serve_stream", "classification", label, "p50_ms",
               point.p50_ms);
      PrintRow("serve_stream", "classification", label, "p99_ms",
               point.p99_ms);
      json::JsonValue entry = json::JsonValue::Object();
      entry.Set("sessions", json::JsonValue::Int(point.sessions));
      entry.Set("chunk", json::JsonValue::Int(point.chunk));
      entry.Set("windows_per_stream",
                json::JsonValue::Int(kWindowsPerStream));
      entry.Set("windows_per_s", json::JsonValue::Number(point.windows_per_s));
      entry.Set("p50_ms", json::JsonValue::Number(point.p50_ms));
      entry.Set("p99_ms", json::JsonValue::Number(point.p99_ms));
      streaming_sweep.Append(std::move(entry));
    }
  }

  PrintHeader("serve: router tier, workers x clients sweep");
  json::JsonValue router_sweep = json::JsonValue::Array();
  for (const int workers : {1, 2, 4}) {
    for (const int num_clients : {4, 16}) {
      const RouterSweepPoint point =
          RunRouterClosedLoop(model_path, row, workers, num_clients);
      const std::string label = "workers_" + std::to_string(workers) +
                                "_clients_" + std::to_string(num_clients);
      PrintRow("serve_router", "classification", label, "qps", point.qps);
      PrintRow("serve_router", "classification", label, "p50_ms",
               point.p50_ms);
      PrintRow("serve_router", "classification", label, "p99_ms",
               point.p99_ms);
      PrintRow("serve_router", "classification", label, "shed_rate",
               point.shed_rate);
      json::JsonValue entry = json::JsonValue::Object();
      entry.Set("workers", json::JsonValue::Int(point.workers));
      entry.Set("clients", json::JsonValue::Int(point.clients));
      entry.Set("qps", json::JsonValue::Number(point.qps));
      entry.Set("p50_ms", json::JsonValue::Number(point.p50_ms));
      entry.Set("p99_ms", json::JsonValue::Number(point.p99_ms));
      entry.Set("shed_rate", json::JsonValue::Number(point.shed_rate));
      router_sweep.Append(std::move(entry));
    }
  }
  ::unlink(model_path.c_str());

  json::JsonValue doc = json::JsonValue::Object();
  doc.Set("bench", json::JsonValue::String("serve"));
  doc.Set("clients", json::JsonValue::Int(kClients));
  doc.Set("requests_per_client", json::JsonValue::Int(kRequestsPerClient));
  doc.Set("max_delay_ms", json::JsonValue::Number(1.0));
  doc.Set("sweep", std::move(sweep));
  doc.Set("socket_max_queue", json::JsonValue::Int(8));
  doc.Set("socket_sweep", std::move(socket_sweep));
  doc.Set("streaming_sweep", std::move(streaming_sweep));
  doc.Set("router_models", json::JsonValue::Int(kRouterModels));
  doc.Set("router_sweep", std::move(router_sweep));
  std::ofstream out("BENCH_serve.json");
  out << doc.Dump(2) << "\n";
  std::printf("wrote BENCH_serve.json\n");
  return 0;
}

}  // namespace
}  // namespace units::bench

int main() { return units::bench::Main(); }
