// Server-monitoring anomaly detection (reconstruction-based, Section 3.3):
// pre-train + fit on clean telemetry windows, score a live stream with
// injected incidents (spikes, level shifts, noise bursts, flatlines), and
// report detections at the calibrated threshold tau.

#include <cstdio>

#include "base/logging.h"
#include "core/pipeline.h"
#include "core/tasks/tasks.h"
#include "data/synthetic.h"
#include "data/window.h"
#include "metrics/metrics.h"

int main() {
  using namespace units;
  SetLogLevel(LogLevel::kWarning);

  // "Historical" clean telemetry for training, plus a monitored stream
  // with incidents.
  data::AnomalyOpts opts;
  opts.num_channels = 2;  // e.g. CPU and memory
  opts.total_length = 96 * 30;
  opts.num_anomalies = 16;
  Tensor history = data::MakeCleanSeries(opts);
  auto incident_stream = data::MakeAnomalySeries(opts);

  const int64_t window = 96;
  data::TimeSeriesDataset train(data::SlidingWindows(history, window, 48));

  core::UnitsPipeline::Config config;
  config.templates = {"masked_autoregression"};  // reconstruction-friendly
  config.task = "anomaly_detection";
  config.mode = core::ConfigMode::kManual;
  config.pretrain_params.SetInt("epochs", 12);
  config.finetune_params.SetInt("epochs", 12);
  config.finetune_params.SetDouble("anomaly_quantile", 0.99);

  auto pipeline = core::UnitsPipeline::Create(config, 2);
  pipeline.status().CheckOk();
  (*pipeline)->Pretrain(train.values()).CheckOk();
  (*pipeline)->FineTune(train).CheckOk();

  auto* task = dynamic_cast<core::AnomalyDetectionTask*>((*pipeline)->task());
  std::printf("calibrated threshold tau = %.4f\n", task->threshold());

  // Score the monitored stream in disjoint windows.
  Tensor stream_windows =
      data::SlidingWindows(incident_stream.series, window, window);
  Tensor truth_windows =
      data::SlidingLabelWindows(incident_stream.labels, window, window);
  auto result = (*pipeline)->Predict(stream_windows);
  result.status().CheckOk();

  // Point-adjusted F1 against the injected incident labels.
  std::vector<int> truth;
  std::vector<int> pred;
  for (int64_t i = 0; i < truth_windows.numel(); ++i) {
    truth.push_back(truth_windows[i] > 0.5f ? 1 : 0);
    pred.push_back(static_cast<int>(result->labels[static_cast<size_t>(i)]));
  }
  const auto adjusted = metrics::PointAdjust(truth, pred);
  const auto score = metrics::PointwiseF1(truth, adjusted);
  std::printf("detected incidents: precision %.3f recall %.3f F1 %.3f\n",
              score.precision, score.recall, score.f1);

  // Print the three highest-scoring timestamps as an "alert" list.
  std::printf("top alerts (window, step, score):\n");
  for (int rank = 0; rank < 3; ++rank) {
    float best = -1.0f;
    int64_t best_i = 0;
    for (int64_t i = 0; i < result->scores.numel(); ++i) {
      if (result->scores[i] > best) {
        best = result->scores[i];
        best_i = i;
      }
    }
    std::printf("  window %lld step %lld score %.3f\n",
                static_cast<long long>(best_i / window),
                static_cast<long long>(best_i % window), best);
    result->scores[best_i] = -1.0f;  // pop for the next rank
  }
  return 0;
}
