// Human-action-recognition-style classification with multiple fused
// pre-training templates (the paper's headline use case): accelerometer-
// like 3-channel windows, few labels, several self-supervised encoders
// fused by concatenation.

#include <cstdio>

#include "base/logging.h"
#include "core/pipeline.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"

int main() {
  using namespace units;
  SetLogLevel(LogLevel::kWarning);

  // HAR-like data: 4 activities, 3 "sensor axes", strong per-subject
  // nuisance variation (random phase, amplitude, mild time warp).
  data::ClassificationOpts opts;
  opts.num_samples = 240;
  opts.num_classes = 4;
  opts.num_channels = 3;
  opts.length = 96;
  opts.noise = 0.5f;
  opts.amp_jitter = 0.4f;
  opts.phase_jitter = 6.28f;
  opts.time_warp = 0.2f;
  auto dataset = data::MakeClassificationDataset(opts);
  Rng rng(2);
  auto [train, test] = dataset.TrainTestSplit(0.5, &rng);

  // Fuse two complementary contrastive views of the data: whole-series
  // (global shape) and sub-sequence (local patterns). The fusion module
  // relieves the user from picking the "right" SSL method (Section 3.2).
  core::UnitsPipeline::Config config;
  config.templates = {"whole_series_contrastive", "subsequence_contrastive"};
  config.task = "classification";
  config.mode = core::ConfigMode::kManual;
  config.pretrain_params.SetInt("epochs", 20);
  config.finetune_params.SetInt("epochs", 20);
  config.finetune_params.SetDouble("encoder_lr_scale", 1.0);

  auto pipeline = core::UnitsPipeline::Create(config, 3);
  pipeline.status().CheckOk();

  std::printf("pre-training %zu templates on %lld unlabeled windows...\n",
              config.templates.size(),
              static_cast<long long>(train.num_samples()));
  (*pipeline)->Pretrain(train.values()).CheckOk();

  // Show the per-template loss curves the demo GUI would plot.
  const auto curves = (*pipeline)->PretrainLossCurves();
  for (size_t m = 0; m < curves.size(); ++m) {
    std::printf("template %zu loss: first=%.3f last=%.3f\n", m,
                curves[m].front(), curves[m].back());
  }

  // Fine-tune with only 10% of the labels.
  auto [labeled, unlabeled] = train.PartialLabelSplit(0.1, &rng);
  std::printf("fine-tuning on %lld labeled windows...\n",
              static_cast<long long>(labeled.num_samples()));
  (*pipeline)->FineTune(labeled).CheckOk();

  auto prediction = (*pipeline)->Predict(test.values());
  prediction.status().CheckOk();
  const auto report = metrics::ClassifierReport(
      test.labels(), prediction->labels, dataset.NumClasses());
  std::printf("test accuracy: %.3f  macro-F1: %.3f\n", report.accuracy,
              report.macro_f1);
  for (size_t c = 0; c < report.f1.size(); ++c) {
    std::printf("  class %zu: precision %.2f recall %.2f f1 %.2f\n", c,
                report.precision[c], report.recall[c], report.f1[c]);
  }
  return 0;
}
