// Quickstart: the whole UniTS workflow in ~40 lines.
//
//   1. Load (here: generate) a time-series dataset X in R^{N x D x T}.
//   2. Pre-train self-supervised encoders on the unlabeled data.
//   3. Fine-tune a classification head on a small labeled subset.
//   4. Predict, evaluate, and save the fitted model as JSON.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"

int main() {
  using namespace units;

  // A labeled dataset standing in for your CSV data (see data/csv.h for
  // loading real files).
  data::ClassificationOpts data_opts;
  data_opts.num_samples = 120;
  data_opts.num_classes = 3;
  data_opts.num_channels = 2;
  data_opts.length = 64;
  auto dataset = data::MakeClassificationDataset(data_opts);
  Rng rng(1);
  auto [train, test] = dataset.TrainTestSplit(0.6, &rng);
  std::printf("train: %s\n", train.Description().c_str());

  // Configure the pipeline: which self-supervised templates to pre-train,
  // how to fuse them, and which analysis task to run on top.
  core::UnitsPipeline::Config config;
  config.templates = {"whole_series_contrastive"};
  config.fusion = "concat";
  config.task = "classification";
  config.mode = core::ConfigMode::kManual;  // override a few defaults
  config.pretrain_params.SetInt("epochs", 15);
  config.finetune_params.SetInt("epochs", 15);

  auto pipeline = core::UnitsPipeline::Create(config, train.num_channels());
  if (!pipeline.ok()) {
    std::printf("error: %s\n", pipeline.status().ToString().c_str());
    return 1;
  }

  // Stage 1: self-supervised pre-training — labels are never used.
  (*pipeline)->Pretrain(train.values()).CheckOk();

  // Stage 2: fine-tune with 30% of the labels (partial-labeling setting).
  auto [labeled, unlabeled] = train.PartialLabelSplit(0.3, &rng);
  (*pipeline)->FineTune(labeled).CheckOk();

  // Stage 3: inference + evaluation.
  auto prediction = (*pipeline)->Predict(test.values());
  prediction.status().CheckOk();
  std::printf("accuracy with %lld labels: %.3f\n",
              static_cast<long long>(labeled.num_samples()),
              metrics::Accuracy(test.labels(), prediction->labels));

  // The fitted model round-trips through a standard JSON file.
  (*pipeline)->SaveJson("/tmp/units_quickstart_model.json").CheckOk();
  std::printf("model saved to /tmp/units_quickstart_model.json\n");
  return 0;
}
