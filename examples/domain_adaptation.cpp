// Domain shift (Figure 2a, right): a fault-detection-style model is
// pre-trained on data from one machine installation (source domain) and
// adapted to a second installation (target domain) whose sensors differ in
// gain, drift, and noise — using only a handful of labeled target windows.

#include <cstdio>

#include "core/baselines.h"
#include "base/logging.h"
#include "core/pipeline.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"

int main() {
  using namespace units;
  SetLogLevel(LogLevel::kWarning);

  data::ClassificationOpts opts;
  opts.num_samples = 240;
  opts.num_classes = 3;  // healthy / bearing fault / imbalance
  opts.num_channels = 3;
  opts.length = 96;
  opts.noise = 0.4f;
  opts.phase_jitter = 6.28f;

  data::DomainShift shift;
  shift.amp_scale = 1.6f;     // different sensor gain
  shift.freq_scale = 1.15f;   // different rotation speed
  shift.drift_amp = 0.8f;     // baseline drift
  shift.noise_mult = 1.8f;    // noisier installation
  auto [source, target] = data::MakeDomainShiftPair(opts, shift);

  Rng rng(3);
  auto [target_pool, target_test] = target.TrainTestSplit(0.5, &rng);
  auto [target_train, ignored] = target_pool.PartialLabelSplit(0.25, &rng);
  std::printf("source windows: %lld, labeled target windows: %lld\n",
              static_cast<long long>(source.num_samples()),
              static_cast<long long>(target_train.num_samples()));

  core::UnitsPipeline::Config config;
  config.templates = {"whole_series_contrastive", "subsequence_contrastive"};
  config.task = "classification";
  config.mode = core::ConfigMode::kManual;
  config.pretrain_params.SetInt("epochs", 30);
  config.finetune_params.SetInt("epochs", 20);
  config.finetune_params.SetDouble("encoder_lr_scale", 1.0);

  // UniTS: pre-train on the *source* domain only, fine-tune on the small
  // target set — the transferable-representation story.
  auto pipeline = core::UnitsPipeline::Create(config, 3);
  pipeline.status().CheckOk();
  (*pipeline)->Pretrain(source.values()).CheckOk();
  (*pipeline)->FineTune(target_train).CheckOk();
  auto units_pred = (*pipeline)->Predict(target_test.values());
  units_pred.status().CheckOk();
  std::printf("UniTS (source pre-train -> target fine-tune): %.3f\n",
              metrics::Accuracy(target_test.labels(), units_pred->labels));

  // Baseline: train from scratch on the same small target set.
  auto scratch = core::MakeScratchBaseline(config, 3, 1);
  scratch.status().CheckOk();
  (*scratch)->FineTune(target_train).CheckOk();
  auto scratch_pred = (*scratch)->Predict(target_test.values());
  std::printf("scratch (target only):                        %.3f\n",
              metrics::Accuracy(target_test.labels(), scratch_pred->labels));
  return 0;
}
