// Energy-load forecasting: pre-train on historical load curves, fine-tune
// a forecasting decoder for a 24-step horizon, compare against naive
// baselines, and export both the model and a forecast CSV.

#include <cstdio>

#include "core/baselines.h"
#include "base/logging.h"
#include "core/pipeline.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "tensor/tensor_ops.h"

int main() {
  using namespace units;
  SetLogLevel(LogLevel::kWarning);

  // Half-hourly-style load: daily + weekly seasonality, slight trend.
  data::ForecastSeriesOpts opts;
  opts.num_channels = 2;  // two zones
  opts.total_length = 2400;
  opts.daily_period = 48.0f;
  opts.weekly_period = 336.0f;
  Tensor series = data::MakeForecastSeries(opts);

  const int64_t input_len = 96;
  const int64_t horizon = 24;
  auto dataset = data::MakeForecastDataset(opts, input_len, horizon, 8);

  // Chronological split (no leakage from the future).
  const int64_t n = dataset.num_samples();
  std::vector<int64_t> train_idx;
  std::vector<int64_t> test_idx;
  for (int64_t i = 0; i < n; ++i) {
    (i < n * 7 / 10 ? train_idx : test_idx).push_back(i);
  }
  auto train = dataset.Subset(train_idx);
  auto test = dataset.Subset(test_idx);

  core::UnitsPipeline::Config config;
  config.templates = {"timestamp_contrastive"};
  config.task = "forecasting";
  config.mode = core::ConfigMode::kManual;
  config.pretrain_params.SetInt("epochs", 12);
  config.finetune_params.SetInt("epochs", 25);
  config.finetune_params.SetInt("head_hidden", 64);
  config.finetune_params.SetString("forecast_loss", "mse");

  auto pipeline = core::UnitsPipeline::Create(config, 2);
  pipeline.status().CheckOk();
  (*pipeline)->Pretrain(train.values()).CheckOk();
  (*pipeline)->FineTune(train).CheckOk();

  auto forecast = (*pipeline)->Predict(test.values());
  forecast.status().CheckOk();
  std::printf("UniTS           MSE %.4f  MAE %.4f\n",
              metrics::MeanSquaredError(test.targets(),
                                        forecast->predictions),
              metrics::MeanAbsoluteError(test.targets(),
                                         forecast->predictions));

  Tensor naive = core::NaiveForecast(test.values(), horizon);
  std::printf("naive           MSE %.4f\n",
              metrics::MeanSquaredError(test.targets(), naive));
  Tensor seasonal = core::SeasonalNaiveForecast(test.values(), horizon, 48);
  std::printf("seasonal naive  MSE %.4f\n",
              metrics::MeanSquaredError(test.targets(), seasonal));

  // Export the first test window's forecast next to the truth.
  Tensor first_pred = ops::Slice(forecast->predictions, 0, 0, 1)
                          .Reshape({2, horizon});
  data::SaveCsvSeries("/tmp/units_forecast.csv", first_pred,
                      {"zone_a", "zone_b"})
      .CheckOk();
  std::printf("first forecast written to /tmp/units_forecast.csv\n");

  (*pipeline)->SaveJson("/tmp/units_forecaster.json").CheckOk();
  std::printf("model written to /tmp/units_forecaster.json\n");
  (void)series;
  return 0;
}
