// Missing-value imputation with the denoising autoencoder of Section 3.3:
// train on complete sensor windows, then fill gaps in a corrupted stream
// and compare against zero-fill.

#include <cstdio>

#include "base/logging.h"
#include "core/pipeline.h"
#include "core/tasks/tasks.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "tensor/tensor_ops.h"

int main() {
  using namespace units;
  SetLogLevel(LogLevel::kWarning);

  data::ForecastSeriesOpts opts;
  opts.num_channels = 2;
  opts.total_length = 1600;
  auto dataset = data::MakeForecastDataset(opts, 96, 1, 16);
  Rng rng(4);
  auto [train, test] = dataset.TrainTestSplit(0.7, &rng);

  core::UnitsPipeline::Config config;
  config.templates = {"masked_autoregression"};  // a natural fit for gaps
  config.task = "imputation";
  config.mode = core::ConfigMode::kManual;
  config.pretrain_params.SetInt("epochs", 20);
  config.finetune_params.SetInt("epochs", 25);
  config.finetune_params.SetDouble("imputation_mask_ratio", 0.3);

  auto pipeline = core::UnitsPipeline::Create(config, 2);
  pipeline.status().CheckOk();
  (*pipeline)->Pretrain(train.values()).CheckOk();
  (*pipeline)->FineTune(train).CheckOk();

  // Corrupt the test stream: 25% missing in bursts (sensor dropouts).
  Tensor mask =
      data::MakeMissingMask(test.values().shape(), 0.25f, 5.0f, &rng);
  int64_t missing = 0;
  for (int64_t i = 0; i < mask.numel(); ++i) {
    missing += mask[i] == 0.0f ? 1 : 0;
  }
  std::printf("corrupted %lld of %lld values (%.1f%%)\n",
              static_cast<long long>(missing),
              static_cast<long long>(mask.numel()),
              100.0 * static_cast<double>(missing) /
                  static_cast<double>(mask.numel()));

  auto* task = dynamic_cast<core::ImputationTask*>((*pipeline)->task());
  auto imputed = task->Impute(pipeline->get(), test.values(), mask);
  imputed.status().CheckOk();

  const double units_rmse =
      metrics::MaskedRmse(test.values(), *imputed, mask);
  const double zero_rmse = metrics::MaskedRmse(
      test.values(), ops::Mul(test.values(), mask), mask);
  std::printf("masked RMSE — UniTS DAE: %.4f, zero-fill: %.4f\n", units_rmse,
              zero_rmse);
  std::printf("improvement over zero-fill: %.1f%%\n",
              100.0 * (1.0 - units_rmse / zero_rmse));
  return 0;
}
