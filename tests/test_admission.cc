// Deterministic overload tests for the admission layer: the capacity+1-th
// request is shed with the structured "overloaded" error, deadline-expired
// requests get timeout replies, the accepted/shed/timed-out counters in
// ServeStats match the submitted workload exactly, and a shutdown drain
// leaves zero pending futures. Determinism comes from parking requests in
// the batcher (max_batch_size larger than the workload plus a long
// max_delay_ms), so queue occupancy at every assertion point is exact.
// Built as its own executable so the ThreadSanitizer CI job can run it.

#include "serve/admission.h"

#include <chrono>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/serve_stats.h"
#include "serve_test_util.h"
#include "tensor/tensor_ops.h"

namespace units::serve {
namespace {

TEST(AdmissionControllerTest, AdmitsUpToCapacityThenSheds) {
  ServeStats stats;
  AdmissionController::Options options;
  options.max_queue = 3;
  AdmissionController admission(options, &stats);

  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(admission.TryAdmit().ok()) << "admit " << i;
  }
  EXPECT_EQ(admission.in_flight(), 3);

  const Status shed = admission.TryAdmit();
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.message(), "overloaded");
  EXPECT_EQ(admission.in_flight(), 3);

  admission.Release();
  EXPECT_EQ(admission.in_flight(), 2);
  EXPECT_TRUE(admission.TryAdmit().ok());  // freed slot is reusable

  const auto snapshot = stats.Admission();
  EXPECT_EQ(snapshot.accepted, 4);
  EXPECT_EQ(snapshot.shed, 1);
  EXPECT_EQ(snapshot.timed_out, 0);
}

TEST(AdmissionControllerTest, PlanBytesCapShedsAndReleasesExactly) {
  ServeStats stats;
  AdmissionController::Options options;
  options.max_queue = 100;  // slots are not the binding constraint here
  options.max_plan_bytes_in_flight = 100;
  AdmissionController admission(options, &stats);

  EXPECT_TRUE(admission.TryAdmit(60).ok());
  EXPECT_EQ(admission.plan_bytes_in_flight(), 60);

  // 60 + 60 would exceed the cap while something is in flight: shed.
  const Status shed = admission.TryAdmit(60);
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.message(), "overloaded");
  EXPECT_EQ(admission.plan_bytes_in_flight(), 60);

  // A request within the remaining budget still admits.
  EXPECT_TRUE(admission.TryAdmit(40).ok());
  EXPECT_EQ(admission.plan_bytes_in_flight(), 100);

  // Release returns exactly the recorded cost.
  admission.Release(60);
  EXPECT_EQ(admission.plan_bytes_in_flight(), 40);
  EXPECT_TRUE(admission.TryAdmit(60).ok());
  admission.Release(40);
  admission.Release(60);
  EXPECT_EQ(admission.plan_bytes_in_flight(), 0);
  EXPECT_EQ(admission.in_flight(), 0);

  // Progress guarantee: a lone request larger than the whole cap is
  // admitted when nothing else is in flight — it could never run
  // otherwise.
  EXPECT_TRUE(admission.TryAdmit(1000).ok());
  EXPECT_EQ(admission.plan_bytes_in_flight(), 1000);
  // ...but it does hold back everyone else until it resolves.
  EXPECT_FALSE(admission.TryAdmit(1).ok());
  admission.Release(1000);
  EXPECT_EQ(admission.plan_bytes_in_flight(), 0);
  EXPECT_TRUE(admission.TryAdmit(1).ok());

  // Zero-cost requests (no plan captured yet) never hit the cap.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(admission.TryAdmit(0).ok());
  }
}

TEST(AdmissionControllerTest, DeadlineFollowsTimeoutOption) {
  const auto now = std::chrono::steady_clock::now();

  AdmissionController no_deadline({.max_queue = 1, .request_timeout_ms = 0.0});
  EXPECT_FALSE(no_deadline.DeadlineFor(now).has_value());

  AdmissionController with_deadline(
      {.max_queue = 1, .request_timeout_ms = 50.0});
  const auto deadline = with_deadline.DeadlineFor(now);
  ASSERT_TRUE(deadline.has_value());
  EXPECT_EQ(*deadline - now, std::chrono::milliseconds(50));
}

TEST(AdmissionControllerTest, WorksWithoutStats) {
  AdmissionController admission({.max_queue = 1});
  EXPECT_TRUE(admission.TryAdmit().ok());
  EXPECT_EQ(admission.TryAdmit().code(), StatusCode::kResourceExhausted);
  admission.Release();
}

TEST(AdmissionDeathTest, RejectsInvalidOptions) {
  EXPECT_DEATH(AdmissionController({.max_queue = 0}), "CHECK failed");
  EXPECT_DEATH(AdmissionController({.max_queue = -5}), "CHECK failed");
  EXPECT_DEATH(
      AdmissionController({.max_queue = 1, .request_timeout_ms = -1.0}),
      "CHECK failed");
  EXPECT_DEATH(AdmissionController(
                   {.max_queue = 1,
                    .request_timeout_ms = std::numeric_limits<double>::quiet_NaN()}),
               "CHECK failed");
}

/// Batcher + admission end to end. Requests are parked by a never-filling
/// batch size plus a long flush delay, so the admission window's occupancy
/// is exact at every step.
class BatcherAdmissionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    FittedModel fitted = MakeFitted("classification");
    row_ = new Tensor(ops::Slice(fitted.data, 0, 0, 1));
    registry_ = new ModelRegistry();
    ASSERT_TRUE(registry_->Add("m", std::move(fitted.pipeline)).ok());
  }

  static MicroBatcher::Options ParkedBatcher() {
    MicroBatcher::Options options;
    options.max_batch_size = 64;      // never reached by these workloads
    options.max_delay_ms = 10000.0;   // flushed only by Shutdown
    return options;
  }

  static Tensor* row_;
  static ModelRegistry* registry_;
};

Tensor* BatcherAdmissionTest::row_ = nullptr;
ModelRegistry* BatcherAdmissionTest::registry_ = nullptr;

TEST_F(BatcherAdmissionTest, CapacityPlusOneIsShedWithStructuredError) {
  ServeStats stats;
  AdmissionController admission({.max_queue = 4}, &stats);
  MicroBatcher batcher(registry_, ParkedBatcher(), &stats, &admission);

  std::vector<std::future<Result<core::TaskResult>>> parked;
  for (int i = 0; i < 4; ++i) {
    parked.push_back(batcher.Submit("m", *row_));
  }
  EXPECT_EQ(admission.in_flight(), 4);

  // The capacity+1-th request must be answered immediately, not queued.
  auto shed = batcher.Submit("m", *row_);
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const Status status = shed.get().status();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(status.message(), "overloaded");

  batcher.Shutdown();  // drain flushes the four parked requests
  for (auto& f : parked) {
    auto r = f.get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }

  EXPECT_EQ(admission.in_flight(), 0) << "drain must release every slot";
  const auto snapshot = stats.Admission();
  EXPECT_EQ(snapshot.accepted, 4);
  EXPECT_EQ(snapshot.shed, 1);
  EXPECT_EQ(snapshot.timed_out, 0);
}

TEST_F(BatcherAdmissionTest, ExpiredRequestsGetTimeoutReplies) {
  ServeStats stats;
  AdmissionController admission({.max_queue = 16, .request_timeout_ms = 30.0},
                                &stats);
  MicroBatcher batcher(registry_, ParkedBatcher(), &stats, &admission);

  // With the batcher parked, the only way out of the queue before Shutdown
  // is deadline expiry — so all five must time out.
  std::vector<std::future<Result<core::TaskResult>>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(batcher.Submit("m", *row_));
  }
  for (auto& f : futures) {
    const Status status = f.get().status();
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(status.message().find("timed out"), std::string::npos)
        << status.ToString();
  }

  EXPECT_EQ(admission.in_flight(), 0);
  const auto snapshot = stats.Admission();
  EXPECT_EQ(snapshot.accepted, 5);
  EXPECT_EQ(snapshot.shed, 0);
  EXPECT_EQ(snapshot.timed_out, 5);

  batcher.Shutdown();
}

TEST_F(BatcherAdmissionTest, ResolutionReleasesSlotForReadmission) {
  ServeStats stats;
  AdmissionController admission({.max_queue = 1}, &stats);
  MicroBatcher::Options options;
  options.max_batch_size = 1;
  options.max_delay_ms = 0.0;  // flush immediately
  MicroBatcher batcher(registry_, options, &stats, &admission);

  // Closed loop at capacity 1: the slot must be released by the time the
  // future resolves, so the next submit is never spuriously shed.
  for (int i = 0; i < 10; ++i) {
    auto r = batcher.Submit("m", *row_).get();
    ASSERT_TRUE(r.ok()) << "iteration " << i << ": " << r.status().ToString();
  }

  const auto snapshot = stats.Admission();
  EXPECT_EQ(snapshot.accepted, 10);
  EXPECT_EQ(snapshot.shed, 0);
  EXPECT_EQ(snapshot.timed_out, 0);
}

TEST_F(BatcherAdmissionTest, DrainLeavesZeroPendingFutures) {
  ServeStats stats;
  AdmissionController admission({.max_queue = 8}, &stats);
  auto batcher = std::make_unique<MicroBatcher>(registry_, ParkedBatcher(),
                                               &stats, &admission);

  std::vector<std::future<Result<core::TaskResult>>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(batcher->Submit("m", *row_));
  }
  batcher.reset();  // destructor drains

  // Every future must already be resolved — a drain may not strand one.
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_TRUE(f.get().ok());
  }
  EXPECT_EQ(admission.in_flight(), 0);
  EXPECT_EQ(stats.Admission().accepted, 6);
}

TEST(ServeStatsAdmissionTest, CountersRoundTripThroughJson) {
  ServeStats stats;
  stats.RecordAccepted();
  stats.RecordAccepted();
  stats.RecordShed();
  stats.RecordTimedOut();

  auto json = stats.ToJson();
  ASSERT_TRUE(json.Contains("admission"));
  EXPECT_EQ(json.at("admission").at("accepted").AsInt(), 2);
  EXPECT_EQ(json.at("admission").at("shed").AsInt(), 1);
  EXPECT_EQ(json.at("admission").at("timed_out").AsInt(), 1);

  stats.Reset();
  const auto snapshot = stats.Admission();
  EXPECT_EQ(snapshot.accepted, 0);
  EXPECT_EQ(snapshot.shed, 0);
  EXPECT_EQ(snapshot.timed_out, 0);
}

}  // namespace
}  // namespace units::serve
